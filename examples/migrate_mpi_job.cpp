// Live migration of a distributed MPI application to a different set of
// nodes — the paper's flagship scenario (§1: "restarted from the
// checkpoint on a different set of cluster nodes at a later time" and §4:
// direct streaming "without requiring that the checkpoint data first be
// written to some intermediary storage").
//
// A 4-rank Bratu solver starts on nodes 1-4, is checkpointed in MIGRATE
// mode with agent:// destinations (images stream straight to the
// receiving agents on nodes 5-8), restarted there, and runs to
// completion.  The application keeps its virtual addresses; only the
// location table changes.
#include <cstdio>

#include "apps/bratu.h"
#include "apps/launcher.h"
#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"

using namespace zapc;

int main() {
  os::Cluster cluster;
  os::Node& mgr_node = cluster.add_node("mgr");
  std::vector<std::unique_ptr<core::Agent>> agents;
  std::vector<core::Agent*> all;
  for (int i = 0; i < 8; ++i) {
    os::Node& n = cluster.add_node("node" + std::to_string(i + 1));
    agents.push_back(std::make_unique<core::Agent>(n));
    all.push_back(agents.back().get());
  }
  core::Manager manager(mgr_node);

  // Launch the solver on nodes 1-4.
  std::vector<core::Agent*> source(all.begin(), all.begin() + 4);
  apps::JobHandle job = apps::launch_mpi_job(
      source, "bratu", 4, [](i32 rank) {
        apps::BratuProgram::Params p;
        p.rank = rank;
        p.size = 4;
        p.n = 128;
        p.iterations = 600;
        p.tol = 0;
        return std::make_unique<apps::BratuProgram>(p);
      });
  job.all_agents = all;  // pods may move anywhere later

  cluster.run_for(150 * sim::kMillisecond);
  std::printf("solver running; migrating all 4 pods from nodes 1-4 to "
              "nodes 5-8...\n");

  // One call does it all: coordinated MIGRATE checkpoint with direct
  // agent-to-agent streaming (plus the send-queue redirect optimization),
  // then the coordinated restart on the destination agents.
  std::vector<core::Manager::MigrateTarget> move;
  for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
    move.push_back({all[i]->addr(), all[i + 4]->addr(), job.pod_names[i],
                    job.vips[i]});
  }
  bool done = false;
  bool ok = false;
  manager.migrate(move, [&](core::Manager::MigrateReport r) {
    if (r.ok) {
      std::printf("  migration complete in %.1f ms "
                  "(checkpoint+stream %.1f ms, restart %.1f ms)\n",
                  static_cast<double>(r.total_us) / 1000.0,
                  static_cast<double>(r.checkpoint.total_us) / 1000.0,
                  static_cast<double>(r.restart.total_us) / 1000.0);
    } else {
      std::printf("  migration FAILED: %s\n", r.error.c_str());
    }
    ok = r.ok;
    done = true;
  });
  while (!done) cluster.run_for(sim::kMillisecond);
  if (!ok) return 1;

  for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
    std::printf("  %s now runs on %s\n", job.pod_names[i].c_str(),
                all[i + 4]->node().name().c_str());
  }

  while (!job.finished()) cluster.run_for(20 * sim::kMillisecond);
  std::printf("solver finished after migration, exit code %d\n",
              job.exit_code());
  return job.exit_code();
}
