// Fault tolerance: periodic checkpoints + node-failure recovery
// (paper §1: "fault recovery by restarting from the last checkpoint
// instead of from scratch").
//
// A 4-worker distributed ray tracer renders while the manager takes a
// checkpoint every 150 virtual ms.  Midway, the node hosting one worker
// pod *dies*.  The job is restarted from the last good checkpoint, with
// the dead node's pod placed on a spare node, and completes.
#include <cstdio>

#include "apps/launcher.h"
#include "apps/ray.h"
#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"

using namespace zapc;

int main() {
  os::Cluster cluster;
  os::Node& mgr_node = cluster.add_node("mgr");
  std::vector<std::unique_ptr<core::Agent>> agents;
  std::vector<core::Agent*> all;
  std::vector<os::Node*> nodes;
  for (int i = 0; i < 6; ++i) {  // 5 in use + 1 spare
    nodes.push_back(&cluster.add_node("node" + std::to_string(i + 1)));
    agents.push_back(std::make_unique<core::Agent>(*nodes.back()));
    all.push_back(agents.back().get());
  }
  core::Manager manager(mgr_node);

  apps::RayMaster::Params mp;
  mp.workers = 4;
  mp.width = 320;
  mp.height = 240;
  std::vector<core::Agent*> initial(all.begin(), all.begin() + 5);
  apps::JobHandle job = apps::launch_pvm_job(
      initial, "render", 4,
      [&] { return std::make_unique<apps::RayMaster>(mp); },
      [&](i32) {
        apps::RayWorker::Params wp;
        wp.master = net::SockAddr{apps::job_vips(5)[0], mp.port};
        wp.width = mp.width;
        wp.cost_per_row = 12000;  // long render: outlives the failure
        return std::make_unique<apps::RayWorker>(wp);
      });
  job.all_agents = all;

  auto targets = job.san_targets("ft/");

  auto checkpoint_once = [&]() -> bool {
    bool done = false, ok = false;
    manager.checkpoint(targets, core::CkptMode::SNAPSHOT,
                       [&](core::Manager::CheckpointReport r) {
                         ok = r.ok;
                         done = true;
                       });
    while (!done) cluster.run_for(sim::kMillisecond);
    return ok;
  };

  // Periodic checkpoints while the job renders.
  int good_checkpoints = 0;
  for (int i = 0; i < 3 && !job.finished(); ++i) {
    cluster.run_for(150 * sim::kMillisecond);
    if (job.finished()) break;
    if (checkpoint_once()) {
      ++good_checkpoints;
      std::printf("periodic checkpoint #%d taken\n", good_checkpoints);
    }
  }

  // Disaster: node3 (hosting worker pod render-w1) dies.
  std::printf("\n*** node3 fails ***\n\n");
  nodes[2]->fail();
  cluster.run_for(200 * sim::kMillisecond);

  // Recovery: restart the whole job from the last checkpoint.  The pod
  // from the dead node goes to the spare node6; everything else returns
  // to its old home (any mapping works — the virtual addresses are
  // stable).
  std::vector<core::Manager::Target> restart_targets;
  for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
    core::Agent* host = all[i];       // original layout
    if (host == all[2]) host = all[5];  // dead node's pod -> spare
    restart_targets.push_back({host->addr(), job.pod_names[i],
                               "san://ft/" + job.pod_names[i]});
  }
  // The surviving pods still exist and must be discarded first (their
  // state is from *after* the checkpoint; a restart rewinds everyone).
  for (const auto& pn : job.pod_names) {
    for (core::Agent* a : all) (void)a->destroy_pod(pn);
  }

  bool done = false, ok = false;
  manager.restart(restart_targets, {},
                  [&](core::Manager::RestartReport r) {
                    std::printf("recovery restart: %s (%.1f ms)\n",
                                r.ok ? "ok" : r.error.c_str(),
                                static_cast<double>(r.total_us) / 1000.0);
                    ok = r.ok;
                    done = true;
                  });
  while (!done) cluster.run_for(sim::kMillisecond);
  if (!ok) return 1;

  while (!job.finished()) cluster.run_for(20 * sim::kMillisecond);
  std::printf("render completed after node failure, exit code %d\n",
              job.exit_code());
  auto img = cluster.san().read("results/ray.ppm");
  std::printf("framebuffer in SAN: %zu bytes\n",
              img.is_ok() ? img.value().size() : 0);
  return job.exit_code();
}
