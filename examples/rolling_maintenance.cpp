// Rolling cluster maintenance (paper §1: "improved service availability
// and administration by checkpointing applications processes before
// cluster node maintenance and restarting them on other cluster nodes so
// that applications can continue to run with minimal downtime").
//
// A long-running 3-rank BT solver is repeatedly migrated so each node in
// turn can be drained: on every round, the whole application is
// checkpointed (coordinated, consistent), the drained node's pod is
// restarted on the spare node, and the other pods return to their hosts.
// The solver never restarts from scratch and finishes with correct
// physics.
#include <cstdio>

#include "apps/bt.h"
#include "apps/launcher.h"
#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"

using namespace zapc;

int main() {
  os::Cluster cluster;
  os::Node& mgr_node = cluster.add_node("mgr");
  std::vector<std::unique_ptr<core::Agent>> agents;
  std::vector<core::Agent*> all;
  for (int i = 0; i < 4; ++i) {  // 3 active + 1 spare
    os::Node& n = cluster.add_node("node" + std::to_string(i + 1));
    agents.push_back(std::make_unique<core::Agent>(n));
    all.push_back(agents.back().get());
  }
  core::Manager manager(mgr_node);

  std::vector<core::Agent*> active(all.begin(), all.begin() + 3);
  apps::JobHandle job = apps::launch_mpi_job(
      active, "bt", 3, [](i32 rank) {
        apps::BtProgram::Params p;
        p.rank = rank;
        p.size = 3;
        p.n = 256;
        p.steps = 120;
        return std::make_unique<apps::BtProgram>(p);
      });
  job.all_agents = all;

  // Current placement: pod index -> agent.
  std::vector<core::Agent*> placement(active);

  for (int round = 0; round < 3 && !job.finished(); ++round) {
    cluster.run_for(150 * sim::kMillisecond);
    if (job.finished()) break;

    core::Agent* draining = placement[static_cast<std::size_t>(round)];
    core::Agent* spare = nullptr;
    for (core::Agent* a : all) {
      bool used = false;
      for (core::Agent* p : placement) used = used || p == a;
      if (!used) spare = a;
    }
    std::printf("round %d: draining %s; its pod moves to %s\n", round,
                draining->node().name().c_str(),
                spare->node().name().c_str());

    // Coordinated checkpoint of the whole job from the current hosts.
    std::vector<core::Manager::Target> ckpt_targets;
    for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
      ckpt_targets.push_back({placement[i]->addr(), job.pod_names[i],
                              "san://maint/" + job.pod_names[i]});
    }
    bool done = false, ok = false;
    manager.checkpoint(ckpt_targets, core::CkptMode::MIGRATE,
                       [&](core::Manager::CheckpointReport r) {
                         ok = r.ok;
                         done = true;
                       });
    while (!done) cluster.run_for(sim::kMillisecond);
    if (!ok) {
      std::printf("checkpoint failed; aborting maintenance\n");
      return 1;
    }

    // New placement: drained pod -> spare; everyone else stays.
    placement[static_cast<std::size_t>(round)] = spare;
    std::vector<core::Manager::Target> restart_targets;
    for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
      restart_targets.push_back({placement[i]->addr(), job.pod_names[i],
                                 "san://maint/" + job.pod_names[i]});
    }
    done = false;
    manager.restart(restart_targets, {},
                    [&](core::Manager::RestartReport r) {
                      ok = r.ok;
                      done = true;
                    });
    while (!done) cluster.run_for(sim::kMillisecond);
    if (!ok) {
      std::printf("restart failed; aborting maintenance\n");
      return 1;
    }
    std::printf("  %s is now free for maintenance\n",
                draining->node().name().c_str());
  }

  while (!job.finished()) cluster.run_for(20 * sim::kMillisecond);
  std::printf("solver survived %s, exit code %d\n",
              "three rolling migrations", job.exit_code());

  auto out = cluster.san().read("results/bt");
  if (out.is_ok()) {
    Bytes bytes = std::move(out).value();
    Decoder d(bytes);
    double final_norm = d.f64_().value_or(-1);
    double initial_norm = d.f64_().value_or(-1);
    std::printf("diffusion norm %.6f -> %.6f (decayed: %s)\n",
                initial_norm, final_norm,
                final_norm < initial_norm ? "yes" : "NO");
  }
  return job.exit_code();
}
