// Quickstart: the smallest end-to-end ZapC session.
//
//  1. Build a simulated two-node cluster with a ZapC agent on each node
//     and a manager.
//  2. Launch a two-rank MPI job (parallel-Pi), one pod per rank.
//  3. Take a coordinated snapshot mid-run — the application never
//     notices.
//  4. Let the job finish and verify the result.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/cpi.h"
#include "apps/launcher.h"
#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"

using namespace zapc;

int main() {
  // --- 1. The cluster: two application nodes plus a manager node. -------
  os::Cluster cluster;
  os::Node& mgr_node = cluster.add_node("mgr");
  os::Node& node1 = cluster.add_node("node1");
  os::Node& node2 = cluster.add_node("node2");

  core::Agent agent1(node1);
  core::Agent agent2(node2);
  core::Manager manager(mgr_node);

  // --- 2. The application: 2-rank parallel Pi in two pods. ---------------
  apps::JobHandle job = apps::launch_mpi_job(
      {&agent1, &agent2}, "pi", 2, [](i32 rank) {
        apps::CpiProgram::Params p;
        p.rank = rank;
        p.size = 2;
        p.intervals = 50'000'000;
        p.rounds = 4;
        return std::make_unique<apps::CpiProgram>(p);
      });
  std::printf("launched %zu pods: %s on %s, %s on %s\n",
              job.pod_names.size(), job.pod_names[0].c_str(),
              node1.name().c_str(), job.pod_names[1].c_str(),
              node2.name().c_str());

  // --- 3. Coordinated snapshot mid-run. -----------------------------------
  cluster.run_for(40 * sim::kMillisecond);  // mid-computation
  bool done = false;
  manager.checkpoint(
      job.san_targets(), core::CkptMode::SNAPSHOT,
      [&](core::Manager::CheckpointReport r) {
        std::printf("checkpoint %s in %.1f ms (largest image %.1f MB, "
                    "network data %.1f KB)\n",
                    r.ok ? "completed" : "FAILED",
                    static_cast<double>(r.total_us) / 1000.0,
                    static_cast<double>(r.max_image_bytes) / (1 << 20),
                    static_cast<double>(r.max_network_bytes) / 1024.0);
        done = true;
      });
  while (!done) cluster.run_for(sim::kMillisecond);

  // --- 4. The application continues untouched and finishes. ---------------
  while (!job.finished()) cluster.run_for(10 * sim::kMillisecond);
  std::printf("job finished with exit code %d\n", job.exit_code());

  auto result = cluster.san().read("results/cpi");
  if (result.is_ok()) {
    Bytes bytes = std::move(result).value();
    Decoder d(bytes);
    std::printf("computed pi = %.12f\n", d.f64_().value_or(0));
  }
  return job.exit_code();
}
