// TCP: reliable, ordered byte stream with sequence numbers, ACKs,
// retransmission, out-of-order reassembly, urgent (out-of-band) data and
// the usual connection state machine.
//
// This is the substrate the paper's network-state checkpoint operates on.
// The protocol-control-block (PCB) exposes exactly the three sequence
// numbers the paper identifies as the minimal protocol-specific state to
// checkpoint: `sent` (snd_nxt), `recv` (rcv_nxt) and `acked` (snd_una —
// the last of our data acknowledged by the peer).  Invariant (paper §5):
// recv₁ ≥ acked₂ across a connection; the difference is the queue overlap
// that restart must discard.
//
// Simplifications relative to a production stack (documented here because
// they do not affect the checkpoint-restart semantics): no congestion
// control (LAN model), no Nagle coalescing (TCP_NODELAY is accepted but
// transmission is always immediate), a single urgent byte (like BSD), and
// a short TIME_WAIT.
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "net/socket.h"
#include "obs/span.h"
#include "sim/engine.h"

namespace zapc::net {

enum class TcpState : u8 {
  CLOSED,
  LISTEN,
  SYN_SENT,
  SYN_RCVD,
  ESTABLISHED,
  FIN_WAIT_1,
  FIN_WAIT_2,
  CLOSE_WAIT,
  CLOSING,
  LAST_ACK,
  TIME_WAIT,
};

const char* tcp_state_name(TcpState s);

/// 32-bit sequence-space comparisons (wraparound safe).
inline bool seq_lt(u32 a, u32 b) { return static_cast<i32>(a - b) < 0; }
inline bool seq_le(u32 a, u32 b) { return static_cast<i32>(a - b) <= 0; }
inline bool seq_gt(u32 a, u32 b) { return static_cast<i32>(a - b) > 0; }
inline bool seq_ge(u32 a, u32 b) { return static_cast<i32>(a - b) >= 0; }

class TcpSocket final : public Socket {
 public:
  TcpSocket(Stack& stack, SockId id);
  ~TcpSocket() override;

  // ---- Socket interface -------------------------------------------------
  Result<RecvResult> do_recvmsg(std::size_t maxlen, u32 flags) override;
  u32 do_poll() override;
  void do_release() override;
  Result<std::size_t> do_send(const Bytes& data, u32 flags,
                              std::optional<SockAddr> to) override;
  Status do_connect(SockAddr peer) override;
  Status do_shutdown(ShutdownHow how) override;
  void handle_packet(const Packet& p) override;
  bool reapable() const override;

  // ---- Listener operations ----------------------------------------------
  Status listen(int backlog);
  /// Pops one established connection; Err::WOULD_BLOCK if none pending.
  Result<SockId> accept(SockAddr* peer);
  bool is_listener() const { return state_ == TcpState::LISTEN; }
  std::size_t accept_queue_len() const { return accept_q_.size(); }
  /// Kernel-internal: re-inserts an established connection into this
  /// listener's accept queue (restart of connections that were pending
  /// accept at checkpoint time).
  void requeue_accepted(SockId child) {
    accept_q_.push_back(child);
    notify();
  }
  /// Kernel-internal: connections awaiting accept (restart inspects these
  /// to claim specific children without disturbing the rest).
  const std::deque<SockId>& pending_accepts() const { return accept_q_; }
  /// Kernel-internal: removes a specific pending connection from the
  /// accept queue; returns false if it is not queued.
  bool take_pending(SockId child) {
    for (auto it = accept_q_.begin(); it != accept_q_.end(); ++it) {
      if (*it == child) {
        accept_q_.erase(it);
        return true;
      }
    }
    return false;
  }

  // ---- State inspection ---------------------------------------------------
  TcpState state() const { return state_; }
  /// Pending socket error (e.g. CONN_REFUSED after failed connect),
  /// cleared on read.
  Err take_error() {
    Err e = error_;
    error_ = Err::OK;
    return e;
  }

  // ---- PCB access (in-kernel interface used by the checkpointer) --------
  /// `sent`: sequence number following the last byte given to the network.
  u32 pcb_sent() const { return snd_nxt_; }
  /// `acked`: sequence number following the last of our bytes the peer
  /// has acknowledged.
  u32 pcb_acked() const { return snd_una_; }
  /// `recv`: sequence number following the last in-order byte received.
  u32 pcb_recv() const { return rcv_nxt_; }

  /// Non-destructive copy of the send queue (unacknowledged + unsent
  /// data).  Paper §5: the send queue "is more well organized according to
  /// the sequence of data send operations issued by the application", so
  /// reading it directly from the socket buffers is simple and portable.
  Bytes send_queue_contents() const {
    return Bytes(send_buf_.begin(), send_buf_.end());
  }
  std::size_t send_queue_len() const { return send_buf_.size(); }
  std::size_t recv_queue_len() const { return recv_buf_.size(); }
  std::size_t ooo_segments() const { return ooo_.size(); }
  bool has_urgent() const { return urg_data_.has_value(); }
  /// Kernel-internal: re-injects the pending urgent byte after the
  /// checkpoint's destructive MSG_OOB read, or during restore.
  void set_urgent_data(u8 byte) {
    urg_data_ = byte;
    notify();
  }
  int backlog() const { return backlog_max_; }

  /// Whether our FIN has been queued (shutdown(WR)/close was called).
  bool fin_queued() const { return fin_queued_; }
  /// Whether the peer's FIN has been received (its stream has ended).
  bool peer_fin() const { return fin_rcvd_; }

  /// Causal tracing: arms a one-shot op-tagged event on the next genuine
  /// retransmission.  The Agent calls this when the pod resumes after a
  /// checkpoint (continue → unblock → first retransmit) and when a
  /// restored socket resends its recovered send queue.
  void tag_next_retransmit(obs::ObsTag tag) {
    obs_tag_ = std::move(tag);
    rtx_event_armed_ = obs_tag_.active();
  }

 private:
  friend class Stack;

  void enter_state(TcpState s);
  void try_output();
  void send_segment(u32 seq, const Bytes& payload, u8 flags, u32 urg_ptr);
  void send_ack();
  void send_rst(const Packet& cause);
  void arm_rtx_timer();
  void cancel_rtx_timer();
  void on_rtx_timeout();
  void on_ack(const Packet& p);
  void on_data(const Packet& p);
  void on_fin(const Packet& p);
  void handle_listen(const Packet& p);
  void handle_syn_sent(const Packet& p);
  void process_established(const Packet& p);
  void maybe_send_window_update(std::size_t before_read);
  u32 recv_window() const;
  std::size_t unsent_bytes() const {
    // Outstanding sequence space minus control flags (SYN/FIN consume a
    // sequence number but occupy no buffer byte).
    u32 seq_out = snd_nxt_ - snd_una_;
    if (fin_sent_ && !fin_acked_ && seq_out > 0) seq_out -= 1;
    if (seq_out >= send_buf_.size()) return 0;
    return send_buf_.size() - seq_out;
  }
  void fail_connection(Err e);
  void start_time_wait();
  void maybe_reap();

  TcpState state_ = TcpState::CLOSED;
  Err error_ = Err::OK;

  // PCB.
  u32 iss_ = 0;       // initial send sequence
  u32 irs_ = 0;       // initial receive sequence
  u32 snd_una_ = 0;   // oldest unacknowledged ("acked" in the paper)
  u32 snd_nxt_ = 0;   // next to send ("sent")
  u32 rcv_nxt_ = 0;   // next expected ("recv")
  u32 snd_wnd_ = 0;   // peer-advertised window

  // Queues.
  std::deque<u8> send_buf_;          // [snd_una_, snd_una_ + size)
  std::deque<u8> recv_buf_;          // in-order bytes awaiting the app
  std::map<u32, Bytes> ooo_;         // out-of-order segments by seq

  // Urgent data (single-byte, BSD style).
  std::optional<u8> urg_data_;
  std::optional<u32> urg_seq_snd_;   // seq of queued outgoing urgent byte
  std::optional<u32> urg_seq_rcv_;   // seq of incoming urgent byte to pull

  // Sequence bookkeeping for FINs.
  std::optional<u32> fin_seq_snd_;   // seq our FIN occupies once sent
  std::optional<u32> fin_seq_rcv_;   // seq of the peer's FIN (maybe early)

  // FIN bookkeeping.
  bool fin_queued_ = false;          // our FIN should follow queued data
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  bool fin_rcvd_ = false;            // peer FIN consumed into rcv_nxt_

  // Retransmission.
  sim::EventId rtx_timer_ = 0;
  sim::Time rto_ = 0;
  int rtx_count_ = 0;
  // One-shot causal-trace event on the next genuine retransmit.
  obs::ObsTag obs_tag_;
  bool rtx_event_armed_ = false;

  // Listener.
  std::deque<SockId> accept_q_;
  int backlog_max_ = 0;
  int embryonic_ = 0;  // children still in SYN_RCVD (count against backlog)
  SockId parent_listener_ = kInvalidSock;
};

}  // namespace zapc::net
