// Socket base class and the per-socket dispatch vector.
//
// Paper §5: "interposition is realized by altering the socket's dispatch
// vector. The dispatch vector determines which kernel function is called
// for each application interface invocation ... Specifically we interpose
// on the three methods that may involve the data in the receive queue:
// recvmsg, poll and release."
//
// Socket therefore routes recvmsg/poll/release through a swappable
// SocketOps table.  The alternate receive queue used to re-inject
// checkpointed receive-queue data (AltRecvQueue) installs itself into that
// table and uninstalls itself when drained.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "net/addr.h"
#include "net/packet.h"
#include "net/sockopt.h"
#include "util/status.h"
#include "util/types.h"

namespace zapc::net {

class Stack;
class Socket;

/// Socket identifier, unique within one Stack.
using SockId = u32;
constexpr SockId kInvalidSock = 0;

/// recv/send flag bits (subset of POSIX MSG_*).
enum MsgFlag : u32 {
  MSG_PEEK = 1 << 0,  // examine data without consuming it
  MSG_OOB = 1 << 1,   // receive/send urgent (out-of-band) data
};

/// poll() event bits.
enum PollBit : u32 {
  POLLIN = 1 << 0,   // readable (data or EOF or pending accept)
  POLLOUT = 1 << 1,  // writable
  POLLERR = 1 << 2,  // error pending
  POLLHUP = 1 << 3,  // peer closed
  POLLPRI = 1 << 4,  // urgent data pending
};

/// shutdown() directions.
enum class ShutdownHow { RD, WR, RDWR };

/// One unit of received data as seen by recvmsg: for UDP a datagram with
/// its source, for TCP a run of bytes.
struct RecvItem {
  Bytes data;
  SockAddr from;
  bool oob = false;  // urgent byte delivered out-of-band
};

/// Result of a recvmsg call.
struct RecvResult {
  Bytes data;
  SockAddr from;
  bool oob = false;
  bool eof = false;  // orderly peer shutdown (TCP), data is empty
};

/// The dispatch vector.  Default entries call the socket's own
/// protocol implementation; interposition replaces them.
struct SocketOps {
  std::function<Result<RecvResult>(Socket&, std::size_t maxlen, u32 flags)>
      recvmsg;
  std::function<u32(Socket&)> poll;
  std::function<void(Socket&)> release;
};

/// The alternate receive queue of paper §5.  Checkpointed receive-queue
/// data is deposited here at restart; interposed ops serve it ahead of any
/// new network data and reinstall the original ops once drained.
class AltRecvQueue {
 public:
  explicit AltRecvQueue(std::deque<RecvItem> items)
      : items_(std::move(items)) {}

  bool empty() const { return items_.empty(); }
  const std::deque<RecvItem>& items() const { return items_; }

  /// Serves up to maxlen bytes (TCP semantics: may merge items without
  /// oob/from boundaries; UDP semantics: one item per call).
  Result<RecvResult> serve(bool stream, std::size_t maxlen, u32 flags);

  /// Total queued payload bytes.
  std::size_t byte_size() const;

 private:
  std::deque<RecvItem> items_;
};

/// Abstract socket.  Concrete protocols: TcpSocket, UdpSocket, RawSocket.
class Socket {
 public:
  Socket(Stack& stack, SockId id, Proto proto);
  virtual ~Socket() = default;

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  SockId id() const { return id_; }
  Proto proto() const { return proto_; }
  Stack& stack() { return stack_; }

  const SockAddr& local() const { return local_; }
  const SockAddr& remote() const { return remote_; }
  void set_local(SockAddr a) { local_ = a; }
  void set_remote(SockAddr a) { remote_ = a; }
  bool bound() const { return bound_; }
  void set_bound(bool b) { bound_ = b; }

  SockOptTable& opts() { return opts_; }
  const SockOptTable& opts() const { return opts_; }
  bool nonblocking() const { return opts_.get(SockOpt::O_NONBLOCK) != 0; }

  bool shut_rd() const { return shut_rd_; }
  bool shut_wr() const { return shut_wr_; }

  /// Application-interface entry points; these route through the dispatch
  /// vector so interposition works exactly as in the paper.
  Result<RecvResult> recvmsg(std::size_t maxlen, u32 flags) {
    return ops_.recvmsg(*this, maxlen, flags);
  }
  u32 poll() { return ops_.poll(*this); }
  void release() { ops_.release(*this); }

  /// Protocol implementations behind the dispatch vector.
  virtual Result<RecvResult> do_recvmsg(std::size_t maxlen, u32 flags) = 0;
  virtual u32 do_poll() = 0;
  virtual void do_release() = 0;

  /// Other protocol operations (not interposed; the paper only needs the
  /// three receive-path methods).
  virtual Result<std::size_t> do_send(const Bytes& data, u32 flags,
                                      std::optional<SockAddr> to) = 0;
  virtual Status do_connect(SockAddr peer) = 0;
  virtual Status do_shutdown(ShutdownHow how) = 0;

  /// Packet input from the stack demultiplexer.
  virtual void handle_packet(const Packet& p) = 0;

  /// Dispatch-vector manipulation (kernel-module interface).
  const SocketOps& ops() const { return ops_; }
  void set_ops(SocketOps ops) { ops_ = std::move(ops); }
  void reset_default_ops();

  /// Installs an alternate receive queue holding restored data.  Replaces
  /// recvmsg/poll/release in the dispatch vector; the original ops return
  /// automatically once the queue drains (paper §5: "when the data becomes
  /// depleted, the original methods are reinstalled").
  void install_alt_queue(std::deque<RecvItem> items);

  /// The alternate queue if one is installed and non-empty.  A later
  /// checkpoint must save this too ("the checkpoint procedure must save
  /// the state of the alternate queue, if applicable").
  const AltRecvQueue* alt_queue() const { return alt_queue_.get(); }

  /// Wakeup callback invoked whenever socket readiness changes; the OS
  /// layer points this at the process wait-queue broadcast.
  void set_event_hook(std::function<void()> fn) { on_event_ = std::move(fn); }

  /// Kernel-internal: forces shutdown flags without protocol action
  /// (restore of connections whose peer no longer exists).
  void force_shutdown(bool rd, bool wr) {
    shut_rd_ = shut_rd_ || rd;
    shut_wr_ = shut_wr_ || wr;
  }

  /// True once the protocol has fully finished and the stack may reap
  /// this socket.
  virtual bool reapable() const = 0;

  bool user_closed() const { return user_closed_; }
  void mark_user_closed() { user_closed_ = true; }

  /// Whether this socket reserved its local port (explicit bind or
  /// ephemeral allocation) and must release it when reaped.  Accepted TCP
  /// children inherit the listener's port without owning it.
  bool owns_port() const { return owns_port_; }
  void set_owns_port(bool v) { owns_port_ = v; }

 protected:
  void notify();
  void drop_alt_queue() { alt_queue_.reset(); }

  bool shut_rd_ = false;
  bool shut_wr_ = false;

 private:
  Stack& stack_;
  SockId id_;
  Proto proto_;
  SockAddr local_;
  SockAddr remote_;
  bool bound_ = false;
  bool user_closed_ = false;
  bool owns_port_ = false;
  SockOptTable opts_;
  SocketOps ops_;
  std::unique_ptr<AltRecvQueue> alt_queue_;
  std::function<void()> on_event_;
};

}  // namespace zapc::net
