#include "net/packet.h"

#include <sstream>

namespace zapc::net {

std::string Packet::summary() const {
  std::ostringstream os;
  os << proto_name(proto) << " " << src.to_string() << " -> "
     << dst.to_string();
  if (proto == Proto::TCP) {
    os << " [";
    if (has(kSyn)) os << "S";
    if (has(kAck)) os << "A";
    if (has(kFin)) os << "F";
    if (has(kRst)) os << "R";
    if (has(kUrg)) os << "U";
    os << "] seq=" << seq << " ack=" << ack;
  }
  os << " len=" << payload.size();
  return os.str();
}

}  // namespace zapc::net
