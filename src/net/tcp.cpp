#include "net/tcp.h"

#include <algorithm>

#include "net/stack.h"
#include "obs/stats.h"
#include "util/log.h"

namespace zapc::net {
namespace {

constexpr sim::Time kInitialRto = 200 * sim::kMillisecond;
constexpr sim::Time kMaxRto = 3 * sim::kSecond;
constexpr int kMaxRetries = 12;
constexpr sim::Time kTimeWait = 20 * sim::kMillisecond;

}  // namespace

const char* tcp_state_name(TcpState s) {
  switch (s) {
    case TcpState::CLOSED: return "CLOSED";
    case TcpState::LISTEN: return "LISTEN";
    case TcpState::SYN_SENT: return "SYN_SENT";
    case TcpState::SYN_RCVD: return "SYN_RCVD";
    case TcpState::ESTABLISHED: return "ESTABLISHED";
    case TcpState::FIN_WAIT_1: return "FIN_WAIT_1";
    case TcpState::FIN_WAIT_2: return "FIN_WAIT_2";
    case TcpState::CLOSE_WAIT: return "CLOSE_WAIT";
    case TcpState::CLOSING: return "CLOSING";
    case TcpState::LAST_ACK: return "LAST_ACK";
    case TcpState::TIME_WAIT: return "TIME_WAIT";
  }
  return "?";
}

TcpSocket::TcpSocket(Stack& stack, SockId id)
    : Socket(stack, id, Proto::TCP), rto_(kInitialRto) {}

TcpSocket::~TcpSocket() { cancel_rtx_timer(); }

void TcpSocket::enter_state(TcpState s) {
  if (state_ == s) return;
  ZLOG_DEBUG("tcp " << stack().name() << "/" << id() << " "
                    << tcp_state_name(state_) << " -> " << tcp_state_name(s));
  state_ = s;
}

u32 TcpSocket::recv_window() const {
  i64 rcvbuf = opts().get(SockOpt::SO_RCVBUF);
  i64 used = static_cast<i64>(recv_buf_.size());
  return used >= rcvbuf ? 0 : static_cast<u32>(rcvbuf - used);
}

// ---- Output path ----------------------------------------------------------

void TcpSocket::send_segment(u32 seq, const Bytes& payload, u8 flags,
                             u32 urg_ptr) {
  Packet p;
  p.proto = Proto::TCP;
  p.src = local();
  p.dst = remote();
  p.seq = seq;
  p.flags = flags;
  if (flags & kAck) p.ack = rcv_nxt_;
  p.wnd = recv_window();
  p.urg_ptr = urg_ptr;
  p.payload = payload;
  stack().output(std::move(p));
}

void TcpSocket::send_ack() { send_segment(snd_nxt_, {}, kAck, 0); }

void TcpSocket::send_rst(const Packet& cause) {
  Packet p;
  p.proto = Proto::TCP;
  p.src = cause.dst;
  p.dst = cause.src;
  p.flags = kRst | kAck;
  p.seq = cause.has(kAck) ? cause.ack : 0;
  p.ack = cause.seq + static_cast<u32>(cause.payload.size()) +
          (cause.has(kSyn) ? 1 : 0) + (cause.has(kFin) ? 1 : 0);
  stack().output(std::move(p));
}

void TcpSocket::try_output() {
  switch (state_) {
    case TcpState::ESTABLISHED:
    case TcpState::CLOSE_WAIT:
    case TcpState::FIN_WAIT_1:
    case TcpState::CLOSING:
    case TcpState::LAST_ACK:
      break;
    default:
      return;
  }

  const auto mss =
      static_cast<std::size_t>(opts().get(SockOpt::TCP_MAXSEG));
  while (unsent_bytes() > 0) {
    u32 in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= snd_wnd_) break;  // window full (or zero window)
    std::size_t can = std::min(
        {unsent_bytes(), static_cast<std::size_t>(snd_wnd_ - in_flight),
         mss});
    Bytes payload(send_buf_.begin() + in_flight,
                  send_buf_.begin() + in_flight + can);
    u8 flags = kAck;
    u32 urg_ptr = 0;
    if (urg_seq_snd_ && seq_ge(*urg_seq_snd_, snd_nxt_) &&
        seq_lt(*urg_seq_snd_, snd_nxt_ + static_cast<u32>(can))) {
      flags |= kUrg;
      urg_ptr = *urg_seq_snd_;
    }
    send_segment(snd_nxt_, payload, flags, urg_ptr);
    snd_nxt_ += static_cast<u32>(can);
  }

  if (fin_queued_ && !fin_sent_ && unsent_bytes() == 0) {
    fin_seq_snd_ = snd_nxt_;
    send_segment(snd_nxt_, {}, static_cast<u8>(kFin | kAck), 0);
    snd_nxt_ += 1;
    fin_sent_ = true;
    if (state_ == TcpState::ESTABLISHED) enter_state(TcpState::FIN_WAIT_1);
    else if (state_ == TcpState::CLOSE_WAIT) enter_state(TcpState::LAST_ACK);
  }

  // Anything outstanding (data, FIN, or data stuck behind a zero window)
  // needs a timer: retransmission or zero-window probing.
  if (snd_una_ != snd_nxt_ || (unsent_bytes() > 0 && snd_wnd_ == 0)) {
    arm_rtx_timer();
  }
}

void TcpSocket::arm_rtx_timer() {
  if (rtx_timer_ != 0) return;  // already armed
  rtx_timer_ = stack().engine().schedule(rto_, [this] {
    rtx_timer_ = 0;
    on_rtx_timeout();
  });
}

void TcpSocket::cancel_rtx_timer() {
  if (rtx_timer_ != 0) {
    stack().engine().cancel(rtx_timer_);
    rtx_timer_ = 0;
  }
}

void TcpSocket::on_rtx_timeout() {
  // Zero-window probing persists indefinitely (like the TCP persist
  // timer); only genuine retransmissions count against the retry budget.
  const bool probing = snd_una_ == snd_nxt_ && unsent_bytes() > 0 &&
                       snd_wnd_ == 0 && state_ != TcpState::SYN_SENT &&
                       state_ != TcpState::SYN_RCVD;
  if (probing) {
    obs::stats::net_tcp_zero_window_probes().inc();
  } else {
    obs::stats::net_tcp_retransmits().inc();
    if (rtx_event_armed_) {
      rtx_event_armed_ = false;
      obs_tag_.event("net.tcp.first_rtx local=" + local().to_string() +
                     " remote=" + remote().to_string());
    }
  }
  if (!probing && ++rtx_count_ > kMaxRetries) {
    fail_connection(Err::TIMED_OUT);
    return;
  }
  rto_ = std::min(rto_ * 2, kMaxRto);

  switch (state_) {
    case TcpState::SYN_SENT:
      send_segment(iss_, {}, kSyn, 0);
      break;
    case TcpState::SYN_RCVD:
      send_segment(iss_, {}, static_cast<u8>(kSyn | kAck), 0);
      break;
    default: {
      if (snd_una_ != snd_nxt_) {
        // Retransmit from the left edge of the window.
        const auto mss =
            static_cast<std::size_t>(opts().get(SockOpt::TCP_MAXSEG));
        std::size_t data_len = std::min(send_buf_.size(), mss);
        // Never retransmit past what was originally sent.
        data_len = std::min(
            data_len, static_cast<std::size_t>(snd_nxt_ - snd_una_));
        if (data_len > 0) {
          Bytes payload(send_buf_.begin(), send_buf_.begin() + data_len);
          u8 flags = kAck;
          u32 urg_ptr = 0;
          if (urg_seq_snd_ && seq_ge(*urg_seq_snd_, snd_una_) &&
              seq_lt(*urg_seq_snd_, snd_una_ + static_cast<u32>(data_len))) {
            flags |= kUrg;
            urg_ptr = *urg_seq_snd_;
          }
          send_segment(snd_una_, payload, flags, urg_ptr);
        } else if (fin_sent_ && !fin_acked_) {
          send_segment(*fin_seq_snd_, {}, static_cast<u8>(kFin | kAck), 0);
        }
      } else if (unsent_bytes() > 0 && snd_wnd_ == 0) {
        // Zero-window probe: one byte beyond the window.  snd_nxt_ does
        // not advance — the byte is not considered sent until the window
        // opens (persist-timer semantics).
        Bytes probe{send_buf_[snd_nxt_ - snd_una_]};
        send_segment(snd_nxt_, probe, kAck, 0);
      }
      break;
    }
  }
  arm_rtx_timer();
}

// ---- Input path ------------------------------------------------------------

void TcpSocket::handle_packet(const Packet& p) {
  switch (state_) {
    case TcpState::CLOSED:
      if (!p.has(kRst)) send_rst(p);
      return;
    case TcpState::LISTEN:
      handle_listen(p);
      return;
    case TcpState::SYN_SENT:
      handle_syn_sent(p);
      return;
    case TcpState::TIME_WAIT:
      if (p.has(kFin)) send_ack();  // retransmitted FIN from peer
      return;
    default:
      break;
  }

  if (p.has(kRst)) {
    fail_connection(state_ == TcpState::SYN_RCVD ? Err::CONN_REFUSED
                                                 : Err::CONN_RESET);
    return;
  }

  if (p.has(kSyn) && state_ != TcpState::SYN_RCVD) {
    // Retransmitted SYN-ACK: our final handshake ACK was lost; re-ACK so
    // the peer's embryonic connection completes.
    send_ack();
    return;
  }

  if (state_ == TcpState::SYN_RCVD) {
    if (p.has(kSyn) && !p.has(kAck)) {
      send_segment(iss_, {}, static_cast<u8>(kSyn | kAck), 0);  // dup SYN
      return;
    }
    if (p.has(kAck) && seq_ge(p.ack, snd_nxt_)) {
      enter_state(TcpState::ESTABLISHED);
      snd_una_ = p.ack;
      snd_wnd_ = p.wnd;
      cancel_rtx_timer();
      rto_ = kInitialRto;
      rtx_count_ = 0;
      if (parent_listener_ != kInvalidSock) {
        TcpSocket* parent = stack().find_tcp(parent_listener_);
        if (parent != nullptr && parent->is_listener()) {
          parent->accept_q_.push_back(id());
          --parent->embryonic_;
          parent->notify();
        } else {
          // Listener vanished; nobody will ever accept us.
          fail_connection(Err::CONN_RESET);
          return;
        }
      }
      notify();
      // Fall through: the handshake ACK may carry data.
    } else {
      return;
    }
  }

  process_established(p);
}

void TcpSocket::handle_listen(const Packet& p) {
  if (p.has(kRst)) return;
  if (!p.has(kSyn) || p.has(kAck)) {
    send_rst(p);  // stray segment to a listener
    return;
  }
  if (static_cast<int>(accept_q_.size()) + embryonic_ >= backlog_max_) {
    ZLOG_DEBUG("tcp listener " << local().to_string() << ": backlog full");
    return;  // silently drop; client will retransmit SYN
  }
  TcpSocket& child = stack().create_tcp_child(*this, p.src);
  ++embryonic_;
  child.irs_ = p.seq;
  child.rcv_nxt_ = p.seq + 1;
  child.snd_wnd_ = p.wnd;
  child.iss_ = stack().rng().next_u32();
  child.snd_una_ = child.iss_;
  child.snd_nxt_ = child.iss_ + 1;  // SYN consumes one sequence number
  child.enter_state(TcpState::SYN_RCVD);
  child.send_segment(child.iss_, {}, static_cast<u8>(kSyn | kAck), 0);
  child.arm_rtx_timer();
}

void TcpSocket::handle_syn_sent(const Packet& p) {
  if (p.has(kRst)) {
    if (p.has(kAck) && p.ack == snd_nxt_) fail_connection(Err::CONN_REFUSED);
    return;
  }
  if (p.has(kSyn) && p.has(kAck)) {
    if (p.ack != snd_nxt_) {
      send_rst(p);
      return;
    }
    irs_ = p.seq;
    rcv_nxt_ = p.seq + 1;
    snd_una_ = p.ack;
    snd_wnd_ = p.wnd;
    cancel_rtx_timer();
    rto_ = kInitialRto;
    rtx_count_ = 0;
    enter_state(TcpState::ESTABLISHED);
    send_ack();
    notify();
    try_output();
  }
  // Simultaneous open (SYN without ACK) is not supported; dropped.
}

void TcpSocket::process_established(const Packet& p) {
  if (p.has(kAck)) on_ack(p);
  if (!p.payload.empty()) on_data(p);
  if (p.has(kFin)) on_fin(p);
}

void TcpSocket::on_ack(const Packet& p) {
  snd_wnd_ = p.wnd;
  if (seq_gt(p.ack, snd_una_) && seq_le(p.ack, snd_nxt_)) {
    u32 advanced = p.ack - snd_una_;
    std::size_t data_bytes =
        std::min<std::size_t>(advanced, send_buf_.size());
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<long>(data_bytes));
    obs::stats::net_tcp_send_queue().set(static_cast<i64>(send_buf_.size()));
    if (urg_seq_snd_ && seq_lt(*urg_seq_snd_, p.ack)) urg_seq_snd_.reset();
    snd_una_ = p.ack;
    rto_ = kInitialRto;
    rtx_count_ = 0;
    cancel_rtx_timer();
    if (snd_una_ != snd_nxt_) arm_rtx_timer();

    if (fin_sent_ && !fin_acked_ && fin_seq_snd_ &&
        seq_gt(p.ack, *fin_seq_snd_)) {
      fin_acked_ = true;
      switch (state_) {
        case TcpState::FIN_WAIT_1:
          enter_state(TcpState::FIN_WAIT_2);
          break;
        case TcpState::CLOSING:
          start_time_wait();
          break;
        case TcpState::LAST_ACK:
          enter_state(TcpState::CLOSED);
          maybe_reap();
          return;
        default:
          break;
      }
    }
    notify();  // send space may have opened
  }
  try_output();
}

void TcpSocket::on_data(const Packet& p) {
  // Register the urgent byte's sequence number (pulled out of the stream
  // when it becomes in-order unless SO_OOBINLINE).
  if (p.has(kUrg)) {
    urg_seq_rcv_ = p.urg_ptr;
    notify();
  }

  u32 seg_seq = p.seq;
  u32 seg_end = seg_seq + static_cast<u32>(p.payload.size());
  const auto rcvbuf =
      static_cast<std::size_t>(opts().get(SockOpt::SO_RCVBUF));

  // Absorbs in-order bytes starting at rcv_nxt_, honouring the receive
  // buffer limit; returns how many bytes were accepted.  The urgent byte
  // is pulled to the side channel (unless SO_OOBINLINE) and costs no
  // buffer space.
  auto absorb = [&](const Bytes& payload, u32 base_seq, u32 start) -> u32 {
    u32 accepted = 0;
    for (u32 i = start; i < payload.size(); ++i) {
      u32 byte_seq = base_seq + i;
      bool is_urgent = urg_seq_rcv_ && byte_seq == *urg_seq_rcv_ &&
                       opts().get(SockOpt::SO_OOBINLINE) == 0;
      if (is_urgent) {
        urg_data_ = payload[i];
      } else {
        if (recv_buf_.size() >= rcvbuf) break;  // window closed
        recv_buf_.push_back(payload[i]);
      }
      ++accepted;
    }
    rcv_nxt_ += accepted;
    return accepted;
  };

  if (seq_le(seg_seq, rcv_nxt_) && seq_gt(seg_end, rcv_nxt_)) {
    // Overlaps the expected sequence: trim the stale prefix, append.
    absorb(p.payload, seg_seq, rcv_nxt_ - seg_seq);

    // Drain any out-of-order segments that are now contiguous.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = ooo_.begin(); it != ooo_.end();) {
        u32 s = it->first;
        u32 e = s + static_cast<u32>(it->second.size());
        if (seq_le(e, rcv_nxt_)) {
          it = ooo_.erase(it);  // fully stale
          continue;
        }
        if (seq_le(s, rcv_nxt_)) {
          u32 start = rcv_nxt_ - s;
          u32 accepted = absorb(it->second, s, start);
          if (s + start + accepted < e) {
            // Buffer filled mid-segment; keep the remainder out-of-order.
            Bytes rest(it->second.begin() + (start + accepted),
                       it->second.end());
            u32 rest_seq = s + start + accepted;
            ooo_.erase(it);
            ooo_[rest_seq] = std::move(rest);
            progressed = false;
            break;
          }
          it = ooo_.erase(it);
          progressed = true;
          continue;
        }
        ++it;
      }
    }
    notify();
  } else if (seq_gt(seg_seq, rcv_nxt_)) {
    // Future data: out-of-order reassembly queue (the checkpoint
    // deliberately discards this — the peer's send queue still holds it).
    obs::stats::net_tcp_out_of_order().inc();
    auto it = ooo_.find(seg_seq);
    if (it == ooo_.end() || it->second.size() < p.payload.size()) {
      ooo_[seg_seq] = p.payload;
    }
  }
  // else: entirely old duplicate; just re-ACK below.

  obs::stats::net_tcp_recv_queue().set(static_cast<i64>(recv_buf_.size()));
  u64 ooo_bytes = 0;
  for (const auto& [s, seg] : ooo_) ooo_bytes += seg.size();
  obs::stats::net_tcp_ooo_queue().set(static_cast<i64>(ooo_bytes));

  send_ack();
}

void TcpSocket::on_fin(const Packet& p) {
  u32 fin_seq = p.seq + static_cast<u32>(p.payload.size());
  fin_seq_rcv_ = fin_seq;
  if (rcv_nxt_ != fin_seq) {
    // FIN arrived ahead of missing data; it will be consumed once the
    // stream catches up (peer retransmits).
    return;
  }
  rcv_nxt_ = fin_seq + 1;
  fin_rcvd_ = true;
  switch (state_) {
    case TcpState::ESTABLISHED:
      enter_state(TcpState::CLOSE_WAIT);
      break;
    case TcpState::FIN_WAIT_1:
      enter_state(fin_acked_ ? TcpState::TIME_WAIT : TcpState::CLOSING);
      if (fin_acked_) start_time_wait();
      break;
    case TcpState::FIN_WAIT_2:
      start_time_wait();
      break;
    default:
      break;
  }
  send_ack();
  notify();  // readers see EOF
}

void TcpSocket::start_time_wait() {
  enter_state(TcpState::TIME_WAIT);
  cancel_rtx_timer();
  // The socket (or its whole stack, if the pod is destroyed) may be gone
  // before the timer fires; re-resolve through weak handles.
  Stack& st = stack();
  st.engine().schedule(
      kTimeWait, [tok = std::weak_ptr<const bool>(st.alive_token()), &st,
                  self_id = id()] {
        if (tok.expired()) return;  // stack destroyed
        TcpSocket* s = st.find_tcp(self_id);
        if (s == nullptr) return;
        s->enter_state(TcpState::CLOSED);
        s->maybe_reap();
      });
}

void TcpSocket::fail_connection(Err e) {
  if (state_ == TcpState::SYN_RCVD && parent_listener_ != kInvalidSock) {
    TcpSocket* parent = stack().find_tcp(parent_listener_);
    if (parent != nullptr && parent->is_listener()) --parent->embryonic_;
  }
  error_ = e;
  cancel_rtx_timer();
  enter_state(TcpState::CLOSED);
  send_buf_.clear();
  notify();
  maybe_reap();
}

void TcpSocket::maybe_reap() {
  if (user_closed() && state_ == TcpState::CLOSED) stack().reap(id());
}

bool TcpSocket::reapable() const {
  return user_closed() && state_ == TcpState::CLOSED;
}

// ---- Application interface --------------------------------------------------

Status TcpSocket::listen(int backlog) {
  if (state_ != TcpState::CLOSED) return Status(Err::INVALID, "not CLOSED");
  if (!bound()) return Status(Err::INVALID, "listen on unbound socket");
  backlog_max_ = std::max(1, backlog);
  enter_state(TcpState::LISTEN);
  stack().register_listener(local().port, id());
  return Status::ok();
}

Result<SockId> TcpSocket::accept(SockAddr* peer) {
  if (state_ != TcpState::LISTEN) return Status(Err::INVALID, "not listening");
  if (accept_q_.empty()) return Status(Err::WOULD_BLOCK);
  SockId child_id = accept_q_.front();
  accept_q_.pop_front();
  TcpSocket* child = stack().find_tcp(child_id);
  if (child == nullptr) return Status(Err::CONN_RESET, "child vanished");
  if (peer != nullptr) *peer = child->remote();
  return child_id;
}

Status TcpSocket::do_connect(SockAddr peer) {
  if (state_ == TcpState::LISTEN) return Status(Err::INVALID, "listener");
  if (state_ != TcpState::CLOSED || user_closed()) {
    return Status(Err::ALREADY_CONNECTED);
  }
  if (peer.port == 0) return Status(Err::INVALID, "port 0");

  if (!bound()) {
    auto port = stack().alloc_ephemeral(Proto::TCP);
    if (!port) return port.status();
    set_local(SockAddr{stack().vip(), port.value()});
    set_bound(true);
    set_owns_port(true);
  } else if (local().ip.is_any()) {
    set_local(SockAddr{stack().vip(), local().port});
  }
  set_remote(peer);
  stack().register_flow(FlowKey{Proto::TCP, local(), remote()}, id());

  iss_ = stack().rng().next_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  rto_ = kInitialRto;
  rtx_count_ = 0;
  enter_state(TcpState::SYN_SENT);
  send_segment(iss_, {}, kSyn, 0);
  arm_rtx_timer();
  return Status(Err::IN_PROGRESS);
}

Result<std::size_t> TcpSocket::do_send(const Bytes& data, u32 flags,
                                       std::optional<SockAddr> to) {
  if (to.has_value()) return Status(Err::ALREADY_CONNECTED, "sendto on TCP");
  if (error_ != Err::OK) return Status(take_error());
  if (shut_wr_ || fin_queued_) return Status(Err::PIPE, "shutdown for write");
  switch (state_) {
    case TcpState::ESTABLISHED:
    case TcpState::CLOSE_WAIT:
      break;
    case TcpState::SYN_SENT:
    case TcpState::SYN_RCVD:
      return Status(Err::WOULD_BLOCK, "connecting");
    default:
      return Status(Err::NOT_CONNECTED);
  }
  if (shut_wr_ || fin_queued_) return Status(Err::PIPE, "shutdown for write");
  if (data.empty()) return std::size_t{0};

  auto sndbuf = static_cast<std::size_t>(opts().get(SockOpt::SO_SNDBUF));
  if (send_buf_.size() >= sndbuf) return Status(Err::WOULD_BLOCK);
  std::size_t accepted = std::min(data.size(), sndbuf - send_buf_.size());
  send_buf_.insert(send_buf_.end(), data.begin(), data.begin() + accepted);
  obs::stats::net_tcp_send_queue().set(static_cast<i64>(send_buf_.size()));
  if ((flags & MSG_OOB) != 0) {
    // The last byte written is the urgent byte (BSD semantics).
    urg_seq_snd_ = snd_una_ + static_cast<u32>(send_buf_.size()) - 1;
  }
  try_output();
  return accepted;
}

Result<RecvResult> TcpSocket::do_recvmsg(std::size_t maxlen, u32 flags) {
  if (state_ == TcpState::LISTEN) return Status(Err::INVALID, "listener");

  if ((flags & MSG_OOB) != 0) {
    if (opts().get(SockOpt::SO_OOBINLINE) != 0) {
      return Status(Err::INVALID, "OOB read with SO_OOBINLINE");
    }
    if (!urg_data_) return Status(Err::WOULD_BLOCK, "no urgent data");
    RecvResult r;
    r.data = Bytes{*urg_data_};
    r.from = remote();
    r.oob = true;
    if ((flags & MSG_PEEK) == 0) urg_data_.reset();
    return r;
  }

  if (recv_buf_.empty()) {
    if (error_ != Err::OK) return Status(take_error());
    if (fin_rcvd_ || shut_rd_) {
      RecvResult r;
      r.from = remote();
      r.eof = true;
      return r;
    }
    if (state_ == TcpState::CLOSED) return Status(Err::NOT_CONNECTED);
    return Status(Err::WOULD_BLOCK);
  }

  std::size_t before = recv_buf_.size();
  std::size_t n = std::min(maxlen, recv_buf_.size());
  RecvResult r;
  r.from = remote();
  r.data.assign(recv_buf_.begin(), recv_buf_.begin() + static_cast<long>(n));
  if ((flags & MSG_PEEK) == 0) {
    recv_buf_.erase(recv_buf_.begin(),
                    recv_buf_.begin() + static_cast<long>(n));
    obs::stats::net_tcp_recv_queue().set(static_cast<i64>(recv_buf_.size()));
    maybe_send_window_update(before);
  }
  return r;
}

void TcpSocket::maybe_send_window_update(std::size_t before_read) {
  auto rcvbuf = static_cast<std::size_t>(opts().get(SockOpt::SO_RCVBUF));
  bool was_closed = before_read >= rcvbuf;
  if (was_closed && recv_window() > 0 &&
      (state_ == TcpState::ESTABLISHED || state_ == TcpState::FIN_WAIT_1 ||
       state_ == TcpState::FIN_WAIT_2)) {
    send_ack();  // window-update so the peer's zero-window stall ends
  }
}

u32 TcpSocket::do_poll() {
  u32 ev = 0;
  if (state_ == TcpState::LISTEN) {
    if (!accept_q_.empty()) ev |= POLLIN;
    return ev;
  }
  if (!recv_buf_.empty() || fin_rcvd_ || shut_rd_) ev |= POLLIN;
  if (error_ != Err::OK) ev |= POLLERR | POLLIN | POLLOUT;
  if (urg_data_) ev |= POLLPRI;
  switch (state_) {
    case TcpState::ESTABLISHED:
    case TcpState::CLOSE_WAIT:
      if (!fin_queued_ && !shut_wr_ &&
          send_buf_.size() <
              static_cast<std::size_t>(opts().get(SockOpt::SO_SNDBUF))) {
        ev |= POLLOUT;
      }
      break;
    case TcpState::CLOSED:
      ev |= POLLHUP;
      break;
    default:
      break;
  }
  if (fin_rcvd_ && fin_acked_) ev |= POLLHUP;
  return ev;
}

Status TcpSocket::do_shutdown(ShutdownHow how) {
  if (state_ == TcpState::LISTEN || state_ == TcpState::CLOSED ||
      state_ == TcpState::SYN_SENT) {
    return Status(Err::NOT_CONNECTED);
  }
  if (how == ShutdownHow::RD || how == ShutdownHow::RDWR) {
    shut_rd_ = true;
    notify();
  }
  if (how == ShutdownHow::WR || how == ShutdownHow::RDWR) {
    if (!fin_queued_) {
      fin_queued_ = true;
      try_output();
    }
  }
  return Status::ok();
}

void TcpSocket::do_release() {
  mark_user_closed();
  if (state_ == TcpState::LISTEN) {
    // Reset any connections awaiting accept.
    for (SockId cid : accept_q_) {
      TcpSocket* child = stack().find_tcp(cid);
      if (child != nullptr) child->do_release();
    }
    accept_q_.clear();
    stack().unregister_listener(local().port);
    enter_state(TcpState::CLOSED);
    stack().reap(id());
    return;
  }
  if (state_ == TcpState::CLOSED || state_ == TcpState::SYN_SENT) {
    cancel_rtx_timer();
    enter_state(TcpState::CLOSED);
    stack().reap(id());
    return;
  }
  shut_rd_ = true;
  if (!fin_queued_) {
    fin_queued_ = true;
    try_output();
  }
  // Reaped once the close handshake finishes (maybe_reap on CLOSED).
}

}  // namespace zapc::net
