// Network addresses: IPv4-style 32-bit addresses and (ip, port) pairs.
//
// Pods see only *virtual* addresses; the cluster routes on *real* node
// addresses.  Both use the same types — the distinction is which table
// they live in (see pod::LocationTable).
#pragma once

#include <compare>
#include <functional>
#include <string>

#include "util/status.h"
#include "util/types.h"

namespace zapc::net {

/// 32-bit IPv4-style address, host byte order.
struct IpAddr {
  u32 v = 0;

  constexpr IpAddr() = default;
  constexpr explicit IpAddr(u32 raw) : v(raw) {}
  constexpr IpAddr(u8 a, u8 b, u8 c, u8 d)
      : v((static_cast<u32>(a) << 24) | (static_cast<u32>(b) << 16) |
          (static_cast<u32>(c) << 8) | d) {}

  auto operator<=>(const IpAddr&) const = default;

  bool is_any() const { return v == 0; }

  /// Dotted-quad representation.
  std::string to_string() const;

  /// Parses "a.b.c.d"; Err::INVALID on malformed input.
  static Result<IpAddr> parse(const std::string& s);
};

/// Wildcard address (0.0.0.0), used for binds.
inline constexpr IpAddr kAnyAddr{};

/// Transport endpoint: address + port.
struct SockAddr {
  IpAddr ip;
  u16 port = 0;

  constexpr SockAddr() = default;
  constexpr SockAddr(IpAddr a, u16 p) : ip(a), port(p) {}

  auto operator<=>(const SockAddr&) const = default;

  std::string to_string() const;
};

/// Transport protocols supported by the stack (paper §5: TCP, UDP, raw IP).
enum class Proto : u8 { TCP = 6, UDP = 17, RAW = 255 };

const char* proto_name(Proto p);

/// Connection 4-tuple + protocol, used for demultiplexing.
struct FlowKey {
  Proto proto{};
  SockAddr local;
  SockAddr remote;

  auto operator<=>(const FlowKey&) const = default;
};

}  // namespace zapc::net

template <>
struct std::hash<zapc::net::IpAddr> {
  std::size_t operator()(const zapc::net::IpAddr& a) const noexcept {
    return std::hash<zapc::u32>()(a.v);
  }
};

template <>
struct std::hash<zapc::net::SockAddr> {
  std::size_t operator()(const zapc::net::SockAddr& a) const noexcept {
    return std::hash<zapc::u64>()((static_cast<zapc::u64>(a.ip.v) << 16) ^
                                  a.port);
  }
};
