#include "net/sockopt.h"

namespace zapc::net {

const char* sockopt_name(SockOpt o) {
  switch (o) {
    case SockOpt::SO_REUSEADDR: return "SO_REUSEADDR";
    case SockOpt::SO_RCVBUF: return "SO_RCVBUF";
    case SockOpt::SO_SNDBUF: return "SO_SNDBUF";
    case SockOpt::SO_KEEPALIVE: return "SO_KEEPALIVE";
    case SockOpt::SO_OOBINLINE: return "SO_OOBINLINE";
    case SockOpt::SO_BROADCAST: return "SO_BROADCAST";
    case SockOpt::SO_LINGER: return "SO_LINGER";
    case SockOpt::SO_RCVTIMEO: return "SO_RCVTIMEO";
    case SockOpt::SO_SNDTIMEO: return "SO_SNDTIMEO";
    case SockOpt::SO_PRIORITY: return "SO_PRIORITY";
    case SockOpt::O_NONBLOCK: return "O_NONBLOCK";
    case SockOpt::TCP_NODELAY: return "TCP_NODELAY";
    case SockOpt::TCP_KEEPIDLE: return "TCP_KEEPIDLE";
    case SockOpt::TCP_STDURG: return "TCP_STDURG";
    case SockOpt::TCP_MAXSEG: return "TCP_MAXSEG";
    case SockOpt::IP_TTL: return "IP_TTL";
    case SockOpt::kCount: break;
  }
  return "?";
}

}  // namespace zapc::net
