// Per-namespace network stack: socket table, port allocation, flow
// demultiplexing, and the syscall-level socket API.
//
// Each pod owns one Stack bound to the pod's virtual address (the host's
// root namespace is itself a Stack whose virtual address equals the node's
// real address).  The stack knows nothing about nodes or the fabric; the
// router above it (os::Node) handles virtual→real address resolution and
// the per-pod packet filter.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/addr.h"
#include "net/packet.h"
#include "net/socket.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace zapc::net {

class TcpSocket;
class UdpSocket;
class RawSocket;

class Stack {
 public:
  Stack(sim::Engine& engine, IpAddr vip, std::string name);
  ~Stack();

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  IpAddr vip() const { return vip_; }
  const std::string& name() const { return name_; }
  sim::Engine& engine() { return engine_; }
  Rng& rng() { return rng_; }

  /// Liveness token for timers that may outlive this stack (the engine
  /// cannot cancel per-object; callbacks hold a weak_ptr to this).
  std::shared_ptr<const bool> alive_token() const { return alive_; }

  // ---- Application (syscall-level) API ----------------------------------
  Result<SockId> sys_socket(Proto proto);
  Status sys_bind(SockId s, SockAddr addr);
  /// Binds a RAW socket to a guest IP protocol number.
  Status sys_bind_raw(SockId s, u8 raw_proto);
  Status sys_listen(SockId s, int backlog);
  Result<SockId> sys_accept(SockId s, SockAddr* peer);
  Status sys_connect(SockId s, SockAddr peer);
  Result<std::size_t> sys_send(SockId s, const Bytes& data, u32 flags);
  Result<std::size_t> sys_sendto(SockId s, const Bytes& data, u32 flags,
                                 SockAddr to);
  Result<RecvResult> sys_recv(SockId s, std::size_t maxlen, u32 flags);
  Status sys_shutdown(SockId s, ShutdownHow how);
  Status sys_close(SockId s);
  u32 sys_poll(SockId s);
  Result<i64> sys_getsockopt(SockId s, SockOpt opt);
  Status sys_setsockopt(SockId s, SockOpt opt, i64 value);
  Result<SockAddr> sys_getsockname(SockId s);
  Result<SockAddr> sys_getpeername(SockId s);

  // ---- Wiring ------------------------------------------------------------
  /// Sets the egress hook (router above this stack).
  void set_output(std::function<void(Packet)> fn) { output_ = std::move(fn); }

  /// Stack-wide socket event hook: fires whenever any socket's readiness
  /// changes (in addition to per-socket hooks).  The pod layer uses this
  /// to wake processes blocked on the socket.
  void set_event_hook(std::function<void(SockId)> fn) {
    event_hook_ = std::move(fn);
  }
  void on_socket_event(SockId s) {
    if (event_hook_) event_hook_(s);
  }

  /// Ingress entry point (router calls this after the packet filter).
  void deliver(const Packet& p);

  // ---- In-kernel interface (checkpointer, protocol code) -----------------
  Socket* find(SockId s);
  const Socket* find(SockId s) const;
  TcpSocket* find_tcp(SockId s);
  UdpSocket* find_udp(SockId s);
  RawSocket* find_raw(SockId s);
  std::vector<SockId> all_socket_ids() const;
  std::size_t socket_count() const { return sockets_.size(); }

  // ---- Used by protocol implementations ----------------------------------
  void output(Packet p);
  Result<u16> alloc_ephemeral(Proto proto);
  Status reserve_port(Proto proto, u16 port, bool reuse_ok);
  void release_port(Proto proto, u16 port);
  void register_flow(const FlowKey& key, SockId s);
  void unregister_flow(const FlowKey& key);
  void register_listener(u16 port, SockId s);
  void unregister_listener(u16 port);
  void register_udp_bind(u16 port, SockId s);
  void unregister_udp_bind(u16 port);
  void register_raw_bind(u8 raw_proto, SockId s);
  void unregister_raw_bind(u8 raw_proto, SockId s);
  /// Creates the child socket for an incoming connection on `listener`.
  TcpSocket& create_tcp_child(TcpSocket& listener, SockAddr remote);
  /// Destroys a socket whose protocol work has finished.
  void reap(SockId s);

  /// Number of packets this stack dropped because no socket matched.
  u64 demux_drops() const { return demux_drops_; }

 private:
  Socket& must_find(SockId s);
  Result<SockId> add_socket(std::unique_ptr<Socket> sock);

  sim::Engine& engine_;
  IpAddr vip_;
  std::string name_;
  Rng rng_;
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  std::function<void(Packet)> output_;
  std::function<void(SockId)> event_hook_;

  SockId next_id_ = 1;
  std::unordered_map<SockId, std::unique_ptr<Socket>> sockets_;

  // Demux tables.
  std::map<FlowKey, SockId> flows_;
  std::unordered_map<u16, SockId> tcp_listeners_;
  std::unordered_map<u16, SockId> udp_binds_;
  std::multimap<u8, SockId> raw_binds_;

  // Port bookkeeping: count of holders per (proto, port).
  std::map<std::pair<Proto, u16>, int> ports_;
  u16 next_ephemeral_ = 32768;

  // Sockets being reaped: removed from demux immediately, destroyed from a
  // deferred event so in-flight member functions finish safely.
  std::unordered_set<SockId> dying_;

  u64 demux_drops_ = 0;
};

}  // namespace zapc::net
