#include "net/fabric.h"

#include "fault/fault.h"
#include "util/log.h"

namespace zapc::net {

void Fabric::attach(IpAddr node_addr, DeliverFn deliver) {
  nics_[node_addr] = Nic{std::move(deliver), engine_.now()};
}

void Fabric::detach(IpAddr node_addr) { nics_.erase(node_addr); }

void Fabric::send(WirePacket pkt) {
  ++stats_.packets_sent;

  auto src_it = nics_.find(pkt.src_node);
  // Egress serialization: the sender's NIC transmits packets back to back.
  sim::Time tx_start = engine_.now();
  if (src_it != nics_.end()) {
    tx_start = std::max(tx_start, src_it->second.busy_until);
  }
  sim::Time tx_time =
      config_.bandwidth_bps == 0
          ? 0
          : static_cast<sim::Time>(pkt.wire_size() * 8ull * sim::kSecond /
                                   config_.bandwidth_bps);
  if (src_it != nics_.end()) {
    src_it->second.busy_until = tx_start + tx_time;
  }

  if (config_.loss_prob > 0 && rng_.chance(config_.loss_prob)) {
    ++stats_.packets_dropped_loss;
    ZLOG_DEBUG("fabric: drop (loss) " << pkt.inner.summary());
    return;
  }

  sim::Time extra =
      config_.jitter > 0 ? rng_.below(config_.jitter + 1) : 0;
  sim::Time arrival = tx_start + tx_time + config_.latency + extra;
  if (fault::injector().enabled()) {
    arrival +=
        fault::injector().wire_extra_us(pkt.src_node.v, pkt.dst_node.v);
  }

  IpAddr dst = pkt.dst_node;
  engine_.schedule_at(arrival, [this, dst, p = std::move(pkt)]() mutable {
    auto it = nics_.find(dst);
    if (it == nics_.end()) {
      ++stats_.packets_dropped_noroute;
      ZLOG_DEBUG("fabric: drop (no route) " << p.inner.summary());
      return;
    }
    ++stats_.packets_delivered;
    stats_.bytes_delivered += p.wire_size();
    it->second.deliver(p);
  });
}

}  // namespace zapc::net
