// Raw IP sockets: deliver whole IP payloads for a protocol number.
// Included because the paper's scheme covers "TCP, UDP and raw IP".
#pragma once

#include <deque>
#include <optional>

#include "net/socket.h"

namespace zapc::net {

class RawSocket final : public Socket {
 public:
  RawSocket(Stack& stack, SockId id);

  Result<RecvResult> do_recvmsg(std::size_t maxlen, u32 flags) override;
  u32 do_poll() override;
  void do_release() override;
  Result<std::size_t> do_send(const Bytes& data, u32 flags,
                              std::optional<SockAddr> to) override;
  Status do_connect(SockAddr peer) override;
  Status do_shutdown(ShutdownHow how) override;
  void handle_packet(const Packet& p) override;
  bool reapable() const override { return user_closed(); }

  /// Binds this socket to a guest IP protocol number.
  Status bind_proto(u8 raw_proto);
  u8 raw_proto() const { return raw_proto_; }
  std::size_t queue_len() const { return recv_q_.size(); }

 private:
  struct RawDatagram {
    SockAddr from;
    Bytes data;
  };

  u8 raw_proto_ = 0;
  bool proto_bound_ = false;
  std::deque<RawDatagram> recv_q_;
};

}  // namespace zapc::net
