#include "net/raw.h"

#include <algorithm>

#include "net/stack.h"

namespace zapc::net {

RawSocket::RawSocket(Stack& stack, SockId id)
    : Socket(stack, id, Proto::RAW) {}

Status RawSocket::bind_proto(u8 raw_proto) {
  if (proto_bound_) return Status(Err::INVALID, "already bound");
  raw_proto_ = raw_proto;
  proto_bound_ = true;
  stack().register_raw_bind(raw_proto, id());
  return Status::ok();
}

Result<std::size_t> RawSocket::do_send(const Bytes& data, u32 flags,
                                       std::optional<SockAddr> to) {
  (void)flags;
  if (!to.has_value()) {
    if (remote().ip.is_any()) return Status(Err::NOT_CONNECTED);
    to = remote();
  }
  Packet p;
  p.proto = Proto::RAW;
  p.raw_proto = raw_proto_;
  p.src = SockAddr{stack().vip(), 0};
  p.dst = SockAddr{to->ip, 0};
  p.payload = data;
  stack().output(std::move(p));
  return data.size();
}

Status RawSocket::do_connect(SockAddr peer) {
  set_remote(SockAddr{peer.ip, 0});
  return Status::ok();
}

void RawSocket::handle_packet(const Packet& p) {
  if (shut_rd_) return;
  auto rcvbuf = static_cast<std::size_t>(opts().get(SockOpt::SO_RCVBUF));
  std::size_t queued = 0;
  for (const auto& d : recv_q_) queued += d.data.size();
  if (queued + p.payload.size() > rcvbuf) return;
  recv_q_.push_back(RawDatagram{p.src, p.payload});
  notify();
}

Result<RecvResult> RawSocket::do_recvmsg(std::size_t maxlen, u32 flags) {
  if ((flags & MSG_OOB) != 0) return Status(Err::NOT_SUPPORTED);
  if (recv_q_.empty()) return Status(Err::WOULD_BLOCK);
  RawDatagram& d = recv_q_.front();
  RecvResult r;
  r.from = d.from;
  std::size_t n = std::min(maxlen, d.data.size());
  r.data.assign(d.data.begin(), d.data.begin() + static_cast<long>(n));
  if ((flags & MSG_PEEK) == 0) recv_q_.pop_front();
  return r;
}

u32 RawSocket::do_poll() {
  u32 ev = POLLOUT;
  if (!recv_q_.empty()) ev |= POLLIN;
  return ev;
}

Status RawSocket::do_shutdown(ShutdownHow how) {
  if (how == ShutdownHow::RD || how == ShutdownHow::RDWR) shut_rd_ = true;
  if (how == ShutdownHow::WR || how == ShutdownHow::RDWR) shut_wr_ = true;
  return Status::ok();
}

void RawSocket::do_release() {
  mark_user_closed();
  if (proto_bound_) stack().unregister_raw_bind(raw_proto_, id());
  recv_q_.clear();
  stack().reap(id());
}

}  // namespace zapc::net
