// Socket options.
//
// The paper (§5) saves socket parameters exclusively through the standard
// getsockopt/setsockopt interface: "For correctness, the entire set of the
// parameters is included in the saved state."  We therefore keep every
// behavioural socket property in this enumerable option table so the
// checkpointer can round-trip all of them without touching socket
// internals.
#pragma once

#include <array>

#include "util/types.h"

namespace zapc::net {

/// Enumerable socket options (SOL_SOCKET, IPPROTO_TCP and IPPROTO_IP
/// levels are flattened into one namespace).
enum class SockOpt : u32 {
  // Generic socket level.
  SO_REUSEADDR = 0,   // allow rebinding a recently used address
  SO_RCVBUF,          // receive buffer limit (bytes)
  SO_SNDBUF,          // send buffer limit (bytes)
  SO_KEEPALIVE,       // enable keep-alive probing
  SO_OOBINLINE,       // deliver urgent data inline
  SO_BROADCAST,       // allow broadcast (UDP)
  SO_LINGER,          // linger-on-close seconds (-1 = off)
  SO_RCVTIMEO,        // receive timeout, microseconds (0 = none)
  SO_SNDTIMEO,        // send timeout, microseconds (0 = none)
  SO_PRIORITY,        // queuing priority
  O_NONBLOCK,         // non-blocking I/O mode (fcntl flag, kept here)
  // TCP level.
  TCP_NODELAY,        // disable Nagle coalescing
  TCP_KEEPIDLE,       // keep-alive idle time, microseconds
  TCP_STDURG,         // BSD vs RFC urgent-pointer interpretation
  TCP_MAXSEG,         // maximum segment size
  // IP level.
  IP_TTL,             // time to live

  kCount,             // sentinel: number of options
};

constexpr std::size_t kNumSockOpts = static_cast<std::size_t>(SockOpt::kCount);

/// Human-readable option name.
const char* sockopt_name(SockOpt o);

/// Default option values for a fresh socket.
struct SockOptDefaults {
  static i64 value(SockOpt o) {
    switch (o) {
      case SockOpt::SO_RCVBUF: return 256 * 1024;
      case SockOpt::SO_SNDBUF: return 256 * 1024;
      case SockOpt::SO_LINGER: return -1;
      case SockOpt::IP_TTL: return 64;
      case SockOpt::TCP_MAXSEG: return 1460;
      default: return 0;
    }
  }
};

/// Per-socket option storage; values are plain integers so the whole set
/// can be enumerated, saved and restored generically.
class SockOptTable {
 public:
  SockOptTable() {
    for (std::size_t i = 0; i < kNumSockOpts; ++i) {
      v_[i] = SockOptDefaults::value(static_cast<SockOpt>(i));
    }
  }

  i64 get(SockOpt o) const { return v_[static_cast<std::size_t>(o)]; }
  void set(SockOpt o, i64 val) { v_[static_cast<std::size_t>(o)] = val; }

 private:
  std::array<i64, kNumSockOpts> v_{};
};

}  // namespace zapc::net
