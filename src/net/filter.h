// Per-node packet filter — the Netfilter analogue.
//
// Paper §4: "To prevent the network state from changing, the Agent
// disables all network activity to and from the pod ... by leveraging a
// standard network filtering service to block the links listed in the
// table; Netfilter comes standard with Linux and provides this
// functionality."
//
// Rules match on guest (virtual) addresses.  A blocked address drops every
// packet whose source or destination matches, on both ingress and egress.
#pragma once

#include <string>
#include <unordered_set>

#include "net/packet.h"
#include "obs/span.h"
#include "obs/stats.h"
#include "util/types.h"

namespace zapc::net {

/// Direction a packet is traveling through the filter hook.
enum class Hook { INGRESS, EGRESS };

class PacketFilter {
 public:
  /// Blocks all traffic to/from a guest address.  A new block starts a
  /// new "episode" for the causal trace: the first packet dropped under
  /// it is recorded as an op-tagged event (when a tag is installed).
  void block_addr(IpAddr a) {
    blocked_.insert(a);
    drop_event_emitted_ = false;
  }

  /// Removes the block on a guest address.
  void unblock_addr(IpAddr a) { blocked_.erase(a); }

  bool is_blocked(IpAddr a) const { return blocked_.count(a) != 0; }

  /// Installs the causal-trace context of the coordinated op that
  /// blocked this filter (the Agent sets it around block/unblock).
  void set_obs_tag(obs::ObsTag tag) { tag_ = std::move(tag); }
  void clear_obs_tag() { tag_ = {}; }

  /// Returns true if the packet may pass; false drops it.
  /// Counts drops for tests/benches.
  bool pass(const Packet& p, Hook hook) {
    if (blocked_.count(p.src.ip) || blocked_.count(p.dst.ip)) {
      if (hook == Hook::INGRESS) {
        ++dropped_ingress_;
      } else {
        ++dropped_egress_;
      }
      obs::stats::net_filter_dropped().inc();
      if (!drop_event_emitted_ && tag_.active()) {
        drop_event_emitted_ = true;
        tag_.event(std::string("net.filter.first_drop ") +
                   (hook == Hook::INGRESS ? "ingress" : "egress") +
                   " src=" + p.src.ip.to_string() +
                   " dst=" + p.dst.ip.to_string());
      }
      return false;
    }
    return true;
  }

  u64 dropped_ingress() const { return dropped_ingress_; }
  u64 dropped_egress() const { return dropped_egress_; }
  std::size_t num_blocked() const { return blocked_.size(); }

 private:
  std::unordered_set<IpAddr> blocked_;
  u64 dropped_ingress_ = 0;
  u64 dropped_egress_ = 0;
  bool drop_event_emitted_ = false;
  obs::ObsTag tag_;
};

}  // namespace zapc::net
