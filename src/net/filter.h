// Per-node packet filter — the Netfilter analogue.
//
// Paper §4: "To prevent the network state from changing, the Agent
// disables all network activity to and from the pod ... by leveraging a
// standard network filtering service to block the links listed in the
// table; Netfilter comes standard with Linux and provides this
// functionality."
//
// Rules match on guest (virtual) addresses.  A blocked address drops every
// packet whose source or destination matches, on both ingress and egress.
#pragma once

#include <unordered_set>

#include "net/packet.h"
#include "obs/stats.h"
#include "util/types.h"

namespace zapc::net {

/// Direction a packet is traveling through the filter hook.
enum class Hook { INGRESS, EGRESS };

class PacketFilter {
 public:
  /// Blocks all traffic to/from a guest address.
  void block_addr(IpAddr a) { blocked_.insert(a); }

  /// Removes the block on a guest address.
  void unblock_addr(IpAddr a) { blocked_.erase(a); }

  bool is_blocked(IpAddr a) const { return blocked_.count(a) != 0; }

  /// Returns true if the packet may pass; false drops it.
  /// Counts drops for tests/benches.
  bool pass(const Packet& p, Hook hook) {
    if (blocked_.count(p.src.ip) || blocked_.count(p.dst.ip)) {
      if (hook == Hook::INGRESS) {
        ++dropped_ingress_;
      } else {
        ++dropped_egress_;
      }
      obs::stats::net_filter_dropped().inc();
      return false;
    }
    return true;
  }

  u64 dropped_ingress() const { return dropped_ingress_; }
  u64 dropped_egress() const { return dropped_egress_; }
  std::size_t num_blocked() const { return blocked_.size(); }

 private:
  std::unordered_set<IpAddr> blocked_;
  u64 dropped_ingress_ = 0;
  u64 dropped_egress_ = 0;
};

}  // namespace zapc::net
