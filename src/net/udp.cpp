#include "net/udp.h"

#include <algorithm>

#include "net/stack.h"
#include "obs/stats.h"
#include "util/log.h"

namespace zapc::net {

UdpSocket::UdpSocket(Stack& stack, SockId id)
    : Socket(stack, id, Proto::UDP) {}

Result<std::size_t> UdpSocket::do_send(const Bytes& data, u32 flags,
                                       std::optional<SockAddr> to) {
  (void)flags;  // MSG_OOB has no UDP meaning; ignored like Linux does
  if (data.size() > kMaxDatagram) return Status(Err::MSG_SIZE);
  SockAddr dst;
  if (to.has_value()) {
    dst = *to;
  } else if (connected_) {
    dst = remote();
  } else {
    return Status(Err::NOT_CONNECTED, "UDP send without peer");
  }
  if (dst.port == 0) return Status(Err::INVALID, "port 0");

  if (!bound()) {
    auto port = stack().alloc_ephemeral(Proto::UDP);
    if (!port) return port.status();
    set_local(SockAddr{stack().vip(), port.value()});
    set_bound(true);
    set_owns_port(true);
    stack().register_udp_bind(local().port, id());
  }

  Packet p;
  p.proto = Proto::UDP;
  p.src = SockAddr{local().ip.is_any() ? stack().vip() : local().ip,
                   local().port};
  p.dst = dst;
  p.payload = data;
  stack().output(std::move(p));
  return data.size();
}

Status UdpSocket::do_connect(SockAddr peer) {
  // UDP connect just fixes the default destination + source filter.
  if (peer.port == 0) {
    connected_ = false;
    set_remote(SockAddr{});
    return Status::ok();
  }
  if (!bound()) {
    auto port = stack().alloc_ephemeral(Proto::UDP);
    if (!port) return port.status();
    set_local(SockAddr{stack().vip(), port.value()});
    set_bound(true);
    set_owns_port(true);
    stack().register_udp_bind(local().port, id());
  }
  set_remote(peer);
  connected_ = true;
  return Status::ok();
}

void UdpSocket::handle_packet(const Packet& p) {
  if (shut_rd_) return;
  if (connected_ && p.src != remote()) return;  // connected-filter

  auto rcvbuf = static_cast<std::size_t>(opts().get(SockOpt::SO_RCVBUF));
  if (queued_bytes_ + p.payload.size() > rcvbuf) {
    ZLOG_DEBUG("udp " << stack().name() << "/" << id()
                      << ": rcvbuf full, datagram dropped");
    obs::stats::net_udp_dropped().inc();
    return;  // legitimate UDP behaviour: queue overflow drops
  }
  queued_bytes_ += p.payload.size();
  recv_q_.push_back(Datagram{p.src, p.payload});
  obs::stats::net_udp_recv_queue().set(static_cast<i64>(queued_bytes_));
  notify();
}

Result<RecvResult> UdpSocket::do_recvmsg(std::size_t maxlen, u32 flags) {
  if ((flags & MSG_OOB) != 0) return Status(Err::NOT_SUPPORTED);
  if (recv_q_.empty()) {
    if (shut_rd_) {
      RecvResult r;
      r.eof = true;
      return r;
    }
    return Status(Err::WOULD_BLOCK);
  }
  Datagram& d = recv_q_.front();
  RecvResult r;
  r.from = d.from;
  std::size_t n = std::min(maxlen, d.data.size());
  r.data.assign(d.data.begin(), d.data.begin() + static_cast<long>(n));
  if ((flags & MSG_PEEK) != 0) {
    // Paper §5: peeked-at data is part of the application's state and must
    // survive checkpoint; remember that a peek happened.
    peeked_ = true;
  } else {
    queued_bytes_ -= d.data.size();
    recv_q_.pop_front();  // rest of the datagram is discarded (truncation)
  }
  return r;
}

u32 UdpSocket::do_poll() {
  u32 ev = POLLOUT;
  if (!recv_q_.empty() || shut_rd_) ev |= POLLIN;
  return ev;
}

Status UdpSocket::do_shutdown(ShutdownHow how) {
  if (how == ShutdownHow::RD || how == ShutdownHow::RDWR) shut_rd_ = true;
  if (how == ShutdownHow::WR || how == ShutdownHow::RDWR) shut_wr_ = true;
  notify();
  return Status::ok();
}

void UdpSocket::do_release() {
  mark_user_closed();
  recv_q_.clear();
  queued_bytes_ = 0;
  stack().reap(id());
}

std::size_t UdpSocket::queue_bytes() const { return queued_bytes_; }

}  // namespace zapc::net
