#include "net/stack.h"

#include <algorithm>

#include "net/raw.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "util/log.h"

namespace zapc::net {
namespace {

/// Sends a RST in response to a segment that matched no socket.
void send_rst_for(Stack& stack, const Packet& cause) {
  if (cause.has(kRst)) return;
  Packet p;
  p.proto = Proto::TCP;
  p.src = cause.dst;
  p.dst = cause.src;
  p.flags = kRst | kAck;
  p.seq = cause.has(kAck) ? cause.ack : 0;
  p.ack = cause.seq + static_cast<u32>(cause.payload.size()) +
          (cause.has(kSyn) ? 1 : 0) + (cause.has(kFin) ? 1 : 0);
  stack.output(std::move(p));
}

}  // namespace

Stack::Stack(sim::Engine& engine, IpAddr vip, std::string name)
    : engine_(engine),
      vip_(vip),
      name_(std::move(name)),
      rng_(0xC0FFEEull ^ (static_cast<u64>(vip.v) << 16)) {}

Stack::~Stack() = default;

Result<SockId> Stack::add_socket(std::unique_ptr<Socket> sock) {
  SockId id = sock->id();
  sockets_.emplace(id, std::move(sock));
  return id;
}

Result<SockId> Stack::sys_socket(Proto proto) {
  SockId id = next_id_++;
  switch (proto) {
    case Proto::TCP:
      return add_socket(std::make_unique<TcpSocket>(*this, id));
    case Proto::UDP:
      return add_socket(std::make_unique<UdpSocket>(*this, id));
    case Proto::RAW:
      return add_socket(std::make_unique<RawSocket>(*this, id));
  }
  return Status(Err::INVALID, "bad protocol");
}

Socket* Stack::find(SockId s) {
  if (dying_.count(s)) return nullptr;
  auto it = sockets_.find(s);
  return it == sockets_.end() ? nullptr : it->second.get();
}

const Socket* Stack::find(SockId s) const {
  if (dying_.count(s)) return nullptr;
  auto it = sockets_.find(s);
  return it == sockets_.end() ? nullptr : it->second.get();
}

TcpSocket* Stack::find_tcp(SockId s) {
  Socket* sock = find(s);
  return (sock != nullptr && sock->proto() == Proto::TCP)
             ? static_cast<TcpSocket*>(sock)
             : nullptr;
}

UdpSocket* Stack::find_udp(SockId s) {
  Socket* sock = find(s);
  return (sock != nullptr && sock->proto() == Proto::UDP)
             ? static_cast<UdpSocket*>(sock)
             : nullptr;
}

RawSocket* Stack::find_raw(SockId s) {
  Socket* sock = find(s);
  return (sock != nullptr && sock->proto() == Proto::RAW)
             ? static_cast<RawSocket*>(sock)
             : nullptr;
}

std::vector<SockId> Stack::all_socket_ids() const {
  std::vector<SockId> ids;
  ids.reserve(sockets_.size());
  for (const auto& [id, sock] : sockets_) {
    if (!dying_.count(id)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---- Syscall-level API -------------------------------------------------------

Status Stack::sys_bind(SockId s, SockAddr addr) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  if (sock->bound()) return Status(Err::INVALID, "already bound");
  if (sock->proto() == Proto::RAW) {
    return Status(Err::INVALID, "use sys_bind_raw for raw sockets");
  }
  if (!addr.ip.is_any() && addr.ip != vip_) {
    return Status(Err::ADDR_UNREACH, "not a local address");
  }

  u16 port = addr.port;
  if (port == 0) {
    auto eph = alloc_ephemeral(sock->proto());
    if (!eph) return eph.status();
    port = eph.value();
  } else {
    bool reuse = sock->opts().get(SockOpt::SO_REUSEADDR) != 0;
    Status st = reserve_port(sock->proto(), port, reuse);
    if (!st) return st;
  }
  sock->set_local(SockAddr{addr.ip, port});
  sock->set_bound(true);
  sock->set_owns_port(true);
  if (sock->proto() == Proto::UDP) register_udp_bind(port, s);
  return Status::ok();
}

Status Stack::sys_bind_raw(SockId s, u8 raw_proto) {
  RawSocket* sock = find_raw(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->bind_proto(raw_proto);
}

Status Stack::sys_listen(SockId s, int backlog) {
  TcpSocket* sock = find_tcp(s);
  if (sock == nullptr) return Status(Err::BAD_FD, "listen on non-TCP");
  return sock->listen(backlog);
}

Result<SockId> Stack::sys_accept(SockId s, SockAddr* peer) {
  TcpSocket* sock = find_tcp(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->accept(peer);
}

Status Stack::sys_connect(SockId s, SockAddr peer) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->do_connect(peer);
}

Result<std::size_t> Stack::sys_send(SockId s, const Bytes& data, u32 flags) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->do_send(data, flags, std::nullopt);
}

Result<std::size_t> Stack::sys_sendto(SockId s, const Bytes& data, u32 flags,
                                      SockAddr to) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->do_send(data, flags, to);
}

Result<RecvResult> Stack::sys_recv(SockId s, std::size_t maxlen, u32 flags) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->recvmsg(maxlen, flags);  // through the dispatch vector
}

Status Stack::sys_shutdown(SockId s, ShutdownHow how) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->do_shutdown(how);
}

Status Stack::sys_close(SockId s) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  sock->release();  // through the dispatch vector (paper: release method)
  return Status::ok();
}

u32 Stack::sys_poll(SockId s) {
  Socket* sock = find(s);
  if (sock == nullptr) return POLLERR;
  return sock->poll();  // through the dispatch vector
}

Result<i64> Stack::sys_getsockopt(SockId s, SockOpt opt) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  if (opt >= SockOpt::kCount) return Status(Err::INVALID);
  return sock->opts().get(opt);
}

Status Stack::sys_setsockopt(SockId s, SockOpt opt, i64 value) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  if (opt >= SockOpt::kCount) return Status(Err::INVALID);
  sock->opts().set(opt, value);
  return Status::ok();
}

Result<SockAddr> Stack::sys_getsockname(SockId s) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  return sock->local();
}

Result<SockAddr> Stack::sys_getpeername(SockId s) {
  Socket* sock = find(s);
  if (sock == nullptr) return Status(Err::BAD_FD);
  if (sock->remote() == SockAddr{}) return Status(Err::NOT_CONNECTED);
  return sock->remote();
}

// ---- Demultiplexing -----------------------------------------------------------

void Stack::deliver(const Packet& p) {
  switch (p.proto) {
    case Proto::TCP: {
      FlowKey key{Proto::TCP, p.dst, p.src};
      auto it = flows_.find(key);
      if (it != flows_.end()) {
        if (Socket* sock = find(it->second)) {
          sock->handle_packet(p);
          return;
        }
      }
      auto lit = tcp_listeners_.find(p.dst.port);
      if (lit != tcp_listeners_.end()) {
        if (Socket* sock = find(lit->second)) {
          sock->handle_packet(p);
          return;
        }
      }
      ++demux_drops_;
      send_rst_for(*this, p);
      return;
    }
    case Proto::UDP: {
      auto it = udp_binds_.find(p.dst.port);
      if (it != udp_binds_.end()) {
        if (Socket* sock = find(it->second)) {
          sock->handle_packet(p);
          return;
        }
      }
      ++demux_drops_;  // no ICMP port-unreachable modeled
      return;
    }
    case Proto::RAW: {
      auto [lo, hi] = raw_binds_.equal_range(p.raw_proto);
      bool any = false;
      for (auto it = lo; it != hi; ++it) {
        if (Socket* sock = find(it->second)) {
          sock->handle_packet(p);
          any = true;
        }
      }
      if (!any) ++demux_drops_;
      return;
    }
  }
}

void Stack::output(Packet p) {
  if (output_) {
    output_(std::move(p));
  } else {
    ZLOG_WARN("stack " << name_ << ": output dropped (no router)");
  }
}

// ---- Ports & registration ------------------------------------------------------

Result<u16> Stack::alloc_ephemeral(Proto proto) {
  for (int attempts = 0; attempts < 28232; ++attempts) {
    u16 port = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 60999 ? 32768 : static_cast<u16>(next_ephemeral_ + 1);
    auto key = std::make_pair(proto, port);
    if (ports_.count(key) == 0) {
      ports_[key] = 1;
      return port;
    }
  }
  return Status(Err::ADDR_IN_USE, "ephemeral ports exhausted");
}

Status Stack::reserve_port(Proto proto, u16 port, bool reuse_ok) {
  auto key = std::make_pair(proto, port);
  auto it = ports_.find(key);
  if (it != ports_.end() && it->second > 0 && !reuse_ok) {
    return Status(Err::ADDR_IN_USE,
                  proto_name(proto) + std::string(" port ") +
                      std::to_string(port));
  }
  ports_[key] += 1;
  return Status::ok();
}

void Stack::release_port(Proto proto, u16 port) {
  auto key = std::make_pair(proto, port);
  auto it = ports_.find(key);
  if (it == ports_.end()) return;
  if (--it->second <= 0) ports_.erase(it);
}

void Stack::register_flow(const FlowKey& key, SockId s) { flows_[key] = s; }

void Stack::unregister_flow(const FlowKey& key) { flows_.erase(key); }

void Stack::register_listener(u16 port, SockId s) { tcp_listeners_[port] = s; }

void Stack::unregister_listener(u16 port) { tcp_listeners_.erase(port); }

void Stack::register_udp_bind(u16 port, SockId s) { udp_binds_[port] = s; }

void Stack::unregister_udp_bind(u16 port) { udp_binds_.erase(port); }

void Stack::register_raw_bind(u8 raw_proto, SockId s) {
  raw_binds_.emplace(raw_proto, s);
}

void Stack::unregister_raw_bind(u8 raw_proto, SockId s) {
  auto [lo, hi] = raw_binds_.equal_range(raw_proto);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == s) {
      raw_binds_.erase(it);
      return;
    }
  }
}

TcpSocket& Stack::create_tcp_child(TcpSocket& listener, SockAddr remote) {
  SockId id = next_id_++;
  auto child = std::make_unique<TcpSocket>(*this, id);
  TcpSocket& ref = *child;
  sockets_.emplace(id, std::move(child));

  IpAddr local_ip =
      listener.local().ip.is_any() ? vip_ : listener.local().ip;
  ref.set_local(SockAddr{local_ip, listener.local().port});
  ref.set_remote(remote);
  ref.set_bound(true);
  ref.set_owns_port(false);  // the port belongs to the listener
  ref.opts() = listener.opts();  // children inherit socket options
  ref.parent_listener_ = listener.id();
  register_flow(FlowKey{Proto::TCP, ref.local(), ref.remote()}, id);
  return ref;
}

void Stack::reap(SockId s) {
  auto it = sockets_.find(s);
  if (it == sockets_.end() || dying_.count(s)) return;
  Socket& sock = *it->second;

  // Remove from demux immediately so no further packets reach it.
  flows_.erase(FlowKey{sock.proto(), sock.local(), sock.remote()});
  if (sock.proto() == Proto::TCP) {
    auto lit = tcp_listeners_.find(sock.local().port);
    if (lit != tcp_listeners_.end() && lit->second == s) {
      tcp_listeners_.erase(lit);
    }
  } else if (sock.proto() == Proto::UDP) {
    auto uit = udp_binds_.find(sock.local().port);
    if (uit != udp_binds_.end() && uit->second == s) udp_binds_.erase(uit);
  }
  if (sock.owns_port()) release_port(sock.proto(), sock.local().port);

  // Destroy from a fresh event so member functions still on the call stack
  // return safely.
  dying_.insert(s);
  engine_.schedule(0, [tok = std::weak_ptr<const bool>(alive_), this, s] {
    if (tok.expired()) return;
    dying_.erase(s);
    sockets_.erase(s);
  });
}

}  // namespace zapc::net
