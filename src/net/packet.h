// Packet formats.
//
// The cluster interconnect is an overlay: guest (pod) packets carry
// virtual addresses and are encapsulated in wire packets that carry the
// real node addresses (this models Zap's virtual-to-real network address
// remapping).
#pragma once

#include <string>

#include "net/addr.h"
#include "util/types.h"

namespace zapc::net {

/// TCP header flags.
enum TcpFlag : u8 {
  kSyn = 1 << 0,
  kAck = 1 << 1,
  kFin = 1 << 2,
  kRst = 1 << 3,
  kUrg = 1 << 4,
};

/// A transport-layer packet in the guest (virtual) address space.
struct Packet {
  Proto proto = Proto::UDP;
  SockAddr src;
  SockAddr dst;

  // TCP-only header fields (ignored for UDP/RAW).
  u8 flags = 0;
  u32 seq = 0;      // sequence number of first payload byte
  u32 ack = 0;      // acknowledgment number (valid with kAck)
  u32 wnd = 0;      // advertised receive window
  u32 urg_ptr = 0;  // sequence offset of urgent byte (valid with kUrg)

  // RAW-only: the guest protocol number carried in the IP header.
  u8 raw_proto = 0;

  Bytes payload;

  bool has(TcpFlag f) const { return (flags & f) != 0; }

  /// Total modeled size in bytes (headers + payload) for bandwidth costs.
  std::size_t wire_size() const { return 40 + payload.size(); }

  std::string summary() const;
};

/// An encapsulated packet on the physical cluster network.
struct WirePacket {
  IpAddr src_node;  // real address of sending node
  IpAddr dst_node;  // real address of receiving node
  Packet inner;

  std::size_t wire_size() const { return 20 + inner.wire_size(); }
};

}  // namespace zapc::net
