// UDP: unreliable datagram transport with MSG_PEEK support.
//
// Paper §5: with unreliable protocols the minimal protocol state is nil —
// losing queue contents is indistinguishable from legitimate packet loss —
// but the receive queue is saved anyway ("we chose to have our scheme
// always save the data in the queues, regardless of the protocol") both to
// preserve peeked-at data semantics and to avoid artificial loss slowing
// the application right after restart.
#pragma once

#include <deque>
#include <optional>

#include "net/socket.h"

namespace zapc::net {

class UdpSocket final : public Socket {
 public:
  UdpSocket(Stack& stack, SockId id);

  Result<RecvResult> do_recvmsg(std::size_t maxlen, u32 flags) override;
  u32 do_poll() override;
  void do_release() override;
  Result<std::size_t> do_send(const Bytes& data, u32 flags,
                              std::optional<SockAddr> to) override;
  Status do_connect(SockAddr peer) override;
  Status do_shutdown(ShutdownHow how) override;
  void handle_packet(const Packet& p) override;
  bool reapable() const override { return user_closed(); }

  bool connected() const { return connected_; }

  /// In-kernel view of the receive queue (checkpoint diagnostics/tests).
  std::size_t queue_len() const { return recv_q_.size(); }
  std::size_t queue_bytes() const;
  /// Whether the application has peeked at queued data without consuming
  /// it (forces queue preservation across checkpoint; paper §5).
  bool peeked() const { return peeked_; }

  /// Maximum datagram payload accepted by do_send.
  static constexpr std::size_t kMaxDatagram = 65507;

 private:
  struct Datagram {
    SockAddr from;
    Bytes data;
  };

  std::deque<Datagram> recv_q_;
  std::size_t queued_bytes_ = 0;
  bool connected_ = false;
  bool peeked_ = false;
};

}  // namespace zapc::net
