// Cluster interconnect simulator.
//
// Models the Gigabit-Ethernet switch of the paper's BladeCenter testbed:
// per-NIC serialization delay (bandwidth), propagation latency with
// optional jitter, and optional packet loss.  Delivery is asynchronous via
// the discrete-event engine, so packets genuinely are "in flight" and can
// be dropped by a pod's packet filter while a checkpoint freezes the
// network — the failure mode §5 of the paper reasons about.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/types.h"

namespace zapc::net {

/// Link characteristics applied to every wire packet.
struct FabricConfig {
  sim::Time latency = 50 * sim::kMicrosecond;  // one-way propagation
  sim::Time jitter = 0;                        // uniform extra [0, jitter]
  double loss_prob = 0.0;                      // independent drop chance
  u64 bandwidth_bps = 1'000'000'000;           // per-NIC egress bandwidth
  u64 seed = 42;                               // RNG for loss/jitter
};

/// Statistics for tests and benches.
struct FabricStats {
  u64 packets_sent = 0;
  u64 packets_delivered = 0;
  u64 packets_dropped_loss = 0;     // random loss
  u64 packets_dropped_noroute = 0;  // destination not registered
  u64 bytes_delivered = 0;
};

/// The wire: routes WirePackets between registered node NICs.
class Fabric {
 public:
  /// Called on the receiving node when a packet arrives.
  using DeliverFn = std::function<void(const WirePacket&)>;

  Fabric(sim::Engine& engine, FabricConfig config = {})
      : engine_(engine), config_(config), rng_(config.seed) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers (or replaces) the NIC of a node.
  void attach(IpAddr node_addr, DeliverFn deliver);

  /// Removes a node from the network (models node failure / removal).
  void detach(IpAddr node_addr);

  bool attached(IpAddr node_addr) const {
    return nics_.count(node_addr) != 0;
  }

  /// Sends a wire packet; it is delivered (or dropped) asynchronously.
  void send(WirePacket pkt);

  const FabricStats& stats() const { return stats_; }
  const FabricConfig& config() const { return config_; }

  /// Adjusts loss probability at runtime (failure-injection tests).
  void set_loss_prob(double p) { config_.loss_prob = p; }

 private:
  struct Nic {
    DeliverFn deliver;
    sim::Time busy_until = 0;  // egress serialization (bandwidth model)
  };

  sim::Engine& engine_;
  FabricConfig config_;
  Rng rng_;
  std::unordered_map<IpAddr, Nic> nics_;
  FabricStats stats_;
};

}  // namespace zapc::net
