#include "net/socket.h"

#include <algorithm>

#include "net/stack.h"
#include "obs/stats.h"

namespace zapc::net {

Result<RecvResult> AltRecvQueue::serve(bool stream, std::size_t maxlen,
                                       u32 flags) {
  if (items_.empty()) return Status(Err::WOULD_BLOCK, "alt queue empty");

  const bool peek = (flags & MSG_PEEK) != 0;
  RecvResult out;

  if (!stream) {
    // Datagram semantics: one item per call, truncating to maxlen.
    RecvItem& item = items_.front();
    out.from = item.from;
    out.oob = item.oob;
    std::size_t n = std::min(maxlen, item.data.size());
    out.data.assign(item.data.begin(), item.data.begin() + n);
    if (!peek) items_.pop_front();
    return out;
  }

  // Stream semantics: merge items up to maxlen, but never merge across an
  // out-of-band boundary and stop before an OOB byte so POLLPRI semantics
  // survive restore.
  std::size_t taken = 0;
  std::size_t idx = 0;
  while (taken < maxlen && idx < items_.size()) {
    RecvItem& item = items_[idx];
    if (item.oob) {
      if (taken > 0) break;  // deliver pending normal data first
      if ((flags & MSG_OOB) == 0) break;
      out.oob = true;
      out.from = item.from;
      out.data = item.data;
      if (!peek) items_.erase(items_.begin());
      return out;
    }
    if ((flags & MSG_OOB) != 0) {
      // No OOB data at the head: let the caller fall through to the
      // protocol's own urgent-data channel.
      return Status(Err::WOULD_BLOCK, "no OOB data in alt queue");
    }
    out.from = item.from;
    std::size_t n = std::min(maxlen - taken, item.data.size());
    out.data.insert(out.data.end(), item.data.begin(),
                    item.data.begin() + n);
    taken += n;
    if (!peek) {
      if (n == item.data.size()) {
        items_.pop_front();
        // idx stays 0
      } else {
        item.data.erase(item.data.begin(), item.data.begin() + n);
        break;
      }
    } else {
      if (n < item.data.size()) break;
      ++idx;
    }
  }
  if (out.data.empty() && !out.oob) {
    return Status(Err::WOULD_BLOCK, "alt queue has only OOB data");
  }
  return out;
}

std::size_t AltRecvQueue::byte_size() const {
  std::size_t n = 0;
  for (const auto& i : items_) n += i.data.size();
  return n;
}

Socket::Socket(Stack& stack, SockId id, Proto proto)
    : stack_(stack), id_(id), proto_(proto) {
  reset_default_ops();
}

void Socket::notify() {
  if (on_event_) on_event_();
  stack_.on_socket_event(id_);
}

void Socket::reset_default_ops() {
  ops_.recvmsg = [](Socket& s, std::size_t maxlen, u32 flags) {
    return s.do_recvmsg(maxlen, flags);
  };
  ops_.poll = [](Socket& s) { return s.do_poll(); };
  ops_.release = [](Socket& s) { s.do_release(); };
}

void Socket::install_alt_queue(std::deque<RecvItem> items) {
  if (items.empty()) return;
  obs::stats::net_altq_installs().inc();
  alt_queue_ = std::make_unique<AltRecvQueue>(std::move(items));

  // Interposed recvmsg: satisfy reads from the alternate queue first;
  // reinstall the original methods once it drains.
  SocketOps ops;
  ops.recvmsg = [](Socket& s, std::size_t maxlen, u32 flags)
      -> Result<RecvResult> {
    AltRecvQueue* q = s.alt_queue_.get();
    const bool stream = s.proto() == Proto::TCP;
    auto r = q->serve(stream, maxlen, flags);
    if (q->empty()) {
      obs::stats::net_altq_drains().inc();
      s.reset_default_ops();
      s.drop_alt_queue();
    }
    if (r.is_ok()) return r;
    if (r.err() == Err::WOULD_BLOCK) {
      // Nothing suitable in the alternate queue; fall through to the
      // protocol queue (e.g. OOB request while alt queue holds normal
      // data).
      return s.do_recvmsg(maxlen, flags);
    }
    return r;
  };
  ops.poll = [](Socket& s) {
    u32 ev = s.do_poll();
    AltRecvQueue* q = s.alt_queue_.get();
    if (q && !q->empty()) {
      ev |= POLLIN;
      for (const auto& item : q->items()) {
        if (item.oob) ev |= POLLPRI;
      }
    }
    return ev;
  };
  ops.release = [](Socket& s) {
    // Cleanup: discard unconsumed restored data, then normal release.
    s.drop_alt_queue();
    s.reset_default_ops();
    s.do_release();
  };
  ops_ = std::move(ops);
  notify();
}

}  // namespace zapc::net
