#include "net/addr.h"

#include <cstdio>

namespace zapc::net {

std::string IpAddr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v >> 24) & 0xFF,
                (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF);
  return buf;
}

Result<IpAddr> IpAddr::parse(const std::string& s) {
  unsigned a, b, c, d;
  char extra;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4) {
    return Status(Err::INVALID, "malformed address: " + s);
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) {
    return Status(Err::INVALID, "octet out of range: " + s);
  }
  return IpAddr(static_cast<u8>(a), static_cast<u8>(b), static_cast<u8>(c),
                static_cast<u8>(d));
}

std::string SockAddr::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::TCP: return "tcp";
    case Proto::UDP: return "udp";
    case Proto::RAW: return "raw";
  }
  return "?";
}

}  // namespace zapc::net
