// SFI / Bratu solid-fuel-ignition solver (paper §6 workload 3, the PETSc
// example).
//
// Solves the Bratu equation  Δu + λ·eᵘ = 0  on the unit square with
// zero boundary conditions, using damped Jacobi–Newton sweeps on a
// distributed array: the grid is partitioned into row blocks ("uses
// distributed arrays to partition the problem grid"), each iteration
// exchanges one halo row with each neighbour and periodically allreduces
// the residual norm — "a moderate level of communication".
#pragma once

#include "apps/mpi_app.h"

namespace zapc::apps {

class BratuProgram final : public os::Program {
 public:
  struct Params {
    i32 rank = 0;
    i32 size = 1;
    u32 n = 256;             // global n×n interior grid
    double lambda = 6.0;     // ignition parameter (< ~6.8 converges)
    u32 iterations = 400;    // Jacobi-Newton sweeps
    u32 reduce_every = 10;   // residual allreduce period
    double tol = 1e-8;       // early-stop tolerance on residual norm
    sim::Time cost_per_row = 2;  // modeled CPU time per grid row sweep
    u64 workspace_bytes = 0;     // extra modeled footprint (solver state)
  };

  BratuProgram() = default;
  explicit BratuProgram(Params p)
      : p_(p), comm_(job_config(p.rank, p.size)) {}

  const char* kind() const override { return "apps.bratu"; }

  os::StepResult step(os::Syscalls& sys) override;

  void save(Encoder& e) const override;
  void load(Decoder& d) override;

  u32 iterations_done() const { return iter_; }
  double residual() const { return residual_; }

 private:
  enum Pc : u32 {
    INIT = 0,
    EXCHANGE_SEND,
    EXCHANGE_RECV,
    SWEEP,
    REDUCE,
    FINISH,
  };

  // Row-block decomposition helpers.
  u32 rows_begin() const {
    return p_.n * static_cast<u32>(p_.rank) / static_cast<u32>(p_.size);
  }
  u32 rows_end() const {
    return p_.n * static_cast<u32>(p_.rank + 1) / static_cast<u32>(p_.size);
  }
  u32 local_rows() const { return rows_end() - rows_begin(); }

  double* grid(os::Syscalls& sys);
  double* halo_up(os::Syscalls& sys);
  double* halo_down(os::Syscalls& sys);

  Params p_;
  mpi::MpiComm comm_;
  u32 pc_ = INIT;
  u32 iter_ = 0;
  double local_res2_ = 0;
  double residual_ = 1e30;
  bool got_up_ = false;
  bool got_down_ = false;
  std::vector<double> reduced_;
};

}  // namespace zapc::apps
