#include "apps/bt.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "os/san.h"

namespace zapc::apps {
namespace {

constexpr u32 kTagHaloUp = 201;
constexpr u32 kTagHaloDown = 202;
constexpr u32 kHaloWidth = 2;  // rows exchanged per direction ("wide")

/// Solves the tridiagonal system (-a, 1+2a, -a) x = rhs in place
/// (Thomas algorithm); x has stride `stride`.
void thomas(double* x, u32 len, double a, double* scratch, u32 stride) {
  if (len == 0) return;
  const double b = 1.0 + 2.0 * a;
  // Forward elimination.
  scratch[0] = -a / b;
  x[0] = x[0] / b;
  for (u32 i = 1; i < len; ++i) {
    double m = 1.0 / (b + a * scratch[i - 1]);
    scratch[i] = -a * m;
    x[i * stride] = (x[i * stride] + a * x[(i - 1) * stride]) * m;
  }
  // Back substitution.
  for (u32 i = len - 1; i-- > 0;) {
    x[i * stride] -= scratch[i] * x[(i + 1) * stride];
  }
}

}  // namespace

double* BtProgram::grid(os::Syscalls& sys) {
  // Local rows plus kHaloWidth halo rows on each side.
  std::size_t bytes = static_cast<std::size_t>(local_rows() + 2 * kHaloWidth) *
                      p_.n * sizeof(double);
  return reinterpret_cast<double*>(sys.region("grid", bytes).data());
}

os::StepResult BtProgram::step(os::Syscalls& sys) {
  using os::StepResult;
  const u32 n = p_.n;
  const i32 up = p_.rank - 1;
  const i32 down = p_.rank + 1;
  const bool has_up = up >= 0;
  const bool has_down = down < p_.size;
  double* g = grid(sys);
  double* interior = g + static_cast<std::size_t>(kHaloWidth) * n;

  switch (pc_) {
    case INIT: {
      if (p_.workspace_bytes > 0) sys.region("workspace", p_.workspace_bytes);
      if (!comm_.try_init(sys)) return wait_comm(comm_);
      if (!initialized_grid_) {
        // u₀ = sin(πx)·sin(πy): smooth mode that decays under diffusion.
        for (u32 r = 0; r < local_rows(); ++r) {
          double y = static_cast<double>(rows_begin() + r + 1) / (n + 1);
          for (u32 c = 0; c < n; ++c) {
            double x = static_cast<double>(c + 1) / (n + 1);
            interior[static_cast<std::size_t>(r) * n + c] =
                std::sin(M_PI * x) * std::sin(M_PI * y);
          }
        }
        initialized_grid_ = true;
      }
      pc_ = X_SWEEP;
      return StepResult::yield();
    }
    case X_SWEEP: {
      // Implicit solve along x for every local row.
      std::vector<double> scratch(n);
      for (u32 r = 0; r < local_rows(); ++r) {
        thomas(interior + static_cast<std::size_t>(r) * n, n, p_.alpha_dt,
               scratch.data(), 1);
      }
      pc_ = SEND_HALO;
      return StepResult::yield(
          std::max<sim::Time>(local_rows() * p_.cost_per_row, 1));
    }
    case SEND_HALO: {
      auto pack_rows = [&](u32 first_local_row) {
        Bytes b(static_cast<std::size_t>(kHaloWidth) * n * sizeof(double));
        std::memcpy(b.data(),
                    interior + static_cast<std::size_t>(first_local_row) * n,
                    b.size());
        return b;
      };
      if (has_up) comm_.post_send(sys, up, kTagHaloUp, pack_rows(0));
      if (has_down) {
        comm_.post_send(sys, down, kTagHaloDown,
                        pack_rows(local_rows() - kHaloWidth));
      }
      got_up_ = !has_up;
      got_down_ = !has_down;
      pc_ = RECV_HALO;
      return StepResult::yield();
    }
    case RECV_HALO: {
      if (!got_up_) {
        auto m = comm_.try_recv(sys, up, kTagHaloDown);
        if (m) {
          std::memcpy(g, m->data(),
                      std::min<std::size_t>(
                          m->size(),
                          static_cast<std::size_t>(kHaloWidth) * n *
                              sizeof(double)));
          got_up_ = true;
        }
      }
      if (!got_down_) {
        auto m = comm_.try_recv(sys, down, kTagHaloUp);
        if (m) {
          std::memcpy(interior + static_cast<std::size_t>(local_rows()) * n,
                      m->data(),
                      std::min<std::size_t>(
                          m->size(),
                          static_cast<std::size_t>(kHaloWidth) * n *
                              sizeof(double)));
          got_down_ = true;
        }
      }
      if (!got_up_ || !got_down_) {
        if (comm_.failed()) return StepResult::exit(2);
        return wait_comm(comm_);
      }
      pc_ = Y_SWEEP;
      return StepResult::yield();
    }
    case Y_SWEEP: {
      // Block-local implicit solve along y using halo rows as boundary
      // coupling (block-Jacobi ADI).
      u32 len = local_rows();
      std::vector<double> scratch(len);
      for (u32 c = 0; c < n; ++c) {
        double* col = interior + c;
        // Fold halo boundary values into the first/last RHS entries.
        if (has_up) {
          col[0] += p_.alpha_dt * g[(kHaloWidth - 1) * n + c];
        }
        if (has_down) {
          col[static_cast<std::size_t>(len - 1) * n] +=
              p_.alpha_dt *
              interior[static_cast<std::size_t>(len) * n + c];
        }
        thomas(col, len, p_.alpha_dt, scratch.data(), n);
      }
      pc_ = NORM;
      return StepResult::yield(
          std::max<sim::Time>(local_rows() * p_.cost_per_row, 1));
    }
    case NORM: {
      double sum2 = 0, sum_abs = 0, maxv = 0;
      for (u32 r = 0; r < local_rows(); ++r) {
        for (u32 c = 0; c < n; ++c) {
          double v = interior[static_cast<std::size_t>(r) * n + c];
          sum2 += v * v;
          sum_abs += std::abs(v);
          maxv = std::max(maxv, std::abs(v));
        }
      }
      if (!comm_.try_allreduce_sum(sys, {sum2, sum_abs, maxv}, &reduced_)) {
        if (comm_.failed()) return StepResult::exit(2);
        return wait_comm(comm_);
      }
      norm_ = std::sqrt(reduced_[0]) / (static_cast<double>(n));
      if (step_ == 0) initial_norm_ = norm_;
      ++step_;
      pc_ = step_ >= p_.steps ? static_cast<u32>(FINISH)
                              : static_cast<u32>(X_SWEEP);
      return StepResult::yield();
    }
    case FINISH: {
      if (p_.rank == 0) {
        Encoder e;
        e.put_f64(norm_);
        e.put_f64(initial_norm_);
        e.put_u32(step_);
        sys.san().write("results/bt", e.take());
      }
      // Diffusion must have decayed the mode monotonically toward 0.
      bool ok = std::isfinite(norm_) && norm_ < initial_norm_ && norm_ > 0;
      return StepResult::exit(ok ? 0 : 3);
    }
    default:
      return StepResult::exit(9);
  }
}

void BtProgram::save(Encoder& e) const {
  e.put_i32(p_.rank);
  e.put_i32(p_.size);
  e.put_u32(p_.n);
  e.put_u32(p_.steps);
  e.put_f64(p_.alpha_dt);
  e.put_u64(p_.cost_per_row);
  e.put_u64(p_.workspace_bytes);
  comm_.save(e);
  e.put_u32(pc_);
  e.put_u32(step_);
  e.put_bool(initialized_grid_);
  e.put_bool(got_up_);
  e.put_bool(got_down_);
  e.put_f64(norm_);
  e.put_f64(initial_norm_);
}

void BtProgram::load(Decoder& d) {
  p_.rank = d.i32_().value_or(0);
  p_.size = d.i32_().value_or(1);
  p_.n = d.u32_().value_or(16);
  p_.steps = d.u32_().value_or(1);
  p_.alpha_dt = d.f64_().value_or(0.1);
  p_.cost_per_row = d.u64_().value_or(1);
  p_.workspace_bytes = d.u64_().value_or(0);
  comm_.load(d);
  pc_ = d.u32_().value_or(0);
  step_ = d.u32_().value_or(0);
  initialized_grid_ = d.bool_().value_or(false);
  got_up_ = d.bool_().value_or(false);
  got_down_ = d.bool_().value_or(false);
  norm_ = d.f64_().value_or(0);
  initial_norm_ = d.f64_().value_or(0);
}

}  // namespace zapc::apps

ZAPC_REGISTER_PROGRAM(app_bt, zapc::apps::BtProgram)
