// CPI: parallel calculation of Pi (paper §6 workload 1).
//
// The classic cpi.c shipped with MPICH: every rank integrates
// 4/(1+x²) over its strided subset of N intervals, then the partial sums
// are combined with an allreduce.  "Uses basic MPI primitives and is
// mostly computationally bound."  Runs `rounds` integrations so the
// job has a checkpointable duration.
#pragma once

#include "apps/mpi_app.h"

namespace zapc::apps {

class CpiProgram final : public os::Program {
 public:
  struct Params {
    i32 rank = 0;
    i32 size = 1;
    u64 intervals = 50'000'000;   // per round
    u32 rounds = 4;
    u64 intervals_per_step = 500'000;  // work chunk per scheduler step
    sim::Time cost_per_step = 500;     // modeled CPU time per chunk (us)
    u64 workspace_bytes = 12 << 20;    // modeled process footprint
  };

  CpiProgram() = default;
  explicit CpiProgram(Params p) : p_(p), comm_(job_config(p.rank, p.size)) {
    next_i_ = static_cast<u64>(p.rank);
  }

  const char* kind() const override { return "apps.cpi"; }

  os::StepResult step(os::Syscalls& sys) override;

  void save(Encoder& e) const override;
  void load(Decoder& d) override;

  u32 rounds_done() const { return round_; }
  double last_pi() const { return last_pi_; }

 private:
  enum Pc : u32 { INIT = 0, COMPUTE, REDUCE, DONE_ROUND, FINISH };

  Params p_;
  mpi::MpiComm comm_;
  u32 pc_ = INIT;
  u32 round_ = 0;
  u64 next_i_ = 0;      // next interval index (strided by size)
  double local_sum_ = 0;
  double last_pi_ = 0;
  std::vector<double> reduced_;
};

}  // namespace zapc::apps
