#include "apps/bratu.h"

#include <cmath>
#include <cstring>

#include "os/san.h"

namespace zapc::apps {
namespace {

constexpr u32 kTagHaloUp = 101;    // data traveling to the rank above
constexpr u32 kTagHaloDown = 102;  // data traveling to the rank below

Bytes pack_row(const double* row, u32 n) {
  Bytes b(n * sizeof(double));
  std::memcpy(b.data(), row, b.size());
  return b;
}

void unpack_row(const Bytes& b, double* row, u32 n) {
  std::memcpy(row, b.data(), std::min<std::size_t>(b.size(),
                                                   n * sizeof(double)));
}

}  // namespace

double* BratuProgram::grid(os::Syscalls& sys) {
  // Local rows plus two halo rows, each n wide.
  std::size_t bytes =
      static_cast<std::size_t>(local_rows() + 2) * p_.n * sizeof(double);
  return reinterpret_cast<double*>(sys.region("grid", bytes).data());
}

double* BratuProgram::halo_up(os::Syscalls& sys) { return grid(sys); }

double* BratuProgram::halo_down(os::Syscalls& sys) {
  return grid(sys) + static_cast<std::size_t>(local_rows() + 1) * p_.n;
}

os::StepResult BratuProgram::step(os::Syscalls& sys) {
  using os::StepResult;
  const u32 n = p_.n;
  const i32 up = p_.rank - 1;               // neighbour with lower rows
  const i32 down = p_.rank + 1;             // neighbour with higher rows
  const bool has_up = up >= 0;
  const bool has_down = down < p_.size;
  double* g = grid(sys);
  double* interior = g + n;  // first local row

  switch (pc_) {
    case INIT: {
      if (p_.workspace_bytes > 0) sys.region("workspace", p_.workspace_bytes);
      if (!comm_.try_init(sys)) return wait_comm(comm_);
      // Initial guess: zero (boundary is zero; halos start zero too).
      pc_ = EXCHANGE_SEND;
      return StepResult::yield();
    }
    case EXCHANGE_SEND: {
      if (has_up) {
        comm_.post_send(sys, up, kTagHaloUp, pack_row(interior, n));
      }
      if (has_down) {
        comm_.post_send(
            sys, down, kTagHaloDown,
            pack_row(interior + static_cast<std::size_t>(local_rows() - 1) *
                                    n,
                     n));
      }
      got_up_ = !has_up;
      got_down_ = !has_down;
      pc_ = EXCHANGE_RECV;
      return StepResult::yield();
    }
    case EXCHANGE_RECV: {
      if (!got_up_) {
        auto m = comm_.try_recv(sys, up, kTagHaloDown);
        if (m) {
          unpack_row(*m, halo_up(sys), n);
          got_up_ = true;
        }
      }
      if (!got_down_) {
        auto m = comm_.try_recv(sys, down, kTagHaloUp);
        if (m) {
          unpack_row(*m, halo_down(sys), n);
          got_down_ = true;
        }
      }
      if (!got_up_ || !got_down_) {
        if (comm_.failed()) return StepResult::exit(2);
        return wait_comm(comm_);
      }
      pc_ = SWEEP;
      return StepResult::yield();
    }
    case SWEEP: {
      // Damped Jacobi-Newton sweep over the local block:
      //   F(u) = (u_N + u_S + u_E + u_W - 4u)/h² + λ eᵘ
      //   u ← u + ω F(u) / (4/h² - λ eᵘ)
      // True Jacobi (two buffers): every read sees the previous
      // iteration, so results are identical for any row decomposition.
      const double h = 1.0 / (n + 1);
      const double h2inv = 1.0 / (h * h);
      const double omega = 0.8;
      Bytes& new_region = sys.region(
          "grid_new",
          static_cast<std::size_t>(local_rows()) * n * sizeof(double));
      double* fresh = reinterpret_cast<double*>(new_region.data());
      local_res2_ = 0;
      for (u32 r = 0; r < local_rows(); ++r) {
        const double* row = interior + static_cast<std::size_t>(r) * n;
        const double* north = row - n;  // halo row when r == 0
        const double* south = row + n;  // halo row when r == last
        double* out = fresh + static_cast<std::size_t>(r) * n;
        for (u32 c = 0; c < n; ++c) {
          double u = row[c];
          double west = c > 0 ? row[c - 1] : 0.0;
          double east = c + 1 < n ? row[c + 1] : 0.0;
          double eu = std::exp(u);
          double f =
              (north[c] + south[c] + east + west - 4.0 * u) * h2inv +
              p_.lambda * eu;
          double jac = 4.0 * h2inv - p_.lambda * eu;
          out[c] = jac > 1e-12 ? u + omega * f / jac : u;
          local_res2_ += f * f;
        }
      }
      std::memcpy(interior, fresh,
                  static_cast<std::size_t>(local_rows()) * n *
                      sizeof(double));
      ++iter_;
      sim::Time cost = static_cast<sim::Time>(local_rows()) *
                       p_.cost_per_row;
      if (iter_ % p_.reduce_every == 0) {
        pc_ = REDUCE;
      } else if (iter_ >= p_.iterations) {
        pc_ = REDUCE;  // final residual check
      } else {
        pc_ = EXCHANGE_SEND;
      }
      return StepResult::yield(std::max<sim::Time>(cost, 1));
    }
    case REDUCE: {
      if (!comm_.try_allreduce_sum(sys, {local_res2_}, &reduced_)) {
        if (comm_.failed()) return StepResult::exit(2);
        return wait_comm(comm_);
      }
      residual_ = std::sqrt(reduced_[0]) / (static_cast<double>(n) * n);
      if (residual_ < p_.tol || iter_ >= p_.iterations) {
        pc_ = FINISH;
      } else {
        pc_ = EXCHANGE_SEND;
      }
      return StepResult::yield();
    }
    case FINISH: {
      if (p_.rank == 0) {
        Encoder e;
        e.put_f64(residual_);
        e.put_u32(iter_);
        sys.san().write("results/bratu", e.take());
      }
      // Success = the solver actually reduced the residual.
      return StepResult::exit(residual_ < 1.0 ? 0 : 3);
    }
    default:
      return StepResult::exit(9);
  }
}

void BratuProgram::save(Encoder& e) const {
  e.put_i32(p_.rank);
  e.put_i32(p_.size);
  e.put_u32(p_.n);
  e.put_f64(p_.lambda);
  e.put_u32(p_.iterations);
  e.put_u32(p_.reduce_every);
  e.put_f64(p_.tol);
  e.put_u64(p_.cost_per_row);
  e.put_u64(p_.workspace_bytes);
  comm_.save(e);
  e.put_u32(pc_);
  e.put_u32(iter_);
  e.put_f64(local_res2_);
  e.put_f64(residual_);
  e.put_bool(got_up_);
  e.put_bool(got_down_);
}

void BratuProgram::load(Decoder& d) {
  p_.rank = d.i32_().value_or(0);
  p_.size = d.i32_().value_or(1);
  p_.n = d.u32_().value_or(16);
  p_.lambda = d.f64_().value_or(6.0);
  p_.iterations = d.u32_().value_or(1);
  p_.reduce_every = d.u32_().value_or(10);
  p_.tol = d.f64_().value_or(1e-8);
  p_.cost_per_row = d.u64_().value_or(1);
  p_.workspace_bytes = d.u64_().value_or(0);
  comm_.load(d);
  pc_ = d.u32_().value_or(0);
  iter_ = d.u32_().value_or(0);
  local_res2_ = d.f64_().value_or(0);
  residual_ = d.f64_().value_or(1e30);
  got_up_ = d.bool_().value_or(false);
  got_down_ = d.bool_().value_or(false);
}

}  // namespace zapc::apps

ZAPC_REGISTER_PROGRAM(app_bratu, zapc::apps::BratuProgram)
