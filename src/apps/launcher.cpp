#include "apps/launcher.h"

namespace zapc::apps {

pod::Pod* JobHandle::locate(const std::string& pod_name) const {
  for (core::Agent* a : all_agents) {
    pod::Pod* p = a->find_pod(pod_name);
    if (p != nullptr) return p;
  }
  return nullptr;
}

bool JobHandle::finished() const {
  for (std::size_t i = 0; i < pod_names.size(); ++i) {
    pod::Pod* p = locate(pod_names[i]);
    if (p == nullptr) return false;
    os::Process* proc = p->find_process(vpids[i]);
    if (proc == nullptr || proc->state() != os::ProcState::EXITED) {
      return false;
    }
  }
  return true;
}

i32 JobHandle::exit_code() const {
  if (!finished()) return -1;
  i32 worst = 0;
  for (std::size_t i = 0; i < pod_names.size(); ++i) {
    os::Process* proc = locate(pod_names[i])->find_process(vpids[i]);
    worst = std::max(worst, proc->exit_code());
  }
  return worst;
}

std::vector<core::Manager::Target> JobHandle::targets(
    const std::vector<core::Agent*>& agent_of,
    const std::vector<std::string>& uris) const {
  std::vector<core::Manager::Target> out;
  for (std::size_t i = 0; i < pod_names.size(); ++i) {
    out.push_back(core::Manager::Target{agent_of[i]->addr(), pod_names[i],
                                        uris[i]});
  }
  return out;
}

std::vector<core::Manager::Target> JobHandle::san_targets(
    const std::string& prefix) const {
  std::vector<core::Agent*> agent_of = hosts();
  std::vector<std::string> uris;
  for (const auto& pn : pod_names) uris.push_back("san://" + prefix + pn);
  return targets(agent_of, uris);
}

std::vector<core::Agent*> JobHandle::hosts() const {
  std::vector<core::Agent*> out;
  for (const auto& pn : pod_names) {
    core::Agent* host = nullptr;
    for (core::Agent* a : all_agents) {
      if (a->find_pod(pn) != nullptr) host = a;
    }
    out.push_back(host);
  }
  return out;
}

JobHandle launch_mpi_job(
    const std::vector<core::Agent*>& agents, const std::string& job_name,
    i32 nranks,
    const std::function<std::unique_ptr<os::Program>(i32)>& make_rank) {
  JobHandle job;
  job.name = job_name;
  job.all_agents = agents;
  job.vips = job_vips(nranks);
  for (i32 r = 0; r < nranks; ++r) {
    core::Agent* agent = agents[static_cast<std::size_t>(r) % agents.size()];
    std::string pod_name = job_name + "-r" + std::to_string(r);
    pod::Pod& pod = agent->create_pod(job.vips[static_cast<std::size_t>(r)],
                                      pod_name);
    job.pod_names.push_back(pod_name);
    job.vpids.push_back(pod.spawn(make_rank(r)));
  }
  return job;
}

JobHandle launch_pvm_job(
    const std::vector<core::Agent*>& agents, const std::string& job_name,
    i32 workers,
    const std::function<std::unique_ptr<os::Program>()>& make_master,
    const std::function<std::unique_ptr<os::Program>(i32)>& make_worker) {
  JobHandle job;
  job.name = job_name;
  job.all_agents = agents;
  job.vips = job_vips(workers + 1);

  core::Agent* magent = agents[0];
  std::string mname = job_name + "-master";
  pod::Pod& mpod = magent->create_pod(job.vips[0], mname);
  job.pod_names.push_back(mname);
  job.vpids.push_back(mpod.spawn(make_master()));

  for (i32 w = 0; w < workers; ++w) {
    core::Agent* agent =
        agents[static_cast<std::size_t>(w + 1) % agents.size()];
    std::string wname = job_name + "-w" + std::to_string(w);
    pod::Pod& wpod = agent->create_pod(
        job.vips[static_cast<std::size_t>(w + 1)], wname);
    job.pod_names.push_back(wname);
    job.vpids.push_back(wpod.spawn(make_worker(w)));
  }
  return job;
}

}  // namespace zapc::apps
