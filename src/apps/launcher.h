// Job launcher: places application endpoints into pods across the
// cluster's agents (paper §3: "ideally placing each application endpoint
// in a separate pod ... the pod is the minimal unit of migration").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/mpi_app.h"
#include "core/agent.h"
#include "core/manager.h"

namespace zapc::apps {

/// A launched distributed job: one pod per endpoint.
struct JobHandle {
  std::string name;
  std::vector<std::string> pod_names;    // one per endpoint
  std::vector<net::IpAddr> vips;
  std::vector<i32> vpids;                // process in its pod
  std::vector<core::Agent*> all_agents;  // where pods may live

  /// Finds the pod wherever it currently lives (it migrates!).
  pod::Pod* locate(const std::string& pod_name) const;

  /// True when every endpoint's process has exited.
  bool finished() const;
  /// Worst exit code across endpoints (-1 if not finished).
  i32 exit_code() const;

  /// Manager «node, pod, URI» tuples for a checkpoint/restart of this
  /// job.  `agent_of[i]` selects which agent handles pod i; uris[i] the
  /// destination/source.
  std::vector<core::Manager::Target> targets(
      const std::vector<core::Agent*>& agent_of,
      const std::vector<std::string>& uris) const;
  /// Convenience: same agent layout as launch, san://ckpt/<pod> URIs.
  std::vector<core::Manager::Target> san_targets(
      const std::string& prefix = "ckpt/") const;

  /// Agents currently hosting each pod (in endpoint order).
  std::vector<core::Agent*> hosts() const;
};

/// Launches an n-rank MPI job, one pod per rank, assigned to agents
/// round-robin.  `make_rank` builds the program for a rank.
JobHandle launch_mpi_job(
    const std::vector<core::Agent*>& agents, const std::string& job_name,
    i32 nranks,
    const std::function<std::unique_ptr<os::Program>(i32 rank)>& make_rank);

/// Launches a PVM-style master/worker job: endpoint 0 is the master, the
/// remaining `workers` endpoints are workers.
JobHandle launch_pvm_job(
    const std::vector<core::Agent*>& agents, const std::string& job_name,
    i32 workers,
    const std::function<std::unique_ptr<os::Program>()>& make_master,
    const std::function<std::unique_ptr<os::Program>(i32 idx)>& make_worker);

}  // namespace zapc::apps
