// A small but real ray tracer: the rendering kernel of the POV-Ray
// analogue (paper §6 workload 4 — "a CPU-intensive ray-tracing
// application that fully exploits cluster parallelism").
//
// Procedural scene: three shaded spheres above a checkered plane, one
// point light, hard shadows, and a single reflection bounce.  Fully
// deterministic so rendered bands are verifiable across
// checkpoint-restart.
#pragma once

#include <cmath>

#include "util/types.h"

namespace zapc::apps::ray {

struct Vec {
  double x = 0, y = 0, z = 0;

  Vec operator+(const Vec& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec operator-(const Vec& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const { return std::sqrt(dot(*this)); }
  Vec unit() const {
    double n = norm();
    return n > 0 ? *this * (1.0 / n) : *this;
  }
  Vec mul(const Vec& o) const { return {x * o.x, y * o.y, z * o.z}; }
};

struct Sphere {
  Vec center;
  double radius;
  Vec color;
  double reflect;
};

struct Hit {
  double t = 1e30;
  Vec point, normal, color;
  double reflect = 0;
  bool ok = false;
};

inline const Sphere* scene_spheres(int* count) {
  static const Sphere spheres[] = {
      {{0.0, 1.0, 0.0}, 1.0, {0.9, 0.2, 0.2}, 0.35},
      {{-2.1, 0.7, 1.0}, 0.7, {0.2, 0.9, 0.3}, 0.2},
      {{1.9, 0.6, -0.6}, 0.6, {0.2, 0.4, 0.95}, 0.25},
  };
  *count = 3;
  return spheres;
}

inline Hit intersect(const Vec& origin, const Vec& dir) {
  Hit best;
  int count = 0;
  const Sphere* spheres = scene_spheres(&count);
  for (int i = 0; i < count; ++i) {
    const Sphere& s = spheres[i];
    Vec oc = origin - s.center;
    double b = oc.dot(dir);
    double c = oc.dot(oc) - s.radius * s.radius;
    double disc = b * b - c;
    if (disc < 0) continue;
    double t = -b - std::sqrt(disc);
    if (t > 1e-4 && t < best.t) {
      best.t = t;
      best.point = origin + dir * t;
      best.normal = (best.point - s.center).unit();
      best.color = s.color;
      best.reflect = s.reflect;
      best.ok = true;
    }
  }
  // Checkered ground plane y = 0.
  if (dir.y < -1e-9) {
    double t = -origin.y / dir.y;
    if (t > 1e-4 && t < best.t) {
      best.t = t;
      best.point = origin + dir * t;
      best.normal = {0, 1, 0};
      int cx = static_cast<int>(std::floor(best.point.x));
      int cz = static_cast<int>(std::floor(best.point.z));
      bool dark = ((cx + cz) & 1) != 0;
      best.color = dark ? Vec{0.25, 0.25, 0.25} : Vec{0.85, 0.85, 0.85};
      best.reflect = 0.1;
      best.ok = true;
    }
  }
  return best;
}

inline Vec shade(const Vec& origin, const Vec& dir, int depth) {
  Hit h = intersect(origin, dir);
  if (!h.ok) {
    // Sky gradient.
    double t = 0.5 * (dir.y + 1.0);
    return Vec{0.6, 0.75, 1.0} * t + Vec{1.0, 1.0, 1.0} * (1.0 - t);
  }
  const Vec light{5, 5, -5};
  Vec to_light = (light - h.point).unit();

  // Hard shadow.
  Hit blocker = intersect(h.point + h.normal * 1e-4, to_light);
  double shadow = blocker.ok ? 0.25 : 1.0;

  double diffuse = std::max(0.0, h.normal.dot(to_light));
  Vec refl_dir = dir - h.normal * (2.0 * dir.dot(h.normal));
  double spec =
      std::pow(std::max(0.0, refl_dir.unit().dot(to_light)), 32.0);

  Vec color = h.color * (0.15 + 0.85 * diffuse * shadow) +
              Vec{1, 1, 1} * (0.4 * spec * shadow);
  if (depth > 0 && h.reflect > 0) {
    Vec bounce = shade(h.point + h.normal * 1e-4, refl_dir.unit(),
                       depth - 1);
    color = color * (1.0 - h.reflect) + bounce * h.reflect;
  }
  return color;
}

/// Renders rows [y0, y1) of a width×height image into rgb (3 bytes per
/// pixel, row-major within the band).
inline void render_band(u32 width, u32 height, u32 y0, u32 y1, u8* rgb) {
  const Vec eye{0, 1.2, -4.5};
  const double aspect =
      static_cast<double>(width) / static_cast<double>(height);
  std::size_t idx = 0;
  for (u32 y = y0; y < y1; ++y) {
    for (u32 x = 0; x < width; ++x) {
      double u = (2.0 * (x + 0.5) / width - 1.0) * aspect;
      double v = 1.0 - 2.0 * (y + 0.5) / height;
      Vec dir = Vec{u, v * 0.75 + 0.1, 1.6}.unit();
      Vec c = shade(eye, dir, 1);
      rgb[idx++] = static_cast<u8>(std::min(1.0, c.x) * 255);
      rgb[idx++] = static_cast<u8>(std::min(1.0, c.y) * 255);
      rgb[idx++] = static_cast<u8>(std::min(1.0, c.z) * 255);
    }
  }
}

}  // namespace zapc::apps::ray
