// BT: block-tridiagonal ADI solver — the NAS Parallel Benchmark BT
// analogue (paper §6 workload 2, "involves substantial network
// communication along the computation").
//
// Solves the 2-D diffusion equation with an alternating-direction
// implicit scheme: each time step performs a tridiagonal (Thomas) solve
// along x for every local row, a wide halo exchange with both
// neighbours, a block-local tridiagonal solve along y, and an allreduce
// of the solution norms.  The grid is large (BT produces the biggest
// checkpoint images in the paper) and partitioned by row blocks.
#pragma once

#include "apps/mpi_app.h"

namespace zapc::apps {

class BtProgram final : public os::Program {
 public:
  struct Params {
    i32 rank = 0;
    i32 size = 1;
    u32 n = 512;            // global n×n grid
    u32 steps = 60;         // ADI time steps
    double alpha_dt = 0.1;  // diffusion number α·Δt / h²
    sim::Time cost_per_row = 4;  // modeled CPU time per row solve
    u64 workspace_bytes = 0;     // extra modeled footprint (solver state)
  };

  BtProgram() = default;
  explicit BtProgram(Params p)
      : p_(p), comm_(job_config(p.rank, p.size)) {}

  const char* kind() const override { return "apps.bt"; }

  os::StepResult step(os::Syscalls& sys) override;

  void save(Encoder& e) const override;
  void load(Decoder& d) override;

  u32 steps_done() const { return step_; }
  double norm() const { return norm_; }

 private:
  enum Pc : u32 {
    INIT = 0,
    X_SWEEP,
    SEND_HALO,
    RECV_HALO,
    Y_SWEEP,
    NORM,
    FINISH,
  };

  u32 rows_begin() const {
    return p_.n * static_cast<u32>(p_.rank) / static_cast<u32>(p_.size);
  }
  u32 rows_end() const {
    return p_.n * static_cast<u32>(p_.rank + 1) / static_cast<u32>(p_.size);
  }
  u32 local_rows() const { return rows_end() - rows_begin(); }

  double* grid(os::Syscalls& sys);

  Params p_;
  mpi::MpiComm comm_;
  u32 pc_ = INIT;
  u32 step_ = 0;
  bool initialized_grid_ = false;
  bool got_up_ = false;
  bool got_down_ = false;
  double norm_ = 0;
  double initial_norm_ = 0;
  std::vector<double> reduced_;
};

}  // namespace zapc::apps
