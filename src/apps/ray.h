// POV-Ray analogue: master/worker distributed ray tracer over mini-PVM
// (paper §6 workload 4).
//
// The master builds a list of scanline-band tasks, farms them to the
// workers on demand, assembles the framebuffer, verifies coverage and
// writes the image to shared storage.  Workers render bands with the
// real ray-tracing kernel in apps/ray_scene.h.
#pragma once

#include "os/program.h"
#include "pvm/pvm.h"

namespace zapc::apps {

class RayMaster final : public os::Program {
 public:
  struct Params {
    u16 port = 5600;
    i32 workers = 1;
    u32 width = 640;
    u32 height = 480;
    u32 band_rows = 16;  // rows per task
  };

  RayMaster() = default;
  explicit RayMaster(Params p) : p_(p), pvm_(p.port, p.workers) {}

  const char* kind() const override { return "apps.ray_master"; }

  os::StepResult step(os::Syscalls& sys) override;

  void save(Encoder& e) const override;
  void load(Decoder& d) override;

  u32 bands_done() const { return collected_; }
  u32 bands_total() const {
    return (p_.height + p_.band_rows - 1) / p_.band_rows;
  }

  /// Poison task id telling workers to exit.
  static constexpr u32 kPoisonTask = 0xFFFFFFFF;

 private:
  enum Pc : u32 { INIT = 0, SUBMIT, COLLECT, SHUTDOWN, FINISH };

  Params p_;
  pvm::PvmMaster pvm_;
  u32 pc_ = INIT;
  u32 collected_ = 0;
};

class RayWorker final : public os::Program {
 public:
  struct Params {
    net::SockAddr master;
    u32 width = 640;
    u32 rows_per_step = 4;        // rendered rows per scheduler step
    sim::Time cost_per_row = 600;  // modeled CPU time per row (us)
    u64 scene_bytes = 9 << 20;    // POV-Ray's roughly constant footprint
  };

  RayWorker() = default;
  explicit RayWorker(Params p) : p_(p), pvm_(p.master) {}

  const char* kind() const override { return "apps.ray_worker"; }

  os::StepResult step(os::Syscalls& sys) override;

  void save(Encoder& e) const override;
  void load(Decoder& d) override;

  u32 tasks_done() const { return tasks_done_; }

 private:
  enum Pc : u32 { INIT = 0, GET_TASK, RENDER, POST };

  Params p_;
  pvm::PvmWorker pvm_;
  u32 pc_ = INIT;
  u32 tasks_done_ = 0;
  // Current task.
  u32 task_id_ = 0;
  u32 y0_ = 0, y1_ = 0, height_ = 0;
  u32 next_row_ = 0;
  Bytes band_;
};

}  // namespace zapc::apps
