// Shared plumbing for the MPI-based benchmark applications.
#pragma once

#include "mpi/comm.h"
#include "os/program.h"

namespace zapc::apps {

/// Blocks the calling program on the comm's sockets (with a safety
/// timeout so retransmission stalls resolve).
inline os::StepResult wait_comm(const mpi::MpiComm& comm,
                                sim::Time cost = 1) {
  os::WaitSpec w;
  w.fds = comm.wait_fds();
  w.sleep_for = 50 * sim::kMillisecond;  // re-poll even if no event
  return os::StepResult::block(std::move(w), cost);
}

/// Virtual addresses for an n-rank job: 10.77.1.1 .. 10.77.1.n.
inline std::vector<net::IpAddr> job_vips(i32 n) {
  std::vector<net::IpAddr> v;
  v.reserve(static_cast<std::size_t>(n));
  for (i32 i = 0; i < n; ++i) {
    v.push_back(net::IpAddr(10, 77, 1, static_cast<u8>(i + 1)));
  }
  return v;
}

/// Builds the MpiConfig for one rank of an n-rank job.
inline mpi::MpiConfig job_config(i32 rank, i32 size,
                                 u16 base_port = 5200) {
  mpi::MpiConfig cfg;
  cfg.rank = rank;
  cfg.size = size;
  cfg.base_port = base_port;
  cfg.rank_vips = job_vips(size);
  return cfg;
}

}  // namespace zapc::apps
