#include "apps/cpi.h"

#include <cmath>

#include "os/san.h"

namespace zapc::apps {

os::StepResult CpiProgram::step(os::Syscalls& sys) {
  using os::StepResult;
  switch (pc_) {
    case INIT: {
      sys.region("workspace", p_.workspace_bytes);
      if (!comm_.try_init(sys)) return wait_comm(comm_);
      pc_ = COMPUTE;
      return StepResult::yield();
    }
    case COMPUTE: {
      // Integrate a chunk of intervals: x_i = (i + 0.5)/N, strided by
      // rank so the work divides evenly.
      const double h = 1.0 / static_cast<double>(p_.intervals);
      u64 done = 0;
      while (next_i_ < p_.intervals && done < p_.intervals_per_step) {
        double x = (static_cast<double>(next_i_) + 0.5) * h;
        local_sum_ += 4.0 / (1.0 + x * x);
        next_i_ += static_cast<u64>(p_.size);
        ++done;
      }
      if (next_i_ < p_.intervals) {
        return StepResult::yield(p_.cost_per_step);
      }
      pc_ = REDUCE;
      return StepResult::yield(p_.cost_per_step);
    }
    case REDUCE: {
      const double h = 1.0 / static_cast<double>(p_.intervals);
      if (!comm_.try_allreduce_sum(sys, {local_sum_ * h}, &reduced_)) {
        if (comm_.failed()) return StepResult::exit(2);
        return wait_comm(comm_);
      }
      last_pi_ = reduced_[0];
      pc_ = DONE_ROUND;
      return StepResult::yield();
    }
    case DONE_ROUND: {
      ++round_;
      if (round_ < p_.rounds) {
        next_i_ = static_cast<u64>(p_.rank);
        local_sum_ = 0;
        pc_ = COMPUTE;
        return StepResult::yield();
      }
      pc_ = FINISH;
      return StepResult::yield();
    }
    case FINISH: {
      if (p_.rank == 0) {
        // Verifiable output: |pi - PI| should be tiny.
        Encoder e;
        e.put_f64(last_pi_);
        sys.san().write("results/cpi", e.take());
      }
      return StepResult::exit(std::abs(last_pi_ - M_PI) < 1e-6 ? 0 : 3);
    }
    default:
      return StepResult::exit(9);
  }
}

void CpiProgram::save(Encoder& e) const {
  e.put_i32(p_.rank);
  e.put_i32(p_.size);
  e.put_u64(p_.intervals);
  e.put_u32(p_.rounds);
  e.put_u64(p_.intervals_per_step);
  e.put_u64(p_.cost_per_step);
  e.put_u64(p_.workspace_bytes);
  comm_.save(e);
  e.put_u32(pc_);
  e.put_u32(round_);
  e.put_u64(next_i_);
  e.put_f64(local_sum_);
  e.put_f64(last_pi_);
}

void CpiProgram::load(Decoder& d) {
  p_.rank = d.i32_().value_or(0);
  p_.size = d.i32_().value_or(1);
  p_.intervals = d.u64_().value_or(1);
  p_.rounds = d.u32_().value_or(1);
  p_.intervals_per_step = d.u64_().value_or(1);
  p_.cost_per_step = d.u64_().value_or(1);
  p_.workspace_bytes = d.u64_().value_or(0);
  comm_.load(d);
  pc_ = d.u32_().value_or(0);
  round_ = d.u32_().value_or(0);
  next_i_ = d.u64_().value_or(0);
  local_sum_ = d.f64_().value_or(0);
  last_pi_ = d.f64_().value_or(0);
}

}  // namespace zapc::apps

ZAPC_REGISTER_PROGRAM(app_cpi, zapc::apps::CpiProgram)
