#include "apps/ray.h"

#include <cstring>

#include "apps/ray_scene.h"
#include "os/san.h"

namespace zapc::apps {
namespace {

/// Task payload: (y0, y1, width, height).
Bytes pack_task(u32 y0, u32 y1, u32 w, u32 h) {
  Encoder e;
  e.put_u32(y0);
  e.put_u32(y1);
  e.put_u32(w);
  e.put_u32(h);
  return e.take();
}

}  // namespace

// ---- Master ---------------------------------------------------------------------

os::StepResult RayMaster::step(os::Syscalls& sys) {
  using os::StepResult;
  Bytes& fb = sys.region(
      "framebuffer", static_cast<std::size_t>(p_.width) * p_.height * 3);

  switch (pc_) {
    case INIT: {
      if (!pvm_.try_init(sys)) {
        os::WaitSpec w;
        w.fds = pvm_.wait_fds();
        w.sleep_for = 50 * sim::kMillisecond;
        return StepResult::block(std::move(w));
      }
      pc_ = SUBMIT;
      return StepResult::yield();
    }
    case SUBMIT: {
      u32 id = 0;
      for (u32 y = 0; y < p_.height; y += p_.band_rows) {
        u32 y1 = std::min(y + p_.band_rows, p_.height);
        pvm_.submit(pvm::Task{id++, pack_task(y, y1, p_.width, p_.height)});
      }
      pc_ = COLLECT;
      return StepResult::yield();
    }
    case COLLECT: {
      pvm_.progress(sys);
      while (auto r = pvm_.pop_result()) {
        Decoder d(r->payload);
        u32 y0 = d.u32_().value_or(0);
        u32 y1 = d.u32_().value_or(0);
        Bytes rgb = d.bytes_().value_or({});
        std::size_t off = static_cast<std::size_t>(y0) * p_.width * 3;
        std::size_t len = std::min<std::size_t>(
            rgb.size(), static_cast<std::size_t>(y1 - y0) * p_.width * 3);
        if (off + len <= fb.size()) {
          std::memcpy(fb.data() + off, rgb.data(), len);
        }
        ++collected_;
      }
      if (pvm_.failed()) return StepResult::exit(2);
      if (collected_ < bands_total()) {
        os::WaitSpec w;
        w.fds = pvm_.wait_fds();
        w.sleep_for = 50 * sim::kMillisecond;
        return StepResult::block(std::move(w));
      }
      pc_ = SHUTDOWN;
      return StepResult::yield();
    }
    case SHUTDOWN: {
      // Poison every worker so they exit cleanly.
      for (i32 i = 0; i < p_.workers; ++i) {
        pvm_.submit(pvm::Task{kPoisonTask, {}});
      }
      pvm_.progress(sys);
      pc_ = FINISH;
      // Give the poison tasks a moment to drain before we exit (closing
      // our sockets also works — workers treat EOF as shutdown).
      return StepResult::block(os::WaitSpec::sleep(sim::kMillisecond));
    }
    case FINISH: {
      pvm_.progress(sys);
      sys.san().write("results/ray.ppm", fb);
      // Verify: the image must not be empty (sky alone is non-black) and
      // every band must have been written.
      u64 lit = 0;
      for (std::size_t i = 0; i < fb.size(); ++i) {
        if (fb[i] > 16) ++lit;
      }
      bool ok = lit > fb.size() / 4;
      return StepResult::exit(ok ? 0 : 3);
    }
    default:
      return StepResult::exit(9);
  }
}

void RayMaster::save(Encoder& e) const {
  e.put_u16(p_.port);
  e.put_i32(p_.workers);
  e.put_u32(p_.width);
  e.put_u32(p_.height);
  e.put_u32(p_.band_rows);
  pvm_.save(e);
  e.put_u32(pc_);
  e.put_u32(collected_);
}

void RayMaster::load(Decoder& d) {
  p_.port = d.u16_().value_or(0);
  p_.workers = d.i32_().value_or(0);
  p_.width = d.u32_().value_or(1);
  p_.height = d.u32_().value_or(1);
  p_.band_rows = d.u32_().value_or(1);
  pvm_.load(d);
  pc_ = d.u32_().value_or(0);
  collected_ = d.u32_().value_or(0);
}

// ---- Worker ---------------------------------------------------------------------

os::StepResult RayWorker::step(os::Syscalls& sys) {
  using os::StepResult;
  sys.region("scene", p_.scene_bytes);

  switch (pc_) {
    case INIT: {
      if (!pvm_.try_init(sys)) {
        os::WaitSpec w;
        w.fds = pvm_.wait_fds();
        w.sleep_for = 50 * sim::kMillisecond;
        return StepResult::block(std::move(w));
      }
      pc_ = GET_TASK;
      return StepResult::yield();
    }
    case GET_TASK: {
      if (pvm_.master_gone()) return StepResult::exit(0);
      auto t = pvm_.try_get_task(sys);
      if (!t) {
        os::WaitSpec w;
        w.fds = pvm_.wait_fds();
        w.sleep_for = 50 * sim::kMillisecond;
        return StepResult::block(std::move(w));
      }
      if (t->id == RayMaster::kPoisonTask) return StepResult::exit(0);
      Decoder d(t->payload);
      task_id_ = t->id;
      y0_ = d.u32_().value_or(0);
      y1_ = d.u32_().value_or(0);
      p_.width = d.u32_().value_or(p_.width);
      height_ = d.u32_().value_or(1);
      next_row_ = y0_;
      band_.assign(static_cast<std::size_t>(y1_ - y0_) * p_.width * 3, 0);
      pc_ = RENDER;
      return StepResult::yield();
    }
    case RENDER: {
      // Render a few rows per step so checkpoints can land mid-task.
      u32 until = std::min(next_row_ + p_.rows_per_step, y1_);
      std::size_t off =
          static_cast<std::size_t>(next_row_ - y0_) * p_.width * 3;
      ray::render_band(p_.width, height_, next_row_, until,
                       band_.data() + off);
      u32 rows = until - next_row_;
      next_row_ = until;
      if (next_row_ < y1_) {
        return StepResult::yield(rows * p_.cost_per_row);
      }
      pc_ = POST;
      return StepResult::yield(rows * p_.cost_per_row);
    }
    case POST: {
      Encoder e;
      e.put_u32(y0_);
      e.put_u32(y1_);
      e.put_bytes(band_);
      pvm_.post_result(sys, pvm::TaskResult{task_id_, e.take()});
      ++tasks_done_;
      band_.clear();
      pc_ = GET_TASK;
      return StepResult::yield();
    }
    default:
      return StepResult::exit(9);
  }
}

void RayWorker::save(Encoder& e) const {
  e.put_u32(p_.master.ip.v);
  e.put_u16(p_.master.port);
  e.put_u32(p_.width);
  e.put_u32(p_.rows_per_step);
  e.put_u64(p_.cost_per_row);
  e.put_u64(p_.scene_bytes);
  pvm_.save(e);
  e.put_u32(pc_);
  e.put_u32(tasks_done_);
  e.put_u32(task_id_);
  e.put_u32(y0_);
  e.put_u32(y1_);
  e.put_u32(height_);
  e.put_u32(next_row_);
  e.put_bytes(band_);
}

void RayWorker::load(Decoder& d) {
  p_.master.ip.v = d.u32_().value_or(0);
  p_.master.port = d.u16_().value_or(0);
  p_.width = d.u32_().value_or(1);
  p_.rows_per_step = d.u32_().value_or(1);
  p_.cost_per_row = d.u64_().value_or(1);
  p_.scene_bytes = d.u64_().value_or(0);
  pvm_.load(d);
  pc_ = d.u32_().value_or(0);
  tasks_done_ = d.u32_().value_or(0);
  task_id_ = d.u32_().value_or(0);
  y0_ = d.u32_().value_or(0);
  y1_ = d.u32_().value_or(0);
  height_ = d.u32_().value_or(0);
  next_row_ = d.u32_().value_or(0);
  band_ = d.bytes_().value_or({});
}

}  // namespace zapc::apps

ZAPC_REGISTER_PROGRAM(app_ray_master, zapc::apps::RayMaster)
ZAPC_REGISTER_PROGRAM(app_ray_worker, zapc::apps::RayWorker)
