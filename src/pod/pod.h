// Pod (PrOcess Domain): Zap's virtual-machine abstraction (paper §3).
//
// "Each pod has its own virtual private namespace, which provides the only
// means for processes to access the underlying operating system."  Here a
// pod bundles:
//   * a virtual PID namespace (vpids start at 1 and stay constant across
//     migration),
//   * a private network namespace — its own Stack bound to the pod's
//     virtual address, plus the packet filter an Agent uses to freeze it,
//   * the syscall-interposition layer (PodSyscalls) through which guest
//     programs reach the OS,
//   * optional time virtualization: after a restart, reported time and
//     application timers are biased by the checkpoint→restart delta
//     (paper §5).
//
// A pod never moves live: migration checkpoints it, destroys it, and
// recreates it (possibly on another node) from the image.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "gm/device.h"
#include "net/filter.h"
#include "net/stack.h"
#include "os/domain.h"
#include "os/node.h"
#include "os/process.h"

namespace zapc::pod {

class Pod final : public os::Domain {
 public:
  Pod(os::Node& host, net::IpAddr vip, std::string name);
  ~Pod() override;

  Pod(const Pod&) = delete;
  Pod& operator=(const Pod&) = delete;

  const std::string& name() const { return name_; }
  os::Node& host() { return host_; }
  const os::Node& host() const { return host_; }
  /// Unbiased engine time (kernel view; guests see virtual_now()).
  sim::Time engine_now() const { return host_.now(); }

  // ---- os::Domain ---------------------------------------------------------
  net::IpAddr vip() const override { return vip_; }
  net::Stack& stack() override { return stack_; }
  net::PacketFilter& filter() override { return filter_; }
  os::Process* find_process(i32 vpid) override;
  std::vector<os::Process*> processes() override;
  os::StepResult step_process(os::Process& p) override;
  void on_process_exit(os::Process& p) override;
  void deliver(const net::Packet& p) override;

  // ---- Kernel-bypass (GM) device -------------------------------------------
  /// The pod's GM device, created on first use (guests reach it only via
  /// the virtualized gm_* syscalls; paper §5 extension).
  gm::GmDevice& gm_device();
  gm::GmDevice* gm_device_if_present() { return gm_.get(); }

  // ---- Process lifecycle ----------------------------------------------------
  /// Creates a process with the next free vpid and makes it runnable.
  i32 spawn(std::unique_ptr<os::Program> program);

  /// Creates a process with an explicit vpid in STOPPED state (restart
  /// path: the whole pod resumes together once restore completes).
  os::Process& spawn_stopped(i32 vpid, std::unique_ptr<os::Program> program);

  /// Forcibly terminates a process (SIGKILL semantics): descriptors are
  /// closed and the exit status is 137.
  Status kill(i32 vpid);

  /// SIGSTOP every process (paper §4 step 1).
  void suspend();
  /// SIGCONT every process (snapshot-resume or end of restart).
  void resume();
  bool suspended() const { return suspended_; }

  bool all_exited() const;
  std::size_t process_count() const { return procs_.size(); }
  i32 next_vpid() const { return next_vpid_; }
  void set_next_vpid(i32 v) { next_vpid_ = v; }

  /// Sum of all process memory regions (checkpoint-size accounting).
  std::size_t memory_bytes() const;

  // ---- Virtualization overhead accounting (paper §6.1) ----------------------
  /// Zap interposes on system calls; each call costs a little kernel-module
  /// work.  The Fig. 5 bench compares this against zero overhead ("Base").
  void set_syscall_overhead_ns(u64 ns) { syscall_overhead_ns_ = ns; }
  u64 syscall_overhead_ns() const { return syscall_overhead_ns_; }
  void note_syscall() { ++syscall_count_; }
  u64 total_syscalls() const { return total_syscalls_; }

  // ---- Time virtualization (paper §5) ---------------------------------------
  void set_time_virtualization(bool on) { time_virt_ = on; }
  bool time_virtualization() const { return time_virt_; }
  /// Bias added to every time() the pod's processes observe.
  void add_time_delta(i64 d) { time_delta_ += d; }
  i64 time_delta() const { return time_delta_; }
  /// Time as seen inside the pod.
  sim::Time virtual_now() const;

 private:
  os::Node& host_;
  net::IpAddr vip_;
  std::string name_;
  net::Stack stack_;
  net::PacketFilter filter_;

  std::map<i32, std::unique_ptr<os::Process>> procs_;
  i32 next_vpid_ = 1;
  bool suspended_ = false;
  std::unique_ptr<gm::GmDevice> gm_;

  bool time_virt_ = true;
  i64 time_delta_ = 0;
  u64 syscall_overhead_ns_ = 300;
  u64 syscall_count_ = 0;   // within the current step
  u64 total_syscalls_ = 0;
};

}  // namespace zapc::pod
