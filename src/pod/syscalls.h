// PodSyscalls: the thin virtualization layer of paper §3, as the
// implementation of the os::Syscalls interface.
//
// Every system call a guest program issues passes through here, where pod
// namespace translation happens: fds resolve through the process's fd
// table to sockets in the *pod's* stack (never the host's), addresses are
// virtual, time is biased by the pod's checkpoint/restart delta, and
// process identifiers are pod-local vpids.
#pragma once

#include "os/program.h"
#include "pod/pod.h"

namespace zapc::pod {

class PodSyscalls final : public os::Syscalls {
 public:
  PodSyscalls(Pod& pod, os::Process& proc) : pod_(pod), proc_(proc) {}

  Result<int> socket(net::Proto proto) override;
  Status bind(int fd, net::SockAddr addr) override;
  Status bind_raw(int fd, u8 raw_proto) override;
  Status listen(int fd, int backlog) override;
  Result<int> accept(int fd, net::SockAddr* peer) override;
  Status connect(int fd, net::SockAddr peer) override;
  Result<std::size_t> send(int fd, const Bytes& data, u32 flags) override;
  Result<std::size_t> sendto(int fd, const Bytes& data, u32 flags,
                             net::SockAddr to) override;
  Result<net::RecvResult> recv(int fd, std::size_t maxlen, u32 flags) override;
  Status shutdown(int fd, net::ShutdownHow how) override;
  Status close(int fd) override;
  u32 poll(int fd) override;
  Result<i64> getsockopt(int fd, net::SockOpt opt) override;
  Status setsockopt(int fd, net::SockOpt opt, i64 value) override;
  Result<net::SockAddr> getsockname(int fd) override;
  Result<net::SockAddr> getpeername(int fd) override;

  i32 getpid() const override {
    pod_.note_syscall();
    return proc_.vpid();
  }

  Result<i32> spawn(const std::string& kind, const Bytes& state) override;
  Result<i32> wait_pid(i32 vpid) override;
  Status kill(i32 vpid) override;

  // Kernel-bypass device access (the virtualized GM interface).
  Status gm_open(int port) override;
  Status gm_close(int port) override;
  Status gm_send(int port, net::SockAddr dst, const Bytes& data) override;
  Result<Bytes> gm_recv(int port, net::SockAddr* from) override;
  bool gm_sends_drained(int port) override;
  sim::Time time() const override {
    pod_.note_syscall();
    return pod_.virtual_now();
  }

  Bytes& region(const std::string& name, std::size_t size) override {
    pod_.note_syscall();
    return proc_.region(name, size);
  }

  os::VirtualSAN& san() override { return pod_.host().san(); }

  void timer_set(u32 id, sim::Time delay) override;
  bool timer_expired(u32 id) const override;
  void timer_clear(u32 id) override;

 private:
  Result<net::SockId> sock_of(int fd) const {
    pod_.note_syscall();
    return proc_.fd_lookup(fd);
  }

  Pod& pod_;
  os::Process& proc_;
};

}  // namespace zapc::pod
