#include "pod/syscalls.h"

namespace zapc::pod {

Result<int> PodSyscalls::socket(net::Proto proto) {
  pod_.note_syscall();
  auto sid = pod_.stack().sys_socket(proto);
  if (!sid) return sid.status();
  return proc_.fd_install(sid.value());
}

Status PodSyscalls::bind(int fd, net::SockAddr addr) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_bind(s.value(), addr);
}

Status PodSyscalls::bind_raw(int fd, u8 raw_proto) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_bind_raw(s.value(), raw_proto);
}

Status PodSyscalls::listen(int fd, int backlog) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_listen(s.value(), backlog);
}

Result<int> PodSyscalls::accept(int fd, net::SockAddr* peer) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  auto child = pod_.stack().sys_accept(s.value(), peer);
  if (!child) return child.status();
  return proc_.fd_install(child.value());
}

Status PodSyscalls::connect(int fd, net::SockAddr peer) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_connect(s.value(), peer);
}

Result<std::size_t> PodSyscalls::send(int fd, const Bytes& data, u32 flags) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_send(s.value(), data, flags);
}

Result<std::size_t> PodSyscalls::sendto(int fd, const Bytes& data, u32 flags,
                                        net::SockAddr to) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_sendto(s.value(), data, flags, to);
}

Result<net::RecvResult> PodSyscalls::recv(int fd, std::size_t maxlen,
                                          u32 flags) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_recv(s.value(), maxlen, flags);
}

Status PodSyscalls::shutdown(int fd, net::ShutdownHow how) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_shutdown(s.value(), how);
}

Status PodSyscalls::close(int fd) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  proc_.fd_remove(fd);
  return pod_.stack().sys_close(s.value());
}

u32 PodSyscalls::poll(int fd) {
  auto s = sock_of(fd);
  if (!s) return net::POLLERR;
  return pod_.stack().sys_poll(s.value());
}

Result<i64> PodSyscalls::getsockopt(int fd, net::SockOpt opt) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_getsockopt(s.value(), opt);
}

Status PodSyscalls::setsockopt(int fd, net::SockOpt opt, i64 value) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_setsockopt(s.value(), opt, value);
}

Result<net::SockAddr> PodSyscalls::getsockname(int fd) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_getsockname(s.value());
}

Result<net::SockAddr> PodSyscalls::getpeername(int fd) {
  auto s = sock_of(fd);
  if (!s) return s.status();
  return pod_.stack().sys_getpeername(s.value());
}

Result<i32> PodSyscalls::spawn(const std::string& kind, const Bytes& state) {
  pod_.note_syscall();
  auto prog = os::ProgramRegistry::instance().create(kind);
  if (!prog) return prog.status();
  if (!state.empty()) {
    Decoder d(state);
    prog.value()->load(d);
  }
  return pod_.spawn(std::move(prog).value());
}

Result<i32> PodSyscalls::wait_pid(i32 vpid) {
  pod_.note_syscall();
  os::Process* p = pod_.find_process(vpid);
  if (p == nullptr) return Status(Err::NO_ENT, "no such vpid");
  if (p->state() != os::ProcState::EXITED) return Status(Err::WOULD_BLOCK);
  return p->exit_code();
}

Status PodSyscalls::kill(i32 vpid) {
  pod_.note_syscall();
  return pod_.kill(vpid);
}

Status PodSyscalls::gm_open(int port) {
  pod_.note_syscall();
  return pod_.gm_device().open_port(port);
}

Status PodSyscalls::gm_close(int port) {
  pod_.note_syscall();
  return pod_.gm_device().close_port(port);
}

Status PodSyscalls::gm_send(int port, net::SockAddr dst, const Bytes& data) {
  pod_.note_syscall();
  return pod_.gm_device().send(port, dst, data);
}

Result<Bytes> PodSyscalls::gm_recv(int port, net::SockAddr* from) {
  pod_.note_syscall();
  auto m = pod_.gm_device().recv(port);
  if (!m) return Status(Err::WOULD_BLOCK);
  if (from != nullptr) *from = m->from;
  return std::move(m->data);
}

bool PodSyscalls::gm_sends_drained(int port) {
  pod_.note_syscall();
  return pod_.gm_device().sends_drained(port);
}

void PodSyscalls::timer_set(u32 id, sim::Time delay) {
  // Stored as absolute engine time; the checkpointer converts to a
  // remaining delta and back so timers survive restart unexpired.
  proc_.timers()[id] = pod_.host().engine().now() + delay;
}

bool PodSyscalls::timer_expired(u32 id) const {
  auto it = proc_.timers().find(id);
  if (it == proc_.timers().end()) return false;
  return pod_.host().engine().now() >= it->second;
}

void PodSyscalls::timer_clear(u32 id) { proc_.timers().erase(id); }

}  // namespace zapc::pod
