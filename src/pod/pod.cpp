#include "pod/pod.h"

#include "pod/syscalls.h"
#include "util/log.h"

namespace zapc::pod {

Pod::Pod(os::Node& host, net::IpAddr vip, std::string name)
    : host_(host),
      vip_(vip),
      name_(std::move(name)),
      stack_(host.engine(), vip, name_) {
  stack_.set_output([this](net::Packet p) { host_.route_out(std::move(p)); });
  stack_.set_event_hook(
      [this](net::SockId s) { host_.wake_waiters(*this, s); });
  host_.add_domain(*this);
  ZLOG_INFO("pod " << name_ << " created on " << host_.name() << " (vip "
                   << vip_.to_string() << ")");
}

Pod::~Pod() { host_.remove_domain(vip_); }

os::Process* Pod::find_process(i32 vpid) {
  auto it = procs_.find(vpid);
  return it == procs_.end() ? nullptr : it->second.get();
}

std::vector<os::Process*> Pod::processes() {
  std::vector<os::Process*> out;
  out.reserve(procs_.size());
  for (auto& [vpid, p] : procs_) out.push_back(p.get());
  return out;
}

os::StepResult Pod::step_process(os::Process& p) {
  syscall_count_ = 0;
  PodSyscalls sys(*this, p);
  os::StepResult r = p.program().step(sys);
  // Charge the interposition overhead of this step's system calls.
  total_syscalls_ += syscall_count_;
  r.cost += syscall_count_ * syscall_overhead_ns_ / 1000;
  return r;
}

void Pod::on_process_exit(os::Process& p) {
  ZLOG_DEBUG("pod " << name_ << ": vpid " << p.vpid() << " exited with "
                    << p.exit_code());
  // Kernel semantics: a process's descriptors are closed at exit.
  std::vector<int> fds;
  for (const auto& [fd, sid] : p.fd_table()) fds.push_back(fd);
  for (int fd : fds) {
    auto sid = p.fd_lookup(fd);
    if (sid.is_ok()) (void)stack_.sys_close(sid.value());
    p.fd_remove(fd);
  }
}

i32 Pod::spawn(std::unique_ptr<os::Program> program) {
  i32 vpid = next_vpid_++;
  auto proc = std::make_unique<os::Process>(vpid, std::move(program));
  os::Process& ref = *proc;
  procs_.emplace(vpid, std::move(proc));
  ref.set_state(os::ProcState::BLOCKED);  // make_ready switches it to READY
  host_.make_ready(os::ProcessRef{vip_, vpid});
  return vpid;
}

os::Process& Pod::spawn_stopped(i32 vpid,
                                std::unique_ptr<os::Program> program) {
  auto proc = std::make_unique<os::Process>(vpid, std::move(program));
  os::Process& ref = *proc;
  ref.set_state(os::ProcState::STOPPED);
  ref.set_resume_state(os::ProcState::READY);
  procs_[vpid] = std::move(proc);
  if (vpid >= next_vpid_) next_vpid_ = vpid + 1;
  return ref;
}

void Pod::deliver(const net::Packet& p) {
  if (gm_ != nullptr && p.proto == net::Proto::RAW &&
      p.raw_proto == gm::kGmProto) {
    gm_->handle_packet(p);  // OS-bypass path: never touches the stack
    return;
  }
  stack_.deliver(p);
}

gm::GmDevice& Pod::gm_device() {
  if (gm_ == nullptr) {
    gm_ = std::make_unique<gm::GmDevice>(
        host_.engine(), vip_,
        [this](net::Packet p) { host_.route_out(std::move(p)); });
  }
  return *gm_;
}

Status Pod::kill(i32 vpid) {
  os::Process* p = find_process(vpid);
  if (p == nullptr) return Status(Err::NO_ENT, "no such vpid");
  if (p->state() == os::ProcState::EXITED) return Status::ok();
  p->set_state(os::ProcState::EXITED);
  p->set_exit_code(137);  // SIGKILL convention
  on_process_exit(*p);    // closes its descriptors
  return Status::ok();
}

void Pod::suspend() {
  for (auto& [vpid, p] : procs_) host_.suspend_process(*this, *p);
  suspended_ = true;
}

void Pod::resume() {
  suspended_ = false;
  for (auto& [vpid, p] : procs_) host_.resume_process(*this, *p);
}

bool Pod::all_exited() const {
  for (const auto& [vpid, p] : procs_) {
    if (p->state() != os::ProcState::EXITED) return false;
  }
  return true;
}

std::size_t Pod::memory_bytes() const {
  std::size_t n = 0;
  for (const auto& [vpid, p] : procs_) n += p->memory_bytes();
  return n;
}

sim::Time Pod::virtual_now() const {
  sim::Time now = host_.engine().now();
  if (!time_virt_) return now;
  i64 biased = static_cast<i64>(now) + time_delta_;
  return biased < 0 ? 0 : static_cast<sim::Time>(biased);
}

}  // namespace zapc::pod
