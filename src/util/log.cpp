#include "util/log.h"

#include <cstdio>

namespace zapc {
namespace {

LogLevel g_level = LogLevel::WARN;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::DEBUG: return "DEBUG";
    case LogLevel::INFO: return "INFO";
    case LogLevel::WARN: return "WARN";
    case LogLevel::ERROR: return "ERROR";
    case LogLevel::OFF: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace zapc
