#include "util/log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "obs/vtime.h"

namespace zapc {
namespace {

LogLevel env_log_level() {
  const char* v = std::getenv("ZAPC_LOG_LEVEL");
  if (v == nullptr) return LogLevel::WARN;
  return parse_log_level(v, LogLevel::WARN);
}

LogLevel g_level = env_log_level();

// Registered virtual clock (usually the Cluster's engine).
const void* g_clock_owner = nullptr;
std::uint64_t (*g_clock_fn)(const void*) = nullptr;
const void* g_clock_ctx = nullptr;

// Registered log sink (the flight recorder).
const void* g_sink_owner = nullptr;
LogSinkFn g_sink_fn = nullptr;
const void* g_sink_ctx = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::DEBUG: return "DEBUG";
    case LogLevel::INFO: return "INFO";
    case LogLevel::WARN: return "WARN";
    case LogLevel::ERROR: return "ERROR";
    case LogLevel::OFF: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

LogLevel parse_log_level(const std::string& s, LogLevel fallback) {
  std::string lower;
  for (char c : s) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::DEBUG;
  if (lower == "info") return LogLevel::INFO;
  if (lower == "warn" || lower == "warning") return LogLevel::WARN;
  if (lower == "error") return LogLevel::ERROR;
  if (lower == "off" || lower == "none") return LogLevel::OFF;
  return fallback;
}

void set_log_clock(const void* owner, std::uint64_t (*fn)(const void* ctx),
                   const void* ctx) {
  g_clock_owner = owner;
  g_clock_fn = fn;
  g_clock_ctx = ctx;
}

void clear_log_clock(const void* owner) {
  // Only the current owner may clear: a destroyed warm-up cluster must
  // not take down the clock a newer cluster registered after it.
  if (g_clock_owner != owner) return;
  g_clock_owner = nullptr;
  g_clock_fn = nullptr;
  g_clock_ctx = nullptr;
}

void set_log_sink(const void* owner, LogSinkFn fn, const void* ctx) {
  g_sink_owner = owner;
  g_sink_fn = fn;
  g_sink_ctx = ctx;
}

void clear_log_sink(const void* owner) {
  if (g_sink_owner != owner) return;
  g_sink_owner = nullptr;
  g_sink_fn = nullptr;
  g_sink_ctx = nullptr;
}

void log_line(LogLevel level, const std::string& msg) {
  char prefix[48];
  if (g_clock_fn != nullptr) {
    std::snprintf(prefix, sizeof(prefix), "[%s %s]", level_name(level),
                  obs::vtime_stamp(g_clock_fn(g_clock_ctx)).c_str());
  } else {
    std::snprintf(prefix, sizeof(prefix), "[%s]", level_name(level));
  }
  std::fprintf(stderr, "%s %s\n", prefix, msg.c_str());
  if (g_sink_fn != nullptr) {
    g_sink_fn(g_sink_ctx, level, std::string(prefix) + " " + msg);
  }
}

}  // namespace zapc
