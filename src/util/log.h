// Minimal leveled logging.  Disabled (WARN level) by default so tests and
// benches stay quiet; examples turn on INFO to narrate the protocol.
#pragma once

#include <sstream>
#include <string>

namespace zapc {

enum class LogLevel { DEBUG = 0, INFO = 1, WARN = 2, ERROR = 3, OFF = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line to stderr (already newline-terminated by the macro).
void log_line(LogLevel level, const std::string& msg);

#define ZAPC_LOG(level, expr)                                   \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::zapc::log_level())) {                \
      std::ostringstream zapc_log_os_;                          \
      zapc_log_os_ << expr;                                     \
      ::zapc::log_line(level, zapc_log_os_.str());              \
    }                                                           \
  } while (0)

#define ZLOG_DEBUG(expr) ZAPC_LOG(::zapc::LogLevel::DEBUG, expr)
#define ZLOG_INFO(expr) ZAPC_LOG(::zapc::LogLevel::INFO, expr)
#define ZLOG_WARN(expr) ZAPC_LOG(::zapc::LogLevel::WARN, expr)
#define ZLOG_ERROR(expr) ZAPC_LOG(::zapc::LogLevel::ERROR, expr)

}  // namespace zapc
