// Minimal leveled logging.  Disabled (WARN level) by default so tests and
// benches stay quiet; examples turn on INFO to narrate the protocol.
//
// The threshold can also be set from the environment: ZAPC_LOG_LEVEL=debug
// (or info/warn/error/off) is read once at startup, before any explicit
// set_log_level() call.  When a simulation clock is registered
// (set_log_clock), every line is prefixed with the current virtual time:
// `[INFO @12345us] ...`.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace zapc {

enum class LogLevel { DEBUG = 0, INFO = 1, WARN = 2, ERROR = 3, OFF = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive); returns
/// `fallback` on anything else.
LogLevel parse_log_level(const std::string& s, LogLevel fallback);

/// Registers a virtual clock used to stamp log lines.  `owner` identifies
/// the registrant (usually the Cluster): clear_log_clock() from a stale
/// owner — e.g. a destroyed warm-up testbed — leaves a newer registration
/// untouched.  Pass fn = nullptr via clear_log_clock to unregister.
void set_log_clock(const void* owner, std::uint64_t (*fn)(const void* ctx),
                   const void* ctx);
void clear_log_clock(const void* owner);

/// Registers a sink that receives every emitted log line (same threshold
/// as stderr, fully formatted including the level/time prefix).  Used by
/// the observability flight recorder to keep recent lines for post-mortem
/// dumps.  Same owner discipline as set_log_clock().
using LogSinkFn = void (*)(const void* ctx, LogLevel level,
                           const std::string& formatted);
void set_log_sink(const void* owner, LogSinkFn fn, const void* ctx);
void clear_log_sink(const void* owner);

/// Emits one log line to stderr (already newline-terminated by the macro).
void log_line(LogLevel level, const std::string& msg);

#define ZAPC_LOG(level, expr)                                   \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::zapc::log_level())) {                \
      std::ostringstream zapc_log_os_;                          \
      zapc_log_os_ << expr;                                     \
      ::zapc::log_line(level, zapc_log_os_.str());              \
    }                                                           \
  } while (0)

#define ZLOG_DEBUG(expr) ZAPC_LOG(::zapc::LogLevel::DEBUG, expr)
#define ZLOG_INFO(expr) ZAPC_LOG(::zapc::LogLevel::INFO, expr)
#define ZLOG_WARN(expr) ZAPC_LOG(::zapc::LogLevel::WARN, expr)
#define ZLOG_ERROR(expr) ZAPC_LOG(::zapc::LogLevel::ERROR, expr)

}  // namespace zapc
