// Status / Result error-handling primitives.
//
// The virtual OS and network stack report failures with POSIX-like error
// codes so that guest programs read like real socket code.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/types.h"

namespace zapc {

/// POSIX-flavoured error codes used by the virtual OS and socket layer.
enum class Err : i32 {
  OK = 0,
  WOULD_BLOCK,      // operation would block (EAGAIN/EWOULDBLOCK)
  INVALID,          // invalid argument (EINVAL)
  BAD_FD,           // bad file descriptor (EBADF)
  NOT_CONNECTED,    // socket not connected (ENOTCONN)
  ALREADY_CONNECTED,// socket already connected (EISCONN)
  CONN_REFUSED,     // connection refused (ECONNREFUSED)
  CONN_RESET,       // connection reset by peer (ECONNRESET)
  ADDR_IN_USE,      // address already in use (EADDRINUSE)
  ADDR_UNREACH,     // address unreachable (EHOSTUNREACH)
  TIMED_OUT,        // operation timed out (ETIMEDOUT)
  PIPE,             // broken pipe / write to shutdown socket (EPIPE)
  IN_PROGRESS,      // connect in progress (EINPROGRESS)
  NO_ENT,           // no such file/process (ENOENT)
  EXISTS,           // already exists (EEXIST)
  PERM,             // operation not permitted (EPERM)
  INTR,             // interrupted (EINTR)
  MSG_SIZE,         // datagram too large (EMSGSIZE)
  NO_BUFS,          // queue full / out of buffer space (ENOBUFS)
  NOT_SUPPORTED,    // operation not supported on this socket (EOPNOTSUPP)
  PROTO,            // protocol error / checkpoint format error
  ABORTED,          // operation aborted (coordinated c/r abort path)
  IO,               // storage I/O error
};

/// Human-readable name of an error code (e.g. "WOULD_BLOCK").
const char* err_name(Err e);

/// A success-or-error outcome with an optional context message.
class [[nodiscard]] Status {
 public:
  Status() : err_(Err::OK) {}
  Status(Err e, std::string msg = {}) : err_(e), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return err_ == Err::OK; }
  explicit operator bool() const { return is_ok(); }
  Err err() const { return err_; }
  const std::string& message() const { return msg_; }

  /// Formats as "OK" or "ERRNAME: message".
  std::string to_string() const;

 private:
  Err err_;
  std::string msg_;
};

/// A value-or-error outcome.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Err e, std::string msg = {})                  // NOLINT(google-explicit-constructor)
      : v_(Status(e, std::move(msg))) {}
  Result(Status s) : v_(std::move(s)) {}               // NOLINT(google-explicit-constructor)

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  Err err() const {
    return is_ok() ? Err::OK : std::get<Status>(v_).err();
  }
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(v_);
  }

  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// Returns the value or `fallback` on error.
  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace zapc
