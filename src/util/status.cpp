#include "util/status.h"

namespace zapc {

const char* err_name(Err e) {
  switch (e) {
    case Err::OK: return "OK";
    case Err::WOULD_BLOCK: return "WOULD_BLOCK";
    case Err::INVALID: return "INVALID";
    case Err::BAD_FD: return "BAD_FD";
    case Err::NOT_CONNECTED: return "NOT_CONNECTED";
    case Err::ALREADY_CONNECTED: return "ALREADY_CONNECTED";
    case Err::CONN_REFUSED: return "CONN_REFUSED";
    case Err::CONN_RESET: return "CONN_RESET";
    case Err::ADDR_IN_USE: return "ADDR_IN_USE";
    case Err::ADDR_UNREACH: return "ADDR_UNREACH";
    case Err::TIMED_OUT: return "TIMED_OUT";
    case Err::PIPE: return "PIPE";
    case Err::IN_PROGRESS: return "IN_PROGRESS";
    case Err::NO_ENT: return "NO_ENT";
    case Err::EXISTS: return "EXISTS";
    case Err::PERM: return "PERM";
    case Err::INTR: return "INTR";
    case Err::MSG_SIZE: return "MSG_SIZE";
    case Err::NO_BUFS: return "NO_BUFS";
    case Err::NOT_SUPPORTED: return "NOT_SUPPORTED";
    case Err::PROTO: return "PROTO";
    case Err::ABORTED: return "ABORTED";
    case Err::IO: return "IO";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s = err_name(err_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace zapc
