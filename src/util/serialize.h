// Portable intermediate-format serialization for checkpoint images.
//
// The paper (§3) stresses that pod checkpoints use "higher-level semantic
// information specified in an intermediate format rather than kernel
// specific data in native format to keep the format portable across
// different kernels".  This module provides that format:
//
//  * Encoder/Decoder — little-endian primitive encoding with bounds checks.
//  * RecordWriter/RecordReader — typed, versioned, CRC-protected records
//    (tag, version, length, payload, crc32) so images can be validated and
//    skipped record-by-record.
#pragma once

#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/crc32.h"
#include "util/status.h"
#include "util/types.h"

namespace zapc {

/// Appends primitives, strings and containers to a byte buffer in a
/// fixed little-endian wire format.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(Bytes initial) : buf_(std::move(initial)) {}

  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_le(v); }
  void put_u32(u32 v) { put_le(v); }
  void put_u64(u64 v) { put_le(v); }
  void put_i32(i32 v) { put_le(static_cast<u32>(v)); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  /// Length-prefixed string.
  void put_string(const std::string& s) {
    put_u32(static_cast<u32>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed raw bytes.
  void put_bytes(const Bytes& b) {
    put_u32(static_cast<u32>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw bytes without a length prefix (caller manages framing).
  void put_raw(const u8* p, std::size_t n) { append_bytes(buf_, p, n); }

  /// Pre-sizes the buffer for `n` more bytes.  Encode paths that know
  /// their payload size up front use this to avoid repeated growth
  /// reallocations on multi-megabyte images.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads back what Encoder wrote.  All reads are bounds-checked; a short
/// buffer fails with Err::PROTO rather than undefined behaviour.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) : p_(buf.data()), n_(buf.size()) {}
  // A Decoder only borrows the buffer; constructing one from a temporary
  // would leave it dangling immediately.
  explicit Decoder(const Bytes&&) = delete;
  Decoder(const u8* p, std::size_t n) : p_(p), n_(n) {}

  Result<u8> u8_() { return get_le<u8>(); }
  Result<u16> u16_() { return get_le<u16>(); }
  Result<u32> u32_() { return get_le<u32>(); }
  Result<u64> u64_() { return get_le<u64>(); }
  Result<i32> i32_() {
    auto r = get_le<u32>();
    if (!r) return r.status();
    return static_cast<i32>(r.value());
  }
  Result<i64> i64_() {
    auto r = get_le<u64>();
    if (!r) return r.status();
    return static_cast<i64>(r.value());
  }
  Result<bool> bool_() {
    auto r = get_le<u8>();
    if (!r) return r.status();
    return r.value() != 0;
  }
  Result<double> f64_() {
    auto r = get_le<u64>();
    if (!r) return r.status();
    double v;
    u64 bits = r.value();
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Reads an element count and validates it against the bytes left
  /// (each element needs at least `min_elem_size` bytes), rejecting
  /// absurd counts from corrupt input before any loop or allocation.
  Result<u32> count_(std::size_t min_elem_size) {
    auto n = u32_();
    if (!n) return n;
    if (min_elem_size > 0 &&
        n.value() > remaining() / min_elem_size) {
      return Status(Err::PROTO, "implausible element count");
    }
    return n;
  }

  Result<std::string> string_() {
    auto len = u32_();
    if (!len) return len.status();
    if (len.value() > remaining()) return Status(Err::PROTO, "short string");
    std::string s(reinterpret_cast<const char*>(p_ + off_), len.value());
    off_ += len.value();
    return s;
  }

  Result<Bytes> bytes_() {
    auto len = u32_();
    if (!len) return len.status();
    if (len.value() > remaining()) return Status(Err::PROTO, "short bytes");
    Bytes b(p_ + off_, p_ + off_ + len.value());
    off_ += len.value();
    return b;
  }

  /// Reads `n` raw bytes (no length prefix).
  Result<Bytes> raw(std::size_t n) {
    if (n > remaining()) return Status(Err::PROTO, "short raw");
    Bytes b(p_ + off_, p_ + off_ + n);
    off_ += n;
    return b;
  }

  std::size_t remaining() const { return n_ - off_; }
  bool at_end() const { return off_ == n_; }
  std::size_t offset() const { return off_; }

 private:
  template <typename T>
  Result<T> get_le() {
    if (sizeof(T) > remaining()) return Status(Err::PROTO, "short buffer");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<u64>(p_[off_ + i]) << (8 * i)));
    }
    off_ += sizeof(T);
    return v;
  }

  const u8* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

/// Record tags used in checkpoint images.  The numeric values are part of
/// the on-disk format and must not be reordered.
enum class RecordTag : u32 {
  IMAGE_HEADER = 1,     // magic, format version, pod name
  PROCESS = 2,          // one process: vpid, program, control state
  MEM_REGION = 3,       // one memory region belonging to a process
  FD_TABLE = 4,         // file-descriptor table of a process
  SOCKET_PARAMS = 5,    // socket parameters (get/setsockopt round-trip)
  SOCKET_RECV_QUEUE = 6,// saved receive queue (incl. alternate queue)
  SOCKET_SEND_QUEUE = 7,// saved send queue
  SOCKET_PCB = 8,       // minimal protocol state: sent/recv/acked
  NET_META = 9,         // per-pod connection meta-data table
  POD_HEADER = 10,      // pod namespace state (vpid map, virtual addresses)
  TIMERS = 11,          // virtualized timers owned by the application
  TIME_VIRT = 12,       // time-virtualization state (checkpoint timestamp)
  REDIRECTED_SEND_Q = 13,// migrated peer send-queue data (redirect optimization)
  IMAGE_END = 14,       // terminator
  GM_DEVICE = 15,       // kernel-bypass device state (paper §5 extension)
  REGION_MANIFEST = 16, // per-process region name/generation/size table
  MEM_REGION_ZERO = 17, // all-zero region stored as its size only
  MEM_REGION_REF = 18,  // region identical to an earlier one in this image
};

/// Lower-case name of a record tag (e.g. "mem_region"), used for the
/// per-record-type `ckpt.record.<name>.bytes` metrics; "unknown" for
/// values outside the enum.
const char* record_tag_name(RecordTag tag);

/// Writes (tag, version, length, payload, crc) framed records.
class RecordWriter {
 public:
  /// Appends one record built from `payload`.
  void write(RecordTag tag, u16 version, const Bytes& payload);

  /// Convenience: frame an Encoder's buffer.
  void write(RecordTag tag, u16 version, Encoder&& enc) {
    write(tag, version, enc.take());
  }

  /// Appends one record whose payload is `head` followed by `body`,
  /// without first concatenating them.  Lets callers frame a small
  /// encoded prefix plus a large raw buffer (a memory region) with no
  /// intermediate payload copy.
  void write_split(RecordTag tag, u16 version, const Bytes& head,
                   const u8* body, std::size_t body_len);

  /// Pre-sizes the underlying buffer (see Encoder::reserve).
  void reserve(std::size_t n) { buf_.reserve(n); }

  const Bytes& bytes() const { return buf_.bytes(); }
  Bytes take() { return buf_.take(); }
  std::size_t size() const { return buf_.size(); }

 private:
  Encoder buf_;
};

/// CRC covering a record's header fields and payload.
u32 record_crc(RecordTag tag, u16 version, const Bytes& payload);

/// Same CRC over a payload given as two spans (head + body).
u32 record_crc_split(RecordTag tag, u16 version, const Bytes& head,
                     const u8* body, std::size_t body_len);

/// One parsed record.
struct Record {
  RecordTag tag{};
  u16 version{};
  Bytes payload;
};

/// Iterates the records of a checkpoint image, validating CRCs.
class RecordReader {
 public:
  explicit RecordReader(const Bytes& image) : dec_(image) {}

  /// Reads the next record; Err::NO_ENT at end of stream, Err::PROTO on
  /// corruption (bad CRC or truncated frame).
  Result<Record> next();

  bool at_end() const { return dec_.at_end(); }

 private:
  Decoder dec_;
};

}  // namespace zapc
