#include "util/crc32.h"

#include <array>
#include <cstring>

namespace zapc {
namespace {

// Slice-by-8 lookup tables: table[0] is the classic bytewise table;
// table[k][b] is the CRC of byte b followed by k zero bytes, so eight
// table lookups advance the state by eight input bytes at once.
using CrcTables = std::array<std::array<u32, 256>, 8>;

CrcTables make_tables() {
  CrcTables t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (u32 i = 0; i < 256; ++i) {
    u32 c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

const CrcTables& tables() {
  static const CrcTables t = make_tables();
  return t;
}

}  // namespace

u32 crc32_init() { return 0xFFFFFFFFu; }

u32 crc32_update_bytewise(u32 state, const u8* p, std::size_t n) {
  const auto& t = tables()[0];
  for (std::size_t i = 0; i < n; ++i) {
    state = t[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

u32 crc32_update(u32 state, const u8* p, std::size_t n) {
  const CrcTables& t = tables();
  // Align to 8 bytes of input, then fold 8 bytes per iteration.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    state = t[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
    --n;
  }
  while (n >= 8) {
    u64 chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    // The wire format (and the historical images this must keep
    // validating) is little-endian, as is every target we build for.
    u32 lo = static_cast<u32>(chunk) ^ state;
    u32 hi = static_cast<u32>(chunk >> 32);
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][(lo >> 24) & 0xFFu] ^
            t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][(hi >> 24) & 0xFFu];
    p += 8;
    n -= 8;
  }
  return crc32_update_bytewise(state, p, n);
}

u32 crc32_final(u32 state) { return state ^ 0xFFFFFFFFu; }

u32 crc32(const u8* p, std::size_t n) {
  return crc32_final(crc32_update(crc32_init(), p, n));
}

}  // namespace zapc
