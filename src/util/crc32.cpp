#include "util/crc32.h"

#include <array>

namespace zapc {
namespace {

std::array<u32, 256> make_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

u32 crc32_init() { return 0xFFFFFFFFu; }

u32 crc32_update(u32 state, const u8* p, std::size_t n) {
  static const std::array<u32, 256> table = make_table();
  for (std::size_t i = 0; i < n; ++i) {
    state = table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

u32 crc32_final(u32 state) { return state ^ 0xFFFFFFFFu; }

u32 crc32(const u8* p, std::size_t n) {
  return crc32_final(crc32_update(crc32_init(), p, n));
}

}  // namespace zapc
