#include "util/serialize.h"

namespace zapc {

const char* record_tag_name(RecordTag tag) {
  switch (tag) {
    case RecordTag::IMAGE_HEADER: return "image_header";
    case RecordTag::PROCESS: return "process";
    case RecordTag::MEM_REGION: return "mem_region";
    case RecordTag::FD_TABLE: return "fd_table";
    case RecordTag::SOCKET_PARAMS: return "socket_params";
    case RecordTag::SOCKET_RECV_QUEUE: return "socket_recv_queue";
    case RecordTag::SOCKET_SEND_QUEUE: return "socket_send_queue";
    case RecordTag::SOCKET_PCB: return "socket_pcb";
    case RecordTag::NET_META: return "net_meta";
    case RecordTag::POD_HEADER: return "pod_header";
    case RecordTag::TIMERS: return "timers";
    case RecordTag::TIME_VIRT: return "time_virt";
    case RecordTag::REDIRECTED_SEND_Q: return "redirected_send_q";
    case RecordTag::IMAGE_END: return "image_end";
    case RecordTag::GM_DEVICE: return "gm_device";
  }
  return "unknown";
}

void RecordWriter::write(RecordTag tag, u16 version, const Bytes& payload) {
  buf_.put_u32(static_cast<u32>(tag));
  buf_.put_u16(version);
  buf_.put_u64(payload.size());
  buf_.put_raw(payload.data(), payload.size());
  buf_.put_u32(record_crc(tag, version, payload));
}

u32 record_crc(RecordTag tag, u16 version, const Bytes& payload) {
  // The CRC covers the header fields too, so a bit flip anywhere in a
  // record is caught (the length is covered implicitly: a wrong length
  // misframes the payload).
  Encoder head;
  head.put_u32(static_cast<u32>(tag));
  head.put_u16(version);
  u32 c = crc32_init();
  c = crc32_update(c, head.bytes().data(), head.bytes().size());
  c = crc32_update(c, payload.data(), payload.size());
  return crc32_final(c);
}

Result<Record> RecordReader::next() {
  if (dec_.at_end()) return Status(Err::NO_ENT, "end of image");
  auto tag = dec_.u32_();
  if (!tag) return Status(Err::PROTO, "truncated record tag");
  auto version = dec_.u16_();
  if (!version) return Status(Err::PROTO, "truncated record version");
  auto len = dec_.u64_();
  if (!len) return Status(Err::PROTO, "truncated record length");
  auto payload = dec_.raw(static_cast<std::size_t>(len.value()));
  if (!payload) return Status(Err::PROTO, "truncated record payload");
  auto crc = dec_.u32_();
  if (!crc) return Status(Err::PROTO, "truncated record crc");
  if (crc.value() != record_crc(static_cast<RecordTag>(tag.value()),
                                version.value(), payload.value())) {
    return Status(Err::PROTO, "record crc mismatch");
  }
  Record r;
  r.tag = static_cast<RecordTag>(tag.value());
  r.version = version.value();
  r.payload = std::move(payload).value();
  return r;
}

}  // namespace zapc
