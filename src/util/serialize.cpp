#include "util/serialize.h"

namespace zapc {

const char* record_tag_name(RecordTag tag) {
  switch (tag) {
    case RecordTag::IMAGE_HEADER: return "image_header";
    case RecordTag::PROCESS: return "process";
    case RecordTag::MEM_REGION: return "mem_region";
    case RecordTag::FD_TABLE: return "fd_table";
    case RecordTag::SOCKET_PARAMS: return "socket_params";
    case RecordTag::SOCKET_RECV_QUEUE: return "socket_recv_queue";
    case RecordTag::SOCKET_SEND_QUEUE: return "socket_send_queue";
    case RecordTag::SOCKET_PCB: return "socket_pcb";
    case RecordTag::NET_META: return "net_meta";
    case RecordTag::POD_HEADER: return "pod_header";
    case RecordTag::TIMERS: return "timers";
    case RecordTag::TIME_VIRT: return "time_virt";
    case RecordTag::REDIRECTED_SEND_Q: return "redirected_send_q";
    case RecordTag::IMAGE_END: return "image_end";
    case RecordTag::GM_DEVICE: return "gm_device";
    case RecordTag::REGION_MANIFEST: return "region_manifest";
    case RecordTag::MEM_REGION_ZERO: return "mem_region_zero";
    case RecordTag::MEM_REGION_REF: return "mem_region_ref";
  }
  return "unknown";
}

void RecordWriter::write(RecordTag tag, u16 version, const Bytes& payload) {
  buf_.put_u32(static_cast<u32>(tag));
  buf_.put_u16(version);
  buf_.put_u64(payload.size());
  buf_.put_raw(payload.data(), payload.size());
  buf_.put_u32(record_crc(tag, version, payload));
}

void RecordWriter::write_split(RecordTag tag, u16 version, const Bytes& head,
                               const u8* body, std::size_t body_len) {
  buf_.reserve(4 + 2 + 8 + head.size() + body_len + 4);
  buf_.put_u32(static_cast<u32>(tag));
  buf_.put_u16(version);
  buf_.put_u64(head.size() + body_len);
  buf_.put_raw(head.data(), head.size());
  buf_.put_raw(body, body_len);
  buf_.put_u32(record_crc_split(tag, version, head, body, body_len));
}

u32 record_crc(RecordTag tag, u16 version, const Bytes& payload) {
  return record_crc_split(tag, version, payload, nullptr, 0);
}

u32 record_crc_split(RecordTag tag, u16 version, const Bytes& head,
                     const u8* body, std::size_t body_len) {
  // The CRC covers the header fields too, so a bit flip anywhere in a
  // record is caught (the length is covered implicitly: a wrong length
  // misframes the payload).
  Encoder hdr;
  hdr.put_u32(static_cast<u32>(tag));
  hdr.put_u16(version);
  u32 c = crc32_init();
  c = crc32_update(c, hdr.bytes().data(), hdr.bytes().size());
  c = crc32_update(c, head.data(), head.size());
  if (body_len > 0) c = crc32_update(c, body, body_len);
  return crc32_final(c);
}

Result<Record> RecordReader::next() {
  if (dec_.at_end()) return Status(Err::NO_ENT, "end of image");
  auto tag = dec_.u32_();
  if (!tag) return Status(Err::PROTO, "truncated record tag");
  auto version = dec_.u16_();
  if (!version) return Status(Err::PROTO, "truncated record version");
  auto len = dec_.u64_();
  if (!len) return Status(Err::PROTO, "truncated record length");
  auto payload = dec_.raw(static_cast<std::size_t>(len.value()));
  if (!payload) return Status(Err::PROTO, "truncated record payload");
  auto crc = dec_.u32_();
  if (!crc) return Status(Err::PROTO, "truncated record crc");
  if (crc.value() != record_crc(static_cast<RecordTag>(tag.value()),
                                version.value(), payload.value())) {
    return Status(Err::PROTO, "record crc mismatch");
  }
  Record r;
  r.tag = static_cast<RecordTag>(tag.value());
  r.version = version.value();
  r.payload = std::move(payload).value();
  return r;
}

}  // namespace zapc
