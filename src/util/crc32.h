// CRC-32 (IEEE 802.3 polynomial) used to validate checkpoint image records.
#pragma once

#include <cstddef>

#include "util/types.h"

namespace zapc {

/// Computes CRC-32 over `n` bytes starting at `p`.
u32 crc32(const u8* p, std::size_t n);

/// Computes CRC-32 over a byte buffer.
inline u32 crc32(const Bytes& b) { return crc32(b.data(), b.size()); }

/// Incremental interface: start with crc32_init(), fold in chunks with
/// crc32_update(), close with crc32_final().  crc32_update uses a
/// slice-by-8 table walk (8 input bytes per iteration).
u32 crc32_init();
u32 crc32_update(u32 state, const u8* p, std::size_t n);
u32 crc32_final(u32 state);

/// Reference one-byte-per-iteration update.  Produces identical results
/// to crc32_update; kept for the bench_micro before/after comparison and
/// as the tail handler of the sliced variant.
u32 crc32_update_bytewise(u32 state, const u8* p, std::size_t n);

}  // namespace zapc
