// Fundamental type aliases used across the ZapC reproduction.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>
#include <string>

namespace zapc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Raw byte buffer; the unit of all queue, packet, and image payloads.
using Bytes = std::vector<u8>;

/// Appends the contents of `src` to `dst`.
inline void append_bytes(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends `n` bytes starting at `p` to `dst`.
inline void append_bytes(Bytes& dst, const u8* p, std::size_t n) {
  dst.insert(dst.end(), p, p + n);
}

/// Converts a string to bytes (no terminator).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Converts bytes back to a string.
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace zapc
