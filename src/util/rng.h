// Deterministic pseudo-random number generation (SplitMix64).
//
// All stochastic behaviour in the simulation (packet loss, jitter, workload
// partitioning) draws from explicitly seeded Rng instances so every test
// and benchmark is reproducible.
#pragma once

#include "util/types.h"

namespace zapc {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next 64 random bits.
  u64 next_u64() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 below(u64 bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  u64 state_;
};

}  // namespace zapc
