#include "obs/ledger.h"

namespace zapc::obs {

Json ledger_entry_to_json(const LedgerEntry& e) {
  Json j = Json::object();
  j["schema"] = kLedgerSchemaVersion;
  j["op"] = e.op;
  j["kind"] = e.kind;
  j["outcome"] = e.outcome;
  if (!e.error.empty()) j["error"] = e.error;
  if (e.transient) j["transient"] = true;
  if (e.will_retry) j["will_retry"] = true;
  j["attempt"] = e.attempt;
  j["start_us"] = e.start_us;
  j["end_us"] = e.end_us;
  j["downtime_us"] = e.downtime_us;
  j["pods"] = e.pods;
  if (!e.phase_us.empty()) {
    Json ph = Json::object();
    for (const auto& [name, us] : e.phase_us) ph[name] = us;
    j["phase_us"] = std::move(ph);
  }
  j["image_bytes"] = e.image_bytes;
  j["network_bytes"] = e.network_bytes;
  if (e.logical_bytes != 0) j["logical_bytes"] = e.logical_bytes;
  if (!e.straggler_pod.empty()) {
    Json s = Json::object();
    s["pod"] = e.straggler_pod;
    s["phase"] = e.straggler_phase;
    s["lag_us"] = e.straggler_lag_us;
    j["straggler"] = std::move(s);
  }
  if (e.has_attrib) j["critpath"] = attribution_to_json(e.attrib);
  return j;
}

Result<LedgerEntry> ledger_entry_from_json(const Json& j) {
  if (!j.is_obj()) return Status(Err::PROTO, "ledger entry: not an object");
  const Json* schema = j.find("schema");
  if (schema == nullptr || !schema->is_str() ||
      schema->str() != kLedgerSchemaVersion) {
    return Status(Err::PROTO, "ledger entry: bad schema tag");
  }
  auto str = [&](const char* k) {
    const Json* v = j.find(k);
    return v != nullptr && v->is_str() ? v->str() : std::string();
  };
  auto num = [&](const char* k) -> u64 {
    const Json* v = j.find(k);
    return v != nullptr && v->is_num() ? v->num_u64() : 0;
  };
  auto flag = [&](const char* k) {
    const Json* v = j.find(k);
    return v != nullptr && v->boolean();
  };
  LedgerEntry e;
  e.op = num("op");
  e.kind = str("kind");
  e.outcome = str("outcome");
  e.error = str("error");
  e.transient = flag("transient");
  e.will_retry = flag("will_retry");
  e.attempt = static_cast<u32>(num("attempt"));
  e.start_us = num("start_us");
  e.end_us = num("end_us");
  e.downtime_us = num("downtime_us");
  e.pods = static_cast<u32>(num("pods"));
  if (const Json* ph = j.find("phase_us"); ph != nullptr && ph->is_obj()) {
    for (const auto& [name, v] : ph->fields()) {
      if (v.is_num()) e.phase_us[name] = v.num_u64();
    }
  }
  e.image_bytes = num("image_bytes");
  e.network_bytes = num("network_bytes");
  e.logical_bytes = num("logical_bytes");
  if (const Json* s = j.find("straggler"); s != nullptr && s->is_obj()) {
    if (const Json* v = s->find("pod"); v != nullptr) {
      e.straggler_pod = v->str();
    }
    if (const Json* v = s->find("phase"); v != nullptr) {
      e.straggler_phase = v->str();
    }
    if (const Json* v = s->find("lag_us"); v != nullptr && v->is_num()) {
      e.straggler_lag_us = v->num_u64();
    }
  }
  if (const Json* cp = j.find("critpath"); cp != nullptr) {
    Result<OpAttribution> a = attribution_from_json(*cp);
    if (!a.is_ok()) return a.status();
    e.attrib = std::move(a).value();
    e.has_attrib = true;
  }
  return e;
}

Ledger::Ledger(const std::string& path) {
  file_ = std::fopen(path.c_str(), "ab");
}

Ledger::~Ledger() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Ledger::append(const LedgerEntry& e) {
  entries_.push_back(e);
  if (file_ == nullptr) return Status::ok();
  std::string line = ledger_entry_to_json(e).dump(0);
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status(Err::IO, "ledger append failed");
  }
  std::fflush(file_);
  return Status::ok();
}

Status Ledger::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status(Err::IO, "ledger: cannot open " + path);
  }
  for (const LedgerEntry& e : entries_) {
    std::string line = ledger_entry_to_json(e).dump(0);
    line.push_back('\n');
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return Status(Err::IO, "ledger: short write to " + path);
    }
  }
  std::fclose(f);
  return Status::ok();
}

Result<Ledger::LoadResult> Ledger::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(Err::NO_ENT, "ledger: cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  LoadResult out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    bool has_newline = nl != std::string::npos;
    std::string line =
        text.substr(pos, has_newline ? nl - pos : std::string::npos);
    pos = has_newline ? nl + 1 : text.size();
    if (line.empty()) continue;
    bool is_last = pos >= text.size();
    Result<Json> j = json_parse(line);
    Result<LedgerEntry> e =
        j.is_ok() ? ledger_entry_from_json(j.value())
                  : Result<LedgerEntry>(j.status());
    if (!e.is_ok()) {
      // A crash mid-append can only tear the final line; anything
      // malformed earlier means the file is not a ledger.
      if (is_last) {
        out.skipped_torn++;
        continue;
      }
      return Status(Err::PROTO,
                    "ledger: malformed line: " + e.status().to_string());
    }
    out.entries.push_back(std::move(e).value());
  }
  return out;
}

}  // namespace zapc::obs
