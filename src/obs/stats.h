// Canonical metric names and cached accessors for hot paths.
//
// Call sites that fire per packet or per event hold a `static` reference
// obtained here, so the map lookup happens once per process.  The names
// below are the stable `subsystem.metric_name` vocabulary the JSON
// evidence schema exposes; ensure_core_metrics() registers all of them
// so an exported snapshot always carries the full set (zeros included),
// which keeps bench_results/*.json diffable across runs that exercise
// different code paths.
#pragma once

#include "obs/metrics.h"

namespace zapc::obs::stats {

// ---- sim -------------------------------------------------------------------
inline Counter& sim_events_dispatched() {
  static Counter& c = metrics().counter("sim.events_dispatched");
  return c;
}
inline Counter& sim_events_cancelled() {
  static Counter& c = metrics().counter("sim.events_cancelled");
  return c;
}
inline Gauge& sim_queue_depth() {
  static Gauge& g = metrics().gauge("sim.queue_depth");
  return g;
}

// ---- net: fabric / packet filter -------------------------------------------
inline Counter& net_filter_dropped() {
  static Counter& c = metrics().counter("net.filter.dropped");
  return c;
}

// ---- net: TCP --------------------------------------------------------------
inline Counter& net_tcp_retransmits() {
  static Counter& c = metrics().counter("net.tcp.retransmits");
  return c;
}
inline Counter& net_tcp_zero_window_probes() {
  static Counter& c = metrics().counter("net.tcp.zero_window_probes");
  return c;
}
inline Counter& net_tcp_out_of_order() {
  static Counter& c = metrics().counter("net.tcp.out_of_order");
  return c;
}
inline Gauge& net_tcp_send_queue() {
  static Gauge& g = metrics().gauge("net.tcp.send_queue_bytes");
  return g;
}
inline Gauge& net_tcp_recv_queue() {
  static Gauge& g = metrics().gauge("net.tcp.recv_queue_bytes");
  return g;
}
inline Gauge& net_tcp_ooo_queue() {
  static Gauge& g = metrics().gauge("net.tcp.ooo_queue_bytes");
  return g;
}

// ---- net: UDP --------------------------------------------------------------
inline Counter& net_udp_dropped() {
  static Counter& c = metrics().counter("net.udp.dropped");
  return c;
}
inline Gauge& net_udp_recv_queue() {
  static Gauge& g = metrics().gauge("net.udp.recv_queue_bytes");
  return g;
}

// ---- net: alternate receive queue (checkpoint interposition) ---------------
inline Counter& net_altq_installs() {
  static Counter& c = metrics().counter("net.altq.installs");
  return c;
}
inline Counter& net_altq_drains() {
  static Counter& c = metrics().counter("net.altq.drains");
  return c;
}

/// Registers every canonical metric above plus the per-phase histograms
/// the Manager/Agent pipeline and checkpoint codec report into, so JSON
/// exports list the whole vocabulary even for metrics still at zero.
inline void ensure_core_metrics() {
  sim_events_dispatched();
  sim_events_cancelled();
  sim_queue_depth();
  net_filter_dropped();
  net_tcp_retransmits();
  net_tcp_zero_window_probes();
  net_tcp_out_of_order();
  net_tcp_send_queue();
  net_tcp_recv_queue();
  net_tcp_ooo_queue();
  net_udp_dropped();
  net_udp_recv_queue();
  net_altq_installs();
  net_altq_drains();
  MetricsRegistry& m = metrics();
  m.counter("obs.postmortems_written");
  m.counter("mgr.ops_started");
  m.counter("mgr.checkpoints");
  m.counter("mgr.checkpoint_failures");
  m.counter("mgr.restarts");
  m.counter("mgr.restart_failures");
  m.histogram("mgr.ckpt.total_us");
  m.histogram("mgr.ckpt.sync_wait_us");
  m.histogram("mgr.restart.total_us");
  m.histogram("agent.ckpt.suspend_us");
  m.histogram("agent.ckpt.netckpt_us");
  m.histogram("agent.ckpt.standalone_us");
  m.histogram("agent.ckpt.stream_us");
  m.histogram("agent.ckpt.barrier_wait_us");
  m.histogram("agent.restart.connectivity_us");
  m.histogram("agent.restart.netstate_us");
  m.histogram("agent.restart.standalone_us");
  m.counter("agent.restart.deltas_composed");
  m.histogram("ckpt.image_bytes", byte_buckets());
  // Incremental checkpoint pipeline: dirty-region ratio and the split
  // between logical state size and bytes actually written.
  m.counter("ckpt.incr.regions_total");
  m.counter("ckpt.incr.regions_dirty");
  m.counter("ckpt.incr.logical_bytes");
  m.counter("ckpt.incr.written_bytes");
  // Image codec savings (zero-block elision, content dedup).
  m.counter("ckpt.codec.zero_saved_bytes");
  m.counter("ckpt.codec.dedup_saved_bytes");
  // Live introspection plane (DESIGN.md §9): beacon traffic on both
  // ends, early warnings, and the per-report lag spread.
  m.counter("agent.hb.sent");
  m.counter("agent.progress.sent");
  m.counter("mgr.hb.received");
  m.counter("mgr.progress.received");
  m.counter("mgr.health.early_warnings");
  m.histogram("health.lag_us");
}

}  // namespace zapc::obs::stats
