// ClusterHealth: the Manager-side aggregate of the live introspection
// plane (DESIGN.md §9).
//
// Agents serving a coordinated operation publish periodic HEARTBEAT
// (liveness + innermost phase) and PROGRESS (streaming watermarks:
// bytes done vs. expected, modeled throughput, cost-model ETA) protocol
// messages.  The Manager feeds them in here; the model answers the
// operator questions the post-hoc evidence cannot: which pod is
// dragging the barrier *right now*, how far along is it, and when does
// it expect to finish.
//
// Straggler attribution: each pod's projected finish instant is its
// last report time plus its own ETA (finished pods pin to their actual
// completion time).  The pod whose projection lags the cluster median
// the most is the straggler; per-report lags also feed the
// `health.lag_us` histogram so the spread survives into the evidence
// export.  Lag and heartbeat-staleness thresholds raise deduplicated
// early warnings the Manager turns into trace events — attributed
// warnings ahead of the blind phase-deadline timeouts.
//
// Snapshots serialize to the `zapc.obs.health.v1` JSON schema
// (obs/json.h), which is what the Manager's status endpoint and
// zapc-top render.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/span.h"

namespace zapc::obs {

class Json;

/// Live view of one pod inside a coordinated operation, rebuilt from its
/// latest HEARTBEAT/PROGRESS reports.
struct PodHealth {
  std::string pod;
  std::string phase;      // innermost phase from the last report
  Time last_seen_us = 0;  // when the last report arrived (observer clock)
  u32 beacons = 0;        // reports received
  u64 bytes_done = 0;
  u64 bytes_expected = 0;
  u64 throughput_bps = 0;  // modeled instantaneous throughput
  Time eta_us = 0;         // agent's cost-model remaining-time estimate
  bool done = false;       // terminal (CKPT_DONE/RESTART_DONE) received
  Time done_at_us = 0;

  double pct_done() const {
    if (done) return 100.0;
    if (bytes_expected == 0) return 0.0;
    return 100.0 * static_cast<double>(bytes_done) /
           static_cast<double>(bytes_expected);
  }

  /// Projected completion instant (actual completion for finished pods;
  /// 0 when the pod has not reported yet).
  Time projected_finish_us() const {
    if (done) return done_at_us;
    return beacons == 0 ? 0 : last_seen_us + eta_us;
  }
};

/// One early warning raised by the policy thresholds.
struct HealthWarning {
  OpId op = 0;
  std::string pod;
  std::string phase;
  std::string what;  // "lag" or "stale"
  Time lag_us = 0;   // projection lag over the median ("lag" warnings)
  Time age_us = 0;   // heartbeat age ("stale" warnings)
};

/// Slowest-pod attribution; empty pod name = no data or no laggard.
struct Straggler {
  std::string pod;
  std::string phase;
  Time lag_us = 0;  // projection lag over the cluster median
};

class ClusterHealth {
 public:
  struct Policy {
    /// Warn when a pod's projected finish lags the median by at least
    /// this much (0 = off).
    Time warn_lag_us = 0;
    /// Warn when a pod has not reported for this long while its peers
    /// still do (0 = off); the Manager sets a multiple of the cadence.
    Time stale_after_us = 0;
  };
  void set_policy(Policy p) { policy_ = p; }

  // ---- Feed (called by the Manager) ----------------------------------------
  void op_begin(OpId op, const std::string& kind, Time t,
                const std::vector<std::string>& pods);
  void heartbeat(OpId op, const std::string& pod, const std::string& phase,
                 Time t);
  void progress(OpId op, const std::string& pod, const std::string& phase,
                Time t, u64 bytes_done, u64 bytes_expected, u64 throughput_bps,
                Time eta_us);
  void pod_done(OpId op, const std::string& pod, Time t);
  void op_end(OpId op, Time t, bool ok);

  /// Warnings raised since the last call, deduplicated per
  /// op/pod/phase/kind so a sustained laggard warns once per phase.
  std::vector<HealthWarning> take_warnings();

  // ---- Queries --------------------------------------------------------------
  /// Median projected finish across the op's reporting pods (0 = none).
  Time median_finish_us(OpId op) const;
  /// How far this pod's projected finish trails the median (0 floor).
  Time lag_us(OpId op, const std::string& pod) const;
  /// Slowest-pod attribution for the op.
  Straggler straggler(OpId op) const;
  const PodHealth* pod(OpId op, const std::string& name) const;
  OpId latest_op() const { return latest_; }
  bool op_active(OpId op) const;

  /// zapc.obs.health.v1 snapshot of one op (0 = latest); `now` stamps
  /// the document and derives per-pod heartbeat ages.
  Json snapshot(Time now, OpId op = 0) const;

  void clear();

 private:
  struct OpHealth {
    std::string kind;  // "ckpt" or "restart"
    Time started_us = 0;
    Time ended_us = 0;
    bool active = false;
    bool ok = false;
    std::map<std::string, PodHealth> pods;
  };

  /// At most this many finished ops are retained for late queries.
  static constexpr std::size_t kMaxOps = 8;

  OpHealth* find_op(OpId op);
  const OpHealth* find_op(OpId op) const;
  void check_thresholds(OpId op, OpHealth& oh, Time t);
  void warn_once(const HealthWarning& w);

  std::map<OpId, OpHealth> ops_;
  OpId latest_ = 0;
  Policy policy_;
  std::vector<HealthWarning> pending_;
  std::set<std::string> warned_;  // "op/pod/phase/kind" dedup keys
};

}  // namespace zapc::obs
