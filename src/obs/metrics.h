// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the numeric half of the telemetry subsystem (spans are
// the other half, obs/span.h).  Metric objects are created on first use,
// never destroyed, and have stable addresses, so hot paths may cache a
// reference once and then pay a single increment per event (see
// obs/stats.h for the cached accessors used by the network stack and the
// simulation engine).  Names follow the `subsystem.metric_name`
// convention, e.g. `net.tcp.retransmits` or `agent.ckpt.suspend_us`.
//
// Snapshots are plain value types: diffable (perf trajectory between two
// points of one run) and serializable to JSON (obs/json.h).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/types.h"

namespace zapc::obs {

/// Monotonically increasing event count.
struct Counter {
  u64 value = 0;
  void inc(u64 n = 1) { value += n; }
};

/// Instantaneous level plus the high-water mark since the last reset
/// (queue depths, pending events).
struct Gauge {
  i64 value = 0;
  i64 max_seen = 0;
  void set(i64 v) {
    value = v;
    if (v > max_seen) max_seen = v;
  }
  void add(i64 d) { set(value + d); }
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i];
/// one overflow bucket counts the rest.  Bounds are set at creation and
/// immutable, so observe() is a linear scan over a handful of u64s.
class Histogram {
 public:
  explicit Histogram(std::vector<u64> bounds);

  void observe(u64 v);

  const std::vector<u64>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<u64>& counts() const { return counts_; }
  u64 count() const { return count_; }
  u64 sum() const { return sum_; }
  u64 min() const { return count_ == 0 ? 0 : min_; }
  u64 max() const { return max_; }

  void reset();

 private:
  std::vector<u64> bounds_;
  std::vector<u64> counts_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
};

/// Default bucket bounds for virtual-time durations in microseconds:
/// 100us .. 10s, one decade per bucket.
const std::vector<u64>& time_buckets_us();

/// Default bucket bounds for byte counts: 1KB .. 1GB.
const std::vector<u64>& byte_buckets();

// ---- Snapshots -------------------------------------------------------------

struct GaugeValue {
  i64 value = 0;
  i64 max_seen = 0;
};

struct HistogramValue {
  std::vector<u64> bounds;
  std::vector<u64> counts;
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;
  u64 max = 0;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, u64> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;

  /// Change since `earlier`: counters and histogram counts/sums are
  /// subtracted (a metric missing from `earlier` counts from zero);
  /// gauges and histogram min/max keep this snapshot's values, since
  /// levels and extrema do not subtract meaningfully.
  MetricsSnapshot diff_since(const MetricsSnapshot& earlier) const;
};

// ---- Registry --------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; the returned reference stays valid for the
  /// registry's lifetime (metrics are never removed, only reset).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on creation; a later lookup of an existing
  /// histogram ignores it.  Defaults to time_buckets_us().
  Histogram& histogram(const std::string& name,
                       const std::vector<u64>& bounds = time_buckets_us());

  MetricsSnapshot snapshot() const;

  /// Zeroes every value but keeps all registered metrics (and therefore
  /// every cached reference) alive.
  void reset();

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // unique_ptr for address stability across map rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry every subsystem reports into.  The
/// simulation is single-threaded, so no locking.
MetricsRegistry& metrics();

}  // namespace zapc::obs
