#include "obs/metrics.h"

#include <algorithm>

namespace zapc::obs {

Histogram::Histogram(std::vector<u64> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(u64 v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

const std::vector<u64>& time_buckets_us() {
  static const std::vector<u64> kBuckets = {
      100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000};
  return kBuckets;
}

const std::vector<u64>& byte_buckets() {
  static const std::vector<u64> kBuckets = {
      1ull << 10, 1ull << 15, 1ull << 20, 1ull << 25, 1ull << 30};
  return kBuckets;
}

MetricsSnapshot MetricsSnapshot::diff_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : counters) {
    auto it = earlier.counters.find(name);
    u64 base = it == earlier.counters.end() ? 0 : it->second;
    out.counters[name] = v >= base ? v - base : v;  // reset() in between
  }
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    HistogramValue d = h;
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end() &&
        it->second.bounds == h.bounds && h.count >= it->second.count) {
      for (std::size_t i = 0; i < d.counts.size(); ++i) {
        d.counts[i] -= it->second.counts[i];
      }
      d.count -= it->second.count;
      d.sum -= it->second.sum;
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<u64>& bounds) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value;
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = GaugeValue{g->value, g->max_seen};
  }
  for (const auto& [name, h] : histograms_) {
    HistogramValue v;
    v.bounds = h->bounds();
    v.counts = h->counts();
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    s.histograms[name] = std::move(v);
  }
  return s;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c->value = 0;
  for (auto& [name, g] : gauges_) *g = Gauge{};
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed
  return *g;
}

}  // namespace zapc::obs
