#include "obs/health.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/metrics.h"

namespace zapc::obs {

ClusterHealth::OpHealth* ClusterHealth::find_op(OpId op) {
  auto it = ops_.find(op);
  return it == ops_.end() ? nullptr : &it->second;
}

const ClusterHealth::OpHealth* ClusterHealth::find_op(OpId op) const {
  auto it = ops_.find(op);
  return it == ops_.end() ? nullptr : &it->second;
}

void ClusterHealth::op_begin(OpId op, const std::string& kind, Time t,
                             const std::vector<std::string>& pods) {
  OpHealth& oh = ops_[op];
  oh = OpHealth{};
  oh.kind = kind;
  oh.started_us = t;
  oh.active = true;
  for (const std::string& p : pods) {
    oh.pods[p].pod = p;
  }
  latest_ = op;

  // Retire the oldest finished ops past the retention bound.
  while (ops_.size() > kMaxOps) {
    auto victim = ops_.end();
    for (auto it = ops_.begin(); it != ops_.end(); ++it) {
      if (!it->second.active && it->first != latest_) {
        victim = it;
        break;
      }
    }
    if (victim == ops_.end()) break;
    ops_.erase(victim);
  }
}

void ClusterHealth::heartbeat(OpId op, const std::string& pod,
                              const std::string& phase, Time t) {
  OpHealth* oh = find_op(op);
  if (oh == nullptr) return;
  PodHealth& ph = oh->pods[pod];
  ph.pod = pod;
  ph.phase = phase;
  ph.last_seen_us = t;
  ++ph.beacons;
  check_thresholds(op, *oh, t);
}

void ClusterHealth::progress(OpId op, const std::string& pod,
                             const std::string& phase, Time t, u64 bytes_done,
                             u64 bytes_expected, u64 throughput_bps,
                             Time eta_us) {
  OpHealth* oh = find_op(op);
  if (oh == nullptr) return;
  PodHealth& ph = oh->pods[pod];
  ph.pod = pod;
  ph.phase = phase;
  ph.last_seen_us = t;
  // A watermark is also a liveness report: count it, so a pod whose
  // HEARTBEAT frame was dropped but whose PROGRESS arrived still
  // projects a finish instant and ages from this report.
  ++ph.beacons;
  ph.bytes_done = bytes_done;
  ph.bytes_expected = bytes_expected;
  ph.throughput_bps = throughput_bps;
  ph.eta_us = eta_us;
  metrics().histogram("health.lag_us").observe(lag_us(op, pod));
  check_thresholds(op, *oh, t);
}

void ClusterHealth::pod_done(OpId op, const std::string& pod, Time t) {
  OpHealth* oh = find_op(op);
  if (oh == nullptr) return;
  PodHealth& ph = oh->pods[pod];
  ph.pod = pod;
  ph.done = true;
  ph.done_at_us = t;
  ph.eta_us = 0;
  ph.last_seen_us = t;
  if (ph.bytes_expected > 0) ph.bytes_done = ph.bytes_expected;
}

void ClusterHealth::op_end(OpId op, Time t, bool ok) {
  OpHealth* oh = find_op(op);
  if (oh == nullptr) return;
  oh->active = false;
  oh->ok = ok;
  oh->ended_us = t;
}

bool ClusterHealth::op_active(OpId op) const {
  const OpHealth* oh = find_op(op);
  return oh != nullptr && oh->active;
}

Time ClusterHealth::median_finish_us(OpId op) const {
  const OpHealth* oh = find_op(op);
  if (oh == nullptr) return 0;
  std::vector<Time> finishes;
  for (const auto& [name, ph] : oh->pods) {
    Time f = ph.projected_finish_us();
    if (f > 0) finishes.push_back(f);
  }
  if (finishes.empty()) return 0;
  std::sort(finishes.begin(), finishes.end());
  // Lower median: with few pods this is "a typical fast pod", which is
  // the right baseline for attributing a laggard in a small cluster.
  return finishes[(finishes.size() - 1) / 2];
}

Time ClusterHealth::lag_us(OpId op, const std::string& pod) const {
  const PodHealth* ph = this->pod(op, pod);
  if (ph == nullptr) return 0;
  Time median = median_finish_us(op);
  Time f = ph->projected_finish_us();
  return (median == 0 || f <= median) ? 0 : f - median;
}

Straggler ClusterHealth::straggler(OpId op) const {
  Straggler s;
  const OpHealth* oh = find_op(op);
  if (oh == nullptr) return s;
  for (const auto& [name, ph] : oh->pods) {
    Time lag = lag_us(op, name);
    if (lag > s.lag_us) {
      s.pod = name;
      s.phase = ph.phase;
      s.lag_us = lag;
    }
  }
  return s;
}

const PodHealth* ClusterHealth::pod(OpId op, const std::string& name) const {
  const OpHealth* oh = find_op(op);
  if (oh == nullptr) return nullptr;
  auto it = oh->pods.find(name);
  return it == oh->pods.end() ? nullptr : &it->second;
}

void ClusterHealth::warn_once(const HealthWarning& w) {
  std::string key = std::to_string(w.op) + "/" + w.pod + "/" + w.phase + "/" +
                    w.what;
  if (!warned_.insert(key).second) return;
  pending_.push_back(w);
}

void ClusterHealth::check_thresholds(OpId op, OpHealth& oh, Time t) {
  for (const auto& [name, ph] : oh.pods) {
    if (ph.done) continue;
    if (policy_.warn_lag_us > 0) {
      Time lag = lag_us(op, name);
      if (lag >= policy_.warn_lag_us) {
        warn_once(HealthWarning{op, name, ph.phase, "lag", lag, 0});
      }
    }
    // Staleness is noticed when *other* pods' reports arrive: a silent
    // pod cannot flag itself.
    if (policy_.stale_after_us > 0 && ph.beacons > 0 &&
        t >= ph.last_seen_us + policy_.stale_after_us) {
      warn_once(
          HealthWarning{op, name, ph.phase, "stale", 0, t - ph.last_seen_us});
    }
  }
}

std::vector<HealthWarning> ClusterHealth::take_warnings() {
  std::vector<HealthWarning> out;
  out.swap(pending_);
  return out;
}

Json ClusterHealth::snapshot(Time now, OpId op) const {
  if (op == 0) op = latest_;
  Json doc = Json::object();
  doc["schema"] = kHealthSchemaVersion;
  doc["t_us"] = now;
  doc["op_id"] = op;
  const OpHealth* oh = find_op(op);
  if (oh == nullptr) return doc;

  doc["kind"] = oh->kind;
  doc["active"] = oh->active;
  doc["started_us"] = oh->started_us;
  if (!oh->active) {
    doc["ended_us"] = oh->ended_us;
    doc["ok"] = oh->ok;
  }

  Time median = median_finish_us(op);
  doc["median_finish_us"] = median;

  Json pods = Json::object();
  for (const auto& [name, ph] : oh->pods) {
    Json p = Json::object();
    p["phase"] = ph.phase;
    p["beacons"] = ph.beacons;
    p["pct_done"] = ph.pct_done();
    p["bytes_done"] = ph.bytes_done;
    p["bytes_expected"] = ph.bytes_expected;
    p["throughput_bps"] = ph.throughput_bps;
    p["eta_us"] = ph.eta_us;
    p["done"] = ph.done;
    p["last_seen_us"] = ph.last_seen_us;
    p["heartbeat_age_us"] =
        ph.beacons == 0 && !ph.done
            ? Json(0)
            : Json(now >= ph.last_seen_us ? now - ph.last_seen_us : 0);
    p["lag_us"] = lag_us(op, name);
    pods[name] = std::move(p);
  }
  doc["pods"] = std::move(pods);

  Straggler s = straggler(op);
  if (!s.pod.empty()) {
    Json sj = Json::object();
    sj["pod"] = s.pod;
    sj["phase"] = s.phase;
    sj["lag_us"] = s.lag_us;
    doc["straggler"] = std::move(sj);
  }
  return doc;
}

void ClusterHealth::clear() {
  ops_.clear();
  latest_ = 0;
  pending_.clear();
  warned_.clear();
}

}  // namespace zapc::obs
