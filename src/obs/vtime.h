// Shared rendering of virtual-time values.
//
// Every human-facing surface stamps instants/durations the same way —
// the log prefix (util/log.cpp), the offline timeline renderer
// (tools/trace_analysis.cpp), trace event text, and the zapc-top table
// all format through these helpers so "@1234us" means the same thing
// everywhere.  Header-only: util sits below obs in the library stack,
// so log.cpp can include this without a link dependency on zapc_obs.
#pragma once

#include <cstdio>
#include <string>

#include "util/types.h"

namespace zapc::obs {

/// "1234us" — a duration or instant in virtual microseconds.
inline std::string vtime_us(u64 t) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lluus",
                static_cast<unsigned long long>(t));
  return buf;
}

/// "@1234us" — an instant stamp (log prefixes, timelines, tables).
inline std::string vtime_stamp(u64 t) { return "@" + vtime_us(t); }

}  // namespace zapc::obs
