// Critical-path downtime attribution (DESIGN.md §10).
//
// Given the span/event tree of one coordinated operation — the same
// causal data tools/trace_analysis loads from zapc.obs.v1 evidence —
// compute the chain of work and message edges that actually determined
// the operation's wall time, from the Manager's root span through the
// continue barrier to op close.  The walk is protocol-aware: it starts
// at the last CKPT_DONE arrival, descends that agent's sequential phase
// spans backwards, and when the agent was parked at the continue
// barrier it jumps across the cross-node parent edge (the ContinueMsg
// id recorded as `mgr.continue`) onto the meta-data side, ending at the
// CheckpointCmd send.  Segments are contiguous by construction, so
// their durations sum to the operation's measured downtime exactly.
//
// Every pod that is NOT on the critical path gets a slack figure: how
// much later its completion report could have arrived without moving
// the op's last arrival (i.e. how much it could slow before becoming
// critical at the gating edge).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"
#include "util/status.h"

namespace zapc::obs {

/// One ordered critical-path segment.  Work segments carry the span the
/// time was cut from; edge segments (`edge == true`) are message flights
/// or coordination gaps between spans and carry no span id.
struct CritSegment {
  Time start = 0;
  Time end = 0;
  std::string who;    // "manager", "agent@n2"
  std::string pod;    // pod the time is attributed to ("" = coordination)
  std::string phase;  // span name ("ckpt.standalone") or "edge:<what>"
  bool edge = false;
  SpanId span = 0;  // work segments: the span this slice belongs to

  Time duration() const { return end > start ? end - start : 0; }
};

/// Done-side slack of one pod: how much later its completion could have
/// arrived without extending the op (0 for the gating pod).
struct PodSlack {
  std::string pod;
  Time slack_us = 0;
};

struct OpAttribution {
  OpId op = 0;
  std::string kind;  // "ckpt", "restart" or "unknown"
  Time start = 0;
  Time end = 0;
  Time downtime_us = 0;  // root-span extent == sum of segment durations
  std::vector<CritSegment> segments;  // ordered, contiguous over [start,end]
  std::vector<PodSlack> slack;        // every pod, gating pod at 0
  std::string critical_pod;    // pod holding the largest share of the path
  std::string critical_phase;  // costliest (pod, phase) slice on the path
  Time critical_phase_us = 0;  // wall time of that slice

  /// Total critical-path time per phase label (edges included under
  /// their "edge:<what>" names).
  std::map<std::string, Time> phase_totals() const;
  /// Critical-path time attributed to one pod's work segments.
  Time pod_critical_us(const std::string& pod) const;
};

/// Attributes one operation's records (spans + events of a single op id,
/// any order).  Err::INVALID when no root span exists or the records are
/// empty; partial trees (aborted ops, crashed agents with open spans)
/// attribute fine — open spans are clipped at the op's end.
Result<OpAttribution> attribute_op(
    const std::vector<const SpanRecord*>& records);

/// Convenience: filters `spans` down to `op` and attributes it.
Result<OpAttribution> attribute_op(const std::vector<SpanRecord>& spans,
                                   OpId op);

/// The ledger/report serialization of an attribution:
///   { "downtime_us": N, "critical_pod": "...", "critical_phase": "...",
///     "critical_phase_us": N,
///     "segments": [ { "start_us", "end_us", "who", "pod", "phase",
///                     "edge", "pct" } ... ],
///     "slack": [ { "pod", "slack_us" } ... ] }
Json attribution_to_json(const OpAttribution& a);
Result<OpAttribution> attribution_from_json(const Json& j);

}  // namespace zapc::obs
