#include "obs/critpath.h"

#include <algorithm>

namespace zapc::obs {
namespace {

/// Remainder of `s` after `prefix`, or "" when it doesn't start with it.
std::string after_prefix(const std::string& s, const std::string& prefix) {
  if (s.rfind(prefix, 0) != 0) return "";
  return s.substr(prefix.size());
}

/// Pod name out of an agent/manager event text, for the known shapes:
///   "1: suspend pod <POD>, block network"   (checkpoint, agent side)
///   "1: pod <POD> created for restart"      (restart, agent side)
///   "2: meta-data received from <POD>"      (manager, meta arrival)
///   "4: 'done' received from <POD>"         (manager, ckpt done arrival)
///   "2: 'done' received from <POD>"         (manager, restart done arrival)
///   "2a: meta-data reported for <POD>"      (agent, meta send)
///   "3a: continue received for <POD>"       (agent, barrier release)
std::string pod_of_suspend(const std::string& name) {
  std::string rest = after_prefix(name, "1: suspend pod ");
  if (rest.empty()) return "";
  auto comma = rest.find(',');
  return comma == std::string::npos ? rest : rest.substr(0, comma);
}

std::string pod_of_restart_create(const std::string& name) {
  std::string rest = after_prefix(name, "1: pod ");
  if (rest.empty()) return "";
  auto sep = rest.find(" created for restart");
  return sep == std::string::npos ? "" : rest.substr(0, sep);
}

/// Per-agent view assembled from one op's records.
struct AgentInfo {
  const SpanRecord* span = nullptr;  // agent-side root ("ckpt"/"restart")
  std::string pod;
  Time cont_arrival = 0;   // "3a: continue received" time; 0 = none seen
  Time meta_reported = 0;  // "2a: meta-data reported" time; 0 = none seen
  Time done_arrival = 0;   // manager-side arrival of this pod's DONE
};

/// The backward walk's shared state.  Segments are emitted newest-first
/// while `cursor` marches from the op's end back to its start; every
/// cursor move is paired with exactly one emitted segment, which is what
/// makes the durations sum to the downtime exactly.
struct Walk {
  Time t0 = 0;
  Time t1 = 0;
  Time cursor = 0;
  std::vector<CritSegment> segs;  // reverse (newest-first) order

  /// Clips a span's end to the op window (open spans run to op close).
  Time clip_end(const SpanRecord* s) const {
    Time e = s->open ? t1 : s->end;
    return std::min(e, t1);
  }

  /// Emits [lo, cursor] and moves the cursor; zero-length slices (and
  /// anything clamped away by the op window) move nothing.
  void emit(Time lo, const std::string& who, const std::string& pod,
            const std::string& phase, bool edge, SpanId span) {
    lo = std::max(lo, t0);
    if (lo >= cursor) return;
    segs.push_back(CritSegment{lo, cursor, who, pod, phase, edge, span});
    cursor = lo;
  }
};

/// Walks one agent's sequential phase children backward from the current
/// cursor down to the agent span's start, attributing gaps between
/// phases to the agent span itself.  With `follow_continue`, a barrier
/// span the agent entered *before* the continue arrived stops the local
/// descent: the post-continue slice (commit + resume) is emitted and the
/// caller jumps across the continue edge onto the Manager/meta side.
/// Returns true when that jump was taken.
bool descend_agent(Walk& w, const AgentInfo& a,
                   const std::vector<const SpanRecord*>& kids,
                   bool follow_continue) {
  std::vector<const SpanRecord*> sorted = kids;
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord* x, const SpanRecord* y) {
              return x->start < y->start;
            });
  const Time a_start = a.span->start;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    const SpanRecord* c = *it;
    if (w.cursor <= a_start) break;
    if (c->start >= w.cursor) continue;  // phase past the current cut
    Time ce = std::min(w.clip_end(c), w.cursor);
    // Gap between this phase's end and the cut: the agent's own time
    // (commit bookkeeping, event-loop scheduling).
    w.emit(ce, a.span->who, a.pod, a.span->name, /*edge=*/false,
           a.span->id);
    if (follow_continue && c->name == "ckpt.barrier" &&
        a.cont_arrival != 0 && a.cont_arrival > c->start) {
      // The agent finished its standalone checkpoint and waited here for
      // the Manager's continue: the wait itself is NOT this agent's cost.
      // Emit only the post-continue work (image commit, resume), then
      // hand the walk to the continue edge.
      w.emit(a.cont_arrival, a.span->who, a.pod, c->name, /*edge=*/false,
             c->id);
      return true;
    }
    w.emit(c->start, a.span->who, a.pod, c->name, /*edge=*/false, c->id);
  }
  // Before the first phase span (or with none recorded): agent's own.
  w.emit(a_start, a.span->who, a.pod, a.span->name, /*edge=*/false,
         a.span->id);
  return false;
}

}  // namespace

std::map<std::string, Time> OpAttribution::phase_totals() const {
  std::map<std::string, Time> out;
  for (const CritSegment& s : segments) out[s.phase] += s.duration();
  return out;
}

Time OpAttribution::pod_critical_us(const std::string& pod) const {
  Time t = 0;
  for (const CritSegment& s : segments) {
    if (!s.edge && s.pod == pod) t += s.duration();
  }
  return t;
}

Result<OpAttribution> attribute_op(
    const std::vector<const SpanRecord*>& records) {
  if (records.empty()) {
    return Status(Err::INVALID, "no records to attribute");
  }

  std::map<SpanId, const SpanRecord*> by_id;
  for (const SpanRecord* r : records) by_id[r->id] = r;

  // Root: the Manager's op span; fall back to the earliest span whose
  // parent is outside this op's record set.
  const SpanRecord* root = nullptr;
  for (const SpanRecord* r : records) {
    if (r->kind != SpanKind::SPAN) continue;
    if (r->name == "mgr.ckpt" || r->name == "mgr.restart") {
      root = r;
      break;
    }
  }
  if (root == nullptr) {
    for (const SpanRecord* r : records) {
      if (r->kind != SpanKind::SPAN) continue;
      if (r->parent != 0 && by_id.count(r->parent) != 0) continue;
      if (root == nullptr || r->start < root->start) root = r;
    }
  }
  if (root == nullptr) {
    return Status(Err::INVALID, "no root span in op records");
  }

  OpAttribution out;
  out.op = root->op;
  out.kind = root->name == "mgr.ckpt"
                 ? "ckpt"
                 : root->name == "mgr.restart" ? "restart" : "unknown";
  out.start = root->start;
  // A postmortem leaves the root open: the op extends to the last stamp.
  Time t1 = root->open ? root->start : root->end;
  if (root->open) {
    for (const SpanRecord* r : records) {
      t1 = std::max({t1, r->start, r->open ? r->start : r->end});
    }
  }
  out.end = t1;
  out.downtime_us = t1 > out.start ? t1 - out.start : 0;

  Walk w;
  w.t0 = out.start;
  w.t1 = t1;
  w.cursor = t1;

  // Span children (events excluded) by parent.
  std::map<SpanId, std::vector<const SpanRecord*>> kids;
  for (const SpanRecord* r : records) {
    if (r->kind == SpanKind::SPAN && r->parent != 0) {
      kids[r->parent].push_back(r);
    }
  }

  // Agent-side roots: span children of the Manager root that are not the
  // Manager's own wait phases.
  std::map<std::string, AgentInfo> agents;          // by pod
  std::map<std::string, std::string> who_to_pod;    // agent who → pod
  std::vector<const SpanRecord*> agent_spans;
  for (const SpanRecord* r : kids[root->id]) {
    if (after_prefix(r->name, "mgr.").empty()) agent_spans.push_back(r);
  }
  for (const SpanRecord* s : agent_spans) {
    std::string pod;
    for (const SpanRecord* r : records) {
      if (r->kind != SpanKind::EVENT || r->parent != s->id) continue;
      std::string p = pod_of_suspend(r->name);
      if (p.empty()) p = pod_of_restart_create(r->name);
      if (!p.empty()) {
        pod = p;
        break;
      }
    }
    if (pod.empty()) pod = s->who;  // degraded but still attributable
    AgentInfo& a = agents[pod];
    a.span = s;
    a.pod = pod;
    who_to_pod[s->who] = pod;
  }

  // Event-derived times: done/meta arrivals (manager side), continue
  // arrival and meta report (agent side).
  const std::string done_prefix = out.kind == "restart"
                                      ? "2: 'done' received from "
                                      : "4: 'done' received from ";
  std::string meta_gate_pod;
  Time meta_gate_t = 0;
  Time continue_t = 0;
  for (const SpanRecord* r : records) {
    if (r->kind != SpanKind::EVENT) continue;
    if (r->name == "mgr.continue") {
      continue_t = r->start;
      continue;
    }
    if (std::string p = after_prefix(r->name, done_prefix); !p.empty()) {
      if (auto it = agents.find(p); it != agents.end()) {
        it->second.done_arrival =
            std::max(it->second.done_arrival, r->start);
      }
      continue;
    }
    if (std::string p = after_prefix(r->name, "2: meta-data received from ");
        !p.empty()) {
      if (r->start >= meta_gate_t) {
        meta_gate_t = r->start;
        meta_gate_pod = p;
      }
      continue;
    }
    if (std::string p =
            after_prefix(r->name, "2a: meta-data reported for ");
        !p.empty()) {
      if (auto it = agents.find(p); it != agents.end()) {
        it->second.meta_reported = r->start;
      }
      continue;
    }
    if (std::string p = after_prefix(r->name, "3a: continue received for ");
        !p.empty()) {
      if (auto it = agents.find(p); it != agents.end()) {
        it->second.cont_arrival = r->start;
      }
    }
  }

  // Completion times: the DONE arrival when recorded, else the clipped
  // agent span end (aborted ops and crashed agents have no arrival).
  for (auto& [pod, a] : agents) {
    if (a.done_arrival == 0) a.done_arrival = w.clip_end(a.span);
  }

  if (agents.empty()) {
    // Manager-only op (connect failure, no tracing agents): everything
    // is coordination time on the root.
    w.emit(w.t0, root->who, "", root->name, /*edge=*/false, root->id);
  } else {
    // Gating pod: the last completion the Manager waited for.
    const AgentInfo* gate = nullptr;
    for (const auto& [pod, a] : agents) {
      if (gate == nullptr || a.done_arrival > gate->done_arrival) {
        gate = &a;
      }
    }
    // DONE message flight (plus the Manager's close-out bookkeeping).
    w.emit(std::min(w.clip_end(gate->span), w.cursor), "manager",
           gate->pod, "edge:done", /*edge=*/true, 0);
    const bool jumped = descend_agent(
        w, *gate, kids[gate->span->id],
        /*follow_continue=*/out.kind == "ckpt");
    if (jumped) {
      // The gating agent was parked at the barrier: the path crosses the
      // CONTINUE edge back to the Manager's sync point...
      if (continue_t != 0) {
        w.emit(continue_t, "manager", "", "edge:continue", /*edge=*/true,
               0);
      }
      // ...which fired on the last META_REPORT arrival.
      auto mit = meta_gate_pod.empty() ? agents.end()
                                       : agents.find(meta_gate_pod);
      if (mit != agents.end()) {
        AgentInfo& m = mit->second;
        Time tm = m.meta_reported;
        if (tm == 0) {
          // NETWORK_LAST (no "2a" marker): the report followed the
          // network checkpoint; use that phase's end.
          for (const SpanRecord* c : kids[m.span->id]) {
            if (c->name == "ckpt.netckpt") tm = w.clip_end(c);
          }
        }
        if (tm == 0) tm = m.span->start;
        w.emit(std::min(tm, w.cursor), "manager", m.pod, "edge:meta",
               /*edge=*/true, 0);
        (void)descend_agent(w, m, kids[m.span->id],
                            /*follow_continue=*/false);
        w.emit(w.t0, "manager", m.pod, "edge:cmd", /*edge=*/true, 0);
      } else {
        // Meta arrivals not recorded: the remainder is the Manager's
        // meta wait.
        SpanId mw = 0;
        std::string mw_name = root->name;
        for (const SpanRecord* c : kids[root->id]) {
          if (c->name == "mgr.ckpt.meta_wait") {
            mw = c->id;
            mw_name = c->name;
          }
        }
        w.emit(w.t0, "manager", "", mw_name, /*edge=*/false, mw);
      }
    } else {
      // The gating agent never waited for the continue (its standalone
      // work WAS the gate — the barrier is off the critical path): the
      // remaining gap is the command send + connect.
      w.emit(w.t0, "manager", gate->pod, "edge:cmd", /*edge=*/true, 0);
    }
    // Anything left (clock weirdness in damaged traces): Manager time.
    w.emit(w.t0, root->who, "", root->name, /*edge=*/false, root->id);

    // Done-side slack per pod, 0 for the gate.
    for (const auto& [pod, a] : agents) {
      out.slack.push_back(
          PodSlack{pod, gate->done_arrival - a.done_arrival});
    }
  }

  out.segments.assign(w.segs.rbegin(), w.segs.rend());

  // Costliest pod and (pod, phase) slice among the work segments.
  std::map<std::string, Time> per_pod;
  std::map<std::pair<std::string, std::string>, Time> per_slice;
  for (const CritSegment& s : out.segments) {
    if (s.edge || s.pod.empty()) continue;
    per_pod[s.pod] += s.duration();
    per_slice[{s.pod, s.phase}] += s.duration();
  }
  Time best = 0;
  for (const auto& [pod, t] : per_pod) {
    if (t > best) {
      best = t;
      out.critical_pod = pod;
    }
  }
  best = 0;
  for (const auto& [key, t] : per_slice) {
    if (t > best) {
      best = t;
      out.critical_phase = key.second;
      out.critical_phase_us = t;
    }
  }
  return out;
}

Result<OpAttribution> attribute_op(const std::vector<SpanRecord>& spans,
                                   OpId op) {
  std::vector<const SpanRecord*> records;
  for (const SpanRecord& s : spans) {
    if (s.op == op) records.push_back(&s);
  }
  return attribute_op(records);
}

Json attribution_to_json(const OpAttribution& a) {
  Json j = Json::object();
  j["op"] = a.op;
  j["kind"] = a.kind;
  j["start_us"] = a.start;
  j["end_us"] = a.end;
  j["downtime_us"] = a.downtime_us;
  j["critical_pod"] = a.critical_pod;
  j["critical_phase"] = a.critical_phase;
  j["critical_phase_us"] = a.critical_phase_us;
  Json segs = Json::array();
  for (const CritSegment& s : a.segments) {
    Json e = Json::object();
    e["start_us"] = s.start;
    e["end_us"] = s.end;
    e["who"] = s.who;
    e["pod"] = s.pod;
    e["phase"] = s.phase;
    e["edge"] = s.edge;
    if (s.span != 0) e["span"] = s.span;
    if (a.downtime_us > 0) {
      e["pct"] = 100.0 * static_cast<double>(s.duration()) /
                 static_cast<double>(a.downtime_us);
    }
    segs.push(std::move(e));
  }
  j["segments"] = std::move(segs);
  Json slack = Json::array();
  for (const PodSlack& s : a.slack) {
    Json e = Json::object();
    e["pod"] = s.pod;
    e["slack_us"] = s.slack_us;
    slack.push(std::move(e));
  }
  j["slack"] = std::move(slack);
  return j;
}

Result<OpAttribution> attribution_from_json(const Json& j) {
  if (!j.is_obj()) return Status(Err::PROTO, "attribution: not an object");
  auto str = [&](const char* k) {
    const Json* v = j.find(k);
    return v != nullptr && v->is_str() ? v->str() : std::string();
  };
  auto num = [](const Json& o, const char* k) -> Time {
    const Json* v = o.find(k);
    return v != nullptr && v->is_num() ? v->num_u64() : 0;
  };
  OpAttribution a;
  a.op = num(j, "op");
  a.kind = str("kind");
  a.start = num(j, "start_us");
  a.end = num(j, "end_us");
  a.downtime_us = num(j, "downtime_us");
  a.critical_pod = str("critical_pod");
  a.critical_phase = str("critical_phase");
  a.critical_phase_us = num(j, "critical_phase_us");
  if (const Json* segs = j.find("segments");
      segs != nullptr && segs->is_arr()) {
    for (const Json& e : segs->items()) {
      if (!e.is_obj()) return Status(Err::PROTO, "attribution: bad segment");
      CritSegment s;
      s.start = num(e, "start_us");
      s.end = num(e, "end_us");
      if (const Json* v = e.find("who"); v != nullptr) s.who = v->str();
      if (const Json* v = e.find("pod"); v != nullptr) s.pod = v->str();
      if (const Json* v = e.find("phase"); v != nullptr) s.phase = v->str();
      if (const Json* v = e.find("edge"); v != nullptr) {
        s.edge = v->boolean();
      }
      s.span = static_cast<SpanId>(num(e, "span"));
      a.segments.push_back(std::move(s));
    }
  }
  if (const Json* slack = j.find("slack");
      slack != nullptr && slack->is_arr()) {
    for (const Json& e : slack->items()) {
      if (!e.is_obj()) return Status(Err::PROTO, "attribution: bad slack");
      PodSlack s;
      if (const Json* v = e.find("pod"); v != nullptr) s.pod = v->str();
      s.slack_us = num(e, "slack_us");
      a.slack.push_back(std::move(s));
    }
  }
  return a;
}

}  // namespace zapc::obs
