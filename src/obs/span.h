// Virtual-time spans: the timeline half of the telemetry subsystem.
//
// A span is a named interval stamped from the simulation's virtual clock,
// with parent/child nesting and a `who` label ("manager", "agent@n3").
// Instant EVENT records share the stream, which is how the legacy
// core::Trace timeline (paper Figure 2) is now represented: Trace became
// a thin view that materializes the EVENT records back into its old
// {t, who, what} rows.
//
// Two stamping modes coexist:
//  * explicit-time (`begin_at`/`end_at`/`event_at`) — used by the
//    Manager/Agent pipeline, which always knows `node.now()`;
//  * clocked (`begin`/`end`/`event` + RAII Span) — used by tests and any
//    code that registered a clock callback with set_clock().
//
// Causal tracing: every coordinated checkpoint/restart operation carries
// a process-unique op id (next_op_id()).  The Manager mints it, ships it
// in every protocol message, and both sides stamp it onto their spans and
// events, so one stream holding several interleaved operations can be
// split back into per-op causal trees.  Cross-node causality uses the
// ordinary `parent` field: the Manager sends the span id of its root (or
// of the 'continue' event) with the command, and the Agent parents its
// records under it.  Parent ids are only meaningful when both sides
// report into the same recorder (the Testbed/Trace arrangement); with
// separate recorders the op id alone still correlates the records.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/types.h"

namespace zapc::obs {

class FlightRecorder;

/// Virtual time in microseconds (mirrors sim::Time without depending on
/// the engine; obs sits below sim in the library stack).
using Time = u64;

/// 1-based index into the recorder's span stream; 0 means "no span".
using SpanId = u32;

enum class SpanKind : u8 { SPAN = 0, EVENT = 1 };

/// Coordinated-operation id; 0 means "not part of a coordinated op".
using OpId = u64;

/// Mints the next process-unique coordinated-operation id (1, 2, ...).
OpId next_op_id();

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  SpanKind kind = SpanKind::SPAN;
  OpId op = 0;       // coordinated op this record belongs to; 0 = none
  std::string name;  // phase name, or the event text for EVENT records
  std::string who;   // "manager", "agent@n2", ...
  Time start = 0;
  Time end = 0;
  bool open = false;  // true while a SPAN awaits its end()
};

class SpanRecorder {
 public:
  /// Registers the virtual clock used by the no-argument stamping calls.
  void set_clock(std::function<Time()> fn) { clock_ = std::move(fn); }
  bool has_clock() const { return static_cast<bool>(clock_); }
  Time now() const { return clock_ ? clock_() : 0; }

  /// Opens a span at the clock's current time (parent 0 = root).
  SpanId begin(const std::string& name, const std::string& who,
               SpanId parent = 0, OpId op = 0) {
    return begin_at(now(), name, who, parent, op);
  }
  SpanId begin_at(Time t, const std::string& name, const std::string& who,
                  SpanId parent = 0, OpId op = 0);

  /// Closes an open span; invalid or already-closed ids are ignored, so
  /// abort paths may blindly close every phase they might have opened.
  void end(SpanId id) { end_at(now(), id); }
  void end_at(Time t, SpanId id);

  /// Records an instant EVENT (a zero-length stamped annotation) and
  /// returns its id, so it can serve as a cross-node parent (the
  /// Manager's 'continue' decision parents every agent's resume).
  SpanId event(const std::string& who, const std::string& what,
               SpanId parent = 0, OpId op = 0) {
    return event_at(now(), who, what, parent, op);
  }
  SpanId event_at(Time t, const std::string& who, const std::string& what,
                  SpanId parent = 0, OpId op = 0);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const SpanRecord* find(SpanId id) const {
    return id == 0 || id > spans_.size() ? nullptr : &spans_[id - 1];
  }
  /// First record matching name (+ who, unless empty); nullptr if none.
  const SpanRecord* find_by_name(const std::string& name,
                                 const std::string& who = "") const;

  /// Duration of a closed span; 0 for open/unknown ids.
  Time duration(SpanId id) const {
    const SpanRecord* s = find(id);
    return s != nullptr && !s->open ? s->end - s->start : 0;
  }

  /// Innermost (latest-started) still-open SPAN belonging to `op` — the
  /// phase a failed operation died in; nullptr if none is open.
  const SpanRecord* innermost_open(OpId op) const;

  std::size_t open_spans() const;

  /// Innermost span opened by a live RAII Span on this recorder (the
  /// default parent for nested Spans); 0 if none.
  SpanId current() const { return stack_.empty() ? 0 : stack_.back(); }

  /// Drops all records (the clock survives).  Ids handed out before the
  /// clear become invalid; end_at() on them is a no-op as long as no new
  /// span has reused the slot.
  void clear() {
    spans_.clear();
    stack_.clear();
  }

 private:
  friend class Span;

  std::vector<SpanRecord> spans_;
  std::vector<SpanId> stack_;  // RAII nesting
  std::function<Time()> clock_;
};

/// RAII span: opens on construction (parented under the recorder's
/// current RAII span) and closes on destruction.  A null recorder makes
/// every operation a no-op, mirroring the `Trace*` convention.
class Span {
 public:
  Span(SpanRecorder* rec, std::string name, std::string who = "");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  SpanId id() const { return id_; }

 private:
  SpanRecorder* rec_;
  SpanId id_ = 0;
};

/// Causal-trace context handed down into layers that have no notion of
/// the coordinated protocol (packet filter, TCP, connectivity recovery):
/// enough to stamp an op-tagged EVENT under the right parent span.  A
/// null recorder makes event() a no-op, so call sites need no guards.
struct ObsTag {
  SpanRecorder* rec = nullptr;
  std::string who;
  OpId op = 0;
  SpanId parent = 0;
  std::function<Time()> clock;  // falls back to the recorder's clock

  bool active() const { return rec != nullptr; }
  void event(const std::string& what) const {
    if (rec == nullptr) return;
    rec->event_at(clock ? clock() : rec->now(), who, what, parent, op);
  }
};

}  // namespace zapc::obs
