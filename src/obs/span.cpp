#include "obs/span.h"

#include "obs/flight.h"

namespace zapc::obs {

OpId next_op_id() {
  // The simulation is single-threaded (like the global metrics registry),
  // so a plain counter suffices.
  static OpId counter = 0;
  return ++counter;
}

SpanId SpanRecorder::begin_at(Time t, const std::string& name,
                              const std::string& who, SpanId parent,
                              OpId op) {
  SpanRecord s;
  s.id = static_cast<SpanId>(spans_.size() + 1);
  s.parent = parent;
  s.kind = SpanKind::SPAN;
  s.op = op;
  s.name = name;
  s.who = who;
  s.start = t;
  s.end = t;
  s.open = true;
  flight().note_span(s);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void SpanRecorder::end_at(Time t, SpanId id) {
  SpanRecord* s = id == 0 || id > spans_.size() ? nullptr : &spans_[id - 1];
  if (s == nullptr || !s->open) return;
  s->end = t >= s->start ? t : s->start;
  s->open = false;
  flight().note_span(*s);
}

SpanId SpanRecorder::event_at(Time t, const std::string& who,
                              const std::string& what, SpanId parent,
                              OpId op) {
  SpanRecord s;
  s.id = static_cast<SpanId>(spans_.size() + 1);
  s.parent = parent;
  s.kind = SpanKind::EVENT;
  s.op = op;
  s.name = what;
  s.who = who;
  s.start = t;
  s.end = t;
  s.open = false;
  flight().note_span(s);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

const SpanRecord* SpanRecorder::find_by_name(const std::string& name,
                                             const std::string& who) const {
  for (const SpanRecord& s : spans_) {
    if (s.name == name && (who.empty() || s.who == who)) return &s;
  }
  return nullptr;
}

std::size_t SpanRecorder::open_spans() const {
  std::size_t n = 0;
  for (const SpanRecord& s : spans_) {
    if (s.open) ++n;
  }
  return n;
}

const SpanRecord* SpanRecorder::innermost_open(OpId op) const {
  const SpanRecord* best = nullptr;
  for (const SpanRecord& s : spans_) {
    if (s.kind != SpanKind::SPAN || !s.open || s.op != op) continue;
    if (best == nullptr || s.start >= best->start) best = &s;
  }
  return best;
}

Span::Span(SpanRecorder* rec, std::string name, std::string who)
    : rec_(rec) {
  if (rec_ == nullptr) return;
  id_ = rec_->begin(name, who, rec_->current());
  rec_->stack_.push_back(id_);
}

Span::~Span() {
  if (rec_ == nullptr || id_ == 0) return;
  rec_->end(id_);
  // A mis-nested stack (clear() mid-span) degrades gracefully: only pop
  // our own entry if it is still on top.
  if (!rec_->stack_.empty() && rec_->stack_.back() == id_) {
    rec_->stack_.pop_back();
  }
}

}  // namespace zapc::obs
