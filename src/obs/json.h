// Minimal JSON tree, writer, parser and the evidence exporter.
//
// Serializes a metrics snapshot + span stream to the stable
// `zapc.obs.v1` schema benches write under bench_results/*.json:
//
//   {
//     "schema": "zapc.obs.v1",
//     "name": "<bench or export name>",
//     "metrics": {
//       "counters":   { "net.tcp.retransmits": 3, ... },
//       "gauges":     { "sim.queue_depth": {"value": 2, "max": 40}, ... },
//       "histograms": { "agent.ckpt.suspend_us": {
//           "bounds": [...], "counts": [...],
//           "count": n, "sum": s, "min": m, "max": M }, ... }
//     },
//     "spans": [ { "id": 1, "parent": 0, "kind": "span"|"event",
//                  "name": "...", "who": "...",
//                  "start_us": t0, "end_us": t1 }, ... ],   // optional
//     "rows":  [ ... ]                                      // bench series
//   }
//
// The writer emits object keys sorted (std::map) with a fixed number
// format, so identical data always produces identical bytes — snapshots
// round-trip exactly and diffs of bench_results/*.json stay readable.
// No external JSON dependency; the parser exists so tests can validate
// the exporter against its own output.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/status.h"

namespace zapc::obs {

inline constexpr const char* kSchemaVersion = "zapc.obs.v1";

/// Schema of the flight-recorder failure dumps (obs/flight.h).
inline constexpr const char* kPostmortemSchemaVersion =
    "zapc.obs.postmortem.v1";

/// Schema of the live ClusterHealth snapshots (obs/health.h) served by
/// the Manager's status endpoint and rendered by zapc-top.
inline constexpr const char* kHealthSchemaVersion = "zapc.obs.health.v1";

/// Schema of the append-only per-op run ledger (obs/ledger.h), one JSONL
/// line per completed/aborted coordinated operation, read by zapc-report.
inline constexpr const char* kLedgerSchemaVersion = "zapc.obs.ledger.v1";

class Json {
 public:
  enum class Type { NUL, BOOL, NUM, STR, ARR, OBJ };

  Json() = default;
  Json(bool b) : type_(Type::BOOL), bool_(b) {}
  Json(double d) : type_(Type::NUM), num_(d) {}
  Json(int v) : type_(Type::NUM), num_(v) {}
  Json(u32 v) : type_(Type::NUM), num_(v) {}
  Json(i64 v) : type_(Type::NUM), num_(static_cast<double>(v)) {}
  Json(u64 v) : type_(Type::NUM), num_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::STR), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::STR), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::ARR;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::OBJ;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::NUL; }
  bool is_num() const { return type_ == Type::NUM; }
  bool is_str() const { return type_ == Type::STR; }
  bool is_arr() const { return type_ == Type::ARR; }
  bool is_obj() const { return type_ == Type::OBJ; }

  bool boolean() const { return bool_; }
  double num() const { return num_; }
  u64 num_u64() const { return num_ < 0 ? 0 : static_cast<u64>(num_); }
  i64 num_i64() const { return static_cast<i64>(num_); }
  const std::string& str() const { return str_; }

  // Arrays.
  void push(Json v) { arr_.push_back(std::move(v)); }
  const std::vector<Json>& items() const { return arr_; }
  std::size_t size() const {
    return type_ == Type::ARR ? arr_.size() : obj_.size();
  }

  // Objects.  operator[] creates (and coerces a NUL value to OBJ).
  Json& operator[](const std::string& key) {
    type_ = Type::OBJ;
    return obj_[key];
  }
  const Json* find(const std::string& key) const {
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, Json>& fields() const { return obj_; }

  /// Serializes; indent 0 = compact single line, otherwise pretty with
  /// `indent` spaces per level.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::NUL;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

/// Parses a JSON document (Err::PROTO on malformed input).
Result<Json> json_parse(const std::string& text);

// ---- Evidence export -------------------------------------------------------

Json snapshot_to_json(const MetricsSnapshot& snap);
Result<MetricsSnapshot> snapshot_from_json(const Json& j);

/// One span/EVENT record; emits "op" only when nonzero, so PR 1-era
/// documents and op-less records keep byte-identical output.
Json span_to_json(const SpanRecord& s);
Json spans_to_json(const SpanRecorder& rec);

/// Parses a "spans" array (as produced by spans_to_json) back into
/// records; used by the offline analyzer.  Err::PROTO on malformed
/// entries.
Result<std::vector<SpanRecord>> spans_from_json(const Json& arr);

/// Assembles the full zapc.obs.v1 document (spans section omitted when
/// `spans` is null).  Callers may attach extra sections (e.g. "rows")
/// before dumping.
Json evidence_json(const std::string& name, const MetricsSnapshot& snap,
                   const SpanRecorder* spans = nullptr);

}  // namespace zapc::obs
