// Failure flight recorder: a bounded ring of the most recent telemetry
// (span/EVENT records plus formatted log lines) kept per process, so a
// mid-protocol failure can dump what was happening right before it died.
//
// Every SpanRecorder feeds the global ring automatically; the log sink
// (util/log.h) feeds it every line that passes the stderr threshold.
// When a coordinated operation fails (Manager::ckpt_fail/restart_fail,
// Agent::ckpt_abort, a failed restart), the failing site calls
// dump_postmortem() and a `zapc.obs.postmortem.v1` JSON document is
// written under postmortem/ — machine-readable evidence of the failing
// op, phase, reason, the recent causal records, and a full metrics
// snapshot.  tools/zapc-trace loads these dumps offline.
#pragma once

#include <deque>
#include <string>

#include "obs/span.h"

namespace zapc::obs {

class Json;

/// One entry of the postmortem: a copy of a SpanRecord as last seen
/// (EVENTs once, SPANs on open and updated in place on close).
struct FlightEntry {
  SpanRecord span;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  /// Called by every SpanRecorder on begin/end/event.  A SPAN close
  /// updates the matching open entry in place (matched from the tail by
  /// id+name+who+start, since ids are only unique per recorder);
  /// everything else appends, evicting the oldest entry past capacity.
  void note_span(const SpanRecord& s);

  /// Called by the log sink with the fully formatted line.
  void note_log(const std::string& line);

  /// Builds the `zapc.obs.postmortem.v1` document and writes it to
  /// `<dir>/<kind>_op<op_id>_<seq>.json`.  `kind` names the failing path
  /// ("ckpt_fail", "restart_fail", "ckpt_abort"), `phase` the innermost
  /// phase that was open when the operation died (may be empty).
  /// Returns the path written, or "" if the file could not be created
  /// (the document is still retained for last_json()).
  std::string dump_postmortem(const std::string& kind, OpId op,
                              const std::string& who,
                              const std::string& phase,
                              const std::string& reason, Time t);

  /// Directory postmortems are written to (created on first dump).
  /// Defaults to "postmortem"; tests point it at a temp dir.
  void set_dir(const std::string& dir) { dir_ = dir; }
  const std::string& dir() const { return dir_; }

  /// Most recent dump, for tests and the README walkthrough.
  const std::string& last_path() const { return last_path_; }
  const std::string& last_json() const { return last_json_; }

  std::size_t dumps_written() const { return dumps_; }

  void set_capacity(std::size_t n);
  std::size_t size() const { return ring_.size() + logs_.size(); }

  /// Drops buffered records and log lines (dump bookkeeping survives).
  void clear() {
    ring_.clear();
    logs_.clear();
  }

 private:
  Json build_postmortem(const std::string& kind, OpId op,
                        const std::string& who, const std::string& phase,
                        const std::string& reason, Time t) const;

  std::size_t capacity_ = kDefaultCapacity;
  std::deque<FlightEntry> ring_;
  std::deque<std::string> logs_;
  std::string dir_ = "postmortem";
  std::string last_path_;
  std::string last_json_;
  std::size_t dumps_ = 0;
};

/// The process-global flight recorder (single-threaded simulation, like
/// metrics()).  Installs the util/log sink on first use.
FlightRecorder& flight();

/// Dumps a postmortem for a failed coordinated op.  The failing phase is
/// the innermost span still open for the op in `rec`, so call this
/// *before* the fail path closes its spans.  Also stamps an
/// "op.fail kind=<kind>" EVENT into `rec`, which is how the offline
/// validator (zapc-trace --validate) pairs every aborted op with its
/// postmortem record.  `rec` may be null (tracing off): the dump still
/// happens, with an empty phase and no marker.
void dump_op_failure(SpanRecorder* rec, const std::string& kind, OpId op,
                     const std::string& who, const std::string& reason,
                     Time t);

}  // namespace zapc::obs
