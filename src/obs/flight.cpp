#include "obs/flight.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/json.h"
#include "util/log.h"

namespace zapc::obs {

void FlightRecorder::note_span(const SpanRecord& s) {
  if (capacity_ == 0) return;
  if (s.kind == SpanKind::SPAN && !s.open) {
    // Close of a span we may already hold: update the open copy in
    // place.  Ids are per-recorder, so match on identity fields too,
    // newest first (the open twin is almost always near the tail).
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
      SpanRecord& r = it->span;
      if (r.open && r.id == s.id && r.name == s.name && r.who == s.who &&
          r.start == s.start) {
        r = s;
        return;
      }
    }
  }
  ring_.push_back(FlightEntry{s});
  while (ring_.size() > capacity_) ring_.pop_front();
}

void FlightRecorder::note_log(const std::string& line) {
  if (capacity_ == 0) return;
  logs_.push_back(line);
  while (logs_.size() > capacity_) logs_.pop_front();
}

void FlightRecorder::set_capacity(std::size_t n) {
  capacity_ = n;
  while (ring_.size() > capacity_) ring_.pop_front();
  while (logs_.size() > capacity_) logs_.pop_front();
}

Json FlightRecorder::build_postmortem(const std::string& kind, OpId op,
                                      const std::string& who,
                                      const std::string& phase,
                                      const std::string& reason,
                                      Time t) const {
  Json doc = Json::object();
  doc["schema"] = kPostmortemSchemaVersion;
  doc["kind"] = kind;
  doc["op_id"] = op;
  doc["who"] = who;
  doc["phase"] = phase;
  doc["reason"] = reason;
  doc["time_us"] = t;

  Json spans = Json::array();
  for (const FlightEntry& e : ring_) spans.push(span_to_json(e.span));
  doc["spans"] = std::move(spans);

  Json log = Json::array();
  for (const std::string& line : logs_) log.push(line);
  doc["log"] = std::move(log);

  doc["metrics"] = snapshot_to_json(metrics().snapshot());
  return doc;
}

std::string FlightRecorder::dump_postmortem(const std::string& kind, OpId op,
                                            const std::string& who,
                                            const std::string& phase,
                                            const std::string& reason,
                                            Time t) {
  last_json_ = build_postmortem(kind, op, who, phase, reason, t).dump(2);
  last_json_ += '\n';

  char name[128];
  std::snprintf(name, sizeof(name), "%s_op%llu_%zu.json", kind.c_str(),
                static_cast<unsigned long long>(op), dumps_);
  ++dumps_;
  metrics().counter("obs.postmortems_written").inc();

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  std::string path = dir_ + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    last_path_.clear();
    return "";
  }
  out << last_json_;
  out.close();
  last_path_ = path;
  ZLOG_WARN("postmortem written: " << path << " (op " << op << ", phase '"
                                   << phase << "', " << reason << ")");
  return path;
}

void dump_op_failure(SpanRecorder* rec, const std::string& kind, OpId op,
                     const std::string& who, const std::string& reason,
                     Time t) {
  const SpanRecord* phase = rec != nullptr ? rec->innermost_open(op) : nullptr;
  std::string phase_name = phase != nullptr ? phase->name : "";
  if (rec != nullptr) {
    // The marker lands in the span stream (and this postmortem's ring)
    // before the dump, so the dump itself carries its own evidence.
    rec->event_at(t, who, "op.fail kind=" + kind, 0, op);
  }
  flight().dump_postmortem(kind, op, who, phase_name, reason, t);
}

FlightRecorder& flight() {
  static FlightRecorder* rec = [] {
    auto* r = new FlightRecorder();  // never destroyed, like metrics()
    set_log_sink(r,
                 [](const void* ctx, LogLevel, const std::string& line) {
                   const_cast<FlightRecorder*>(
                       static_cast<const FlightRecorder*>(ctx))
                       ->note_log(line);
                 },
                 r);
    return r;
  }();
  return *rec;
}

}  // namespace zapc::obs
