// Persistent run ledger: one JSONL line per completed or aborted
// coordinated operation (`zapc.obs.ledger.v1`).
//
// The Manager appends a LedgerEntry at every op-terminal path — success,
// terminal abort, AND the abort that precedes a retry (retries mint a
// fresh op id, so every attempt is its own line, flagged will_retry).
// Aborted ops are covered by the same discipline as the atomic image
// commit: the line is written before the op state is torn down, so a
// run's ledger is a complete history even when everything failed.
//
// Each line is self-describing (schema tag on every line) and written
// with a single fwrite + flush, so a crash can tear at most the final
// line; the loader counts and skips a torn tail instead of failing.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/critpath.h"
#include "obs/json.h"
#include "util/status.h"

namespace zapc::obs {

struct LedgerEntry {
  OpId op = 0;
  std::string kind;     // "ckpt" | "restart"
  std::string outcome;  // "ok" | "aborted"
  std::string error;    // abort reason ("" on success)
  bool transient = false;
  bool will_retry = false;  // a follow-up attempt (fresh op id) is queued
  u32 attempt = 1;          // 1-based attempt number within the request
  Time start_us = 0;
  Time end_us = 0;
  Time downtime_us = 0;
  u32 pods = 0;  // agents that reported completion
  // Slowest per-phase duration across pods ("suspend", "netckpt",
  // "standalone", "barrier" / "connectivity", "netstate", "standalone").
  std::map<std::string, Time> phase_us;
  u64 image_bytes = 0;    // largest per-pod committed image
  u64 network_bytes = 0;  // largest per-pod network-state image
  u64 logical_bytes = 0;  // largest per-pod logical (pre-delta) size
  std::string straggler_pod;    // live-health straggler, "" if none
  std::string straggler_phase;  // phase the straggler was lagging in
  Time straggler_lag_us = 0;
  bool has_attrib = false;  // critical-path attribution succeeded
  OpAttribution attrib;     // valid only when has_attrib
};

Json ledger_entry_to_json(const LedgerEntry& e);
Result<LedgerEntry> ledger_entry_from_json(const Json& j);

/// Append-only JSONL ledger.  Default-constructed it records in memory
/// only (tests, benches that dump at the end); with a path it appends
/// each entry to the file as it arrives.
class Ledger {
 public:
  Ledger() = default;
  explicit Ledger(const std::string& path);
  ~Ledger();

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// True when a path was given and the file opened.
  bool persistent() const { return file_ != nullptr; }

  /// Records the entry (and appends its line to the file when
  /// persistent).  The line is one fwrite + fflush: all or nothing up to
  /// an OS crash tearing the final line.
  Status append(const LedgerEntry& e);

  const std::vector<LedgerEntry>& entries() const { return entries_; }

  /// Dumps all in-memory entries to `path` (overwrite), one line each —
  /// how benches persist a Testbed's in-memory ledger next to their
  /// evidence JSON.
  Status write_file(const std::string& path) const;

  struct LoadResult {
    std::vector<LedgerEntry> entries;
    int skipped_torn = 0;  // unparsable trailing line(s) skipped
  };
  /// Loads a ledger file.  A torn final line (crash mid-append) is
  /// skipped and counted; malformed lines elsewhere are Err::PROTO.
  static Result<LoadResult> load(const std::string& path);

 private:
  std::vector<LedgerEntry> entries_;
  std::FILE* file_ = nullptr;
};

}  // namespace zapc::obs
