#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace zapc::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  // Integral values within the double-exact range print as integers, so
  // virtual times and byte counts round-trip byte-identically.
  if (std::nearbyint(d) == d && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::NUL: out += "null"; return;
    case Type::BOOL: out += bool_ ? "true" : "false"; return;
    case Type::NUM: append_number(out, num_); return;
    case Type::STR: append_escaped(out, str_); return;
    case Type::ARR: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::OBJ: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- Parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Json> parse() {
    auto v = value();
    if (!v) return v;
    skip_ws();
    if (pos_ != s_.size()) {
      return Status(Err::PROTO, "trailing characters in JSON");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<Json> value() {
    skip_ws();
    if (pos_ >= s_.size()) return Status(Err::PROTO, "unexpected end");
    char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto str = string();
      if (!str) return str.status();
      return Json(std::move(str).value());
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json();
    return number();
  }

  Result<Json> number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Status(Err::PROTO, "bad JSON value");
    try {
      return Json(std::stod(s_.substr(start, pos_ - start)));
    } catch (...) {
      return Status(Err::PROTO, "bad JSON number");
    }
  }

  Result<std::string> string() {
    if (!consume('"')) return Status(Err::PROTO, "expected string");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              return Status(Err::PROTO, "short \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Status(Err::PROTO, "bad \\u escape");
              }
            }
            // Exporter only emits \u00xx for control bytes; decode the
            // low byte and accept anything else as-is (best effort).
            out += static_cast<char>(code & 0xff);
            break;
          }
          default:
            return Status(Err::PROTO, "bad escape");
        }
      } else {
        out += c;
      }
    }
    return Status(Err::PROTO, "unterminated string");
  }

  Result<Json> array() {
    if (!consume('[')) return Status(Err::PROTO, "expected [");
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      auto v = value();
      if (!v) return v;
      arr.push(std::move(v).value());
      if (consume(']')) return arr;
      if (!consume(',')) return Status(Err::PROTO, "expected , or ]");
    }
  }

  Result<Json> object() {
    if (!consume('{')) return Status(Err::PROTO, "expected {");
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return key.status();
      if (!consume(':')) return Status(Err::PROTO, "expected :");
      auto v = value();
      if (!v) return v;
      obj[key.value()] = std::move(v).value();
      if (consume('}')) return obj;
      if (!consume(',')) return Status(Err::PROTO, "expected , or }");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Json u64_array(const std::vector<u64>& v) {
  Json arr = Json::array();
  for (u64 x : v) arr.push(x);
  return arr;
}

std::vector<u64> u64_vector(const Json& arr) {
  std::vector<u64> out;
  for (const Json& v : arr.items()) out.push_back(v.num_u64());
  return out;
}

}  // namespace

Result<Json> json_parse(const std::string& text) {
  return Parser(text).parse();
}

// ---- Evidence export -------------------------------------------------------

Json snapshot_to_json(const MetricsSnapshot& snap) {
  Json m = Json::object();
  Json counters = Json::object();
  for (const auto& [name, v] : snap.counters) counters[name] = v;
  m["counters"] = std::move(counters);

  Json gauges = Json::object();
  for (const auto& [name, g] : snap.gauges) {
    Json jg = Json::object();
    jg["value"] = g.value;
    jg["max"] = g.max_seen;
    gauges[name] = std::move(jg);
  }
  m["gauges"] = std::move(gauges);

  Json hists = Json::object();
  for (const auto& [name, h] : snap.histograms) {
    Json jh = Json::object();
    jh["bounds"] = u64_array(h.bounds);
    jh["counts"] = u64_array(h.counts);
    jh["count"] = h.count;
    jh["sum"] = h.sum;
    jh["min"] = h.min;
    jh["max"] = h.max;
    hists[name] = std::move(jh);
  }
  m["histograms"] = std::move(hists);
  return m;
}

Result<MetricsSnapshot> snapshot_from_json(const Json& j) {
  if (!j.is_obj()) return Status(Err::PROTO, "metrics: not an object");
  MetricsSnapshot out;
  if (const Json* counters = j.find("counters")) {
    for (const auto& [name, v] : counters->fields()) {
      out.counters[name] = v.num_u64();
    }
  }
  if (const Json* gauges = j.find("gauges")) {
    for (const auto& [name, g] : gauges->fields()) {
      GaugeValue gv;
      if (const Json* v = g.find("value")) gv.value = v->num_i64();
      if (const Json* v = g.find("max")) gv.max_seen = v->num_i64();
      out.gauges[name] = gv;
    }
  }
  if (const Json* hists = j.find("histograms")) {
    for (const auto& [name, h] : hists->fields()) {
      HistogramValue hv;
      if (const Json* v = h.find("bounds")) hv.bounds = u64_vector(*v);
      if (const Json* v = h.find("counts")) hv.counts = u64_vector(*v);
      if (const Json* v = h.find("count")) hv.count = v->num_u64();
      if (const Json* v = h.find("sum")) hv.sum = v->num_u64();
      if (const Json* v = h.find("min")) hv.min = v->num_u64();
      if (const Json* v = h.find("max")) hv.max = v->num_u64();
      if (hv.counts.size() != hv.bounds.size() + 1) {
        return Status(Err::PROTO, "histogram " + name + ": bad bucket count");
      }
      out.histograms[name] = std::move(hv);
    }
  }
  return out;
}

Json span_to_json(const SpanRecord& s) {
  Json js = Json::object();
  js["id"] = static_cast<u64>(s.id);
  js["parent"] = static_cast<u64>(s.parent);
  js["kind"] = s.kind == SpanKind::EVENT ? "event" : "span";
  if (s.op != 0) js["op"] = s.op;
  js["name"] = s.name;
  js["who"] = s.who;
  js["start_us"] = s.start;
  js["end_us"] = s.end;
  if (s.open) js["open"] = true;
  return js;
}

Json spans_to_json(const SpanRecorder& rec) {
  Json arr = Json::array();
  for (const SpanRecord& s : rec.spans()) arr.push(span_to_json(s));
  return arr;
}

Result<std::vector<SpanRecord>> spans_from_json(const Json& arr) {
  if (!arr.is_arr()) return Status(Err::PROTO, "spans: not an array");
  std::vector<SpanRecord> out;
  for (const Json& js : arr.items()) {
    if (!js.is_obj()) return Status(Err::PROTO, "span: not an object");
    SpanRecord s;
    if (const Json* v = js.find("id")) s.id = static_cast<SpanId>(v->num_u64());
    if (const Json* v = js.find("parent")) {
      s.parent = static_cast<SpanId>(v->num_u64());
    }
    if (const Json* v = js.find("kind")) {
      if (v->str() == "event") {
        s.kind = SpanKind::EVENT;
      } else if (v->str() == "span") {
        s.kind = SpanKind::SPAN;
      } else {
        return Status(Err::PROTO, "span: bad kind '" + v->str() + "'");
      }
    }
    if (const Json* v = js.find("op")) s.op = v->num_u64();
    if (const Json* v = js.find("name")) s.name = v->str();
    if (const Json* v = js.find("who")) s.who = v->str();
    if (const Json* v = js.find("start_us")) s.start = v->num_u64();
    if (const Json* v = js.find("end_us")) s.end = v->num_u64();
    if (const Json* v = js.find("open")) s.open = v->boolean();
    if (s.id == 0) return Status(Err::PROTO, "span: missing id");
    out.push_back(std::move(s));
  }
  return out;
}

Json evidence_json(const std::string& name, const MetricsSnapshot& snap,
                   const SpanRecorder* spans) {
  Json doc = Json::object();
  doc["schema"] = kSchemaVersion;
  doc["name"] = name;
  doc["metrics"] = snapshot_to_json(snap);
  if (spans != nullptr) doc["spans"] = spans_to_json(*spans);
  return doc;
}

}  // namespace zapc::obs
