#include "sim/engine.h"

#include "obs/stats.h"

namespace zapc::sim {

EventId Engine::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  EventId id = next_id_++;
  queue_.push(Item{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  obs::stats::sim_queue_depth().set(static_cast<i64>(queue_.size()));
  return id;
}

bool Engine::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  obs::stats::sim_events_cancelled().inc();
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    auto cit = cancelled_.find(item.id);
    if (cit != cancelled_.end()) {
      cancelled_.erase(cit);
      continue;
    }
    auto hit = handlers_.find(item.id);
    if (hit == handlers_.end()) continue;  // defensive; shouldn't happen
    std::function<void()> fn = std::move(hit->second);
    handlers_.erase(hit);
    now_ = item.time;
    obs::stats::sim_events_dispatched().inc();
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(Time t) {
  while (!queue_.empty()) {
    // Peek past cancelled entries.
    Item item = queue_.top();
    if (cancelled_.count(item.id)) {
      queue_.pop();
      cancelled_.erase(item.id);
      continue;
    }
    if (item.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

u64 Engine::run(u64 max_events) {
  u64 n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace zapc::sim
