// Discrete-event simulation engine.
//
// Everything in the reproduction — node schedulers, packet delivery,
// TCP retransmission timers, the Manager/Agent protocol — runs as events
// on a single virtual clock, making the whole cluster deterministic.
#pragma once

#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/types.h"

namespace zapc::sim {

/// Virtual time in microseconds since simulation start.
using Time = u64;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

/// Handle for cancelling a scheduled event.
using EventId = u64;

/// A single-clock event queue.  Events scheduled for the same time run in
/// FIFO order of scheduling, which keeps runs reproducible.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time (clamped to now).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled.
  bool cancel(EventId id);

  /// Runs the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs all events with time <= t, then advances the clock to t.
  void run_until(Time t);

  /// Runs until no events remain or `max_events` have executed.
  /// Returns the number of events executed.
  u64 run(u64 max_events = ~0ull);

  /// Number of pending (uncancelled) events.
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  bool idle() const { return pending() == 0; }

 private:
  struct Item {
    Time time;
    u64 seq;
    EventId id;
    // Ordered for a min-heap (std::priority_queue is a max-heap).
    bool operator<(const Item& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  Time now_ = 0;
  u64 next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Item> queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace zapc::sim
