#include "core/channel.h"

#include "fault/fault.h"
#include "net/tcp.h"
#include "util/log.h"
#include "util/serialize.h"

namespace zapc::core {

MsgChannel::MsgChannel(net::Stack& stack, net::SockId sock)
    : stack_(stack), sock_(sock) {
  net::Socket* s = stack_.find(sock_);
  if (s == nullptr) {
    closed_ = true;
    return;
  }
  s->set_event_hook([this] { on_event(); });
  arm();  // drain anything already queued
}

MsgChannel::~MsgChannel() {
  *alive_ = false;
  close();
}

void MsgChannel::close() {
  if (closed_) return;
  flush();  // push any queued messages into the socket before the FIN
  closed_ = true;
  net::Socket* s = stack_.find(sock_);
  if (s != nullptr) {
    s->set_event_hook(nullptr);
    (void)stack_.sys_close(sock_);
  }
}

void MsgChannel::arm() {
  if (event_scheduled_ || closed_) return;
  event_scheduled_ = true;
  stack_.engine().schedule(0, [alive = std::weak_ptr<bool>(alive_), this] {
    if (auto a = alive.lock(); !a || !*a) return;
    event_scheduled_ = false;
    flush();
    // flush() may fail, invoking on_closed_ — whose owner may destroy
    // this channel.  Re-check liveness before touching it again.
    if (auto a = alive.lock(); !a || !*a) return;
    pump();
  });
}

void MsgChannel::on_event() { arm(); }

Status MsgChannel::send(const Bytes& payload) {
  if (closed_) return Status(Err::PIPE, "channel closed");
  Encoder e;
  e.put_u32(static_cast<u32>(payload.size()));
  tx_.insert(tx_.end(), e.bytes().begin(), e.bytes().end());
  tx_.insert(tx_.end(), payload.begin(), payload.end());
  bytes_sent_ += payload.size();
  arm();
  return Status::ok();
}

void MsgChannel::flush() {
  if (closed_) return;
  while (!tx_.empty()) {
    // Move a bounded chunk into a contiguous buffer for the send call.
    std::size_t n = std::min<std::size_t>(tx_.size(), 64 * 1024);
    Bytes chunk(tx_.begin(), tx_.begin() + static_cast<long>(n));
    auto w = stack_.sys_send(sock_, chunk, 0);
    if (!w.is_ok()) {
      if (w.err() == Err::WOULD_BLOCK) return;  // retry on next event
      mark_closed();
      return;
    }
    tx_.erase(tx_.begin(), tx_.begin() + static_cast<long>(w.value()));
    if (w.value() < n) return;  // buffer full
  }
}

void MsgChannel::pump() {
  if (closed_) return;
  while (true) {
    auto r = stack_.sys_recv(sock_, 64 * 1024, 0);
    if (!r.is_ok()) {
      if (r.err() == Err::WOULD_BLOCK) break;
      eof_pending_ = true;  // deliver buffered frames, then close
      break;
    }
    if (r.value().eof) {
      // A peer may send a final message (e.g. ABORT) and close in the
      // same instant; the data segment and the FIN then become readable
      // together.  Parse and deliver what arrived before honouring the
      // close, or the last message would be silently dropped.
      eof_pending_ = true;
      break;
    }
    append_bytes(rx_, r.value().data);
  }

  // Extract complete frames into the delivery queue.  Each frame is
  // judged by the fault injector exactly once, here: a dropped frame is
  // never queued, a duplicated one is queued twice, and a stall holds
  // the whole channel's delivery (a hung peer) without blocking receipt.
  std::size_t off = 0;
  while (rx_.size() - off >= 4) {
    Decoder d(rx_.data() + off, rx_.size() - off);
    u32 len = d.u32_().value_or(0);
    if (rx_.size() - off - 4 < len) break;
    Bytes payload(rx_.begin() + static_cast<long>(off + 4),
                  rx_.begin() + static_cast<long>(off + 4 + len));
    off += 4 + len;
    if (fault::injector().enabled() && !payload.empty()) {
      auto v = fault::injector().on_channel_msg(payload[0]);
      if (v.stall_us > 0) {
        stall_until_ = stack_.engine().now() + v.stall_us;
      }
      if (v.drop) continue;
      if (v.duplicate) rx_frames_.push_back(payload);
    }
    rx_frames_.push_back(std::move(payload));
  }
  if (off > 0) rx_.erase(rx_.begin(), rx_.begin() + static_cast<long>(off));
  deliver();  // closes the channel itself once eof_pending_ drains
}

void MsgChannel::deliver() {
  // A handler may close — or even destroy — this channel; the liveness
  // token detects that.
  std::weak_ptr<bool> alive(alive_);
  while (!rx_frames_.empty()) {
    if (closed_) return;
    u64 now = stack_.engine().now();
    if (now < stall_until_) {
      stack_.engine().schedule(stall_until_ - now, [alive, this] {
        if (auto a = alive.lock(); a && *a) deliver();
      });
      return;
    }
    Bytes payload = std::move(rx_frames_.front());
    rx_frames_.pop_front();
    if (on_msg_) on_msg_(std::move(payload));
    if (auto a = alive.lock(); !a || !*a) return;  // destroyed by handler
  }
  if (eof_pending_ && !closed_) mark_closed();
}

bool MsgChannel::established() {
  if (closed_) return false;
  net::TcpSocket* t = stack_.find_tcp(sock_);
  return t != nullptr && t->state() == net::TcpState::ESTABLISHED;
}

void MsgChannel::mark_closed() {
  if (closed_) return;
  closed_ = true;
  net::Socket* s = stack_.find(sock_);
  if (s != nullptr) {
    s->set_event_hook(nullptr);
    (void)stack_.sys_close(sock_);
  }
  if (on_closed_) on_closed_();
}

MsgServer::MsgServer(net::Stack& stack, u16 port, AcceptFn on_accept)
    : stack_(stack), port_(port), on_accept_(std::move(on_accept)) {
  auto sid = stack_.sys_socket(net::Proto::TCP);
  if (!sid) {
    status_ = sid.status();
    return;
  }
  listener_ = sid.value();
  (void)stack_.sys_setsockopt(listener_, net::SockOpt::SO_REUSEADDR, 1);
  status_ = stack_.sys_bind(listener_, net::SockAddr{net::kAnyAddr, port});
  if (!status_) return;
  status_ = stack_.sys_listen(listener_, 64);
  if (!status_) return;
  net::Socket* s = stack_.find(listener_);
  s->set_event_hook([this] {
    stack_.engine().schedule(0, [alive = std::weak_ptr<bool>(alive_), this] {
      if (auto a = alive.lock(); a && *a) on_event();
    });
  });
}

MsgServer::~MsgServer() {
  *alive_ = false;
  if (listener_ != net::kInvalidSock && stack_.find(listener_) != nullptr) {
    stack_.find(listener_)->set_event_hook(nullptr);
    (void)stack_.sys_close(listener_);
  }
}

void MsgServer::on_event() {
  while (true) {
    auto child = stack_.sys_accept(listener_, nullptr);
    if (!child.is_ok()) return;
    on_accept_(std::make_unique<MsgChannel>(stack_, child.value()));
  }
}

std::unique_ptr<MsgChannel> connect_channel(net::Stack& stack,
                                            net::SockAddr peer) {
  auto sid = stack.sys_socket(net::Proto::TCP);
  if (!sid) return nullptr;
  Status st = stack.sys_connect(sid.value(), peer);
  if (!st.is_ok() && st.err() != Err::IN_PROGRESS) {
    (void)stack.sys_close(sid.value());
    return nullptr;
  }
  return std::make_unique<MsgChannel>(stack, sid.value());
}

}  // namespace zapc::core
