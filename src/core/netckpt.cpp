#include "core/netckpt.h"

#include <deque>

#include "net/raw.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "util/log.h"

namespace zapc::core {
namespace {

/// Reads all socket parameters through the standard getsockopt interface
/// (paper §5: "we build on this interface to save the socket parameters
/// during checkpoint and restore it during restart").
void save_params(net::Stack& stack, net::SockId sid,
                 std::array<i64, net::kNumSockOpts>& out) {
  for (std::size_t i = 0; i < net::kNumSockOpts; ++i) {
    auto v = stack.sys_getsockopt(sid, static_cast<net::SockOpt>(i));
    out[i] = v.value_or(0);
  }
}

/// Drains the receive queue through the standard recvmsg interface and
/// immediately re-injects it via the alternate receive queue, leaving the
/// application's view unchanged.  Returns the drained items.
std::vector<ckpt::SavedRecvItem> drain_and_reinject(net::Stack& stack,
                                                    net::SockId sid) {
  std::vector<ckpt::SavedRecvItem> saved;
  std::deque<net::RecvItem> reinject;
  const bool stream = stack.find(sid)->proto() == net::Proto::TCP;

  while (true) {
    auto r = stack.sys_recv(sid, 256 * 1024, 0);
    if (!r.is_ok() || r.value().eof || r.value().data.empty()) break;
    ckpt::SavedRecvItem item;
    item.data = r.value().data;
    item.from = r.value().from;
    item.oob = false;
    saved.push_back(item);
    reinject.push_back(net::RecvItem{item.data, item.from, false});
    if (stream && reinject.size() > 100000) break;  // defensive bound
  }

  // Urgent (out-of-band) data — exactly what a naive peek-based approach
  // misses (paper §2 on Cruz).  Captured destructively and re-injected
  // into the PCB side-channel.
  if (stream) {
    net::TcpSocket* t = stack.find_tcp(sid);
    if (t != nullptr && t->has_urgent()) {
      auto oob = stack.sys_recv(sid, 1, net::MSG_OOB);
      if (oob.is_ok() && !oob.value().data.empty()) {
        ckpt::SavedRecvItem item;
        item.data = oob.value().data;
        item.from = oob.value().from;
        item.oob = true;
        saved.push_back(item);
        t->set_urgent_data(item.data[0]);  // re-inject
      }
    }
  }

  if (!reinject.empty()) {
    stack.find(sid)->install_alt_queue(std::move(reinject));
  }
  return saved;
}

}  // namespace

ckpt::ConnState NetCheckpoint::classify(const net::Socket& sock) {
  if (sock.proto() != net::Proto::TCP) return ckpt::ConnState::FULL_DUPLEX;
  const auto& t = static_cast<const net::TcpSocket&>(sock);
  switch (t.state()) {
    case net::TcpState::LISTEN:
      return ckpt::ConnState::LISTENER;
    case net::TcpState::SYN_SENT:
    case net::TcpState::SYN_RCVD:
      return ckpt::ConnState::CONNECTING;
    default:
      break;
  }
  bool local_closed = t.fin_queued();
  bool remote_closed = t.peer_fin();
  if (local_closed && remote_closed) return ckpt::ConnState::CLOSED;
  if (local_closed || remote_closed) return ckpt::ConnState::HALF_DUPLEX;
  return ckpt::ConnState::FULL_DUPLEX;
}

Status NetCheckpoint::save(pod::Pod& pod, ckpt::NetMeta& meta_out,
                           std::vector<ckpt::SocketImage>& sockets_out,
                           const obs::ObsTag& tag) {
  net::Stack& stack = pod.stack();
  meta_out.pod_vip = pod.vip();

  for (net::SockId sid : stack.all_socket_ids()) {
    net::Socket* sock = stack.find(sid);
    if (sock == nullptr) continue;

    ckpt::SocketImage img;
    img.old_id = sid;
    img.proto = sock->proto();
    save_params(stack, sid, img.params);
    img.local = sock->local();
    img.remote = sock->remote();
    img.bound = sock->bound();
    img.owns_port = sock->owns_port();
    img.shut_rd = sock->shut_rd();

    switch (sock->proto()) {
      case net::Proto::TCP: {
        net::TcpSocket& t = *stack.find_tcp(sid);
        if (t.state() == net::TcpState::SYN_RCVD) {
          // Embryonic child of a listener: not visible to the application
          // yet; the peer's re-initiated connect recreates it at restart.
          continue;
        }
        ckpt::ConnState cs = classify(t);
        img.listener = t.is_listener();
        img.backlog = t.backlog();
        img.connecting = cs == ckpt::ConnState::CONNECTING;
        img.connected = !img.listener && !img.connecting &&
                        cs != ckpt::ConnState::CLOSED &&
                        t.state() != net::TcpState::CLOSED;
        img.shut_wr = t.fin_queued();
        img.peer_closed = t.peer_fin();
        img.pcb_sent = t.pcb_sent();
        img.pcb_acked = t.pcb_acked();
        img.pcb_recv = t.pcb_recv();
        img.send_queue = t.send_queue_contents();  // in-kernel interface
        img.recv_queue = drain_and_reinject(stack, sid);

        // Only endpoints that need cross-node coordination enter the
        // meta-data table (plain unconnected sockets restore locally).
        if (img.listener || img.connecting || img.connected) {
          ckpt::NetMetaEntry entry;
          entry.sock = sid;
          entry.proto = net::Proto::TCP;
          entry.source = img.local;
          entry.target = img.remote;
          entry.state = cs;
          entry.pcb_sent = img.pcb_sent;
          entry.pcb_acked = img.pcb_acked;
          entry.pcb_recv = img.pcb_recv;
          meta_out.entries.push_back(entry);
          if (img.connected) {
            tag.event("net.sock.saved local=" + img.local.to_string() +
                      " remote=" + img.remote.to_string() +
                      " sent=" + std::to_string(img.pcb_sent) +
                      " acked=" + std::to_string(img.pcb_acked) +
                      " recv=" + std::to_string(img.pcb_recv));
          }
        }
        break;
      }
      case net::Proto::UDP: {
        net::UdpSocket& u = *stack.find_udp(sid);
        img.connected = u.connected();
        // Always save the queues, even for unreliable protocols
        // (paper §5: avoids artificial loss and preserves peeked data).
        img.recv_queue = drain_and_reinject(stack, sid);
        break;
      }
      case net::Proto::RAW: {
        net::RawSocket& r = *stack.find_raw(sid);
        img.raw_proto = r.raw_proto();
        img.recv_queue = drain_and_reinject(stack, sid);
        break;
      }
    }
    sockets_out.push_back(std::move(img));
  }
  return Status::ok();
}

Status NetCheckpoint::restore_socket(pod::Pod& pod, net::SockId sock,
                                     const ckpt::SocketImage& image,
                                     u32 discard_send,
                                     const Bytes& extra_recv,
                                     const obs::ObsTag& tag) {
  net::Stack& stack = pod.stack();
  if (stack.find(sock) == nullptr) return Status(Err::BAD_FD);

  if (image.proto == net::Proto::TCP && image.connected) {
    tag.event("net.sock.restored local=" + image.local.to_string() +
              " remote=" + image.remote.to_string() +
              " recv=" + std::to_string(image.pcb_recv) +
              " acked=" + std::to_string(image.pcb_acked) +
              " discard=" + std::to_string(discard_send));
    // The recovered send queue is resent through the ordinary data path;
    // tag the first retransmission so the causal tree reaches the wire.
    if (net::TcpSocket* t = stack.find_tcp(sock)) {
      t->tag_next_retransmit(tag);
    }
  }

  // Socket parameters through the standard setsockopt interface.
  for (std::size_t i = 0; i < net::kNumSockOpts; ++i) {
    Status st = stack.sys_setsockopt(sock, static_cast<net::SockOpt>(i),
                                     image.params[i]);
    if (!st) return st;
  }

  // Receive queue via the alternate queue; redirected peer data follows
  // the socket's own restored data (paper §5: "concatenated to the
  // alternate receive queue ... only after the latter has been restored").
  std::deque<net::RecvItem> items;
  std::optional<u8> urgent;
  for (const auto& si : image.recv_queue) {
    if (si.oob) {
      if (!si.data.empty()) urgent = si.data[0];
    } else {
      items.push_back(net::RecvItem{si.data, si.from, false});
    }
  }
  if (!extra_recv.empty()) {
    items.push_back(net::RecvItem{extra_recv, image.remote, false});
  }
  if (!items.empty()) stack.find(sock)->install_alt_queue(std::move(items));
  if (urgent && image.proto == net::Proto::TCP) {
    stack.find_tcp(sock)->set_urgent_data(*urgent);
  }

  // Send queue: discard the overlap, then plain write — "the underlying
  // network layer will take care of delivering the data safely".
  if (image.proto == net::Proto::TCP && image.connected &&
      !image.send_queue.empty() && !image.send_queue_redirected) {
    std::size_t skip =
        std::min<std::size_t>(discard_send, image.send_queue.size());
    if (skip < image.send_queue.size()) {
      Bytes rest(image.send_queue.begin() + static_cast<long>(skip),
                 image.send_queue.end());
      auto w = stack.sys_send(sock, rest, 0);
      if (!w.is_ok()) {
        return Status(w.err(), "send-queue restore failed");
      }
      if (w.value() != rest.size()) {
        return Status(Err::NO_BUFS, "send-queue restore truncated");
      }
    }
  }

  // Half-duplex / closed connections: re-impose shutdown state last
  // (paper §4: "a closed connection would have the shutdown system call
  // executed after the rest of its state has been recovered").
  if (image.proto == net::Proto::TCP && image.connected) {
    if (image.shut_wr) {
      Status st = stack.sys_shutdown(sock, net::ShutdownHow::WR);
      if (!st) return st;
    }
  }
  if (image.shut_rd) {
    (void)stack.sys_shutdown(sock, net::ShutdownHow::RD);
  }
  // Fully closed connections are restored without a live peer: mark the
  // stream ended so reads return EOF once the restored data drains.
  if (image.proto == net::Proto::TCP && !image.connected &&
      !image.listener && !image.connecting &&
      (image.peer_closed || image.shut_wr)) {
    stack.find(sock)->force_shutdown(image.peer_closed, image.shut_wr);
  }
  return Status::ok();
}

}  // namespace zapc::core
