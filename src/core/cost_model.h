// Cost model for checkpoint-restart operations.
//
// The simulation executes checkpoint logic instantaneously, so the time a
// real kernel would spend copying state is modeled explicitly and charged
// as virtual time between protocol phases.  Defaults are calibrated to
// the paper's testbed (dual-Xeon blades, §6): sub-second checkpoints
// whose duration is dominated by writing the image to memory, a
// network-state phase of a few hundred microseconds to single-digit
// milliseconds, and restarts noticeably slower than checkpoints.
#pragma once

#include "sim/engine.h"
#include "util/types.h"

namespace zapc::core {

struct CostModel {
  // Fixed per-operation control overhead (signal delivery, namespace
  // walks, filter programming).  Calibrated so small pods checkpoint in
  // ~100 ms and restart in ~200 ms like the paper's floor.
  sim::Time suspend_fixed = 50 * sim::kMillisecond;
  sim::Time per_process = 15 * sim::kMillisecond;
  sim::Time restart_fixed = 150 * sim::kMillisecond;

  // Network-state checkpoint: per socket plus per queued byte.
  sim::Time net_per_socket = 40 * sim::kMicrosecond;
  u64 net_bytes_per_sec = 2ull << 30;  // queue copy bandwidth

  // Standalone checkpoint: write image to memory.
  u64 ckpt_bytes_per_sec = 1200ull << 20;  // ~1.2 GB/s

  // Standalone restart: rebuild address spaces, fault pages back in —
  // slower than the checkpoint copy (paper §6: restarts 2-3x slower).
  u64 restart_bytes_per_sec = 500ull << 20;  // ~0.5 GB/s

  // Network-state restore: per socket plus per restored byte.
  sim::Time net_restore_per_socket = 60 * sim::kMicrosecond;

  sim::Time suspend_cost(std::size_t nprocs) const {
    return suspend_fixed + per_process * nprocs;
  }
  sim::Time net_ckpt_cost(std::size_t nsockets, u64 queued_bytes) const {
    return net_per_socket * nsockets +
           bytes_cost(queued_bytes, net_bytes_per_sec);
  }
  sim::Time standalone_ckpt_cost(u64 image_bytes,
                                 std::size_t nprocs) const {
    return per_process * nprocs + bytes_cost(image_bytes, ckpt_bytes_per_sec);
  }
  sim::Time standalone_restart_cost(u64 image_bytes,
                                    std::size_t nprocs) const {
    return restart_fixed + per_process * nprocs +
           bytes_cost(image_bytes, restart_bytes_per_sec);
  }
  sim::Time net_restore_cost(std::size_t nsockets, u64 queued_bytes) const {
    return net_restore_per_socket * nsockets +
           bytes_cost(queued_bytes, net_bytes_per_sec);
  }

  /// Serialization time of one streamed chunk; the per-chunk slice of
  /// standalone_ckpt_cost's byte term (the per-process term is charged
  /// once, up front, by the caller).
  sim::Time stream_chunk_cost(u64 chunk_bytes) const {
    return bytes_cost(chunk_bytes, ckpt_bytes_per_sec);
  }

  /// Modeled elapsed time of a pipelined image transfer: serialization
  /// overlaps the wire, so the pipeline drains in
  /// max(serialize, transfer) plus one chunk's fill latency on the slower
  /// leg, instead of serialize + transfer.  `wire_bytes_per_sec` is the
  /// fabric bandwidth available to the stream.
  sim::Time pipelined_stream_cost(u64 image_bytes, u64 wire_bytes_per_sec,
                                  u64 chunk_bytes) const {
    sim::Time serialize = bytes_cost(image_bytes, ckpt_bytes_per_sec);
    sim::Time transfer = bytes_cost(image_bytes, wire_bytes_per_sec);
    u64 first = image_bytes < chunk_bytes ? image_bytes : chunk_bytes;
    sim::Time fill = serialize >= transfer
                         ? bytes_cost(first, wire_bytes_per_sec)
                         : bytes_cost(first, ckpt_bytes_per_sec);
    return (serialize >= transfer ? serialize : transfer) + fill;
  }

  static sim::Time bytes_cost(u64 bytes, u64 per_sec) {
    return per_sec == 0 ? 0 : bytes * sim::kSecond / per_sec;
  }
};

}  // namespace zapc::core
