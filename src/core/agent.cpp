#include "core/agent.h"

#include <algorithm>

#include "core/netckpt.h"
#include "fault/fault.h"
#include "net/tcp.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/vtime.h"
#include "util/log.h"

namespace zapc::core {
namespace {

/// Parses "san://<path>", "agent://<ip>:<port>/<tag>", "stream://<tag>".
struct Uri {
  std::string scheme;
  std::string path;        // san path or stream tag
  net::SockAddr endpoint;  // agent scheme only
};

Result<Uri> parse_uri(const std::string& s) {
  auto sep = s.find("://");
  if (sep == std::string::npos) return Status(Err::INVALID, "bad uri " + s);
  Uri u;
  u.scheme = s.substr(0, sep);
  std::string rest = s.substr(sep + 3);
  if (u.scheme == "san" || u.scheme == "stream") {
    u.path = rest;
    return u;
  }
  if (u.scheme == "agent") {
    auto slash = rest.find('/');
    if (slash == std::string::npos) {
      return Status(Err::INVALID, "agent uri missing tag: " + s);
    }
    u.path = rest.substr(slash + 1);
    std::string hostport = rest.substr(0, slash);
    auto colon = hostport.find(':');
    if (colon == std::string::npos) {
      return Status(Err::INVALID, "agent uri missing port: " + s);
    }
    auto ip = net::IpAddr::parse(hostport.substr(0, colon));
    if (!ip) return ip.status();
    u.endpoint.ip = ip.value();
    u.endpoint.port = static_cast<u16>(
        std::stoul(hostport.substr(colon + 1)));
    return u;
  }
  return Status(Err::INVALID, "unknown uri scheme: " + s);
}

constexpr std::size_t kStreamChunk = 256 * 1024;

}  // namespace

Agent::Agent(os::Node& node, u16 port, CostModel costs, Trace* trace)
    : node_(node), port_(port), costs_(costs), trace_(trace) {
  server_ = std::make_unique<MsgServer>(
      node_.host_stack(), port_,
      [this](std::unique_ptr<MsgChannel> ch) { on_accept(std::move(ch)); });
}

Agent::~Agent() { *alive_ = false; }

net::SockAddr Agent::addr() const {
  return net::SockAddr{node_.addr(), port_};
}

sim::Time Agent::slowdown(sim::Time delay) const {
  if (fault::injector().enabled()) {
    double m = fault::injector().local_cost_multiplier(node_.name());
    if (m != 1.0) {
      delay = static_cast<sim::Time>(static_cast<double>(delay) * m);
    }
  }
  return delay;
}

template <typename Fn>
void Agent::after(sim::Time delay, Fn&& fn) {
  node_.engine().schedule(
      slowdown(delay),
      [this, alive = std::weak_ptr<bool>(alive_),
       f = std::forward<Fn>(fn)]() mutable {
        if (auto a = alive.lock(); !a || !*a) return;
        if (crashed_) return;  // a crashed agent runs nothing further
        f();
      });
}

bool Agent::fault_crashed(const char* phase) {
  if (crashed_ || !fault::injector().enabled()) return false;
  if (!fault::injector().crash_at_phase(node_.name(), phase)) return false;
  crashed_ = true;
  ZLOG_WARN("agent@" << node_.name() << ": injected crash at " << phase);
  node_.fail();
  return true;
}

void Agent::trace(const std::string& what) {
  if (trace_ != nullptr) {
    trace_->add(node_.now(), "agent@" + node_.name(), what);
  }
}

void Agent::trace_op(const std::string& what, obs::OpId op,
                     obs::SpanId parent) {
  if (trace_ != nullptr) {
    trace_->add(node_.now(), "agent@" + node_.name(), what, parent, op);
  }
}

obs::ObsTag Agent::tag(obs::OpId op, obs::SpanId parent) {
  return obs::ObsTag{rec(), who(), op, parent,
                     [this] { return node_.now(); }};
}

// ---- Introspection plane (DESIGN.md §9) --------------------------------------

void Agent::publish_beacon(MsgChannel* mgr, obs::OpId op_id,
                           const std::string& pod, u32 seq,
                           const Watermark& wm, obs::SpanId parent) {
  const sim::Time now = node_.now();
  HeartbeatMsg hb;
  hb.op_id = op_id;
  hb.pod_name = pod;
  hb.phase = wm.phase;
  hb.t_us = now;
  hb.seq = seq;
  if (mgr != nullptr && mgr->open()) (void)mgr->send(encode_heartbeat(hb));
  obs::metrics().counter("agent.hb.sent").inc();

  // Watermarks accompany the beacon only while a byte-moving phase is
  // in flight; control phases (suspend, barrier) have nothing to meter.
  if (wm.bytes == 0 || wm.end <= wm.start) {
    trace_op("hb seq=" + std::to_string(seq) + " phase=" + wm.phase, op_id,
             parent);
    return;
  }
  const sim::Time extent = wm.end - wm.start;
  const sim::Time elapsed = now >= wm.end ? extent : now - wm.start;
  ProgressMsg pm;
  pm.op_id = op_id;
  pm.pod_name = pod;
  pm.phase = wm.phase;
  pm.t_us = now;
  pm.bytes_expected = wm.bytes;
  pm.bytes_done = static_cast<u64>(static_cast<double>(wm.bytes) *
                                   static_cast<double>(elapsed) /
                                   static_cast<double>(extent));
  pm.throughput_bps = static_cast<u64>(static_cast<double>(wm.bytes) *
                                       static_cast<double>(sim::kSecond) /
                                       static_cast<double>(extent));
  pm.eta_us = now >= wm.end ? 0 : wm.end - now;
  if (mgr != nullptr && mgr->open()) (void)mgr->send(encode_progress(pm));
  obs::metrics().counter("agent.progress.sent").inc();
  trace_op("hb seq=" + std::to_string(seq) + " phase=" + wm.phase +
               " done=" + std::to_string(pm.bytes_done) + "/" +
               std::to_string(pm.bytes_expected) + " eta=" +
               obs::vtime_us(pm.eta_us),
           op_id, parent);
}

void Agent::ckpt_beacon(const std::shared_ptr<CkptOp>& op) {
  if (op->finished || op->aborted) return;
  ++op->hb_seq;
  publish_beacon(op->mgr, op->cmd.op_id, op->cmd.pod_name, op->hb_seq,
                 op->wm, op->span_root);
  // after() dilates the interval on an injected slow node — its
  // userspace beacon loop is slow like everything else there, and each
  // (rarer) beacon still carries an honest watermark.
  after(op->cmd.heartbeat_us, [this, op] { ckpt_beacon(op); });
}

void Agent::restart_beacon(const std::shared_ptr<RestartOp>& op) {
  if (op->finished) return;
  ++op->hb_seq;
  publish_beacon(op->mgr, op->cmd.op_id, op->cmd.pod_name, op->hb_seq,
                 op->wm, op->span_root);
  after(op->cmd.heartbeat_us, [this, op] { restart_beacon(op); });
}

// ---- Pod hosting ---------------------------------------------------------------

pod::Pod& Agent::create_pod(net::IpAddr vip, const std::string& name) {
  auto p = std::make_unique<pod::Pod>(node_, vip, name);
  pod::Pod& ref = *p;
  pods_[name] = std::move(p);
  return ref;
}

pod::Pod* Agent::find_pod(const std::string& name) {
  auto it = pods_.find(name);
  return it == pods_.end() ? nullptr : it->second.get();
}

Status Agent::destroy_pod(const std::string& name) {
  return pods_.erase(name) > 0 ? Status::ok() : Status(Err::NO_ENT, name);
}

bool Agent::busy() const {
  for (const auto& c : conns_) {
    if ((c.ckpt && !c.ckpt->finished) ||
        (c.restart && !c.restart->finished)) {
      return true;
    }
  }
  return !waiting_restarts_.empty();
}

// ---- Connection handling ---------------------------------------------------------

void Agent::on_accept(std::unique_ptr<MsgChannel> ch) {
  conns_.push_back(Conn{std::move(ch), nullptr, nullptr, false});
  Conn* conn = &conns_.back();
  conn->ch->set_on_msg([this, conn](Bytes msg) { on_msg(conn, std::move(msg)); });
  conn->ch->set_on_closed([this, conn] { on_closed(conn); });
}

void Agent::on_msg(Conn* conn, Bytes msg) {
  if (crashed_) return;
  auto type = peek_type(msg);
  if (!type) return;
  switch (type.value()) {
    case MsgType::CHECKPOINT_CMD: {
      auto cmd = decode_checkpoint_cmd(msg);
      if (cmd) ckpt_begin(conn, std::move(cmd).value());
      break;
    }
    case MsgType::CONTINUE: {
      if (conn->ckpt) {
        auto cont = decode_continue(msg);
        conn->ckpt->continue_received = true;
        // The Manager's 'continue' EVENT id is the cross-node parent of
        // everything this agent does from here on (unblock, resume,
        // first retransmit) — the causal edge of the Figure-2 barrier.
        if (cont) conn->ckpt->continue_event = cont.value().continue_event;
        trace_op("3a: continue received for " + conn->ckpt->cmd.pod_name,
                 conn->ckpt->cmd.op_id, conn->ckpt->continue_event);
        ckpt_maybe_finish(conn->ckpt);
      }
      break;
    }
    case MsgType::RESTART_CMD: {
      auto cmd = decode_restart_cmd(msg);
      if (cmd) restart_begin(conn, std::move(cmd).value());
      break;
    }
    case MsgType::STREAM_OPEN: {
      auto m = decode_stream_open(msg);
      if (m) {
        Stream s;
        s.op_id = m.value().op_id;
        streams_[m.value().tag] = std::move(s);
      }
      break;
    }
    case MsgType::STREAM_CHUNK: {
      auto m = decode_stream_chunk(msg);
      if (m) append_bytes(streams_[m.value().tag].data, m.value().data);
      break;
    }
    case MsgType::STREAM_CLOSE: {
      auto m = decode_stream_close(msg);
      if (!m) break;
      const std::string& tag = m.value().tag;
      streams_[tag].complete = true;
      trace_op("stream " + tag + " complete (" +
                   std::to_string(streams_[tag].data.size()) + " bytes)",
               streams_[tag].op_id, 0);
      auto wit = waiting_restarts_.find(tag);
      if (wit != waiting_restarts_.end()) {
        auto op = wit->second;
        waiting_restarts_.erase(wit);
        restart_with_image(op, streams_[tag].data);
      }
      break;
    }
    case MsgType::REDIRECT_DATA: {
      auto m = decode_redirect_data(msg);
      if (m) redirects_.push_back(std::move(m).value());
      break;
    }
    case MsgType::ABORT: {
      if (conn->ckpt && !conn->ckpt->finished) {
        ckpt_abort(conn->ckpt, "manager abort");
      }
      if (conn->restart) {
        restart_abort(conn->restart, "manager abort");
      }
      break;
    }
    default:
      break;
  }
}

void Agent::on_closed(Conn* conn) {
  // Paper §4: "an Agent failure will be readily detected by the Manager
  // ... Similarly a failure of the Manager itself will be noted by the
  // Agents.  In both cases, the operation will be gracefully aborted, and
  // the application will resume its execution."
  if (conn->ckpt && !conn->ckpt->finished) {
    ckpt_abort(conn->ckpt, "manager connection lost");
  }
  // A finished restore is left alone on channel close (the normal end of
  // a successful op); an unfinished one means the Manager died mid-op.
  if (conn->restart && !conn->restart->finished) {
    restart_abort(conn->restart, "manager connection lost");
  }
  conn->dead = true;
  after(0, [this] { reap_conns(); });
}

void Agent::reap_conns() {
  conns_.remove_if([](const Conn& c) { return c.dead; });
}

// ---- Checkpoint (Figure 1) ----------------------------------------------------------

void Agent::ckpt_begin(Conn* conn, CheckpointCmd cmd) {
  auto op = std::make_shared<CkptOp>();
  op->cmd = std::move(cmd);
  op->mgr = conn->ch.get();
  op->t_start = node_.now();
  conn->ckpt = op;
  if (fault_crashed("ckpt.begin")) return;

  pod::Pod* pod = find_pod(op->cmd.pod_name);
  if (pod == nullptr) {
    CkptDone done;
    done.op_id = op->cmd.op_id;
    done.pod_name = op->cmd.pod_name;
    done.ok = false;
    done.error = "no such pod";
    op->finished = true;
    (void)op->mgr->send(encode_ckpt_done(done));
    return;
  }

  if (obs::SpanRecorder* r = rec()) {
    // cmd.parent_span is the Manager's root span: with a shared recorder
    // (Testbed/Trace) the agent's subtree hangs off the Manager's op.
    op->span_root = r->begin_at(op->t_start, "ckpt", who(),
                                op->cmd.parent_span, op->cmd.op_id);
    op->span_suspend = r->begin_at(op->t_start, "ckpt.suspend", who(),
                                   op->span_root, op->cmd.op_id);
  }

  op->wm.enter("ckpt.suspend");
  if (op->cmd.heartbeat_us > 0) {
    after(op->cmd.heartbeat_us, [this, op] { ckpt_beacon(op); });
  }

  // Step 1: suspend the pod and block its network.
  trace_op("1: suspend pod " + op->cmd.pod_name + ", block network",
           op->cmd.op_id, op->span_root);
  pod->suspend();
  pod->filter().set_obs_tag(tag(op->cmd.op_id, op->span_suspend));
  pod->filter().block_addr(pod->vip());
  if (ordering_ == CkptOrdering::NETWORK_FIRST) {
    after(costs_.suspend_cost(pod->process_count()),
          [this, op] { ckpt_network(op); });
  } else {
    after(costs_.suspend_cost(pod->process_count()),
          [this, op] { ckpt_standalone_pre(op); });
  }
}

// ---- NETWORK_LAST ablation path ------------------------------------------------

void Agent::capture_standalone(const std::shared_ptr<CkptOp>& op,
                               pod::Pod& pod) {
  op->image.header = ckpt::Standalone::save_header(pod);
  op->image.header.codec_flags =
      op->cmd.codec_flags & (ckpt::kCodecZeroElide | ckpt::kCodecDedup);

  // Delta eligibility: incremental snapshots to the SAN only, with a
  // valid baseline, an un-exhausted chain, and a destination that would
  // not overwrite one of the chain's own images.
  const ckpt::DeltaBaseline* baseline = nullptr;
  if (op->cmd.incremental && op->cmd.mode == CkptMode::SNAPSHOT) {
    auto uri = parse_uri(op->cmd.dest_uri);
    auto it = incr_.find(op->cmd.pod_name);
    if (uri && uri.value().scheme == "san" && it != incr_.end() &&
        it->second.valid && it->second.chain_len < op->cmd.chain_cap &&
        it->second.chain_uris.count(uri.value().path) == 0) {
      baseline = &it->second.base;
      op->is_delta = true;
      op->image.header.codec_flags |= ckpt::kCodecDelta;
      op->image.header.delta_seq = it->second.delta_seq + 1;
      op->image.header.base_uri = it->second.last_uri;
    }
  }
  op->image.processes = ckpt::Standalone::save_processes(pod, baseline);
  op->logical_bytes = 0;
  for (const auto& p : op->image.processes) {
    for (const auto& [name, meta] : p.manifest) {
      op->logical_bytes += meta.size;
    }
  }
}

void Agent::ckpt_standalone_pre(const std::shared_ptr<CkptOp>& op) {
  if (op->aborted) return;
  if (fault_crashed("ckpt.standalone")) return;
  pod::Pod* pod = find_pod(op->cmd.pod_name);
  if (pod == nullptr) return ckpt_abort(op, "pod vanished");

  op->suspend_us = node_.now() - op->t_start;
  obs::metrics().histogram("agent.ckpt.suspend_us").observe(op->suspend_us);
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op->span_suspend);
    op->span_standalone = r->begin_at(node_.now(), "ckpt.standalone", who(),
                                      op->span_root, op->cmd.op_id);
  }

  capture_standalone(op, *pod);
  u64 bytes = 0;
  for (const auto& p : op->image.processes) {
    for (const auto& [name, r] : p.regions) bytes += r.size();
  }
  sim::Time cost =
      costs_.standalone_ckpt_cost(bytes, op->image.processes.size());
  op->wm.enter("ckpt.standalone", node_.now(),
               node_.now() + slowdown(cost), bytes);
  after(cost, [this, op, cost] {
    if (op->aborted) return;
    op->standalone_us = cost;
    obs::metrics().histogram("agent.ckpt.standalone_us").observe(cost);
    if (obs::SpanRecorder* r = rec()) {
      r->end_at(node_.now(), op->span_standalone);
    }
    trace_op("3(early): standalone checkpoint done for " + op->cmd.pod_name,
             op->cmd.op_id, op->span_root);
    ckpt_network_post(op);
  });
}

void Agent::ckpt_network_post(const std::shared_ptr<CkptOp>& op) {
  if (op->aborted) return;
  if (fault_crashed("ckpt.netckpt")) return;
  pod::Pod* pod = find_pod(op->cmd.pod_name);
  if (pod == nullptr) return ckpt_abort(op, "pod vanished");

  if (obs::SpanRecorder* r = rec()) {
    op->span_netckpt = r->begin_at(node_.now(), "ckpt.netckpt", who(),
                                   op->span_root, op->cmd.op_id);
  }

  Status st = NetCheckpoint::save(*pod, op->image.meta, op->image.sockets,
                                  tag(op->cmd.op_id, op->span_netckpt));
  if (!st) return ckpt_abort(op, st.to_string());
  if (gm::GmDevice* dev = pod->gm_device_if_present()) {
    op->image.has_gm_device = true;
    op->image.gm_state = dev->extract_state();
    op->queued_bytes += op->image.gm_state.size();
  }
  for (const auto& s : op->image.sockets) {
    op->queued_bytes += s.byte_size();
  }
  sim::Time cost =
      costs_.net_ckpt_cost(op->image.sockets.size(), op->queued_bytes);
  op->wm.enter("ckpt.netckpt", node_.now(), node_.now() + slowdown(cost),
               op->queued_bytes);
  after(cost, [this, op, cost] {
    if (op->aborted) return;
    op->netckpt_us = cost;
    obs::metrics().histogram("agent.ckpt.netckpt_us").observe(cost);
    if (obs::SpanRecorder* r = rec()) {
      r->end_at(node_.now(), op->span_netckpt);
    }
    trace_op("2(late): network checkpoint done for " + op->cmd.pod_name,
             op->cmd.op_id, op->span_root);
    MetaReport report;
    report.op_id = op->cmd.op_id;
    report.pod_name = op->cmd.pod_name;
    report.meta = op->image.meta;
    report.net_ckpt_us = cost;
    (void)op->mgr->send(encode_meta_report(report));
    op->encoded_image = ckpt::encode_image(op->image);
    ckpt_standalone_done(op);
  });
}

void Agent::ckpt_network(const std::shared_ptr<CkptOp>& op) {
  if (op->aborted) return;
  if (fault_crashed("ckpt.netckpt")) return;
  pod::Pod* pod = find_pod(op->cmd.pod_name);
  if (pod == nullptr) return ckpt_abort(op, "pod vanished");

  op->suspend_us = node_.now() - op->t_start;
  obs::metrics().histogram("agent.ckpt.suspend_us").observe(op->suspend_us);
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op->span_suspend);
    op->span_netckpt = r->begin_at(node_.now(), "ckpt.netckpt", who(),
                                   op->span_root, op->cmd.op_id);
  }

  // Step 2: network-state checkpoint (sockets + kernel-bypass device).
  Status st = NetCheckpoint::save(*pod, op->image.meta, op->image.sockets,
                                  tag(op->cmd.op_id, op->span_netckpt));
  if (!st) return ckpt_abort(op, st.to_string());
  if (gm::GmDevice* dev = pod->gm_device_if_present()) {
    op->image.has_gm_device = true;
    op->image.gm_state = dev->extract_state();
    op->queued_bytes += op->image.gm_state.size();
  }
  for (const auto& s : op->image.sockets) {
    op->queued_bytes += s.byte_size();
  }
  sim::Time cost =
      costs_.net_ckpt_cost(op->image.sockets.size(), op->queued_bytes);
  op->wm.enter("ckpt.netckpt", node_.now(), node_.now() + slowdown(cost),
               op->queued_bytes);
  after(cost, [this, op, cost] {
    if (op->aborted) return;
    op->netckpt_us = cost;
    obs::metrics().histogram("agent.ckpt.netckpt_us").observe(cost);
    if (obs::SpanRecorder* r = rec()) {
      r->end_at(node_.now(), op->span_netckpt);
    }
    // Step 2a: report meta-data to the Manager, then immediately proceed
    // with the standalone checkpoint (the barrier overlaps it).
    trace_op("2: network checkpoint done for " + op->cmd.pod_name + " (" +
                 std::to_string(cost) + "us)",
             op->cmd.op_id, op->span_root);
    MetaReport report;
    report.op_id = op->cmd.op_id;
    report.pod_name = op->cmd.pod_name;
    report.meta = op->image.meta;
    report.net_ckpt_us = cost;
    (void)op->mgr->send(encode_meta_report(report));
    trace_op("2a: meta-data reported for " + op->cmd.pod_name,
             op->cmd.op_id, op->span_root);
    ckpt_standalone(op);
  });
}

void Agent::ckpt_standalone(const std::shared_ptr<CkptOp>& op) {
  if (op->aborted) return;
  if (fault_crashed("ckpt.standalone")) return;
  pod::Pod* pod = find_pod(op->cmd.pod_name);
  if (pod == nullptr) return ckpt_abort(op, "pod vanished");

  if (obs::SpanRecorder* r = rec()) {
    op->span_standalone = r->begin_at(node_.now(), "ckpt.standalone", who(),
                                      op->span_root, op->cmd.op_id);
  }

  // Step 3: standalone pod checkpoint (Zap substrate).
  capture_standalone(op, *pod);

  // Migration redirect optimization (paper §5): ship each send queue
  // directly to the agent receiving the peer's stream instead of
  // embedding it in our image.
  if (op->cmd.redirect_send_queues && op->cmd.mode == CkptMode::MIGRATE) {
    // A (possibly empty) record is shipped for EVERY connected socket
    // whose peer's destination agent is known, so the restoring side can
    // deterministically wait for it.  If the peer's destination is not in
    // the command's map, the send queue stays in the image and restores
    // through the normal resend path.
    for (auto& s : op->image.sockets) {
      if (s.proto != net::Proto::TCP || !s.connected) {
        continue;
      }
      bool peer_known = false;
      for (const auto& [vip, a] : op->cmd.peer_agents) {
        if (vip == s.remote.ip) peer_known = true;
      }
      if (!peer_known) continue;
      RedirectData rd;
      rd.op_id = op->cmd.op_id;
      rd.dst_pod_vip = s.remote.ip;
      rd.dst_local = s.remote;
      rd.dst_remote = s.local;
      rd.sender_acked = s.pcb_acked;
      rd.data = std::move(s.send_queue);
      s.send_queue.clear();
      s.send_queue_redirected = true;
      op->redirects.push_back(std::move(rd));
    }
  }

  Bytes encoded = ckpt::encode_image(op->image);
  u64 image_bytes = encoded.size();

  // Pipelined migration streaming: hand chunks to the wire as their
  // serialization slices complete instead of materializing-then-sending.
  if (op->cmd.pipelined) {
    auto uri = parse_uri(op->cmd.dest_uri);
    if (uri && uri.value().scheme == "agent") {
      op->encoded_image = std::move(encoded);
      ckpt_stream(op, uri.value().endpoint, uri.value().path);
      return;
    }
  }

  sim::Time cost = costs_.standalone_ckpt_cost(image_bytes,
                                               op->image.processes.size());
  op->wm.enter("ckpt.standalone", node_.now(),
               node_.now() + slowdown(cost), image_bytes);
  after(cost, [this, op, cost, encoded = std::move(encoded)]() mutable {
    if (op->aborted) return;
    op->standalone_us = cost;
    obs::metrics().histogram("agent.ckpt.standalone_us").observe(cost);
    trace_op("3: standalone checkpoint done for " + op->cmd.pod_name + " (" +
                 std::to_string(encoded.size()) + " bytes)" +
                 (op->is_delta
                      ? " [delta #" +
                            std::to_string(op->image.header.delta_seq) + "]"
                      : ""),
             op->cmd.op_id, op->span_root);
    op->encoded_image = std::move(encoded);
    ckpt_standalone_done(op);
  });
}

void Agent::ckpt_stream(const std::shared_ptr<CkptOp>& op,
                        const net::SockAddr& endpoint,
                        const std::string& tag) {
  auto ch = connect_channel(node_.host_stack(), endpoint);
  if (ch == nullptr) return ckpt_abort(op, "cannot reach stream target");
  MsgChannel* raw = ch.get();
  out_channels_.push_back(std::move(ch));
  (void)raw->send(encode_stream_open(StreamOpen{op->cmd.op_id, tag}));
  if (obs::SpanRecorder* r = rec()) {
    op->span_stream = r->begin_at(node_.now(), "ckpt.stream", who(),
                                  op->span_root, op->cmd.op_id);
  }

  const sim::Time t0 = node_.now();
  // Per-process control overhead is charged once, up front; after that
  // each chunk becomes sendable when its serialization slice elapses.
  // The chunk enters the (simulated) TCP pipe at that moment, so
  // transfer overlaps the remaining serialization — the modeled elapsed
  // time converges on CostModel::pipelined_stream_cost's max() instead
  // of the summed serialize + transfer of the materialize path.
  sim::Time at = costs_.per_process * op->image.processes.size();
  const std::size_t total = op->encoded_image.size();
  std::size_t sent = 0;
  do {
    std::size_t n = std::min(kStreamChunk, total - sent);
    std::size_t off = sent;
    sent += n;
    at += costs_.stream_chunk_cost(n);
    const bool last = sent >= total;
    after(at, [this, op, raw, tag, off, n, last, t0, endpoint] {
      if (op->aborted) return;
      StreamChunk chunk;
      chunk.tag = tag;
      chunk.data.assign(
          op->encoded_image.begin() + static_cast<long>(off),
          op->encoded_image.begin() + static_cast<long>(off + n));
      (void)raw->send(encode_stream_chunk(chunk));
      if (!last) return;
      (void)raw->send(encode_stream_close(StreamClose{tag}));
      ship_redirects(op, raw, endpoint);
      obs::metrics()
          .histogram("agent.ckpt.stream_us")
          .observe(node_.now() - t0);
      op->standalone_us = node_.now() - t0;
      obs::metrics().histogram("agent.ckpt.standalone_us")
          .observe(op->standalone_us);
      if (obs::SpanRecorder* r = rec()) {
        r->end_at(node_.now(), op->span_stream);
      }
      trace_op("3: standalone checkpoint streamed for " + op->cmd.pod_name +
                   " (" + std::to_string(op->encoded_image.size()) +
                   " bytes pipelined)",
               op->cmd.op_id, op->span_root);
      op->delivered = true;
      ckpt_standalone_done(op);
    });
  } while (sent < total);
  // `at` now holds the full modeled serialize+stream duration.
  op->wm.enter("ckpt.stream", t0, t0 + slowdown(at), total);
}

void Agent::ckpt_standalone_done(const std::shared_ptr<CkptOp>& op) {
  op->standalone_done = true;
  op->t_standalone_done = node_.now();
  op->wm.enter("ckpt.barrier");
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op->span_standalone);  // no-op if already closed
    op->span_barrier = r->begin_at(node_.now(), "ckpt.barrier", who(),
                                   op->span_root, op->cmd.op_id);
  }
  if (!op->delivered) deliver_image(op);
  ckpt_maybe_finish(op);
  // Barrier watchdog: a stalled Manager (or a peer agent holding up the
  // barrier) must not leave this pod suspended forever.  The resulting
  // CKPT_DONE is marked transient — the whole op is safe to retry.
  if (!op->finished && !op->aborted && !op->continue_received &&
      op->cmd.barrier_wait_us > 0) {
    after(op->cmd.barrier_wait_us, [this, op] {
      if (op->finished || op->aborted || op->continue_received) return;
      ckpt_abort(op, "continue barrier deadline expired (manager stalled)",
                 /*transient=*/true);
    });
  }
}

void Agent::ship_redirects(const std::shared_ptr<CkptOp>& op, MsgChannel* raw,
                           const net::SockAddr& stream_endpoint) {
  // Redirected send queues go to the agents receiving the peers'
  // streams.
  for (auto& rd : op->redirects) {
    net::SockAddr peer_agent{};
    for (const auto& [vip, a] : op->cmd.peer_agents) {
      if (vip == rd.dst_pod_vip) peer_agent = a;
    }
    if (peer_agent.port == 0) continue;  // peer not migrating
    MsgChannel* target = raw;
    if (peer_agent != stream_endpoint) {
      auto ch2 = connect_channel(node_.host_stack(), peer_agent);
      if (ch2 == nullptr) continue;
      target = ch2.get();
      out_channels_.push_back(std::move(ch2));
    }
    (void)target->send(encode_redirect_data(rd));
  }
}

void Agent::deliver_image(const std::shared_ptr<CkptOp>& op) {
  if (fault_crashed("ckpt.deliver")) return;
  auto uri = parse_uri(op->cmd.dest_uri);
  if (!uri) return ckpt_abort(op, uri.status().to_string());

  if (uri.value().scheme == "san") {
    // Two-phase commit: stage the image at `<path>.tmp` now; it only
    // replaces the previous image via rename in ckpt_maybe_finish, after
    // the continue barrier.  Until then an abort or crash leaves the
    // last committed image untouched (at worst a .tmp for the GC), and
    // the incremental chain state — updated at commit — stays in sync
    // with what is actually on the SAN.
    op->san_tmp = uri.value().path + ".tmp";
    op->san_final = uri.value().path;
    Status wst = node_.san().write(op->san_tmp, op->encoded_image);
    if (!wst) {
      op->san_tmp.clear();
      return ckpt_abort(op, "image write failed: " + wst.message(),
                        /*transient=*/true);
    }
    // Read-back size verification catches short/torn writes pre-commit.
    auto back = node_.san().read(op->san_tmp);
    if (!back || back.value().size() != op->encoded_image.size()) {
      (void)node_.san().remove(op->san_tmp);
      op->san_tmp.clear();
      return ckpt_abort(op, "image verification failed (torn write)",
                        /*transient=*/true);
    }
    return;
  }
  if (uri.value().scheme == "agent") {
    // Direct streaming to the destination agent — "enabling direct
    // migration of a distributed application to a new set of nodes
    // without saving and restoring state from secondary storage" (§1).
    // (Materialize-then-send path; see ckpt_stream for the pipelined
    // variant.)
    auto ch = connect_channel(node_.host_stack(), uri.value().endpoint);
    if (ch == nullptr) return ckpt_abort(op, "cannot reach stream target");
    MsgChannel* raw = ch.get();
    out_channels_.push_back(std::move(ch));
    (void)raw->send(
        encode_stream_open(StreamOpen{op->cmd.op_id, uri.value().path}));
    const Bytes& img = op->encoded_image;
    for (std::size_t off = 0; off < img.size(); off += kStreamChunk) {
      std::size_t n = std::min(kStreamChunk, img.size() - off);
      StreamChunk chunk;
      chunk.tag = uri.value().path;
      chunk.data.assign(img.begin() + static_cast<long>(off),
                        img.begin() + static_cast<long>(off + n));
      (void)raw->send(encode_stream_chunk(chunk));
    }
    (void)raw->send(encode_stream_close(StreamClose{uri.value().path}));
    ship_redirects(op, raw, uri.value().endpoint);
    return;
  }
  ckpt_abort(op, "unsupported checkpoint destination " + op->cmd.dest_uri);
}

void Agent::ckpt_maybe_finish(const std::shared_ptr<CkptOp>& op) {
  if (op->finished || op->aborted) return;
  // Steps 3a/4a: finish only after the standalone checkpoint completed
  // AND the Manager's continue arrived (the single synchronization).
  if (!op->standalone_done || !op->continue_received) return;
  if (fault_crashed("ckpt.barrier")) return;

  // Commit point: the staged image atomically replaces the previous one
  // only now, past the barrier.  Only a committed image advances the
  // incremental chain — an aborted delta must not become the next base.
  if (!op->san_tmp.empty()) {
    Status cst = node_.san().rename(op->san_tmp, op->san_final);
    if (!cst) {
      return ckpt_abort(op, "image commit failed: " + cst.message(),
                        /*transient=*/true);
    }
    op->san_tmp.clear();
    obs::metrics().counter("ckpt.commit.committed").inc();
    if (op->cmd.mode == CkptMode::SNAPSHOT) {
      IncrState& ist = incr_[op->cmd.pod_name];
      if (op->is_delta) {
        ist.chain_len += 1;
        ist.delta_seq = op->image.header.delta_seq;
      } else {
        ist.chain_uris.clear();
        ist.chain_len = 0;
        ist.delta_seq = 0;
      }
      ist.chain_uris.insert(op->san_final);
      ist.last_uri = op->cmd.dest_uri;
      ist.base = ckpt::DeltaBaseline::from_images(op->image.processes);
      ist.valid = true;
    }
    trace_op("3b: image committed to " + op->san_final, op->cmd.op_id,
             op->span_barrier);
  }
  op->finished = true;

  obs::metrics()
      .histogram("agent.ckpt.barrier_wait_us")
      .observe(node_.now() - op->t_standalone_done);
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op->span_barrier);
    r->end_at(node_.now(), op->span_root);
  }

  pod::Pod* pod = find_pod(op->cmd.pod_name);
  if (pod != nullptr) {
    if (op->cmd.fs_snapshot) {
      // "A file-system snapshot (if desired) may be taken immediately
      // prior to reactivating the pod."
      node_.san().snapshot("pods/" + op->cmd.pod_name + "/",
                           "snapshots/" + op->cmd.pod_name + "/");
    }
    if (op->cmd.mode == CkptMode::SNAPSHOT) {
      pod->filter().clear_obs_tag();
      pod->filter().unblock_addr(pod->vip());
      pod->resume();
      // Parented under the Manager's 'continue' EVENT: the cross-node
      // causal edge (barrier release → this pod's unblock/resume).
      if (obs::SpanRecorder* r = rec()) {
        r->event_at(node_.now(), who(),
                    "agent.resume pod=" + op->cmd.pod_name,
                    op->continue_event, op->cmd.op_id);
      }
      // Suppressed retransmissions resume on their own once the filter
      // opens; tag each established socket so the first one extends the
      // causal tree down to the wire.
      net::Stack& stack = pod->stack();
      for (net::SockId sid : stack.all_socket_ids()) {
        if (net::TcpSocket* t = stack.find_tcp(sid)) {
          if (t->state() == net::TcpState::ESTABLISHED) {
            t->tag_next_retransmit(tag(op->cmd.op_id, op->continue_event));
          }
        }
      }
      trace_op("4: pod " + op->cmd.pod_name + " resumed", op->cmd.op_id,
               op->continue_event);
    } else {
      pod->filter().clear_obs_tag();
      (void)destroy_pod(op->cmd.pod_name);
      trace_op("4: pod " + op->cmd.pod_name + " destroyed (migration)",
               op->cmd.op_id, op->continue_event);
    }
  }

  CkptDone done;
  done.op_id = op->cmd.op_id;
  done.pod_name = op->cmd.pod_name;
  done.ok = true;
  done.image_bytes = op->encoded_image.size();
  done.network_bytes = op->image.network_bytes();
  done.total_us = node_.now() - op->t_start;
  done.logical_bytes = op->logical_bytes;
  done.delta_seq = op->is_delta ? op->image.header.delta_seq : 0;
  done.suspend_us = op->suspend_us;
  done.netckpt_us = op->netckpt_us;
  done.standalone_us = op->standalone_us;
  done.barrier_us = node_.now() - op->t_standalone_done;
  (void)op->mgr->send(encode_ckpt_done(done));
}

void Agent::ckpt_abort(const std::shared_ptr<CkptOp>& op,
                       const std::string& why, bool transient) {
  if (op->finished || op->aborted) return;
  op->aborted = true;
  op->finished = true;
  // GC the staged half of a never-committed two-phase write.
  if (!op->san_tmp.empty()) {
    if (node_.san().remove(op->san_tmp).is_ok()) {
      obs::metrics().counter("ckpt.commit.gc_tmp").inc();
    }
    op->san_tmp.clear();
  }
  ZLOG_WARN("agent@" << node_.name() << ": checkpoint of "
                     << op->cmd.pod_name << " aborted: " << why);
  // Flight-recorder dump before the spans close: the postmortem's
  // `phase` is the phase still open at the moment of death.
  obs::dump_op_failure(rec(), "ckpt_abort", op->cmd.op_id, who(), why,
                       node_.now());
  if (obs::SpanRecorder* r = rec()) {
    // Close whichever phases were open at abort time (no-ops otherwise).
    r->end_at(node_.now(), op->span_suspend);
    r->end_at(node_.now(), op->span_netckpt);
    r->end_at(node_.now(), op->span_standalone);
    r->end_at(node_.now(), op->span_stream);
    r->end_at(node_.now(), op->span_barrier);
    r->end_at(node_.now(), op->span_root);
  }
  trace_op("abort: " + why, op->cmd.op_id, op->span_root);
  // Gracefully resume the application (paper §4).
  pod::Pod* pod = find_pod(op->cmd.pod_name);
  if (pod != nullptr) {
    pod->filter().clear_obs_tag();
    pod->filter().unblock_addr(pod->vip());
    if (pod->suspended()) pod->resume();
  }
  if (op->mgr != nullptr) {
    CkptDone done;
    done.op_id = op->cmd.op_id;
    done.pod_name = op->cmd.pod_name;
    done.ok = false;
    done.error = why;
    done.transient = transient;
    // Partial phase durations: what the pod HAD spent when it died, so
    // aborted ledger lines still carry attribution-grade timings.
    done.total_us = node_.now() - op->t_start;
    done.suspend_us = op->suspend_us;
    done.netckpt_us = op->netckpt_us;
    done.standalone_us = op->standalone_us;
    done.barrier_us = op->t_standalone_done > 0
                          ? node_.now() - op->t_standalone_done
                          : 0;
    (void)op->mgr->send(encode_ckpt_done(done));
  }
}

// ---- Restart (Figure 3) ---------------------------------------------------------------

void Agent::restart_begin(Conn* conn, RestartCmd cmd) {
  auto op = std::make_shared<RestartOp>();
  op->cmd = std::move(cmd);
  op->mgr = conn->ch.get();
  op->t_start = node_.now();
  conn->restart = op;
  if (fault_crashed("restart.begin")) return;
  if (obs::SpanRecorder* r = rec()) {
    op->span_root = r->begin_at(op->t_start, "restart", who(),
                                op->cmd.parent_span, op->cmd.op_id);
  }

  op->wm.enter("restart");
  if (op->cmd.heartbeat_us > 0) {
    after(op->cmd.heartbeat_us, [this, op] { restart_beacon(op); });
  }

  // Apply the virtual→real location updates ("substituting the
  // destination network addresses in place of the original addresses").
  for (const auto& [vip, real] : op->cmd.locations) {
    node_.locations().set(vip, real);
  }

  auto uri = parse_uri(op->cmd.source_uri);
  if (!uri) return restart_finish(op, uri.status());

  if (uri.value().scheme == "san") {
    auto data = node_.san().read(uri.value().path);
    if (!data) return restart_finish(op, data.status());
    restart_with_image(op, std::move(data).value());
    return;
  }
  if (uri.value().scheme == "stream") {
    auto it = streams_.find(uri.value().path);
    if (it != streams_.end() && it->second.complete) {
      restart_with_image(op, it->second.data);
    } else {
      // The checkpoint stream is still arriving; resume when complete.
      waiting_restarts_[uri.value().path] = op;
      if (op->cmd.stream_wait_us > 0) {
        after(op->cmd.stream_wait_us, [this, op, stag = uri.value().path] {
          auto wit = waiting_restarts_.find(stag);
          if (wit == waiting_restarts_.end() || wit->second != op) return;
          if (op->finished) return;
          waiting_restarts_.erase(wit);
          restart_finish(op, Status(Err::TIMED_OUT,
                                    "checkpoint stream " + stag +
                                        " not delivered within deadline"));
        });
      }
    }
    return;
  }
  restart_finish(op, Status(Err::INVALID, "unsupported restart source"));
}

void Agent::restart_with_image(const std::shared_ptr<RestartOp>& op,
                               Bytes image_bytes) {
  if (op->finished) return;
  if (fault_crashed("restart.connectivity")) return;
  auto image = ckpt::decode_image(image_bytes);
  if (!image) return restart_finish(op, image.status());
  op->image = std::move(image).value();

  // Delta image: walk the base chain back to the full root (all bases
  // live on the cluster-wide SAN, so any node can compose), then overlay
  // the deltas oldest-first.
  if (op->image.header.is_delta()) {
    std::vector<ckpt::PodImage> chain;  // newest delta first
    std::size_t depth = 0;
    while (op->image.header.is_delta()) {
      if (++depth > 64) {
        return restart_finish(op,
                              Status(Err::PROTO, "delta chain too deep"));
      }
      auto base_uri = parse_uri(op->image.header.base_uri);
      if (!base_uri || base_uri.value().scheme != "san") {
        return restart_finish(
            op, Status(Err::PROTO, "delta base must be on the SAN: " +
                                       op->image.header.base_uri));
      }
      auto data = node_.san().read(base_uri.value().path);
      if (!data) return restart_finish(op, data.status());
      auto base = ckpt::decode_image(data.value());
      if (!base) return restart_finish(op, base.status());
      chain.push_back(std::move(op->image));
      op->image = std::move(base).value();
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      auto composed = ckpt::compose_delta(std::move(op->image), *it);
      if (!composed) return restart_finish(op, composed.status());
      op->image = std::move(composed).value();
    }
    obs::metrics().counter("agent.restart.deltas_composed").inc(depth);
    trace_op("0: composed delta chain of depth " + std::to_string(depth) +
                 " for " + op->cmd.pod_name,
             op->cmd.op_id, op->span_root);
  }

  if (node_.find_domain(op->image.header.vip) != nullptr) {
    return restart_finish(
        op, Status(Err::EXISTS, "vip already hosted on this node"));
  }

  // Step 1: create a new pod.
  op->pod = &create_pod(op->image.header.vip, op->cmd.pod_name);
  ckpt::Standalone::restore_header(*op->pod, op->image.header);
  trace_op("1: pod " + op->cmd.pod_name + " created for restart",
           op->cmd.op_id, op->span_root);

  // Step 2: recover network connectivity.
  std::set<net::SockId> referenced;
  for (const auto& p : op->image.processes) {
    for (const auto& [fd, sid] : p.fds) referenced.insert(sid);
  }
  std::set<net::SockId> unreferenced;
  for (const auto& s : op->image.sockets) {
    if (referenced.count(s.old_id) == 0) unreferenced.insert(s.old_id);
  }

  if (obs::SpanRecorder* r = rec()) {
    op->span_connectivity =
        r->begin_at(node_.now(), "restart.connectivity", who(),
                    op->span_root, op->cmd.op_id);
  }
  op->wm.enter("restart.connectivity");
  op->connectivity = std::make_unique<ConnectivityRestore>(
      *op->pod, op->cmd.meta, op->image.sockets, std::move(unreferenced),
      30 * sim::kSecond,
      [this, op](Status st, ckpt::SockMap map) {
        restart_connectivity_done(op, std::move(st), std::move(map));
      });
  op->connectivity->set_obs_tag(tag(op->cmd.op_id, op->span_connectivity));
  op->connectivity->start();
}

void Agent::restart_connectivity_done(const std::shared_ptr<RestartOp>& op,
                                      Status st, ckpt::SockMap map) {
  if (op->finished) return;
  if (!st) return restart_finish(op, st);
  op->socks = std::move(map);
  op->t_conn_done = node_.now();
  obs::metrics()
      .histogram("agent.restart.connectivity_us")
      .observe(op->t_conn_done - op->t_start);
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(op->t_conn_done, op->span_connectivity);
  }
  trace_op("2: connectivity recovered for " + op->cmd.pod_name,
           op->cmd.op_id, op->span_root);
  restart_wait_redirects(op, /*waited=*/0);
}

void Agent::restart_wait_redirects(const std::shared_ptr<RestartOp>& op,
                                   sim::Time waited) {
  if (op->finished) return;
  // Migration redirect: every connection tagged redirect_expected must
  // have its (possibly empty) peer send-queue record before the socket
  // state is restored, or restored data would be misordered.
  bool all_here = true;
  for (const auto& e : op->cmd.meta.entries) {
    if (!e.redirect_expected) continue;
    const ckpt::SocketImage* img = nullptr;
    for (const auto& s : op->image.sockets) {
      if (s.old_id == e.sock) img = &s;
    }
    if (img == nullptr) continue;
    bool found = false;
    for (const auto& rd : redirects_) {
      if (rd.dst_pod_vip == op->pod->vip() && rd.dst_local == img->local &&
          rd.dst_remote == img->remote) {
        found = true;
      }
    }
    if (!found) all_here = false;
  }
  if (all_here) {
    restart_net_state(op);
    return;
  }
  if (waited > 30 * sim::kSecond) {
    return restart_finish(
        op, Status(Err::TIMED_OUT, "redirected send-queue data missing"));
  }
  after(sim::kMillisecond, [this, op, waited] {
    restart_wait_redirects(op, waited + sim::kMillisecond);
  });
}

void Agent::restart_net_state(const std::shared_ptr<RestartOp>& op) {
  if (op->finished) return;
  if (fault_crashed("restart.netstate")) return;
  if (obs::SpanRecorder* r = rec()) {
    op->span_netstate = r->begin_at(node_.now(), "restart.netstate", who(),
                                    op->span_root, op->cmd.op_id);
  }
  // Step 3: restore the network state of every socket (and the
  // kernel-bypass device, if the pod had one).
  if (op->image.has_gm_device) {
    Status st = op->pod->gm_device().reinstate(op->image.gm_state);
    if (!st) return restart_finish(op, st);
  }
  u64 restored_bytes = 0;
  for (const auto& img : op->image.sockets) {
    auto mit = op->socks.find(img.old_id);
    if (mit == op->socks.end()) {
      return restart_finish(
          op, Status(Err::NO_ENT, "socket " + std::to_string(img.old_id) +
                                      " not re-created"));
    }
    u32 discard = 0;
    for (const auto& e : op->cmd.meta.entries) {
      if (e.sock == img.old_id) discard = e.discard_send;
    }
    // Redirected send-queue data destined for this socket (already sent
    // by the peer's agent); trim the overlap against our recv.
    Bytes extra;
    for (auto it = redirects_.begin(); it != redirects_.end();) {
      if (it->dst_pod_vip == op->pod->vip() && it->dst_local == img.local &&
          it->dst_remote == img.remote) {
        u32 skip = img.pcb_recv - it->sender_acked;
        if (skip & 0x80000000u) skip = 0;
        std::size_t s = std::min<std::size_t>(skip, it->data.size());
        extra.insert(extra.end(), it->data.begin() + static_cast<long>(s),
                     it->data.end());
        it = redirects_.erase(it);
      } else {
        ++it;
      }
    }
    restored_bytes += img.byte_size() + extra.size();
    Status st =
        NetCheckpoint::restore_socket(*op->pod, mit->second, img, discard,
                                      extra,
                                      tag(op->cmd.op_id, op->span_netstate));
    if (!st) return restart_finish(op, st);
  }

  sim::Time cost =
      costs_.net_restore_cost(op->image.sockets.size(), restored_bytes);
  op->wm.enter("restart.netstate", node_.now(),
               node_.now() + slowdown(cost), restored_bytes);
  after(cost, [this, op, cost] {
    if (op->finished) return;
    op->t_net_done = node_.now();
    obs::metrics().histogram("agent.restart.netstate_us").observe(cost);
    if (obs::SpanRecorder* r = rec()) {
      r->end_at(op->t_net_done, op->span_netstate);
    }
    trace_op("3: network state restored for " + op->cmd.pod_name,
             op->cmd.op_id, op->span_root);
    restart_standalone(op);
  });
}

void Agent::restart_standalone(const std::shared_ptr<RestartOp>& op) {
  if (op->finished) return;
  if (fault_crashed("restart.standalone")) return;
  if (obs::SpanRecorder* r = rec()) {
    op->span_standalone =
        r->begin_at(node_.now(), "restart.standalone", who(), op->span_root,
                    op->cmd.op_id);
  }
  // Step 4: standalone restart.
  Status st = ckpt::Standalone::restore_processes(*op->pod,
                                                  op->image.processes,
                                                  op->socks);
  if (!st) return restart_finish(op, st);

  u64 image_bytes = 0;
  for (const auto& p : op->image.processes) {
    for (const auto& [name, r] : p.regions) image_bytes += r.size();
  }
  sim::Time cost = costs_.standalone_restart_cost(
      image_bytes, op->image.processes.size());
  op->wm.enter("restart.standalone", node_.now(),
               node_.now() + slowdown(cost), image_bytes);
  after(cost, [this, op, cost] {
    if (op->finished || op->pod == nullptr) return;
    obs::metrics().histogram("agent.restart.standalone_us").observe(cost);
    trace_op("4: standalone restart done for " + op->cmd.pod_name,
             op->cmd.op_id, op->span_root);
    op->pod->resume();
    restart_finish(op, Status::ok());
  });
}

void Agent::restart_finish(const std::shared_ptr<RestartOp>& op, Status st) {
  if (op->finished) return;
  op->finished = true;
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op->span_connectivity);
    r->end_at(node_.now(), op->span_netstate);
    r->end_at(node_.now(), op->span_standalone);
    r->end_at(node_.now(), op->span_root);
  }
  if (!st && op->pod != nullptr) {
    (void)destroy_pod(op->cmd.pod_name);  // clean up the partial pod
  }
  RestartDone done;
  done.op_id = op->cmd.op_id;
  done.pod_name = op->cmd.pod_name;
  done.ok = st.is_ok();
  done.error = st.message();
  // Timeouts (stream never arrived, redirects missing) are worth a
  // whole-op retry; decode/protocol errors are not.
  done.transient = !st.is_ok() && st.err() == Err::TIMED_OUT;
  done.total_us = node_.now() - op->t_start;
  done.connectivity_us =
      op->t_conn_done > op->t_start ? op->t_conn_done - op->t_start : 0;
  done.net_restore_us =
      op->t_net_done > op->t_conn_done ? op->t_net_done - op->t_conn_done : 0;
  done.standalone_us =
      op->t_net_done > 0 && node_.now() > op->t_net_done
          ? node_.now() - op->t_net_done
          : 0;
  trace_op("5: restart of " + op->cmd.pod_name +
               (st.is_ok() ? " done" : " FAILED: " + st.to_string()),
           op->cmd.op_id, op->span_root);
  if (op->mgr != nullptr) (void)op->mgr->send(encode_restart_done(done));
}

void Agent::restart_abort(const std::shared_ptr<RestartOp>& op,
                          const std::string& why) {
  // Runs on live AND already-finished restores: a Manager abort means
  // the coordinated restart failed as a whole, so even a pod this agent
  // restored successfully must be torn down.
  if (!op->finished) {
    op->finished = true;
    ZLOG_WARN("agent@" << node_.name() << ": restart of " << op->cmd.pod_name
                       << " aborted: " << why);
    obs::dump_op_failure(rec(), "restart_abort", op->cmd.op_id, who(), why,
                         node_.now());
    if (obs::SpanRecorder* r = rec()) {
      r->end_at(node_.now(), op->span_connectivity);
      r->end_at(node_.now(), op->span_netstate);
      r->end_at(node_.now(), op->span_standalone);
      r->end_at(node_.now(), op->span_root);
    }
    trace_op("abort: " + why, op->cmd.op_id, op->span_root);
  }
  // Drop a parked stream wait belonging to this op.
  for (auto it = waiting_restarts_.begin(); it != waiting_restarts_.end();) {
    if (it->second == op) {
      it = waiting_restarts_.erase(it);
    } else {
      ++it;
    }
  }
  if (op->pod != nullptr) {
    op->connectivity.reset();  // holds references into the pod
    if (find_pod(op->cmd.pod_name) == op->pod) {
      (void)destroy_pod(op->cmd.pod_name);
      trace_op("abort: pod " + op->cmd.pod_name + " torn down",
               op->cmd.op_id, op->span_root);
    }
    op->pod = nullptr;
  }
}

}  // namespace zapc::core
