// Manager ↔ Agent wire protocol.
//
// One typed message per MsgChannel frame.  The message flow implements
// Figures 1 and 3 of the paper:
//
//   checkpoint:  M→A CHECKPOINT_CMD,  A→M META_REPORT,  M→A CONTINUE,
//                A→M CKPT_DONE
//   restart:     M→A RESTART_CMD (with the modified meta-data),
//                A→M RESTART_DONE
//   migration:   A→A STREAM_* (direct checkpoint streaming) and
//                REDIRECT_DATA (send-queue redirect optimization)
//   failure:     M→A / A→M ABORT
//
// Causal tracing: every message belonging to a coordinated operation
// carries the Manager-minted op_id (obs::next_op_id()), and the two
// Manager→Agent commands additionally carry the span id of the
// Manager's root span (`parent_span`) while CONTINUE carries the id of
// the Manager's 'mgr.continue' EVENT (`continue_event`).  Agents stamp
// both onto their own spans/events, which turns the flat per-node
// timelines into one cross-node causal tree (see obs/span.h).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/image.h"
#include "util/serialize.h"

namespace zapc::core {

enum class MsgType : u8 {
  CHECKPOINT_CMD = 1,
  META_REPORT = 2,
  CONTINUE = 3,
  CKPT_DONE = 4,
  RESTART_CMD = 5,
  RESTART_DONE = 6,
  STREAM_OPEN = 7,
  STREAM_CHUNK = 8,
  STREAM_CLOSE = 9,
  REDIRECT_DATA = 10,
  ABORT = 11,
  // Introspection plane (DESIGN.md §9).  Old peers fall through their
  // `default:` arms on these, so mixed versions interoperate.
  HEARTBEAT = 12,
  PROGRESS = 13,
  HEALTH_QUERY = 14,
  HEALTH_SNAPSHOT = 15,
};

/// What happens to the pod after its checkpoint completes (paper §4: "the
/// action taken by the Agent depends on the context of the checkpoint").
enum class CkptMode : u8 {
  SNAPSHOT = 0,  // resume execution on the same node
  MIGRATE = 1,   // destroy the pod; it restarts elsewhere
};

struct CheckpointCmd {
  u64 op_id = 0;       // coordinated-operation id (0 = untraced)
  u32 parent_span = 0; // Manager's root span, for cross-node parenting
  std::string pod_name;
  std::string dest_uri;  // "san://<path>" or "agent://<ip>:<port>/<tag>"
  CkptMode mode = CkptMode::SNAPSHOT;
  bool redirect_send_queues = false;  // migration optimization (paper §5)
  bool fs_snapshot = false;           // take a SAN snapshot of the pod dir
  /// For the redirect optimization: where each peer pod's checkpoint
  /// stream is being received (vip → receiving agent address/tag).
  std::vector<std::pair<net::IpAddr, net::SockAddr>> peer_agents;
  // Appended fields (old peers decode them as defaults).
  /// Incremental mode: emit a delta over the pod's previous SAN image
  /// when one exists; the agent falls back to a full checkpoint when the
  /// chain cap is reached or no usable base exists.
  bool incremental = false;
  u32 chain_cap = 8;     // max deltas before a forced full checkpoint
  u32 codec_flags = 0;   // ckpt::kCodec* bits to encode with
  /// Migration: stream image chunks as serialization produces them
  /// instead of materializing the whole image first.
  bool pipelined = false;
  /// Agent-side barrier watchdog: abort (transiently) if the Manager's
  /// CONTINUE has not arrived this long after the standalone checkpoint
  /// finished.  0 = wait forever.
  u64 barrier_wait_us = 0;
  /// Introspection plane: publish HEARTBEAT/PROGRESS every this many
  /// virtual microseconds while the op runs.  0 = plane off.
  u64 heartbeat_us = 0;
};

struct MetaReport {
  u64 op_id = 0;
  std::string pod_name;
  ckpt::NetMeta meta;
  u64 net_ckpt_us = 0;  // time spent in the network-state checkpoint
};

/// The single synchronization barrier (paper Figure 3): sent to every
/// agent once all meta-data reports are in.  `continue_event` is the id
/// of the Manager's 'mgr.continue' EVENT so each agent's resume records
/// parent under the barrier decision itself.
struct ContinueMsg {
  u64 op_id = 0;
  u32 continue_event = 0;
};

struct CkptDone {
  u64 op_id = 0;
  std::string pod_name;
  bool ok = false;
  std::string error;
  u64 image_bytes = 0;
  u64 network_bytes = 0;
  u64 total_us = 0;  // suspend → done, as seen by the agent
  // Appended fields (old peers decode them as defaults).
  u64 logical_bytes = 0;  // pre-codec, pre-delta state size (0 = unknown)
  u32 delta_seq = 0;      // 0 = full image, N = Nth delta in its chain
  /// Failed for a transient reason (storage hiccup, barrier watchdog):
  /// the Manager may retry the whole operation.
  bool transient = false;
  // Per-phase durations as the agent measured them, for the Manager's op
  // ledger (obs/ledger.h); partial on failure, 0 for unreached phases.
  u64 suspend_us = 0;     // suspend + network blocked
  u64 netckpt_us = 0;     // network-state checkpoint
  u64 standalone_us = 0;  // standalone process image (incl. streaming)
  u64 barrier_us = 0;     // continue-barrier wait + commit + resume
};

struct RestartCmd {
  u64 op_id = 0;
  u32 parent_span = 0;
  std::string pod_name;
  std::string source_uri;  // "san://<path>" or "stream://<tag>"
  ckpt::NetMeta meta;      // modified meta-data with roles + discards
  /// Virtual→real location updates for every participating pod.
  std::vector<std::pair<net::IpAddr, net::IpAddr>> locations;
  // Appended fields (old peers decode them as defaults).
  /// stream:// sources: fail the restart if the checkpoint stream has
  /// not fully arrived this long after the command.  0 = wait forever.
  u64 stream_wait_us = 0;
  /// Introspection plane cadence (see CheckpointCmd).  0 = off.
  u64 heartbeat_us = 0;
};

struct RestartDone {
  u64 op_id = 0;
  std::string pod_name;
  bool ok = false;
  std::string error;
  u64 connectivity_us = 0;
  u64 net_restore_us = 0;
  u64 total_us = 0;
  // Appended fields (old peers decode them as defaults).
  /// Failed for a transient reason (stream deadline): retryable.
  bool transient = false;
  /// Standalone-image restore duration, for the op ledger.
  u64 standalone_us = 0;
};

struct StreamOpen {
  u64 op_id = 0;
  std::string tag;
};
struct StreamChunk {
  std::string tag;
  Bytes data;
};
struct StreamClose {
  std::string tag;
};

/// Send-queue redirect: contents of the sender's send queue shipped
/// directly to the agent receiving the *peer* pod's checkpoint stream.
struct RedirectData {
  u64 op_id = 0;
  net::IpAddr dst_pod_vip;    // the pod whose socket will consume this
  net::SockAddr dst_local;    // that socket's local address
  net::SockAddr dst_remote;   // ... and remote address (the sender)
  u32 sender_acked = 0;       // for overlap discard at the receiver
  Bytes data;
};

struct AbortMsg {
  u64 op_id = 0;
  std::string reason;
};

// ---- Introspection plane (DESIGN.md §9) -------------------------------------

/// Periodic liveness beacon from an agent serving a coordinated op:
/// which phase the pod is in and that the agent is still making
/// progress.  Cadence comes from the command's `heartbeat_us`.
struct HeartbeatMsg {
  u64 op_id = 0;
  std::string pod_name;
  std::string phase;  // innermost open phase ("ckpt.standalone", ...)
  u64 t_us = 0;       // agent's virtual clock at publication
  u32 seq = 0;        // per-op beacon sequence number
};

/// Streaming watermark accompanying a heartbeat while a costed phase is
/// in flight: how far the byte-moving work has progressed and the
/// agent's cost-model ETA (core/cost_model.h).
struct ProgressMsg {
  u64 op_id = 0;
  std::string pod_name;
  std::string phase;
  u64 t_us = 0;
  u64 bytes_done = 0;
  u64 bytes_expected = 0;
  u64 throughput_bps = 0;  // modeled instantaneous throughput
  u64 eta_us = 0;          // remaining virtual time per the cost model
};

/// Status endpoint: any client may ask the Manager for the live
/// ClusterHealth snapshot of one op (0 = latest).
struct HealthQuery {
  u64 op_id = 0;
};

/// Reply: the zapc.obs.health.v1 document, serialized.
struct HealthSnapshotMsg {
  u64 op_id = 0;
  std::string json;
};

// ---- Encoding ----------------------------------------------------------------

Bytes encode_checkpoint_cmd(const CheckpointCmd& m);
Bytes encode_meta_report(const MetaReport& m);
Bytes encode_continue(const ContinueMsg& m = {});
Bytes encode_ckpt_done(const CkptDone& m);
Bytes encode_restart_cmd(const RestartCmd& m);
Bytes encode_restart_done(const RestartDone& m);
Bytes encode_stream_open(const StreamOpen& m);
Bytes encode_stream_chunk(const StreamChunk& m);
Bytes encode_stream_close(const StreamClose& m);
Bytes encode_redirect_data(const RedirectData& m);
Bytes encode_abort(const AbortMsg& m);
Bytes encode_heartbeat(const HeartbeatMsg& m);
Bytes encode_progress(const ProgressMsg& m);
Bytes encode_health_query(const HealthQuery& m = {});
Bytes encode_health_snapshot(const HealthSnapshotMsg& m);

/// Peeks the type of an encoded message.
Result<MsgType> peek_type(const Bytes& msg);

Result<CheckpointCmd> decode_checkpoint_cmd(const Bytes& msg);
Result<MetaReport> decode_meta_report(const Bytes& msg);
Result<ContinueMsg> decode_continue(const Bytes& msg);
Result<CkptDone> decode_ckpt_done(const Bytes& msg);
Result<RestartCmd> decode_restart_cmd(const Bytes& msg);
Result<RestartDone> decode_restart_done(const Bytes& msg);
Result<StreamOpen> decode_stream_open(const Bytes& msg);
Result<StreamChunk> decode_stream_chunk(const Bytes& msg);
Result<StreamClose> decode_stream_close(const Bytes& msg);
Result<RedirectData> decode_redirect_data(const Bytes& msg);
Result<AbortMsg> decode_abort(const Bytes& msg);
Result<HeartbeatMsg> decode_heartbeat(const Bytes& msg);
Result<ProgressMsg> decode_progress(const Bytes& msg);
Result<HealthQuery> decode_health_query(const Bytes& msg);
Result<HealthSnapshotMsg> decode_health_snapshot(const Bytes& msg);

}  // namespace zapc::core
