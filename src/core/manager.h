// Manager: the front-end client orchestrating coordinated checkpoint and
// restart (paper §4).
//
// "A checkpoint is initiated by invoking the Manager with a list of
// tuples of the form «node, pod, URI»."  The Manager broadcasts the
// checkpoint command, collects the per-pod meta-data, issues the single
// 'continue' barrier, and gathers completion reports.  For restart it
// derives the schedule (roles + overlap discards) from the meta-data and
// distributes the modified tables with the restart command.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/protocol.h"
#include "core/schedule.h"
#include "core/trace.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "os/node.h"
#include "util/rng.h"

namespace zapc::core {

class Manager {
 public:
  /// Watchdog deadlines for the phases of a coordinated operation.  Each
  /// is a duration from the phase's start; 0 disables that deadline (wait
  /// forever), which is the default and preserves the old blocking
  /// behaviour.  On expiry the Manager aborts the op, naming the stalled
  /// peers and phase in the failure reason and postmortem.
  struct Deadlines {
    sim::Time connect_us = 0;  // command sent → every channel established
    sim::Time meta_us = 0;     // invocation → all META_REPORTs received
    sim::Time done_us = 0;     // sync point → all CKPT_DONEs received
    sim::Time restart_us = 0;  // invocation → all RESTART_DONEs received
    /// Shipped to agents: abort if CONTINUE hasn't arrived this long
    /// after the local standalone checkpoint finished (a stalled Manager
    /// or peer must not leave a pod suspended forever).
    sim::Time agent_barrier_us = 0;
    /// Shipped to agents: fail a stream:// restart if the checkpoint
    /// stream hasn't fully arrived this long after the command.
    sim::Time agent_stream_us = 0;
  };

  /// Whole-operation retry for *transient* failures (deadline expiry,
  /// lost channel, storage hiccup, agent barrier watchdog).  Disabled by
  /// default.  Retries re-run the entire coordinated op with a fresh
  /// op_id after an exponential, jittered backoff; non-transient failures
  /// (protocol/decode errors) and unsafe retries (a MIGRATE that already
  /// passed the sync point) report failure immediately.
  struct RetryPolicy {
    u32 max_retries = 0;  // extra attempts after the first
    sim::Time backoff_us = 50 * sim::kMillisecond;  // delay before retry 1
    double backoff_factor = 2.0;  // growth per subsequent retry
    double jitter = 0.2;          // ± fraction applied to each delay
  };

  /// «node, pod, URI» tuple: which agent, which pod, where the image goes
  /// (checkpoint) or comes from (restart).  `vip` is optional (0 =
  /// unknown); supplying it lets the send-queue redirect optimization
  /// work on the first checkpoint of a job (otherwise the Manager only
  /// knows pod addresses from a previous checkpoint's meta-data).
  struct Target {
    net::SockAddr agent;
    std::string pod_name;
    std::string uri;
    net::IpAddr vip{};
  };

  struct CheckpointReport {
    bool ok = false;
    std::string error;
    obs::OpId op_id = 0;  // causal-trace id of this coordinated op
    u32 attempts = 1;     // 1 = succeeded/failed without retrying
    std::vector<CkptDone> agents;          // per-pod completion reports
    std::map<std::string, ckpt::NetMeta> metas;  // pod name → meta-data
    sim::Time total_us = 0;     // invocation → all pods reported done
    sim::Time sync_us = 0;      // invocation → continue broadcast (barrier)
    u64 max_image_bytes = 0;    // largest pod image (paper Fig. 6c metric)
    u64 max_network_bytes = 0;
    u64 max_net_ckpt_us = 0;    // slowest network-state checkpoint
  };
  using CheckpointDoneFn = std::function<void(CheckpointReport)>;

  struct RestartReport {
    bool ok = false;
    std::string error;
    obs::OpId op_id = 0;
    u32 attempts = 1;
    std::vector<RestartDone> agents;
    sim::Time total_us = 0;
    u64 max_connectivity_us = 0;
    u64 max_net_restore_us = 0;
  };
  using RestartDoneFn = std::function<void(RestartReport)>;

  explicit Manager(os::Node& node, Trace* trace = nullptr);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Per-checkpoint knobs beyond the target list and mode.
  struct CkptOptions {
    /// Migration send-queue redirect optimization (only meaningful with
    /// CkptMode::MIGRATE and agent:// URIs).
    bool redirect_send_queues = false;
    bool fs_snapshot = false;  // take a SAN snapshot of the pod dir
    /// Incremental checkpoints: agents emit deltas over their previous
    /// SAN image where possible, forcing a full image every `chain_cap`
    /// deltas.
    bool incremental = false;
    u32 chain_cap = 8;
    /// ckpt::kCodec* bits (zero elision / dedup) for the image encoder.
    u32 codec_flags = 0;
    /// Migration: stream image chunks as serialization produces them.
    bool pipelined_stream = false;
    /// Phase watchdogs (all disabled by default).
    Deadlines deadlines;
    /// Whole-op retry on transient failure (disabled by default).
    RetryPolicy retry;
    /// Introspection plane (DESIGN.md §9): agents publish
    /// HEARTBEAT/PROGRESS beacons every this many virtual microseconds
    /// while the op runs.  0 = plane off (no beacon traffic at all).
    sim::Time heartbeat_us = 0;
    /// Early-warning threshold: raise a health.warn trace event (and
    /// count mgr.health.early_warnings) when a pod's projected finish
    /// lags the cluster median by at least this much.  0 = off.
    sim::Time warn_lag_us = 0;
  };

  /// Coordinated checkpoint of all targets.
  void checkpoint(std::vector<Target> targets, CkptMode mode,
                  CheckpointDoneFn done, CkptOptions opts);
  void checkpoint(std::vector<Target> targets, CkptMode mode,
                  CheckpointDoneFn done) {
    checkpoint(std::move(targets), mode, std::move(done), CkptOptions());
  }

  /// Per-restart knobs beyond the target list and meta-data.
  struct RestartOptions {
    Deadlines deadlines;
    RetryPolicy retry;
    /// Introspection plane cadence + early-warning lag (see CkptOptions).
    sim::Time heartbeat_us = 0;
    sim::Time warn_lag_us = 0;
  };

  /// Coordinated restart.  `metas` must hold the checkpoint meta-data per
  /// pod name; pass {} to use the metas cached from the last checkpoint
  /// this Manager ran.
  void restart(std::vector<Target> targets,
               std::map<std::string, ckpt::NetMeta> metas,
               RestartDoneFn done, RestartOptions opts);
  void restart(std::vector<Target> targets,
               std::map<std::string, ckpt::NetMeta> metas,
               RestartDoneFn done) {
    restart(std::move(targets), std::move(metas), std::move(done),
            RestartOptions());
  }

  /// One endpoint of a live migration: which agent currently hosts the
  /// pod, where it should go, and its virtual address.
  struct MigrateTarget {
    net::SockAddr from_agent;
    net::SockAddr to_agent;
    std::string pod_name;
    net::IpAddr vip;
  };

  struct MigrateReport {
    bool ok = false;
    std::string error;
    CheckpointReport checkpoint;
    RestartReport restart;
    sim::Time total_us = 0;
  };
  using MigrateDoneFn = std::function<void(MigrateReport)>;

  struct MigrateOptions {
    /// Stream image chunks to the destination as serialization produces
    /// them (overlapping serialize and transfer) instead of
    /// materializing the full image before the first byte moves.
    bool pipelined_stream = true;
    /// ckpt::kCodec* bits for the streamed image.
    u32 codec_flags = 0;
    /// Applied to both the checkpoint and restart halves.
    Deadlines deadlines;
    RetryPolicy retry;
  };

  /// Live migration in one call (paper §1: "directly stream checkpoint
  /// data from one set of nodes to another"): coordinated MIGRATE
  /// checkpoint with direct agent-to-agent streaming and the send-queue
  /// redirect optimization, followed by the coordinated restart on the
  /// destination agents.
  void migrate(std::vector<MigrateTarget> targets, MigrateDoneFn done,
               MigrateOptions opts);
  void migrate(std::vector<MigrateTarget> targets, MigrateDoneFn done) {
    migrate(std::move(targets), std::move(done), MigrateOptions());
  }

  /// Meta-data cached from the last successful checkpoint.
  const std::map<std::string, ckpt::NetMeta>& last_metas() const {
    return last_metas_;
  }

  bool busy() const { return op_ != nullptr || rop_ != nullptr; }

  // ---- Introspection plane (DESIGN.md §9) ----------------------------------

  /// Live per-pod health aggregated from agent beacons.  Populated only
  /// for ops run with `heartbeat_us > 0`.
  const obs::ClusterHealth& health() const { return health_; }

  /// zapc.obs.health.v1 snapshot of one op (0 = latest), serialized.
  std::string health_json(obs::OpId op = 0) const;

  /// Opens the queryable status endpoint: any client connecting to
  /// `port` on this node may send HEALTH_QUERY and receives a
  /// HEALTH_SNAPSHOT reply with the zapc.obs.health.v1 document
  /// (tools/zapc_top.cpp is the reference client).
  void serve_status(u16 port);

  // ---- Op ledger (DESIGN.md §10) --------------------------------------------

  /// Attaches the append-only run ledger.  Every coordinated op writes
  /// exactly one line per attempt at its terminal path — success,
  /// terminal abort, and the abort preceding a retry (flagged
  /// will_retry) — including the critical-path attribution computed from
  /// the op's span tree when tracing is on.  nullptr detaches.
  void set_ledger(obs::Ledger* ledger) { ledger_ = ledger; }
  obs::Ledger* ledger() const { return ledger_; }

 private:
  struct CkptPeer {
    Target target;
    std::unique_ptr<MsgChannel> ch;
    bool meta_received = false;
    bool done_received = false;
    CkptDone done;
  };
  struct CkptState {
    std::vector<CkptPeer> peers;
    std::vector<Target> targets;  // kept verbatim for retries
    CkptOptions opts;
    CkptMode mode{};
    bool redirect = false;
    u32 attempt = 1;
    sim::Time t_start = 0;
    sim::Time t_sync = 0;
    CheckpointReport report;
    CheckpointDoneFn done_fn;
    bool continued = false;
    bool finished = false;
    obs::OpId op_id = 0;
    obs::SpanId span_root = 0;       // "mgr.ckpt"
    obs::SpanId span_meta_wait = 0;  // invocation → sync point
    obs::SpanId span_done_wait = 0;  // sync point → all done
    sim::EventId connect_deadline = 0;  // 0 = not armed
    sim::EventId phase_deadline = 0;    // meta_wait, then done_wait
  };

  struct RestartPeer {
    Target target;
    std::unique_ptr<MsgChannel> ch;
    bool done_received = false;
    RestartDone done;
  };
  struct RestartState {
    std::vector<RestartPeer> peers;
    std::vector<Target> targets;  // kept verbatim for retries
    /// Per-target modified meta-data (plan output) and the new virtual →
    /// real placement, both reused verbatim on retry.
    std::vector<ckpt::NetMeta> peer_metas;
    std::vector<std::pair<net::IpAddr, net::IpAddr>> locations;
    RestartOptions opts;
    u32 attempt = 1;
    sim::Time t_start = 0;
    RestartReport report;
    RestartDoneFn done_fn;
    bool finished = false;
    obs::OpId op_id = 0;
    obs::SpanId span_root = 0;  // "mgr.restart"
    sim::EventId connect_deadline = 0;  // 0 = not armed
    sim::EventId phase_deadline = 0;    // restart_wait
  };

  /// (Re)starts a checkpoint attempt: creates CkptState from the saved
  /// inputs, then connects and broadcasts the commands.
  void ckpt_begin_attempt(std::vector<Target> targets, CkptMode mode,
                          CkptOptions opts, CheckpointDoneFn done,
                          u32 attempt);
  void ckpt_start();
  void ckpt_on_msg(std::size_t idx, Bytes msg);
  void ckpt_on_closed(std::size_t idx);
  void ckpt_maybe_continue();
  void ckpt_maybe_finish();
  void ckpt_cancel_deadlines();
  void ckpt_deadline_expired(const std::string& phase);
  /// Removes the peers' half-written `<uri>.tmp` objects after an abort.
  void ckpt_gc_tmp();
  void ckpt_fail(const std::string& why, bool transient);

  void restart_begin_attempt(std::vector<Target> targets,
                             std::vector<ckpt::NetMeta> peer_metas,
                             std::vector<std::pair<net::IpAddr, net::IpAddr>>
                                 locations,
                             RestartOptions opts, RestartDoneFn done,
                             u32 attempt);
  void restart_start();
  void restart_on_msg(std::size_t idx, Bytes msg);
  void restart_on_closed(std::size_t idx);
  void restart_maybe_finish();
  void restart_cancel_deadlines();
  void restart_deadline_expired(const std::string& phase);
  void restart_fail(const std::string& why, bool transient);

  /// Backoff delay before retry number `attempt` (1-based), jittered.
  sim::Time retry_delay(const RetryPolicy& p, u32 attempt);

  /// Drains ClusterHealth early warnings into counters + causal-trace
  /// events (under the active op's root span) and the ops trace.
  void health_drain_warnings(obs::OpId op, obs::SpanId root);

  /// Writes the op's ledger line (no-op with no ledger attached).  Must
  /// run after the op's spans are closed — the critical-path attribution
  /// reads the finished tree — and before the op state is reset.
  void ledger_ckpt(const std::string& outcome, const std::string& error,
                   bool transient, bool will_retry);
  void ledger_restart(const std::string& outcome, const std::string& error,
                      bool transient, bool will_retry);
  /// Fills the attribution + straggler half of a ledger entry from the
  /// span stream and live health model; counts attribution failures.
  void ledger_attribute(obs::LedgerEntry& e);
  /// Status-endpoint connection handler (HEALTH_QUERY → HEALTH_SNAPSHOT).
  void status_on_msg(MsgChannel* ch, Bytes msg);

  void trace(const std::string& what);
  /// Causally-tagged trace event for the active coordinated op.
  void trace_op(const std::string& what, obs::OpId op, obs::SpanId parent);
  /// Span stream behind the trace (nullptr when tracing is off).
  obs::SpanRecorder* rec() {
    return trace_ != nullptr ? &trace_->recorder() : nullptr;
  }

  os::Node& node_;
  Trace* trace_;
  std::unique_ptr<CkptState> op_;
  std::unique_ptr<RestartState> rop_;
  std::map<std::string, ckpt::NetMeta> last_metas_;
  bool last_redirect_ = false;  // last checkpoint used the redirect opt.
  // Pods whose destination agents were advertised for the redirect (only
  // their connections have redirect records to wait for at restart).
  std::set<net::IpAddr> last_redirect_covered_;
  /// Jitter source for retry backoff; fixed seed keeps runs reproducible.
  Rng retry_rng_{0x5eedD15Cull};
  /// Live introspection-plane model fed by agent beacons.
  obs::ClusterHealth health_;
  /// Append-only per-op run ledger (not owned); nullptr = off.
  obs::Ledger* ledger_ = nullptr;
  /// Status endpoint (serve_status); connections live until peer close.
  std::unique_ptr<MsgServer> status_server_;
  std::list<std::unique_ptr<MsgChannel>> status_conns_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace zapc::core
