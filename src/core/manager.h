// Manager: the front-end client orchestrating coordinated checkpoint and
// restart (paper §4).
//
// "A checkpoint is initiated by invoking the Manager with a list of
// tuples of the form «node, pod, URI»."  The Manager broadcasts the
// checkpoint command, collects the per-pod meta-data, issues the single
// 'continue' barrier, and gathers completion reports.  For restart it
// derives the schedule (roles + overlap discards) from the meta-data and
// distributes the modified tables with the restart command.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/protocol.h"
#include "core/schedule.h"
#include "core/trace.h"
#include "os/node.h"

namespace zapc::core {

class Manager {
 public:
  /// «node, pod, URI» tuple: which agent, which pod, where the image goes
  /// (checkpoint) or comes from (restart).  `vip` is optional (0 =
  /// unknown); supplying it lets the send-queue redirect optimization
  /// work on the first checkpoint of a job (otherwise the Manager only
  /// knows pod addresses from a previous checkpoint's meta-data).
  struct Target {
    net::SockAddr agent;
    std::string pod_name;
    std::string uri;
    net::IpAddr vip{};
  };

  struct CheckpointReport {
    bool ok = false;
    std::string error;
    obs::OpId op_id = 0;  // causal-trace id of this coordinated op
    std::vector<CkptDone> agents;          // per-pod completion reports
    std::map<std::string, ckpt::NetMeta> metas;  // pod name → meta-data
    sim::Time total_us = 0;     // invocation → all pods reported done
    sim::Time sync_us = 0;      // invocation → continue broadcast (barrier)
    u64 max_image_bytes = 0;    // largest pod image (paper Fig. 6c metric)
    u64 max_network_bytes = 0;
    u64 max_net_ckpt_us = 0;    // slowest network-state checkpoint
  };
  using CheckpointDoneFn = std::function<void(CheckpointReport)>;

  struct RestartReport {
    bool ok = false;
    std::string error;
    obs::OpId op_id = 0;
    std::vector<RestartDone> agents;
    sim::Time total_us = 0;
    u64 max_connectivity_us = 0;
    u64 max_net_restore_us = 0;
  };
  using RestartDoneFn = std::function<void(RestartReport)>;

  explicit Manager(os::Node& node, Trace* trace = nullptr);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Per-checkpoint knobs beyond the target list and mode.
  struct CkptOptions {
    /// Migration send-queue redirect optimization (only meaningful with
    /// CkptMode::MIGRATE and agent:// URIs).
    bool redirect_send_queues = false;
    bool fs_snapshot = false;  // take a SAN snapshot of the pod dir
    /// Incremental checkpoints: agents emit deltas over their previous
    /// SAN image where possible, forcing a full image every `chain_cap`
    /// deltas.
    bool incremental = false;
    u32 chain_cap = 8;
    /// ckpt::kCodec* bits (zero elision / dedup) for the image encoder.
    u32 codec_flags = 0;
    /// Migration: stream image chunks as serialization produces them.
    bool pipelined_stream = false;
  };

  /// Coordinated checkpoint of all targets.
  void checkpoint(std::vector<Target> targets, CkptMode mode,
                  CheckpointDoneFn done, CkptOptions opts);
  void checkpoint(std::vector<Target> targets, CkptMode mode,
                  CheckpointDoneFn done) {
    checkpoint(std::move(targets), mode, std::move(done), CkptOptions());
  }

  /// Coordinated restart.  `metas` must hold the checkpoint meta-data per
  /// pod name; pass {} to use the metas cached from the last checkpoint
  /// this Manager ran.
  void restart(std::vector<Target> targets,
               std::map<std::string, ckpt::NetMeta> metas,
               RestartDoneFn done);

  /// One endpoint of a live migration: which agent currently hosts the
  /// pod, where it should go, and its virtual address.
  struct MigrateTarget {
    net::SockAddr from_agent;
    net::SockAddr to_agent;
    std::string pod_name;
    net::IpAddr vip;
  };

  struct MigrateReport {
    bool ok = false;
    std::string error;
    CheckpointReport checkpoint;
    RestartReport restart;
    sim::Time total_us = 0;
  };
  using MigrateDoneFn = std::function<void(MigrateReport)>;

  struct MigrateOptions {
    /// Stream image chunks to the destination as serialization produces
    /// them (overlapping serialize and transfer) instead of
    /// materializing the full image before the first byte moves.
    bool pipelined_stream = true;
    /// ckpt::kCodec* bits for the streamed image.
    u32 codec_flags = 0;
  };

  /// Live migration in one call (paper §1: "directly stream checkpoint
  /// data from one set of nodes to another"): coordinated MIGRATE
  /// checkpoint with direct agent-to-agent streaming and the send-queue
  /// redirect optimization, followed by the coordinated restart on the
  /// destination agents.
  void migrate(std::vector<MigrateTarget> targets, MigrateDoneFn done,
               MigrateOptions opts);
  void migrate(std::vector<MigrateTarget> targets, MigrateDoneFn done) {
    migrate(std::move(targets), std::move(done), MigrateOptions());
  }

  /// Meta-data cached from the last successful checkpoint.
  const std::map<std::string, ckpt::NetMeta>& last_metas() const {
    return last_metas_;
  }

  bool busy() const { return op_ != nullptr || rop_ != nullptr; }

 private:
  struct CkptPeer {
    Target target;
    std::unique_ptr<MsgChannel> ch;
    bool meta_received = false;
    bool done_received = false;
    CkptDone done;
  };
  struct CkptState {
    std::vector<CkptPeer> peers;
    CkptMode mode{};
    bool redirect = false;
    sim::Time t_start = 0;
    sim::Time t_sync = 0;
    CheckpointReport report;
    CheckpointDoneFn done_fn;
    bool continued = false;
    bool finished = false;
    obs::OpId op_id = 0;
    obs::SpanId span_root = 0;       // "mgr.ckpt"
    obs::SpanId span_meta_wait = 0;  // invocation → sync point
    obs::SpanId span_done_wait = 0;  // sync point → all done
  };

  struct RestartPeer {
    Target target;
    std::unique_ptr<MsgChannel> ch;
    bool done_received = false;
    RestartDone done;
  };
  struct RestartState {
    std::vector<RestartPeer> peers;
    sim::Time t_start = 0;
    RestartReport report;
    RestartDoneFn done_fn;
    bool finished = false;
    obs::OpId op_id = 0;
    obs::SpanId span_root = 0;  // "mgr.restart"
  };

  void ckpt_on_msg(std::size_t idx, Bytes msg);
  void ckpt_on_closed(std::size_t idx);
  void ckpt_maybe_continue();
  void ckpt_maybe_finish();
  void ckpt_fail(const std::string& why);

  void restart_on_msg(std::size_t idx, Bytes msg);
  void restart_on_closed(std::size_t idx);
  void restart_maybe_finish();
  void restart_fail(const std::string& why);

  void trace(const std::string& what);
  /// Causally-tagged trace event for the active coordinated op.
  void trace_op(const std::string& what, obs::OpId op, obs::SpanId parent);
  /// Span stream behind the trace (nullptr when tracing is off).
  obs::SpanRecorder* rec() {
    return trace_ != nullptr ? &trace_->recorder() : nullptr;
  }

  os::Node& node_;
  Trace* trace_;
  std::unique_ptr<CkptState> op_;
  std::unique_ptr<RestartState> rop_;
  std::map<std::string, ckpt::NetMeta> last_metas_;
  bool last_redirect_ = false;  // last checkpoint used the redirect opt.
  // Pods whose destination agents were advertised for the redirect (only
  // their connections have redirect records to wait for at restart).
  std::set<net::IpAddr> last_redirect_covered_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace zapc::core
