#include "core/protocol.h"

namespace zapc::core {
namespace {

Encoder header(MsgType t) {
  Encoder e;
  e.put_u8(static_cast<u8>(t));
  return e;
}

Result<Decoder> open_msg(const Bytes& msg, MsgType expect) {
  Decoder d(msg);
  auto t = d.u8_();
  if (!t) return Status(Err::PROTO, "empty message");
  if (static_cast<MsgType>(t.value()) != expect) {
    return Status(Err::PROTO, "unexpected message type");
  }
  return d;
}

void put_addr(Encoder& e, const net::SockAddr& a) {
  e.put_u32(a.ip.v);
  e.put_u16(a.port);
}

net::SockAddr get_addr(Decoder& d) {
  net::SockAddr a;
  a.ip.v = d.u32_().value_or(0);
  a.port = d.u16_().value_or(0);
  return a;
}

}  // namespace

Result<MsgType> peek_type(const Bytes& msg) {
  if (msg.empty()) return Status(Err::PROTO, "empty message");
  return static_cast<MsgType>(msg[0]);
}

Bytes encode_checkpoint_cmd(const CheckpointCmd& m) {
  Encoder e = header(MsgType::CHECKPOINT_CMD);
  e.put_u64(m.op_id);
  e.put_u32(m.parent_span);
  e.put_string(m.pod_name);
  e.put_string(m.dest_uri);
  e.put_u8(static_cast<u8>(m.mode));
  e.put_bool(m.redirect_send_queues);
  e.put_bool(m.fs_snapshot);
  e.put_u32(static_cast<u32>(m.peer_agents.size()));
  for (const auto& [vip, addr] : m.peer_agents) {
    e.put_u32(vip.v);
    put_addr(e, addr);
  }
  e.put_bool(m.incremental);
  e.put_u32(m.chain_cap);
  e.put_u32(m.codec_flags);
  e.put_bool(m.pipelined);
  e.put_u64(m.barrier_wait_us);
  e.put_u64(m.heartbeat_us);
  return e.take();
}

Result<CheckpointCmd> decode_checkpoint_cmd(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::CHECKPOINT_CMD);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  CheckpointCmd m;
  m.op_id = d.u64_().value_or(0);
  m.parent_span = d.u32_().value_or(0);
  m.pod_name = d.string_().value_or("");
  m.dest_uri = d.string_().value_or("");
  m.mode = static_cast<CkptMode>(d.u8_().value_or(0));
  m.redirect_send_queues = d.bool_().value_or(false);
  m.fs_snapshot = d.bool_().value_or(false);
  u32 n = d.count_(10).value_or(0);
  for (u32 i = 0; i < n; ++i) {
    net::IpAddr vip(d.u32_().value_or(0));
    m.peer_agents.emplace_back(vip, get_addr(d));
  }
  m.incremental = d.bool_().value_or(false);
  m.chain_cap = d.u32_().value_or(8);
  m.codec_flags = d.u32_().value_or(0);
  m.pipelined = d.bool_().value_or(false);
  m.barrier_wait_us = d.u64_().value_or(0);
  m.heartbeat_us = d.u64_().value_or(0);
  return m;
}

Bytes encode_meta_report(const MetaReport& m) {
  Encoder e = header(MsgType::META_REPORT);
  e.put_u64(m.op_id);
  e.put_string(m.pod_name);
  e.put_bytes(ckpt::encode_meta(m.meta));
  e.put_u64(m.net_ckpt_us);
  return e.take();
}

Result<MetaReport> decode_meta_report(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::META_REPORT);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  MetaReport m;
  m.op_id = d.u64_().value_or(0);
  m.pod_name = d.string_().value_or("");
  auto meta = ckpt::decode_meta(d.bytes_().value_or({}));
  if (!meta) return meta.status();
  m.meta = std::move(meta).value();
  m.net_ckpt_us = d.u64_().value_or(0);
  return m;
}

Bytes encode_continue(const ContinueMsg& m) {
  Encoder e = header(MsgType::CONTINUE);
  e.put_u64(m.op_id);
  e.put_u32(m.continue_event);
  return e.take();
}

Result<ContinueMsg> decode_continue(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::CONTINUE);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  ContinueMsg m;
  m.op_id = d.u64_().value_or(0);
  m.continue_event = d.u32_().value_or(0);
  return m;
}

Bytes encode_ckpt_done(const CkptDone& m) {
  Encoder e = header(MsgType::CKPT_DONE);
  e.put_u64(m.op_id);
  e.put_string(m.pod_name);
  e.put_bool(m.ok);
  e.put_string(m.error);
  e.put_u64(m.image_bytes);
  e.put_u64(m.network_bytes);
  e.put_u64(m.total_us);
  e.put_u64(m.logical_bytes);
  e.put_u32(m.delta_seq);
  e.put_bool(m.transient);
  e.put_u64(m.suspend_us);
  e.put_u64(m.netckpt_us);
  e.put_u64(m.standalone_us);
  e.put_u64(m.barrier_us);
  return e.take();
}

Result<CkptDone> decode_ckpt_done(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::CKPT_DONE);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  CkptDone m;
  m.op_id = d.u64_().value_or(0);
  m.pod_name = d.string_().value_or("");
  m.ok = d.bool_().value_or(false);
  m.error = d.string_().value_or("");
  m.image_bytes = d.u64_().value_or(0);
  m.network_bytes = d.u64_().value_or(0);
  m.total_us = d.u64_().value_or(0);
  m.logical_bytes = d.u64_().value_or(0);
  m.delta_seq = d.u32_().value_or(0);
  m.transient = d.bool_().value_or(false);
  m.suspend_us = d.u64_().value_or(0);
  m.netckpt_us = d.u64_().value_or(0);
  m.standalone_us = d.u64_().value_or(0);
  m.barrier_us = d.u64_().value_or(0);
  return m;
}

Bytes encode_restart_cmd(const RestartCmd& m) {
  Encoder e = header(MsgType::RESTART_CMD);
  e.put_u64(m.op_id);
  e.put_u32(m.parent_span);
  e.put_string(m.pod_name);
  e.put_string(m.source_uri);
  e.put_bytes(ckpt::encode_meta(m.meta));
  e.put_u32(static_cast<u32>(m.locations.size()));
  for (const auto& [vip, real] : m.locations) {
    e.put_u32(vip.v);
    e.put_u32(real.v);
  }
  e.put_u64(m.stream_wait_us);
  e.put_u64(m.heartbeat_us);
  return e.take();
}

Result<RestartCmd> decode_restart_cmd(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::RESTART_CMD);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  RestartCmd m;
  m.op_id = d.u64_().value_or(0);
  m.parent_span = d.u32_().value_or(0);
  m.pod_name = d.string_().value_or("");
  m.source_uri = d.string_().value_or("");
  auto meta = ckpt::decode_meta(d.bytes_().value_or({}));
  if (!meta) return meta.status();
  m.meta = std::move(meta).value();
  u32 n = d.count_(8).value_or(0);
  for (u32 i = 0; i < n; ++i) {
    net::IpAddr vip(d.u32_().value_or(0));
    net::IpAddr real(d.u32_().value_or(0));
    m.locations.emplace_back(vip, real);
  }
  m.stream_wait_us = d.u64_().value_or(0);
  m.heartbeat_us = d.u64_().value_or(0);
  return m;
}

Bytes encode_restart_done(const RestartDone& m) {
  Encoder e = header(MsgType::RESTART_DONE);
  e.put_u64(m.op_id);
  e.put_string(m.pod_name);
  e.put_bool(m.ok);
  e.put_string(m.error);
  e.put_u64(m.connectivity_us);
  e.put_u64(m.net_restore_us);
  e.put_u64(m.total_us);
  e.put_bool(m.transient);
  e.put_u64(m.standalone_us);
  return e.take();
}

Result<RestartDone> decode_restart_done(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::RESTART_DONE);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  RestartDone m;
  m.op_id = d.u64_().value_or(0);
  m.pod_name = d.string_().value_or("");
  m.ok = d.bool_().value_or(false);
  m.error = d.string_().value_or("");
  m.connectivity_us = d.u64_().value_or(0);
  m.net_restore_us = d.u64_().value_or(0);
  m.total_us = d.u64_().value_or(0);
  m.transient = d.bool_().value_or(false);
  m.standalone_us = d.u64_().value_or(0);
  return m;
}

Bytes encode_stream_open(const StreamOpen& m) {
  Encoder e = header(MsgType::STREAM_OPEN);
  e.put_u64(m.op_id);
  e.put_string(m.tag);
  return e.take();
}

Result<StreamOpen> decode_stream_open(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::STREAM_OPEN);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  StreamOpen m;
  m.op_id = d.u64_().value_or(0);
  m.tag = d.string_().value_or("");
  return m;
}

Bytes encode_stream_chunk(const StreamChunk& m) {
  Encoder e = header(MsgType::STREAM_CHUNK);
  e.put_string(m.tag);
  e.put_bytes(m.data);
  return e.take();
}

Result<StreamChunk> decode_stream_chunk(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::STREAM_CHUNK);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  StreamChunk m;
  m.tag = d.string_().value_or("");
  m.data = d.bytes_().value_or({});
  return m;
}

Bytes encode_stream_close(const StreamClose& m) {
  Encoder e = header(MsgType::STREAM_CLOSE);
  e.put_string(m.tag);
  return e.take();
}

Result<StreamClose> decode_stream_close(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::STREAM_CLOSE);
  if (!dr) return dr.status();
  StreamClose m;
  m.tag = dr.value().string_().value_or("");
  return m;
}

Bytes encode_redirect_data(const RedirectData& m) {
  Encoder e = header(MsgType::REDIRECT_DATA);
  e.put_u64(m.op_id);
  e.put_u32(m.dst_pod_vip.v);
  put_addr(e, m.dst_local);
  put_addr(e, m.dst_remote);
  e.put_u32(m.sender_acked);
  e.put_bytes(m.data);
  return e.take();
}

Result<RedirectData> decode_redirect_data(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::REDIRECT_DATA);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  RedirectData m;
  m.op_id = d.u64_().value_or(0);
  m.dst_pod_vip.v = d.u32_().value_or(0);
  m.dst_local = get_addr(d);
  m.dst_remote = get_addr(d);
  m.sender_acked = d.u32_().value_or(0);
  m.data = d.bytes_().value_or({});
  return m;
}

Bytes encode_abort(const AbortMsg& m) {
  Encoder e = header(MsgType::ABORT);
  e.put_u64(m.op_id);
  e.put_string(m.reason);
  return e.take();
}

Result<AbortMsg> decode_abort(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::ABORT);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  AbortMsg m;
  m.op_id = d.u64_().value_or(0);
  m.reason = d.string_().value_or("");
  return m;
}

Bytes encode_heartbeat(const HeartbeatMsg& m) {
  Encoder e = header(MsgType::HEARTBEAT);
  e.put_u64(m.op_id);
  e.put_string(m.pod_name);
  e.put_string(m.phase);
  e.put_u64(m.t_us);
  e.put_u32(m.seq);
  return e.take();
}

Result<HeartbeatMsg> decode_heartbeat(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::HEARTBEAT);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  HeartbeatMsg m;
  m.op_id = d.u64_().value_or(0);
  m.pod_name = d.string_().value_or("");
  m.phase = d.string_().value_or("");
  m.t_us = d.u64_().value_or(0);
  m.seq = d.u32_().value_or(0);
  return m;
}

Bytes encode_progress(const ProgressMsg& m) {
  Encoder e = header(MsgType::PROGRESS);
  e.put_u64(m.op_id);
  e.put_string(m.pod_name);
  e.put_string(m.phase);
  e.put_u64(m.t_us);
  e.put_u64(m.bytes_done);
  e.put_u64(m.bytes_expected);
  e.put_u64(m.throughput_bps);
  e.put_u64(m.eta_us);
  return e.take();
}

Result<ProgressMsg> decode_progress(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::PROGRESS);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  ProgressMsg m;
  m.op_id = d.u64_().value_or(0);
  m.pod_name = d.string_().value_or("");
  m.phase = d.string_().value_or("");
  m.t_us = d.u64_().value_or(0);
  m.bytes_done = d.u64_().value_or(0);
  m.bytes_expected = d.u64_().value_or(0);
  m.throughput_bps = d.u64_().value_or(0);
  m.eta_us = d.u64_().value_or(0);
  return m;
}

Bytes encode_health_query(const HealthQuery& m) {
  Encoder e = header(MsgType::HEALTH_QUERY);
  e.put_u64(m.op_id);
  return e.take();
}

Result<HealthQuery> decode_health_query(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::HEALTH_QUERY);
  if (!dr) return dr.status();
  HealthQuery m;
  m.op_id = dr.value().u64_().value_or(0);
  return m;
}

Bytes encode_health_snapshot(const HealthSnapshotMsg& m) {
  Encoder e = header(MsgType::HEALTH_SNAPSHOT);
  e.put_u64(m.op_id);
  e.put_string(m.json);
  return e.take();
}

Result<HealthSnapshotMsg> decode_health_snapshot(const Bytes& msg) {
  auto dr = open_msg(msg, MsgType::HEALTH_SNAPSHOT);
  if (!dr) return dr.status();
  Decoder& d = dr.value();
  HealthSnapshotMsg m;
  m.op_id = d.u64_().value_or(0);
  m.json = d.string_().value_or("");
  return m;
}

}  // namespace zapc::core
