// Agent: the per-node ZapC service (paper §4).
//
// "The Agents receive these commands and carry them out on their local
// nodes."  An Agent hosts pods, executes the local checkpoint procedure
// (suspend → block network → network-state checkpoint → report meta-data
// → standalone checkpoint → barrier → resume/destroy) and the local
// restart procedure (create pod → recover connectivity → restore network
// state → standalone restart → resume), receives directly streamed
// checkpoint images from peer agents, and collects redirected send-queue
// data for the migration optimization.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "ckpt/image.h"
#include "ckpt/standalone.h"
#include "core/channel.h"
#include "core/connectivity.h"
#include "core/cost_model.h"
#include "core/protocol.h"
#include "core/trace.h"
#include "os/node.h"
#include "pod/pod.h"

namespace zapc::core {

/// Order of the two checkpoint phases.  The paper argues for
/// NETWORK_FIRST: reporting meta-data early lets the standalone
/// checkpoint overlap the Manager barrier (Figure 2).  NETWORK_LAST
/// exists for the ablation benchmark.
enum class CkptOrdering : u8 { NETWORK_FIRST, NETWORK_LAST };

class Agent {
 public:
  static constexpr u16 kDefaultPort = 7077;

  explicit Agent(os::Node& node, u16 port = kDefaultPort,
                 CostModel costs = {}, Trace* trace = nullptr);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Control endpoint of this agent (real node address + port).
  net::SockAddr addr() const;
  os::Node& node() { return node_; }

  // ---- Pod hosting ---------------------------------------------------------
  pod::Pod& create_pod(net::IpAddr vip, const std::string& name);
  pod::Pod* find_pod(const std::string& name);
  Status destroy_pod(const std::string& name);
  std::size_t pod_count() const { return pods_.size(); }

  /// Whether any checkpoint/restart operation is currently in flight.
  bool busy() const;

  /// Checkpoint phase ordering (ablation hook; default NETWORK_FIRST).
  void set_ordering(CkptOrdering o) { ordering_ = o; }
  CkptOrdering ordering() const { return ordering_; }

 private:
  /// Introspection-plane watermark for the phase currently in flight:
  /// what the next HEARTBEAT/PROGRESS beacon reports (DESIGN.md §9).
  /// `end` is the projected completion instant with the injected
  /// slow-node multiplier applied, so a straggler's ETA is honest.
  struct Watermark {
    std::string phase;   // innermost phase name ("ckpt.standalone", ...)
    sim::Time start = 0; // when the costed wait began
    sim::Time end = 0;   // projected completion (0 = control phase)
    u64 bytes = 0;       // bytes this phase moves (0 = control phase)
    void enter(std::string p, sim::Time s = 0, sim::Time e = 0, u64 b = 0) {
      phase = std::move(p);
      start = s;
      end = e;
      bytes = b;
    }
  };

  struct CkptOp {
    CheckpointCmd cmd;
    MsgChannel* mgr = nullptr;
    sim::Time t_start = 0;
    sim::Time t_standalone_done = 0;
    ckpt::PodImage image;
    Bytes encoded_image;
    std::vector<RedirectData> redirects;  // to ship to peer agents
    u64 queued_bytes = 0;
    bool continue_received = false;
    bool standalone_done = false;
    bool finished = false;
    bool aborted = false;
    // Incremental / streaming bookkeeping.
    bool is_delta = false;   // this image is a delta over the prior one
    u64 logical_bytes = 0;   // full pre-codec state size (all regions)
    bool delivered = false;  // image already shipped (pipelined stream)
    // Two-phase SAN commit: the image is staged at `san_tmp` during the
    // standalone phase and renamed to `san_final` only after the
    // continue barrier, so an abort never clobbers the last good image.
    std::string san_tmp;
    std::string san_final;
    // Id of the Manager's 'mgr.continue' EVENT (from the CONTINUE
    // message): the cross-node parent of this agent's resume records.
    obs::SpanId continue_event = 0;
    // Phase spans (Figure 2 breakdown); 0 when tracing is off.
    obs::SpanId span_root = 0;        // "ckpt"
    obs::SpanId span_suspend = 0;     // "ckpt.suspend"
    obs::SpanId span_netckpt = 0;     // "ckpt.netckpt"
    obs::SpanId span_standalone = 0;  // "ckpt.standalone"
    obs::SpanId span_stream = 0;      // "ckpt.stream" (pipelined delivery)
    obs::SpanId span_barrier = 0;     // "ckpt.barrier"
    // Introspection plane (cmd.heartbeat_us > 0).
    Watermark wm;
    u32 hb_seq = 0;  // beacons published so far
    // Per-phase durations as measured (shipped in CKPT_DONE for the
    // Manager's op ledger); 0 for phases not reached.
    u64 suspend_us = 0;
    u64 netckpt_us = 0;
    u64 standalone_us = 0;
  };

  struct RestartOp {
    RestartCmd cmd;
    MsgChannel* mgr = nullptr;
    sim::Time t_start = 0;
    sim::Time t_conn_done = 0;
    sim::Time t_net_done = 0;
    ckpt::PodImage image;
    pod::Pod* pod = nullptr;
    std::unique_ptr<ConnectivityRestore> connectivity;
    ckpt::SockMap socks;
    bool finished = false;
    obs::SpanId span_root = 0;          // "restart"
    obs::SpanId span_connectivity = 0;  // "restart.connectivity"
    obs::SpanId span_netstate = 0;      // "restart.netstate"
    obs::SpanId span_standalone = 0;    // "restart.standalone"
    // Introspection plane (cmd.heartbeat_us > 0).
    Watermark wm;
    u32 hb_seq = 0;
  };

  struct Conn {
    std::unique_ptr<MsgChannel> ch;
    std::shared_ptr<CkptOp> ckpt;
    std::shared_ptr<RestartOp> restart;
    bool dead = false;
  };

  void on_accept(std::unique_ptr<MsgChannel> ch);
  void on_msg(Conn* conn, Bytes msg);
  void on_closed(Conn* conn);
  void reap_conns();

  // Checkpoint phases (Figure 1, agent side).
  void ckpt_begin(Conn* conn, CheckpointCmd cmd);
  void ckpt_network(const std::shared_ptr<CkptOp>& op);
  void ckpt_standalone(const std::shared_ptr<CkptOp>& op);
  // NETWORK_LAST ablation path: standalone state first, network last.
  void ckpt_standalone_pre(const std::shared_ptr<CkptOp>& op);
  void ckpt_network_post(const std::shared_ptr<CkptOp>& op);
  void ckpt_standalone_done(const std::shared_ptr<CkptOp>& op);
  void ckpt_maybe_finish(const std::shared_ptr<CkptOp>& op);
  /// `transient` marks failures the Manager may safely retry (storage
  /// hiccup, barrier watchdog) in the CKPT_DONE report.
  void ckpt_abort(const std::shared_ptr<CkptOp>& op, const std::string& why,
                  bool transient = false);
  void deliver_image(const std::shared_ptr<CkptOp>& op);
  /// Captures header + processes into op->image, deciding full vs delta
  /// from the command and this agent's per-pod incremental state.
  void capture_standalone(const std::shared_ptr<CkptOp>& op, pod::Pod& pod);
  /// Pipelined delivery for agent:// destinations: schedules each chunk's
  /// send at the virtual time its serialization slice completes, so the
  /// wire transfer overlaps serialization instead of following it.
  void ckpt_stream(const std::shared_ptr<CkptOp>& op,
                   const net::SockAddr& endpoint, const std::string& tag);
  /// Ships redirected send queues to the peers' receiving agents
  /// (migration optimization); `raw` is the already-open stream channel.
  void ship_redirects(const std::shared_ptr<CkptOp>& op, MsgChannel* raw,
                      const net::SockAddr& stream_endpoint);

  // Restart phases (Figure 3, agent side).
  void restart_begin(Conn* conn, RestartCmd cmd);
  void restart_with_image(const std::shared_ptr<RestartOp>& op,
                          Bytes image_bytes);
  void restart_connectivity_done(const std::shared_ptr<RestartOp>& op,
                                 Status st, ckpt::SockMap map);
  void restart_wait_redirects(const std::shared_ptr<RestartOp>& op,
                              sim::Time waited);
  void restart_net_state(const std::shared_ptr<RestartOp>& op);
  void restart_standalone(const std::shared_ptr<RestartOp>& op);
  void restart_finish(const std::shared_ptr<RestartOp>& op, Status st);
  /// Manager-initiated teardown: a failed *coordinated* restart means
  /// even a pod this agent restored successfully must be destroyed
  /// (mirror of the checkpoint abort).
  void restart_abort(const std::shared_ptr<RestartOp>& op,
                     const std::string& why);

  // Introspection plane: periodic HEARTBEAT/PROGRESS beacons while an
  // op runs, stamped into the causal trace under the op's root span.
  void ckpt_beacon(const std::shared_ptr<CkptOp>& op);
  void restart_beacon(const std::shared_ptr<RestartOp>& op);
  void publish_beacon(MsgChannel* mgr, obs::OpId op_id,
                      const std::string& pod, u32 seq, const Watermark& wm,
                      obs::SpanId parent);

  /// Consults the fault injector for a crash-at-phase fault.  On a hit
  /// the agent "dies": the node detaches from the fabric and every
  /// pending callback of this agent is dropped.  Returns true if the
  /// caller should stop immediately.
  bool fault_crashed(const char* phase);

  void trace(const std::string& what);
  /// Causally-tagged trace event for a coordinated op this agent serves.
  void trace_op(const std::string& what, obs::OpId op, obs::SpanId parent);
  /// Span stream behind the trace (nullptr when tracing is off).
  obs::SpanRecorder* rec() {
    return trace_ != nullptr ? &trace_->recorder() : nullptr;
  }
  /// Causal-trace context for handing down into filter/TCP/netckpt.
  obs::ObsTag tag(obs::OpId op, obs::SpanId parent);
  std::string who() const { return "agent@" + node_.name(); }
  /// Applies the injected SLOW_NODE cost multiplier (fault/fault.h) to a
  /// modeled delay; identity when no fault is armed.
  sim::Time slowdown(sim::Time delay) const;
  template <typename Fn>
  void after(sim::Time delay, Fn&& fn);

  os::Node& node_;
  u16 port_;
  CostModel costs_;
  Trace* trace_;
  CkptOrdering ordering_ = CkptOrdering::NETWORK_FIRST;
  bool crashed_ = false;  // injected crash: this agent runs nothing more
  std::unique_ptr<MsgServer> server_;
  std::list<Conn> conns_;

  std::map<std::string, std::unique_ptr<pod::Pod>> pods_;

  // Incremental checkpoint chain state, per pod.  `base` holds the
  // region generations of the most recent image so the next delta knows
  // what the chain already contains; `chain_uris` guards against a delta
  // overwriting one of its own ancestors on the SAN.
  struct IncrState {
    std::string last_uri;            // URI of the most recent image
    std::set<std::string> chain_uris;  // SAN paths of the current chain
    u32 chain_len = 0;               // deltas since the last full image
    u32 delta_seq = 0;
    ckpt::DeltaBaseline base;
    bool valid = false;
  };
  std::map<std::string, IncrState> incr_;

  // Streamed checkpoint images (direct migration) by tag.
  struct Stream {
    Bytes data;
    bool complete = false;
    obs::OpId op_id = 0;  // Operation that opened the stream.
  };
  std::map<std::string, Stream> streams_;
  // Restarts waiting for a stream to finish arriving.
  std::map<std::string, std::shared_ptr<RestartOp>> waiting_restarts_;

  // Redirected send-queue data awaiting restore.
  std::vector<RedirectData> redirects_;

  // Outbound agent→agent channels (streaming / redirect).
  std::list<std::unique_ptr<MsgChannel>> out_channels_;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace zapc::core
