#include "core/manager.h"

#include <algorithm>

#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/vtime.h"
#include "util/log.h"

namespace zapc::core {

Manager::Manager(os::Node& node, Trace* trace)
    : node_(node), trace_(trace) {
  // Touch the failure-handling counters up front so metric exports (bench
  // JSON, postmortems) always carry them, even at zero.
  obs::metrics().counter("mgr.ckpt.retries");
  obs::metrics().counter("mgr.restart.retries");
  obs::metrics().counter("mgr.phase.deadline_expired");
  obs::metrics().counter("ckpt.commit.committed");
  obs::metrics().counter("ckpt.commit.gc_tmp");
  obs::metrics().counter("fault.injected");
  obs::metrics().counter("mgr.hb.received");
  obs::metrics().counter("mgr.progress.received");
  obs::metrics().counter("mgr.health.early_warnings");
  obs::metrics().counter("mgr.ledger.appends");
  obs::metrics().counter("mgr.ledger.attrib_failures");
}

Manager::~Manager() { *alive_ = false; }

void Manager::trace(const std::string& what) {
  if (trace_ != nullptr) trace_->add(node_.now(), "manager", what);
}

void Manager::trace_op(const std::string& what, obs::OpId op,
                       obs::SpanId parent) {
  if (trace_ != nullptr) {
    trace_->add(node_.now(), "manager", what, parent, op);
  }
}

// ---- Op ledger (DESIGN.md §10) ----------------------------------------------

void Manager::ledger_attribute(obs::LedgerEntry& e) {
  obs::SpanRecorder* r = rec();
  if (r == nullptr) return;  // tracing off: no tree to attribute
  auto attrib = obs::attribute_op(r->spans(), e.op);
  if (!attrib.is_ok()) {
    obs::metrics().counter("mgr.ledger.attrib_failures").inc();
    return;
  }
  e.attrib = std::move(attrib).value();
  e.has_attrib = true;
}

void Manager::ledger_ckpt(const std::string& outcome,
                          const std::string& error, bool transient,
                          bool will_retry) {
  if (ledger_ == nullptr || op_ == nullptr) return;
  obs::LedgerEntry e;
  e.op = op_->op_id;
  e.kind = "ckpt";
  e.outcome = outcome;
  e.error = error;
  e.transient = transient;
  e.will_retry = will_retry;
  e.attempt = op_->attempt;
  e.start_us = op_->t_start;
  e.end_us = node_.now();
  e.downtime_us = node_.now() - op_->t_start;
  for (const CkptPeer& p : op_->peers) {
    if (!p.done_received) continue;
    e.pods++;
    e.image_bytes = std::max(e.image_bytes, p.done.image_bytes);
    e.network_bytes = std::max(e.network_bytes, p.done.network_bytes);
    e.logical_bytes = std::max(e.logical_bytes, p.done.logical_bytes);
    // Slowest pod per phase: the ledger's no-tracing attribution floor.
    auto slowest = [&](const char* name, u64 us) {
      if (us > 0) {
        e.phase_us[name] = std::max(e.phase_us[name], obs::Time{us});
      }
    };
    slowest("suspend", p.done.suspend_us);
    slowest("netckpt", p.done.netckpt_us);
    slowest("standalone", p.done.standalone_us);
    slowest("barrier", p.done.barrier_us);
  }
  obs::Straggler s = health_.straggler(op_->op_id);
  e.straggler_pod = s.pod;
  e.straggler_phase = s.phase;
  e.straggler_lag_us = s.lag_us;
  ledger_attribute(e);
  obs::metrics().counter("mgr.ledger.appends").inc();
  if (Status st = ledger_->append(e); !st) {
    ZLOG_WARN("manager: ledger append failed: " << st.to_string());
  }
}

void Manager::ledger_restart(const std::string& outcome,
                             const std::string& error, bool transient,
                             bool will_retry) {
  if (ledger_ == nullptr || rop_ == nullptr) return;
  obs::LedgerEntry e;
  e.op = rop_->op_id;
  e.kind = "restart";
  e.outcome = outcome;
  e.error = error;
  e.transient = transient;
  e.will_retry = will_retry;
  e.attempt = rop_->attempt;
  e.start_us = rop_->t_start;
  e.end_us = node_.now();
  e.downtime_us = node_.now() - rop_->t_start;
  for (const RestartPeer& p : rop_->peers) {
    if (!p.done_received) continue;
    e.pods++;
    auto slowest = [&](const char* name, u64 us) {
      if (us > 0) {
        e.phase_us[name] = std::max(e.phase_us[name], obs::Time{us});
      }
    };
    slowest("connectivity", p.done.connectivity_us);
    slowest("netstate", p.done.net_restore_us);
    slowest("standalone", p.done.standalone_us);
  }
  obs::Straggler s = health_.straggler(rop_->op_id);
  e.straggler_pod = s.pod;
  e.straggler_phase = s.phase;
  e.straggler_lag_us = s.lag_us;
  ledger_attribute(e);
  obs::metrics().counter("mgr.ledger.appends").inc();
  if (Status st = ledger_->append(e); !st) {
    ZLOG_WARN("manager: ledger append failed: " << st.to_string());
  }
}

sim::Time Manager::retry_delay(const RetryPolicy& p, u32 attempt) {
  double d = static_cast<double>(p.backoff_us);
  for (u32 i = 1; i < attempt; ++i) d *= p.backoff_factor;
  d *= 1.0 + p.jitter * (2.0 * retry_rng_.uniform() - 1.0);
  return d < 1.0 ? 1 : static_cast<sim::Time>(d);
}

// ---- Introspection plane (DESIGN.md §9) -------------------------------------

std::string Manager::health_json(obs::OpId op) const {
  return health_.snapshot(node_.now(), op).dump(2);
}

void Manager::serve_status(u16 port) {
  status_server_ = std::make_unique<MsgServer>(
      node_.host_stack(), port, [this](std::unique_ptr<MsgChannel> ch) {
        status_conns_.push_back(std::move(ch));
        MsgChannel* raw = status_conns_.back().get();
        raw->set_on_msg(
            [this, raw, alive = std::weak_ptr<bool>(alive_)](Bytes msg) {
              if (auto a = alive.lock(); a && *a) {
                status_on_msg(raw, std::move(msg));
              }
            });
        raw->set_on_closed([this, raw, alive = std::weak_ptr<bool>(alive_)] {
          if (auto a = alive.lock(); !a || !*a) return;
          for (auto it = status_conns_.begin(); it != status_conns_.end();
               ++it) {
            if (it->get() == raw) {
              status_conns_.erase(it);
              break;
            }
          }
        });
      });
}

void Manager::status_on_msg(MsgChannel* ch, Bytes msg) {
  auto type = peek_type(msg);
  if (!type || type.value() != MsgType::HEALTH_QUERY) return;
  auto q = decode_health_query(msg);
  if (!q) return;
  obs::OpId op =
      q.value().op_id != 0 ? q.value().op_id : health_.latest_op();
  HealthSnapshotMsg reply;
  reply.op_id = op;
  reply.json = health_.snapshot(node_.now(), op).dump();
  (void)ch->send(encode_health_snapshot(reply));
}

void Manager::health_drain_warnings(obs::OpId op, obs::SpanId root) {
  for (const obs::HealthWarning& w : health_.take_warnings()) {
    obs::metrics().counter("mgr.health.early_warnings").inc();
    std::string what = "health.warn pod=" + w.pod + " phase=" + w.phase;
    if (w.what == "lag") {
      what += " lag=" + obs::vtime_us(w.lag_us);
    } else {
      what += " hb_age=" + obs::vtime_us(w.age_us);
    }
    trace_op(what, op, root);
  }
}

// ---- Checkpoint -----------------------------------------------------------------

void Manager::checkpoint(std::vector<Target> targets, CkptMode mode,
                         CheckpointDoneFn done, CkptOptions opts) {
  if (op_ != nullptr) {
    CheckpointReport r;
    r.error = "manager busy";
    done(std::move(r));
    return;
  }
  ckpt_begin_attempt(std::move(targets), mode, std::move(opts),
                     std::move(done), 1);
}

void Manager::ckpt_begin_attempt(std::vector<Target> targets, CkptMode mode,
                                 CkptOptions opts, CheckpointDoneFn done,
                                 u32 attempt) {
  op_ = std::make_unique<CkptState>();
  op_->targets = std::move(targets);
  op_->opts = std::move(opts);
  op_->mode = mode;
  op_->redirect =
      op_->opts.redirect_send_queues && mode == CkptMode::MIGRATE;
  op_->attempt = attempt;
  op_->t_start = node_.now();
  op_->done_fn = std::move(done);
  op_->op_id = obs::next_op_id();
  obs::metrics().counter("mgr.ops_started").inc();
  if (obs::SpanRecorder* r = rec()) {
    op_->span_root =
        r->begin_at(op_->t_start, "mgr.ckpt", "manager", 0, op_->op_id);
    op_->span_meta_wait = r->begin_at(op_->t_start, "mgr.ckpt.meta_wait",
                                      "manager", op_->span_root, op_->op_id);
  }
  if (op_->opts.heartbeat_us > 0) {
    // Stale = three missed beacons; a slow node's dilated cadence still
    // fits (it reports, just late), a dead one does not.
    health_.set_policy(obs::ClusterHealth::Policy{
        op_->opts.warn_lag_us, 3 * op_->opts.heartbeat_us});
    std::vector<std::string> pods;
    for (const Target& t : op_->targets) pods.push_back(t.pod_name);
    health_.op_begin(op_->op_id, "ckpt", op_->t_start, pods);
  }
  ckpt_start();
}

void Manager::ckpt_start() {
  // For the redirect optimization, every agent needs to know which agent
  // receives each peer pod's checkpoint stream: (vip -> endpoint) pairs
  // derived from targets with agent:// URIs.  The vip comes from the
  // target itself when supplied, otherwise from the previous checkpoint's
  // meta-data.  Pods whose vip cannot be determined are simply not
  // covered — their connections fall back to the normal send-queue
  // resend.
  std::vector<std::pair<net::IpAddr, net::SockAddr>> peer_agents;
  last_redirect_covered_.clear();
  if (op_->redirect) {
    for (const Target& t : op_->targets) {
      net::IpAddr vip = t.vip;
      if (vip.is_any()) {
        auto it = last_metas_.find(t.pod_name);
        if (it != last_metas_.end()) vip = it->second.pod_vip;
      }
      if (vip.is_any()) continue;
      if (t.uri.rfind("agent://", 0) != 0) continue;
      std::string rest = t.uri.substr(8);
      auto slash = rest.find('/');
      auto colon = rest.find(':');
      if (slash == std::string::npos || colon == std::string::npos ||
          colon > slash) {
        continue;
      }
      auto ip = net::IpAddr::parse(rest.substr(0, colon));
      if (!ip) continue;
      net::SockAddr ep{ip.value(),
                       static_cast<u16>(std::stoul(
                           rest.substr(colon + 1, slash - colon - 1)))};
      peer_agents.emplace_back(vip, ep);
      last_redirect_covered_.insert(vip);
    }
  }

  trace_op("1: send 'checkpoint' to " +
               std::to_string(op_->targets.size()) + " agents",
           op_->op_id, op_->span_root);
  op_->peers.reserve(op_->targets.size());
  for (const Target& t : op_->targets) {
    CkptPeer peer;
    peer.target = t;
    peer.ch = connect_channel(node_.host_stack(), t.agent);
    op_->peers.push_back(std::move(peer));
  }
  for (std::size_t i = 0; i < op_->peers.size(); ++i) {
    CkptPeer& peer = op_->peers[i];
    if (peer.ch == nullptr) {
      ckpt_fail("cannot connect to agent " + peer.target.agent.to_string(),
                /*transient=*/true);
      return;
    }
    peer.ch->set_on_msg(
        [this, i, alive = std::weak_ptr<bool>(alive_)](Bytes msg) {
          if (auto a = alive.lock(); a && *a) ckpt_on_msg(i, std::move(msg));
        });
    peer.ch->set_on_closed([this, i, alive = std::weak_ptr<bool>(alive_)] {
      if (auto a = alive.lock(); a && *a) ckpt_on_closed(i);
    });

    CheckpointCmd cmd;
    cmd.op_id = op_->op_id;
    cmd.parent_span = op_->span_root;
    cmd.pod_name = peer.target.pod_name;
    cmd.dest_uri = peer.target.uri;
    cmd.mode = op_->mode;
    cmd.redirect_send_queues = op_->opts.redirect_send_queues;
    cmd.fs_snapshot = op_->opts.fs_snapshot;
    cmd.peer_agents = peer_agents;
    cmd.incremental = op_->opts.incremental;
    cmd.chain_cap = op_->opts.chain_cap;
    cmd.codec_flags = op_->opts.codec_flags;
    cmd.pipelined = op_->opts.pipelined_stream;
    cmd.barrier_wait_us = op_->opts.deadlines.agent_barrier_us;
    cmd.heartbeat_us = op_->opts.heartbeat_us;
    (void)peer.ch->send(encode_checkpoint_cmd(cmd));
  }

  // Arm the phase watchdogs.  Both run from invocation; the connect
  // deadline only looks at channel establishment, the meta deadline at
  // META_REPORT arrival.  An expiry with nothing actually stalled (the
  // phase completed but the cancel raced the event) is a no-op.
  const Deadlines& dl = op_->opts.deadlines;
  if (dl.connect_us > 0) {
    op_->connect_deadline = node_.engine().schedule(
        dl.connect_us,
        [this, alive = std::weak_ptr<bool>(alive_), id = op_->op_id] {
          if (auto a = alive.lock(); !a || !*a) return;
          if (op_ == nullptr || op_->op_id != id) return;
          op_->connect_deadline = 0;
          ckpt_deadline_expired("connect");
        });
  }
  if (dl.meta_us > 0) {
    op_->phase_deadline = node_.engine().schedule(
        dl.meta_us,
        [this, alive = std::weak_ptr<bool>(alive_), id = op_->op_id] {
          if (auto a = alive.lock(); !a || !*a) return;
          if (op_ == nullptr || op_->op_id != id) return;
          op_->phase_deadline = 0;
          ckpt_deadline_expired("meta_wait");
        });
  }
}

void Manager::ckpt_on_msg(std::size_t idx, Bytes msg) {
  if (op_ == nullptr || op_->finished) return;
  CkptPeer& peer = op_->peers[idx];
  auto type = peek_type(msg);
  if (!type) return;

  switch (type.value()) {
    case MsgType::META_REPORT: {
      auto m = decode_meta_report(msg);
      if (!m) return ckpt_fail("bad meta report", /*transient=*/false);
      peer.meta_received = true;
      op_->report.metas[m.value().pod_name] = m.value().meta;
      op_->report.max_net_ckpt_us =
          std::max(op_->report.max_net_ckpt_us, m.value().net_ckpt_us);
      trace_op("2: meta-data received from " + peer.target.pod_name,
               op_->op_id, op_->span_meta_wait);
      ckpt_maybe_continue();
      break;
    }
    case MsgType::CKPT_DONE: {
      auto m = decode_ckpt_done(msg);
      if (!m) return ckpt_fail("bad done report", /*transient=*/false);
      peer.done_received = true;
      peer.done = m.value();
      health_.pod_done(op_->op_id, m.value().pod_name, node_.now());
      if (!m.value().ok) {
        return ckpt_fail("agent reported failure for " +
                             m.value().pod_name + ": " + m.value().error,
                         m.value().transient);
      }
      trace_op("4: 'done' received from " + peer.target.pod_name,
               op_->op_id, op_->span_done_wait);
      ckpt_maybe_finish();
      break;
    }
    case MsgType::HEARTBEAT: {
      auto m = decode_heartbeat(msg);
      if (!m) break;
      obs::metrics().counter("mgr.hb.received").inc();
      health_.heartbeat(op_->op_id, m.value().pod_name, m.value().phase,
                        node_.now());
      health_drain_warnings(op_->op_id, op_->span_root);
      break;
    }
    case MsgType::PROGRESS: {
      auto m = decode_progress(msg);
      if (!m) break;
      obs::metrics().counter("mgr.progress.received").inc();
      const ProgressMsg& p = m.value();
      health_.progress(op_->op_id, p.pod_name, p.phase, node_.now(),
                       p.bytes_done, p.bytes_expected, p.throughput_bps,
                       p.eta_us);
      health_drain_warnings(op_->op_id, op_->span_root);
      break;
    }
    default:
      break;
  }
}

void Manager::ckpt_on_closed(std::size_t idx) {
  if (op_ == nullptr || op_->finished) return;
  ckpt_fail("lost connection to agent of pod " +
                op_->peers[idx].target.pod_name,
            /*transient=*/true);
}

void Manager::ckpt_maybe_continue() {
  if (op_->continued) return;
  for (const CkptPeer& p : op_->peers) {
    if (!p.meta_received) return;
  }
  // The single synchronization point (paper §4, Figure 2 "sync").
  op_->continued = true;
  op_->t_sync = node_.now();
  ckpt_cancel_deadlines();  // connect + meta phases are over
  ContinueMsg cont;
  cont.op_id = op_->op_id;
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(op_->t_sync, op_->span_meta_wait);
    op_->span_done_wait = r->begin_at(op_->t_sync, "mgr.ckpt.done_wait",
                                      "manager", op_->span_root, op_->op_id);
    // The barrier decision itself: agents parent their resume under it,
    // so the causal tree shows continue → unblock → first retransmit.
    cont.continue_event = r->event_at(op_->t_sync, "manager", "mgr.continue",
                                      op_->span_root, op_->op_id);
  }
  trace_op("3: all meta-data in; send 'continue' to agents (sync point)",
           op_->op_id, op_->span_root);
  for (CkptPeer& p : op_->peers) {
    (void)p.ch->send(encode_continue(cont));
  }
  if (op_->opts.deadlines.done_us > 0) {
    op_->phase_deadline = node_.engine().schedule(
        op_->opts.deadlines.done_us,
        [this, alive = std::weak_ptr<bool>(alive_), id = op_->op_id] {
          if (auto a = alive.lock(); !a || !*a) return;
          if (op_ == nullptr || op_->op_id != id) return;
          op_->phase_deadline = 0;
          ckpt_deadline_expired("done_wait");
        });
  }
}

void Manager::ckpt_maybe_finish() {
  for (const CkptPeer& p : op_->peers) {
    if (!p.done_received) return;
  }
  op_->finished = true;
  ckpt_cancel_deadlines();
  health_.op_end(op_->op_id, node_.now(), /*ok=*/true);
  CheckpointReport report = std::move(op_->report);
  report.ok = true;
  report.op_id = op_->op_id;
  report.attempts = op_->attempt;
  report.total_us = node_.now() - op_->t_start;
  report.sync_us = op_->t_sync - op_->t_start;
  for (const CkptPeer& p : op_->peers) {
    report.agents.push_back(p.done);
    report.max_image_bytes =
        std::max(report.max_image_bytes, p.done.image_bytes);
    report.max_network_bytes =
        std::max(report.max_network_bytes, p.done.network_bytes);
  }
  last_metas_ = report.metas;
  last_redirect_ = op_->redirect;
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op_->span_done_wait);
    r->end_at(node_.now(), op_->span_root);
  }
  obs::metrics().counter("mgr.checkpoints").inc();
  obs::metrics().histogram("mgr.ckpt.total_us").observe(report.total_us);
  obs::metrics().histogram("mgr.ckpt.sync_wait_us").observe(report.sync_us);
  trace_op("checkpoint complete in " + std::to_string(report.total_us) + "us",
           op_->op_id, op_->span_root);
  ledger_ckpt("ok", "", /*transient=*/false, /*will_retry=*/false);
  CheckpointDoneFn fn = std::move(op_->done_fn);
  op_.reset();
  fn(std::move(report));
}

void Manager::ckpt_cancel_deadlines() {
  if (op_ == nullptr) return;
  if (op_->connect_deadline != 0) {
    (void)node_.engine().cancel(op_->connect_deadline);
    op_->connect_deadline = 0;
  }
  if (op_->phase_deadline != 0) {
    (void)node_.engine().cancel(op_->phase_deadline);
    op_->phase_deadline = 0;
  }
}

void Manager::ckpt_deadline_expired(const std::string& phase) {
  if (op_ == nullptr || op_->finished) return;
  std::string stalled;
  for (const CkptPeer& p : op_->peers) {
    bool waiting;
    if (phase == "connect") {
      waiting = p.ch == nullptr || !p.ch->established();
    } else if (phase == "meta_wait") {
      waiting = !p.meta_received;
    } else {
      waiting = !p.done_received;
    }
    if (!waiting) continue;
    if (!stalled.empty()) stalled += ",";
    stalled += p.target.pod_name + "@" + p.target.agent.to_string();
    // With the introspection plane on, say where the stalled pod last
    // was — a deadline with an attributed phase beats a blind timeout.
    if (const obs::PodHealth* ph =
            health_.pod(op_->op_id, p.target.pod_name);
        ph != nullptr && ph->beacons > 0) {
      stalled += "(phase=" + ph->phase + " hb_age=" +
                 obs::vtime_us(node_.now() - ph->last_seen_us) + ")";
    }
  }
  if (stalled.empty()) return;
  obs::metrics().counter("mgr.phase.deadline_expired").inc();
  ckpt_fail("phase deadline expired: phase=" + phase + " stalled=" + stalled,
            /*transient=*/true);
}

void Manager::ckpt_gc_tmp() {
  // The commit protocol stages every SAN image at `<path>.tmp` and only
  // renames it into place after the continue barrier, so after an abort
  // the temp — if the agent got that far — is the only debris.
  for (const CkptPeer& p : op_->peers) {
    if (p.target.uri.rfind("san://", 0) != 0) continue;
    std::string tmp = p.target.uri.substr(6) + ".tmp";
    if (node_.san().remove(tmp).is_ok()) {
      obs::metrics().counter("ckpt.commit.gc_tmp").inc();
      trace_op("gc half-written image " + tmp, op_->op_id, op_->span_root);
    }
  }
}

void Manager::ckpt_fail(const std::string& why, bool transient) {
  if (op_ == nullptr || op_->finished) return;
  op_->finished = true;
  ckpt_cancel_deadlines();
  health_.op_end(op_->op_id, node_.now(), /*ok=*/false);
  ZLOG_WARN("manager: checkpoint failed: " << why);
  obs::dump_op_failure(rec(), "ckpt_fail", op_->op_id, "manager", why,
                       node_.now());
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op_->span_meta_wait);
    r->end_at(node_.now(), op_->span_done_wait);
    r->end_at(node_.now(), op_->span_root);
  }
  obs::metrics().counter("mgr.checkpoint_failures").inc();
  trace_op("checkpoint ABORTED: " + why, op_->op_id, op_->span_root);
  for (CkptPeer& p : op_->peers) {
    if (p.ch != nullptr && p.ch->open()) {
      (void)p.ch->send(encode_abort(AbortMsg{op_->op_id, why}));
    }
  }
  ckpt_gc_tmp();

  // Retry transient failures while the op is still safe to re-run from
  // scratch: a SNAPSHOT abort resumes every pod in place, but a MIGRATE
  // is only repeatable before the sync point (after it, agents may
  // already have destroyed source pods at commit).
  bool retryable = transient &&
                   op_->attempt <= op_->opts.retry.max_retries &&
                   (op_->mode == CkptMode::SNAPSHOT || !op_->continued);
  // Aborted attempts get their ledger line too — retries mint a fresh
  // op id, so every attempt is its own row in the run history.
  ledger_ckpt("aborted", why, transient, retryable);
  if (retryable) {
    u32 next = op_->attempt + 1;
    sim::Time delay = retry_delay(op_->opts.retry, op_->attempt);
    obs::metrics().counter("mgr.ckpt.retries").inc();
    trace("retrying checkpoint in " + std::to_string(delay) +
          "us (attempt " + std::to_string(next) + ")");
    node_.engine().schedule(
        delay,
        [this, alive = std::weak_ptr<bool>(alive_),
         targets = std::move(op_->targets), mode = op_->mode,
         opts = std::move(op_->opts), fn = std::move(op_->done_fn),
         next]() mutable {
          if (auto a = alive.lock(); !a || !*a) return;
          if (op_ != nullptr) {
            CheckpointReport r;
            r.error = "manager busy at checkpoint retry";
            r.attempts = next;
            fn(std::move(r));
            return;
          }
          ckpt_begin_attempt(std::move(targets), mode, std::move(opts),
                             std::move(fn), next);
        });
    op_.reset();
    return;
  }

  CheckpointReport report;
  report.ok = false;
  report.error = why;
  report.op_id = op_->op_id;
  report.attempts = op_->attempt;
  CheckpointDoneFn fn = std::move(op_->done_fn);
  op_.reset();
  fn(std::move(report));
}

// ---- Migration -------------------------------------------------------------------

void Manager::migrate(std::vector<MigrateTarget> targets, MigrateDoneFn done,
                      MigrateOptions opts) {
  std::vector<Target> ckpt_targets;
  std::vector<Target> restart_targets;
  for (const MigrateTarget& t : targets) {
    std::string tag = t.pod_name + "-mig";
    ckpt_targets.push_back(Target{
        t.from_agent, t.pod_name,
        "agent://" + t.to_agent.ip.to_string() + ":" +
            std::to_string(t.to_agent.port) + "/" + tag,
        t.vip});
    restart_targets.push_back(
        Target{t.to_agent, t.pod_name, "stream://" + tag});
  }

  sim::Time t0 = node_.now();
  auto done_ptr = std::make_shared<MigrateDoneFn>(std::move(done));
  checkpoint(
      std::move(ckpt_targets), CkptMode::MIGRATE,
      [this, restart_targets = std::move(restart_targets), done_ptr, t0,
       opts](CheckpointReport cr) {
        if (!cr.ok) {
          MigrateReport r;
          r.error = "checkpoint: " + cr.error;
          r.checkpoint = std::move(cr);
          (*done_ptr)(std::move(r));
          return;
        }
        restart(restart_targets, {},
                [this, done_ptr, t0, cr = std::move(cr)](RestartReport rr) {
                  MigrateReport r;
                  r.ok = rr.ok;
                  if (!rr.ok) r.error = "restart: " + rr.error;
                  r.checkpoint = cr;
                  r.restart = std::move(rr);
                  r.total_us = node_.now() - t0;
                  (*done_ptr)(std::move(r));
                },
                RestartOptions{opts.deadlines, opts.retry});
      },
      CkptOptions{/*redirect_send_queues=*/true, /*fs_snapshot=*/false,
                  /*incremental=*/false, /*chain_cap=*/8,
                  /*codec_flags=*/opts.codec_flags,
                  /*pipelined_stream=*/opts.pipelined_stream,
                  /*deadlines=*/opts.deadlines, /*retry=*/opts.retry});
}

// ---- Restart ---------------------------------------------------------------------

void Manager::restart(std::vector<Target> targets,
                      std::map<std::string, ckpt::NetMeta> metas,
                      RestartDoneFn done, RestartOptions opts) {
  if (rop_ != nullptr) {
    RestartReport r;
    r.error = "manager busy";
    done(std::move(r));
    return;
  }
  if (metas.empty()) metas = last_metas_;

  // Derive the restart schedule from the meta-data tables.  Failures
  // here are configuration errors, never retried.
  std::vector<ckpt::NetMeta> meta_list;
  for (auto& t : targets) {
    auto it = metas.find(t.pod_name);
    if (it == metas.end()) {
      RestartReport r;
      r.error = "no meta-data for pod " + t.pod_name;
      done(std::move(r));
      return;
    }
    meta_list.push_back(it->second);
  }
  auto plan = build_restart_plan(meta_list);
  if (!plan) {
    RestartReport r;
    r.error = "schedule: " + plan.status().to_string();
    done(std::move(r));
    return;
  }
  if (last_redirect_) {
    // The checkpoint shipped each covered connection's send queue to the
    // agent receiving its peer's stream; mark those entries so the
    // restore waits for the records.  A record for pod X's connection is
    // produced only if the sender (the peer) knew X's destination agent,
    // i.e. X's vip was in the advertised map.
    for (auto& [vip, meta] : plan.value().pod_meta) {
      if (last_redirect_covered_.count(vip) == 0) continue;
      for (auto& e : meta.entries) {
        if ((e.state == ckpt::ConnState::FULL_DUPLEX ||
             e.state == ckpt::ConnState::HALF_DUPLEX) &&
            last_redirect_covered_.count(e.target.ip) > 0) {
          e.redirect_expected = true;
        }
      }
    }
  }

  // New placement: each pod's virtual address now resolves to the real
  // address of the agent restarting it.
  std::vector<std::pair<net::IpAddr, net::IpAddr>> locations;
  std::vector<ckpt::NetMeta> peer_metas;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    locations.emplace_back(meta_list[i].pod_vip, targets[i].agent.ip);
    peer_metas.push_back(plan.value().pod_meta[meta_list[i].pod_vip]);
  }

  restart_begin_attempt(std::move(targets), std::move(peer_metas),
                        std::move(locations), std::move(opts),
                        std::move(done), 1);
}

void Manager::restart_begin_attempt(
    std::vector<Target> targets, std::vector<ckpt::NetMeta> peer_metas,
    std::vector<std::pair<net::IpAddr, net::IpAddr>> locations,
    RestartOptions opts, RestartDoneFn done, u32 attempt) {
  rop_ = std::make_unique<RestartState>();
  rop_->targets = std::move(targets);
  rop_->peer_metas = std::move(peer_metas);
  rop_->locations = std::move(locations);
  rop_->opts = std::move(opts);
  rop_->attempt = attempt;
  rop_->t_start = node_.now();
  rop_->done_fn = std::move(done);
  rop_->op_id = obs::next_op_id();
  obs::metrics().counter("mgr.ops_started").inc();
  if (rop_->opts.heartbeat_us > 0) {
    health_.set_policy(obs::ClusterHealth::Policy{
        rop_->opts.warn_lag_us, 3 * rop_->opts.heartbeat_us});
    std::vector<std::string> pods;
    for (const Target& t : rop_->targets) pods.push_back(t.pod_name);
    health_.op_begin(rop_->op_id, "restart", rop_->t_start, pods);
  }
  if (obs::SpanRecorder* r = rec()) {
    rop_->span_root = r->begin_at(rop_->t_start, "mgr.restart", "manager", 0,
                                  rop_->op_id);
    // The restart schedule: record each connection's discard/redirect
    // decision so the offline analyzer can check recv >= acked on the
    // restored pairs without the images.
    for (const ckpt::NetMeta& meta : rop_->peer_metas) {
      for (const auto& e : meta.entries) {
        if (e.state != ckpt::ConnState::FULL_DUPLEX &&
            e.state != ckpt::ConnState::HALF_DUPLEX) {
          continue;
        }
        r->event_at(rop_->t_start, "manager",
                    "sched.conn vip=" + meta.pod_vip.to_string() + " peer=" +
                        e.target.ip.to_string() +
                        " discard=" + std::to_string(e.discard_send) +
                        (e.redirect_expected ? " redirect" : ""),
                    rop_->span_root, rop_->op_id);
      }
    }
  }
  restart_start();
}

void Manager::restart_start() {
  trace_op("1: send 'restart' + meta-data to " +
               std::to_string(rop_->targets.size()) + " agents",
           rop_->op_id, rop_->span_root);
  rop_->peers.reserve(rop_->targets.size());
  for (const Target& t : rop_->targets) {
    RestartPeer peer;
    peer.target = t;
    peer.ch = connect_channel(node_.host_stack(), t.agent);
    rop_->peers.push_back(std::move(peer));
  }
  for (std::size_t i = 0; i < rop_->peers.size(); ++i) {
    RestartPeer& peer = rop_->peers[i];
    if (peer.ch == nullptr) {
      restart_fail("cannot connect to agent " + peer.target.agent.to_string(),
                   /*transient=*/true);
      return;
    }
    peer.ch->set_on_msg(
        [this, i, alive = std::weak_ptr<bool>(alive_)](Bytes msg) {
          if (auto a = alive.lock(); a && *a) {
            restart_on_msg(i, std::move(msg));
          }
        });
    peer.ch->set_on_closed([this, i, alive = std::weak_ptr<bool>(alive_)] {
      if (auto a = alive.lock(); a && *a) restart_on_closed(i);
    });

    RestartCmd cmd;
    cmd.op_id = rop_->op_id;
    cmd.parent_span = rop_->span_root;
    cmd.pod_name = peer.target.pod_name;
    cmd.source_uri = peer.target.uri;
    cmd.meta = rop_->peer_metas[i];
    cmd.locations = rop_->locations;
    cmd.stream_wait_us = rop_->opts.deadlines.agent_stream_us;
    cmd.heartbeat_us = rop_->opts.heartbeat_us;
    (void)peer.ch->send(encode_restart_cmd(cmd));
  }

  const Deadlines& dl = rop_->opts.deadlines;
  if (dl.connect_us > 0) {
    rop_->connect_deadline = node_.engine().schedule(
        dl.connect_us,
        [this, alive = std::weak_ptr<bool>(alive_), id = rop_->op_id] {
          if (auto a = alive.lock(); !a || !*a) return;
          if (rop_ == nullptr || rop_->op_id != id) return;
          rop_->connect_deadline = 0;
          restart_deadline_expired("connect");
        });
  }
  if (dl.restart_us > 0) {
    rop_->phase_deadline = node_.engine().schedule(
        dl.restart_us,
        [this, alive = std::weak_ptr<bool>(alive_), id = rop_->op_id] {
          if (auto a = alive.lock(); !a || !*a) return;
          if (rop_ == nullptr || rop_->op_id != id) return;
          rop_->phase_deadline = 0;
          restart_deadline_expired("restart_wait");
        });
  }
}

void Manager::restart_on_msg(std::size_t idx, Bytes msg) {
  if (rop_ == nullptr || rop_->finished) return;
  auto type = peek_type(msg);
  if (!type) return;

  switch (type.value()) {
    case MsgType::RESTART_DONE: {
      auto m = decode_restart_done(msg);
      if (!m) return restart_fail("bad restart report", /*transient=*/false);
      RestartPeer& peer = rop_->peers[idx];
      peer.done_received = true;
      peer.done = m.value();
      health_.pod_done(rop_->op_id, m.value().pod_name, node_.now());
      if (!m.value().ok) {
        return restart_fail("agent reported restart failure for " +
                                m.value().pod_name + ": " + m.value().error,
                            m.value().transient);
      }
      trace_op("2: 'done' received from " + peer.target.pod_name,
               rop_->op_id, rop_->span_root);
      restart_maybe_finish();
      break;
    }
    case MsgType::HEARTBEAT: {
      auto m = decode_heartbeat(msg);
      if (!m) break;
      obs::metrics().counter("mgr.hb.received").inc();
      health_.heartbeat(rop_->op_id, m.value().pod_name, m.value().phase,
                        node_.now());
      health_drain_warnings(rop_->op_id, rop_->span_root);
      break;
    }
    case MsgType::PROGRESS: {
      auto m = decode_progress(msg);
      if (!m) break;
      obs::metrics().counter("mgr.progress.received").inc();
      const ProgressMsg& p = m.value();
      health_.progress(rop_->op_id, p.pod_name, p.phase, node_.now(),
                       p.bytes_done, p.bytes_expected, p.throughput_bps,
                       p.eta_us);
      health_drain_warnings(rop_->op_id, rop_->span_root);
      break;
    }
    default:
      break;
  }
}

void Manager::restart_on_closed(std::size_t idx) {
  if (rop_ == nullptr || rop_->finished) return;
  restart_fail("lost connection to agent of pod " +
                   rop_->peers[idx].target.pod_name,
               /*transient=*/true);
}

void Manager::restart_maybe_finish() {
  for (const RestartPeer& p : rop_->peers) {
    if (!p.done_received) return;
  }
  rop_->finished = true;
  restart_cancel_deadlines();
  health_.op_end(rop_->op_id, node_.now(), /*ok=*/true);
  RestartReport report;
  report.ok = true;
  report.op_id = rop_->op_id;
  report.attempts = rop_->attempt;
  report.total_us = node_.now() - rop_->t_start;
  for (const RestartPeer& p : rop_->peers) {
    report.agents.push_back(p.done);
    report.max_connectivity_us =
        std::max(report.max_connectivity_us, p.done.connectivity_us);
    report.max_net_restore_us =
        std::max(report.max_net_restore_us, p.done.net_restore_us);
  }
  if (obs::SpanRecorder* r = rec()) r->end_at(node_.now(), rop_->span_root);
  obs::metrics().counter("mgr.restarts").inc();
  obs::metrics().histogram("mgr.restart.total_us").observe(report.total_us);
  trace_op("restart complete in " + std::to_string(report.total_us) + "us",
           rop_->op_id, rop_->span_root);
  ledger_restart("ok", "", /*transient=*/false, /*will_retry=*/false);
  RestartDoneFn fn = std::move(rop_->done_fn);
  rop_.reset();
  fn(std::move(report));
}

void Manager::restart_cancel_deadlines() {
  if (rop_ == nullptr) return;
  if (rop_->connect_deadline != 0) {
    (void)node_.engine().cancel(rop_->connect_deadline);
    rop_->connect_deadline = 0;
  }
  if (rop_->phase_deadline != 0) {
    (void)node_.engine().cancel(rop_->phase_deadline);
    rop_->phase_deadline = 0;
  }
}

void Manager::restart_deadline_expired(const std::string& phase) {
  if (rop_ == nullptr || rop_->finished) return;
  std::string stalled;
  for (const RestartPeer& p : rop_->peers) {
    bool waiting = phase == "connect"
                       ? (p.ch == nullptr || !p.ch->established())
                       : !p.done_received;
    if (!waiting) continue;
    if (!stalled.empty()) stalled += ",";
    stalled += p.target.pod_name + "@" + p.target.agent.to_string();
    if (const obs::PodHealth* ph =
            health_.pod(rop_->op_id, p.target.pod_name);
        ph != nullptr && ph->beacons > 0) {
      stalled += "(phase=" + ph->phase + " hb_age=" +
                 obs::vtime_us(node_.now() - ph->last_seen_us) + ")";
    }
  }
  if (stalled.empty()) return;
  obs::metrics().counter("mgr.phase.deadline_expired").inc();
  restart_fail("phase deadline expired: phase=" + phase + " stalled=" +
                   stalled,
               /*transient=*/true);
}

void Manager::restart_fail(const std::string& why, bool transient) {
  if (rop_ == nullptr || rop_->finished) return;
  rop_->finished = true;
  restart_cancel_deadlines();
  health_.op_end(rop_->op_id, node_.now(), /*ok=*/false);
  ZLOG_WARN("manager: restart failed: " << why);
  obs::dump_op_failure(rec(), "restart_fail", rop_->op_id, "manager", why,
                       node_.now());
  if (obs::SpanRecorder* r = rec()) r->end_at(node_.now(), rop_->span_root);
  obs::metrics().counter("mgr.restart_failures").inc();
  trace_op("restart ABORTED: " + why, rop_->op_id, rop_->span_root);
  // Mirror of the checkpoint abort: agents that already (or partially)
  // restored their pod tear it down, so a failed coordinated restart
  // never leaves half the application running.
  for (RestartPeer& p : rop_->peers) {
    if (p.ch != nullptr && p.ch->open()) {
      (void)p.ch->send(encode_abort(AbortMsg{rop_->op_id, why}));
    }
  }

  // The abort teardown above makes a whole-op re-run safe: every target
  // agent is back to not hosting the pod.
  bool retryable =
      transient && rop_->attempt <= rop_->opts.retry.max_retries;
  ledger_restart("aborted", why, transient, retryable);
  if (retryable) {
    u32 next = rop_->attempt + 1;
    sim::Time delay = retry_delay(rop_->opts.retry, rop_->attempt);
    obs::metrics().counter("mgr.restart.retries").inc();
    trace("retrying restart in " + std::to_string(delay) + "us (attempt " +
          std::to_string(next) + ")");
    node_.engine().schedule(
        delay,
        [this, alive = std::weak_ptr<bool>(alive_),
         targets = std::move(rop_->targets),
         peer_metas = std::move(rop_->peer_metas),
         locations = std::move(rop_->locations), opts = std::move(rop_->opts),
         fn = std::move(rop_->done_fn), next]() mutable {
          if (auto a = alive.lock(); !a || !*a) return;
          if (rop_ != nullptr) {
            RestartReport r;
            r.error = "manager busy at restart retry";
            r.attempts = next;
            fn(std::move(r));
            return;
          }
          restart_begin_attempt(std::move(targets), std::move(peer_metas),
                                std::move(locations), std::move(opts),
                                std::move(fn), next);
        });
    rop_.reset();
    return;
  }

  RestartReport report;
  report.ok = false;
  report.error = why;
  report.op_id = rop_->op_id;
  report.attempts = rop_->attempt;
  RestartDoneFn fn = std::move(rop_->done_fn);
  rop_.reset();
  fn(std::move(report));
}

}  // namespace zapc::core
