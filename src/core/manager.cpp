#include "core/manager.h"

#include <algorithm>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "util/log.h"

namespace zapc::core {

Manager::Manager(os::Node& node, Trace* trace)
    : node_(node), trace_(trace) {}

Manager::~Manager() { *alive_ = false; }

void Manager::trace(const std::string& what) {
  if (trace_ != nullptr) trace_->add(node_.now(), "manager", what);
}

void Manager::trace_op(const std::string& what, obs::OpId op,
                       obs::SpanId parent) {
  if (trace_ != nullptr) {
    trace_->add(node_.now(), "manager", what, parent, op);
  }
}

// ---- Checkpoint -----------------------------------------------------------------

void Manager::checkpoint(std::vector<Target> targets, CkptMode mode,
                         CheckpointDoneFn done, CkptOptions opts) {
  if (op_ != nullptr) {
    CheckpointReport r;
    r.error = "manager busy";
    done(std::move(r));
    return;
  }
  op_ = std::make_unique<CkptState>();
  op_->mode = mode;
  op_->redirect = opts.redirect_send_queues && mode == CkptMode::MIGRATE;
  op_->t_start = node_.now();
  op_->done_fn = std::move(done);
  op_->op_id = obs::next_op_id();
  obs::metrics().counter("mgr.ops_started").inc();
  if (obs::SpanRecorder* r = rec()) {
    op_->span_root =
        r->begin_at(op_->t_start, "mgr.ckpt", "manager", 0, op_->op_id);
    op_->span_meta_wait = r->begin_at(op_->t_start, "mgr.ckpt.meta_wait",
                                      "manager", op_->span_root, op_->op_id);
  }

  // For the redirect optimization, every agent needs to know which agent
  // receives each peer pod's checkpoint stream: (vip -> endpoint) pairs
  // derived from targets with agent:// URIs.  The vip comes from the
  // target itself when supplied, otherwise from the previous checkpoint's
  // meta-data.  Pods whose vip cannot be determined are simply not
  // covered — their connections fall back to the normal send-queue
  // resend.
  std::vector<std::pair<net::IpAddr, net::SockAddr>> peer_agents;
  last_redirect_covered_.clear();
  if (op_->redirect) {
    for (const Target& t : targets) {
      net::IpAddr vip = t.vip;
      if (vip.is_any()) {
        auto it = last_metas_.find(t.pod_name);
        if (it != last_metas_.end()) vip = it->second.pod_vip;
      }
      if (vip.is_any()) continue;
      if (t.uri.rfind("agent://", 0) != 0) continue;
      std::string rest = t.uri.substr(8);
      auto slash = rest.find('/');
      auto colon = rest.find(':');
      if (slash == std::string::npos || colon == std::string::npos ||
          colon > slash) {
        continue;
      }
      auto ip = net::IpAddr::parse(rest.substr(0, colon));
      if (!ip) continue;
      net::SockAddr ep{ip.value(),
                       static_cast<u16>(std::stoul(
                           rest.substr(colon + 1, slash - colon - 1)))};
      peer_agents.emplace_back(vip, ep);
      last_redirect_covered_.insert(vip);
    }
  }

  trace_op("1: send 'checkpoint' to " + std::to_string(targets.size()) +
               " agents",
           op_->op_id, op_->span_root);
  op_->peers.reserve(targets.size());
  for (auto& t : targets) {
    CkptPeer peer;
    peer.target = t;
    peer.ch = connect_channel(node_.host_stack(), t.agent);
    op_->peers.push_back(std::move(peer));
  }
  for (std::size_t i = 0; i < op_->peers.size(); ++i) {
    CkptPeer& peer = op_->peers[i];
    if (peer.ch == nullptr) {
      ckpt_fail("cannot connect to agent " + peer.target.agent.to_string());
      return;
    }
    peer.ch->set_on_msg(
        [this, i, alive = std::weak_ptr<bool>(alive_)](Bytes msg) {
          if (auto a = alive.lock(); a && *a) ckpt_on_msg(i, std::move(msg));
        });
    peer.ch->set_on_closed([this, i, alive = std::weak_ptr<bool>(alive_)] {
      if (auto a = alive.lock(); a && *a) ckpt_on_closed(i);
    });

    CheckpointCmd cmd;
    cmd.op_id = op_->op_id;
    cmd.parent_span = op_->span_root;
    cmd.pod_name = peer.target.pod_name;
    cmd.dest_uri = peer.target.uri;
    cmd.mode = mode;
    cmd.redirect_send_queues = opts.redirect_send_queues;
    cmd.fs_snapshot = opts.fs_snapshot;
    cmd.peer_agents = peer_agents;
    cmd.incremental = opts.incremental;
    cmd.chain_cap = opts.chain_cap;
    cmd.codec_flags = opts.codec_flags;
    cmd.pipelined = opts.pipelined_stream;
    (void)peer.ch->send(encode_checkpoint_cmd(cmd));
  }
}

void Manager::ckpt_on_msg(std::size_t idx, Bytes msg) {
  if (op_ == nullptr || op_->finished) return;
  CkptPeer& peer = op_->peers[idx];
  auto type = peek_type(msg);
  if (!type) return;

  switch (type.value()) {
    case MsgType::META_REPORT: {
      auto m = decode_meta_report(msg);
      if (!m) return ckpt_fail("bad meta report");
      peer.meta_received = true;
      op_->report.metas[m.value().pod_name] = m.value().meta;
      op_->report.max_net_ckpt_us =
          std::max(op_->report.max_net_ckpt_us, m.value().net_ckpt_us);
      trace_op("2: meta-data received from " + peer.target.pod_name,
               op_->op_id, op_->span_meta_wait);
      ckpt_maybe_continue();
      break;
    }
    case MsgType::CKPT_DONE: {
      auto m = decode_ckpt_done(msg);
      if (!m) return ckpt_fail("bad done report");
      peer.done_received = true;
      peer.done = m.value();
      if (!m.value().ok) {
        return ckpt_fail("agent reported failure for " +
                         m.value().pod_name + ": " + m.value().error);
      }
      trace_op("4: 'done' received from " + peer.target.pod_name,
               op_->op_id, op_->span_done_wait);
      ckpt_maybe_finish();
      break;
    }
    default:
      break;
  }
}

void Manager::ckpt_on_closed(std::size_t idx) {
  if (op_ == nullptr || op_->finished) return;
  ckpt_fail("lost connection to agent of pod " +
            op_->peers[idx].target.pod_name);
}

void Manager::ckpt_maybe_continue() {
  if (op_->continued) return;
  for (const CkptPeer& p : op_->peers) {
    if (!p.meta_received) return;
  }
  // The single synchronization point (paper §4, Figure 2 "sync").
  op_->continued = true;
  op_->t_sync = node_.now();
  ContinueMsg cont;
  cont.op_id = op_->op_id;
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(op_->t_sync, op_->span_meta_wait);
    op_->span_done_wait = r->begin_at(op_->t_sync, "mgr.ckpt.done_wait",
                                      "manager", op_->span_root, op_->op_id);
    // The barrier decision itself: agents parent their resume under it,
    // so the causal tree shows continue → unblock → first retransmit.
    cont.continue_event = r->event_at(op_->t_sync, "manager", "mgr.continue",
                                      op_->span_root, op_->op_id);
  }
  trace_op("3: all meta-data in; send 'continue' to agents (sync point)",
           op_->op_id, op_->span_root);
  for (CkptPeer& p : op_->peers) {
    (void)p.ch->send(encode_continue(cont));
  }
}

void Manager::ckpt_maybe_finish() {
  for (const CkptPeer& p : op_->peers) {
    if (!p.done_received) return;
  }
  op_->finished = true;
  CheckpointReport report = std::move(op_->report);
  report.ok = true;
  report.op_id = op_->op_id;
  report.total_us = node_.now() - op_->t_start;
  report.sync_us = op_->t_sync - op_->t_start;
  for (const CkptPeer& p : op_->peers) {
    report.agents.push_back(p.done);
    report.max_image_bytes =
        std::max(report.max_image_bytes, p.done.image_bytes);
    report.max_network_bytes =
        std::max(report.max_network_bytes, p.done.network_bytes);
  }
  last_metas_ = report.metas;
  last_redirect_ = op_->redirect;
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op_->span_done_wait);
    r->end_at(node_.now(), op_->span_root);
  }
  obs::metrics().counter("mgr.checkpoints").inc();
  obs::metrics().histogram("mgr.ckpt.total_us").observe(report.total_us);
  obs::metrics().histogram("mgr.ckpt.sync_wait_us").observe(report.sync_us);
  trace_op("checkpoint complete in " + std::to_string(report.total_us) + "us",
           op_->op_id, op_->span_root);
  CheckpointDoneFn fn = std::move(op_->done_fn);
  op_.reset();
  fn(std::move(report));
}

void Manager::ckpt_fail(const std::string& why) {
  if (op_ == nullptr || op_->finished) return;
  op_->finished = true;
  ZLOG_WARN("manager: checkpoint failed: " << why);
  obs::dump_op_failure(rec(), "ckpt_fail", op_->op_id, "manager", why,
                       node_.now());
  if (obs::SpanRecorder* r = rec()) {
    r->end_at(node_.now(), op_->span_meta_wait);
    r->end_at(node_.now(), op_->span_done_wait);
    r->end_at(node_.now(), op_->span_root);
  }
  obs::metrics().counter("mgr.checkpoint_failures").inc();
  trace_op("checkpoint ABORTED: " + why, op_->op_id, op_->span_root);
  for (CkptPeer& p : op_->peers) {
    if (p.ch != nullptr && p.ch->open()) {
      (void)p.ch->send(encode_abort(AbortMsg{op_->op_id, why}));
    }
  }
  CheckpointReport report;
  report.ok = false;
  report.error = why;
  report.op_id = op_->op_id;
  CheckpointDoneFn fn = std::move(op_->done_fn);
  op_.reset();
  fn(std::move(report));
}

// ---- Migration -------------------------------------------------------------------

void Manager::migrate(std::vector<MigrateTarget> targets, MigrateDoneFn done,
                      MigrateOptions opts) {
  std::vector<Target> ckpt_targets;
  std::vector<Target> restart_targets;
  for (const MigrateTarget& t : targets) {
    std::string tag = t.pod_name + "-mig";
    ckpt_targets.push_back(Target{
        t.from_agent, t.pod_name,
        "agent://" + t.to_agent.ip.to_string() + ":" +
            std::to_string(t.to_agent.port) + "/" + tag,
        t.vip});
    restart_targets.push_back(
        Target{t.to_agent, t.pod_name, "stream://" + tag});
  }

  sim::Time t0 = node_.now();
  auto done_ptr = std::make_shared<MigrateDoneFn>(std::move(done));
  checkpoint(
      std::move(ckpt_targets), CkptMode::MIGRATE,
      [this, restart_targets = std::move(restart_targets), done_ptr,
       t0](CheckpointReport cr) {
        if (!cr.ok) {
          MigrateReport r;
          r.error = "checkpoint: " + cr.error;
          r.checkpoint = std::move(cr);
          (*done_ptr)(std::move(r));
          return;
        }
        restart(restart_targets, {},
                [this, done_ptr, t0, cr = std::move(cr)](RestartReport rr) {
                  MigrateReport r;
                  r.ok = rr.ok;
                  if (!rr.ok) r.error = "restart: " + rr.error;
                  r.checkpoint = cr;
                  r.restart = std::move(rr);
                  r.total_us = node_.now() - t0;
                  (*done_ptr)(std::move(r));
                });
      },
      CkptOptions{/*redirect_send_queues=*/true, /*fs_snapshot=*/false,
                  /*incremental=*/false, /*chain_cap=*/8,
                  /*codec_flags=*/opts.codec_flags,
                  /*pipelined_stream=*/opts.pipelined_stream});
}

// ---- Restart ---------------------------------------------------------------------

void Manager::restart(std::vector<Target> targets,
                      std::map<std::string, ckpt::NetMeta> metas,
                      RestartDoneFn done) {
  if (rop_ != nullptr) {
    RestartReport r;
    r.error = "manager busy";
    done(std::move(r));
    return;
  }
  if (metas.empty()) metas = last_metas_;

  // Derive the restart schedule from the meta-data tables.
  std::vector<ckpt::NetMeta> meta_list;
  for (auto& t : targets) {
    auto it = metas.find(t.pod_name);
    if (it == metas.end()) {
      RestartReport r;
      r.error = "no meta-data for pod " + t.pod_name;
      done(std::move(r));
      return;
    }
    meta_list.push_back(it->second);
  }
  auto plan = build_restart_plan(meta_list);
  if (!plan) {
    RestartReport r;
    r.error = "schedule: " + plan.status().to_string();
    done(std::move(r));
    return;
  }
  if (last_redirect_) {
    // The checkpoint shipped each covered connection's send queue to the
    // agent receiving its peer's stream; mark those entries so the
    // restore waits for the records.  A record for pod X's connection is
    // produced only if the sender (the peer) knew X's destination agent,
    // i.e. X's vip was in the advertised map.
    for (auto& [vip, meta] : plan.value().pod_meta) {
      if (last_redirect_covered_.count(vip) == 0) continue;
      for (auto& e : meta.entries) {
        if ((e.state == ckpt::ConnState::FULL_DUPLEX ||
             e.state == ckpt::ConnState::HALF_DUPLEX) &&
            last_redirect_covered_.count(e.target.ip) > 0) {
          e.redirect_expected = true;
        }
      }
    }
  }

  // New placement: each pod's virtual address now resolves to the real
  // address of the agent restarting it.
  std::vector<std::pair<net::IpAddr, net::IpAddr>> locations;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    locations.emplace_back(meta_list[i].pod_vip, targets[i].agent.ip);
  }

  rop_ = std::make_unique<RestartState>();
  rop_->t_start = node_.now();
  rop_->done_fn = std::move(done);
  rop_->op_id = obs::next_op_id();
  obs::metrics().counter("mgr.ops_started").inc();
  if (obs::SpanRecorder* r = rec()) {
    rop_->span_root = r->begin_at(rop_->t_start, "mgr.restart", "manager", 0,
                                  rop_->op_id);
    // The restart schedule: record each connection's discard/redirect
    // decision so the offline analyzer can check recv >= acked on the
    // restored pairs without the images.
    for (const auto& [vip, meta] : plan.value().pod_meta) {
      for (const auto& e : meta.entries) {
        if (e.state != ckpt::ConnState::FULL_DUPLEX &&
            e.state != ckpt::ConnState::HALF_DUPLEX) {
          continue;
        }
        r->event_at(rop_->t_start, "manager",
                    "sched.conn vip=" + vip.to_string() + " peer=" +
                        e.target.ip.to_string() +
                        " discard=" + std::to_string(e.discard_send) +
                        (e.redirect_expected ? " redirect" : ""),
                    rop_->span_root, rop_->op_id);
      }
    }
  }

  trace_op("1: send 'restart' + meta-data to " +
               std::to_string(targets.size()) + " agents",
           rop_->op_id, rop_->span_root);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    RestartPeer peer;
    peer.target = targets[i];
    peer.ch = connect_channel(node_.host_stack(), targets[i].agent);
    rop_->peers.push_back(std::move(peer));
  }
  for (std::size_t i = 0; i < rop_->peers.size(); ++i) {
    RestartPeer& peer = rop_->peers[i];
    if (peer.ch == nullptr) {
      restart_fail("cannot connect to agent " +
                   peer.target.agent.to_string());
      return;
    }
    peer.ch->set_on_msg(
        [this, i, alive = std::weak_ptr<bool>(alive_)](Bytes msg) {
          if (auto a = alive.lock(); a && *a) {
            restart_on_msg(i, std::move(msg));
          }
        });
    peer.ch->set_on_closed([this, i, alive = std::weak_ptr<bool>(alive_)] {
      if (auto a = alive.lock(); a && *a) restart_on_closed(i);
    });

    RestartCmd cmd;
    cmd.op_id = rop_->op_id;
    cmd.parent_span = rop_->span_root;
    cmd.pod_name = peer.target.pod_name;
    cmd.source_uri = peer.target.uri;
    cmd.meta = plan.value().pod_meta[meta_list[i].pod_vip];
    cmd.locations = locations;
    (void)peer.ch->send(encode_restart_cmd(cmd));
  }
}

void Manager::restart_on_msg(std::size_t idx, Bytes msg) {
  if (rop_ == nullptr || rop_->finished) return;
  auto type = peek_type(msg);
  if (!type || type.value() != MsgType::RESTART_DONE) return;
  auto m = decode_restart_done(msg);
  if (!m) return restart_fail("bad restart report");
  RestartPeer& peer = rop_->peers[idx];
  peer.done_received = true;
  peer.done = m.value();
  if (!m.value().ok) {
    return restart_fail("agent reported restart failure for " +
                        m.value().pod_name + ": " + m.value().error);
  }
  trace_op("2: 'done' received from " + peer.target.pod_name, rop_->op_id,
           rop_->span_root);
  restart_maybe_finish();
}

void Manager::restart_on_closed(std::size_t idx) {
  if (rop_ == nullptr || rop_->finished) return;
  restart_fail("lost connection to agent of pod " +
               rop_->peers[idx].target.pod_name);
}

void Manager::restart_maybe_finish() {
  for (const RestartPeer& p : rop_->peers) {
    if (!p.done_received) return;
  }
  rop_->finished = true;
  RestartReport report;
  report.ok = true;
  report.op_id = rop_->op_id;
  report.total_us = node_.now() - rop_->t_start;
  for (const RestartPeer& p : rop_->peers) {
    report.agents.push_back(p.done);
    report.max_connectivity_us =
        std::max(report.max_connectivity_us, p.done.connectivity_us);
    report.max_net_restore_us =
        std::max(report.max_net_restore_us, p.done.net_restore_us);
  }
  if (obs::SpanRecorder* r = rec()) r->end_at(node_.now(), rop_->span_root);
  obs::metrics().counter("mgr.restarts").inc();
  obs::metrics().histogram("mgr.restart.total_us").observe(report.total_us);
  trace_op("restart complete in " + std::to_string(report.total_us) + "us",
           rop_->op_id, rop_->span_root);
  RestartDoneFn fn = std::move(rop_->done_fn);
  rop_.reset();
  fn(std::move(report));
}

void Manager::restart_fail(const std::string& why) {
  if (rop_ == nullptr || rop_->finished) return;
  rop_->finished = true;
  ZLOG_WARN("manager: restart failed: " << why);
  obs::dump_op_failure(rec(), "restart_fail", rop_->op_id, "manager", why,
                       node_.now());
  if (obs::SpanRecorder* r = rec()) r->end_at(node_.now(), rop_->span_root);
  obs::metrics().counter("mgr.restart_failures").inc();
  trace_op("restart ABORTED: " + why, rop_->op_id, rop_->span_root);
  RestartReport report;
  report.ok = false;
  report.error = why;
  report.op_id = rop_->op_id;
  RestartDoneFn fn = std::move(rop_->done_fn);
  rop_.reset();
  fn(std::move(report));
}

}  // namespace zapc::core
