// Connectivity recovery (paper §4, restart step 2).
//
// "Since ZapC is restarting the entire distributed application, it
// controls both ends of each network connection.  This makes it
// straightforward to reconstruct the communicating sockets on both sides
// of each connection using a pair of connect and accept system calls."
//
// This engine runs asynchronously on the restarting node: one logical
// worker initiates outgoing connections, another services incoming ones —
// the paper's two threads of execution, which make the recovery deadlock
// free without computing a global connection order.  Connects that race
// ahead of the peer's listener creation are refused and retried.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ckpt/image.h"
#include "ckpt/standalone.h"
#include "obs/span.h"
#include "pod/pod.h"

namespace zapc::core {

class ConnectivityRestore {
 public:
  /// Called once with the outcome; on success the SockMap maps every old
  /// socket id in the image to its re-created socket.
  using DoneFn = std::function<void(Status, ckpt::SockMap)>;

  ConnectivityRestore(pod::Pod& pod, ckpt::NetMeta meta,
                      std::vector<ckpt::SocketImage> sockets,
                      std::set<net::SockId> unreferenced,
                      sim::Time timeout, DoneFn done);
  ~ConnectivityRestore();

  ConnectivityRestore(const ConnectivityRestore&) = delete;
  ConnectivityRestore& operator=(const ConnectivityRestore&) = delete;

  /// Creates local endpoints (listeners, UDP/RAW, unconnected sockets)
  /// and kicks off the connect/accept workers.
  void start();

  bool finished() const { return finished_; }

  /// Causal-trace context: re-formed connections are recorded as
  /// op-tagged events under the restart's connectivity span.
  void set_obs_tag(obs::ObsTag tag) { tag_ = std::move(tag); }

  /// Ablation hook: process connection entries strictly one at a time in
  /// meta-table order (the naive single-threaded recovery the paper
  /// rejects) instead of with concurrent connector/acceptor workers.  A
  /// ring of pods that all hit an ACCEPT entry first deadlocks until the
  /// timeout — exactly the failure mode §4 describes.
  void set_serial_order(bool on) { serial_ = on; }

 private:
  struct ConnTask {
    ckpt::NetMetaEntry entry;
    enum class St { PENDING, CONNECTING, DONE } st = St::PENDING;
    net::SockId sock = net::kInvalidSock;
    int retries = 0;
  };
  struct AcceptTask {
    ckpt::NetMetaEntry entry;
    bool matched = false;
    net::SockId sock = net::kInvalidSock;
  };

  void tick();
  void run_connector();
  void drive_connect(ConnTask& t);
  void run_acceptor();
  void run_serial();
  void finish(Status st);

  pod::Pod& pod_;
  ckpt::NetMeta meta_;
  std::vector<ckpt::SocketImage> sockets_;
  std::set<net::SockId> unreferenced_;
  sim::Time deadline_;
  DoneFn done_;

  ckpt::SockMap map_;
  std::vector<ConnTask> connects_;
  std::vector<AcceptTask> accepts_;
  std::map<u16, net::SockId> listeners_;       // port -> new listener
  std::map<u16, net::SockId> temp_listeners_;  // created just for restart
  bool serial_ = false;
  bool finished_ = false;
  obs::ObsTag tag_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace zapc::core
