// Manager-side restart scheduling (paper §4).
//
// From the meta-data tables collected at checkpoint, the Manager derives
// the restart schedule: it pairs the two endpoints of every internal
// connection, tags each entry *connect* or *accept* (arbitrary unless
// several connections share a source port, in which case the sharing
// side must accept so the port is inherited from a listening socket as it
// originally was), and computes the send-queue overlap each side must
// discard (paper §5: discard = peer.recv − self.acked, taken from the
// send queue to avoid transferring duplicate data over the network).
#pragma once

#include <map>
#include <vector>

#include "ckpt/image.h"

namespace zapc::core {

/// The per-pod modified meta-data the Manager distributes with the
/// restart command.
struct RestartPlan {
  std::map<net::IpAddr, ckpt::NetMeta> pod_meta;
};

/// Builds the restart plan from the checkpoint meta-data of all pods.
/// Fails with Err::NO_ENT if a connection's peer endpoint is not among
/// the participating pods (connections leaving the cluster are outside
/// the paper's scope).
Result<RestartPlan> build_restart_plan(
    const std::vector<ckpt::NetMeta>& metas);

}  // namespace zapc::core
