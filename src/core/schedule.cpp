#include "core/schedule.h"

#include <set>

#include "util/log.h"

namespace zapc::core {
namespace {

bool is_connection(ckpt::ConnState s) {
  return s == ckpt::ConnState::FULL_DUPLEX ||
         s == ckpt::ConnState::HALF_DUPLEX || s == ckpt::ConnState::CLOSED;
}

/// True if this endpoint's source port is shared on its pod — covered by
/// a listener or used by more than one connection — which forces the
/// ACCEPT role so the port is inherited rather than bound.
bool source_port_shared(const ckpt::NetMeta& meta,
                        const ckpt::NetMetaEntry& e) {
  int conn_users = 0;
  for (const auto& other : meta.entries) {
    if (other.state == ckpt::ConnState::LISTENER &&
        other.source.port == e.source.port) {
      return true;
    }
    if (is_connection(other.state) && other.source.port == e.source.port) {
      ++conn_users;
    }
  }
  return conn_users > 1;
}

}  // namespace

Result<RestartPlan> build_restart_plan(
    const std::vector<ckpt::NetMeta>& metas) {
  RestartPlan plan;
  for (const auto& m : metas) plan.pod_meta[m.pod_vip] = m;

  // Finds the peer entry of a connection (source/target swapped).
  auto find_peer = [&plan](const ckpt::NetMetaEntry& e)
      -> ckpt::NetMetaEntry* {
    auto it = plan.pod_meta.find(e.target.ip);
    if (it == plan.pod_meta.end()) return nullptr;
    for (auto& cand : it->second.entries) {
      if (is_connection(cand.state) && cand.source == e.target &&
          cand.target == e.source) {
        return &cand;
      }
    }
    return nullptr;
  };

  for (auto& [vip, meta] : plan.pod_meta) {
    for (auto& e : meta.entries) {
      if (e.state == ckpt::ConnState::LISTENER) continue;
      if (e.state == ckpt::ConnState::CONNECTING) {
        // Not yet established: simply re-initiate the connect.
        e.role = ckpt::PeerRole::CONNECT;
        e.discard_send = 0;
        continue;
      }
      if (e.state == ckpt::ConnState::CLOSED) {
        // Both directions closed: restored locally (queued data + EOF);
        // no peer cooperation needed, so a vanished peer is fine.
        e.role = ckpt::PeerRole::CONNECT;
        e.discard_send = 0;
        continue;
      }
      ckpt::NetMetaEntry* peer = find_peer(e);
      if (peer == nullptr) {
        return Status(Err::NO_ENT,
                      "connection " + e.source.to_string() + " -> " +
                          e.target.to_string() +
                          " has no peer inside the cluster");
      }

      // Overlap discard (paper §5): bytes the peer already received
      // in order are dropped from our send queue before the resend.
      u32 overlap = peer->pcb_recv - e.pcb_acked;
      // Guard against wrap artifacts; a real overlap is small.
      e.discard_send = (overlap & 0x80000000u) ? 0 : overlap;

      // Role assignment.  Process each pair once (from the side with the
      // lexicographically smaller endpoint) to keep the two tags
      // consistent.
      bool self_first = std::make_pair(e.source.ip.v, e.source.port) <
                        std::make_pair(e.target.ip.v, e.target.port);
      if (!self_first) continue;  // the peer's iteration assigns both

      bool self_shared = source_port_shared(meta, e);
      bool peer_shared =
          source_port_shared(plan.pod_meta[e.target.ip], *peer);
      if (self_shared && !peer_shared) {
        e.role = ckpt::PeerRole::ACCEPT;
        peer->role = ckpt::PeerRole::CONNECT;
      } else if (peer_shared && !self_shared) {
        e.role = ckpt::PeerRole::CONNECT;
        peer->role = ckpt::PeerRole::ACCEPT;
      } else if (self_shared && peer_shared) {
        // Both endpoints inherited their port; impossible for a single
        // TCP connection to have been created that way.
        return Status(Err::INVALID,
                      "both endpoints of " + e.source.to_string() +
                          " share source ports");
      } else {
        // Arbitrary but deterministic (paper §4: "normally determined
        // arbitrarily").
        e.role = ckpt::PeerRole::CONNECT;
        peer->role = ckpt::PeerRole::ACCEPT;
      }
    }
  }
  return plan;
}

}  // namespace zapc::core
