// Event trace used to regenerate the paper's Figure 2 timeline and to
// debug the coordinated protocol.
//
// Trace is now a thin view over an obs::SpanRecorder: add() records an
// instant EVENT in the span stream, and events() materializes the EVENT
// records back into the legacy {t, who, what} rows, so the Figure 2
// timeline bench and the protocol tests keep their string-matching
// logic unchanged while the same stream also carries the phase spans
// the Manager/Agent pipeline opens around each checkpoint stage.
#pragma once

#include <string>
#include <vector>

#include "obs/span.h"
#include "sim/engine.h"

namespace zapc::core {

struct TraceEvent {
  sim::Time t = 0;
  std::string who;   // "manager", "agent@n3", ...
  std::string what;  // "2: network checkpoint done", ...
};

class Trace {
 public:
  /// `parent`/`op` thread the causal-tracing context through to the
  /// EVENT record (0 = untagged, the legacy behaviour).
  void add(sim::Time t, std::string who, std::string what,
           obs::SpanId parent = 0, obs::OpId op = 0) {
    rec_.event_at(t, who, what, parent, op);
  }

  /// The legacy flat timeline: EVENT records only, in insertion order
  /// (phase SPAN records are filtered out).  Returns by value because
  /// rows are materialized from the span stream on demand.
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    for (const obs::SpanRecord& s : rec_.spans()) {
      if (s.kind == obs::SpanKind::EVENT) {
        out.push_back(TraceEvent{s.start, s.who, s.name});
      }
    }
    return out;
  }

  void clear() { rec_.clear(); }

  /// The underlying span stream (phase spans + events).
  obs::SpanRecorder& recorder() { return rec_; }
  const obs::SpanRecorder& recorder() const { return rec_; }

 private:
  obs::SpanRecorder rec_;
};

}  // namespace zapc::core
