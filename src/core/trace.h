// Event trace used to regenerate the paper's Figure 2 timeline and to
// debug the coordinated protocol.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.h"

namespace zapc::core {

struct TraceEvent {
  sim::Time t = 0;
  std::string who;   // "manager", "agent@n3", ...
  std::string what;  // "2: network checkpoint done", ...
};

class Trace {
 public:
  void add(sim::Time t, std::string who, std::string what) {
    events_.push_back(TraceEvent{t, std::move(who), std::move(what)});
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace zapc::core
