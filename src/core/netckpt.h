// Network-state checkpoint-restart (paper §5) — the heart of ZapC's
// transport-protocol-independent network support.
//
// Checkpoint (per socket, pod suspended + network blocked):
//   * socket parameters via the standard getsockopt interface;
//   * the receive queue via the standard read (recvmsg) interface — a
//     destructive read immediately re-injected through the socket's
//     alternate receive queue, so the checkpoint has no side effects;
//     out-of-band (urgent) data is captured the same way with MSG_OOB;
//   * the send queue via the in-kernel socket-buffer interface
//     (non-destructive);
//   * the minimal protocol-specific state: the PCB sequence triple
//     {sent, acked, recv}.  Out-of-order ("backlog") data is deliberately
//     NOT saved: it is still unacknowledged in the peer's send queue and
//     is recovered by the peer's resend.
//
// Restore (fresh connection already re-established by connect/accept):
//   * setsockopt round-trip of the saved parameters;
//   * alternate-receive-queue injection of the saved receive queue;
//   * plain write() of the saved send queue minus the overlap the
//     Manager computed (discard = peer.recv − self.acked);
//   * shutdown() calls to re-impose half-duplex/closed state.
#pragma once

#include <vector>

#include "ckpt/image.h"
#include "obs/span.h"
#include "pod/pod.h"

namespace zapc::core {

class NetCheckpoint {
 public:
  /// Captures the state of every socket in the pod and builds the
  /// connection meta-data table.  The pod must be suspended and its
  /// network blocked.  Non-destructive: drained receive queues are
  /// re-injected via the alternate queue before returning.  `tag`
  /// (optional) records a per-connection "net.sock.saved" event carrying
  /// the PCB triple for the causal trace.
  static Status save(pod::Pod& pod, ckpt::NetMeta& meta_out,
                     std::vector<ckpt::SocketImage>& sockets_out,
                     const obs::ObsTag& tag = {});

  /// Restores one socket's state onto `sock` (already created and, for
  /// established TCP, already re-connected).  `discard_send` is the
  /// Manager-computed overlap to drop from the send queue head.
  /// `extra_recv` is redirected peer send-queue data to append to the
  /// alternate queue (migration optimization), already overlap-trimmed.
  /// `tag` records a "net.sock.restored" event with the saved recv/acked
  /// sequence numbers, which is what lets the offline analyzer check the
  /// paper's recv₁ ≥ acked₂ invariant across restored connection pairs.
  static Status restore_socket(pod::Pod& pod, net::SockId sock,
                               const ckpt::SocketImage& image,
                               u32 discard_send, const Bytes& extra_recv,
                               const obs::ObsTag& tag = {});

  /// Classifies a live socket for the meta-data table.
  static ckpt::ConnState classify(const net::Socket& sock);
};

}  // namespace zapc::core
