// Framed, event-driven message channels over the simulated TCP stack.
//
// The Manager and Agents communicate through these (paper §4: "The
// Manager maintains reliable network connections with the Agents
// throughout the entire operation"), so a broken connection doubles as
// failure detection for the abort path.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "net/stack.h"

namespace zapc::core {

/// A reliable message stream over one TCP socket: each message is a
/// 32-bit length-prefixed byte blob.  All callbacks fire from engine
/// events (never re-entrantly from inside socket code).
class MsgChannel {
 public:
  using MsgFn = std::function<void(Bytes)>;
  using ClosedFn = std::function<void()>;

  /// Wraps an already-created socket (connected, connecting, or accepted).
  MsgChannel(net::Stack& stack, net::SockId sock);
  ~MsgChannel();

  MsgChannel(const MsgChannel&) = delete;
  MsgChannel& operator=(const MsgChannel&) = delete;

  void set_on_msg(MsgFn fn) { on_msg_ = std::move(fn); }
  void set_on_closed(ClosedFn fn) { on_closed_ = std::move(fn); }

  /// Queues one message; transmission is asynchronous.
  Status send(const Bytes& payload);

  void close();
  bool open() const { return !closed_; }
  /// Whether the underlying TCP connection has completed its handshake
  /// (used by the Manager's connect-phase deadline).
  bool established();
  net::SockId sock() const { return sock_; }

  /// Total payload bytes sent (for transfer accounting in benches).
  u64 bytes_sent() const { return bytes_sent_; }

 private:
  void arm();
  void on_event();
  void pump();
  void deliver();
  void flush();
  void mark_closed();

  net::Stack& stack_;
  net::SockId sock_;
  Bytes rx_;
  std::deque<Bytes> rx_frames_;  // complete frames awaiting delivery
  u64 stall_until_ = 0;          // injected channel stall (virtual µs)
  std::deque<u8> tx_;
  MsgFn on_msg_;
  ClosedFn on_closed_;
  bool closed_ = false;
  bool eof_pending_ = false;  // peer closed; close once rx_frames_ drains
  bool event_scheduled_ = false;
  u64 bytes_sent_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Accepts connections on a port of the given stack and hands each off as
/// a MsgChannel.
class MsgServer {
 public:
  using AcceptFn = std::function<void(std::unique_ptr<MsgChannel>)>;

  MsgServer(net::Stack& stack, u16 port, AcceptFn on_accept);
  ~MsgServer();

  MsgServer(const MsgServer&) = delete;
  MsgServer& operator=(const MsgServer&) = delete;

  u16 port() const { return port_; }
  Status status() const { return status_; }

 private:
  void on_event();

  net::Stack& stack_;
  u16 port_;
  net::SockId listener_ = net::kInvalidSock;
  AcceptFn on_accept_;
  Status status_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Creates a socket on `stack` and starts connecting to `peer`; the
/// channel becomes usable once established (sends queue until then).
std::unique_ptr<MsgChannel> connect_channel(net::Stack& stack,
                                            net::SockAddr peer);

}  // namespace zapc::core
