#include "core/connectivity.h"

#include "net/tcp.h"
#include "util/log.h"

namespace zapc::core {
namespace {

constexpr sim::Time kTickInterval = 500 * sim::kMicrosecond;
constexpr int kMaxConnectRetries = 200;

}  // namespace

ConnectivityRestore::ConnectivityRestore(pod::Pod& pod, ckpt::NetMeta meta,
                                         std::vector<ckpt::SocketImage> sockets,
                                         std::set<net::SockId> unreferenced,
                                         sim::Time timeout, DoneFn done)
    : pod_(pod),
      meta_(std::move(meta)),
      sockets_(std::move(sockets)),
      unreferenced_(std::move(unreferenced)),
      deadline_(pod.engine_now() + timeout),
      done_(std::move(done)) {}

ConnectivityRestore::~ConnectivityRestore() { *alive_ = false; }

void ConnectivityRestore::start() {
  net::Stack& stack = pod_.stack();

  // Phase 1 — local endpoints that need no peer cooperation: listeners
  // first (so incoming connects find them), then UDP/RAW/unconnected and
  // connecting sockets.
  for (const auto& img : sockets_) {
    switch (img.proto) {
      case net::Proto::TCP: {
        if (img.listener) {
          auto sid = stack.sys_socket(net::Proto::TCP);
          if (!sid) return finish(sid.status());
          (void)stack.sys_setsockopt(sid.value(),
                                     net::SockOpt::SO_REUSEADDR, 1);
          Status st = stack.sys_bind(sid.value(), img.local);
          if (!st) return finish(st);
          st = stack.sys_listen(sid.value(), std::max(1, img.backlog));
          if (!st) return finish(st);
          map_[img.old_id] = sid.value();
          listeners_[img.local.port] = sid.value();
        } else if (img.connecting) {
          // Re-initiate the unfinished connect; the application observes
          // the same transient state it checkpointed in.
          auto sid = stack.sys_socket(net::Proto::TCP);
          if (!sid) return finish(sid.status());
          (void)stack.sys_setsockopt(sid.value(),
                                     net::SockOpt::SO_REUSEADDR, 1);
          if (img.bound && img.owns_port) {
            Status st = stack.sys_bind(sid.value(), img.local);
            if (!st) return finish(st);
          }
          Status st = stack.sys_connect(sid.value(), img.remote);
          if (!st.is_ok() && st.err() != Err::IN_PROGRESS) {
            return finish(st);
          }
          map_[img.old_id] = sid.value();
        } else if (!img.connected) {
          // Plain socket, possibly bound, no connection.
          auto sid = stack.sys_socket(net::Proto::TCP);
          if (!sid) return finish(sid.status());
          (void)stack.sys_setsockopt(sid.value(),
                                     net::SockOpt::SO_REUSEADDR, 1);
          if (img.bound && img.owns_port) {
            Status st = stack.sys_bind(sid.value(), img.local);
            if (!st) return finish(st);
          }
          map_[img.old_id] = sid.value();
        }
        break;
      }
      case net::Proto::UDP: {
        auto sid = stack.sys_socket(net::Proto::UDP);
        if (!sid) return finish(sid.status());
        (void)stack.sys_setsockopt(sid.value(), net::SockOpt::SO_REUSEADDR,
                                   1);
        if (img.bound) {
          Status st = stack.sys_bind(sid.value(), img.local);
          if (!st) return finish(st);
        }
        if (img.connected) {
          Status st = stack.sys_connect(sid.value(), img.remote);
          if (!st) return finish(st);
        }
        map_[img.old_id] = sid.value();
        break;
      }
      case net::Proto::RAW: {
        auto sid = stack.sys_socket(net::Proto::RAW);
        if (!sid) return finish(sid.status());
        if (img.raw_proto != 0) {
          Status st = stack.sys_bind_raw(sid.value(), img.raw_proto);
          if (!st) return finish(st);
        }
        if (img.remote.ip.v != 0) {
          (void)stack.sys_connect(sid.value(), img.remote);
        }
        map_[img.old_id] = sid.value();
        break;
      }
    }
  }

  // Phase 2 — split established connections into connect/accept tasks per
  // the Manager's schedule, creating temporary listeners where the accept
  // side has no surviving listener on that port.
  for (const auto& e : meta_.entries) {
    if (e.state == ckpt::ConnState::LISTENER ||
        e.state == ckpt::ConnState::CONNECTING ||
        e.state == ckpt::ConnState::CLOSED) {
      continue;  // handled locally in phase 1; no peer cooperation
    }
    if (e.role == ckpt::PeerRole::CONNECT) {
      connects_.push_back(ConnTask{e, ConnTask::St::PENDING,
                                   net::kInvalidSock, 0});
    } else {
      if (listeners_.count(e.source.port) == 0 &&
          temp_listeners_.count(e.source.port) == 0) {
        auto sid = stack.sys_socket(net::Proto::TCP);
        if (!sid) return finish(sid.status());
        (void)stack.sys_setsockopt(sid.value(), net::SockOpt::SO_REUSEADDR,
                                   1);
        Status st =
            stack.sys_bind(sid.value(), net::SockAddr{pod_.vip(),
                                                      e.source.port});
        if (!st) return finish(st);
        st = stack.sys_listen(sid.value(), 64);
        if (!st) return finish(st);
        temp_listeners_[e.source.port] = sid.value();
      }
      accepts_.push_back(AcceptTask{e, false, net::kInvalidSock});
    }
  }

  tick();
}

void ConnectivityRestore::run_connector() {
  for (ConnTask& t : connects_) {
    drive_connect(t);
    if (finished_) return;
  }
}

void ConnectivityRestore::drive_connect(ConnTask& t) {
  net::Stack& stack = pod_.stack();
  {
    switch (t.st) {
      case ConnTask::St::PENDING: {
        auto sid = stack.sys_socket(net::Proto::TCP);
        if (!sid) return finish(sid.status());
        t.sock = sid.value();
        // The original source port must be preserved so the peer can
        // identify the connection by its 4-tuple.
        (void)stack.sys_setsockopt(t.sock, net::SockOpt::SO_REUSEADDR, 1);
        Status st = stack.sys_bind(t.sock, t.entry.source);
        if (!st) return finish(st);
        st = stack.sys_connect(t.sock, t.entry.target);
        if (!st.is_ok() && st.err() != Err::IN_PROGRESS) return finish(st);
        t.st = ConnTask::St::CONNECTING;
        break;
      }
      case ConnTask::St::CONNECTING: {
        net::TcpSocket* sock = stack.find_tcp(t.sock);
        if (sock == nullptr) return finish(Status(Err::BAD_FD));
        if (sock->state() == net::TcpState::ESTABLISHED) {
          t.st = ConnTask::St::DONE;
          map_[t.entry.sock] = t.sock;
          tag_.event("conn.reformed connect local=" +
                     t.entry.source.to_string() +
                     " remote=" + t.entry.target.to_string() +
                     " retries=" + std::to_string(t.retries));
          break;
        }
        if (sock->state() == net::TcpState::CLOSED) {
          // Refused or reset: the peer's listener may not exist yet
          // (paper: connects may arrive in any order); retry.
          (void)sock->take_error();
          (void)stack.sys_close(t.sock);
          t.sock = net::kInvalidSock;
          if (++t.retries > kMaxConnectRetries) {
            return finish(Status(Err::TIMED_OUT,
                                 "connect retries exhausted for " +
                                     t.entry.target.to_string()));
          }
          t.st = ConnTask::St::PENDING;
        }
        break;
      }
      case ConnTask::St::DONE:
        break;
    }
  }
}

void ConnectivityRestore::run_acceptor() {
  net::Stack& stack = pod_.stack();
  auto scan_listener = [&](net::SockId lid) {
    net::TcpSocket* listener = stack.find_tcp(lid);
    if (listener == nullptr) return;
    // Claim the children that belong to scheduled accepts; anything else
    // stays queued for the application itself.
    std::vector<net::SockId> pending(listener->pending_accepts().begin(),
                                     listener->pending_accepts().end());
    for (net::SockId child_id : pending) {
      net::TcpSocket* child = stack.find_tcp(child_id);
      if (child == nullptr) continue;
      for (AcceptTask& t : accepts_) {
        if (t.matched) continue;
        if (t.entry.source.port == listener->local().port &&
            t.entry.target == child->remote()) {
          listener->take_pending(child_id);
          t.matched = true;
          t.sock = child_id;
          map_[t.entry.sock] = child_id;
          tag_.event("conn.reformed accept local=" +
                     t.entry.source.to_string() +
                     " remote=" + t.entry.target.to_string());
          break;
        }
      }
    }
  };
  for (auto& [port, lid] : listeners_) scan_listener(lid);
  for (auto& [port, lid] : temp_listeners_) scan_listener(lid);
}

void ConnectivityRestore::tick() {
  if (finished_) return;
  if (pod_.engine_now() > deadline_) {
    return finish(Status(Err::TIMED_OUT, "connectivity recovery timeout"));
  }

  if (serial_) {
    run_serial();
  } else {
    run_connector();
    if (finished_) return;
    run_acceptor();
  }
  if (finished_) return;

  bool all_done = true;
  for (const ConnTask& t : connects_) {
    if (t.st != ConnTask::St::DONE) all_done = false;
  }
  for (const AcceptTask& t : accepts_) {
    if (!t.matched) all_done = false;
  }

  if (all_done) {
    // Tear down the temporary listeners; any connection that was pending
    // accept at checkpoint goes back into its (real) listener's queue.
    net::Stack& stack = pod_.stack();
    for (auto& [port, lid] : temp_listeners_) (void)stack.sys_close(lid);
    for (AcceptTask& t : accepts_) {
      if (unreferenced_.count(t.entry.sock) == 0) continue;
      auto lit = listeners_.find(t.entry.source.port);
      if (lit == listeners_.end()) continue;
      net::TcpSocket* listener = stack.find_tcp(lit->second);
      if (listener != nullptr) listener->requeue_accepted(t.sock);
    }
    for (ConnTask& t : connects_) {
      // Symmetric case for connect-side sockets nobody references.
      (void)t;
    }
    return finish(Status::ok());
  }

  pod_.host().engine().schedule(
      kTickInterval, [alive = std::weak_ptr<bool>(alive_), this] {
        if (auto a = alive.lock(); a && *a) tick();
      });
}

void ConnectivityRestore::run_serial() {
  // Naive single-worker recovery: entries strictly in meta-table order.
  // A later entry cannot proceed until every earlier one completed — the
  // ordering-sensitive scheme the two-worker design makes unnecessary.
  for (const auto& e : meta_.entries) {
    if (e.state != ckpt::ConnState::FULL_DUPLEX &&
        e.state != ckpt::ConnState::HALF_DUPLEX) {
      continue;
    }
    if (e.role == ckpt::PeerRole::CONNECT) {
      for (ConnTask& t : connects_) {
        if (t.entry.sock != e.sock) continue;
        if (t.st != ConnTask::St::DONE) {
          drive_connect(t);
          if (finished_) return;
        }
        if (t.st != ConnTask::St::DONE) return;  // blocked: stop here
      }
    } else {
      run_acceptor();  // matching is passive
      for (AcceptTask& t : accepts_) {
        if (t.entry.sock == e.sock && !t.matched) return;  // blocked
      }
    }
  }
}

void ConnectivityRestore::finish(Status st) {
  if (finished_) return;
  finished_ = true;
  if (!st) {
    ZLOG_WARN("connectivity restore for pod " << pod_.name()
                                              << " failed: "
                                              << st.to_string());
  }
  // The callback typically captures the RestartOp that owns this object;
  // release it after the call or the two keep each other alive forever.
  DoneFn done = std::move(done_);
  done_ = nullptr;
  done(std::move(st), std::move(map_));
}

}  // namespace zapc::core
