// Mini-PVM: master/worker task-farm middleware (the PVM analogue used by
// the POV-Ray-style workload, paper §6).
//
// A master daemon hands out opaque tasks to workers on demand and
// collects results; workers pull one task at a time.  Like the mini-MPI,
// everything is guest user-space state over plain sockets and fully
// serializable, so ZapC checkpoints the task farm transparently.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "mpi/msgio.h"
#include "net/addr.h"
#include "os/program.h"

namespace zapc::pvm {

struct Task {
  u32 id = 0;
  Bytes payload;
};

struct TaskResult {
  u32 id = 0;
  Bytes payload;
};

class PvmMaster {
 public:
  PvmMaster() = default;
  PvmMaster(u16 port, i32 expected_workers)
      : port_(port), expected_(expected_workers) {}

  /// Accepts worker connections; true once all expected workers joined.
  bool try_init(os::Syscalls& sys);
  i32 workers_joined() const;

  /// Enqueues a task for any idle worker.
  void submit(Task task) { backlog_.push_back(std::move(task)); }

  /// Pumps connections: assigns backlog tasks to idle workers, collects
  /// results.
  void progress(os::Syscalls& sys);

  /// Next completed result, if any.
  std::optional<TaskResult> pop_result();

  /// True when no submitted task is still queued or running.
  bool drained() const { return backlog_.empty() && outstanding_ == 0; }

  std::vector<int> wait_fds() const;
  bool failed() const;

  void save(Encoder& e) const;
  void load(Decoder& d);

 private:
  struct Slot {
    mpi::MsgIo io;
    bool busy = false;
    u32 task_id = 0;
  };

  u16 port_ = 0;
  i32 expected_ = 0;
  int listen_fd_ = -1;
  bool listener_ready_ = false;
  std::vector<Slot> workers_;
  std::deque<Task> backlog_;
  std::deque<TaskResult> results_;
  u32 outstanding_ = 0;
};

class PvmWorker {
 public:
  PvmWorker() = default;
  explicit PvmWorker(net::SockAddr master) : master_(master) {}

  /// Connects to the master (retrying refusals); true once joined.
  bool try_init(os::Syscalls& sys);

  /// Pulls the next task assigned to this worker, if any.
  std::optional<Task> try_get_task(os::Syscalls& sys);

  /// Sends a result back to the master.
  void post_result(os::Syscalls& sys, const TaskResult& r);

  /// True when the master closed the connection (job finished).
  bool master_gone() const { return io_.failed(); }

  std::vector<int> wait_fds() const {
    return io_.fd() >= 0 ? std::vector<int>{io_.fd()} : std::vector<int>{};
  }

  void save(Encoder& e) const;
  void load(Decoder& d);

 private:
  net::SockAddr master_;
  mpi::MsgIo io_;
  bool connected_ = false;
};

}  // namespace zapc::pvm
