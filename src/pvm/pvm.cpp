#include "pvm/pvm.h"

namespace zapc::pvm {
namespace {

enum : u32 {
  kTagHello = 0x20000001,
  kTagTask = 0x20000002,
  kTagResult = 0x20000003,
};

}  // namespace

// ---- Master ---------------------------------------------------------------------

bool PvmMaster::try_init(os::Syscalls& sys) {
  if (!listener_ready_) {
    if (listen_fd_ < 0) {
      auto fd = sys.socket(net::Proto::TCP);
      if (!fd) return false;
      listen_fd_ = fd.value();
      (void)sys.setsockopt(listen_fd_, net::SockOpt::SO_REUSEADDR, 1);
    }
    if (!sys.bind(listen_fd_, net::SockAddr{net::kAnyAddr, port_})) {
      return false;
    }
    if (!sys.listen(listen_fd_, expected_ + 4)) return false;
    listener_ready_ = true;
  }
  while (static_cast<i32>(workers_.size()) < expected_) {
    auto child = sys.accept(listen_fd_, nullptr);
    if (!child) break;
    Slot s;
    s.io = mpi::MsgIo(child.value());
    workers_.push_back(std::move(s));
  }
  progress(sys);
  return static_cast<i32>(workers_.size()) >= expected_;
}

i32 PvmMaster::workers_joined() const {
  return static_cast<i32>(workers_.size());
}

void PvmMaster::progress(os::Syscalls& sys) {
  for (Slot& s : workers_) {
    if (s.io.fd() < 0) continue;
    (void)s.io.progress(sys);

    // Collect results.
    while (auto m = s.io.pop_tag(kTagResult)) {
      Decoder d(m->data);
      TaskResult r;
      r.id = d.u32_().value_or(0);
      r.payload = d.bytes_().value_or({});
      results_.push_back(std::move(r));
      if (s.busy && s.task_id == results_.back().id) {
        s.busy = false;
        if (outstanding_ > 0) --outstanding_;
      }
    }

    // Assign work to idle workers.
    if (!s.busy && !backlog_.empty() && !s.io.failed()) {
      Task t = std::move(backlog_.front());
      backlog_.pop_front();
      Encoder e;
      e.put_u32(t.id);
      e.put_bytes(t.payload);
      s.io.send(kTagTask, e.take());
      (void)s.io.progress(sys);
      s.busy = true;
      s.task_id = t.id;
      ++outstanding_;
    }
  }
}

std::optional<TaskResult> PvmMaster::pop_result() {
  if (results_.empty()) return std::nullopt;
  TaskResult r = std::move(results_.front());
  results_.pop_front();
  return r;
}

std::vector<int> PvmMaster::wait_fds() const {
  std::vector<int> fds;
  if (listen_fd_ >= 0) fds.push_back(listen_fd_);
  for (const Slot& s : workers_) {
    if (s.io.fd() >= 0) fds.push_back(s.io.fd());
  }
  return fds;
}

bool PvmMaster::failed() const {
  for (const Slot& s : workers_) {
    if (s.io.failed()) return true;
  }
  return false;
}

void PvmMaster::save(Encoder& e) const {
  e.put_u16(port_);
  e.put_i32(expected_);
  e.put_i32(listen_fd_);
  e.put_bool(listener_ready_);
  e.put_u32(static_cast<u32>(workers_.size()));
  for (const Slot& s : workers_) {
    s.io.save(e);
    e.put_bool(s.busy);
    e.put_u32(s.task_id);
  }
  e.put_u32(static_cast<u32>(backlog_.size()));
  for (const Task& t : backlog_) {
    e.put_u32(t.id);
    e.put_bytes(t.payload);
  }
  e.put_u32(static_cast<u32>(results_.size()));
  for (const TaskResult& r : results_) {
    e.put_u32(r.id);
    e.put_bytes(r.payload);
  }
  e.put_u32(outstanding_);
}

void PvmMaster::load(Decoder& d) {
  port_ = d.u16_().value_or(0);
  expected_ = d.i32_().value_or(0);
  listen_fd_ = d.i32_().value_or(-1);
  listener_ready_ = d.bool_().value_or(false);
  u32 nw = d.u32_().value_or(0);
  workers_.clear();
  for (u32 i = 0; i < nw; ++i) {
    Slot s;
    s.io.load(d);
    s.busy = d.bool_().value_or(false);
    s.task_id = d.u32_().value_or(0);
    workers_.push_back(std::move(s));
  }
  backlog_.clear();
  u32 nb = d.u32_().value_or(0);
  for (u32 i = 0; i < nb; ++i) {
    Task t;
    t.id = d.u32_().value_or(0);
    t.payload = d.bytes_().value_or({});
    backlog_.push_back(std::move(t));
  }
  results_.clear();
  u32 nr = d.u32_().value_or(0);
  for (u32 i = 0; i < nr; ++i) {
    TaskResult r;
    r.id = d.u32_().value_or(0);
    r.payload = d.bytes_().value_or({});
    results_.push_back(std::move(r));
  }
  outstanding_ = d.u32_().value_or(0);
}

// ---- Worker ---------------------------------------------------------------------

bool PvmWorker::try_init(os::Syscalls& sys) {
  if (connected_) return true;
  if (io_.fd() < 0 || io_.failed()) {
    if (io_.fd() >= 0) (void)sys.close(io_.fd());
    auto fd = sys.socket(net::Proto::TCP);
    if (!fd) return false;
    Status st = sys.connect(fd.value(), master_);
    if (!st.is_ok() && st.err() != Err::IN_PROGRESS) return false;
    io_ = mpi::MsgIo(fd.value());
    io_.send(kTagHello, {});
  }
  (void)io_.progress(sys);
  if (io_.flushed() && !io_.failed()) connected_ = true;
  return connected_;
}

std::optional<Task> PvmWorker::try_get_task(os::Syscalls& sys) {
  (void)io_.progress(sys);
  auto m = io_.pop_tag(kTagTask);
  if (!m) return std::nullopt;
  Decoder d(m->data);
  Task t;
  t.id = d.u32_().value_or(0);
  t.payload = d.bytes_().value_or({});
  return t;
}

void PvmWorker::post_result(os::Syscalls& sys, const TaskResult& r) {
  Encoder e;
  e.put_u32(r.id);
  e.put_bytes(r.payload);
  io_.send(kTagResult, e.take());
  (void)io_.progress(sys);
}

void PvmWorker::save(Encoder& e) const {
  e.put_u32(master_.ip.v);
  e.put_u16(master_.port);
  io_.save(e);
  e.put_bool(connected_);
}

void PvmWorker::load(Decoder& d) {
  master_.ip.v = d.u32_().value_or(0);
  master_.port = d.u16_().value_or(0);
  io_.load(d);
  connected_ = d.bool_().value_or(false);
}

}  // namespace zapc::pvm
