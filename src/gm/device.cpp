#include "gm/device.h"

#include "util/log.h"

namespace zapc::gm {
namespace {

constexpr sim::Time kRetransmitPeriod = 20 * sim::kMillisecond;
constexpr std::size_t kMaxUnackedPerPeer = 64;

enum class WireType : u8 { DATA = 1, ACK = 2 };

}  // namespace

GmDevice::GmDevice(sim::Engine& engine, net::IpAddr vip,
                   std::function<void(net::Packet)> output)
    : engine_(engine), vip_(vip), output_(std::move(output)) {}

GmDevice::~GmDevice() {
  *alive_ = false;
  if (timer_ != 0) engine_.cancel(timer_);
}

// ---- Library interface -----------------------------------------------------------

Status GmDevice::open_port(int port) {
  if (port < 0 || port >= kMaxPorts) return Status(Err::INVALID, "bad port");
  Port& p = ports_[port];
  if (p.open) return Status(Err::ADDR_IN_USE, "port open");
  p.open = true;
  return Status::ok();
}

Status GmDevice::close_port(int port) {
  auto it = ports_.find(port);
  if (it == ports_.end() || !it->second.open) return Status(Err::BAD_FD);
  ports_.erase(it);
  return Status::ok();
}

Status GmDevice::send(int port, net::SockAddr dst, const Bytes& data) {
  auto it = ports_.find(port);
  if (it == ports_.end() || !it->second.open) return Status(Err::BAD_FD);
  if (data.size() > kMaxMessage) return Status(Err::MSG_SIZE);

  PeerKey key{port, dst};
  auto& pending = unacked_[key];
  if (pending.size() >= kMaxUnackedPerPeer) {
    return Status(Err::NO_BUFS, "send window full");
  }
  u32 seq = next_seq_[key]++;
  pending.push_back(Unacked{seq, data});
  transmit(port, dst, seq, data);
  arm_timer();
  return Status::ok();
}

std::optional<GmMessage> GmDevice::recv(int port) {
  auto it = ports_.find(port);
  if (it == ports_.end() || !it->second.open) return std::nullopt;
  if (it->second.recv_q.empty()) return std::nullopt;
  GmMessage m = std::move(it->second.recv_q.front());
  it->second.recv_q.pop_front();
  return m;
}

bool GmDevice::sends_drained(int port) const {
  for (const auto& [key, q] : unacked_) {
    if (key.port == port && !q.empty()) return false;
  }
  return true;
}

std::size_t GmDevice::unacked_total() const {
  std::size_t n = 0;
  for (const auto& [key, q] : unacked_) n += q.size();
  return n;
}

// ---- Wire ------------------------------------------------------------------------

void GmDevice::transmit(int port, net::SockAddr dst, u32 seq,
                        const Bytes& data) {
  net::Packet p;
  p.proto = net::Proto::RAW;
  p.raw_proto = kGmProto;
  p.src = net::SockAddr{vip_, static_cast<u16>(port)};
  p.dst = dst;
  Encoder e;
  e.put_u8(static_cast<u8>(WireType::DATA));
  e.put_u32(seq);
  e.put_bytes(data);
  p.payload = e.take();
  output_(std::move(p));
}

void GmDevice::send_ack(int port, net::SockAddr dst, u32 seq) {
  net::Packet p;
  p.proto = net::Proto::RAW;
  p.raw_proto = kGmProto;
  p.src = net::SockAddr{vip_, static_cast<u16>(port)};
  p.dst = dst;
  Encoder e;
  e.put_u8(static_cast<u8>(WireType::ACK));
  e.put_u32(seq);
  p.payload = e.take();
  output_(std::move(p));
}

void GmDevice::handle_packet(const net::Packet& p) {
  Decoder d(p.payload);
  auto type = static_cast<WireType>(d.u8_().value_or(0));
  u32 seq = d.u32_().value_or(0);
  int local_port = p.dst.port;
  net::SockAddr remote = p.src;

  if (type == WireType::ACK) {
    PeerKey key{local_port, remote};
    auto it = unacked_.find(key);
    if (it == unacked_.end()) return;
    while (!it->second.empty() &&
           static_cast<i32>(seq - it->second.front().seq) >= 0) {
      it->second.pop_front();  // cumulative ACK
    }
    return;
  }

  // DATA: accept in order, drop duplicates/out-of-order (the sender
  // retransmits in order, so in-order eventually arrives).
  auto pit = ports_.find(local_port);
  if (pit == ports_.end() || !pit->second.open) return;
  PeerKey key{local_port, remote};
  u32& expected = expected_seq_[key];
  if (seq != expected) {
    // Duplicate (already delivered): re-ACK so the sender stops.
    if (static_cast<i32>(seq - expected) < 0) {
      send_ack(local_port, remote, expected - 1);
    }
    return;
  }
  if (pit->second.recv_q.size() >= kRecvQueueLimit) return;  // back off
  Bytes data = d.bytes_().value_or({});
  pit->second.recv_q.push_back(GmMessage{remote, std::move(data)});
  expected = seq + 1;
  send_ack(local_port, remote, seq);
}

void GmDevice::arm_timer() {
  if (timer_ != 0) return;
  timer_ = engine_.schedule(kRetransmitPeriod,
                            [alive = std::weak_ptr<bool>(alive_), this] {
                              if (auto a = alive.lock(); a && *a) {
                                timer_ = 0;
                                on_timer();
                              }
                            });
}

void GmDevice::on_timer() {
  bool outstanding = false;
  for (auto& [key, q] : unacked_) {
    for (const Unacked& u : q) {
      transmit(key.port, key.remote, u.seq, u.data);
      ++retransmissions_;
      outstanding = true;
    }
  }
  if (outstanding) arm_timer();
}

// ---- Checkpoint -------------------------------------------------------------------

Bytes GmDevice::extract_state() const {
  Encoder e;
  e.put_u32(static_cast<u32>(ports_.size()));
  for (const auto& [id, port] : ports_) {
    e.put_i32(id);
    e.put_bool(port.open);
    e.put_u32(static_cast<u32>(port.recv_q.size()));
    for (const GmMessage& m : port.recv_q) {
      e.put_u32(m.from.ip.v);
      e.put_u16(m.from.port);
      e.put_bytes(m.data);
    }
  }
  auto put_peer_map_u32 = [&e](const std::map<PeerKey, u32>& m) {
    e.put_u32(static_cast<u32>(m.size()));
    for (const auto& [key, v] : m) {
      e.put_i32(key.port);
      e.put_u32(key.remote.ip.v);
      e.put_u16(key.remote.port);
      e.put_u32(v);
    }
  };
  put_peer_map_u32(next_seq_);
  put_peer_map_u32(expected_seq_);
  e.put_u32(static_cast<u32>(unacked_.size()));
  for (const auto& [key, q] : unacked_) {
    e.put_i32(key.port);
    e.put_u32(key.remote.ip.v);
    e.put_u16(key.remote.port);
    e.put_u32(static_cast<u32>(q.size()));
    for (const Unacked& u : q) {
      e.put_u32(u.seq);
      e.put_bytes(u.data);
    }
  }
  return e.take();
}

Status GmDevice::reinstate(const Bytes& state) {
  Decoder d(state);
  ports_.clear();
  next_seq_.clear();
  expected_seq_.clear();
  unacked_.clear();

  u32 nports = d.count_(6).value_or(0);
  for (u32 i = 0; i < nports; ++i) {
    int id = d.i32_().value_or(0);
    Port& p = ports_[id];
    p.open = d.bool_().value_or(false);
    u32 nmsg = d.count_(10).value_or(0);
    for (u32 m = 0; m < nmsg; ++m) {
      GmMessage msg;
      msg.from.ip.v = d.u32_().value_or(0);
      msg.from.port = d.u16_().value_or(0);
      msg.data = d.bytes_().value_or({});
      p.recv_q.push_back(std::move(msg));
    }
  }
  auto get_peer_map_u32 = [&d](std::map<PeerKey, u32>& m) {
    u32 n = d.count_(14).value_or(0);
    for (u32 i = 0; i < n; ++i) {
      PeerKey key;
      key.port = d.i32_().value_or(0);
      key.remote.ip.v = d.u32_().value_or(0);
      key.remote.port = d.u16_().value_or(0);
      m[key] = d.u32_().value_or(0);
    }
  };
  get_peer_map_u32(next_seq_);
  get_peer_map_u32(expected_seq_);
  u32 nun = d.count_(14).value_or(0);
  for (u32 i = 0; i < nun; ++i) {
    PeerKey key;
    key.port = d.i32_().value_or(0);
    key.remote.ip.v = d.u32_().value_or(0);
    key.remote.port = d.u16_().value_or(0);
    u32 nq = d.count_(8).value_or(0);
    auto& q = unacked_[key];
    for (u32 m = 0; m < nq; ++m) {
      Unacked u;
      u.seq = d.u32_().value_or(0);
      u.data = d.bytes_().value_or({});
      q.push_back(std::move(u));
    }
  }
  // Unacknowledged messages resume retransmitting on the new device.
  if (unacked_total() > 0) arm_timer();
  return Status::ok();
}

}  // namespace zapc::gm
