// GM-style kernel-bypass messaging device (the paper's §5 extension).
//
// "Some high performance clusters employ MPI implementations based on
// specialized high-speed networks where it is typical for the
// applications to bypass the operating system kernel and directly access
// the actual device using a dedicated communication library.  Myrinet
// combined with the GM library is one such example.  The ZapC approach
// can be extended to work in such environments if two key requirements
// are met.  First, the library must be decoupled from the device driver
// instance, by virtualizing the relevant interface ...  Second, there
// must be some method to extract the state kept by the device driver, as
// well as reinstate this state on another such device driver."
//
// This module implements both requirements on the simulated cluster:
//
//  * GmDevice is a per-pod "NIC" with numbered ports, reliable in-order
//    delivery (per-sender sequence numbers, device-level ACKs,
//    retransmission) and its own protocol number on the wire — packets
//    never touch the socket stack, mirroring OS-bypass.
//  * Guest programs reach the device only through the pod's virtualized
//    interface (PodSyscalls::gm_*), the analogue of interposing on the
//    library's ioctl/mmap channel; like real GM applications they poll
//    for completion rather than blocking in the kernel.
//  * extract_state()/reinstate() serialize the complete device state —
//    port bindings, receive queues, unacknowledged sends, per-peer
//    sequence expectations — so the network-state checkpoint can carry
//    it to another device instance on another node.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "net/addr.h"
#include "net/packet.h"
#include "sim/engine.h"
#include "util/serialize.h"
#include "util/status.h"

namespace zapc::gm {

/// IP protocol number carrying GM traffic on the overlay.
constexpr u8 kGmProto = 71;

/// One delivered message as seen by a port's receive queue.
struct GmMessage {
  net::SockAddr from;  // sender vip + port
  Bytes data;
};

class GmDevice {
 public:
  static constexpr int kMaxPorts = 8;
  static constexpr std::size_t kMaxMessage = 16 * 1024;
  static constexpr std::size_t kRecvQueueLimit = 256;

  /// `vip` is the owning pod's virtual address; `output` injects packets
  /// into the pod's egress path (filter + location routing).
  GmDevice(sim::Engine& engine, net::IpAddr vip,
           std::function<void(net::Packet)> output);
  ~GmDevice();

  GmDevice(const GmDevice&) = delete;
  GmDevice& operator=(const GmDevice&) = delete;

  // ---- Virtualized library interface (reached via PodSyscalls) ---------
  Status open_port(int port);
  Status close_port(int port);
  /// Queues a message for reliable delivery; Err::NO_BUFS when too many
  /// sends are outstanding, Err::MSG_SIZE above kMaxMessage.
  Status send(int port, net::SockAddr dst, const Bytes& data);
  /// Polls the port's receive queue (GM applications spin on this).
  std::optional<GmMessage> recv(int port);
  /// True when every queued send has been acknowledged.
  bool sends_drained(int port) const;

  // ---- Device/driver interface ------------------------------------------
  /// Ingress from the node router (packets with raw_proto == kGmProto).
  void handle_packet(const net::Packet& p);

  /// Serializes the complete driver state (paper requirement 2).
  Bytes extract_state() const;
  /// Reinstates state extracted from another device instance.
  Status reinstate(const Bytes& state);

  /// Stats for tests/benches.
  u64 retransmissions() const { return retransmissions_; }
  std::size_t unacked_total() const;

 private:
  struct PeerKey {
    int port;              // local port
    net::SockAddr remote;  // peer vip + port
    bool operator<(const PeerKey& o) const {
      if (port != o.port) return port < o.port;
      if (remote.ip != o.remote.ip) return remote.ip < o.remote.ip;
      return remote.port < o.remote.port;
    }
  };
  struct Unacked {
    u32 seq;
    Bytes data;
  };
  struct Port {
    bool open = false;
    std::deque<GmMessage> recv_q;
  };

  void transmit(int port, net::SockAddr dst, u32 seq, const Bytes& data);
  void send_ack(int port, net::SockAddr dst, u32 seq);
  void arm_timer();
  void on_timer();

  sim::Engine& engine_;
  net::IpAddr vip_;
  std::function<void(net::Packet)> output_;

  std::map<int, Port> ports_;
  std::map<PeerKey, u32> next_seq_;              // sender side
  std::map<PeerKey, std::deque<Unacked>> unacked_;
  std::map<PeerKey, u32> expected_seq_;          // receiver side

  sim::EventId timer_ = 0;
  u64 retransmissions_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace zapc::gm
