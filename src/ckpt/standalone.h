// Standalone pod checkpoint-restart (the Zap substrate of paper §3).
//
// Captures and restores all per-node, non-network application state:
// process control state (program state machine, exit status), file
// descriptor tables, bulk memory regions, application timers, and the
// pod's namespace/time-virtualization state.  Network state is handled
// separately by core/netckpt (the ZapC contribution); the two halves meet
// in the PodImage container.
#pragma once

#include <unordered_map>

#include "ckpt/image.h"
#include "pod/pod.h"

namespace zapc::ckpt {

/// Maps old socket ids (from the image) to the sockets created during
/// network-state restore.
using SockMap = std::unordered_map<net::SockId, net::SockId>;

/// Region generations as of a prior (base) checkpoint, used to decide
/// which regions a delta checkpoint must re-emit.  Built from the
/// ProcessImages of the base capture, so it reflects exactly what that
/// image contains — not whatever the pod mutated since.
struct DeltaBaseline {
  /// vpid -> region name -> generation at the base checkpoint.
  std::map<i32, std::map<std::string, u64>> gens;

  static DeltaBaseline from_images(const std::vector<ProcessImage>& images);
  bool empty() const { return gens.empty(); }
};

class Standalone {
 public:
  /// Captures the pod header (namespace + time-virtualization state).
  /// The pod must be suspended.
  static PodImageHeader save_header(const pod::Pod& pod);

  /// Captures one process: program state, fd table, memory, timers.
  /// With a non-null `baseline`, region bytes are included only for
  /// regions that are new or whose generation changed since the baseline
  /// (delta mode); the manifest always lists every live region.
  static ProcessImage save_process(const pod::Pod& pod,
                                   const os::Process& proc,
                                   const DeltaBaseline* baseline = nullptr);

  /// Captures every process of the pod (sorted by vpid).  See
  /// save_process for `baseline` semantics.
  static std::vector<ProcessImage> save_processes(
      pod::Pod& pod, const DeltaBaseline* baseline = nullptr);

  /// Applies the header to a freshly created pod: vpid counter and the
  /// time bias delta = (checkpoint virtual time) − (current time), so the
  /// pod's clock resumes where it stopped (paper §5).
  static void restore_header(pod::Pod& pod, const PodImageHeader& header);

  /// Recreates one process in STOPPED state.  fd table entries are
  /// remapped through `socks`; Err::NO_ENT if the program kind is not
  /// registered or a socket id is missing.
  static Status restore_process(pod::Pod& pod, const ProcessImage& image,
                                const SockMap& socks);

  /// Restores all processes.
  static Status restore_processes(pod::Pod& pod,
                                  const std::vector<ProcessImage>& images,
                                  const SockMap& socks);
};

}  // namespace zapc::ckpt
