#include "ckpt/image.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace zapc::ckpt {
namespace {

constexpr u32 kImageMagic = 0x5A415043;  // "ZAPC"
// v2 appends codec/delta fields to the header record; decoders treat
// missing trailing fields as defaults, so v1 images still decode and v1
// readers ignore the extra header bytes.
constexpr u16 kFormatVersion = 2;

bool is_all_zero(const Bytes& b) {
  for (u8 v : b) {
    if (v != 0) return false;
  }
  return true;
}

void put_addr(Encoder& e, const net::SockAddr& a) {
  e.put_u32(a.ip.v);
  e.put_u16(a.port);
}

net::SockAddr get_addr(Decoder& d) {
  net::SockAddr a;
  a.ip.v = d.u32_().value_or(0);
  a.port = d.u16_().value_or(0);
  return a;
}

Bytes encode_header(const PodImageHeader& h) {
  Encoder e;
  e.put_u32(kImageMagic);
  e.put_string(h.pod_name);
  e.put_u32(h.vip.v);
  e.put_i32(h.next_vpid);
  e.put_bool(h.time_virt);
  e.put_u64(h.ckpt_virtual_time);
  e.put_i64(h.time_delta);
  // v2 trailer.
  e.put_u32(h.codec_flags);
  e.put_u32(h.delta_seq);
  e.put_string(h.base_uri);
  return e.take();
}

Result<PodImageHeader> decode_header(const Bytes& b) {
  Decoder d(b);
  auto magic = d.u32_();
  if (!magic || magic.value() != kImageMagic) {
    return Status(Err::PROTO, "bad image magic");
  }
  PodImageHeader h;
  h.pod_name = d.string_().value_or("");
  h.vip.v = d.u32_().value_or(0);
  h.next_vpid = d.i32_().value_or(1);
  h.time_virt = d.bool_().value_or(true);
  h.ckpt_virtual_time = d.u64_().value_or(0);
  h.time_delta = d.i64_().value_or(0);
  // v2 trailer (absent in v1 images).
  h.codec_flags = d.u32_().value_or(0);
  h.delta_seq = d.u32_().value_or(0);
  h.base_uri = d.string_().value_or("");
  return h;
}

Bytes encode_socket(const SocketImage& s) {
  Encoder e;
  e.put_u32(s.old_id);
  e.put_u8(static_cast<u8>(s.proto));
  e.put_u32(static_cast<u32>(s.params.size()));
  for (i64 v : s.params) e.put_i64(v);
  put_addr(e, s.local);
  put_addr(e, s.remote);
  e.put_bool(s.bound);
  e.put_bool(s.owns_port);
  e.put_bool(s.listener);
  e.put_i32(s.backlog);
  e.put_bool(s.connecting);
  e.put_bool(s.connected);
  e.put_bool(s.shut_rd);
  e.put_bool(s.shut_wr);
  e.put_bool(s.peer_closed);
  e.put_u32(static_cast<u32>(s.recv_queue.size()));
  for (const auto& item : s.recv_queue) {
    e.put_bytes(item.data);
    put_addr(e, item.from);
    e.put_bool(item.oob);
  }
  e.put_bytes(s.send_queue);
  e.put_bool(s.send_queue_redirected);
  e.put_u32(s.pcb_sent);
  e.put_u32(s.pcb_acked);
  e.put_u32(s.pcb_recv);
  e.put_u8(s.raw_proto);
  return e.take();
}

Result<SocketImage> decode_socket(const Bytes& b) {
  Decoder d(b);
  SocketImage s;
  s.old_id = d.u32_().value_or(0);
  s.proto = static_cast<net::Proto>(d.u8_().value_or(6));
  u32 nparams = d.count_(8).value_or(0xFFFFFFFF);
  if (nparams == 0xFFFFFFFF) return Status(Err::PROTO, "bad param count");
  for (u32 i = 0; i < nparams; ++i) {
    i64 v = d.i64_().value_or(0);
    if (i < s.params.size()) s.params[i] = v;
  }
  s.local = get_addr(d);
  s.remote = get_addr(d);
  s.bound = d.bool_().value_or(false);
  s.owns_port = d.bool_().value_or(false);
  s.listener = d.bool_().value_or(false);
  s.backlog = d.i32_().value_or(0);
  s.connecting = d.bool_().value_or(false);
  s.connected = d.bool_().value_or(false);
  s.shut_rd = d.bool_().value_or(false);
  s.shut_wr = d.bool_().value_or(false);
  s.peer_closed = d.bool_().value_or(false);
  auto nitems_r = d.count_(11);
  if (!nitems_r) return nitems_r.status();
  u32 nitems = nitems_r.value();
  for (u32 i = 0; i < nitems; ++i) {
    SavedRecvItem item;
    item.data = d.bytes_().value_or({});
    item.from = get_addr(d);
    item.oob = d.bool_().value_or(false);
    s.recv_queue.push_back(std::move(item));
  }
  s.send_queue = d.bytes_().value_or({});
  s.send_queue_redirected = d.bool_().value_or(false);
  s.pcb_sent = d.u32_().value_or(0);
  s.pcb_acked = d.u32_().value_or(0);
  s.pcb_recv = d.u32_().value_or(0);
  s.raw_proto = d.u8_().value_or(0);
  if (!d.at_end()) return Status(Err::PROTO, "trailing socket bytes");
  return s;
}

Bytes encode_process(const ProcessImage& p) {
  Encoder e;
  e.put_i32(p.vpid);
  e.put_string(p.kind);
  e.put_bool(p.exited);
  e.put_i32(p.exit_code);
  e.put_i32(p.next_fd);
  e.put_bytes(p.program_state);
  e.put_u32(static_cast<u32>(p.fds.size()));
  for (const auto& [fd, sid] : p.fds) {
    e.put_i32(fd);
    e.put_u32(sid);
  }
  e.put_u32(static_cast<u32>(p.timer_remaining.size()));
  for (const auto& [id, rem] : p.timer_remaining) {
    e.put_u32(id);
    e.put_i64(rem);
  }
  return e.take();
}

Result<ProcessImage> decode_process(const Bytes& b) {
  Decoder d(b);
  ProcessImage p;
  p.vpid = d.i32_().value_or(0);
  p.kind = d.string_().value_or("");
  p.exited = d.bool_().value_or(false);
  p.exit_code = d.i32_().value_or(0);
  p.next_fd = d.i32_().value_or(3);
  p.program_state = d.bytes_().value_or({});
  auto nfds_r = d.count_(8);
  if (!nfds_r) return nfds_r.status();
  u32 nfds = nfds_r.value();
  for (u32 i = 0; i < nfds; ++i) {
    int fd = d.i32_().value_or(-1);
    net::SockId sid = d.u32_().value_or(0);
    p.fds[fd] = sid;
  }
  auto ntimers_r = d.count_(12);
  if (!ntimers_r) return ntimers_r.status();
  u32 ntimers = ntimers_r.value();
  for (u32 i = 0; i < ntimers; ++i) {
    u32 id = d.u32_().value_or(0);
    i64 rem = d.i64_().value_or(0);
    p.timer_remaining[id] = rem;
  }
  if (!d.at_end()) return Status(Err::PROTO, "trailing process bytes");
  return p;
}

Bytes encode_manifest(const ProcessImage& p) {
  Encoder e;
  e.put_i32(p.vpid);
  e.put_u64(p.region_gen_counter);
  e.put_u32(static_cast<u32>(p.manifest.size()));
  for (const auto& [name, meta] : p.manifest) {
    e.put_string(name);
    e.put_u64(meta.gen);
    e.put_u64(meta.size);
  }
  return e.take();
}

Bytes encode_meta_payload(const NetMeta& m) {
  Encoder e;
  e.put_u32(m.pod_vip.v);
  e.put_u32(static_cast<u32>(m.entries.size()));
  for (const auto& entry : m.entries) {
    e.put_u32(entry.sock);
    e.put_u8(static_cast<u8>(entry.proto));
    put_addr(e, entry.source);
    put_addr(e, entry.target);
    e.put_u8(static_cast<u8>(entry.state));
    e.put_u8(static_cast<u8>(entry.role));
    e.put_u32(entry.pcb_sent);
    e.put_u32(entry.pcb_acked);
    e.put_u32(entry.pcb_recv);
    e.put_u32(entry.discard_send);
    e.put_bool(entry.redirect_expected);
  }
  return e.take();
}

Result<NetMeta> decode_meta_payload(const Bytes& b) {
  Decoder d(b);
  NetMeta m;
  m.pod_vip.v = d.u32_().value_or(0);
  auto n_r = d.count_(30);
  if (!n_r) return n_r.status();
  u32 n = n_r.value();
  for (u32 i = 0; i < n; ++i) {
    NetMetaEntry entry;
    entry.sock = d.u32_().value_or(0);
    entry.proto = static_cast<net::Proto>(d.u8_().value_or(6));
    entry.source = get_addr(d);
    entry.target = get_addr(d);
    entry.state = static_cast<ConnState>(d.u8_().value_or(0));
    entry.role = static_cast<PeerRole>(d.u8_().value_or(0));
    entry.pcb_sent = d.u32_().value_or(0);
    entry.pcb_acked = d.u32_().value_or(0);
    entry.pcb_recv = d.u32_().value_or(0);
    entry.discard_send = d.u32_().value_or(0);
    entry.redirect_expected = d.bool_().value_or(false);
    m.entries.push_back(entry);
  }
  if (!d.at_end()) return Status(Err::PROTO, "trailing meta bytes");
  return m;
}

}  // namespace

const char* conn_state_name(ConnState s) {
  switch (s) {
    case ConnState::FULL_DUPLEX: return "full-duplex";
    case ConnState::HALF_DUPLEX: return "half-duplex";
    case ConnState::CLOSED: return "closed";
    case ConnState::CONNECTING: return "connecting";
    case ConnState::LISTENER: return "listener";
  }
  return "?";
}

std::size_t SocketImage::byte_size() const {
  std::size_t n = send_queue.size() + 128;  // queue + fixed fields
  for (const auto& item : recv_queue) n += item.data.size() + 12;
  return n;
}

std::size_t PodImage::total_bytes() const {
  return encode_image(*this).size();
}

std::size_t PodImage::network_bytes() const {
  std::size_t n = encode_meta_payload(meta).size();
  for (const auto& s : sockets) n += s.byte_size();
  for (const auto& [sid, data] : redirected_recv) n += data.size();
  return n;
}

namespace {

std::size_t region_records_hint(const PodImage& image) {
  // Per-record framing is tag(4)+version(2)+len(8)+crc(4) = 18 bytes.
  std::size_t n = 0;
  for (const auto& p : image.processes) {
    for (const auto& [name, bytes] : p.regions) {
      n += 18 + 4 + 4 + name.size() + 4 + bytes.size();
    }
    n += 18 + encode_manifest(p).size();
  }
  return n;
}

}  // namespace

std::size_t encoded_size_hint(const PodImage& image) {
  std::size_t n = region_records_hint(image);
  for (const auto& s : image.sockets) n += 18 + s.byte_size();
  for (const auto& [sid, data] : image.redirected_recv) {
    n += 18 + 8 + data.size();
  }
  for (const auto& p : image.processes) {
    n += 18 + 64 + p.program_state.size() + 8 * p.fds.size() +
         12 * p.timer_remaining.size();
  }
  n += 18 + 48 + image.header.pod_name.size() +
       image.header.base_uri.size();                      // header
  n += 18 + 8 + 35 * image.meta.entries.size();           // net meta
  n += 18 + image.gm_state.size();                        // gm device
  n += 18;                                                // terminator
  return n;
}

Bytes encode_image(const PodImage& image) {
  RecordWriter w;
  // A size-hint reserve keeps the multi-megabyte encode from paying
  // repeated geometric-growth reallocations (and, before the reserve,
  // effectively quadratic copying on region-heavy images).  The hint may
  // overshoot when the codec elides regions; that only wastes capacity.
  w.reserve(encoded_size_hint(image));
  // Account each framed record against its per-type byte counter, so
  // the evidence export shows where checkpoint image bytes go (the paper
  // Fig. 6c breakdown: memory vs network vs meta-data).
  auto account = [&w](RecordTag tag, std::size_t before) {
    obs::metrics()
        .counter(std::string("ckpt.record.") + record_tag_name(tag) +
                 ".bytes")
        .inc(w.size() - before);
  };
  auto put = [&](RecordTag tag, const Bytes& payload) {
    std::size_t before = w.size();
    w.write(tag, kFormatVersion, payload);
    account(tag, before);
  };

  put(RecordTag::IMAGE_HEADER, encode_header(image.header));
  // Network state precedes process state (paper §4: the network
  // checkpoint runs first so it can overlap the Manager barrier).
  put(RecordTag::NET_META, encode_meta_payload(image.meta));
  for (const auto& s : image.sockets) {
    put(RecordTag::SOCKET_PARAMS, encode_socket(s));
  }
  if (image.has_gm_device) {
    put(RecordTag::GM_DEVICE, image.gm_state);
  }
  for (const auto& [sid, data] : image.redirected_recv) {
    Encoder e;
    e.put_u32(sid);
    e.put_bytes(data);
    put(RecordTag::REDIRECTED_SEND_Q, e.take());
  }

  const bool zero_elide = (image.header.codec_flags & kCodecZeroElide) != 0;
  const bool dedup = (image.header.codec_flags & kCodecDedup) != 0;
  // Content index for dedup: (crc32, size) key, memcmp-verified before a
  // back-reference is emitted.  References always point at a region that
  // appears earlier in the record stream, so decode resolves them in one
  // pass.
  struct RegionRef {
    i32 vpid;
    const std::string* name;
    const Bytes* bytes;
  };
  std::map<std::pair<u32, u64>, std::vector<RegionRef>> content_index;
  u64 zero_saved = 0;
  u64 dedup_saved = 0;

  for (const auto& p : image.processes) {
    put(RecordTag::PROCESS, encode_process(p));
    if (!p.manifest.empty() || p.region_gen_counter != 0) {
      put(RecordTag::REGION_MANIFEST, encode_manifest(p));
    }
    for (const auto& [name, bytes] : p.regions) {
      if (zero_elide && !bytes.empty() && is_all_zero(bytes)) {
        Encoder e;
        e.put_i32(p.vpid);
        e.put_string(name);
        e.put_u64(bytes.size());
        put(RecordTag::MEM_REGION_ZERO, e.take());
        zero_saved += bytes.size();
        continue;
      }
      if (dedup) {
        auto key = std::make_pair(crc32(bytes), u64{bytes.size()});
        auto& bucket = content_index[key];
        const RegionRef* hit = nullptr;
        for (const auto& cand : bucket) {
          if (std::memcmp(cand.bytes->data(), bytes.data(), bytes.size()) ==
              0) {
            hit = &cand;
            break;
          }
        }
        if (hit != nullptr) {
          Encoder e;
          e.put_i32(p.vpid);
          e.put_string(name);
          e.put_i32(hit->vpid);
          e.put_string(*hit->name);
          put(RecordTag::MEM_REGION_REF, e.take());
          dedup_saved += bytes.size();
          continue;
        }
        bucket.push_back(RegionRef{p.vpid, &name, &bytes});
      }
      // Framed without materializing an intermediate (vpid, name, bytes)
      // payload copy; `head` carries the length prefix so the wire
      // layout matches what Encoder::put_bytes would have produced.
      Encoder head;
      head.put_i32(p.vpid);
      head.put_string(name);
      head.put_u32(static_cast<u32>(bytes.size()));
      std::size_t before = w.size();
      w.write_split(RecordTag::MEM_REGION, kFormatVersion, head.bytes(),
                    bytes.data(), bytes.size());
      account(RecordTag::MEM_REGION, before);
    }
  }
  put(RecordTag::IMAGE_END, Bytes{});

  if (zero_saved > 0) {
    obs::metrics().counter("ckpt.codec.zero_saved_bytes").inc(zero_saved);
  }
  if (dedup_saved > 0) {
    obs::metrics().counter("ckpt.codec.dedup_saved_bytes").inc(dedup_saved);
  }

  Bytes out = w.take();
  obs::metrics()
      .histogram("ckpt.image_bytes", obs::byte_buckets())
      .observe(out.size());
  return out;
}

Result<PodImage> decode_image(const Bytes& data) {
  PodImage image;
  RecordReader r(data);
  bool have_header = false;
  bool ended = false;
  std::map<i32, std::size_t> proc_index;

  while (!r.at_end() && !ended) {
    auto rec = r.next();
    if (!rec) return rec.status();
    const Record& record = rec.value();
    switch (record.tag) {
      case RecordTag::IMAGE_HEADER: {
        auto h = decode_header(record.payload);
        if (!h) return h.status();
        image.header = h.value();
        have_header = true;
        break;
      }
      case RecordTag::NET_META: {
        auto m = decode_meta_payload(record.payload);
        if (!m) return m.status();
        image.meta = m.value();
        break;
      }
      case RecordTag::SOCKET_PARAMS: {
        auto s = decode_socket(record.payload);
        if (!s) return s.status();
        image.sockets.push_back(std::move(s).value());
        break;
      }
      case RecordTag::GM_DEVICE: {
        image.has_gm_device = true;
        image.gm_state = record.payload;
        break;
      }
      case RecordTag::REDIRECTED_SEND_Q: {
        Decoder d(record.payload);
        net::SockId sid = d.u32_().value_or(0);
        Bytes b = d.bytes_().value_or({});
        append_bytes(image.redirected_recv[sid], b);
        break;
      }
      case RecordTag::PROCESS: {
        auto p = decode_process(record.payload);
        if (!p) return p.status();
        proc_index[p.value().vpid] = image.processes.size();
        image.processes.push_back(std::move(p).value());
        break;
      }
      case RecordTag::REGION_MANIFEST: {
        Decoder d(record.payload);
        i32 vpid = d.i32_().value_or(0);
        auto it = proc_index.find(vpid);
        if (it == proc_index.end()) {
          return Status(Err::PROTO, "manifest for unknown vpid");
        }
        ProcessImage& proc = image.processes[it->second];
        proc.region_gen_counter = d.u64_().value_or(0);
        auto n_r = d.count_(20);
        if (!n_r) return n_r.status();
        for (u32 i = 0; i < n_r.value(); ++i) {
          std::string name = d.string_().value_or("");
          RegionMeta meta;
          meta.gen = d.u64_().value_or(0);
          meta.size = d.u64_().value_or(0);
          proc.manifest[name] = meta;
        }
        break;
      }
      case RecordTag::MEM_REGION: {
        Decoder d(record.payload);
        i32 vpid = d.i32_().value_or(0);
        std::string name = d.string_().value_or("");
        Bytes bytes = d.bytes_().value_or({});
        auto it = proc_index.find(vpid);
        if (it == proc_index.end()) {
          return Status(Err::PROTO, "region for unknown vpid");
        }
        image.processes[it->second].regions[name] = std::move(bytes);
        break;
      }
      case RecordTag::MEM_REGION_ZERO: {
        Decoder d(record.payload);
        i32 vpid = d.i32_().value_or(0);
        std::string name = d.string_().value_or("");
        u64 size = d.u64_().value_or(0);
        auto it = proc_index.find(vpid);
        if (it == proc_index.end()) {
          return Status(Err::PROTO, "zero region for unknown vpid");
        }
        image.processes[it->second].regions[name] =
            Bytes(static_cast<std::size_t>(size), 0);
        break;
      }
      case RecordTag::MEM_REGION_REF: {
        Decoder d(record.payload);
        i32 vpid = d.i32_().value_or(0);
        std::string name = d.string_().value_or("");
        i32 src_vpid = d.i32_().value_or(0);
        std::string src_name = d.string_().value_or("");
        auto it = proc_index.find(vpid);
        auto src_it = proc_index.find(src_vpid);
        if (it == proc_index.end() || src_it == proc_index.end()) {
          return Status(Err::PROTO, "region ref for unknown vpid");
        }
        const auto& src_regions = image.processes[src_it->second].regions;
        auto src = src_regions.find(src_name);
        if (src == src_regions.end()) {
          // Refs only ever point backwards in the stream; a forward or
          // dangling ref means corruption.
          return Status(Err::PROTO, "dangling region ref");
        }
        image.processes[it->second].regions[name] = src->second;
        break;
      }
      case RecordTag::IMAGE_END:
        ended = true;
        break;
      default:
        // Unknown record types are skipped (forward compatibility).
        break;
    }
  }
  if (!have_header) return Status(Err::PROTO, "missing image header");
  if (!ended) return Status(Err::PROTO, "missing image terminator");
  return image;
}

Result<PodImageHeader> peek_header(const Bytes& data) {
  RecordReader r(data);
  auto rec = r.next();
  if (!rec) return rec.status();
  if (rec.value().tag != RecordTag::IMAGE_HEADER) {
    return Status(Err::PROTO, "first record is not the image header");
  }
  return decode_header(rec.value().payload);
}

Result<PodImage> compose_delta(PodImage base, const PodImage& delta) {
  if (!delta.header.is_delta()) {
    return Status(Err::INVALID, "compose_delta: image is not a delta");
  }
  if (base.header.is_delta()) {
    return Status(Err::INVALID, "compose_delta: base not fully composed");
  }
  std::map<i32, ProcessImage*> base_procs;
  for (auto& p : base.processes) base_procs[p.vpid] = &p;

  PodImage out;
  // Everything except clean region bytes comes from the delta: it was
  // captured later, so its header/network/process control state wins.
  out.header = delta.header;
  out.header.codec_flags &= ~kCodecDelta;
  out.header.delta_seq = 0;
  out.header.base_uri.clear();
  out.meta = delta.meta;
  out.sockets = delta.sockets;
  out.has_gm_device = delta.has_gm_device;
  out.gm_state = delta.gm_state;
  out.redirected_recv = delta.redirected_recv;

  for (const auto& dp : delta.processes) {
    ProcessImage p = dp;
    for (const auto& [name, meta] : dp.manifest) {
      if (p.regions.count(name) != 0) continue;  // dirty: bytes in delta
      auto bit = base_procs.find(dp.vpid);
      if (bit == base_procs.end()) {
        return Status(Err::PROTO,
                      "delta references process missing from base: vpid " +
                          std::to_string(dp.vpid));
      }
      auto& base_regions = bit->second->regions;
      auto rit = base_regions.find(name);
      if (rit == base_regions.end()) {
        return Status(Err::PROTO,
                      "delta references region missing from base: " + name);
      }
      // `base` is owned by value, so clean regions move instead of copy.
      p.regions[name] = std::move(rit->second);
      base_regions.erase(rit);
    }
    out.processes.push_back(std::move(p));
  }
  return out;
}

Bytes encode_meta(const NetMeta& meta) { return encode_meta_payload(meta); }

Result<NetMeta> decode_meta(const Bytes& data) {
  return decode_meta_payload(data);
}

}  // namespace zapc::ckpt
