#include "ckpt/standalone.h"

#include "obs/metrics.h"
#include "util/log.h"

namespace zapc::ckpt {

DeltaBaseline DeltaBaseline::from_images(
    const std::vector<ProcessImage>& images) {
  DeltaBaseline b;
  for (const auto& img : images) {
    auto& per_proc = b.gens[img.vpid];
    for (const auto& [name, meta] : img.manifest) {
      per_proc[name] = meta.gen;
    }
  }
  return b;
}

PodImageHeader Standalone::save_header(const pod::Pod& pod) {
  PodImageHeader h;
  h.pod_name = pod.name();
  h.vip = pod.vip();
  h.next_vpid = pod.next_vpid();
  h.time_virt = pod.time_virtualization();
  h.ckpt_virtual_time = pod.virtual_now();
  h.time_delta = pod.time_delta();
  return h;
}

ProcessImage Standalone::save_process(const pod::Pod& pod,
                                      const os::Process& proc,
                                      const DeltaBaseline* baseline) {
  ProcessImage img;
  img.vpid = proc.vpid();
  img.kind = proc.program().kind();
  img.exited = proc.state() == os::ProcState::EXITED;
  img.exit_code = proc.exit_code();
  img.next_fd = proc.next_fd();

  Encoder e;
  proc.program().save(e);
  img.program_state = e.take();

  img.fds = proc.fd_table();

  // The manifest lists every live region with its current generation;
  // region *bytes* are included either in full or — in delta mode — only
  // for regions the baseline has not seen at this generation.
  img.region_gen_counter = proc.region_gen_counter();
  const auto& gens = proc.region_gens();
  const std::map<std::string, u64>* base_gens = nullptr;
  if (baseline != nullptr) {
    auto it = baseline->gens.find(proc.vpid());
    if (it != baseline->gens.end()) base_gens = &it->second;
  }
  u64 total = 0, dirty = 0;
  u64 logical_bytes = 0, included_bytes = 0;
  for (const auto& [name, bytes] : proc.regions()) {
    auto git = gens.find(name);
    u64 gen = git == gens.end() ? 0 : git->second;
    img.manifest[name] = RegionMeta{gen, bytes.size()};
    ++total;
    logical_bytes += bytes.size();
    bool include = true;
    if (baseline != nullptr) {
      // Dirty iff the baseline never saw this region, or its generation
      // moved since.  A region absent from both gens maps (never touched
      // via region()) is clean once the baseline recorded it.
      if (base_gens != nullptr) {
        auto bit = base_gens->find(name);
        include = bit == base_gens->end() || bit->second != gen;
      }
    }
    if (include) {
      img.regions[name] = bytes;
      ++dirty;
      included_bytes += bytes.size();
    }
  }
  if (baseline != nullptr) {
    obs::metrics().counter("ckpt.incr.regions_total").inc(total);
    obs::metrics().counter("ckpt.incr.regions_dirty").inc(dirty);
    obs::metrics().counter("ckpt.incr.logical_bytes").inc(logical_bytes);
    obs::metrics().counter("ckpt.incr.written_bytes").inc(included_bytes);
  }

  // Timers are stored in engine time; persist the *remaining* time so the
  // restart re-arms them relative to its own clock (paper §5).
  i64 now = static_cast<i64>(pod.engine_now());
  for (const auto& [id, expiry] : proc.timers()) {
    img.timer_remaining[id] = static_cast<i64>(expiry) - now;
  }
  return img;
}

std::vector<ProcessImage> Standalone::save_processes(
    pod::Pod& pod, const DeltaBaseline* baseline) {
  std::vector<ProcessImage> out;
  for (os::Process* p : pod.processes()) {
    out.push_back(save_process(pod, *p, baseline));
  }
  return out;
}

void Standalone::restore_header(pod::Pod& pod, const PodImageHeader& header) {
  pod.set_next_vpid(header.next_vpid);
  pod.set_time_virtualization(header.time_virt);
  if (header.time_virt) {
    // Bias the pod clock so time appears continuous across the gap
    // between checkpoint and restart.
    i64 now = static_cast<i64>(pod.engine_now());
    i64 target = static_cast<i64>(header.ckpt_virtual_time);
    pod.add_time_delta(target - now - pod.time_delta());
  }
}

Status Standalone::restore_process(pod::Pod& pod, const ProcessImage& image,
                                   const SockMap& socks) {
  auto prog = os::ProgramRegistry::instance().create(image.kind);
  if (!prog) return prog.status();
  {
    Decoder d(image.program_state);
    prog.value()->load(d);
  }

  os::Process& proc = pod.spawn_stopped(image.vpid, std::move(prog).value());
  proc.set_next_fd(image.next_fd);
  if (image.exited) {
    proc.set_state(os::ProcState::EXITED);
    proc.set_exit_code(image.exit_code);
  }

  for (const auto& [fd, old_sid] : image.fds) {
    auto it = socks.find(old_sid);
    if (it == socks.end()) {
      return Status(Err::NO_ENT,
                    "no restored socket for old id " +
                        std::to_string(old_sid));
    }
    proc.fd_install_at(fd, it->second);
  }
  proc.set_next_fd(image.next_fd);

  proc.regions_mut() = image.regions;
  // Reinstate the dirty-tracking clock so a delta taken after restart
  // diffs against the same generations the image recorded.
  {
    std::map<std::string, u64> gens;
    for (const auto& [name, meta] : image.manifest) gens[name] = meta.gen;
    proc.set_region_gens(std::move(gens), image.region_gen_counter);
  }

  sim::Time now = pod.engine_now();
  for (const auto& [id, remaining] : image.timer_remaining) {
    i64 expiry = static_cast<i64>(now) + remaining;
    proc.timers()[id] = expiry < 0 ? 0 : static_cast<sim::Time>(expiry);
  }
  return Status::ok();
}

Status Standalone::restore_processes(pod::Pod& pod,
                                     const std::vector<ProcessImage>& images,
                                     const SockMap& socks) {
  for (const auto& img : images) {
    Status st = restore_process(pod, img, socks);
    if (!st) {
      ZLOG_ERROR("restore of vpid " << img.vpid << " failed: "
                                    << st.to_string());
      return st;
    }
  }
  return Status::ok();
}

}  // namespace zapc::ckpt
