// Checkpoint image format.
//
// A pod checkpoint is a sequence of typed, versioned, CRC-protected
// records (util/serialize.h) carrying "higher-level semantic information
// specified in an intermediate format rather than kernel specific data in
// native format" (paper §3).  This header defines the in-memory form of
// every record and the encode/decode functions; the capture/apply logic
// lives in ckpt/standalone.* (process state) and core/netckpt.* (network
// state).
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/addr.h"
#include "net/socket.h"
#include "net/sockopt.h"
#include "util/serialize.h"
#include "util/status.h"

namespace zapc::ckpt {

/// Connection state as recorded in the network meta-data table (paper §4:
/// "full-duplex, half-duplex, closed (in which case there may still be
/// unread data), or connecting").  LISTENER entries describe listening
/// sockets that must be re-created before connections are re-formed.
enum class ConnState : u8 {
  FULL_DUPLEX = 0,
  HALF_DUPLEX = 1,
  CLOSED = 2,
  CONNECTING = 3,
  LISTENER = 4,
};

const char* conn_state_name(ConnState s);

/// Role assigned by the Manager's restart schedule (paper §4: each entry
/// is tagged "connect" or "accept"; arbitrary unless source ports are
/// shared, in which case the sharing side must accept).
enum class PeerRole : u8 { CONNECT = 0, ACCEPT = 1 };

/// One row of the per-pod network meta-data table the Agent reports to
/// the Manager.
struct NetMetaEntry {
  net::SockId sock = 0;        // socket id within the pod's stack
  net::Proto proto = net::Proto::TCP;
  net::SockAddr source;        // connection endpoint on this pod
  net::SockAddr target;        // remote endpoint (unset for listeners)
  ConnState state = ConnState::FULL_DUPLEX;
  PeerRole role = PeerRole::CONNECT;  // filled by the Manager for restart

  // The minimal protocol-specific state (paper §5): local PCB sequence
  // numbers reported with the meta-data so the Manager can compute the
  // send/receive queue overlap across the two peers.
  u32 pcb_sent = 0;
  u32 pcb_acked = 0;
  u32 pcb_recv = 0;
  /// Bytes to discard from the head of this side's restored send queue
  /// (= peer.recv − self.acked); computed by the Manager for restart.
  u32 discard_send = 0;
  /// Migration redirect: the peer's agent shipped its send-queue contents
  /// directly to this side's agent; the restore must wait for that
  /// (possibly empty) record before restoring this socket.
  bool redirect_expected = false;
};

/// Complete meta-data table for one pod.
struct NetMeta {
  net::IpAddr pod_vip;
  std::vector<NetMetaEntry> entries;
};

/// One queued receive item (restored via the alternate receive queue).
struct SavedRecvItem {
  Bytes data;
  net::SockAddr from;
  bool oob = false;
};

/// Full saved state of one socket.
struct SocketImage {
  net::SockId old_id = 0;
  net::Proto proto = net::Proto::TCP;

  // Socket parameters, captured via the getsockopt interface (paper §5
  // saves "the entire set of the parameters").
  std::array<i64, net::kNumSockOpts> params{};

  net::SockAddr local;
  net::SockAddr remote;
  bool bound = false;
  bool owns_port = false;

  // Shape of the endpoint.
  bool listener = false;
  int backlog = 0;
  bool connecting = false;   // SYN_SENT at checkpoint
  bool connected = false;    // TCP ESTABLISHED-ish or UDP connect()ed
  bool shut_rd = false;
  bool shut_wr = false;      // our side sent FIN
  bool peer_closed = false;  // peer's FIN received

  // Queues.
  std::vector<SavedRecvItem> recv_queue;  // main + alternate, in order
  Bytes send_queue;                       // unacked + unsent bytes
  bool send_queue_redirected = false;     // migration redirect optimization

  // Minimal protocol-specific state (paper §5): the PCB sequence triple.
  u32 pcb_sent = 0;
  u32 pcb_acked = 0;
  u32 pcb_recv = 0;

  // RAW sockets.
  u8 raw_proto = 0;

  std::size_t byte_size() const;
};

/// Per-region entry of a process's region manifest.  The manifest lists
/// every live region with the generation it had at checkpoint, whether or
/// not the region's bytes are included in this image — a delta image
/// includes bytes only for dirty regions, but the manifest is complete so
/// restart knows which regions to pull from the base chain.
struct RegionMeta {
  u64 gen = 0;   // Process region generation at checkpoint
  u64 size = 0;  // region byte size at checkpoint
};

/// Saved state of one process (standalone / Zap part).
struct ProcessImage {
  i32 vpid = 0;
  std::string kind;          // ProgramRegistry key
  bool exited = false;
  i32 exit_code = 0;
  int next_fd = 3;
  Bytes program_state;       // Program::save blob
  std::map<int, net::SockId> fds;          // fd -> old socket id
  std::map<std::string, Bytes> regions;    // bulk memory (dirty-only in deltas)
  std::map<u32, i64> timer_remaining;      // virtualized timers (paper §5)
  u64 region_gen_counter = 0;              // dirty-tracking clock at checkpoint
  std::map<std::string, RegionMeta> manifest;  // all live regions
};

// ---- Codec flags (PodImageHeader.codec_flags) -------------------------------
// Recorded in the header so a reader knows how region records were
// produced; images written with all flags clear are byte-compatible with
// format v1 plus ignorable trailing header fields.
constexpr u32 kCodecZeroElide = 1u << 0;  // all-zero regions stored as size
constexpr u32 kCodecDedup = 1u << 1;      // identical regions stored as refs
constexpr u32 kCodecDelta = 1u << 2;      // image is a delta over base_uri

/// Header record: identity plus the time-virtualization state needed to
/// bias clocks at restart.
struct PodImageHeader {
  std::string pod_name;
  net::IpAddr vip;
  i32 next_vpid = 1;
  bool time_virt = true;
  u64 ckpt_virtual_time = 0;  // pod-visible time at checkpoint
  i64 time_delta = 0;         // pod's accumulated bias at checkpoint

  // v2 fields (absent in old images; decoded as defaults there).
  u32 codec_flags = 0;   // kCodec* bits in effect for this image
  u32 delta_seq = 0;     // 0 = full image, N = Nth delta in its chain
  std::string base_uri;  // where the base image lives (delta images only)

  bool is_delta() const { return (codec_flags & kCodecDelta) != 0; }
};

/// A whole parsed pod checkpoint.
struct PodImage {
  PodImageHeader header;
  NetMeta meta;
  std::vector<SocketImage> sockets;
  std::vector<ProcessImage> processes;
  /// Kernel-bypass (GM) device state, if the pod had one (paper §5
  /// extension: "extract the state kept by the device driver").
  bool has_gm_device = false;
  Bytes gm_state;
  /// Data redirected from peers' send queues (migration optimization):
  /// appended to the given socket's restored receive queue.
  std::map<net::SockId, Bytes> redirected_recv;

  std::size_t total_bytes() const;
  std::size_t network_bytes() const;  // socket + meta records only
};

// ---- Encoding / decoding ----------------------------------------------------

/// Serializes a PodImage into the record stream format.  Respects
/// `image.header.codec_flags`: with kCodecZeroElide all-zero regions are
/// written as MEM_REGION_ZERO (size only), with kCodecDedup a region
/// byte-identical to an earlier one in the same image is written as a
/// MEM_REGION_REF back-reference.  With all flags clear the output is
/// plain v1-style MEM_REGION records.
Bytes encode_image(const PodImage& image);

/// Parses a record stream back into a PodImage (Err::PROTO on corruption
/// or unknown mandatory records).  Zero/ref region records are expanded
/// back to full buffers, so decode(encode(x)) is codec-independent.
Result<PodImage> decode_image(const Bytes& data);

/// Decodes just the first record of `data` as the image header, without
/// touching the rest of the stream.  Used to discover a delta image's
/// base_uri/chain position before deciding how to restore it.
Result<PodImageHeader> peek_header(const Bytes& data);

/// Lower bound of encode_image output size, used to reserve() the
/// output buffer in one shot.
std::size_t encoded_size_hint(const PodImage& image);

/// Overlays `delta` (a kCodecDelta image) onto `base` (the already fully
/// composed predecessor).  All non-region state comes from the delta;
/// region bytes come from the delta where included and from the base for
/// regions the delta's manifest lists as clean.  The result is a full
/// image (delta flag cleared).  Err::PROTO if the delta references a
/// region or process the base does not have.
Result<PodImage> compose_delta(PodImage base, const PodImage& delta);

/// Encodes just the meta-data table (sent to the Manager during
/// checkpoint, step 2a).
Bytes encode_meta(const NetMeta& meta);
Result<NetMeta> decode_meta(const Bytes& data);

}  // namespace zapc::ckpt
