#include "fault/fault.h"

#include "obs/metrics.h"
#include "util/log.h"
#include "util/rng.h"

namespace zapc::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::CRASH_AT_PHASE: return "crash_at_phase";
    case FaultKind::DROP_MSG: return "drop_msg";
    case FaultKind::DUP_MSG: return "dup_msg";
    case FaultKind::STALL_CHANNEL: return "stall_channel";
    case FaultKind::SAN_WRITE_FAIL: return "san_write_fail";
    case FaultKind::SAN_SHORT_WRITE: return "san_short_write";
    case FaultKind::SLOW_NODE: return "slow_node";
  }
  return "?";
}

std::string FaultSpec::describe() const {
  std::string s = fault_kind_name(kind);
  if (!node.empty()) s += " node=" + node;
  if (!phase.empty()) s += " phase=" + phase;
  if (msg_type != 0) s += " msg=" + std::to_string(msg_type);
  if (nth != 1) s += " nth=" + std::to_string(nth);
  if (stall_us != 0) s += " stall=" + std::to_string(stall_us) + "us";
  if (!san_prefix.empty()) s += " san=" + san_prefix;
  if (kind == FaultKind::SAN_SHORT_WRITE) {
    s += " keep=" + std::to_string(short_bytes);
  }
  if (kind == FaultKind::SLOW_NODE) {
    s += " x" + std::to_string(multiplier);
  }
  return s;
}

void Injector::arm(FaultSpec spec) {
  specs_.push_back(Armed{std::move(spec), 0, false});
}

void Injector::clear() {
  specs_.clear();
  fired_ = 0;
}

void Injector::record_fire(Armed& a, const std::string& what) {
  a.fired = true;
  ++fired_;
  obs::metrics().counter("fault.injected").inc();
  ZLOG_WARN("fault: injected " << a.spec.describe()
                               << (what.empty() ? "" : " (" + what + ")"));
}

bool Injector::crash_at_phase(const std::string& node,
                              const std::string& phase) {
  for (Armed& a : specs_) {
    if (a.fired || a.spec.kind != FaultKind::CRASH_AT_PHASE) continue;
    if (!a.spec.node.empty() && a.spec.node != node) continue;
    if (a.spec.phase != phase) continue;
    if (++a.seen < a.spec.nth) continue;
    record_fire(a, node + " at " + phase);
    return true;
  }
  return false;
}

MsgVerdict Injector::on_channel_msg(u8 msg_type) {
  MsgVerdict v;
  for (Armed& a : specs_) {
    if (a.fired) continue;
    if (a.spec.kind != FaultKind::DROP_MSG &&
        a.spec.kind != FaultKind::DUP_MSG &&
        a.spec.kind != FaultKind::STALL_CHANNEL) {
      continue;
    }
    if (a.spec.msg_type != 0 && a.spec.msg_type != msg_type) continue;
    if (++a.seen < a.spec.nth) continue;
    record_fire(a, "msg type " + std::to_string(msg_type));
    switch (a.spec.kind) {
      case FaultKind::DROP_MSG: v.drop = true; break;
      case FaultKind::DUP_MSG: v.duplicate = true; break;
      case FaultKind::STALL_CHANNEL: v.stall_us = a.spec.stall_us; break;
      default: break;
    }
  }
  return v;
}

SanVerdict Injector::on_san_write(const std::string& path, u64 size) {
  SanVerdict v;
  for (Armed& a : specs_) {
    if (a.fired) continue;
    if (a.spec.kind != FaultKind::SAN_WRITE_FAIL &&
        a.spec.kind != FaultKind::SAN_SHORT_WRITE) {
      continue;
    }
    if (!a.spec.san_prefix.empty() &&
        path.rfind(a.spec.san_prefix, 0) != 0) {
      continue;
    }
    if (++a.seen < a.spec.nth) continue;
    record_fire(a, path);
    if (a.spec.kind == FaultKind::SAN_WRITE_FAIL) {
      v.fail = true;
    } else {
      v.keep_bytes =
          a.spec.short_bytes != 0 ? a.spec.short_bytes : size / 2;
    }
  }
  return v;
}

u64 Injector::wire_extra_us(u32 src_ip, u32 dst_ip) {
  u64 extra = 0;
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultKind::SLOW_NODE || a.spec.node_ip == 0) continue;
    if (a.spec.node_ip != src_ip && a.spec.node_ip != dst_ip) continue;
    if (!a.fired) record_fire(a, "wire");
    extra += a.spec.stall_us;
  }
  return extra;
}

double Injector::local_cost_multiplier(const std::string& node) {
  double m = 1.0;
  for (Armed& a : specs_) {
    if (a.spec.kind != FaultKind::SLOW_NODE) continue;
    if (!a.spec.node.empty() && a.spec.node != node) continue;
    if (!a.fired) record_fire(a, node);
    m *= a.spec.multiplier;
  }
  return m;
}

Injector& injector() {
  static Injector* inj = new Injector();  // never destroyed, like metrics()
  return *inj;
}

FaultPlan FaultPlan::random(u64 seed, const std::vector<NodeRef>& nodes) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);

  // Protocol messages worth losing: META_REPORT(2), CONTINUE(3),
  // CKPT_DONE(4), RESTART_DONE(6), STREAM_CHUNK(8), STREAM_CLOSE(9).
  static constexpr u8 kMsgTypes[] = {2, 3, 4, 6, 8, 9};
  // Agent phases a node can die in.
  static const char* kPhases[] = {
      "ckpt.begin",      "ckpt.netckpt",       "ckpt.standalone",
      "ckpt.deliver",    "ckpt.barrier",       "restart.begin",
      "restart.connectivity", "restart.netstate", "restart.standalone",
  };

  std::size_t n = 1 + rng.below(3);
  for (std::size_t i = 0; i < n; ++i) {
    FaultSpec s;
    const NodeRef& node =
        nodes.empty() ? NodeRef{} : nodes[rng.below(nodes.size())];
    switch (rng.below(7)) {
      case 0:
        s.kind = FaultKind::CRASH_AT_PHASE;
        s.node = node.name;
        s.phase = kPhases[rng.below(std::size(kPhases))];
        break;
      case 1:
        s.kind = FaultKind::DROP_MSG;
        s.msg_type = kMsgTypes[rng.below(std::size(kMsgTypes))];
        s.nth = 1 + static_cast<u32>(rng.below(3));
        break;
      case 2:
        s.kind = FaultKind::DUP_MSG;
        s.msg_type = kMsgTypes[rng.below(std::size(kMsgTypes))];
        s.nth = 1 + static_cast<u32>(rng.below(3));
        break;
      case 3:
        s.kind = FaultKind::STALL_CHANNEL;
        s.msg_type = kMsgTypes[rng.below(std::size(kMsgTypes))];
        s.nth = 1 + static_cast<u32>(rng.below(2));
        s.stall_us = (1 + rng.below(4)) * 500'000;  // 0.5s .. 2s
        break;
      case 4:
        s.kind = FaultKind::SAN_WRITE_FAIL;
        s.san_prefix = "ckpt/";
        s.nth = 1 + static_cast<u32>(rng.below(2));
        break;
      case 5:
        s.kind = FaultKind::SAN_SHORT_WRITE;
        s.san_prefix = "ckpt/";
        s.nth = 1 + static_cast<u32>(rng.below(2));
        s.short_bytes = 1 + rng.below(4096);
        break;
      default:
        s.kind = FaultKind::SLOW_NODE;
        s.node = node.name;
        s.node_ip = node.ip;
        s.multiplier = 2.0 + static_cast<double>(rng.below(8));
        s.stall_us = rng.below(2000);  // up to 2ms extra per packet
        break;
    }
    plan.specs.push_back(std::move(s));
  }
  return plan;
}

void FaultPlan::arm() const {
  for (const FaultSpec& s : specs) injector().arm(s);
}

std::string FaultPlan::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultSpec& s : specs) out += "; " + s.describe();
  return out;
}

}  // namespace zapc::fault
