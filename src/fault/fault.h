// Deterministic fault injection.
//
// The paper's protocol is exercised almost exclusively on the happy path
// by the figure benchmarks; real clusters hang, drop packets, crash mid
// checkpoint and tear writes to shared storage.  This subsystem makes
// every one of those failures a first-class, *seeded* event: a FaultPlan
// is a small list of FaultSpecs drawn from a SplitMix64 stream, armed on
// the process-global Injector, and consulted from cheap hooks in the
// fabric (wire delay), the message channels (drop / duplicate / stall a
// specific protocol message), the agents (crash at a named phase, slow
// node) and the SAN (failed or short object write).  The same seed
// always produces the same schedule, so a soak failure replays exactly.
//
// The library sits below net/os/core on purpose: it speaks only strings,
// integers and microseconds, so every layer can consult it without
// dependency cycles.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace zapc::fault {

enum class FaultKind : u8 {
  CRASH_AT_PHASE = 0,  // agent's node dies when it enters a named phase
  DROP_MSG = 1,        // swallow the Nth protocol message of a type
  DUP_MSG = 2,         // deliver the Nth protocol message of a type twice
  STALL_CHANNEL = 3,   // hold a channel's delivery for stall_us (hung peer)
  SAN_WRITE_FAIL = 4,  // the Nth matching SAN object write errors out
  SAN_SHORT_WRITE = 5, // ... or silently stores a truncated object
  SLOW_NODE = 6,       // multiply a node's local work + wire latency
};

const char* fault_kind_name(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::DROP_MSG;
  std::string node;   // CRASH/SLOW: node name ("" = any node)
  std::string phase;  // CRASH_AT_PHASE: agent phase ("ckpt.standalone", ...)
  u8 msg_type = 0;    // DROP/DUP/STALL: core::MsgType byte (0 = any)
  u32 nth = 1;        // fire on the Nth matching occurrence (1-based)
  u64 stall_us = 0;   // STALL_CHANNEL hold / SLOW_NODE per-packet extra
  std::string san_prefix;  // SAN_*: only object paths with this prefix
  u64 short_bytes = 0;     // SAN_SHORT_WRITE: bytes that actually land
  double multiplier = 1.0; // SLOW_NODE: local work cost factor
  u32 node_ip = 0;         // SLOW_NODE: real node address for wire delay

  std::string describe() const;
};

/// Channel-level verdict for one inbound frame.
struct MsgVerdict {
  bool drop = false;
  bool duplicate = false;
  u64 stall_us = 0;  // hold this channel's delivery for this long
};

/// Storage-level verdict for one object write.
struct SanVerdict {
  bool fail = false;
  u64 keep_bytes = ~u64{0};  // < size ⇒ torn (truncated) object
};

/// The process-global fault injector.  One-shot faults (everything but
/// SLOW_NODE) fire exactly once when their Nth matching occurrence is
/// seen; the occurrence counters are global, which keeps schedules
/// deterministic under a fixed event order.
class Injector {
 public:
  void arm(FaultSpec spec);
  void clear();

  /// Fast path for the hooks: anything armed at all?
  bool enabled() const { return !specs_.empty(); }
  u64 fired() const { return fired_; }
  std::size_t armed() const { return specs_.size(); }

  /// True ⇒ the calling agent must treat its node as crashed.
  bool crash_at_phase(const std::string& node, const std::string& phase);
  /// Consulted once per fully received channel frame (first payload byte
  /// is the protocol message type).
  MsgVerdict on_channel_msg(u8 msg_type);
  SanVerdict on_san_write(const std::string& path, u64 size);
  /// Extra one-way wire latency for a packet between two real addresses.
  u64 wire_extra_us(u32 src_ip, u32 dst_ip);
  /// Cost multiplier for local (virtual-CPU) work on a node.
  double local_cost_multiplier(const std::string& node);

 private:
  struct Armed {
    FaultSpec spec;
    u32 seen = 0;
    bool fired = false;
  };
  void record_fire(Armed& a, const std::string& what);

  std::vector<Armed> specs_;
  u64 fired_ = 0;
};

/// The singleton every hook consults (single-threaded simulation, like
/// obs::metrics()).
Injector& injector();

/// A seeded, self-describing fault schedule.
struct FaultPlan {
  struct NodeRef {
    std::string name;
    u32 ip = 0;  // real node address (for fabric-level faults)
  };

  u64 seed = 0;
  std::vector<FaultSpec> specs;

  /// Draws 1–3 faults for the given nodes from a SplitMix64 stream:
  /// identical (seed, nodes) ⇒ identical plan.
  static FaultPlan random(u64 seed, const std::vector<NodeRef>& nodes);

  /// Arms every spec on the global injector (call clear() first for a
  /// fresh schedule).
  void arm() const;
  std::string describe() const;
};

}  // namespace zapc::fault
