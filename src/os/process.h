// Virtual process: a Program plus the kernel-side state the checkpointer
// saves — fd table, memory regions, application timers, signal state.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "net/socket.h"
#include "os/program.h"

namespace zapc::os {

/// Process lifecycle states.  STOPPED corresponds to SIGSTOP (paper §4:
/// "each Agent first suspends its respective pod by sending a SIGSTOP
/// signal to all the processes in the pod").
enum class ProcState : u8 {
  READY,    // runnable, queued on a CPU
  ONCPU,    // currently consuming its step's virtual CPU time
  BLOCKED,  // waiting per WaitSpec
  STOPPED,  // SIGSTOP'd; invisible to the scheduler
  EXITED,   // finished; exit_code valid
};

const char* proc_state_name(ProcState s);

class Process {
 public:
  Process(i32 vpid, std::unique_ptr<Program> program)
      : vpid_(vpid), program_(std::move(program)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  i32 vpid() const { return vpid_; }
  Program& program() { return *program_; }
  const Program& program() const { return *program_; }
  void replace_program(std::unique_ptr<Program> p) {
    program_ = std::move(p);
  }

  ProcState state() const { return state_; }
  void set_state(ProcState s) { state_ = s; }
  /// State the process had when SIGSTOP arrived; restored by SIGCONT.
  ProcState resume_state() const { return resume_state_; }
  void set_resume_state(ProcState s) { resume_state_ = s; }

  i32 exit_code() const { return exit_code_; }
  void set_exit_code(i32 c) { exit_code_ = c; }

  const WaitSpec& wait() const { return wait_; }
  void set_wait(WaitSpec w) { wait_ = std::move(w); }
  void clear_wait() { wait_ = {}; }

  /// Wakeup that arrived while the process was ONCPU; consumed when the
  /// step finishes so the wakeup is not lost if the step ends in BLOCK.
  void set_pending_wake() { pending_wake_ = true; }
  bool take_pending_wake() {
    bool w = pending_wake_;
    pending_wake_ = false;
    return w;
  }

  // ---- File descriptors ---------------------------------------------------
  int fd_install(net::SockId sock) {
    int fd = next_fd_++;
    fds_[fd] = sock;
    return fd;
  }
  /// Installs at a specific fd number (restart path).
  void fd_install_at(int fd, net::SockId sock) {
    fds_[fd] = sock;
    if (fd >= next_fd_) next_fd_ = fd + 1;
  }
  Result<net::SockId> fd_lookup(int fd) const {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return Status(Err::BAD_FD);
    return it->second;
  }
  void fd_remove(int fd) { fds_.erase(fd); }
  const std::map<int, net::SockId>& fd_table() const { return fds_; }
  int next_fd() const { return next_fd_; }
  void set_next_fd(int fd) { next_fd_ = fd; }

  // ---- Memory regions -------------------------------------------------------
  // Each region carries a generation counter bumped on every mutable
  // access.  A real kernel would track dirty pages via write protection;
  // here region() handing out a writable buffer is the moral equivalent
  // of a write fault, so any touched region is conservatively dirty.
  // Incremental checkpoints diff these generations against the ones
  // recorded in the base image to decide which regions to re-emit.
  Bytes& region(const std::string& name, std::size_t size) {
    Bytes& r = regions_[name];
    if (r.size() < size) r.resize(size);
    region_gens_[name] = ++region_gen_counter_;
    return r;
  }
  const std::map<std::string, Bytes>& regions() const { return regions_; }
  std::map<std::string, Bytes>& regions_mut() { return regions_; }
  const std::map<std::string, u64>& region_gens() const {
    return region_gens_;
  }
  u64 region_gen_counter() const { return region_gen_counter_; }
  /// Restart path: reinstates the generation state saved in an image so
  /// that a delta taken after restart diffs against the right baseline.
  void set_region_gens(std::map<std::string, u64> gens, u64 counter) {
    region_gens_ = std::move(gens);
    region_gen_counter_ = counter;
  }
  std::size_t memory_bytes() const {
    std::size_t n = 0;
    for (const auto& [name, r] : regions_) n += r.size();
    return n;
  }

  // ---- Application timers (absolute virtual expiry) --------------------------
  std::map<u32, sim::Time>& timers() { return timers_; }
  const std::map<u32, sim::Time>& timers() const { return timers_; }

 private:
  i32 vpid_;
  std::unique_ptr<Program> program_;
  ProcState state_ = ProcState::READY;
  ProcState resume_state_ = ProcState::READY;
  i32 exit_code_ = 0;
  bool pending_wake_ = false;
  WaitSpec wait_;

  std::map<int, net::SockId> fds_;
  int next_fd_ = 3;
  std::map<std::string, Bytes> regions_;
  std::map<std::string, u64> region_gens_;
  u64 region_gen_counter_ = 0;
  std::map<u32, sim::Time> timers_;
};

}  // namespace zapc::os
