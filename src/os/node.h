// Node: one commodity cluster machine — an independent OS instance with a
// real network address, a host (root) network namespace, a set of hosted
// pods (Domains), and a CPU scheduler for guest processes.
//
// Routing (the virtual-address remapping of paper §3): guest packets are
// resolved through the cluster LocationTable from virtual destination
// address to the real address of the hosting node and tunneled over the
// fabric; on arrival the node finds the local domain for the inner
// destination.  Both directions pass the owning domain's packet filter,
// which is how an Agent freezes a pod's network during checkpoint.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/filter.h"
#include "net/stack.h"
#include "os/domain.h"
#include "os/location.h"
#include "os/process.h"
#include "os/san.h"

namespace zapc::os {

/// Identifies a process without holding a pointer (domains and processes
/// may be destroyed while scheduler events are pending).
struct ProcessRef {
  net::IpAddr domain_vip;
  i32 vpid = 0;
};

class Node {
 public:
  Node(sim::Engine& engine, net::Fabric& fabric, LocationTable& locations,
       VirtualSAN& san, net::IpAddr real_addr, std::string name,
       int ncpus = 1);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  net::IpAddr addr() const { return real_addr_; }
  const std::string& name() const { return name_; }
  sim::Engine& engine() { return engine_; }
  sim::Time now() const { return engine_.now(); }
  LocationTable& locations() { return locations_; }
  VirtualSAN& san() { return san_; }
  int ncpus() const { return static_cast<int>(cpus_.size()); }

  /// Host (root) namespace stack — used by Agents and the Manager.
  net::Stack& host_stack() { return *host_stack_; }
  net::PacketFilter& host_filter() { return host_filter_; }

  // ---- Domain (pod) hosting ----------------------------------------------
  void add_domain(Domain& d);
  void remove_domain(net::IpAddr vip);
  Domain* find_domain(net::IpAddr vip);
  std::vector<Domain*> domains();

  // ---- Scheduler -----------------------------------------------------------
  /// Marks a process runnable and kicks an idle CPU.
  void make_ready(const ProcessRef& ref);

  /// SIGSTOP: removes the process from scheduling, remembering its state.
  void suspend_process(Domain& d, Process& p);
  /// SIGCONT: resumes a STOPPED process (spurious wakeups are fine; a
  /// formerly blocked program re-issues its syscall and re-blocks).
  void resume_process(Domain& d, Process& p);

  /// Wakes processes in `d` blocked on socket `sock` or whose deadline
  /// passed; called from pod socket event hooks.
  void wake_waiters(Domain& d, net::SockId sock);

  /// Egress from a hosted namespace (or the host stack itself).
  void route_out(net::Packet p);

  /// Detaches the node from the fabric (models node failure).
  void fail();
  bool failed() const { return failed_; }

  /// Total virtual CPU time consumed by guest steps (utilization metrics).
  sim::Time cpu_time_consumed() const { return cpu_time_consumed_; }

 private:
  struct Cpu {
    bool busy = false;
  };

  void deliver(const net::WirePacket& wp);
  void kick();
  void dispatch(int cpu);
  void finish_step(int cpu, const ProcessRef& ref, StepResult result);
  Process* resolve(const ProcessRef& ref, Domain** dom_out);
  void block_process(Domain& d, Process& p, const WaitSpec& w);

  sim::Engine& engine_;
  net::Fabric& fabric_;
  LocationTable& locations_;
  VirtualSAN& san_;
  net::IpAddr real_addr_;
  std::string name_;
  bool failed_ = false;

  std::unique_ptr<net::Stack> host_stack_;
  net::PacketFilter host_filter_;

  std::map<net::IpAddr, Domain*> domains_;

  std::vector<Cpu> cpus_;
  std::deque<ProcessRef> ready_;
  sim::Time cpu_time_consumed_ = 0;

  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace zapc::os
