// Guest program model.
//
// A guest process is a Program — an explicit state machine stepped by the
// node scheduler.  Blocking syscalls return Err::WOULD_BLOCK and the
// program returns StepResult::block(...) naming what it waits on; the
// scheduler re-steps it when a named socket signals an event or the
// deadline passes (wakeups may be spurious, so programs always re-issue
// the syscall).
//
// Substitution note (see DESIGN.md §2): real Zap captures process memory
// pages transparently in the kernel.  Here the equivalent is that a
// program keeps bulk data in OS-owned memory regions (Process::region)
// and its small control state behind save()/load(); the checkpointer
// captures both without the *distributed coordination* logic — the
// paper's contribution — knowing anything about the application.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.h"
#include "net/socket.h"
#include "net/sockopt.h"
#include "sim/engine.h"
#include "util/serialize.h"
#include "util/status.h"

namespace zapc::os {

class VirtualSAN;

/// What a blocked process is waiting for.  Deadlines are *relative* so
/// they stay meaningful under time virtualization (the bias between
/// engine time and pod-visible time changes across restarts).
struct WaitSpec {
  std::vector<int> fds;                  // wake on any socket event
  std::optional<sim::Time> sleep_for;    // wake after this much time

  static WaitSpec on_fd(int fd) { return WaitSpec{{fd}, std::nullopt}; }
  static WaitSpec on_fds(std::vector<int> fds) {
    return WaitSpec{std::move(fds), std::nullopt};
  }
  static WaitSpec sleep(sim::Time dt) { return WaitSpec{{}, dt}; }
  /// Wait on a socket, but no longer than `dt`.
  static WaitSpec on_fd_timeout(int fd, sim::Time dt) {
    return WaitSpec{{fd}, dt};
  }
};

/// Outcome of one Program::step call.
struct StepResult {
  enum class Kind { YIELD, BLOCK, EXIT };

  Kind kind = Kind::YIELD;
  sim::Time cost = 1;  // virtual CPU time consumed by this step
  WaitSpec wait;
  i32 exit_code = 0;

  static StepResult yield(sim::Time cost = 1) {
    return StepResult{Kind::YIELD, cost, {}, 0};
  }
  static StepResult block(WaitSpec w, sim::Time cost = 1) {
    return StepResult{Kind::BLOCK, cost, std::move(w), 0};
  }
  static StepResult exit(i32 code = 0, sim::Time cost = 1) {
    return StepResult{Kind::EXIT, cost, {}, code};
  }
};

/// The syscall interface a program sees.  Implemented by the pod layer,
/// which performs all namespace virtualization (fd→socket translation,
/// virtual addressing, time biasing) — this is the interposition boundary.
class Syscalls {
 public:
  virtual ~Syscalls() = default;

  // ---- Sockets (fd-based; addresses are virtual) ------------------------
  virtual Result<int> socket(net::Proto proto) = 0;
  virtual Status bind(int fd, net::SockAddr addr) = 0;
  virtual Status bind_raw(int fd, u8 raw_proto) = 0;
  virtual Status listen(int fd, int backlog) = 0;
  virtual Result<int> accept(int fd, net::SockAddr* peer) = 0;
  virtual Status connect(int fd, net::SockAddr peer) = 0;
  virtual Result<std::size_t> send(int fd, const Bytes& data, u32 flags) = 0;
  virtual Result<std::size_t> sendto(int fd, const Bytes& data, u32 flags,
                                     net::SockAddr to) = 0;
  virtual Result<net::RecvResult> recv(int fd, std::size_t maxlen,
                                       u32 flags) = 0;
  virtual Status shutdown(int fd, net::ShutdownHow how) = 0;
  virtual Status close(int fd) = 0;
  virtual u32 poll(int fd) = 0;
  virtual Result<i64> getsockopt(int fd, net::SockOpt opt) = 0;
  virtual Status setsockopt(int fd, net::SockOpt opt, i64 value) = 0;
  virtual Result<net::SockAddr> getsockname(int fd) = 0;
  virtual Result<net::SockAddr> getpeername(int fd) = 0;

  // ---- Process ------------------------------------------------------------
  virtual i32 getpid() const = 0;
  /// Virtual wall-clock time (biased after restart when time
  /// virtualization is enabled — paper §5).
  virtual sim::Time time() const = 0;

  /// Creates a sibling process in the same pod running a registered
  /// program (`kind` from the ProgramRegistry; `state` fed to its
  /// load()).  Returns the new vpid — stable across migration, like all
  /// pod-local identifiers.
  virtual Result<i32> spawn(const std::string& kind, const Bytes& state) = 0;
  /// Non-blocking wait: the exit code if the process has exited.
  virtual Result<i32> wait_pid(i32 vpid) = 0;
  /// Forcibly terminates a sibling process (SIGKILL semantics).
  virtual Status kill(i32 vpid) = 0;

  // ---- Memory -------------------------------------------------------------
  /// Named bulk-memory region owned by the process; created zero-filled on
  /// first use, serialized wholesale by the checkpointer.
  virtual Bytes& region(const std::string& name, std::size_t size) = 0;

  // ---- Storage ------------------------------------------------------------
  virtual VirtualSAN& san() = 0;

  // ---- Kernel-bypass messaging (GM-style; paper §5 extension) -------------
  // These reach the pod's GM device through the virtualized interface.
  // Completion is polled, like real OS-bypass libraries.  The base
  // implementations report the device as absent.
  virtual Status gm_open(int port) {
    (void)port;
    return Status(Err::NOT_SUPPORTED, "no GM device");
  }
  virtual Status gm_close(int port) {
    (void)port;
    return Status(Err::NOT_SUPPORTED, "no GM device");
  }
  virtual Status gm_send(int port, net::SockAddr dst, const Bytes& data) {
    (void)port;
    (void)dst;
    (void)data;
    return Status(Err::NOT_SUPPORTED, "no GM device");
  }
  virtual Result<Bytes> gm_recv(int port, net::SockAddr* from) {
    (void)port;
    (void)from;
    return Status(Err::NOT_SUPPORTED, "no GM device");
  }
  virtual bool gm_sends_drained(int port) {
    (void)port;
    return true;
  }

  // ---- Application timers (virtualized across restart, paper §5) ---------
  virtual void timer_set(u32 id, sim::Time delay) = 0;
  virtual bool timer_expired(u32 id) const = 0;
  virtual void timer_clear(u32 id) = 0;
};

/// Base class for guest programs.  Concrete programs register a factory so
/// restart can re-instantiate them from the checkpoint image.
class Program {
 public:
  virtual ~Program() = default;

  /// Registry key; stable across checkpoint/restart.
  virtual const char* kind() const = 0;

  /// Executes one quantum.
  virtual StepResult step(Syscalls& sys) = 0;

  /// Serializes/deserializes control state (bulk data lives in regions).
  virtual void save(Encoder& enc) const = 0;
  virtual void load(Decoder& dec) = 0;
};

/// Global factory registry mapping Program::kind() to constructors.
class ProgramRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Program>()>;

  static ProgramRegistry& instance();

  void add(const std::string& kind, Factory f);
  Result<std::unique_ptr<Program>> create(const std::string& kind) const;
  bool known(const std::string& kind) const;

 private:
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace zapc::os

/// Registers a default-constructible program type at static-init time.
/// Use at namespace scope; `id` is any unique identifier token.
#define ZAPC_REGISTER_PROGRAM(id, cls)                                     \
  namespace {                                                              \
  const bool zapc_reg_##id = [] {                                          \
    ::zapc::os::ProgramRegistry::instance().add(                           \
        cls{}.kind(), [] { return std::make_unique<cls>(); });             \
    return true;                                                           \
  }();                                                                     \
  }  // namespace
