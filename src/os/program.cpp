#include "os/program.h"

#include "os/process.h"

namespace zapc::os {

const char* proc_state_name(ProcState s) {
  switch (s) {
    case ProcState::READY: return "READY";
    case ProcState::ONCPU: return "ONCPU";
    case ProcState::BLOCKED: return "BLOCKED";
    case ProcState::STOPPED: return "STOPPED";
    case ProcState::EXITED: return "EXITED";
  }
  return "?";
}

ProgramRegistry& ProgramRegistry::instance() {
  static ProgramRegistry reg;
  return reg;
}

void ProgramRegistry::add(const std::string& kind, Factory f) {
  factories_[kind] = std::move(f);
}

Result<std::unique_ptr<Program>> ProgramRegistry::create(
    const std::string& kind) const {
  auto it = factories_.find(kind);
  if (it == factories_.end()) {
    return Status(Err::NO_ENT, "unknown program kind: " + kind);
  }
  return it->second();
}

bool ProgramRegistry::known(const std::string& kind) const {
  return factories_.count(kind) != 0;
}

}  // namespace zapc::os
