#include "os/node.h"

#include <algorithm>

#include "util/log.h"

namespace zapc::os {

Node::Node(sim::Engine& engine, net::Fabric& fabric, LocationTable& locations,
           VirtualSAN& san, net::IpAddr real_addr, std::string name,
           int ncpus)
    : engine_(engine),
      fabric_(fabric),
      locations_(locations),
      san_(san),
      real_addr_(real_addr),
      name_(std::move(name)),
      cpus_(static_cast<std::size_t>(std::max(1, ncpus))) {
  host_stack_ =
      std::make_unique<net::Stack>(engine_, real_addr_, name_ + ":host");
  host_stack_->set_output([this](net::Packet p) { route_out(std::move(p)); });
  fabric_.attach(real_addr_,
                 [this](const net::WirePacket& wp) { deliver(wp); });
  locations_.set(real_addr_, real_addr_);  // root namespace routes to itself
}

Node::~Node() {
  fabric_.detach(real_addr_);
  locations_.erase(real_addr_);
}

// ---- Domains ------------------------------------------------------------------

void Node::add_domain(Domain& d) {
  domains_[d.vip()] = &d;
  locations_.set(d.vip(), real_addr_);
}

void Node::remove_domain(net::IpAddr vip) {
  domains_.erase(vip);
  // The location entry is only removed if it still points here: during
  // migration the destination node has usually already claimed it.
  auto loc = locations_.resolve(vip);
  if (loc && *loc == real_addr_) locations_.erase(vip);
}

Domain* Node::find_domain(net::IpAddr vip) {
  auto it = domains_.find(vip);
  return it == domains_.end() ? nullptr : it->second;
}

std::vector<Domain*> Node::domains() {
  std::vector<Domain*> out;
  out.reserve(domains_.size());
  for (auto& [vip, d] : domains_) out.push_back(d);
  return out;
}

// ---- Routing ---------------------------------------------------------------------

void Node::deliver(const net::WirePacket& wp) {
  if (failed_) return;
  const net::Packet& p = wp.inner;
  if (p.dst.ip == real_addr_) {
    if (!host_filter_.pass(p, net::Hook::INGRESS)) return;
    host_stack_->deliver(p);
    return;
  }
  auto it = domains_.find(p.dst.ip);
  if (it == domains_.end()) {
    ZLOG_DEBUG("node " << name_ << ": no domain for " << p.dst.to_string());
    return;
  }
  Domain& d = *it->second;
  if (!d.filter().pass(p, net::Hook::INGRESS)) return;
  d.deliver(p);
}

void Node::route_out(net::Packet p) {
  if (failed_) return;
  // Egress filter of the sending namespace.
  if (p.src.ip == real_addr_) {
    if (!host_filter_.pass(p, net::Hook::EGRESS)) return;
  } else {
    auto it = domains_.find(p.src.ip);
    if (it != domains_.end() &&
        !it->second->filter().pass(p, net::Hook::EGRESS)) {
      return;
    }
  }
  auto real_dst = locations_.resolve(p.dst.ip);
  if (!real_dst) {
    ZLOG_DEBUG("node " << name_ << ": unroutable " << p.dst.to_string());
    return;
  }
  fabric_.send(net::WirePacket{real_addr_, *real_dst, std::move(p)});
}

void Node::fail() {
  failed_ = true;
  fabric_.detach(real_addr_);
}

// ---- Scheduler -------------------------------------------------------------------

Process* Node::resolve(const ProcessRef& ref, Domain** dom_out) {
  auto it = domains_.find(ref.domain_vip);
  if (it == domains_.end()) return nullptr;
  if (dom_out != nullptr) *dom_out = it->second;
  return it->second->find_process(ref.vpid);
}

void Node::make_ready(const ProcessRef& ref) {
  Process* p = resolve(ref, nullptr);
  if (p == nullptr) return;
  if (p->state() == ProcState::EXITED || p->state() == ProcState::STOPPED) {
    return;
  }
  if (p->state() == ProcState::ONCPU) {
    p->set_pending_wake();  // applied when the current step finishes
    return;
  }
  p->set_state(ProcState::READY);
  p->clear_wait();
  ready_.push_back(ref);
  kick();
}

void Node::kick() {
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    if (!cpus_[i].busy && !ready_.empty()) {
      cpus_[i].busy = true;
      engine_.schedule(0, [tok = std::weak_ptr<const bool>(alive_), this,
                           i] {
        if (tok.expired()) return;
        dispatch(static_cast<int>(i));
      });
    }
  }
}

void Node::dispatch(int cpu) {
  while (true) {
    if (ready_.empty()) {
      cpus_[static_cast<std::size_t>(cpu)].busy = false;
      return;
    }
    ProcessRef ref = ready_.front();
    ready_.pop_front();
    Domain* dom = nullptr;
    Process* p = resolve(ref, &dom);
    if (p == nullptr || p->state() != ProcState::READY) continue;

    p->set_state(ProcState::ONCPU);
    StepResult result = dom->step_process(*p);
    sim::Time cost = std::max<sim::Time>(result.cost, 1);
    cpu_time_consumed_ += cost;
    engine_.schedule(cost, [tok = std::weak_ptr<const bool>(alive_), this,
                            cpu, ref, result = std::move(result)] {
      if (tok.expired()) return;
      finish_step(cpu, ref, result);
    });
    return;  // CPU is busy until the step's cost elapses
  }
}

void Node::finish_step(int cpu, const ProcessRef& ref, StepResult result) {
  Domain* dom = nullptr;
  Process* p = resolve(ref, &dom);
  if (p != nullptr && p->state() == ProcState::EXITED) {
    p = nullptr;  // killed mid-step; drop the result
  }
  if (p != nullptr) {
    if (result.kind == StepResult::Kind::EXIT) {
      p->set_state(ProcState::EXITED);
      p->set_exit_code(result.exit_code);
      dom->on_process_exit(*p);
    } else if (p->state() == ProcState::STOPPED) {
      // SIGSTOP landed mid-step; apply the outcome lazily at SIGCONT as a
      // plain wakeup (programs tolerate spurious wakeups).
      p->set_resume_state(ProcState::READY);
    } else if (result.kind == StepResult::Kind::YIELD) {
      p->set_state(ProcState::READY);
      ready_.push_back(ref);
    } else if (p->take_pending_wake()) {
      // A wakeup raced with this step; don't lose it.
      p->set_state(ProcState::READY);
      ready_.push_back(ref);
    } else {  // BLOCK
      block_process(*dom, *p, result.wait);
    }
  }
  dispatch(cpu);
}

void Node::block_process(Domain& d, Process& p, const WaitSpec& w) {
  (void)d;
  p.set_state(ProcState::BLOCKED);
  p.set_wait(w);
  if (w.sleep_for.has_value()) {
    ProcessRef ref{d.vip(), p.vpid()};
    engine_.schedule(
        *w.sleep_for, [tok = std::weak_ptr<const bool>(alive_), this, ref] {
          if (tok.expired()) return;
          Process* proc = resolve(ref, nullptr);
          if (proc != nullptr && proc->state() == ProcState::BLOCKED) {
            make_ready(ref);
          }
        });
  }
}

void Node::wake_waiters(Domain& d, net::SockId sock) {
  for (Process* p : d.processes()) {
    if (p->state() == ProcState::ONCPU) {
      // The process is mid-step; if that step ends in BLOCK the wait set
      // is not known yet, so deliver a conservative (possibly spurious)
      // pending wakeup instead of losing the event.
      p->set_pending_wake();
      continue;
    }
    if (p->state() != ProcState::BLOCKED) continue;
    for (int fd : p->wait().fds) {
      auto s = p->fd_lookup(fd);
      if (s.is_ok() && s.value() == sock) {
        make_ready(ProcessRef{d.vip(), p->vpid()});
        break;
      }
    }
  }
}

void Node::suspend_process(Domain& d, Process& p) {
  (void)d;
  if (p.state() == ProcState::EXITED || p.state() == ProcState::STOPPED) {
    return;
  }
  // Whatever it was doing, a SIGCONT simply makes it runnable again;
  // programs re-issue blocked syscalls after spurious wakeups.
  p.set_resume_state(ProcState::READY);
  p.set_state(ProcState::STOPPED);
}

void Node::resume_process(Domain& d, Process& p) {
  if (p.state() != ProcState::STOPPED) return;
  p.set_state(ProcState::READY);
  ready_.push_back(ProcessRef{d.vip(), p.vpid()});
  kick();
}

}  // namespace zapc::os
