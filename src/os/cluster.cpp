#include "os/cluster.h"

namespace zapc::os {

Node& Cluster::add_node(const std::string& name, int ncpus) {
  auto addr = net::IpAddr(192, 168, 1,
                          static_cast<u8>(nodes_.size() + 1));
  return add_node_at(addr, name, ncpus);
}

Node& Cluster::add_node_at(net::IpAddr addr, const std::string& name,
                           int ncpus) {
  nodes_.push_back(std::make_unique<Node>(engine_, fabric_, locations_, san_,
                                          addr, name, ncpus));
  return *nodes_.back();
}

}  // namespace zapc::os
