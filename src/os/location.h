// Cluster-wide virtual→real address resolution.
//
// Paper §3: "ZapC only allows applications in pods to see virtual network
// addresses which are transparently remapped to underlying real network
// addresses as a pod migrates among different machines."  The location
// table holds that remapping; migration rewrites entries, applications
// keep using the same virtual addresses.
#pragma once

#include <optional>
#include <unordered_map>

#include "net/addr.h"

namespace zapc::os {

class LocationTable {
 public:
  /// Maps a virtual (pod) address to the real address of its current node.
  void set(net::IpAddr vip, net::IpAddr real) { map_[vip] = real; }

  void erase(net::IpAddr vip) { map_.erase(vip); }

  std::optional<net::IpAddr> resolve(net::IpAddr vip) const {
    auto it = map_.find(vip);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<net::IpAddr, net::IpAddr> map_;
};

}  // namespace zapc::os
