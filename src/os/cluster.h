// Cluster: the whole simulated testbed — engine, fabric, shared storage,
// location table and a set of nodes (the paper's IBM BladeCenter analogue).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "os/location.h"
#include "os/node.h"
#include "os/san.h"
#include "sim/engine.h"
#include "util/log.h"

namespace zapc::os {

class Cluster {
 public:
  explicit Cluster(net::FabricConfig fabric_config = {})
      : fabric_(engine_, fabric_config) {
    // Stamp log lines with this cluster's virtual clock.  The most
    // recently constructed cluster wins; destroying an older one (e.g. a
    // warm-up testbed) leaves the newer registration in place.
    set_log_clock(this,
                  [](const void* ctx) {
                    return static_cast<const sim::Engine*>(ctx)->now();
                  },
                  &engine_);
  }

  ~Cluster() { clear_log_clock(this); }

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Adds a node with an auto-assigned real address 192.168.1.(n+1).
  Node& add_node(const std::string& name, int ncpus = 1);

  /// Adds a node with an explicit real address (e.g. to model a second
  /// cluster on a different subnet for migration experiments).
  Node& add_node_at(net::IpAddr addr, const std::string& name, int ncpus = 1);

  Node& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t num_nodes() const { return nodes_.size(); }

  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return fabric_; }
  VirtualSAN& san() { return san_; }
  LocationTable& locations() { return locations_; }

  /// Runs the simulation for a stretch of virtual time.
  void run_for(sim::Time t) { engine_.run_until(engine_.now() + t); }
  void run_until(sim::Time t) { engine_.run_until(t); }
  sim::Time now() const { return engine_.now(); }

 private:
  sim::Engine engine_;
  net::Fabric fabric_;
  VirtualSAN san_;
  LocationTable locations_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace zapc::os
