#include "os/san.h"

#include "fault/fault.h"

namespace zapc::os {

Status VirtualSAN::write(const std::string& path, Bytes data) {
  if (fault::injector().enabled()) {
    auto v = fault::injector().on_san_write(path, data.size());
    if (v.fail) return Status(Err::IO, "injected write failure: " + path);
    if (v.keep_bytes < data.size()) {
      data.resize(v.keep_bytes);  // torn object, reported as success
    }
  }
  objects_[path] = std::move(data);
  return Status::ok();
}

Status VirtualSAN::rename(const std::string& from, const std::string& to) {
  auto it = objects_.find(from);
  if (it == objects_.end()) return Status(Err::NO_ENT, from);
  if (from == to) return Status::ok();
  objects_[to] = std::move(it->second);
  objects_.erase(from);
  return Status::ok();
}

void VirtualSAN::append(const std::string& path, const Bytes& data) {
  Bytes& obj = objects_[path];
  obj.insert(obj.end(), data.begin(), data.end());
}

Result<Bytes> VirtualSAN::read(const std::string& path) const {
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status(Err::NO_ENT, path);
  return it->second;
}

bool VirtualSAN::exists(const std::string& path) const {
  return objects_.count(path) != 0;
}

Status VirtualSAN::remove(const std::string& path) {
  return objects_.erase(path) > 0 ? Status::ok() : Status(Err::NO_ENT, path);
}

std::vector<std::string> VirtualSAN::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::size_t VirtualSAN::snapshot(const std::string& prefix,
                                 const std::string& snapshot_prefix) {
  std::vector<std::pair<std::string, Bytes>> copies;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    copies.emplace_back(snapshot_prefix + it->first.substr(prefix.size()),
                        it->second);
  }
  for (auto& [path, data] : copies) objects_[path] = std::move(data);
  return copies.size();
}

std::size_t VirtualSAN::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [path, data] : objects_) n += data.size();
  return n;
}

}  // namespace zapc::os
