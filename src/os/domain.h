// Domain: what a Node needs to know about a hosted namespace (a pod).
//
// Implemented by pod::Pod.  Keeping this interface in the os module lets
// the node scheduler and router work without depending on the pod layer.
#pragma once

#include <vector>

#include "net/addr.h"
#include "net/filter.h"
#include "net/stack.h"
#include "os/process.h"

namespace zapc::os {

class Domain {
 public:
  virtual ~Domain() = default;

  /// The namespace's virtual address (stable across migration).
  virtual net::IpAddr vip() const = 0;
  virtual net::Stack& stack() = 0;
  virtual net::PacketFilter& filter() = 0;

  /// Ingress entry point after the packet filter.  Defaults to the
  /// socket stack; pods with a kernel-bypass device divert its protocol
  /// number before the stack sees the packet.
  virtual void deliver(const net::Packet& p) { stack().deliver(p); }

  virtual Process* find_process(i32 vpid) = 0;
  virtual std::vector<Process*> processes() = 0;

  /// Runs one program step with this domain's syscall context.
  virtual StepResult step_process(Process& p) = 0;

  virtual void on_process_exit(Process& p) = 0;
};

}  // namespace zapc::os
