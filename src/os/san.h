// Shared storage (SAN/NAS analogue).
//
// The paper assumes "a shared storage infrastructure across cluster nodes"
// (GFS over FibreChannel SAN in the testbed): checkpoint images written by
// one node are readable from any other.  VirtualSAN models that as a
// cluster-wide key-value object store with snapshot support (the paper
// defers file-system state to "already available file system snapshot
// functionality").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace zapc::os {

class VirtualSAN {
 public:
  /// Overwrites the object at `path`.  Err::IO under injected storage
  /// faults (fault::injector()); a short-write fault instead stores a
  /// truncated object and still reports success, like real disks do.
  Status write(const std::string& path, Bytes data);

  /// Appends to the object at `path`, creating it if missing.
  void append(const std::string& path, const Bytes& data);

  /// Reads a whole object; Err::NO_ENT if missing.
  Result<Bytes> read(const std::string& path) const;

  /// Atomically moves `from` to `to` (overwriting `to`); the commit half
  /// of the two-phase image write.  Err::NO_ENT if `from` is missing.
  Status rename(const std::string& from, const std::string& to);

  bool exists(const std::string& path) const;
  Status remove(const std::string& path);

  /// Lists object paths with the given prefix.
  std::vector<std::string> list(const std::string& prefix) const;

  /// Copies every object under `prefix` to `snapshot_prefix` (the
  /// file-system snapshot taken "immediately prior to reactivating the
  /// pod" in §4).
  std::size_t snapshot(const std::string& prefix,
                       const std::string& snapshot_prefix);

  std::size_t object_count() const { return objects_.size(); }
  std::size_t total_bytes() const;

 private:
  std::map<std::string, Bytes> objects_;
};

}  // namespace zapc::os
