// Mini-MPI: message-passing middleware for guest programs.
//
// Implements the subset of MPI the paper's benchmark applications need —
// full-mesh setup over TCP, tagged point-to-point messages, and the
// collectives (barrier, bcast, reduce, allreduce) — entirely in guest
// user space over the standard socket interface.  Like MPICH on a real
// cluster, it requires NO checkpoint awareness: ZapC checkpoints it
// transparently along with the application, which is why every bit of
// its state (connections, partial frames, in-flight collectives) is part
// of the program's serialized state.
//
// All operations are non-blocking attempts suited to the step-machine
// guest model: they return false (or nullopt) when they would block, and
// the caller blocks on wait_fds().
#pragma once

#include <optional>
#include <vector>

#include "mpi/msgio.h"
#include "net/addr.h"
#include "os/program.h"

namespace zapc::mpi {

/// Static job layout: which virtual address hosts each rank.
struct MpiConfig {
  i32 rank = 0;
  i32 size = 1;
  u16 base_port = 5200;                // rank r listens on base_port + r
  std::vector<net::IpAddr> rank_vips;  // indexed by rank

  net::SockAddr addr_of(i32 r) const {
    return net::SockAddr{rank_vips[static_cast<std::size_t>(r)],
                         static_cast<u16>(base_port + r)};
  }
};

class MpiComm {
 public:
  /// Tags >= kReservedTagBase are reserved for the middleware.
  static constexpr u32 kReservedTagBase = 0x10000000;

  MpiComm() = default;
  explicit MpiComm(MpiConfig cfg) : cfg_(std::move(cfg)) {
    peers_.resize(static_cast<std::size_t>(cfg_.size));
    hello_done_.assign(static_cast<std::size_t>(cfg_.size), false);
  }

  i32 rank() const { return cfg_.rank; }
  i32 size() const { return cfg_.size; }
  const MpiConfig& config() const { return cfg_; }

  /// Advances mesh construction; true once connected to every rank.
  bool try_init(os::Syscalls& sys);
  bool initialized() const { return init_done_; }

  /// Buffered, tagged point-to-point send (never blocks; bytes drain via
  /// progress()).
  void post_send(os::Syscalls& sys, i32 dst, u32 tag, const Bytes& data);

  /// Non-blocking receive of a message with the given source and tag.
  std::optional<Bytes> try_recv(os::Syscalls& sys, i32 src, u32 tag);

  // ---- Collectives (one at a time; all ranks must call the same op) ----
  bool try_barrier(os::Syscalls& sys);
  /// Root's `data` is broadcast; on completion every rank's *data holds it.
  bool try_bcast(os::Syscalls& sys, i32 root, Bytes* data);
  /// Element-wise sum; `out` is valid on completion at every rank.
  bool try_allreduce_sum(os::Syscalls& sys, const std::vector<double>& in,
                         std::vector<double>* out);
  /// Element-wise sum delivered to root only.
  bool try_reduce_sum(os::Syscalls& sys, i32 root,
                      const std::vector<double>& in,
                      std::vector<double>* out);
  /// Root gathers every rank's blob into out[rank] (valid at root).
  bool try_gather(os::Syscalls& sys, i32 root, const Bytes& in,
                  std::vector<Bytes>* out);

  /// Pumps all connections (called implicitly by the ops).
  void progress(os::Syscalls& sys);

  /// Fds to block on when an operation returned "would block".
  std::vector<int> wait_fds() const;

  /// True if any connection failed (peer died / reset).
  bool failed() const;

  void save(Encoder& e) const;
  void load(Decoder& d);

  // ---- Helpers for numeric payloads -------------------------------------
  static Bytes pack_doubles(const std::vector<double>& v);
  static std::vector<double> unpack_doubles(const Bytes& b);

 private:
  enum : u32 {
    kTagHello = kReservedTagBase + 1,
    kTagBarrier = kReservedTagBase + 2,
    kTagBarrierRelease = kReservedTagBase + 3,
    kTagBcast = kReservedTagBase + 4,
    kTagReduce = kReservedTagBase + 5,
    kTagReduceResult = kReservedTagBase + 6,
    kTagGather = kReservedTagBase + 7,
  };

  /// State of the single in-flight collective.
  struct CollState {
    u32 phase = 0;
    bool sent = false;
    std::vector<bool> got;
    std::vector<double> acc;
    std::vector<Bytes> parts;
    void reset(i32 size) {
      phase = 0;
      sent = false;
      got.assign(static_cast<std::size_t>(size), false);
      acc.clear();
      parts.assign(static_cast<std::size_t>(size), Bytes{});
    }
  };

  MsgIo& peer(i32 r) { return peers_[static_cast<std::size_t>(r)]; }

  MpiConfig cfg_;
  std::vector<MsgIo> peers_;      // peers_[rank()] unused
  std::vector<MsgIo> pending_accepts_;  // accepted, HELLO not yet seen
  std::vector<bool> hello_done_;  // peer identified / hello sent
  int listen_fd_ = -1;
  bool listener_ready_ = false;
  bool connects_issued_ = false;
  bool init_done_ = false;
  CollState coll_;
  bool coll_active_ = false;
};

}  // namespace zapc::mpi
