#include "mpi/msgio.h"

#include <algorithm>

namespace zapc::mpi {

void MsgIo::send(u32 tag, const Bytes& data) {
  Encoder e;
  e.put_u32(tag);
  e.put_u32(static_cast<u32>(data.size()));
  tx_.insert(tx_.end(), e.bytes().begin(), e.bytes().end());
  tx_.insert(tx_.end(), data.begin(), data.end());
}

bool MsgIo::progress(os::Syscalls& sys) {
  if (failed_ || fd_ < 0) return !failed_;

  // Transmit.
  while (!tx_.empty()) {
    std::size_t n = std::min<std::size_t>(tx_.size(), 64 * 1024);
    Bytes chunk(tx_.begin(), tx_.begin() + static_cast<long>(n));
    auto w = sys.send(fd_, chunk, 0);
    if (!w.is_ok()) {
      if (w.err() == Err::WOULD_BLOCK) break;
      failed_ = true;
      return false;
    }
    tx_.erase(tx_.begin(), tx_.begin() + static_cast<long>(w.value()));
    if (w.value() < n) break;
  }

  // Receive.  On EOF/error the connection is marked failed but any bytes
  // that arrived with (or before) the close still get reassembled below —
  // a peer may legitimately send its last message and exit.
  while (true) {
    auto r = sys.recv(fd_, 64 * 1024, 0);
    if (!r.is_ok()) {
      if (r.err() == Err::WOULD_BLOCK) break;
      failed_ = true;
      break;
    }
    if (r.value().eof) {
      failed_ = true;
      break;
    }
    append_bytes(rx_, r.value().data);
  }

  // Reassemble frames.
  std::size_t off = 0;
  while (rx_.size() - off >= 8) {
    Decoder d(rx_.data() + off, rx_.size() - off);
    u32 tag = d.u32_().value_or(0);
    u32 len = d.u32_().value_or(0);
    if (rx_.size() - off - 8 < len) break;
    Msg m;
    m.tag = tag;
    m.data.assign(rx_.begin() + static_cast<long>(off + 8),
                  rx_.begin() + static_cast<long>(off + 8 + len));
    inbox_.push_back(std::move(m));
    off += 8 + len;
  }
  if (off > 0) rx_.erase(rx_.begin(), rx_.begin() + static_cast<long>(off));
  return !failed_;
}

std::optional<Msg> MsgIo::pop() {
  if (inbox_.empty()) return std::nullopt;
  Msg m = std::move(inbox_.front());
  inbox_.pop_front();
  return m;
}

std::optional<Msg> MsgIo::pop_tag(u32 tag) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (it->tag == tag) {
      Msg m = std::move(*it);
      inbox_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

void MsgIo::save(Encoder& e) const {
  e.put_i32(fd_);
  e.put_bytes(Bytes(tx_.begin(), tx_.end()));
  e.put_bytes(rx_);
  e.put_u32(static_cast<u32>(inbox_.size()));
  for (const Msg& m : inbox_) {
    e.put_u32(m.tag);
    e.put_bytes(m.data);
  }
  e.put_bool(failed_);
}

void MsgIo::load(Decoder& d) {
  fd_ = d.i32_().value_or(-1);
  Bytes tx = d.bytes_().value_or({});
  tx_.assign(tx.begin(), tx.end());
  rx_ = d.bytes_().value_or({});
  inbox_.clear();
  u32 n = d.count_(9).value_or(0);
  for (u32 i = 0; i < n; ++i) {
    Msg m;
    m.tag = d.u32_().value_or(0);
    m.data = d.bytes_().value_or({});
    inbox_.push_back(std::move(m));
  }
  failed_ = d.bool_().value_or(false);
}

}  // namespace zapc::mpi
