// Framed message I/O over guest sockets, shared by the mini-MPI and
// mini-PVM middleware.
//
// Unlike core/channel.h (which is host-side and event-driven), this runs
// *inside* guest programs: all calls are non-blocking attempts and the
// whole object state — including partially received frames and queued
// transmissions — is serializable, because the middleware is checkpointed
// transparently as part of the application (the whole point of ZapC).
#pragma once

#include <deque>
#include <optional>

#include "os/program.h"
#include "util/serialize.h"

namespace zapc::mpi {

/// One received message.
struct Msg {
  u32 tag = 0;
  Bytes data;
};

/// Per-connection framed sender/receiver.  Frames are (tag u32, len u32,
/// payload).
class MsgIo {
 public:
  MsgIo() = default;
  explicit MsgIo(int fd) : fd_(fd) {}

  int fd() const { return fd_; }
  void set_fd(int fd) { fd_ = fd; }

  /// Queues a message for transmission (always succeeds; data is buffered
  /// in user space until the socket accepts it).
  void send(u32 tag, const Bytes& data);

  /// Pushes queued bytes into the socket and drains arrived bytes into
  /// complete messages.  Returns false on connection error/EOF.
  bool progress(os::Syscalls& sys);

  /// Pops the next complete message, if any.
  std::optional<Msg> pop();
  /// Pops the next message with the given tag (skipping none — messages
  /// with other tags stay queued in order).
  std::optional<Msg> pop_tag(u32 tag);
  bool has_message() const { return !inbox_.empty(); }

  /// True when all queued output has entered the socket.
  bool flushed() const { return tx_.empty(); }
  bool failed() const { return failed_; }

  void save(Encoder& e) const;
  void load(Decoder& d);

 private:
  int fd_ = -1;
  std::deque<u8> tx_;
  Bytes rx_;
  std::deque<Msg> inbox_;
  bool failed_ = false;
};

}  // namespace zapc::mpi
