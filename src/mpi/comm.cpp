#include "mpi/comm.h"

#include "util/log.h"

namespace zapc::mpi {

// ---- Mesh construction --------------------------------------------------------

bool MpiComm::try_init(os::Syscalls& sys) {
  if (init_done_) return true;
  if (cfg_.size == 1) {
    init_done_ = true;
    return true;
  }

  // Listener for ranks above us.
  if (!listener_ready_) {
    if (listen_fd_ < 0) {
      auto fd = sys.socket(net::Proto::TCP);
      if (!fd) return false;
      listen_fd_ = fd.value();
      (void)sys.setsockopt(listen_fd_, net::SockOpt::SO_REUSEADDR, 1);
    }
    if (!sys.bind(listen_fd_,
                  net::SockAddr{net::kAnyAddr,
                                static_cast<u16>(cfg_.base_port +
                                                 cfg_.rank)})) {
      return false;
    }
    if (!sys.listen(listen_fd_, cfg_.size)) return false;
    listener_ready_ = true;
  }

  // Connect to every lower rank; the HELLO identifying us is queued
  // immediately and drains once the connection establishes.
  if (!connects_issued_) {
    for (i32 j = 0; j < cfg_.rank; ++j) {
      auto fd = sys.socket(net::Proto::TCP);
      if (!fd) return false;
      Status st = sys.connect(fd.value(), cfg_.addr_of(j));
      if (!st.is_ok() && st.err() != Err::IN_PROGRESS) return false;
      peer(j).set_fd(fd.value());
      Encoder e;
      e.put_i32(cfg_.rank);
      peer(j).send(kTagHello, e.take());
    }
    connects_issued_ = true;
  }

  // Retry refused connects (we may have started before the peer's
  // listener existed).
  for (i32 j = 0; j < cfg_.rank; ++j) {
    if (peer(j).failed()) {
      (void)sys.close(peer(j).fd());
      auto fd = sys.socket(net::Proto::TCP);
      if (!fd) return false;
      Status st = sys.connect(fd.value(), cfg_.addr_of(j));
      if (!st.is_ok() && st.err() != Err::IN_PROGRESS) return false;
      peers_[static_cast<std::size_t>(j)] = MsgIo(fd.value());
      Encoder e;
      e.put_i32(cfg_.rank);
      peer(j).send(kTagHello, e.take());
    }
  }

  // Accept connections from higher ranks and identify them by HELLO.
  while (true) {
    auto child = sys.accept(listen_fd_, nullptr);
    if (!child) break;
    pending_accepts_.push_back(MsgIo(child.value()));
  }
  for (auto it = pending_accepts_.begin(); it != pending_accepts_.end();) {
    it->progress(sys);
    auto hello = it->pop_tag(kTagHello);
    if (hello) {
      Decoder d(hello->data);
      i32 r = d.i32_().value_or(-1);
      if (r > cfg_.rank && r < cfg_.size) {
        peers_[static_cast<std::size_t>(r)] = std::move(*it);
        hello_done_[static_cast<std::size_t>(r)] = true;
      } else {
        (void)sys.close(it->fd());
      }
      it = pending_accepts_.erase(it);
    } else if (it->failed()) {
      it = pending_accepts_.erase(it);
    } else {
      ++it;
    }
  }

  progress(sys);

  // Lower ranks are ready once our HELLO drained into an established
  // connection; higher ranks once their HELLO arrived.
  bool all = true;
  for (i32 j = 0; j < cfg_.size; ++j) {
    if (j == cfg_.rank) continue;
    if (j < cfg_.rank) {
      if (peer(j).failed() || !peer(j).flushed()) all = false;
    } else {
      if (!hello_done_[static_cast<std::size_t>(j)]) all = false;
    }
  }
  if (all) init_done_ = true;
  return init_done_;
}

void MpiComm::progress(os::Syscalls& sys) {
  for (i32 j = 0; j < cfg_.size; ++j) {
    if (j == cfg_.rank) continue;
    if (peer(j).fd() >= 0) (void)peer(j).progress(sys);
  }
}

std::vector<int> MpiComm::wait_fds() const {
  std::vector<int> fds;
  if (!init_done_ && listen_fd_ >= 0) fds.push_back(listen_fd_);
  for (i32 j = 0; j < cfg_.size; ++j) {
    if (j == cfg_.rank) continue;
    int fd = peers_[static_cast<std::size_t>(j)].fd();
    if (fd >= 0) fds.push_back(fd);
  }
  for (const MsgIo& io : pending_accepts_) {
    if (io.fd() >= 0) fds.push_back(io.fd());
  }
  return fds;
}

bool MpiComm::failed() const {
  for (i32 j = 0; j < cfg_.size; ++j) {
    if (j == cfg_.rank) continue;
    // Failures before init are handled by the connect retry path.
    if (init_done_ && peers_[static_cast<std::size_t>(j)].failed()) {
      return true;
    }
  }
  return false;
}

// ---- Point-to-point --------------------------------------------------------------

void MpiComm::post_send(os::Syscalls& sys, i32 dst, u32 tag,
                        const Bytes& data) {
  peer(dst).send(tag, data);
  (void)peer(dst).progress(sys);
}

std::optional<Bytes> MpiComm::try_recv(os::Syscalls& sys, i32 src, u32 tag) {
  (void)peer(src).progress(sys);
  auto m = peer(src).pop_tag(tag);
  if (!m) return std::nullopt;
  return std::move(m->data);
}

// ---- Collectives ------------------------------------------------------------------

bool MpiComm::try_barrier(os::Syscalls& sys) {
  progress(sys);
  if (cfg_.size == 1) return true;
  if (!coll_active_) {
    coll_.reset(cfg_.size);
    coll_active_ = true;
  }
  if (cfg_.rank == 0) {
    for (i32 j = 1; j < cfg_.size; ++j) {
      auto got = coll_.got[static_cast<std::size_t>(j)];
      if (!got && peer(j).pop_tag(kTagBarrier)) got = true;
    }
    for (i32 j = 1; j < cfg_.size; ++j) {
      if (!coll_.got[static_cast<std::size_t>(j)]) return false;
    }
    for (i32 j = 1; j < cfg_.size; ++j) {
      post_send(sys, j, kTagBarrierRelease, {});
    }
    coll_active_ = false;
    return true;
  }
  if (!coll_.sent) {
    post_send(sys, 0, kTagBarrier, {});
    coll_.sent = true;
  }
  if (peer(0).pop_tag(kTagBarrierRelease)) {
    coll_active_ = false;
    return true;
  }
  return false;
}

bool MpiComm::try_bcast(os::Syscalls& sys, i32 root, Bytes* data) {
  progress(sys);
  if (cfg_.size == 1) return true;
  if (cfg_.rank == root) {
    for (i32 j = 0; j < cfg_.size; ++j) {
      if (j != root) post_send(sys, j, kTagBcast, *data);
    }
    return true;
  }
  auto m = peer(root).pop_tag(kTagBcast);
  if (!m) return false;
  *data = std::move(m->data);
  return true;
}

bool MpiComm::try_reduce_sum(os::Syscalls& sys, i32 root,
                             const std::vector<double>& in,
                             std::vector<double>* out) {
  progress(sys);
  if (cfg_.size == 1) {
    *out = in;
    return true;
  }
  if (!coll_active_) {
    coll_.reset(cfg_.size);
    coll_.acc = in;
    coll_active_ = true;
  }
  if (cfg_.rank == root) {
    for (i32 j = 0; j < cfg_.size; ++j) {
      if (j == root) continue;
      auto got = coll_.got[static_cast<std::size_t>(j)];
      if (got) continue;
      auto m = peer(j).pop_tag(kTagReduce);
      if (!m) continue;
      std::vector<double> v = unpack_doubles(m->data);
      for (std::size_t k = 0; k < coll_.acc.size() && k < v.size(); ++k) {
        coll_.acc[k] += v[k];
      }
      got = true;
    }
    for (i32 j = 0; j < cfg_.size; ++j) {
      if (j != root && !coll_.got[static_cast<std::size_t>(j)]) return false;
    }
    *out = coll_.acc;
    coll_active_ = false;
    return true;
  }
  if (!coll_.sent) {
    post_send(sys, root, kTagReduce, pack_doubles(in));
    coll_.sent = true;
  }
  coll_active_ = false;  // non-root's part is done once sent
  return true;
}

bool MpiComm::try_allreduce_sum(os::Syscalls& sys,
                                const std::vector<double>& in,
                                std::vector<double>* out) {
  progress(sys);
  if (cfg_.size == 1) {
    *out = in;
    return true;
  }
  if (!coll_active_) {
    coll_.reset(cfg_.size);
    coll_.acc = in;
    coll_active_ = true;
  }
  if (cfg_.rank == 0) {
    if (coll_.phase == 0) {
      for (i32 j = 1; j < cfg_.size; ++j) {
        auto got = coll_.got[static_cast<std::size_t>(j)];
        if (got) continue;
        auto m = peer(j).pop_tag(kTagReduce);
        if (!m) continue;
        std::vector<double> v = unpack_doubles(m->data);
        for (std::size_t k = 0; k < coll_.acc.size() && k < v.size(); ++k) {
          coll_.acc[k] += v[k];
        }
        got = true;
      }
      for (i32 j = 1; j < cfg_.size; ++j) {
        if (!coll_.got[static_cast<std::size_t>(j)]) return false;
      }
      Bytes packed = pack_doubles(coll_.acc);
      for (i32 j = 1; j < cfg_.size; ++j) {
        post_send(sys, j, kTagReduceResult, packed);
      }
      coll_.phase = 1;
    }
    *out = coll_.acc;
    coll_active_ = false;
    return true;
  }
  if (!coll_.sent) {
    post_send(sys, 0, kTagReduce, pack_doubles(in));
    coll_.sent = true;
  }
  auto m = peer(0).pop_tag(kTagReduceResult);
  if (!m) return false;
  *out = unpack_doubles(m->data);
  coll_active_ = false;
  return true;
}

bool MpiComm::try_gather(os::Syscalls& sys, i32 root, const Bytes& in,
                         std::vector<Bytes>* out) {
  progress(sys);
  if (cfg_.size == 1) {
    out->assign(1, in);
    return true;
  }
  if (!coll_active_) {
    coll_.reset(cfg_.size);
    coll_active_ = true;
  }
  if (cfg_.rank == root) {
    coll_.parts[static_cast<std::size_t>(root)] = in;
    for (i32 j = 0; j < cfg_.size; ++j) {
      if (j == root) continue;
      auto got = coll_.got[static_cast<std::size_t>(j)];
      if (got) continue;
      auto m = peer(j).pop_tag(kTagGather);
      if (!m) continue;
      coll_.parts[static_cast<std::size_t>(j)] = std::move(m->data);
      got = true;
    }
    for (i32 j = 0; j < cfg_.size; ++j) {
      if (j != root && !coll_.got[static_cast<std::size_t>(j)]) return false;
    }
    *out = coll_.parts;
    coll_active_ = false;
    return true;
  }
  if (!coll_.sent) {
    post_send(sys, root, kTagGather, in);
    coll_.sent = true;
  }
  coll_active_ = false;
  return true;
}

// ---- Numeric payloads -----------------------------------------------------------

Bytes MpiComm::pack_doubles(const std::vector<double>& v) {
  Encoder e;
  e.put_u32(static_cast<u32>(v.size()));
  for (double x : v) e.put_f64(x);
  return e.take();
}

std::vector<double> MpiComm::unpack_doubles(const Bytes& b) {
  Decoder d(b);
  u32 n = d.u32_().value_or(0);
  std::vector<double> v;
  v.reserve(n);
  for (u32 i = 0; i < n; ++i) v.push_back(d.f64_().value_or(0));
  return v;
}

// ---- Serialization ----------------------------------------------------------------

void MpiComm::save(Encoder& e) const {
  e.put_i32(cfg_.rank);
  e.put_i32(cfg_.size);
  e.put_u16(cfg_.base_port);
  e.put_u32(static_cast<u32>(cfg_.rank_vips.size()));
  for (const auto& v : cfg_.rank_vips) e.put_u32(v.v);

  e.put_u32(static_cast<u32>(peers_.size()));
  for (const MsgIo& io : peers_) io.save(e);
  e.put_u32(static_cast<u32>(hello_done_.size()));
  for (bool b : hello_done_) e.put_bool(b);
  e.put_u32(static_cast<u32>(pending_accepts_.size()));
  for (const MsgIo& io : pending_accepts_) io.save(e);

  e.put_i32(listen_fd_);
  e.put_bool(listener_ready_);
  e.put_bool(connects_issued_);
  e.put_bool(init_done_);

  e.put_bool(coll_active_);
  e.put_u32(coll_.phase);
  e.put_bool(coll_.sent);
  e.put_u32(static_cast<u32>(coll_.got.size()));
  for (bool b : coll_.got) e.put_bool(b);
  e.put_bytes(pack_doubles(coll_.acc));
  e.put_u32(static_cast<u32>(coll_.parts.size()));
  for (const Bytes& b : coll_.parts) e.put_bytes(b);
}

void MpiComm::load(Decoder& d) {
  cfg_.rank = d.i32_().value_or(0);
  cfg_.size = d.i32_().value_or(1);
  cfg_.base_port = d.u16_().value_or(5200);
  u32 nv = d.count_(4).value_or(0);
  cfg_.rank_vips.clear();
  for (u32 i = 0; i < nv; ++i) {
    cfg_.rank_vips.push_back(net::IpAddr(d.u32_().value_or(0)));
  }

  u32 np = d.count_(1).value_or(0);
  peers_.assign(np, MsgIo{});
  for (u32 i = 0; i < np; ++i) peers_[i].load(d);
  u32 nh = d.count_(1).value_or(0);
  hello_done_.assign(nh, false);
  for (u32 i = 0; i < nh; ++i) {
    hello_done_[i] = d.bool_().value_or(false);
  }
  u32 na = d.count_(1).value_or(0);
  pending_accepts_.assign(na, MsgIo{});
  for (u32 i = 0; i < na; ++i) pending_accepts_[i].load(d);

  listen_fd_ = d.i32_().value_or(-1);
  listener_ready_ = d.bool_().value_or(false);
  connects_issued_ = d.bool_().value_or(false);
  init_done_ = d.bool_().value_or(false);

  coll_active_ = d.bool_().value_or(false);
  coll_.phase = d.u32_().value_or(0);
  coll_.sent = d.bool_().value_or(false);
  u32 ng = d.count_(1).value_or(0);
  coll_.got.assign(ng, false);
  for (u32 i = 0; i < ng; ++i) coll_.got[i] = d.bool_().value_or(false);
  coll_.acc = unpack_doubles(d.bytes_().value_or({}));
  u32 nparts = d.count_(4).value_or(0);
  coll_.parts.assign(nparts, Bytes{});
  for (u32 i = 0; i < nparts; ++i) {
    coll_.parts[i] = d.bytes_().value_or({});
  }
}

}  // namespace zapc::mpi
