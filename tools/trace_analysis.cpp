#include "tools/trace_analysis.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.h"
#include "obs/vtime.h"

namespace zapc::tools {
namespace {

/// Value of `key=` inside an event text ("" when absent).
std::string field(const std::string& text, const std::string& key) {
  const std::string needle = " " + key + "=";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  auto end = text.find(' ', pos);
  return text.substr(pos, end == std::string::npos ? std::string::npos
                                                   : end - pos);
}

u64 field_u64(const std::string& text, const std::string& key) {
  std::string v = field(text, key);
  return v.empty() ? 0 : std::strtoull(v.c_str(), nullptr, 10);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

Result<TraceDoc> load_trace_doc(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(Err::IO, "cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();

  auto parsed = obs::json_parse(buf.str());
  if (!parsed) {
    return Status(Err::PROTO, path + ": " + parsed.status().to_string());
  }
  const obs::Json& doc = parsed.value();

  TraceDoc out;
  out.path = path;
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_str()) {
    return Status(Err::PROTO, path + ": missing schema field");
  }
  out.schema = schema->str();
  if (out.schema == obs::kSchemaVersion) {
    if (const obs::Json* n = doc.find("name"); n != nullptr && n->is_str()) {
      out.name = n->str();
    }
  } else if (out.schema == obs::kPostmortemSchemaVersion) {
    std::string kind, phase;
    if (const obs::Json* k = doc.find("kind"); k != nullptr) kind = k->str();
    if (const obs::Json* p = doc.find("phase"); p != nullptr) {
      phase = p->str();
    }
    u64 op = 0;
    if (const obs::Json* o = doc.find("op_id"); o != nullptr) {
      op = o->num_u64();
    }
    out.name = kind + " op=" + std::to_string(op) + " phase=" + phase;
  } else {
    return Status(Err::PROTO, path + ": unknown schema " + out.schema);
  }

  if (const obs::Json* spans = doc.find("spans"); spans != nullptr) {
    auto recs = obs::spans_from_json(*spans);
    if (!recs) {
      return Status(Err::PROTO, path + ": " + recs.status().to_string());
    }
    out.spans = std::move(recs).value();
  }
  return out;
}

std::vector<OpTrace> group_by_op(const std::vector<obs::SpanRecord>& spans) {
  std::map<obs::OpId, OpTrace> by_op;
  for (const auto& s : spans) {
    if (s.op == 0) continue;
    OpTrace& t = by_op[s.op];
    t.op = s.op;
    t.records.push_back(&s);
  }
  std::vector<OpTrace> out;
  out.reserve(by_op.size());
  for (auto& [op, t] : by_op) out.push_back(std::move(t));
  return out;
}

std::string render_op_timeline(const OpTrace& op) {
  return render_op_timeline(op, {});
}

std::string render_op_timeline(const OpTrace& op,
                               const std::set<obs::SpanId>& critical) {
  constexpr int kBarWidth = 40;

  obs::Time t0 = ~obs::Time{0}, t1 = 0;
  std::set<obs::SpanId> ids;
  for (const auto* r : op.records) {
    ids.insert(r->id);
    t0 = std::min(t0, r->start);
    t1 = std::max({t1, r->start, r->open ? r->start : r->end});
  }
  if (op.records.empty()) t0 = 0;
  const double span_us = t1 > t0 ? static_cast<double>(t1 - t0) : 1.0;
  auto col = [&](obs::Time t) {
    int c = static_cast<int>(static_cast<double>(t - t0) / span_us *
                             (kBarWidth - 1));
    return std::clamp(c, 0, kBarWidth - 1);
  };

  // Children grouped under their parent; records whose parent is not part
  // of this op (or 0) are roots.  The Manager's root span comes first, so
  // stream order inside a parent is already causal order.
  std::map<obs::SpanId, std::vector<const obs::SpanRecord*>> children;
  std::vector<const obs::SpanRecord*> roots;
  for (const auto* r : op.records) {
    if (r->parent != 0 && ids.count(r->parent) != 0) {
      children[r->parent].push_back(r);
    } else {
      roots.push_back(r);
    }
  }

  std::ostringstream out;
  out << "op " << op.op << "  [" << obs::vtime_us(t0) << " .. "
      << obs::vtime_us(t1) << "]  (" << op.records.size() << " records)\n";

  std::size_t who_w = 3;
  for (const auto* r : op.records) who_w = std::max(who_w, r->who.size());

  std::function<void(const obs::SpanRecord*, int)> emit =
      [&](const obs::SpanRecord* r, int depth) {
        std::string bar(kBarWidth, ' ');
        if (r->kind == obs::SpanKind::EVENT) {
          bar[col(r->start)] = '|';
        } else {
          int a = col(r->start);
          int b = r->open ? kBarWidth - 1 : col(r->end);
          for (int i = a; i <= b; ++i) bar[i] = '=';
        }
        char times[48];
        if (r->kind == obs::SpanKind::EVENT) {
          std::snprintf(times, sizeof(times), "%-20s",
                        obs::vtime_stamp(r->start).c_str());
        } else if (r->open) {
          std::snprintf(times, sizeof(times), "%9s..     OPEN",
                        obs::vtime_us(r->start).c_str());
        } else {
          std::snprintf(times, sizeof(times), "%9s..%-9s",
                        obs::vtime_us(r->start).c_str(),
                        obs::vtime_us(r->end).c_str());
        }
        out << (critical.count(r->id) != 0 ? "* [" : "  [") << bar << "] "
            << times << " ";
        out.width(static_cast<std::streamsize>(who_w));
        out << std::left << r->who;
        out.width(0);
        out << " " << std::string(static_cast<std::size_t>(depth) * 2, ' ')
            << r->name << "\n";
        for (const auto* c : children[r->id]) emit(c, depth + 1);
      };
  for (const auto* r : roots) emit(r, 0);
  return out.str();
}

std::vector<Violation> validate_ops_detailed(
    const std::vector<obs::SpanRecord>& spans, const ValidateOptions& opts) {
  std::vector<Violation> out;
  for (const OpTrace& t : group_by_op(spans)) {
    std::vector<std::string> bad;

    // ---- Exactly one barrier (Manager 'continue') per checkpoint op.
    bool is_ckpt = false;
    std::vector<const obs::SpanRecord*> continues;
    for (const auto* r : t.records) {
      if (r->kind == obs::SpanKind::SPAN &&
          (r->name == "mgr.ckpt" || r->name == "ckpt")) {
        is_ckpt = true;
      }
      if (r->kind == obs::SpanKind::EVENT && r->name == "mgr.continue") {
        continues.push_back(r);
      }
    }
    bool aborted = false;
    bool has_op_fail = false;
    for (const auto* r : t.records) {
      if (r->kind != obs::SpanKind::EVENT) continue;
      if (starts_with(r->name, "abort") ||
          r->name.find("ABORTED") != std::string::npos) {
        aborted = true;
      }
      if (starts_with(r->name, "op.fail")) has_op_fail = true;
    }
    if (is_ckpt && !aborted && continues.size() != 1) {
      bad.push_back("expected exactly one mgr.continue, saw " +
                    std::to_string(continues.size()));
    }

    // ---- Every aborted operation recorded its failure: an 'op.fail'
    // EVENT (the marker obs::dump_op_failure emits next to the
    // flight-recorder postmortem) must accompany the abort markers.
    if (aborted && !has_op_fail) {
      bad.push_back(
          "op aborted but no op.fail postmortem marker was recorded");
    }

    // ---- No op-tagged span left open at end-of-trace.  An open span in
    // a completed run's evidence means some phase neither finished nor
    // was closed out by the abort path.
    if (!opts.allow_open_spans) {
      for (const auto* r : t.records) {
        if (r->kind == obs::SpanKind::SPAN && r->open) {
          bad.push_back(r->who + ": span '" + r->name +
                        "' still open at end-of-trace");
        }
      }
    }
    const obs::SpanRecord* cont =
        continues.empty() ? nullptr : continues.front();

    // ---- NETWORK_FIRST ordering: per agent, the network-state
    // checkpoint completes before the standalone checkpoint starts.
    if (!opts.allow_network_last) {
      std::map<std::string, const obs::SpanRecord*> netckpt, standalone;
      for (const auto* r : t.records) {
        if (r->kind != obs::SpanKind::SPAN) continue;
        if (r->name == "ckpt.netckpt") netckpt[r->who] = r;
        if (r->name == "ckpt.standalone") standalone[r->who] = r;
      }
      for (const auto& [who, net] : netckpt) {
        auto it = standalone.find(who);
        if (it == standalone.end() || net->open) continue;
        if (net->end > it->second->start) {
          bad.push_back(who +
                        ": standalone checkpoint started before the "
                        "network checkpoint finished (NETWORK_FIRST "
                        "violated)");
        }
      }
    }

    // ---- No agent resumes before (or outside) the Manager's continue.
    for (const auto* r : t.records) {
      if (r->kind != obs::SpanKind::EVENT ||
          !starts_with(r->name, "agent.resume")) {
        continue;
      }
      if (cont == nullptr) {
        bad.push_back(r->who + " resumed with no mgr.continue");
        continue;
      }
      if (r->start < cont->start) {
        bad.push_back(r->who + " resumed at " + obs::vtime_us(r->start) +
                      ", before mgr.continue at " +
                      obs::vtime_us(cont->start));
      }
      if (r->parent != cont->id) {
        bad.push_back(r->who +
                      ": agent.resume not parented under mgr.continue");
      }
    }

    // ---- recv₁ ≥ acked₂ on both ends of every restored connection.
    struct Restored {
      std::string local, remote, who;
      u64 recv = 0, acked = 0;
    };
    std::vector<Restored> restored;
    for (const auto* r : t.records) {
      if (r->kind != obs::SpanKind::EVENT ||
          !starts_with(r->name, "net.sock.restored")) {
        continue;
      }
      restored.push_back(Restored{field(r->name, "local"),
                                  field(r->name, "remote"), r->who,
                                  field_u64(r->name, "recv"),
                                  field_u64(r->name, "acked")});
    }
    for (const auto& a : restored) {
      for (const auto& b : restored) {
        if (a.local != b.remote || a.remote != b.local) continue;
        if (a.recv < b.acked) {
          bad.push_back(a.local + " restored recv=" +
                        std::to_string(a.recv) + " < peer acked=" +
                        std::to_string(b.acked) +
                        " (acknowledged data would be lost)");
        }
      }
    }
    for (std::string& m : bad) out.push_back(Violation{t.op, std::move(m)});
  }
  return out;
}

std::vector<std::string> validate_ops(
    const std::vector<obs::SpanRecord>& spans, const ValidateOptions& opts) {
  std::vector<std::string> out;
  for (const Violation& v : validate_ops_detailed(spans, opts)) {
    out.push_back("op " + std::to_string(v.op) + ": " + v.message);
  }
  return out;
}

obs::Json violation_to_json(const Violation& v, const std::string& file) {
  obs::Json j = obs::Json::object();
  j["file"] = file;
  j["op"] = v.op;
  j["message"] = v.message;
  return j;
}

}  // namespace zapc::tools
