// Offline analysis of zapc.obs.v1 / zapc.obs.postmortem.v1 documents.
//
// The library behind the zapc-trace CLI: loads the span stream out of a
// bench evidence file or a flight-recorder postmortem, groups it into
// per-operation causal trees (every coordinated checkpoint/restart
// carries an op id), renders an ASCII timeline, and re-checks the
// protocol invariants the paper's design depends on — after the fact,
// from the recorded evidence alone:
//
//   * exactly one Manager 'continue' (the single barrier) per
//     coordinated checkpoint;
//   * network-state checkpoint before standalone checkpoint (the
//     NETWORK_FIRST ordering of Figure 2; relaxable for the ablation);
//   * no agent resumes its pod before the Manager's continue decision,
//     and the resume is causally parented under it;
//   * recv₁ ≥ acked₂ across both ends of every restored connection
//     (paper §5: data acknowledged by one side must have been received
//     by the other, or restart would lose it);
//   * every aborted operation carries an 'op.fail' postmortem marker
//     (the failure was recorded, not silently dropped);
//   * no op-tagged span is left open at end-of-trace (relaxable for
//     flight-recorder postmortems, which snapshot mid-failure).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"
#include "util/status.h"

namespace zapc::tools {

/// One loaded evidence document: a zapc.obs.v1 bench export or a
/// zapc.obs.postmortem.v1 flight-recorder dump.
struct TraceDoc {
  std::string path;
  std::string schema;
  std::string name;  // bench name, or "<kind> op=<n> phase=<p>"
  std::vector<obs::SpanRecord> spans;
};

/// Reads and parses one document.  Err::PROTO on malformed JSON or an
/// unknown schema; Err::IO when the file cannot be read.
Result<TraceDoc> load_trace_doc(const std::string& path);

/// The records of one coordinated operation, in stream order.
struct OpTrace {
  obs::OpId op = 0;
  std::vector<const obs::SpanRecord*> records;
};

/// Groups records by op id, ascending; op-less records are dropped.
/// Pointers alias `spans`, which must outlive the result.
std::vector<OpTrace> group_by_op(const std::vector<obs::SpanRecord>& spans);

/// ASCII causal timeline of one operation: an indented parent/child
/// tree with time bars scaled to the op's extent.
std::string render_op_timeline(const OpTrace& op);

/// Same, but rows whose span id is in `critical` get a `*` prefix —
/// zapc-trace --critpath feeds it the work-segment span ids from
/// obs::attribute_op, so the timeline shows which phases actually
/// determined the downtime.
std::string render_op_timeline(const OpTrace& op,
                               const std::set<obs::SpanId>& critical);

struct ValidateOptions {
  /// Accept the NETWORK_LAST ablation ordering (standalone before
  /// network checkpoint) instead of flagging it.
  bool allow_network_last = false;
  /// Accept spans still open at end-of-trace.  A flight-recorder
  /// postmortem is a snapshot taken mid-failure, so its in-flight spans
  /// are legitimately open; a completed run's evidence must close every
  /// span it tags with an op.
  bool allow_open_spans = false;
};

/// One invariant violation, attributed to its coordinated operation.
struct Violation {
  obs::OpId op = 0;
  std::string message;
};

/// Runs every offline invariant check over the stream (empty means the
/// evidence is consistent).
std::vector<Violation> validate_ops_detailed(
    const std::vector<obs::SpanRecord>& spans,
    const ValidateOptions& opts = {});

/// Same checks as human-readable "op N: <message>" strings.
std::vector<std::string> validate_ops(
    const std::vector<obs::SpanRecord>& spans,
    const ValidateOptions& opts = {});

/// The zapc-trace --json line format: one compact object per violation,
/// `{"file": ..., "op": N, "message": ...}`.
obs::Json violation_to_json(const Violation& v, const std::string& file);

}  // namespace zapc::tools
