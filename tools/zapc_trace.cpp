// zapc-trace: offline analyzer for ZapC trace evidence.
//
//   zapc-trace FILE...                render per-op ASCII causal timelines
//   zapc-trace --critpath FILE...     same, critical-path spans marked `*`
//                                     with a per-op attribution summary
//   zapc-trace --validate FILE...     re-check protocol invariants offline
//   zapc-trace --validate --json ...  one JSON violation object per line
//
// Accepts bench evidence (zapc.obs.v1, bench_results/*.json) and
// flight-recorder postmortems (zapc.obs.postmortem.v1).  Exit codes:
// 0 = clean, 1 = invariant violation, 2 = unreadable/malformed input.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "obs/critpath.h"
#include "obs/json.h"
#include "obs/vtime.h"
#include "tools/trace_analysis.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: zapc-trace [--validate [--json] | --critpath] "
               "[--allow-network-last] [--allow-open-spans] file.json...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  bool json = false;
  bool critpath = false;
  zapc::tools::ValidateOptions opts;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--critpath") {
      critpath = true;
    } else if (arg == "--allow-network-last") {
      opts.allow_network_last = true;
    } else if (arg == "--allow-open-spans") {
      opts.allow_open_spans = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();
  if (json && !validate) return usage();
  if (critpath && validate) return usage();

  int rc = 0;
  for (const std::string& f : files) {
    auto doc = zapc::tools::load_trace_doc(f);
    if (!doc) {
      std::fprintf(stderr, "zapc-trace: %s\n",
                   doc.status().to_string().c_str());
      return 2;
    }
    auto ops = zapc::tools::group_by_op(doc.value().spans);

    if (!validate) {
      std::printf("%s  (%s: %s, %zu op-tagged records in %zu ops)\n",
                  f.c_str(), doc.value().schema.c_str(),
                  doc.value().name.c_str(), doc.value().spans.size(),
                  ops.size());
      for (const auto& op : ops) {
        if (!critpath) {
          std::printf("%s", zapc::tools::render_op_timeline(op).c_str());
          continue;
        }
        auto attrib = zapc::obs::attribute_op(op.records);
        if (!attrib) {
          std::printf("%s", zapc::tools::render_op_timeline(op).c_str());
          std::printf("  (no critical path: %s)\n",
                      attrib.status().to_string().c_str());
          continue;
        }
        const auto& a = attrib.value();
        std::set<zapc::obs::SpanId> marks;
        for (const auto& seg : a.segments) {
          if (!seg.edge && seg.span != 0) marks.insert(seg.span);
        }
        std::printf("%s",
                    zapc::tools::render_op_timeline(op, marks).c_str());
        std::printf("  * critical path: downtime %s, pod %s, phase %s "
                    "(%s)\n",
                    zapc::obs::vtime_us(a.downtime_us).c_str(),
                    a.critical_pod.empty() ? "-" : a.critical_pod.c_str(),
                    a.critical_phase.empty() ? "-"
                                             : a.critical_phase.c_str(),
                    zapc::obs::vtime_us(a.critical_phase_us).c_str());
      }
      continue;
    }

    // A postmortem snapshots mid-failure, so its in-flight spans are
    // legitimately open; only explicit evidence exports must close all.
    zapc::tools::ValidateOptions file_opts = opts;
    if (doc.value().schema == zapc::obs::kPostmortemSchemaVersion) {
      file_opts.allow_open_spans = true;
    }
    auto bad = zapc::tools::validate_ops_detailed(doc.value().spans,
                                                  file_opts);
    if (json) {
      // Machine-readable mode: one compact violation object per line,
      // nothing else on stdout (clean files emit no lines at all).
      if (!bad.empty()) rc = 1;
      for (const auto& v : bad) {
        std::printf("%s\n",
                    zapc::tools::violation_to_json(v, f).dump().c_str());
      }
    } else if (bad.empty()) {
      std::printf("OK %s (%zu ops)\n", f.c_str(), ops.size());
    } else {
      rc = 1;
      for (const auto& v : bad) {
        std::printf("FAIL %s: op %llu: %s\n", f.c_str(),
                    static_cast<unsigned long long>(v.op),
                    v.message.c_str());
      }
    }
  }
  return rc;
}
