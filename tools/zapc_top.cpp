// zapc-top: live per-pod view of a coordinated operation.
//
// Reference client of the Manager's status endpoint (DESIGN.md §9).
// The tool builds a simulated testbed in-process, optionally injects a
// SLOW_NODE fault, runs a coordinated checkpoint with the introspection
// plane on, and — from a separate console node, over the wire — polls
// the endpoint with HEALTH_QUERY, rendering each zapc.obs.health.v1
// reply as a refreshing per-pod table: phase, %done, throughput, lag
// vs. the cluster median, heartbeat age.  That is the operator view of
// "which pod is dragging the barrier right now".
//
//   zapc-top                  # watch a checkpoint with one slow node
//   zapc-top --snapshot       # print one mid-op JSON document (scripting)
//   zapc-top --check          # exit 0 iff the straggler is the slow node
//
// Knobs: --nodes N, --slow NODE, --mult X (1 = no fault), --hb-ms N,
// --refresh-ms N, --no-ansi.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "fault/fault.h"
#include "obs/json.h"
#include "obs/vtime.h"

namespace {

using namespace zapc;

struct Options {
  int nodes = 4;
  std::string slow = "n2";
  double mult = 3.0;
  u64 hb_us = 10 * sim::kMillisecond;
  u64 refresh_us = 20 * sim::kMillisecond;
  bool snapshot = false;
  bool check = false;
  bool ansi = true;
};

constexpr u16 kStatusPort = 7070;

double num_at(const obs::Json& obj, const std::string& key) {
  const obs::Json* v = obj.find(key);
  return v != nullptr && v->is_num() ? v->num() : 0.0;
}

std::string str_at(const obs::Json& obj, const std::string& key) {
  const obs::Json* v = obj.find(key);
  return v != nullptr && v->is_str() ? v->str() : std::string();
}

/// One rendered frame of the table.
void render(const obs::Json& doc, bool ansi) {
  if (ansi) std::printf("\033[2J\033[H");
  u64 t = static_cast<u64>(num_at(doc, "t_us"));
  std::printf("zapc-top  t=%s  op=%llu kind=%s %s\n",
              obs::vtime_us(t).c_str(),
              static_cast<unsigned long long>(num_at(doc, "op_id")),
              str_at(doc, "kind").c_str(),
              doc.find("active") != nullptr && doc.find("active")->boolean()
                  ? "active"
                  : "finished");
  std::printf("%-10s %-18s %7s %9s %10s %10s %8s\n", "POD", "PHASE",
              "%DONE", "MB/s", "ETA", "LAG", "HB-AGE");
  const obs::Json* pods = doc.find("pods");
  if (pods == nullptr) return;
  for (const auto& [name, p] : pods->fields()) {
    double mbps = num_at(p, "throughput_bps") / (1 << 20);
    std::printf("%-10s %-18s %7.1f %9.1f %10s %10s %8s\n", name.c_str(),
                str_at(p, "phase").c_str(), num_at(p, "pct_done"), mbps,
                obs::vtime_us(static_cast<u64>(num_at(p, "eta_us"))).c_str(),
                obs::vtime_us(static_cast<u64>(num_at(p, "lag_us"))).c_str(),
                obs::vtime_us(
                    static_cast<u64>(num_at(p, "heartbeat_age_us")))
                    .c_str());
  }
  if (const obs::Json* s = doc.find("straggler"); s != nullptr) {
    std::printf("straggler: %s (%s, lag %s)\n", str_at(*s, "pod").c_str(),
                str_at(*s, "phase").c_str(),
                obs::vtime_us(static_cast<u64>(num_at(*s, "lag_us")))
                    .c_str());
  }
  std::fflush(stdout);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: zapc-top [--snapshot] [--check] [--nodes N] [--slow NODE]\n"
      "                [--mult X] [--hb-ms N] [--refresh-ms N] [--no-ansi]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--snapshot") {
      opt.snapshot = true;
    } else if (a == "--check") {
      opt.check = true;
    } else if (a == "--no-ansi") {
      opt.ansi = false;
    } else if (a == "--nodes") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.nodes = std::atoi(v);
    } else if (a == "--slow") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.slow = v;
    } else if (a == "--mult") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.mult = std::atof(v);
    } else if (a == "--hb-ms") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.hb_us = static_cast<u64>(std::atoi(v)) * sim::kMillisecond;
    } else if (a == "--refresh-ms") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.refresh_us = static_cast<u64>(std::atoi(v)) * sim::kMillisecond;
    } else {
      return usage();
    }
  }
  if (opt.nodes < 1 || opt.hb_us == 0 || opt.refresh_us == 0) return usage();
  // Snapshot/check are scripting modes: no table frames.
  bool live = !opt.snapshot && !opt.check;

  fault::injector().clear();
  bench::Testbed tb(opt.nodes);
  apps::JobHandle job = bench::launch_bt(tb, opt.nodes);
  tb.cl.run_for(200 * sim::kMillisecond);
  if (job.finished()) {
    std::fprintf(stderr, "zapc-top: job finished before checkpoint\n");
    return 1;
  }

  // Pod → hosting node, for the --check attribution assert.
  std::map<std::string, std::string> pod_node;
  {
    auto hosts = job.hosts();
    for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
      if (hosts[i] != nullptr) {
        pod_node[job.pod_names[i]] = hosts[i]->node().name();
      }
    }
  }

  if (opt.mult > 1.0) {
    fault::FaultSpec slow;
    slow.kind = fault::FaultKind::SLOW_NODE;
    slow.node = opt.slow;
    slow.multiplier = opt.mult;
    fault::injector().arm(slow);
  }

  tb.manager->serve_status(kStatusPort);

  // The console node: a separate machine polling the endpoint over the
  // simulated network, exactly as a real operator tool would.
  os::Node& console = tb.cl.add_node("console");
  auto ch = core::connect_channel(
      console.host_stack(), net::SockAddr{tb.mgr_node->addr(), kStatusPort});
  if (ch == nullptr) {
    std::fprintf(stderr, "zapc-top: cannot reach status endpoint\n");
    return 1;
  }
  obs::Json best;  // latest mid-op document with beacon data
  u32 frames = 0;
  ch->set_on_msg([&](Bytes msg) {
    auto m = core::decode_health_snapshot(msg);
    if (!m) return;
    auto doc = obs::json_parse(m.value().json);
    if (!doc) return;
    const obs::Json* active = doc.value().find("active");
    const obs::Json* pods = doc.value().find("pods");
    bool has_beacons = false;
    if (pods != nullptr) {
      for (const auto& [name, p] : pods->fields()) {
        (void)name;
        if (num_at(p, "beacons") > 0) has_beacons = true;
      }
    }
    if (active != nullptr && active->boolean() && has_beacons) {
      best = doc.value();
    }
    ++frames;
    if (live) render(doc.value(), opt.ansi);
  });

  bool done = false;
  core::Manager::CheckpointReport report;
  core::Manager::CkptOptions copts;
  copts.heartbeat_us = opt.hb_us;
  copts.warn_lag_us = 4 * opt.hb_us;
  tb.manager->checkpoint(job.san_targets(), core::CkptMode::SNAPSHOT,
                         [&](core::Manager::CheckpointReport r) {
                           report = std::move(r);
                           done = true;
                         },
                         copts);

  // Drive the sim, polling once per refresh tick (plus a few post-op
  // ticks so the final snapshot shows every pod done).
  int grace = 3;
  while (!done || grace-- > 0) {
    (void)ch->send(core::encode_health_query(core::HealthQuery{0}));
    tb.cl.run_for(opt.refresh_us);
    if (tb.cl.now() > 3600 * sim::kSecond) break;
  }
  fault::injector().clear();

  if (!done || !report.ok) {
    std::fprintf(stderr, "zapc-top: checkpoint failed: %s\n",
                 report.error.c_str());
    return 1;
  }
  if (frames == 0 || best.is_null()) {
    std::fprintf(stderr, "zapc-top: no mid-op snapshot captured\n");
    return 1;
  }

  if (opt.snapshot) {
    std::printf("%s\n", best.dump(2).c_str());
  }
  const obs::Json* s = best.find("straggler");
  std::string straggler_pod = s != nullptr ? str_at(*s, "pod") : "";
  u64 straggler_lag =
      s != nullptr ? static_cast<u64>(num_at(*s, "lag_us")) : 0;
  std::fprintf(stderr, "zapc-top: %u frames, straggler=%s lag=%s\n", frames,
               straggler_pod.empty() ? "none" : straggler_pod.c_str(),
               obs::vtime_us(straggler_lag).c_str());

  if (opt.check) {
    if (straggler_pod.empty() || straggler_lag == 0) {
      std::fprintf(stderr, "zapc-top: CHECK FAILED: no straggler named\n");
      return 1;
    }
    if (pod_node[straggler_pod] != opt.slow) {
      std::fprintf(stderr,
                   "zapc-top: CHECK FAILED: straggler %s on node %s, "
                   "expected the slow node %s\n",
                   straggler_pod.c_str(), pod_node[straggler_pod].c_str(),
                   opt.slow.c_str());
      return 1;
    }
    std::printf("zapc-top check: straggler %s on slow node %s, lag %s\n",
                straggler_pod.c_str(), opt.slow.c_str(),
                obs::vtime_us(straggler_lag).c_str());
  }
  return 0;
}
