// zapc-soak: seeded fault-injection soak of the coordinated protocol.
//
// For each seed this builds a fresh simulated cluster running a live
// echo application, arms a FaultPlan::random schedule (crash-at-phase,
// message drop/dup/stall, torn SAN writes, slow nodes) and drives a
// coordinated checkpoint with phase deadlines and whole-op retry
// enabled.  After the dust settles it asserts the invariants the
// failure-hardened protocol guarantees:
//
//   * the operation terminates within the configured deadlines (no op
//     hangs forever, whatever was injected);
//   * no half-written `<uri>.tmp` image is left on the SAN, and nothing
//     lands at a final image path unless a checkpoint committed;
//   * an aborted checkpoint is transparent: the application resumes and
//     completes with byte-exact verification;
//   * when a node died mid-operation, the last committed images still
//     restart the application on fresh nodes (checked whenever no
//     partial commit raced the abort past the barrier);
//   * the recorded span stream passes every zapc-trace --validate
//     invariant (single barrier, op.fail pairing, ordering, ...).
//
//   zapc-soak [--seeds N] [--start S] [--verbose]
//
// Exit 0 = every seed clean; 1 = at least one violated invariant.  The
// offending seeds are listed, and each replays deterministically: the
// same seed always produces the same fault schedule and event order.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/manager.h"
#include "core/trace.h"
#include "fault/fault.h"
#include "obs/flight.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"
#include "tools/trace_analysis.h"

// Restores re-create guest programs through the registry by kind.
ZAPC_REGISTER_PROGRAM(soak_echo_server, zapc::test::EchoServer)
ZAPC_REGISTER_PROGRAM(soak_echo_client, zapc::test::EchoClient)

namespace zapc {
namespace {

constexpr u32 kEchoBytes = 1 << 20;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

u64 counter_value(const std::string& name) {
  const auto snap = obs::metrics().snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Runs until the process exits or the virtual-time budget runs out.
/// Returns the exit code, or an out-of-band negative value.
i32 wait_exit(os::Cluster& cl, pod::Pod* pod, i32 pid, sim::Time budget) {
  if (pod == nullptr) return -100;
  for (sim::Time t = 0; t < budget; t += 10 * sim::kMillisecond) {
    cl.run_for(10 * sim::kMillisecond);
    os::Process* p = pod->find_process(pid);
    if (p != nullptr && p->state() == os::ProcState::EXITED) {
      return p->exit_code();
    }
  }
  return -101;
}

core::Manager::CkptOptions soak_ckpt_options(bool incremental) {
  core::Manager::CkptOptions opts;
  opts.incremental = incremental;
  opts.deadlines.connect_us = 2 * sim::kSecond;
  opts.deadlines.meta_us = 5 * sim::kSecond;
  opts.deadlines.done_us = 5 * sim::kSecond;
  opts.deadlines.agent_barrier_us = 5 * sim::kSecond;
  opts.retry.max_retries = 2;
  opts.retry.backoff_us = 200 * sim::kMillisecond;
  return opts;
}

struct CkptOutcome {
  bool completed = false;  // the done callback ran at all
  core::Manager::CheckpointReport report;
};

CkptOutcome run_checkpoint(os::Cluster& cl, core::Manager& manager,
                           const std::vector<core::Manager::Target>& targets,
                           const core::Manager::CkptOptions& opts) {
  CkptOutcome out;
  manager.checkpoint(targets, core::CkptMode::SNAPSHOT,
                     [&](core::Manager::CheckpointReport r) {
                       out.report = std::move(r);
                       out.completed = true;
                     },
                     opts);
  for (int i = 0; i < 40000 && !out.completed; ++i) {
    cl.run_for(sim::kMillisecond);
  }
  return out;
}

/// One seeded schedule; returns the list of violated invariants.
std::vector<std::string> run_seed(u64 seed, bool verbose) {
  std::vector<std::string> bad;
  fault::injector().clear();

  os::Cluster cl;
  core::Trace trace;
  os::Node& mgr_node = cl.add_node("mgr");
  std::vector<os::Node*> nodes;
  std::vector<std::unique_ptr<core::Agent>> agents;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(&cl.add_node("n" + std::to_string(i + 1)));
    agents.push_back(std::make_unique<core::Agent>(
        *nodes.back(), core::Agent::kDefaultPort, core::CostModel{}, &trace));
  }
  core::Manager manager(mgr_node, &trace);
  // Every op attempt must leave exactly one ledger line — asserted below.
  obs::Ledger ledger;
  manager.set_ledger(&ledger);
  const u64 attrib_failures_before =
      counter_value("mgr.ledger.attrib_failures");

  pod::Pod& sp = agents[0]->create_pod(vip(1), "server-pod");
  (void)sp.spawn(std::make_unique<test::EchoServer>(5000));
  pod::Pod& cp = agents[1]->create_pod(vip(2), "client-pod");
  i32 client_pid = cp.spawn(std::make_unique<test::EchoClient>(
      net::SockAddr{vip(1), 5000}, kEchoBytes));
  cl.run_for(20 * sim::kMillisecond);

  const std::vector<core::Manager::Target> targets = {
      {agents[0]->addr(), "server-pod", "san://ckpt/server"},
      {agents[1]->addr(), "client-pod", "san://ckpt/client"},
  };

  // Every fourth seed first commits a clean baseline, then injects into
  // an *incremental* checkpoint on top of it: the aborted-delta and
  // last-good-image invariants only bite when there is a prior image.
  const bool with_baseline = seed % 4 == 0;
  if (with_baseline) {
    CkptOutcome base =
        run_checkpoint(cl, manager, targets, soak_ckpt_options(false));
    if (!base.completed || !base.report.ok) {
      bad.push_back("baseline checkpoint failed with no faults armed: " +
                    base.report.error);
      return bad;
    }
  }

  fault::FaultPlan plan = fault::FaultPlan::random(
      seed, {{nodes[0]->name(), nodes[0]->addr().v},
             {nodes[1]->name(), nodes[1]->addr().v}});
  plan.arm();
  if (verbose) {
    std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                plan.describe().c_str());
  }

  const u64 committed_before = counter_value("ckpt.commit.committed");
  CkptOutcome cr =
      run_checkpoint(cl, manager, targets, soak_ckpt_options(with_baseline));
  if (!cr.completed) {
    bad.push_back("checkpoint neither finished nor aborted within 40s "
                  "virtual (deadline leak); plan: " + plan.describe());
  }
  fault::injector().clear();
  // Long enough for any in-flight abort, stalled frame (<= 2s) or agent
  // barrier watchdog (5s) to run its course.
  cl.run_for(6 * sim::kSecond);
  const u64 committed_delta =
      counter_value("ckpt.commit.committed") - committed_before;

  // ---- Storage invariants: no torn/orphan temp, no final image unless
  // some checkpoint actually committed.
  for (const std::string& path : cl.san().list("")) {
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".tmp") == 0) {
      bad.push_back("orphan temp image on SAN: " + path);
    }
  }
  if (!with_baseline && committed_delta == 0 &&
      !cl.san().list("ckpt/").empty()) {
    bad.push_back("final image present although nothing committed");
  }

  const bool crashed = nodes[0]->failed() || nodes[1]->failed();

  if (!crashed) {
    // Surviving cluster: whatever happened to the checkpoint, the
    // application must be unharmed and verify every echoed byte.
    if (cr.completed) {
      i32 ec = wait_exit(cl, agents[1]->find_pod("client-pod"), client_pid,
                         240 * sim::kSecond);
      if (ec != 0) {
        bad.push_back("application did not survive the faulty checkpoint "
                      "(client exit " + std::to_string(ec) + ", checkpoint " +
                      (cr.report.ok ? "ok" : "aborted") + ")");
      }
    }
  } else {
    // A node died.  Any surviving pod must have been resumed, not left
    // suspended behind the aborted barrier.
    const char* pod_names[] = {"server-pod", "client-pod"};
    for (int i = 0; i < 2; ++i) {
      if (nodes[i]->failed()) continue;
      pod::Pod* p = agents[i]->find_pod(pod_names[i]);
      if (p != nullptr && p->suspended()) {
        bad.push_back(std::string(pod_names[i]) +
                      " left suspended after the abort");
      }
    }
    // The last *committed* checkpoint must restart elsewhere.  Skipped
    // when an abort raced a partial commit past the barrier (some agents
    // committed, some did not: the SAN then mixes epochs by design) or
    // when the op never terminated (already reported above).
    const bool have_images = cl.san().exists("ckpt/server") &&
                             cl.san().exists("ckpt/client");
    const bool consistent = cr.report.ok || committed_delta == 0;
    if (cr.completed && have_images && consistent) {
      (void)agents[0]->destroy_pod("server-pod");
      (void)agents[1]->destroy_pod("client-pod");
      cl.run_for(100 * sim::kMillisecond);

      core::Manager::RestartOptions ropts;
      ropts.deadlines.connect_us = 2 * sim::kSecond;
      ropts.deadlines.restart_us = 10 * sim::kSecond;
      ropts.retry.max_retries = 2;
      ropts.retry.backoff_us = 200 * sim::kMillisecond;
      bool rdone = false;
      core::Manager::RestartReport rr;
      manager.restart(
          {
              {agents[2]->addr(), "server-pod", "san://ckpt/server"},
              {agents[3]->addr(), "client-pod", "san://ckpt/client"},
          },
          {},
          [&](core::Manager::RestartReport r) {
            rr = std::move(r);
            rdone = true;
          },
          ropts);
      for (int i = 0; i < 40000 && !rdone; ++i) cl.run_for(sim::kMillisecond);
      if (!rdone) {
        bad.push_back("restart from committed images never completed");
      } else if (!rr.ok) {
        bad.push_back("restart from last committed images failed: " +
                      rr.error);
      } else {
        i32 ec = wait_exit(cl, agents[3]->find_pod("client-pod"), client_pid,
                           240 * sim::kSecond);
        if (ec != 0) {
          bad.push_back("restored application failed verification (client "
                        "exit " + std::to_string(ec) + ")");
        }
      }
    }
  }

  // ---- Ledger invariants (DESIGN.md §10): every op attempt that opened
  // a Manager root span left exactly one ledger line (retries mint fresh
  // op ids, so each attempt is its own row), attribution never failed,
  // and each attributed critical path sums to its downtime within 1%.
  if (cr.completed) {
    std::map<obs::OpId, int> roots;
    for (const auto& s : trace.recorder().spans()) {
      if (s.kind == obs::SpanKind::SPAN && s.op != 0 &&
          (s.name == "mgr.ckpt" || s.name == "mgr.restart")) {
        ++roots[s.op];
      }
    }
    std::map<obs::OpId, int> lines;
    for (const auto& e : ledger.entries()) ++lines[e.op];
    for (const auto& [op, n] : roots) {
      auto it = lines.find(op);
      if (it == lines.end()) {
        bad.push_back("ledger: no line for op " + std::to_string(op));
      } else if (it->second != 1) {
        bad.push_back("ledger: op " + std::to_string(op) + " has " +
                      std::to_string(it->second) + " lines, expected 1");
      }
    }
    for (const auto& [op, n] : lines) {
      if (roots.count(op) == 0) {
        bad.push_back("ledger: line for op " + std::to_string(op) +
                      " which has no Manager root span");
      }
    }
    if (counter_value("mgr.ledger.attrib_failures") !=
        attrib_failures_before) {
      bad.push_back("ledger: critical-path attribution failed");
    }
    for (const auto& e : ledger.entries()) {
      if (!e.has_attrib || e.attrib.downtime_us == 0) continue;
      u64 sum = 0;
      for (const auto& seg : e.attrib.segments) sum += seg.duration();
      const u64 diff = sum > e.attrib.downtime_us
                           ? sum - e.attrib.downtime_us
                           : e.attrib.downtime_us - sum;
      if (diff * 100 > e.attrib.downtime_us) {
        bad.push_back("ledger: op " + std::to_string(e.op) +
                      " segments sum to " + std::to_string(sum) +
                      "us, downtime " +
                      std::to_string(e.attrib.downtime_us) + "us");
      }
    }
  }

  // ---- Offline evidence invariants, same checks as zapc-trace
  // --validate.  A dead agent legitimately leaves its spans open.
  tools::ValidateOptions vopts;
  vopts.allow_open_spans = crashed;
  for (const std::string& v :
       tools::validate_ops(trace.recorder().spans(), vopts)) {
    bad.push_back("trace: " + v);
  }

  fault::injector().clear();
  return bad;
}

}  // namespace
}  // namespace zapc

int main(int argc, char** argv) {
  zapc::u64 nseeds = 200;
  zapc::u64 start = 1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      nseeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--start" && i + 1 < argc) {
      start = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: zapc-soak [--seeds N] [--start S] [--verbose]\n");
      return 2;
    }
  }

  // Postmortems from injected failures land out of the way (the soak
  // itself only consults the in-memory span stream).
  zapc::obs::flight().set_dir("zapc-soak-postmortems");

  zapc::u64 failures = 0;
  std::vector<zapc::u64> bad_seeds;
  for (zapc::u64 seed = start; seed < start + nseeds; ++seed) {
    auto problems = zapc::run_seed(seed, verbose);
    if (problems.empty()) continue;
    ++failures;
    bad_seeds.push_back(seed);
    for (const auto& p : problems) {
      std::printf("FAIL seed %llu: %s\n",
                  static_cast<unsigned long long>(seed), p.c_str());
    }
  }

  if (failures == 0) {
    std::printf("zapc-soak: %llu seeds clean (%llu..%llu)\n",
                static_cast<unsigned long long>(nseeds),
                static_cast<unsigned long long>(start),
                static_cast<unsigned long long>(start + nseeds - 1));
    return 0;
  }
  std::printf("zapc-soak: %llu of %llu seeds violated invariants:",
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(nseeds));
  for (zapc::u64 s : bad_seeds) {
    std::printf(" %llu", static_cast<unsigned long long>(s));
  }
  std::printf("\n");
  return 1;
}
