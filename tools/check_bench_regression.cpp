// check_bench_regression: diff two bench_results directories.
//
//   check_bench_regression BASELINE_DIR CURRENT_DIR [THRESHOLD_PCT]
//                          [--max-increase KEYSUBSTR PCT]...
//
// The simulation is deterministic in virtual time, so every numeric
// value in the evidence JSON (counters, histogram sums, bench rows) is
// reproducible; a relative drift beyond THRESHOLD_PCT (default 10%) on
// any shared file is a regression.  Files present only on one side are
// reported but fatal only when the baseline file disappeared.
//
// --max-increase adds a one-sided bound on top of the symmetric check:
// any numeric leaf whose JSON path contains KEYSUBSTR may shrink freely
// but must not grow more than PCT over the baseline (e.g.
// `--max-increase avg_image_mb 1` pins full-checkpoint image sizes).
// Exit codes: 0 = within threshold, 1 = regression, 2 = bad invocation.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace fs = std::filesystem;
using zapc::obs::Json;

namespace {

bool load(const fs::path& p, Json& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = zapc::obs::json_parse(buf.str());
  if (!parsed) return false;
  out = std::move(parsed).value();
  return true;
}

void diff(const Json& base, const Json& cur, const std::string& path,
          double threshold, std::vector<std::string>& out) {
  if (base.type() != cur.type()) {
    out.push_back(path + ": type changed");
    return;
  }
  switch (base.type()) {
    case Json::Type::NUM: {
      double a = base.num(), b = cur.num();
      double denom = std::max(std::abs(a), 1.0);
      if (std::abs(a - b) / denom > threshold) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), ": %.6g -> %.6g (%.1f%% drift)", a,
                      b, std::abs(a - b) / denom * 100.0);
        out.push_back(path + buf);
      }
      break;
    }
    case Json::Type::STR:
      if (base.str() != cur.str()) out.push_back(path + ": string changed");
      break;
    case Json::Type::BOOL:
      if (base.boolean() != cur.boolean()) {
        out.push_back(path + ": bool changed");
      }
      break;
    case Json::Type::ARR: {
      if (base.size() != cur.size()) {
        out.push_back(path + ": length " + std::to_string(base.size()) +
                      " -> " + std::to_string(cur.size()));
        return;
      }
      for (std::size_t i = 0; i < base.items().size(); ++i) {
        diff(base.items()[i], cur.items()[i],
             path + "[" + std::to_string(i) + "]", threshold, out);
      }
      break;
    }
    case Json::Type::OBJ: {
      for (const auto& [key, bval] : base.fields()) {
        const Json* cval = cur.find(key);
        if (cval == nullptr) {
          out.push_back(path + "." + key + ": missing in current");
          continue;
        }
        diff(bval, *cval, path + "." + key, threshold, out);
      }
      break;
    }
    case Json::Type::NUL:
      break;
  }
}

/// One-sided bound: numeric leaves whose path contains `key` must not
/// grow more than `max_pct` over the baseline.
struct IncreaseBound {
  std::string key;
  double max_frac = 0;
};

void check_increase(const Json& base, const Json& cur,
                    const std::string& path,
                    const std::vector<IncreaseBound>& bounds,
                    std::vector<std::string>& out) {
  if (base.type() != cur.type()) return;  // symmetric diff reports this
  switch (base.type()) {
    case Json::Type::NUM: {
      for (const IncreaseBound& b : bounds) {
        if (path.find(b.key) == std::string::npos) continue;
        double a = base.num(), c = cur.num();
        double denom = std::max(std::abs(a), 1.0);
        if (c - a > denom * b.max_frac) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        ": %.6g -> %.6g (+%.2f%% exceeds +%.2f%% cap)", a, c,
                        (c - a) / denom * 100.0, b.max_frac * 100.0);
          out.push_back(path + buf);
        }
      }
      break;
    }
    case Json::Type::ARR: {
      std::size_t n = std::min(base.size(), cur.size());
      for (std::size_t i = 0; i < n; ++i) {
        check_increase(base.items()[i], cur.items()[i],
                       path + "[" + std::to_string(i) + "]", bounds, out);
      }
      break;
    }
    case Json::Type::OBJ: {
      for (const auto& [key, bval] : base.fields()) {
        const Json* cval = cur.find(key);
        if (cval != nullptr) {
          check_increase(bval, *cval, path + "." + key, bounds, out);
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<IncreaseBound> bounds;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--max-increase") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "--max-increase needs KEYSUBSTR and PCT\n");
        return 2;
      }
      bounds.push_back(
          IncreaseBound{argv[i + 1], std::atof(argv[i + 2]) / 100.0});
      i += 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2 || positional.size() > 3) {
    std::fprintf(stderr,
                 "usage: check_bench_regression BASELINE_DIR CURRENT_DIR "
                 "[THRESHOLD_PCT] [--max-increase KEYSUBSTR PCT]...\n");
    return 2;
  }
  fs::path baseline = positional[0], current = positional[1];
  double threshold =
      positional.size() == 3 ? std::atof(positional[2].c_str()) / 100.0 : 0.10;
  if (!fs::is_directory(baseline) || !fs::is_directory(current)) {
    std::fprintf(stderr, "check_bench_regression: not a directory\n");
    return 2;
  }

  std::vector<std::string> problems;
  std::size_t compared = 0;
  for (const auto& entry : fs::directory_iterator(baseline)) {
    if (entry.path().extension() != ".json") continue;
    fs::path other = current / entry.path().filename();
    std::string name = entry.path().filename().string();
    if (!fs::exists(other)) {
      problems.push_back(name + ": missing from current results");
      continue;
    }
    Json a, b;
    if (!load(entry.path(), a) || !load(other, b)) {
      problems.push_back(name + ": unreadable or malformed JSON");
      continue;
    }
    // Spans shift freely as instrumentation evolves; the perf signal
    // lives in the metrics and bench rows.
    std::size_t before = problems.size();
    if (const Json* am = a.find("metrics")) {
      const Json* bm = b.find("metrics");
      if (bm != nullptr) {
        diff(*am, *bm, name + ":metrics", threshold, problems);
      } else {
        problems.push_back(name + ": metrics section missing");
      }
    }
    if (const Json* ar = a.find("rows")) {
      const Json* br = b.find("rows");
      if (br != nullptr) {
        diff(*ar, *br, name + ":rows", threshold, problems);
      } else {
        problems.push_back(name + ": rows section missing");
      }
    }
    if (!bounds.empty()) {
      check_increase(a, b, name, bounds, problems);
    }
    ++compared;
    if (problems.size() == before) {
      std::printf("OK %s\n", name.c_str());
    }
  }

  for (const auto& p : problems) std::printf("REGRESSION %s\n", p.c_str());
  std::printf("%zu file(s) compared, %zu problem(s), threshold %.0f%%\n",
              compared, problems.size(), threshold * 100.0);
  return problems.empty() ? 0 : 1;
}
