// zapc-report: offline downtime attribution and run-ledger reporting.
//
// The post-hoc complement of zapc-top (DESIGN.md §10): where zapc-top
// answers "which pod is dragging the barrier right now", zapc-report
// answers "which pod, phase, or message edge actually determined each
// op's downtime — and is that drifting across runs".  It reads the
// Manager's append-only op ledger (*.ledger.jsonl, zapc.obs.ledger.v1),
// plain span evidence (*.json, zapc.obs.v1 / postmortem — attribution is
// recomputed from the span tree), or whole directories of either.
//
//   zapc-report bench_results/               # per-op tables + aggregates
//   zapc-report run.ledger.jsonl             # one run's ledger
//   zapc-report --check bench_results/       # CI integrity gate: every op
//                                            # attributes, segments sum to
//                                            # the downtime within 1%
//   zapc-report --compare old/ new/          # run-over-run drift
//   zapc-report --check --compare old/ new/  # fail when p95 downtime
//                                            # regressed > --max-increase %
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "obs/critpath.h"
#include "obs/ledger.h"
#include "obs/vtime.h"
#include "tools/trace_analysis.h"

namespace {

namespace fs = std::filesystem;
using namespace zapc;

struct Options {
  std::vector<std::string> paths;
  bool check = false;
  bool compare = false;
  bool per_op = true;
  double max_increase = 10.0;  // --check --compare: % p95 regression cap
};

/// Everything in one run set, normalized to ledger entries (evidence
/// docs become synthetic entries carrying a freshly computed
/// attribution).
struct RunSet {
  std::vector<obs::LedgerEntry> ops;
  int files = 0;
  int skipped_torn = 0;
  int attrib_failures = 0;
  std::vector<std::string> errors;  // per-file problems (--check fails)
};

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

void load_ledger_file(const std::string& path, RunSet& out) {
  auto r = obs::Ledger::load(path);
  if (!r.is_ok()) {
    out.errors.push_back(path + ": " + r.status().to_string());
    return;
  }
  out.files++;
  out.skipped_torn += r.value().skipped_torn;
  for (auto& e : r.value().entries) out.ops.push_back(std::move(e));
}

void load_evidence_file(const std::string& path, RunSet& out,
                        bool lenient) {
  auto doc = tools::load_trace_doc(path);
  if (!doc.is_ok()) {
    // Directory scans hit non-trace JSON (schema-less rows etc.); only
    // an explicitly named file is worth failing over.
    if (!lenient) {
      out.errors.push_back(path + ": " + doc.status().to_string());
    }
    return;
  }
  out.files++;
  for (const tools::OpTrace& op : tools::group_by_op(doc.value().spans)) {
    auto a = obs::attribute_op(op.records);
    if (!a.is_ok()) {
      out.attrib_failures++;
      out.errors.push_back(path + ": op " + std::to_string(op.op) +
                           ": attribution failed: " +
                           a.status().to_string());
      continue;
    }
    obs::LedgerEntry e;
    e.op = a.value().op;
    e.kind = a.value().kind;
    e.outcome = "ok";  // completed evidence; failures live in postmortems
    e.start_us = a.value().start;
    e.end_us = a.value().end;
    e.downtime_us = a.value().downtime_us;
    e.attrib = std::move(a).value();
    e.has_attrib = true;
    out.ops.push_back(std::move(e));
  }
}

void load_path(const std::string& path, RunSet& out) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& ent : fs::directory_iterator(path, ec)) {
      files.push_back(ent.path().string());
    }
    std::sort(files.begin(), files.end());
    for (const std::string& f : files) {
      if (ends_with(f, ".jsonl")) {
        load_ledger_file(f, out);
      } else if (ends_with(f, ".json")) {
        load_evidence_file(f, out, /*lenient=*/true);
      }
    }
    return;
  }
  if (ends_with(path, ".jsonl")) {
    load_ledger_file(path, out);
  } else {
    load_evidence_file(path, out, /*lenient=*/false);
  }
}

u64 percentile(std::vector<u64> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Critical-path time per phase for one entry; with no attribution the
/// agent-reported per-phase durations stand in.
std::map<std::string, obs::Time> entry_phases(const obs::LedgerEntry& e) {
  if (e.has_attrib) return e.attrib.phase_totals();
  std::map<std::string, obs::Time> out;
  for (const auto& [name, us] : e.phase_us) out[name] = us;
  return out;
}

struct Aggregate {
  std::map<std::string, std::vector<u64>> downtime;  // kind → samples
  std::map<std::string, std::map<std::string, std::vector<u64>>>
      phases;                                 // kind → phase → samples
  std::map<std::string, int> critical_pods;   // pod → times critical
  int ok = 0;
  int aborted = 0;
};

Aggregate aggregate(const RunSet& rs) {
  Aggregate a;
  for (const obs::LedgerEntry& e : rs.ops) {
    if (e.outcome == "aborted") {
      a.aborted++;
    } else {
      a.ok++;
    }
    a.downtime[e.kind].push_back(e.downtime_us);
    for (const auto& [phase, us] : entry_phases(e)) {
      a.phases[e.kind][phase].push_back(us);
    }
    std::string pod =
        e.has_attrib ? e.attrib.critical_pod : e.straggler_pod;
    if (!pod.empty()) a.critical_pods[pod]++;
  }
  return a;
}

void print_op(const obs::LedgerEntry& e) {
  std::printf("op %llu %-7s %-7s downtime %-10s attempt %u",
              static_cast<unsigned long long>(e.op), e.kind.c_str(),
              e.outcome.c_str(), obs::vtime_us(e.downtime_us).c_str(),
              e.attempt == 0 ? 1 : e.attempt);
  if (!e.error.empty()) std::printf("  error=%s", e.error.c_str());
  std::printf("\n");
  if (!e.straggler_pod.empty()) {
    std::printf("  straggler: %s (%s, lag %s)\n", e.straggler_pod.c_str(),
                e.straggler_phase.c_str(),
                obs::vtime_us(e.straggler_lag_us).c_str());
  }
  if (!e.has_attrib) {
    if (!e.phase_us.empty()) {
      std::printf("  slowest-pod phases:");
      for (const auto& [name, us] : e.phase_us) {
        std::printf(" %s=%s", name.c_str(), obs::vtime_us(us).c_str());
      }
      std::printf("\n");
    }
    return;
  }
  const obs::OpAttribution& a = e.attrib;
  std::printf("  critical path (%s -> %s, %s total):\n",
              obs::vtime_us(a.start).c_str(), obs::vtime_us(a.end).c_str(),
              obs::vtime_us(a.downtime_us).c_str());
  for (const obs::CritSegment& s : a.segments) {
    double pct = a.downtime_us > 0
                     ? 100.0 * static_cast<double>(s.duration()) /
                           static_cast<double>(a.downtime_us)
                     : 0.0;
    std::printf("    %10s %5.1f%%  %-10s %-12s %s\n",
                obs::vtime_us(s.duration()).c_str(), pct,
                s.who.c_str(), s.pod.empty() ? "-" : s.pod.c_str(),
                s.phase.c_str());
  }
  if (!a.critical_pod.empty()) {
    std::printf("  critical pod: %s (%s on path), phase %s (%s)\n",
                a.critical_pod.c_str(),
                obs::vtime_us(a.pod_critical_us(a.critical_pod)).c_str(),
                a.critical_phase.c_str(),
                obs::vtime_us(a.critical_phase_us).c_str());
  }
  if (!a.slack.empty()) {
    std::printf("  slack:");
    for (const obs::PodSlack& s : a.slack) {
      std::printf(" %s=+%s", s.pod.c_str(),
                  obs::vtime_us(s.slack_us).c_str());
    }
    std::printf("\n");
  }
}

void print_aggregate(const Aggregate& a) {
  std::printf("\n== aggregates: %d ok, %d aborted ==\n", a.ok, a.aborted);
  for (const auto& [kind, samples] : a.downtime) {
    std::printf("%-8s ops %-4zu downtime p50 %-10s p95 %-10s\n",
                kind.c_str(), samples.size(),
                obs::vtime_us(percentile(samples, 0.5)).c_str(),
                obs::vtime_us(percentile(samples, 0.95)).c_str());
    auto pit = a.phases.find(kind);
    if (pit == a.phases.end()) continue;
    for (const auto& [phase, ps] : pit->second) {
      std::printf("  %-22s p50 %-10s p95 %-10s\n", phase.c_str(),
                  obs::vtime_us(percentile(ps, 0.5)).c_str(),
                  obs::vtime_us(percentile(ps, 0.95)).c_str());
    }
  }
  if (!a.critical_pods.empty()) {
    std::vector<std::pair<int, std::string>> top;
    for (const auto& [pod, n] : a.critical_pods) top.push_back({n, pod});
    std::sort(top.rbegin(), top.rend());
    std::printf("top critical pods:");
    for (std::size_t i = 0; i < top.size() && i < 5; ++i) {
      std::printf(" %s(%d)", top[i].second.c_str(), top[i].first);
    }
    std::printf("\n");
  }
}

/// --check integrity: every loaded op attributed (where a span tree or
/// ledger attribution exists) and segment durations summing to the
/// measured downtime within 1%.
int check_integrity(const RunSet& rs) {
  int failures = 0;
  for (const std::string& e : rs.errors) {
    std::fprintf(stderr, "zapc-report: CHECK: %s\n", e.c_str());
    failures++;
  }
  for (const obs::LedgerEntry& e : rs.ops) {
    if (!e.has_attrib) continue;
    u64 sum = 0;
    for (const obs::CritSegment& s : e.attrib.segments) {
      sum += s.duration();
    }
    u64 total = e.attrib.downtime_us;
    u64 diff = sum > total ? sum - total : total - sum;
    if (total > 0 && diff * 100 > total) {
      std::fprintf(stderr,
                   "zapc-report: CHECK: op %llu: segments sum %llu != "
                   "downtime %llu (>1%% off)\n",
                   static_cast<unsigned long long>(e.op),
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(total));
      failures++;
    }
  }
  if (rs.ops.empty()) {
    std::fprintf(stderr, "zapc-report: CHECK: no ops found\n");
    failures++;
  }
  return failures;
}

int compare_runs(const RunSet& a, const RunSet& b, const Options& opt) {
  Aggregate aa = aggregate(a);
  Aggregate ab = aggregate(b);
  int regressions = 0;
  std::printf("== compare: %zu ops -> %zu ops ==\n", a.ops.size(),
              b.ops.size());
  for (const auto& [kind, bs] : ab.downtime) {
    auto ait = aa.downtime.find(kind);
    if (ait == aa.downtime.end()) {
      std::printf("%-8s (new kind) p95 %s\n", kind.c_str(),
                  obs::vtime_us(percentile(bs, 0.95)).c_str());
      continue;
    }
    u64 pa = percentile(ait->second, 0.95);
    u64 pb = percentile(bs, 0.95);
    double delta =
        pa > 0 ? 100.0 * (static_cast<double>(pb) / pa - 1.0) : 0.0;
    bool bad = opt.check && pa > 0 && delta > opt.max_increase;
    std::printf("%-8s downtime p95 %-10s -> %-10s  %+6.1f%%%s\n",
                kind.c_str(), obs::vtime_us(pa).c_str(),
                obs::vtime_us(pb).c_str(), delta,
                bad ? "  REGRESSION" : "");
    if (bad) regressions++;
    auto bpit = ab.phases.find(kind);
    auto apit = aa.phases.find(kind);
    if (bpit == ab.phases.end() || apit == aa.phases.end()) continue;
    for (const auto& [phase, ps] : bpit->second) {
      auto old_ps = apit->second.find(phase);
      if (old_ps == apit->second.end()) continue;
      u64 qa = percentile(old_ps->second, 0.95);
      u64 qb = percentile(ps, 0.95);
      double d =
          qa > 0 ? 100.0 * (static_cast<double>(qb) / qa - 1.0) : 0.0;
      std::printf("  %-22s p95 %-10s -> %-10s  %+6.1f%%\n", phase.c_str(),
                  obs::vtime_us(qa).c_str(), obs::vtime_us(qb).c_str(), d);
    }
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "zapc-report: CHECK FAILED: %d p95 regression(s) over "
                 "%.1f%%\n",
                 regressions, opt.max_increase);
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: zapc-report [--check] [--no-per-op] PATH...\n"
      "       zapc-report --compare [--check] [--max-increase PCT] A B\n"
      "PATH: *.ledger.jsonl op ledger, *.json span evidence, or a\n"
      "directory of either (e.g. bench_results/)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--check") {
      opt.check = true;
    } else if (a == "--compare") {
      opt.compare = true;
    } else if (a == "--no-per-op") {
      opt.per_op = false;
    } else if (a == "--max-increase") {
      if (i + 1 >= argc) return usage();
      opt.max_increase = std::atof(argv[++i]);
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      opt.paths.push_back(a);
    }
  }
  if (opt.paths.empty()) return usage();
  if (opt.compare && opt.paths.size() != 2) return usage();

  if (opt.compare) {
    RunSet ra, rb;
    load_path(opt.paths[0], ra);
    load_path(opt.paths[1], rb);
    for (const RunSet* rs : {&ra, &rb}) {
      for (const std::string& e : rs->errors) {
        std::fprintf(stderr, "zapc-report: %s\n", e.c_str());
      }
    }
    return compare_runs(ra, rb, opt);
  }

  RunSet rs;
  for (const std::string& p : opt.paths) load_path(p, rs);

  if (opt.per_op && !opt.check) {
    for (const obs::LedgerEntry& e : rs.ops) print_op(e);
  }
  if (!opt.check) {
    for (const std::string& e : rs.errors) {
      std::fprintf(stderr, "zapc-report: %s\n", e.c_str());
    }
  }
  print_aggregate(aggregate(rs));
  if (rs.skipped_torn > 0) {
    std::printf("(%d torn trailing ledger line(s) skipped)\n",
                rs.skipped_torn);
  }

  if (opt.check) {
    int failures = check_integrity(rs);
    if (failures > 0) {
      std::fprintf(stderr, "zapc-report: CHECK FAILED: %d problem(s)\n",
                   failures);
      return 1;
    }
    std::printf(
        "zapc-report check: %zu op(s) from %d file(s), every critical "
        "path sums to its downtime within 1%%\n",
        rs.ops.size(), rs.files);
  }
  return 0;
}
