// End-to-end coordinated checkpoint-restart tests: the Manager/Agent
// protocol of Figures 1 and 3 running over the simulated cluster, with a
// live distributed application (TCP echo with byte-exact verification).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/agent.h"
#include "core/manager.h"
#include "obs/span.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"

namespace zapc::core {
namespace {

using test::EchoClient;
using test::EchoServer;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

/// Cluster with a manager node and several agent nodes running a
/// two-pod echo application.
class CoordinatedTest : public ::testing::Test {
 protected:
  static constexpr u32 kEchoBytes = 4 << 20;

  CoordinatedTest() {
    mgr_node_ = &cl_.add_node("mgr");
    for (int i = 0; i < 4; ++i) {
      nodes_.push_back(&cl_.add_node("n" + std::to_string(i + 1)));
      agents_.push_back(
          std::make_unique<Agent>(*nodes_.back(), Agent::kDefaultPort,
                                  CostModel{}, &trace_));
    }
    manager_ = std::make_unique<Manager>(*mgr_node_, &trace_);
  }

  /// Starts the echo app: server pod on agent 0, client pod on agent 1.
  void start_app(u32 bytes = kEchoBytes) {
    pod::Pod& sp = agents_[0]->create_pod(vip(1), "server-pod");
    server_pid_ = sp.spawn(std::make_unique<EchoServer>(5000));
    pod::Pod& cp = agents_[1]->create_pod(vip(2), "client-pod");
    client_pid_ = cp.spawn(std::make_unique<EchoClient>(
        net::SockAddr{vip(1), 5000}, bytes));
  }

  Manager::CheckpointReport checkpoint(int src_a = 0, int src_b = 1,
                                       CkptMode mode = CkptMode::SNAPSHOT) {
    Manager::CheckpointReport out;
    bool done = false;
    manager_->checkpoint(
        {
            {agents_[src_a]->addr(), "server-pod", "san://ckpt/server"},
            {agents_[src_b]->addr(), "client-pod", "san://ckpt/client"},
        },
        mode,
        [&](Manager::CheckpointReport r) {
          out = std::move(r);
          done = true;
        });
    for (int i = 0; i < 20000 && !done; ++i) {
      cl_.run_for(sim::kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }

  Manager::RestartReport restart(int dst_a, int dst_b) {
    Manager::RestartReport out;
    bool done = false;
    manager_->restart(
        {
            {agents_[dst_a]->addr(), "server-pod", "san://ckpt/server"},
            {agents_[dst_b]->addr(), "client-pod", "san://ckpt/client"},
        },
        {},
        [&](Manager::RestartReport r) {
          out = std::move(r);
          done = true;
        });
    for (int i = 0; i < 20000 && !done; ++i) {
      cl_.run_for(sim::kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }

  /// Runs until the client exits (or gives up) and returns its exit code.
  i32 wait_client(int agent_idx, sim::Time budget = 120 * sim::kSecond) {
    pod::Pod* cp = agents_[agent_idx]->find_pod("client-pod");
    if (cp == nullptr) return -100;
    for (sim::Time t = 0; t < budget; t += 10 * sim::kMillisecond) {
      cl_.run_for(10 * sim::kMillisecond);
      os::Process* p = cp->find_process(client_pid_);
      if (p != nullptr && p->state() == os::ProcState::EXITED) {
        return p->exit_code();
      }
    }
    return -101;
  }

  os::Cluster cl_;
  Trace trace_;
  os::Node* mgr_node_;
  std::vector<os::Node*> nodes_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unique_ptr<Manager> manager_;
  i32 server_pid_ = 0;
  i32 client_pid_ = 0;
};

TEST_F(CoordinatedTest, SnapshotIsTransparentToTheApplication) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);  // mid-transfer

  auto report = checkpoint();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.agents.size(), 2u);
  EXPECT_GT(report.max_image_bytes, 0u);
  EXPECT_EQ(report.metas.count("server-pod"), 1u);
  EXPECT_EQ(report.metas.count("client-pod"), 1u);

  // The application was only paused; it completes with verified bytes.
  EXPECT_EQ(wait_client(1), 0);
}

TEST_F(CoordinatedTest, CheckpointTimesAreSubsecond) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);
  auto report = checkpoint();
  ASSERT_TRUE(report.ok);
  EXPECT_LT(report.total_us, sim::kSecond);       // paper: 100-300 ms
  EXPECT_GT(report.total_us, sim::kMillisecond);  // not instantaneous
  // Network-state checkpoint ≪ total (paper §6: <10ms, 3-10%).
  EXPECT_LT(report.max_net_ckpt_us, 10 * sim::kMillisecond);
  EXPECT_LT(report.max_net_ckpt_us * 2, report.total_us);
  // Network-state data ≪ image size (paper: KBs vs MBs).
  EXPECT_LT(report.max_network_bytes * 10, report.max_image_bytes);
}

TEST_F(CoordinatedTest, RestartOnSameNodesAfterCrash) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);
  auto report = checkpoint();
  ASSERT_TRUE(report.ok) << report.error;

  // Crash: both pods disappear with all live state.
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  cl_.run_for(100 * sim::kMillisecond);

  auto rr = restart(0, 1);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_EQ(rr.agents.size(), 2u);

  // The client finishes from the checkpoint with byte-exact verification:
  // restored queues, resent send queues, discarded overlap all correct.
  EXPECT_EQ(wait_client(1), 0);
}

TEST_F(CoordinatedTest, RestartOnDifferentNodes) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);
  auto report = checkpoint();
  ASSERT_TRUE(report.ok) << report.error;

  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  cl_.run_for(100 * sim::kMillisecond);

  // Restart on nodes 3 and 4: virtual addresses stay the same, the
  // location table remaps them to the new real nodes.
  auto rr = restart(2, 3);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_EQ(wait_client(3), 0);
  EXPECT_NE(agents_[2]->find_pod("server-pod"), nullptr);
  EXPECT_NE(agents_[3]->find_pod("client-pod"), nullptr);
}

TEST_F(CoordinatedTest, RestartTimesExceedCheckpointTimes) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);
  auto cr = checkpoint();
  ASSERT_TRUE(cr.ok);
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  auto rr = restart(2, 3);
  ASSERT_TRUE(rr.ok);
  EXPECT_LT(rr.total_us, sim::kSecond);   // paper: 200-700 ms
  EXPECT_GT(rr.total_us, cr.total_us / 2);  // restarts are the slower op
}

TEST_F(CoordinatedTest, DirectMigrationStreamsImages) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);

  // Checkpoint with agent:// destinations: images stream directly to the
  // receiving agents without touching storage (paper §1, §3).
  std::string uri_a = "agent://" + nodes_[2]->addr().to_string() + ":" +
                      std::to_string(Agent::kDefaultPort) + "/server-img";
  std::string uri_b = "agent://" + nodes_[3]->addr().to_string() + ":" +
                      std::to_string(Agent::kDefaultPort) + "/client-img";
  // (to_string of SockAddr includes a port; build manually from the ip)
  uri_a = "agent://" + nodes_[2]->addr().to_string() + ":7077/server-img";
  uri_b = "agent://" + nodes_[3]->addr().to_string() + ":7077/client-img";

  bool done = false;
  Manager::CheckpointReport cr;
  manager_->checkpoint(
      {
          {agents_[0]->addr(), "server-pod", uri_a},
          {agents_[1]->addr(), "client-pod", uri_b},
      },
      CkptMode::MIGRATE,
      [&](Manager::CheckpointReport r) {
        cr = std::move(r);
        done = true;
      });
  for (int i = 0; i < 20000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(cr.ok) << cr.error;

  // Migration destroyed the source pods.
  EXPECT_EQ(agents_[0]->find_pod("server-pod"), nullptr);
  EXPECT_EQ(agents_[1]->find_pod("client-pod"), nullptr);

  // Restart from the received streams.
  done = false;
  Manager::RestartReport rr;
  manager_->restart(
      {
          {agents_[2]->addr(), "server-pod", "stream://server-img"},
          {agents_[3]->addr(), "client-pod", "stream://client-img"},
      },
      {},
      [&](Manager::RestartReport r) {
        rr = std::move(r);
        done = true;
      });
  for (int i = 0; i < 60000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_EQ(wait_client(3), 0);
}

TEST_F(CoordinatedTest, CheckpointOfMissingPodAbortsCleanly) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);

  bool done = false;
  Manager::CheckpointReport cr;
  manager_->checkpoint(
      {
          {agents_[0]->addr(), "server-pod", "san://ckpt/server"},
          {agents_[1]->addr(), "nonexistent-pod", "san://ckpt/x"},
      },
      CkptMode::SNAPSHOT,
      [&](Manager::CheckpointReport r) {
        cr = std::move(r);
        done = true;
      });
  for (int i = 0; i < 20000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(cr.ok);

  // The graceful abort resumed the suspended pod; the app completes.
  EXPECT_EQ(wait_client(1), 0);
}

TEST_F(CoordinatedTest, AgentNodeFailureAbortsAndOthersResume) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);

  // The client-pod's node dies mid-checkpoint: the Manager loses the
  // connection and aborts; the surviving pod resumes.
  bool done = false;
  Manager::CheckpointReport cr;
  manager_->checkpoint(
      {
          {agents_[0]->addr(), "server-pod", "san://ckpt/server"},
          {agents_[1]->addr(), "client-pod", "san://ckpt/client"},
      },
      CkptMode::SNAPSHOT,
      [&](Manager::CheckpointReport r) {
        cr = std::move(r);
        done = true;
      });
  nodes_[1]->fail();
  for (int i = 0; i < 60000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(cr.ok);
  // Give the abort a moment to reach the surviving agent; the server pod
  // must then be running again (not stuck suspended).
  cl_.run_for(100 * sim::kMillisecond);
  pod::Pod* sp = agents_[0]->find_pod("server-pod");
  ASSERT_NE(sp, nullptr);
  EXPECT_FALSE(sp->suspended());
}

TEST_F(CoordinatedTest, RepeatedCheckpointsAreStable) {
  start_app(8 << 20);
  // Ten checkpoints evenly spread through execution (paper methodology).
  for (int i = 0; i < 10; ++i) {
    cl_.run_for(15 * sim::kMillisecond);
    auto report = checkpoint();
    ASSERT_TRUE(report.ok) << "checkpoint " << i << ": " << report.error;
  }
  EXPECT_EQ(wait_client(1), 0);
}

TEST_F(CoordinatedTest, TimelineShowsSingleSyncPoint) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);
  trace_.clear();
  auto report = checkpoint();
  ASSERT_TRUE(report.ok);

  // Each agent reported meta before the manager's continue, and the
  // standalone checkpoint overlapped the barrier (Figure 2).
  sim::Time sync_time = 0;
  int meta_reports = 0;
  for (const auto& ev : trace_.events()) {
    if (ev.what.find("send 'continue'") != std::string::npos) {
      sync_time = ev.t;
    }
    if (ev.what.find("2a: meta-data reported") != std::string::npos) {
      ++meta_reports;
    }
  }
  EXPECT_EQ(meta_reports, 2);
  ASSERT_GT(sync_time, 0u);
  for (const auto& ev : trace_.events()) {
    if (ev.what.find("2a: meta-data reported") != std::string::npos) {
      EXPECT_LT(ev.t, sync_time);
    }
  }
}

TEST_F(CoordinatedTest, CheckpointEmitsFigure2PhaseSpans) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);
  trace_.clear();
  auto report = checkpoint();
  ASSERT_TRUE(report.ok);

  // Manager spans: a root covering the whole operation, a meta-data
  // wait that ends at the single synchronization point, and a done-wait
  // from the 'continue' broadcast to the last agent's completion.
  const obs::SpanRecorder& rec = trace_.recorder();
  const obs::SpanRecord* root = rec.find_by_name("mgr.ckpt", "manager");
  const obs::SpanRecord* meta =
      rec.find_by_name("mgr.ckpt.meta_wait", "manager");
  const obs::SpanRecord* done =
      rec.find_by_name("mgr.ckpt.done_wait", "manager");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(meta, nullptr);
  ASSERT_NE(done, nullptr);
  EXPECT_FALSE(root->open);
  EXPECT_EQ(meta->parent, root->id);
  EXPECT_EQ(done->parent, root->id);
  EXPECT_EQ(meta->start, root->start);
  EXPECT_EQ(done->start, meta->end);  // single sync point
  EXPECT_LE(done->end, root->end);

  // Per-agent phase spans in Figure-2 order: suspend, then network
  // state (checkpointed FIRST), then the standalone checkpoint, then
  // the barrier wait — all nested under the agent's root span.
  obs::Time last_standalone_end = 0;
  for (const char* who : {"agent@n1", "agent@n2"}) {
    const obs::SpanRecord* aroot = rec.find_by_name("ckpt", who);
    const obs::SpanRecord* susp = rec.find_by_name("ckpt.suspend", who);
    const obs::SpanRecord* net = rec.find_by_name("ckpt.netckpt", who);
    const obs::SpanRecord* sa = rec.find_by_name("ckpt.standalone", who);
    const obs::SpanRecord* bar = rec.find_by_name("ckpt.barrier", who);
    ASSERT_NE(aroot, nullptr) << who;
    ASSERT_NE(susp, nullptr) << who;
    ASSERT_NE(net, nullptr) << who;
    ASSERT_NE(sa, nullptr) << who;
    ASSERT_NE(bar, nullptr) << who;
    for (const obs::SpanRecord* s : {aroot, susp, net, sa, bar}) {
      EXPECT_FALSE(s->open) << who << " " << s->name;
    }
    EXPECT_EQ(susp->parent, aroot->id);
    EXPECT_EQ(net->parent, aroot->id);
    EXPECT_EQ(sa->parent, aroot->id);
    EXPECT_EQ(bar->parent, aroot->id);
    EXPECT_LE(susp->end, net->start);
    EXPECT_LE(net->end, sa->start);
    // Meta-data left this agent before the manager's sync point.
    EXPECT_LE(net->end, meta->end) << who;
    last_standalone_end = std::max(last_standalone_end, sa->end);
  }
  // The slowest standalone checkpoint overlapped the barrier: it was
  // still copying when the manager broadcast 'continue' (Figure 2).
  EXPECT_GE(last_standalone_end, meta->end);
}

TEST_F(CoordinatedTest, CheckpointCarriesOneOpIdWithCrossNodeParents) {
  start_app();
  cl_.run_for(20 * sim::kMillisecond);
  trace_.clear();
  auto report = checkpoint();
  ASSERT_TRUE(report.ok);
  EXPECT_NE(report.op_id, 0u);

  const obs::SpanRecorder& rec = trace_.recorder();
  const obs::SpanRecord* root = rec.find_by_name("mgr.ckpt", "manager");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, report.op_id);

  // Every record of the operation carries the minted op id, and nothing
  // from another op leaked in (the trace was cleared).
  for (const auto& s : rec.spans()) {
    EXPECT_EQ(s.op, report.op_id) << s.who << " " << s.name;
  }

  // Cross-node parents: each agent's root span hangs off the Manager's,
  // and each agent's resume hangs off the Manager's 'continue' EVENT.
  const obs::SpanRecord* cont = rec.find_by_name("mgr.continue", "manager");
  ASSERT_NE(cont, nullptr);
  EXPECT_EQ(cont->kind, obs::SpanKind::EVENT);
  EXPECT_EQ(cont->parent, root->id);
  for (const char* who : {"agent@n1", "agent@n2"}) {
    const obs::SpanRecord* aroot = rec.find_by_name("ckpt", who);
    ASSERT_NE(aroot, nullptr) << who;
    EXPECT_EQ(aroot->parent, root->id) << who;
    bool resumed = false;
    for (const auto& s : rec.spans()) {
      if (s.who != who || s.name.rfind("agent.resume", 0) != 0) continue;
      resumed = true;
      EXPECT_EQ(s.parent, cont->id) << who;
      EXPECT_GE(s.start, cont->start) << who;
    }
    EXPECT_TRUE(resumed) << who;
  }
}

TEST_F(CoordinatedTest, ConsecutiveOpsGetDistinctOpIds) {
  start_app(8 << 20);
  cl_.run_for(20 * sim::kMillisecond);
  auto cr = checkpoint();
  ASSERT_TRUE(cr.ok);
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());

  trace_.clear();
  auto rr = restart(2, 3);
  ASSERT_TRUE(rr.ok);
  EXPECT_NE(rr.op_id, 0u);
  EXPECT_NE(rr.op_id, cr.op_id);

  // Restart side: same single-op discipline, parents reach the Manager's
  // restart root, and the restored-socket events carry the op too.
  const obs::SpanRecorder& rec = trace_.recorder();
  const obs::SpanRecord* root = rec.find_by_name("mgr.restart", "manager");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, rr.op_id);
  int restored_events = 0;
  for (const auto& s : rec.spans()) {
    EXPECT_EQ(s.op, rr.op_id) << s.who << " " << s.name;
    if (s.name.rfind("net.sock.restored", 0) == 0) ++restored_events;
    if (s.name == "restart") {
      EXPECT_EQ(s.parent, root->id) << s.who;
    }
  }
  // One restored event per established endpoint (client + server side).
  EXPECT_GE(restored_events, 2);
}

TEST_F(CoordinatedTest, FsSnapshotTakenBeforeResume) {
  start_app();
  cl_.san().write("pods/server-pod/output.dat", Bytes{1, 2, 3});
  cl_.run_for(20 * sim::kMillisecond);

  bool done = false;
  Manager::CheckpointReport cr;
  manager_->checkpoint(
      {
          {agents_[0]->addr(), "server-pod", "san://ckpt/server"},
          {agents_[1]->addr(), "client-pod", "san://ckpt/client"},
      },
      CkptMode::SNAPSHOT,
      [&](Manager::CheckpointReport r) {
        cr = std::move(r);
        done = true;
      },
      Manager::CkptOptions{/*redirect_send_queues=*/false,
                           /*fs_snapshot=*/true});
  for (int i = 0; i < 20000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(cr.ok);
  EXPECT_TRUE(cl_.san().exists("snapshots/server-pod/output.dat"));
}

}  // namespace
}  // namespace zapc::core
