// Introspection-plane tests (DESIGN.md §9): protocol round-trips for the
// HEARTBEAT/PROGRESS/HEALTH_* messages, the ClusterHealth aggregation
// math (median, lag, straggler attribution, early warnings), and the
// end-to-end acceptance scenario — a coordinated checkpoint with an
// injected slow node, whose pod the live plane must name as the
// straggler, with the beacons visible in the causal trace and the
// zapc.obs.health.v1 snapshot servable over the status endpoint.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/manager.h"
#include "core/protocol.h"
#include "fault/fault.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"

namespace zapc::core {
namespace {

using test::EchoClient;
using test::EchoServer;

// ---- Protocol round-trips ---------------------------------------------------

TEST(HealthProtocol, HeartbeatRoundTrips) {
  HeartbeatMsg m;
  m.op_id = 42;
  m.pod_name = "bt-1";
  m.phase = "ckpt.standalone";
  m.t_us = 123456;
  m.seq = 7;
  auto d = decode_heartbeat(encode_heartbeat(m));
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().op_id, 42u);
  EXPECT_EQ(d.value().pod_name, "bt-1");
  EXPECT_EQ(d.value().phase, "ckpt.standalone");
  EXPECT_EQ(d.value().t_us, 123456u);
  EXPECT_EQ(d.value().seq, 7u);
}

TEST(HealthProtocol, ProgressRoundTrips) {
  ProgressMsg m;
  m.op_id = 42;
  m.pod_name = "bt-1";
  m.phase = "ckpt.stream";
  m.t_us = 5000;
  m.bytes_done = 1 << 20;
  m.bytes_expected = 4 << 20;
  m.throughput_bps = 1200 << 20;
  m.eta_us = 2500;
  auto d = decode_progress(encode_progress(m));
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().bytes_done, u64{1} << 20);
  EXPECT_EQ(d.value().bytes_expected, u64{4} << 20);
  EXPECT_EQ(d.value().throughput_bps, u64{1200} << 20);
  EXPECT_EQ(d.value().eta_us, 2500u);
}

TEST(HealthProtocol, HealthQueryAndSnapshotRoundTrip) {
  auto q = decode_health_query(encode_health_query(HealthQuery{9}));
  ASSERT_TRUE(q.is_ok());
  EXPECT_EQ(q.value().op_id, 9u);

  HealthSnapshotMsg s;
  s.op_id = 9;
  s.json =
      std::string("{\"schema\": \"") + obs::kHealthSchemaVersion + "\"}";
  auto d = decode_health_snapshot(encode_health_snapshot(s));
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().op_id, 9u);
  EXPECT_EQ(d.value().json, s.json);
}

TEST(HealthProtocol, CommandsCarryHeartbeatCadence) {
  CheckpointCmd c;
  c.pod_name = "p";
  c.dest_uri = "san://x";
  c.heartbeat_us = 10000;
  auto dc = decode_checkpoint_cmd(encode_checkpoint_cmd(c));
  ASSERT_TRUE(dc.is_ok());
  EXPECT_EQ(dc.value().heartbeat_us, 10000u);

  RestartCmd r;
  r.pod_name = "p";
  r.source_uri = "san://x";
  r.heartbeat_us = 7000;
  auto dr = decode_restart_cmd(encode_restart_cmd(r));
  ASSERT_TRUE(dr.is_ok());
  EXPECT_EQ(dr.value().heartbeat_us, 7000u);
}

// ---- ClusterHealth model ----------------------------------------------------

TEST(ClusterHealth, MedianLagAndStragglerAttribution) {
  obs::ClusterHealth h;
  h.op_begin(1, "ckpt", 1000, {"a", "b", "c"});
  EXPECT_EQ(h.latest_op(), 1u);
  EXPECT_TRUE(h.op_active(1));

  // No reports yet: no median, no straggler.
  EXPECT_EQ(h.median_finish_us(1), 0u);
  EXPECT_TRUE(h.straggler(1).pod.empty());

  h.progress(1, "a", "ckpt.standalone", 2000, 50, 100, 1'000'000, 500);
  h.progress(1, "b", "ckpt.standalone", 2000, 10, 100, 1'000'000, 3000);
  // a projects 2500, b projects 5000; c silent (not in the median).
  EXPECT_EQ(h.median_finish_us(1), 2500u);  // lower median = fast pod
  EXPECT_EQ(h.lag_us(1, "a"), 0u);
  EXPECT_EQ(h.lag_us(1, "b"), 2500u);
  EXPECT_EQ(h.lag_us(1, "c"), 0u);

  obs::Straggler s = h.straggler(1);
  EXPECT_EQ(s.pod, "b");
  EXPECT_EQ(s.phase, "ckpt.standalone");
  EXPECT_EQ(s.lag_us, 2500u);

  // A finished pod pins to its actual completion time.
  h.pod_done(1, "a", 2600);
  const obs::PodHealth* a = h.pod(1, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->done);
  EXPECT_EQ(a->projected_finish_us(), 2600u);
  EXPECT_DOUBLE_EQ(a->pct_done(), 100.0);

  h.op_end(1, 6000, true);
  EXPECT_FALSE(h.op_active(1));
}

TEST(ClusterHealth, LagWarningRaisedOncePerPhase) {
  obs::ClusterHealth h;
  h.set_policy(obs::ClusterHealth::Policy{/*warn_lag_us=*/1000,
                                          /*stale_after_us=*/0});
  h.op_begin(2, "ckpt", 0, {"a", "b"});
  h.progress(2, "a", "ckpt.standalone", 1000, 50, 100, 1, 100);
  h.progress(2, "b", "ckpt.standalone", 1000, 10, 100, 1, 5000);

  auto w = h.take_warnings();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].pod, "b");
  EXPECT_EQ(w[0].what, "lag");
  EXPECT_GE(w[0].lag_us, 1000u);

  // Sustained lag in the same phase stays deduplicated...
  h.progress(2, "b", "ckpt.standalone", 2000, 20, 100, 1, 5000);
  EXPECT_TRUE(h.take_warnings().empty());
  // ...but a new phase warns again.
  h.progress(2, "b", "ckpt.stream", 3000, 0, 100, 1, 9000);
  auto w2 = h.take_warnings();
  ASSERT_EQ(w2.size(), 1u);
  EXPECT_EQ(w2[0].phase, "ckpt.stream");
}

TEST(ClusterHealth, StalePodFlaggedWhenPeersStillReport) {
  obs::ClusterHealth h;
  h.set_policy(obs::ClusterHealth::Policy{0, /*stale_after_us=*/500});
  h.op_begin(3, "ckpt", 0, {"a", "b"});
  h.heartbeat(3, "a", "ckpt.suspend", 100);
  h.heartbeat(3, "b", "ckpt.suspend", 100);
  EXPECT_TRUE(h.take_warnings().empty());

  // b goes silent; a's next report notices.
  h.heartbeat(3, "a", "ckpt.standalone", 900);
  auto w = h.take_warnings();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].pod, "b");
  EXPECT_EQ(w[0].what, "stale");
  EXPECT_EQ(w[0].age_us, 800u);
}

TEST(ClusterHealth, SnapshotFollowsHealthV1Schema) {
  obs::ClusterHealth h;
  h.op_begin(4, "ckpt", 100, {"a", "b"});
  h.progress(4, "a", "ckpt.standalone", 1000, 25, 100, 777, 900);
  h.heartbeat(4, "b", "ckpt.suspend", 1000);

  obs::Json doc = h.snapshot(/*now=*/1500, /*op=*/0);  // 0 = latest
  EXPECT_EQ(doc.find("schema")->str(), obs::kHealthSchemaVersion);
  EXPECT_EQ(doc.find("op_id")->num_u64(), 4u);
  EXPECT_EQ(doc.find("kind")->str(), "ckpt");
  EXPECT_TRUE(doc.find("active")->boolean());
  const obs::Json* pods = doc.find("pods");
  ASSERT_NE(pods, nullptr);
  ASSERT_EQ(pods->size(), 2u);
  const obs::Json* a = pods->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->find("phase")->str(), "ckpt.standalone");
  EXPECT_DOUBLE_EQ(a->find("pct_done")->num(), 25.0);
  EXPECT_EQ(a->find("eta_us")->num_u64(), 900u);
  EXPECT_EQ(a->find("heartbeat_age_us")->num_u64(), 500u);

  // The document round-trips through its own serializer.
  auto parsed = obs::json_parse(doc.dump(2));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().find("schema")->str(), obs::kHealthSchemaVersion);
}

// ---- End-to-end: slow node named as straggler -------------------------------

net::IpAddr vip(u8 i) { return net::IpAddr(10, 78, 0, i); }

/// Manager + 2 agent nodes running the echo pair, with the introspection
/// plane enabled and a SLOW_NODE fault available for injection.
class HealthPlaneTest : public ::testing::Test {
 protected:
  HealthPlaneTest() {
    fault::injector().clear();
    mgr_node_ = &cl_.add_node("mgr");
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(&cl_.add_node("n" + std::to_string(i + 1)));
      agents_.push_back(std::make_unique<Agent>(
          *nodes_.back(), Agent::kDefaultPort, CostModel{}, &trace_));
    }
    manager_ = std::make_unique<Manager>(*mgr_node_, &trace_);

    pod::Pod& sp = agents_[0]->create_pod(vip(1), "server-pod");
    sp.spawn(std::make_unique<EchoServer>(5000));
    pod::Pod& cp = agents_[1]->create_pod(vip(2), "client-pod");
    cp.spawn(std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000},
                                          8 << 20));
    cl_.run_for(30 * sim::kMillisecond);  // mid-transfer
  }

  ~HealthPlaneTest() override { fault::injector().clear(); }

  Manager::CheckpointReport checkpoint(Manager::CkptOptions opts) {
    Manager::CheckpointReport out;
    bool done = false;
    manager_->checkpoint(
        {
            {agents_[0]->addr(), "server-pod", "san://ckpt/server"},
            {agents_[1]->addr(), "client-pod", "san://ckpt/client"},
        },
        CkptMode::SNAPSHOT,
        [&](Manager::CheckpointReport r) {
          out = std::move(r);
          done = true;
        },
        opts);
    for (int i = 0; i < 20000 && !done; ++i) {
      cl_.run_for(sim::kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }

  os::Cluster cl_;
  Trace trace_;
  os::Node* mgr_node_;
  std::vector<os::Node*> nodes_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unique_ptr<Manager> manager_;
};

TEST_F(HealthPlaneTest, SlowNodePodNamedStragglerWithNonzeroLag) {
  fault::FaultSpec slow;
  slow.kind = fault::FaultKind::SLOW_NODE;
  slow.node = "n2";  // hosts client-pod
  slow.multiplier = 4.0;
  fault::injector().arm(slow);

  u64 hb_before = obs::metrics().counter("mgr.hb.received").value;

  Manager::CkptOptions opts;
  opts.heartbeat_us = 5 * sim::kMillisecond;
  opts.warn_lag_us = 20 * sim::kMillisecond;
  auto report = checkpoint(opts);
  ASSERT_TRUE(report.ok) << report.error;

  // Beacons arrived and were aggregated.
  EXPECT_GT(obs::metrics().counter("mgr.hb.received").value, hb_before);

  // The slow node's pod is the straggler, with nonzero lag vs. median.
  const obs::ClusterHealth& h = manager_->health();
  obs::Straggler s = h.straggler(report.op_id);
  EXPECT_EQ(s.pod, "client-pod");
  EXPECT_GT(s.lag_us, 0u);

  // Both pods completed; the laggard finished after the median.
  const obs::PodHealth* fast = h.pod(report.op_id, "server-pod");
  const obs::PodHealth* lag = h.pod(report.op_id, "client-pod");
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(lag, nullptr);
  EXPECT_TRUE(fast->done);
  EXPECT_TRUE(lag->done);
  EXPECT_GT(lag->done_at_us, fast->done_at_us);

  // The sustained lag raised an attributed early warning...
  EXPECT_GT(obs::metrics().counter("mgr.health.early_warnings").value, 0u);

  // ...and the beacons are in the causal trace under the op's spans.
  bool hb_in_trace = false;
  bool warn_in_trace = false;
  for (const obs::SpanRecord& r : trace_.recorder().spans()) {
    if (r.op != report.op_id || r.kind != obs::SpanKind::EVENT) continue;
    if (r.name.rfind("hb seq=", 0) == 0 && r.parent != 0) {
      hb_in_trace = true;
    }
    if (r.name.rfind("health.warn pod=client-pod", 0) == 0) {
      warn_in_trace = true;
    }
  }
  EXPECT_TRUE(hb_in_trace);
  EXPECT_TRUE(warn_in_trace);

  // The snapshot names the straggler too (what zapc-top renders).
  auto parsed = obs::json_parse(manager_->health_json(report.op_id));
  ASSERT_TRUE(parsed.is_ok());
  const obs::Json* sj = parsed.value().find("straggler");
  ASSERT_NE(sj, nullptr);
  EXPECT_EQ(sj->find("pod")->str(), "client-pod");
  EXPECT_GT(sj->find("lag_us")->num_u64(), 0u);
}

TEST_F(HealthPlaneTest, PlaneOffSendsNoBeacons) {
  u64 hb_before = obs::metrics().counter("agent.hb.sent").value;
  auto report = checkpoint(Manager::CkptOptions{});  // heartbeat_us = 0
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(obs::metrics().counter("agent.hb.sent").value, hb_before);
}

TEST_F(HealthPlaneTest, StatusEndpointServesHealthSnapshot) {
  manager_->serve_status(7070);

  // A console node polls over the simulated network, like zapc-top.
  os::Node& console = cl_.add_node("console");
  auto ch = connect_channel(console.host_stack(),
                            net::SockAddr{mgr_node_->addr(), 7070});
  ASSERT_NE(ch, nullptr);
  std::string got;
  ch->set_on_msg([&](Bytes msg) {
    auto m = decode_health_snapshot(msg);
    if (m.is_ok()) got = m.value().json;
  });

  Manager::CkptOptions opts;
  opts.heartbeat_us = 5 * sim::kMillisecond;
  auto report = checkpoint(opts);
  ASSERT_TRUE(report.ok) << report.error;

  ASSERT_TRUE(ch->send(encode_health_query(HealthQuery{0})).is_ok());
  cl_.run_for(50 * sim::kMillisecond);

  ASSERT_FALSE(got.empty());
  auto parsed = obs::json_parse(got);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::Json& doc = parsed.value();
  EXPECT_EQ(doc.find("schema")->str(), obs::kHealthSchemaVersion);
  EXPECT_EQ(doc.find("op_id")->num_u64(), report.op_id);
  const obs::Json* pods = doc.find("pods");
  ASSERT_NE(pods, nullptr);
  EXPECT_EQ(pods->size(), 2u);
}

TEST_F(HealthPlaneTest, StatusEndpointHandlesInterleavedQueries) {
  manager_->serve_status(7070);

  // Two consoles poll the same endpoint concurrently.
  os::Node& c1 = cl_.add_node("console1");
  os::Node& c2 = cl_.add_node("console2");
  auto ch1 = connect_channel(c1.host_stack(),
                             net::SockAddr{mgr_node_->addr(), 7070});
  auto ch2 = connect_channel(c2.host_stack(),
                             net::SockAddr{mgr_node_->addr(), 7070});
  ASSERT_NE(ch1, nullptr);
  ASSERT_NE(ch2, nullptr);
  std::vector<std::string> got1, got2;
  ch1->set_on_msg([&](Bytes msg) {
    auto m = decode_health_snapshot(msg);
    if (m.is_ok()) got1.push_back(m.value().json);
  });
  ch2->set_on_msg([&](Bytes msg) {
    auto m = decode_health_snapshot(msg);
    if (m.is_ok()) got2.push_back(m.value().json);
  });

  Manager::CkptOptions opts;
  opts.heartbeat_us = 5 * sim::kMillisecond;
  auto report = checkpoint(opts);
  ASSERT_TRUE(report.ok) << report.error;

  // A burst of queries lands with several in flight at once, from both
  // channels, mixing "latest" (op 0) with the explicit op id.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ch1->send(encode_health_query(HealthQuery{0})).is_ok());
    ASSERT_TRUE(
        ch2->send(encode_health_query(HealthQuery{report.op_id})).is_ok());
  }
  cl_.run_for(100 * sim::kMillisecond);

  // Every query got exactly one reply, and every reply is a well-formed
  // snapshot of the same completed op.
  ASSERT_EQ(got1.size(), 5u);
  ASSERT_EQ(got2.size(), 5u);
  for (const auto* side : {&got1, &got2}) {
    for (const std::string& json : *side) {
      auto parsed = obs::json_parse(json);
      ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
      EXPECT_EQ(parsed.value().find("schema")->str(),
                obs::kHealthSchemaVersion);
      EXPECT_EQ(parsed.value().find("op_id")->num_u64(), report.op_id);
    }
  }

  // A long-lived console keeps getting answers on later polls.
  ASSERT_TRUE(ch1->send(encode_health_query(HealthQuery{0})).is_ok());
  cl_.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(got1.size(), 6u);
}

}  // namespace
}  // namespace zapc::core
