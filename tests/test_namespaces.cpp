// Pod namespace isolation (paper §3): "Names within a pod are trivially
// assigned in a unique manner ... but such names are localized to the
// pod", which is what lets pods migrate as a group without naming
// conflicts.  Identical ports, vpids and fds in different pods — even on
// the same node — must never collide.
#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/manager.h"
#include "net/tcp.h"
#include "os/cluster.h"
#include "pod/pod.h"
#include "tests/guest_programs.h"

namespace zapc {
namespace {

using test::EchoClient;
using test::EchoServer;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

TEST(Namespaces, SamePortInTwoPodsOnOneNode) {
  // Two pods on the SAME node both bind port 5000 — separate network
  // namespaces make this legal, and each connection reaches the right
  // server.
  os::Cluster cl;
  os::Node& node = cl.add_node("n1", 2);
  os::Node& cnode = cl.add_node("n2", 2);
  pod::Pod s1(node, vip(1), "srv1");
  pod::Pod s2(node, vip(2), "srv2");
  pod::Pod c1(cnode, vip(3), "cli1");
  pod::Pod c2(cnode, vip(4), "cli2");

  s1.spawn(std::make_unique<EchoServer>(5000));
  s2.spawn(std::make_unique<EchoServer>(5000));  // same port, other pod
  i32 p1 = c1.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 50000));
  i32 p2 = c2.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(2), 5000}, 60000));

  cl.run_for(10 * sim::kSecond);
  EXPECT_EQ(c1.find_process(p1)->exit_code(), 0);
  EXPECT_EQ(c2.find_process(p2)->exit_code(), 0);
}

TEST(Namespaces, VpidsArePodLocal) {
  os::Cluster cl;
  os::Node& node = cl.add_node("n1", 2);
  pod::Pod a(node, vip(1), "a");
  pod::Pod b(node, vip(2), "b");
  // Both pods assign vpid 1 to their first process.
  EXPECT_EQ(a.spawn(std::make_unique<test::CounterProgram>(10, 1)), 1);
  EXPECT_EQ(b.spawn(std::make_unique<test::CounterProgram>(10, 1)), 1);
  cl.run_for(10 * sim::kMillisecond);
  EXPECT_NE(a.find_process(1), nullptr);
  EXPECT_NE(b.find_process(1), nullptr);
  EXPECT_EQ(a.find_process(1)->exit_code(), 0);
}

TEST(Namespaces, MigrationToBusyPortNode) {
  // The destination node already hosts a pod listening on the same port
  // the migrating pod uses.  Real Zap's motivation: "those identifiers
  // may in fact be in use by other processes in the system" — namespaces
  // make the restart conflict-free.
  os::Cluster cl;
  os::Node* mgr_node = &cl.add_node("mgr");
  os::Node& n1 = cl.add_node("n1", 2);
  os::Node& n2 = cl.add_node("n2", 2);
  core::Agent a1(n1), a2(n2);
  core::Manager mgr(*mgr_node);

  // Resident workload on n2 occupying port 5000 in its own pod.
  pod::Pod& resident = a2.create_pod(vip(9), "resident");
  resident.spawn(std::make_unique<EchoServer>(5000));
  pod::Pod& resident_cli = a1.create_pod(vip(8), "resident-cli");
  i32 rc = resident_cli.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(9), 5000}, 3 << 20));

  // The migrating job also uses port 5000.
  pod::Pod& srv = a1.create_pod(vip(1), "mig-srv");
  srv.spawn(std::make_unique<EchoServer>(5000));
  pod::Pod& cli = a2.create_pod(vip(2), "mig-cli");
  i32 mc = cli.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 3 << 20));

  cl.run_for(20 * sim::kMillisecond);
  ASSERT_NE(cli.find_process(mc)->state(), os::ProcState::EXITED);

  // Migrate mig-srv onto n2, where "port 5000" is already taken by the
  // resident pod (but in a different namespace).
  bool done = false, ok = false;
  mgr.checkpoint(
      {
          {a1.addr(), "mig-srv", "san://ckpt/mig-srv"},
          {a2.addr(), "mig-cli", "san://ckpt/mig-cli"},
      },
      core::CkptMode::MIGRATE, [&](auto r) {
        ok = r.ok;
        done = true;
      });
  while (!done) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(ok);

  done = false;
  mgr.restart(
      {
          {a2.addr(), "mig-srv", "san://ckpt/mig-srv"},
          {a1.addr(), "mig-cli", "san://ckpt/mig-cli"},
      },
      {}, [&](auto r) {
        ok = r.ok;
        done = true;
      });
  while (!done) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(ok);

  // Both applications complete correctly side by side.
  for (int i = 0; i < 12000; ++i) {
    cl.run_for(10 * sim::kMillisecond);
    pod::Pod* mcli = a1.find_pod("mig-cli");
    if (mcli == nullptr) continue;
    os::Process* p = mcli->find_process(mc);
    if (p != nullptr && p->state() == os::ProcState::EXITED) break;
  }
  os::Process* mig = a1.find_pod("mig-cli")->find_process(mc);
  ASSERT_EQ(mig->state(), os::ProcState::EXITED);
  EXPECT_EQ(mig->exit_code(), 0);
  for (int i = 0; i < 12000; ++i) {
    cl.run_for(10 * sim::kMillisecond);
    os::Process* p = resident_cli.find_process(rc);
    if (p->state() == os::ProcState::EXITED) break;
  }
  EXPECT_EQ(resident_cli.find_process(rc)->exit_code(), 0);
}

TEST(Namespaces, FilterIsolationBetweenPodsOnOneNode) {
  // Blocking one pod's network must not affect a co-located pod.
  os::Cluster cl;
  os::Node& node = cl.add_node("n1", 2);
  os::Node& peer = cl.add_node("n2", 2);
  pod::Pod s1(node, vip(1), "s1");
  pod::Pod s2(node, vip(2), "s2");
  pod::Pod c1(peer, vip(3), "c1");
  pod::Pod c2(peer, vip(4), "c2");
  s1.spawn(std::make_unique<EchoServer>(5000));
  s2.spawn(std::make_unique<EchoServer>(5000));
  i32 p1 = c1.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 8 << 20));
  i32 p2 = c2.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(2), 5000}, 1 << 20));

  cl.run_for(5 * sim::kMillisecond);
  s1.filter().block_addr(vip(1));  // freeze only s1's traffic

  cl.run_for(3 * sim::kSecond);
  // c2 finished unimpeded; c1 is stalled by the block.
  EXPECT_EQ(c2.find_process(p2)->state(), os::ProcState::EXITED);
  EXPECT_EQ(c2.find_process(p2)->exit_code(), 0);
  EXPECT_NE(c1.find_process(p1)->state(), os::ProcState::EXITED);

  s1.filter().unblock_addr(vip(1));
  cl.run_for(60 * sim::kSecond);
  EXPECT_EQ(c1.find_process(p1)->exit_code(), 0);
}

}  // namespace
}  // namespace zapc
