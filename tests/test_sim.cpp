// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace zapc::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameTimeIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule(10, [&, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  EventId id = e.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, RunUntilAdvancesClock) {
  Engine e;
  int count = 0;
  e.schedule(10, [&] { ++count; });
  e.schedule(100, [&] { ++count; });
  e.run_until(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(e.now(), 50u);
  e.run_until(200);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 200u);
}

TEST(Engine, NestedScheduling) {
  Engine e;
  std::vector<Time> times;
  e.schedule(10, [&] {
    times.push_back(e.now());
    e.schedule(5, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(Engine, ScheduleAtPastClampsToNow) {
  Engine e;
  e.schedule(100, [] {});
  e.run();
  Time fired = 0;
  e.schedule_at(5, [&] { fired = e.now(); });
  e.run();
  EXPECT_EQ(fired, 100u);
}

TEST(Engine, PendingCountExcludesCancelled) {
  Engine e;
  EventId a = e.schedule(10, [] {});
  e.schedule(20, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_TRUE(e.idle());
}

TEST(Engine, MaxEventsBoundsRun) {
  Engine e;
  int count = 0;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] {
    ++count;
    e.schedule(1, tick);
  };
  e.schedule(1, tick);
  u64 executed = e.run(100);
  EXPECT_EQ(executed, 100u);
  EXPECT_EQ(count, 100);
}

}  // namespace
}  // namespace zapc::sim
