// Telemetry subsystem: metrics registry, virtual-time spans, and the
// zapc.obs.v1 JSON evidence exporter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/log.h"

namespace zapc::obs {
namespace {

// ---- Metrics ---------------------------------------------------------------

TEST(Metrics, CounterIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.hits");
  EXPECT_EQ(c.value, 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value, 42u);
  // Same name returns the same object (stable address for caching).
  EXPECT_EQ(&reg.counter("a.hits"), &c);
  EXPECT_EQ(reg.counter("a.hits").value, 42u);
}

TEST(Metrics, GaugeTracksHighWaterMark) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("a.depth");
  g.set(10);
  g.set(3);
  EXPECT_EQ(g.value, 3);
  EXPECT_EQ(g.max_seen, 10);
  g.add(-5);
  EXPECT_EQ(g.value, -2);
  EXPECT_EQ(g.max_seen, 10);
}

TEST(Metrics, HistogramBucketsAndStats) {
  Histogram h(std::vector<u64>{10, 100, 1000});
  h.observe(5);      // bucket 0 (<= 10)
  h.observe(10);     // bucket 0 (boundary inclusive)
  h.observe(500);    // bucket 2
  h.observe(50000);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 0u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5u + 10u + 500u + 50000u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 50000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.counts()[0], 0u);
}

TEST(Metrics, RegistryResetKeepsAddresses) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  Gauge& g = reg.gauge("y");
  Histogram& h = reg.histogram("z");
  c.inc(7);
  g.set(9);
  h.observe(123);
  reg.reset();
  EXPECT_EQ(&reg.counter("x"), &c);
  EXPECT_EQ(&reg.gauge("y"), &g);
  EXPECT_EQ(&reg.histogram("z"), &h);
  EXPECT_EQ(c.value, 0u);
  EXPECT_EQ(g.value, 0);
  EXPECT_EQ(g.max_seen, 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Metrics, SnapshotDiffSubtractsCountersKeepsGauges) {
  MetricsRegistry reg;
  reg.counter("c").inc(10);
  reg.gauge("g").set(5);
  reg.histogram("h", {100}).observe(50);
  MetricsSnapshot before = reg.snapshot();

  reg.counter("c").inc(32);
  reg.gauge("g").set(2);
  reg.histogram("h").observe(70);
  reg.counter("new").inc(1);  // born after the baseline
  MetricsSnapshot diff = reg.snapshot().diff_since(before);

  EXPECT_EQ(diff.counters.at("c"), 32u);
  EXPECT_EQ(diff.counters.at("new"), 1u);
  EXPECT_EQ(diff.gauges.at("g").value, 2);   // level, not a delta
  EXPECT_EQ(diff.gauges.at("g").max_seen, 5);
  EXPECT_EQ(diff.histograms.at("h").count, 1u);
  EXPECT_EQ(diff.histograms.at("h").sum, 70u);
  EXPECT_EQ(diff.histograms.at("h").counts[0], 1u);
}

TEST(Metrics, GlobalRegistryIsStable) {
  Counter& c = metrics().counter("test_obs.global");
  u64 base = c.value;
  metrics().counter("test_obs.global").inc();
  EXPECT_EQ(c.value, base + 1);
}

// ---- Spans -----------------------------------------------------------------

TEST(Spans, ExplicitTimeStamping) {
  SpanRecorder rec;
  SpanId root = rec.begin_at(100, "ckpt", "agent@n1");
  SpanId child = rec.begin_at(120, "ckpt.suspend", "agent@n1", root);
  rec.end_at(150, child);
  rec.event_at(160, "agent@n1", "2a: meta-data reported", root);
  rec.end_at(400, root);

  ASSERT_EQ(rec.spans().size(), 3u);
  const SpanRecord* r = rec.find(root);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->start, 100u);
  EXPECT_EQ(r->end, 400u);
  EXPECT_FALSE(r->open);
  const SpanRecord* c = rec.find(child);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(rec.duration(child), 30u);
  const SpanRecord* e = rec.find_by_name("2a: meta-data reported");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, SpanKind::EVENT);
  EXPECT_EQ(e->start, 160u);
  EXPECT_EQ(e->end, 160u);
}

TEST(Spans, EndIsIdempotentAndInvalidIdsIgnored) {
  SpanRecorder rec;
  SpanId id = rec.begin_at(10, "a", "w");
  rec.end_at(20, id);
  rec.end_at(99, id);  // already closed: ignored
  EXPECT_EQ(rec.find(id)->end, 20u);
  rec.end_at(5, 0);    // id 0 = none
  rec.end_at(5, 777);  // out of range
  EXPECT_EQ(rec.open_spans(), 0u);
}

TEST(Spans, ClockedRaiiNesting) {
  SpanRecorder rec;
  Time now = 1000;
  rec.set_clock([&now] { return now; });
  {
    Span outer(&rec, "outer", "test");
    now = 1100;
    {
      Span inner(&rec, "inner", "test");
      EXPECT_EQ(rec.current(), inner.id());
      now = 1150;
    }
    EXPECT_EQ(rec.current(), outer.id());
    now = 1300;
  }
  EXPECT_EQ(rec.current(), 0u);
  const SpanRecord* outer = rec.find_by_name("outer");
  const SpanRecord* inner = rec.find_by_name("inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(outer->start, 1000u);
  EXPECT_EQ(outer->end, 1300u);
  EXPECT_EQ(inner->start, 1100u);
  EXPECT_EQ(inner->end, 1150u);
}

TEST(Spans, NullRecorderIsNoop) {
  Span s(nullptr, "nothing");
  EXPECT_EQ(s.id(), 0u);
}

TEST(Spans, FindByNameFiltersOnWho) {
  SpanRecorder rec;
  rec.begin_at(1, "ckpt", "agent@n1");
  rec.begin_at(2, "ckpt", "agent@n2");
  EXPECT_EQ(rec.find_by_name("ckpt", "agent@n2")->start, 2u);
  EXPECT_EQ(rec.find_by_name("ckpt")->start, 1u);  // first match
  EXPECT_EQ(rec.find_by_name("ckpt", "agent@n9"), nullptr);
}

TEST(Spans, ClearKeepsClock) {
  SpanRecorder rec;
  rec.set_clock([] { return Time{77}; });
  rec.begin_at(1, "x", "w");
  rec.clear();
  EXPECT_EQ(rec.spans().size(), 0u);
  EXPECT_TRUE(rec.has_clock());
  EXPECT_EQ(rec.now(), 77u);
}

// ---- JSON ------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  std::string text =
      R"({"a":[1,2.5,true,null,"s\n"],"b":{"nested":-7},"c":18446744073709551615})";
  auto parsed = json_parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const Json& j = parsed.value();
  ASSERT_TRUE(j.is_obj());
  const Json* a = j.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_arr());
  ASSERT_EQ(a->size(), 5u);
  EXPECT_EQ(a->items()[0].num_u64(), 1u);
  EXPECT_DOUBLE_EQ(a->items()[1].num(), 2.5);
  EXPECT_TRUE(a->items()[2].boolean());
  EXPECT_TRUE(a->items()[3].is_null());
  EXPECT_EQ(a->items()[4].str(), "s\n");
  EXPECT_EQ(j.find("b")->find("nested")->num_i64(), -7);

  // dump → parse → dump is byte-stable (sorted keys, fixed formats).
  std::string once = j.dump();
  auto again = json_parse(once);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().dump(), once);
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(json_parse("{").is_ok());
  EXPECT_FALSE(json_parse("[1,]").is_ok());
  EXPECT_FALSE(json_parse("{\"a\":1} trailing").is_ok());
  EXPECT_FALSE(json_parse("nul").is_ok());
  EXPECT_FALSE(json_parse("\"unterminated").is_ok());
}

TEST(Json, IntegralDoublesPrintAsIntegers) {
  Json j = Json::object();
  j["n"] = u64{123456789};
  j["f"] = 0.5;
  EXPECT_EQ(j.dump(), R"({"f":0.5,"n":123456789})");
}

TEST(Json, SnapshotRoundTrip) {
  MetricsRegistry reg;
  reg.counter("net.tcp.retransmits").inc(3);
  reg.gauge("sim.queue_depth").set(11);
  reg.gauge("sim.queue_depth").set(4);
  reg.histogram("agent.ckpt.suspend_us", {100, 1000}).observe(250);
  MetricsSnapshot snap = reg.snapshot();

  Json j = snapshot_to_json(snap);
  auto back = snapshot_from_json(j);
  ASSERT_TRUE(back.is_ok()) << back.status().message();
  const MetricsSnapshot& s = back.value();
  EXPECT_EQ(s.counters.at("net.tcp.retransmits"), 3u);
  EXPECT_EQ(s.gauges.at("sim.queue_depth").value, 4);
  EXPECT_EQ(s.gauges.at("sim.queue_depth").max_seen, 11);
  const HistogramValue& h = s.histograms.at("agent.ckpt.suspend_us");
  ASSERT_EQ(h.bounds, (std::vector<u64>{100, 1000}));
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 250u);

  // Serialization is deterministic.
  EXPECT_EQ(snapshot_to_json(s).dump(), j.dump());
}

TEST(Json, EvidenceSchema) {
  MetricsRegistry reg;
  reg.counter("net.filter.dropped").inc(2);
  SpanRecorder rec;
  SpanId root = rec.begin_at(10, "ckpt", "agent@n1");
  rec.event_at(15, "agent@n1", "note", root);
  rec.end_at(90, root);
  SpanId open = rec.begin_at(95, "restart", "agent@n1");
  (void)open;

  Json doc = evidence_json("unit", reg.snapshot(), &rec);
  // Validate against the exporter's own parser.
  auto parsed = json_parse(doc.dump(2));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const Json& j = parsed.value();
  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->str(), kSchemaVersion);
  EXPECT_EQ(j.find("name")->str(), "unit");
  const Json* m = j.find("metrics");
  ASSERT_NE(m, nullptr);
  ASSERT_NE(m->find("counters"), nullptr);
  EXPECT_EQ(m->find("counters")->find("net.filter.dropped")->num_u64(), 2u);
  const Json* spans = j.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 3u);
  const Json& s0 = spans->items()[0];
  EXPECT_EQ(s0.find("name")->str(), "ckpt");
  EXPECT_EQ(s0.find("who")->str(), "agent@n1");
  EXPECT_EQ(s0.find("kind")->str(), "span");
  EXPECT_EQ(s0.find("start_us")->num_u64(), 10u);
  EXPECT_EQ(s0.find("end_us")->num_u64(), 90u);
  EXPECT_EQ(s0.find("open"), nullptr);  // closed spans omit the flag
  EXPECT_EQ(spans->items()[1].find("kind")->str(), "event");
  const Json& s2 = spans->items()[2];
  ASSERT_NE(s2.find("open"), nullptr);
  EXPECT_TRUE(s2.find("open")->boolean());

  // Without a recorder the spans section is omitted entirely.
  Json no_spans = evidence_json("unit", reg.snapshot());
  EXPECT_EQ(no_spans.find("spans"), nullptr);
}

// ---- Causal op ids ---------------------------------------------------------

TEST(OpIds, MintedIdsAreUniqueAndStampSpans) {
  OpId a = next_op_id();
  OpId b = next_op_id();
  EXPECT_NE(a, 0u);
  EXPECT_EQ(b, a + 1);

  SpanRecorder rec;
  SpanId root = rec.begin_at(10, "mgr.ckpt", "manager", 0, a);
  SpanId ev = rec.event_at(20, "manager", "mgr.continue", root, a);
  EXPECT_NE(ev, 0u);  // events return their id (cross-node parents)
  EXPECT_EQ(rec.find(root)->op, a);
  EXPECT_EQ(rec.find(ev)->op, a);
  EXPECT_EQ(rec.find(ev)->parent, root);
}

TEST(OpIds, InnermostOpenFindsTheFailingPhase) {
  SpanRecorder rec;
  OpId op = next_op_id();
  SpanId root = rec.begin_at(10, "ckpt", "agent@n1", 0, op);
  SpanId phase = rec.begin_at(20, "ckpt.netckpt", "agent@n1", root, op);
  rec.begin_at(5, "ckpt", "agent@n2", 0, next_op_id());  // other op
  ASSERT_NE(rec.innermost_open(op), nullptr);
  EXPECT_EQ(rec.innermost_open(op)->name, "ckpt.netckpt");
  rec.end_at(30, phase);
  EXPECT_EQ(rec.innermost_open(op)->name, "ckpt");
  rec.end_at(40, root);
  EXPECT_EQ(rec.innermost_open(op), nullptr);
}

TEST(Json, SpansFromJsonRoundTripsOpsAndParents) {
  SpanRecorder rec;
  OpId op = next_op_id();
  SpanId root = rec.begin_at(10, "ckpt", "agent@n1", 0, op);
  rec.event_at(15, "agent@n1", "net.sock.saved local=1.2.3.4:5 "
                               "remote=4.3.2.1:6 sent=9 acked=9 recv=3",
               root, op);
  rec.end_at(90, root);
  rec.begin_at(95, "restart", "agent@n1");  // op-less, left open

  Json arr = spans_to_json(rec);
  auto parsed = json_parse(arr.dump());
  ASSERT_TRUE(parsed.is_ok());
  auto back = spans_from_json(parsed.value());
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const std::vector<SpanRecord>& spans = back.value();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].op, op);
  EXPECT_EQ(spans[0].name, "ckpt");
  EXPECT_FALSE(spans[0].open);
  EXPECT_EQ(spans[1].kind, SpanKind::EVENT);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].op, op);
  EXPECT_EQ(spans[2].op, 0u);  // "op" omitted → parsed as 0
  EXPECT_TRUE(spans[2].open);
}

// ---- Flight recorder -------------------------------------------------------

TEST(Flight, RingIsBoundedAndUpdatesSpansOnClose) {
  FlightRecorder fr;
  fr.set_capacity(8);
  SpanRecord s;
  s.id = 1;
  s.name = "ckpt";
  s.who = "agent@n1";
  s.start = 10;
  s.open = true;
  fr.note_span(s);
  for (u32 i = 2; i <= 20; ++i) {
    SpanRecord e;
    e.id = i;
    e.kind = SpanKind::EVENT;
    e.name = "e" + std::to_string(i);
    e.start = i;
    fr.note_span(e);
  }
  EXPECT_LE(fr.size(), 8u);
  fr.note_log("[WARN @99us] something");
  EXPECT_LE(fr.size(), 9u);  // log lines ride in their own deque
}

TEST(Flight, RingWraparoundEvictsOldestAndPostmortemStaysWellFormed) {
  FlightRecorder fr;
  fr.set_dir(::testing::TempDir() + "zapc_flight_wrap");
  fr.set_capacity(32);

  // A long-lived span opened before the flood: evicted once the ring
  // wraps.
  SpanRecord early;
  early.id = 1;
  early.name = "ckpt";
  early.who = "agent@n1";
  early.start = 5;
  early.open = true;
  fr.note_span(early);

  // Sustained event load, far beyond capacity (a beacon storm).
  constexpr u32 kEvents = 1000;
  for (u32 i = 0; i < kEvents; ++i) {
    SpanRecord e;
    e.id = i + 2;
    e.kind = SpanKind::EVENT;
    e.name = "hb seq=" + std::to_string(i);
    e.who = "agent@n1";
    e.start = 10 + i;
    e.op = 42;
    fr.note_span(e);
  }
  EXPECT_EQ(fr.size(), 32u);

  // The evicted span's close cannot update in place any more; it must
  // append as a fresh (closed) record, still bounded.
  SpanRecord closed = early;
  closed.open = false;
  closed.end = 5000;
  fr.note_span(closed);
  EXPECT_EQ(fr.size(), 32u);

  std::string path = fr.dump_postmortem("ckpt_fail", 42, "manager",
                                        "ckpt.stream", "beacon storm", 5000);
  ASSERT_FALSE(path.empty());
  auto parsed = json_parse(fr.last_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Json& doc = parsed.value();
  EXPECT_EQ(doc.find("schema")->str(), kPostmortemSchemaVersion);

  // The spans section holds exactly the ring: the newest events plus the
  // re-appended close, and none of the flood's early entries.
  const Json* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 32u);
  bool saw_oldest = false, saw_newest = false, saw_closed = false;
  for (const Json& s : spans->items()) {
    const std::string& name = s.find("name")->str();
    if (name == "hb seq=0") saw_oldest = true;
    if (name == "hb seq=" + std::to_string(kEvents - 1)) saw_newest = true;
    if (name == "ckpt") {
      saw_closed = true;
      EXPECT_EQ(s.find("end_us")->num_u64(), 5000u);
    }
  }
  EXPECT_FALSE(saw_oldest);
  EXPECT_TRUE(saw_newest);
  EXPECT_TRUE(saw_closed);

  // The round-trips the analyzer does must survive the wrap: every
  // retained record parses back into a SpanRecord.
  auto recs = spans_from_json(*spans);
  ASSERT_TRUE(recs.is_ok()) << recs.status().to_string();
  EXPECT_EQ(recs.value().size(), 32u);
}

TEST(Flight, PostmortemDumpHasSchemaOpAndPhase) {
  FlightRecorder fr;
  fr.set_dir(::testing::TempDir() + "zapc_flight_test");

  SpanRecorder rec;
  OpId op = next_op_id();
  SpanId root = rec.begin_at(100, "ckpt", "agent@n1", 0, op);
  rec.begin_at(120, "ckpt.netckpt", "agent@n1", root, op);

  std::string phase;
  if (const SpanRecord* inner = rec.innermost_open(op)) phase = inner->name;
  std::string path =
      fr.dump_postmortem("ckpt_abort", op, "agent@n1", phase,
                         "injected failure", 130);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path, fr.last_path());
  EXPECT_EQ(fr.dumps_written(), 1u);

  auto parsed = json_parse(fr.last_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Json& j = parsed.value();
  EXPECT_EQ(j.find("schema")->str(), kPostmortemSchemaVersion);
  EXPECT_EQ(j.find("kind")->str(), "ckpt_abort");
  EXPECT_EQ(j.find("op_id")->num_u64(), op);
  EXPECT_EQ(j.find("phase")->str(), "ckpt.netckpt");
  EXPECT_EQ(j.find("reason")->str(), "injected failure");
  EXPECT_EQ(j.find("time_us")->num_u64(), 130u);
  ASSERT_NE(j.find("metrics"), nullptr);
}

TEST(Flight, GlobalRecorderCapturesWarnLogLines) {
  flight().clear();
  std::size_t before = flight().size();
  ZLOG_WARN("test_obs: flight log capture check");
  EXPECT_GT(flight().size(), before);
}

}  // namespace
}  // namespace zapc::obs
