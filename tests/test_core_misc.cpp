// Control-plane units and edge cases: message channels, protocol
// round-trips, connectivity corner cases (pending accepts, shared ports),
// failure injection (corrupt/missing images), time virtualization across
// a full checkpoint-restart, and the NETWORK_LAST ordering path.
#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/channel.h"
#include "core/manager.h"
#include "core/protocol.h"
#include "net/tcp.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"

namespace zapc::core {
namespace {

using test::EchoClient;
using test::EchoServer;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

// ---- MsgChannel -----------------------------------------------------------------

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() {
    n1_ = &cl_.add_node("n1");
    n2_ = &cl_.add_node("n2");
  }
  os::Cluster cl_;
  os::Node* n1_;
  os::Node* n2_;
};

TEST_F(ChannelTest, MessagesArriveFramedAndInOrder) {
  std::vector<std::string> got;
  std::unique_ptr<MsgChannel> server_ch;
  MsgServer server(n2_->host_stack(), 9000,
                   [&](std::unique_ptr<MsgChannel> ch) {
                     server_ch = std::move(ch);
                     server_ch->set_on_msg([&](Bytes msg) {
                       got.push_back(to_string(msg));
                     });
                   });
  auto client = connect_channel(n1_->host_stack(),
                                net::SockAddr{n2_->addr(), 9000});
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->send(to_bytes("alpha")).is_ok());
  ASSERT_TRUE(client->send(to_bytes("beta")).is_ok());
  ASSERT_TRUE(client->send(Bytes{}).is_ok());  // empty message is legal
  cl_.run_for(100 * sim::kMillisecond);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "alpha");
  EXPECT_EQ(got[1], "beta");
  EXPECT_EQ(got[2], "");
}

TEST_F(ChannelTest, LargeMessageCrossesIntact) {
  Bytes big(3 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<u8>(i * 13);
  }
  Bytes got;
  std::unique_ptr<MsgChannel> server_ch;
  MsgServer server(n2_->host_stack(), 9000,
                   [&](std::unique_ptr<MsgChannel> ch) {
                     server_ch = std::move(ch);
                     server_ch->set_on_msg([&](Bytes msg) {
                       got = std::move(msg);
                     });
                   });
  auto client = connect_channel(n1_->host_stack(),
                                net::SockAddr{n2_->addr(), 9000});
  ASSERT_TRUE(client->send(big).is_ok());
  cl_.run_for(2 * sim::kSecond);
  EXPECT_EQ(got, big);
}

TEST_F(ChannelTest, PeerCloseTriggersOnClosed) {
  bool closed = false;
  std::unique_ptr<MsgChannel> server_ch;
  MsgServer server(n2_->host_stack(), 9000,
                   [&](std::unique_ptr<MsgChannel> ch) {
                     server_ch = std::move(ch);
                     server_ch->set_on_closed([&] { closed = true; });
                   });
  auto client = connect_channel(n1_->host_stack(),
                                net::SockAddr{n2_->addr(), 9000});
  ASSERT_TRUE(client->send(to_bytes("hello")).is_ok());
  cl_.run_for(50 * sim::kMillisecond);
  client->close();
  cl_.run_for(50 * sim::kMillisecond);
  EXPECT_TRUE(closed);
}

TEST_F(ChannelTest, SendAfterCloseFails) {
  auto client = connect_channel(n1_->host_stack(),
                                net::SockAddr{n2_->addr(), 9000});
  client->close();
  EXPECT_EQ(client->send(to_bytes("x")).err(), Err::PIPE);
}

// ---- Protocol round trips -----------------------------------------------------

TEST(Protocol, CheckpointCmdRoundTrip) {
  CheckpointCmd m;
  m.pod_name = "pod-a";
  m.dest_uri = "agent://192.168.1.5:7077/tag";
  m.mode = CkptMode::MIGRATE;
  m.redirect_send_queues = true;
  m.fs_snapshot = true;
  m.peer_agents.emplace_back(vip(3),
                             net::SockAddr{net::IpAddr(192, 168, 1, 9), 7077});
  auto back = decode_checkpoint_cmd(encode_checkpoint_cmd(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().pod_name, "pod-a");
  EXPECT_EQ(back.value().mode, CkptMode::MIGRATE);
  EXPECT_TRUE(back.value().redirect_send_queues);
  EXPECT_TRUE(back.value().fs_snapshot);
  ASSERT_EQ(back.value().peer_agents.size(), 1u);
  EXPECT_EQ(back.value().peer_agents[0].first, vip(3));
}

TEST(Protocol, RestartCmdRoundTrip) {
  RestartCmd m;
  m.pod_name = "pod-b";
  m.source_uri = "stream://tag";
  m.meta.pod_vip = vip(2);
  ckpt::NetMetaEntry e;
  e.sock = 4;
  e.role = ckpt::PeerRole::ACCEPT;
  e.discard_send = 99;
  m.meta.entries.push_back(e);
  m.locations.emplace_back(vip(2), net::IpAddr(192, 168, 1, 7));
  auto back = decode_restart_cmd(encode_restart_cmd(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().meta.entries[0].discard_send, 99u);
  EXPECT_EQ(back.value().locations[0].second, net::IpAddr(192, 168, 1, 7));
}

TEST(Protocol, TypeMismatchRejected) {
  Bytes msg = encode_continue();
  EXPECT_EQ(decode_ckpt_done(msg).err(), Err::PROTO);
  EXPECT_EQ(peek_type(msg).value(), MsgType::CONTINUE);
  EXPECT_EQ(peek_type(Bytes{}).err(), Err::PROTO);
}

TEST(Protocol, RedirectDataRoundTrip) {
  RedirectData m;
  m.dst_pod_vip = vip(1);
  m.dst_local = net::SockAddr{vip(1), 80};
  m.dst_remote = net::SockAddr{vip(2), 8080};
  m.sender_acked = 777;
  m.data = to_bytes("queued payload");
  auto back = decode_redirect_data(encode_redirect_data(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().sender_acked, 777u);
  EXPECT_EQ(to_string(back.value().data), "queued payload");
}

// ---- Full-stack corner cases -----------------------------------------------------

class CornerTest : public ::testing::Test {
 protected:
  CornerTest() {
    mgr_node_ = &cl_.add_node("mgr");
    for (int i = 0; i < 4; ++i) {
      nodes_.push_back(&cl_.add_node("n" + std::to_string(i + 1)));
      agents_.push_back(std::make_unique<Agent>(*nodes_.back()));
    }
    manager_ = std::make_unique<Manager>(*mgr_node_);
  }

  Manager::CheckpointReport checkpoint(std::vector<Manager::Target> t,
                                       CkptMode mode = CkptMode::SNAPSHOT) {
    Manager::CheckpointReport out;
    bool done = false;
    manager_->checkpoint(std::move(t), mode, [&](auto r) {
      out = std::move(r);
      done = true;
    });
    for (int i = 0; i < 30000 && !done; ++i) cl_.run_for(sim::kMillisecond);
    return out;
  }

  Manager::RestartReport restart(std::vector<Manager::Target> t) {
    Manager::RestartReport out;
    bool done = false;
    manager_->restart(std::move(t), {}, [&](auto r) {
      out = std::move(r);
      done = true;
    });
    for (int i = 0; i < 60000 && !done; ++i) cl_.run_for(sim::kMillisecond);
    return out;
  }

  os::Cluster cl_;
  os::Node* mgr_node_;
  std::vector<os::Node*> nodes_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unique_ptr<Manager> manager_;
};

TEST_F(CornerTest, CorruptImageFailsGracefully) {
  pod::Pod& sp = agents_[0]->create_pod(vip(1), "p1");
  sp.spawn(std::make_unique<test::CounterProgram>(1000000, 100));
  cl_.run_for(10 * sim::kMillisecond);
  auto cr = checkpoint({{agents_[0]->addr(), "p1", "san://ckpt/p1"}});
  ASSERT_TRUE(cr.ok);

  // Corrupt the stored image.
  Bytes img = cl_.san().read("ckpt/p1").value();
  img[img.size() / 2] ^= 0xFF;
  cl_.san().write("ckpt/p1", img);

  ASSERT_TRUE(agents_[0]->destroy_pod("p1").is_ok());
  auto rr = restart({{agents_[1]->addr(), "p1", "san://ckpt/p1"}});
  EXPECT_FALSE(rr.ok);
  // No half-restored pod lingers.
  EXPECT_EQ(agents_[1]->find_pod("p1"), nullptr);
}

TEST_F(CornerTest, MissingImageFailsGracefully) {
  auto rr = restart({{agents_[0]->addr(), "ghost", "san://nowhere"}});
  EXPECT_FALSE(rr.ok);
}

TEST_F(CornerTest, NetworkLastOrderingStillCorrect) {
  for (auto& a : agents_) a->set_ordering(CkptOrdering::NETWORK_LAST);
  pod::Pod& sp = agents_[0]->create_pod(vip(1), "server-pod");
  sp.spawn(std::make_unique<EchoServer>(5000));
  pod::Pod& cp = agents_[1]->create_pod(vip(2), "client-pod");
  i32 cpid = cp.spawn(std::make_unique<EchoClient>(
      net::SockAddr{vip(1), 5000}, 4 << 20));
  cl_.run_for(20 * sim::kMillisecond);

  auto cr = checkpoint({
      {agents_[0]->addr(), "server-pod", "san://ckpt/s"},
      {agents_[1]->addr(), "client-pod", "san://ckpt/c"},
  });
  ASSERT_TRUE(cr.ok) << cr.error;

  // Crash + restart from the NETWORK_LAST images: still fully correct.
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  auto rr = restart({
      {agents_[2]->addr(), "server-pod", "san://ckpt/s"},
      {agents_[3]->addr(), "client-pod", "san://ckpt/c"},
  });
  ASSERT_TRUE(rr.ok) << rr.error;
  for (int i = 0; i < 12000; ++i) {
    cl_.run_for(10 * sim::kMillisecond);
    pod::Pod* p = agents_[3]->find_pod("client-pod");
    os::Process* proc = p->find_process(cpid);
    if (proc->state() == os::ProcState::EXITED) {
      EXPECT_EQ(proc->exit_code(), 0);
      return;
    }
  }
  FAIL() << "client did not finish";
}

TEST_F(CornerTest, PendingAcceptSurvivesRestart) {
  // A connection sitting un-accepted in the listener's queue at
  // checkpoint time must be back in the queue after restart.
  pod::Pod& sp = agents_[0]->create_pod(vip(1), "lsn-pod");
  // Guest creates the listener but never accepts.
  class LazyListener final : public os::Program {
   public:
    const char* kind() const override { return "test.lazy_listener"; }
    os::StepResult step(os::Syscalls& sys) override {
      if (pc_ == 0) {
        auto fd = sys.socket(net::Proto::TCP);
        lfd_ = fd.value_or(-1);
        (void)sys.bind(lfd_, net::SockAddr{net::kAnyAddr, 5000});
        (void)sys.listen(lfd_, 8);
        pc_ = 1;
      }
      return os::StepResult::block(os::WaitSpec::sleep(sim::kSecond));
    }
    void save(Encoder& e) const override {
      e.put_u32(pc_);
      e.put_i32(lfd_);
    }
    void load(Decoder& d) override {
      pc_ = d.u32_().value_or(0);
      lfd_ = d.i32_().value_or(-1);
    }

   private:
    u32 pc_ = 0;
    i32 lfd_ = -1;
  };
  os::ProgramRegistry::instance().add("test.lazy_listener", [] {
    return std::make_unique<LazyListener>();
  });
  sp.spawn(std::make_unique<LazyListener>());

  pod::Pod& cp = agents_[1]->create_pod(vip(2), "conn-pod");
  cp.spawn(std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 100));
  cl_.run_for(50 * sim::kMillisecond);

  // Verify the child is queued un-accepted.
  bool pending = false;
  for (net::SockId sid : sp.stack().all_socket_ids()) {
    net::TcpSocket* t = sp.stack().find_tcp(sid);
    if (t != nullptr && t->is_listener() && t->accept_queue_len() == 1) {
      pending = true;
    }
  }
  ASSERT_TRUE(pending);

  auto cr = checkpoint({
      {agents_[0]->addr(), "lsn-pod", "san://ckpt/l"},
      {agents_[1]->addr(), "conn-pod", "san://ckpt/c"},
  });
  ASSERT_TRUE(cr.ok) << cr.error;
  ASSERT_TRUE(agents_[0]->destroy_pod("lsn-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("conn-pod").is_ok());
  auto rr = restart({
      {agents_[2]->addr(), "lsn-pod", "san://ckpt/l"},
      {agents_[3]->addr(), "conn-pod", "san://ckpt/c"},
  });
  ASSERT_TRUE(rr.ok) << rr.error;

  pod::Pod* restored = agents_[2]->find_pod("lsn-pod");
  ASSERT_NE(restored, nullptr);
  bool requeued = false;
  for (net::SockId sid : restored->stack().all_socket_ids()) {
    net::TcpSocket* t = restored->stack().find_tcp(sid);
    if (t != nullptr && t->is_listener() && t->accept_queue_len() == 1) {
      requeued = true;
    }
  }
  EXPECT_TRUE(requeued);
}

TEST_F(CornerTest, TimeVirtualizationAcrossRestart) {
  pod::Pod& sp = agents_[0]->create_pod(vip(1), "timer-pod");
  // A guest that records virtual timestamps before and after a long
  // downtime window.
  class Stamper final : public os::Program {
   public:
    const char* kind() const override { return "test.stamper"; }
    os::StepResult step(os::Syscalls& sys) override {
      Bytes& reg = sys.region("stamps", 64);
      if (pc_ == 0) {
        Encoder e;
        e.put_u64(sys.time());
        std::copy(e.bytes().begin(), e.bytes().end(), reg.begin());
        pc_ = 1;
        return os::StepResult::block(os::WaitSpec::sleep(5000));
      }
      Encoder e;
      e.put_u64(sys.time());
      std::copy(e.bytes().begin(), e.bytes().end(), reg.begin() + 8);
      return os::StepResult::exit(0);
    }
    void save(Encoder& e) const override { e.put_u32(pc_); }
    void load(Decoder& d) override { pc_ = d.u32_().value_or(0); }

   private:
    u32 pc_ = 0;
  };
  os::ProgramRegistry::instance().add("test.stamper", [] {
    return std::make_unique<Stamper>();
  });
  i32 pid = sp.spawn(std::make_unique<Stamper>());

  cl_.run_for(2 * sim::kMillisecond);  // first stamp taken, now sleeping
  auto cr = checkpoint({{agents_[0]->addr(), "timer-pod", "san://ckpt/t"}},
                       CkptMode::MIGRATE);
  ASSERT_TRUE(cr.ok) << cr.error;

  cl_.run_for(60 * sim::kSecond);  // long downtime before the restart
  auto rr = restart({{agents_[1]->addr(), "timer-pod", "san://ckpt/t"}});
  ASSERT_TRUE(rr.ok) << rr.error;
  cl_.run_for(2 * sim::kSecond);

  pod::Pod* restored = agents_[1]->find_pod("timer-pod");
  os::Process* p = restored->find_process(pid);
  ASSERT_EQ(p->state(), os::ProcState::EXITED);
  Decoder d(p->regions().at("stamps"));
  u64 before = d.u64_().value();
  u64 after = d.u64_().value();
  // The pod-visible clock never exposes the 60-second downtime: the
  // second stamp is just the sleep (plus scheduling slack) after the
  // first.
  EXPECT_GE(after, before + 5000);
  EXPECT_LT(after - before, sim::kSecond);
}

}  // namespace
}  // namespace zapc::core
