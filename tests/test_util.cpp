// Unit tests for util: serialization, records, crc32, status, rng.
#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace zapc {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.err(), Err::OK);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesMessage) {
  Status s(Err::WOULD_BLOCK, "queue empty");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "WOULD_BLOCK: queue empty");
}

TEST(Result, ValueRoundTrip) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorPropagates) {
  Result<int> r(Err::NO_ENT, "missing");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.err(), Err::NO_ENT);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(EncoderDecoder, PrimitivesRoundTrip) {
  Encoder e;
  e.put_u8(0xAB);
  e.put_u16(0xBEEF);
  e.put_u32(0xDEADBEEF);
  e.put_u64(0x0123456789ABCDEFull);
  e.put_i32(-123456);
  e.put_i64(-9876543210LL);
  e.put_bool(true);
  e.put_f64(3.14159265358979);
  e.put_string("hello");
  e.put_bytes(Bytes{1, 2, 3});

  Decoder d(e.bytes());
  EXPECT_EQ(d.u8_().value(), 0xAB);
  EXPECT_EQ(d.u16_().value(), 0xBEEF);
  EXPECT_EQ(d.u32_().value(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64_().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(d.i32_().value(), -123456);
  EXPECT_EQ(d.i64_().value(), -9876543210LL);
  EXPECT_TRUE(d.bool_().value());
  EXPECT_DOUBLE_EQ(d.f64_().value(), 3.14159265358979);
  EXPECT_EQ(d.string_().value(), "hello");
  EXPECT_EQ(d.bytes_().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(d.at_end());
}

TEST(EncoderDecoder, ShortBufferFailsCleanly) {
  Encoder e;
  e.put_u16(7);
  Decoder d(e.bytes());
  EXPECT_TRUE(d.u32_().err() == Err::PROTO);
}

TEST(EncoderDecoder, TruncatedStringFails) {
  Encoder e;
  e.put_u32(100);  // claims 100 bytes, provides none
  Decoder d(e.bytes());
  EXPECT_EQ(d.string_().err(), Err::PROTO);
}

TEST(Records, WriteReadRoundTrip) {
  RecordWriter w;
  Encoder p1;
  p1.put_string("pod-a");
  w.write(RecordTag::IMAGE_HEADER, 1, std::move(p1));
  Encoder p2;
  p2.put_u32(99);
  w.write(RecordTag::PROCESS, 2, std::move(p2));

  RecordReader r(w.bytes());
  auto rec1 = r.next();
  ASSERT_TRUE(rec1.is_ok());
  EXPECT_EQ(rec1.value().tag, RecordTag::IMAGE_HEADER);
  EXPECT_EQ(rec1.value().version, 1);
  auto rec2 = r.next();
  ASSERT_TRUE(rec2.is_ok());
  EXPECT_EQ(rec2.value().tag, RecordTag::PROCESS);
  Decoder d(rec2.value().payload);
  EXPECT_EQ(d.u32_().value(), 99u);
  EXPECT_EQ(r.next().err(), Err::NO_ENT);
}

TEST(Records, CorruptionDetected) {
  RecordWriter w;
  Encoder p;
  p.put_string("payload data here");
  w.write(RecordTag::MEM_REGION, 1, std::move(p));
  Bytes image = w.take();
  image[image.size() / 2] ^= 0xFF;  // flip a payload bit

  RecordReader r(image);
  EXPECT_EQ(r.next().err(), Err::PROTO);
}

TEST(Records, TruncatedImageDetected) {
  RecordWriter w;
  Encoder p;
  p.put_bytes(Bytes(1000, 7));
  w.write(RecordTag::MEM_REGION, 1, std::move(p));
  Bytes image = w.take();
  image.resize(image.size() - 10);

  RecordReader r(image);
  EXPECT_EQ(r.next().err(), Err::PROTO);
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  Bytes b{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(b), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(Bytes{}), 0u); }

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangeBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    i64 v = r.range(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace zapc
