// Application workload tests: the four paper benchmarks complete
// correctly, and — the core end-to-end property — survive coordinated
// checkpoint-restart (including migration) mid-execution with correct
// final results.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/bratu.h"
#include "apps/bt.h"
#include "apps/cpi.h"
#include "apps/launcher.h"
#include "apps/ray.h"
#include "apps/ray_scene.h"
#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"

namespace zapc::apps {
namespace {

/// Test cluster with agents on every node and a manager node.
struct TestRig {
  os::Cluster cl;
  os::Node* mgr_node;
  std::vector<core::Agent*> agents;
  std::vector<std::unique_ptr<core::Agent>> agent_store;
  std::unique_ptr<core::Manager> manager;

  explicit TestRig(int nodes) {
    mgr_node = &cl.add_node("mgr");
    for (int i = 0; i < nodes; ++i) {
      os::Node& n = cl.add_node("n" + std::to_string(i + 1));
      agent_store.push_back(std::make_unique<core::Agent>(n));
      agents.push_back(agent_store.back().get());
    }
    manager = std::make_unique<core::Manager>(*mgr_node);
  }

  /// Runs until the job finishes; returns its worst exit code.
  i32 run_job(const JobHandle& job, sim::Time budget = 300 * sim::kSecond) {
    for (sim::Time t = 0; t < budget; t += 20 * sim::kMillisecond) {
      cl.run_for(20 * sim::kMillisecond);
      if (job.finished()) return job.exit_code();
    }
    return -1;
  }

  /// Synchronous wrapper around Manager::checkpoint.
  core::Manager::CheckpointReport checkpoint(
      const std::vector<core::Manager::Target>& targets,
      core::CkptMode mode = core::CkptMode::SNAPSHOT) {
    core::Manager::CheckpointReport out;
    bool done = false;
    manager->checkpoint(targets, mode, [&](auto r) {
      out = std::move(r);
      done = true;
    });
    for (int i = 0; i < 60000 && !done; ++i) {
      cl.run_for(sim::kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }

  core::Manager::RestartReport restart(
      const std::vector<core::Manager::Target>& targets) {
    core::Manager::RestartReport out;
    bool done = false;
    manager->restart(targets, {}, [&](auto r) {
      out = std::move(r);
      done = true;
    });
    for (int i = 0; i < 60000 && !done; ++i) {
      cl.run_for(sim::kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }
};

CpiProgram::Params cpi_params(i32 rank, i32 size) {
  CpiProgram::Params p;
  p.rank = rank;
  p.size = size;
  p.intervals = 4'000'000;
  p.rounds = 2;
  return p;
}

JobHandle launch_cpi(TestRig& rig, i32 nranks) {
  return launch_mpi_job(rig.agents, "cpi", nranks, [&](i32 r) {
    return std::make_unique<CpiProgram>(cpi_params(r, nranks));
  });
}

TEST(Apps, CpiComputesPi) {
  TestRig rig(4);
  JobHandle job = launch_cpi(rig, 4);
  EXPECT_EQ(rig.run_job(job), 0);
  auto out = rig.cl.san().read("results/cpi");
  ASSERT_TRUE(out.is_ok());
  Decoder d(out.value());
  EXPECT_NEAR(d.f64_().value(), M_PI, 1e-6);
}

TEST(Apps, CpiSingleRank) {
  TestRig rig(1);
  JobHandle job = launch_cpi(rig, 1);
  EXPECT_EQ(rig.run_job(job), 0);
}

TEST(Apps, BratuConverges) {
  TestRig rig(4);
  BratuProgram::Params base;
  base.n = 96;
  base.iterations = 300;
  base.size = 4;
  JobHandle job = launch_mpi_job(rig.agents, "bratu", 4, [&](i32 r) {
    BratuProgram::Params p = base;
    p.rank = r;
    return std::make_unique<BratuProgram>(p);
  });
  EXPECT_EQ(rig.run_job(job), 0);
  auto out = rig.cl.san().read("results/bratu");
  ASSERT_TRUE(out.is_ok());
  Decoder d(out.value());
  double residual = d.f64_().value();
  EXPECT_LT(residual, 1.0);
  EXPECT_TRUE(std::isfinite(residual));
}

TEST(Apps, BratuResidualIndependentOfRankCount) {
  // Decomposition correctness: 1-rank and 3-rank runs converge to the
  // same residual trajectory endpoint.
  double res[2];
  for (int trial = 0; trial < 2; ++trial) {
    i32 nr = trial == 0 ? 1 : 3;
    TestRig rig(static_cast<int>(nr));
    BratuProgram::Params base;
    base.n = 48;
    base.iterations = 100;
    base.reduce_every = 100;  // only the final reduce
    base.size = nr;
    JobHandle job = launch_mpi_job(rig.agents, "bratu", nr, [&](i32 r) {
      BratuProgram::Params p = base;
      p.rank = r;
      return std::make_unique<BratuProgram>(p);
    });
    EXPECT_EQ(rig.run_job(job), 0);
    Bytes out = rig.cl.san().read("results/bratu").value();
    Decoder d(out);
    res[trial] = d.f64_().value();
  }
  EXPECT_NEAR(res[0], res[1], 1e-9 + 1e-6 * std::abs(res[0]));
}

TEST(Apps, BtDiffusionDecays) {
  TestRig rig(4);
  BtProgram::Params base;
  base.n = 128;
  base.steps = 20;
  base.size = 4;
  JobHandle job = launch_mpi_job(rig.agents, "bt", 4, [&](i32 r) {
    BtProgram::Params p = base;
    p.rank = r;
    return std::make_unique<BtProgram>(p);
  });
  EXPECT_EQ(rig.run_job(job), 0);
  Bytes out = rig.cl.san().read("results/bt").value();
  Decoder d(out);
  double final_norm = d.f64_().value();
  double initial_norm = d.f64_().value();
  EXPECT_LT(final_norm, initial_norm);
  EXPECT_GT(final_norm, 0.0);
}

TEST(Apps, RayTracerRendersScene) {
  TestRig rig(4);
  RayMaster::Params mp;
  mp.workers = 3;
  mp.width = 160;
  mp.height = 120;
  JobHandle job = launch_pvm_job(
      rig.agents, "ray", 3,
      [&] { return std::make_unique<RayMaster>(mp); },
      [&](i32) {
        RayWorker::Params wp;
        wp.master = net::SockAddr{job_vips(4)[0], mp.port};
        wp.width = mp.width;
        wp.cost_per_row = 50;
        return std::make_unique<RayWorker>(wp);
      });
  EXPECT_EQ(rig.run_job(job), 0);
  auto img = rig.cl.san().read("results/ray.ppm");
  ASSERT_TRUE(img.is_ok());
  EXPECT_EQ(img.value().size(), 160u * 120u * 3u);
}

TEST(Apps, RayRenderingIsDeterministic) {
  Bytes a(64 * 8 * 3), b(64 * 8 * 3);
  ray::render_band(64, 48, 8, 16, a.data());
  ray::render_band(64, 48, 8, 16, b.data());
  EXPECT_EQ(a, b);
}

// ---- Checkpoint-restart of real applications --------------------------------

TEST(Apps, CpiSurvivesCheckpointRestartMigration) {
  TestRig rig(8);  // 4 source + 4 destination nodes
  std::vector<core::Agent*> src(rig.agents.begin(), rig.agents.begin() + 4);
  JobHandle job = launch_mpi_job(rig.agents, "cpi", 4, [&](i32 r) {
    CpiProgram::Params p = cpi_params(r, 4);
    // Long enough (in virtual time) to checkpoint mid-flight.
    p.intervals = 40'000'000;
    p.intervals_per_step = 100'000;
    p.cost_per_step = 2000;
    return std::make_unique<CpiProgram>(p);
  });

  rig.cl.run_for(100 * sim::kMillisecond);  // mid-computation
  ASSERT_FALSE(job.finished());

  auto cr = rig.checkpoint(job.san_targets());
  ASSERT_TRUE(cr.ok) << cr.error;

  // Kill the original pods; restart everything on the other 4 nodes.
  for (const auto& pn : job.pod_names) {
    for (core::Agent* a : rig.agents) (void)a->destroy_pod(pn);
  }
  std::vector<core::Manager::Target> rt;
  for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
    rt.push_back(core::Manager::Target{
        rig.agents[4 + i]->addr(), job.pod_names[i],
        "san://ckpt/" + job.pod_names[i]});
  }
  auto rr = rig.restart(rt);
  ASSERT_TRUE(rr.ok) << rr.error;

  EXPECT_EQ(rig.run_job(job), 0);
  Bytes out = rig.cl.san().read("results/cpi").value();
  Decoder d(out);
  EXPECT_NEAR(d.f64_().value(), M_PI, 1e-6);
}

TEST(Apps, BratuSurvivesSnapshotAndCrashRestart) {
  TestRig rig(3);
  BratuProgram::Params base;
  base.n = 96;
  base.iterations = 2000;
  base.tol = 0;  // no early convergence stop: fixed virtual duration
  base.cost_per_row = 20;
  base.size = 3;
  JobHandle job = launch_mpi_job(rig.agents, "bratu", 3, [&](i32 r) {
    BratuProgram::Params p = base;
    p.rank = r;
    return std::make_unique<BratuProgram>(p);
  });

  rig.cl.run_for(100 * sim::kMillisecond);
  ASSERT_FALSE(job.finished());
  auto targets = job.san_targets();  // capture before the pods vanish
  auto cr = rig.checkpoint(targets);
  ASSERT_TRUE(cr.ok) << cr.error;

  // Let it progress past the checkpoint, then "crash" and rewind.
  rig.cl.run_for(100 * sim::kMillisecond);
  for (const auto& pn : job.pod_names) {
    for (core::Agent* a : rig.agents) (void)a->destroy_pod(pn);
  }
  auto rr = rig.restart(targets);
  ASSERT_TRUE(rr.ok) << rr.error;

  EXPECT_EQ(rig.run_job(job), 0);
  Bytes out = rig.cl.san().read("results/bratu").value();
  Decoder d(out);
  EXPECT_TRUE(std::isfinite(d.f64_().value()));
}

TEST(Apps, BtSurvivesCheckpointDuringHaloExchange) {
  TestRig rig(4);
  BtProgram::Params base;
  base.n = 128;
  base.steps = 30;
  base.size = 4;
  JobHandle job = launch_mpi_job(rig.agents, "bt", 4, [&](i32 r) {
    BtProgram::Params p = base;
    p.rank = r;
    return std::make_unique<BtProgram>(p);
  });

  // Take several snapshots while halo traffic is in flight.
  for (int k = 0; k < 3; ++k) {
    rig.cl.run_for(30 * sim::kMillisecond);
    if (job.finished()) break;
    auto cr = rig.checkpoint(job.san_targets());
    ASSERT_TRUE(cr.ok) << "snapshot " << k << ": " << cr.error;
  }
  EXPECT_EQ(rig.run_job(job), 0);
}

TEST(Apps, RaySurvivesWorkerMigration) {
  TestRig rig(6);
  RayMaster::Params mp;
  mp.workers = 3;
  mp.width = 200;
  mp.height = 150;
  JobHandle job = launch_pvm_job(
      rig.agents, "ray", 3,
      [&] { return std::make_unique<RayMaster>(mp); },
      [&](i32) {
        RayWorker::Params wp;
        wp.master = net::SockAddr{job_vips(4)[0], mp.port};
        wp.width = mp.width;
        wp.cost_per_row = 3000;  // slow render so we checkpoint mid-task
        return std::make_unique<RayWorker>(wp);
      });

  rig.cl.run_for(50 * sim::kMillisecond);
  ASSERT_FALSE(job.finished());

  auto cr = rig.checkpoint(job.san_targets());
  ASSERT_TRUE(cr.ok) << cr.error;
  for (const auto& pn : job.pod_names) {
    for (core::Agent* a : rig.agents) (void)a->destroy_pod(pn);
  }
  // Restart master + workers on the two spare nodes and two originals.
  std::vector<core::Manager::Target> rt;
  for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
    rt.push_back(core::Manager::Target{
        rig.agents[(i + 4) % rig.agents.size()]->addr(), job.pod_names[i],
        "san://ckpt/" + job.pod_names[i]});
  }
  auto rr = rig.restart(rt);
  ASSERT_TRUE(rr.ok) << rr.error;

  EXPECT_EQ(rig.run_job(job), 0);
  auto img = rig.cl.san().read("results/ray.ppm");
  ASSERT_TRUE(img.is_ok());
  EXPECT_EQ(img.value().size(), 200u * 150u * 3u);
}

TEST(Apps, LauncherPlacesOnePodPerRank) {
  TestRig rig(2);
  JobHandle job = launch_cpi(rig, 4);  // 4 ranks on 2 nodes
  EXPECT_EQ(job.pod_names.size(), 4u);
  EXPECT_EQ(rig.agents[0]->pod_count(), 2u);
  EXPECT_EQ(rig.agents[1]->pod_count(), 2u);
  EXPECT_EQ(rig.run_job(job), 0);
}

}  // namespace
}  // namespace zapc::apps
