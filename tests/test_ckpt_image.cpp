// Checkpoint image format and standalone process capture tests.
#include <gtest/gtest.h>

#include "ckpt/image.h"
#include "ckpt/standalone.h"
#include "os/cluster.h"
#include "pod/pod.h"
#include "tests/guest_programs.h"

namespace zapc::ckpt {
namespace {

PodImage sample_image() {
  PodImage img;
  img.header.pod_name = "pod-x";
  img.header.vip = net::IpAddr(10, 77, 0, 3);
  img.header.next_vpid = 5;
  img.header.ckpt_virtual_time = 123456;
  img.header.time_delta = -42;

  NetMetaEntry e;
  e.sock = 7;
  e.source = net::SockAddr{img.header.vip, 5000};
  e.target = net::SockAddr{net::IpAddr(10, 77, 0, 4), 41000};
  e.state = ConnState::HALF_DUPLEX;
  e.role = PeerRole::ACCEPT;
  e.pcb_sent = 1000;
  e.pcb_acked = 900;
  e.pcb_recv = 2000;
  e.discard_send = 55;
  img.meta.pod_vip = img.header.vip;
  img.meta.entries.push_back(e);

  SocketImage s;
  s.old_id = 7;
  s.proto = net::Proto::TCP;
  s.params[static_cast<std::size_t>(net::SockOpt::SO_RCVBUF)] = 111;
  s.local = e.source;
  s.remote = e.target;
  s.bound = true;
  s.connected = true;
  s.shut_wr = true;
  s.recv_queue.push_back(SavedRecvItem{to_bytes("queued"), e.target, false});
  s.recv_queue.push_back(SavedRecvItem{Bytes{'!'}, e.target, true});
  s.send_queue = to_bytes("unacked data");
  s.pcb_sent = 1000;
  s.pcb_acked = 900;
  s.pcb_recv = 2000;
  img.sockets.push_back(s);

  ProcessImage p;
  p.vpid = 1;
  p.kind = "test.counter";
  p.next_fd = 6;
  p.program_state = to_bytes("blob");
  p.fds[3] = 7;
  p.regions["heap"] = Bytes(1024, 0xAA);
  p.timer_remaining[9] = 5000;
  img.processes.push_back(p);
  return img;
}

TEST(Image, EncodeDecodeRoundTrip) {
  PodImage img = sample_image();
  Bytes data = encode_image(img);
  auto back = decode_image(data);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const PodImage& b = back.value();

  EXPECT_EQ(b.header.pod_name, "pod-x");
  EXPECT_EQ(b.header.vip, img.header.vip);
  EXPECT_EQ(b.header.next_vpid, 5);
  EXPECT_EQ(b.header.ckpt_virtual_time, 123456u);
  EXPECT_EQ(b.header.time_delta, -42);

  ASSERT_EQ(b.meta.entries.size(), 1u);
  const NetMetaEntry& e = b.meta.entries[0];
  EXPECT_EQ(e.sock, 7u);
  EXPECT_EQ(e.state, ConnState::HALF_DUPLEX);
  EXPECT_EQ(e.role, PeerRole::ACCEPT);
  EXPECT_EQ(e.pcb_recv, 2000u);
  EXPECT_EQ(e.discard_send, 55u);

  ASSERT_EQ(b.sockets.size(), 1u);
  const SocketImage& s = b.sockets[0];
  EXPECT_EQ(s.params[static_cast<std::size_t>(net::SockOpt::SO_RCVBUF)],
            111);
  EXPECT_TRUE(s.shut_wr);
  ASSERT_EQ(s.recv_queue.size(), 2u);
  EXPECT_EQ(to_string(s.recv_queue[0].data), "queued");
  EXPECT_TRUE(s.recv_queue[1].oob);
  EXPECT_EQ(s.send_queue, to_bytes("unacked data"));

  ASSERT_EQ(b.processes.size(), 1u);
  const ProcessImage& p = b.processes[0];
  EXPECT_EQ(p.kind, "test.counter");
  EXPECT_EQ(p.fds.at(3), 7u);
  EXPECT_EQ(p.regions.at("heap"), Bytes(1024, 0xAA));
  EXPECT_EQ(p.timer_remaining.at(9), 5000);
}

TEST(Image, CorruptionRejected) {
  Bytes data = encode_image(sample_image());
  data[data.size() / 3] ^= 0x5A;
  EXPECT_EQ(decode_image(data).err(), Err::PROTO);
}

TEST(Image, TruncationRejected) {
  Bytes data = encode_image(sample_image());
  data.resize(data.size() / 2);
  EXPECT_EQ(decode_image(data).err(), Err::PROTO);
}

TEST(Image, MissingHeaderRejected) {
  RecordWriter w;
  w.write(RecordTag::IMAGE_END, 1, Bytes{});
  EXPECT_EQ(decode_image(w.take()).err(), Err::PROTO);
}

TEST(Image, MetaRoundTrip) {
  NetMeta m = sample_image().meta;
  auto back = decode_meta(encode_meta(m));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().pod_vip, m.pod_vip);
  ASSERT_EQ(back.value().entries.size(), 1u);
  EXPECT_EQ(back.value().entries[0].target, m.entries[0].target);
}

TEST(Image, NetworkBytesAreSmallComparedToTotal) {
  // Paper §6: "application data in a checkpoint image can be many orders
  // of magnitude more than the network data."
  PodImage img = sample_image();
  img.processes[0].regions["heap"] = Bytes(16 << 20, 1);
  EXPECT_LT(img.network_bytes() * 100, img.total_bytes());
}

TEST(Standalone, SaveRestoreProcessRoundTrip) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1");
  pod::Pod pod(n, net::IpAddr(10, 77, 0, 1), "pod1");
  i32 pid = pod.spawn(std::make_unique<test::CounterProgram>(100, 10));
  cl.run_for(500);  // make some progress
  pod.suspend();

  os::Process* p = pod.find_process(pid);
  u32 progress = static_cast<test::CounterProgram&>(p->program()).count();
  ASSERT_GT(progress, 0u);
  p->region("scratch", 4096)[17] = 0x7E;

  PodImageHeader header = Standalone::save_header(pod);
  ProcessImage img = Standalone::save_process(pod, *p);
  EXPECT_EQ(img.kind, "test.counter");
  EXPECT_FALSE(img.exited);

  // Restore into a fresh pod on another node.
  os::Node& n2 = cl.add_node("n2");
  pod::Pod pod2(n2, net::IpAddr(10, 77, 0, 2), "pod2");
  Standalone::restore_header(pod2, header);
  ASSERT_TRUE(Standalone::restore_process(pod2, img, {}).is_ok());

  os::Process* q = pod2.find_process(pid);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->state(), os::ProcState::STOPPED);
  EXPECT_EQ(static_cast<test::CounterProgram&>(q->program()).count(),
            progress);
  EXPECT_EQ(q->regions().at("scratch")[17], 0x7E);

  // Resumed, it finishes the count.
  pod2.resume();
  cl.run_for(10 * sim::kMillisecond);
  EXPECT_EQ(q->state(), os::ProcState::EXITED);
  EXPECT_EQ(static_cast<test::CounterProgram&>(q->program()).count(), 100u);
}

TEST(Standalone, TimeVirtualizationContinuity) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1");
  pod::Pod pod(n, net::IpAddr(10, 77, 0, 1), "pod1");
  cl.run_for(5000);
  sim::Time before = pod.virtual_now();
  PodImageHeader header = Standalone::save_header(pod);

  // Much later, on another node, the pod clock resumes where it stopped.
  cl.run_for(60 * sim::kSecond);
  os::Node& n2 = cl.add_node("n2");
  pod::Pod pod2(n2, net::IpAddr(10, 77, 0, 2), "pod2");
  Standalone::restore_header(pod2, header);
  EXPECT_EQ(pod2.virtual_now(), before);
}

TEST(Standalone, TimerRemainingSurvivesRestore) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1");
  pod::Pod pod(n, net::IpAddr(10, 77, 0, 1), "pod1");
  i32 pid = pod.spawn(std::make_unique<test::CounterProgram>(1000, 10));
  cl.run_for(100);
  os::Process* p = pod.find_process(pid);
  p->timers()[1] = cl.now() + 10000;  // 10ms left
  pod.suspend();
  ProcessImage img = Standalone::save_process(pod, *p);
  EXPECT_EQ(img.timer_remaining.at(1), 10000);

  cl.run_for(5 * sim::kSecond);  // long downtime
  os::Node& n2 = cl.add_node("n2");
  pod::Pod pod2(n2, net::IpAddr(10, 77, 0, 2), "pod2");
  ASSERT_TRUE(Standalone::restore_process(pod2, img, {}).is_ok());
  os::Process* q = pod2.find_process(pid);
  // The timer still has ~10ms to go rather than having expired.
  EXPECT_EQ(q->timers().at(1), cl.now() + 10000);
}

TEST(Standalone, UnknownProgramKindFails) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1");
  pod::Pod pod(n, net::IpAddr(10, 77, 0, 1), "pod1");
  ProcessImage img;
  img.vpid = 1;
  img.kind = "does.not.exist";
  EXPECT_EQ(Standalone::restore_process(pod, img, {}).err(), Err::NO_ENT);
}

TEST(Standalone, MissingSocketMappingFails) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1");
  pod::Pod pod(n, net::IpAddr(10, 77, 0, 1), "pod1");
  ProcessImage img;
  img.vpid = 1;
  img.kind = "test.counter";
  test::CounterProgram c(1, 1);
  Encoder e;
  c.save(e);
  img.program_state = e.take();
  img.fds[3] = 99;  // no mapping provided
  EXPECT_EQ(Standalone::restore_process(pod, img, {}).err(), Err::NO_ENT);
}

}  // namespace
}  // namespace zapc::ckpt
