// Incremental (delta) checkpoints, image codec (zero-elision + dedup),
// and pipelined migration streaming.
#include <gtest/gtest.h>

#include "ckpt/image.h"
#include "ckpt/standalone.h"
#include "core/agent.h"
#include "core/manager.h"
#include "obs/metrics.h"
#include "os/cluster.h"
#include "pod/pod.h"
#include "tests/guest_programs.h"

namespace zapc::ckpt {
namespace {

using test::CounterProgram;
using test::EchoClient;
using test::EchoServer;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 78, 0, i); }

TEST(DirtyTracking, MutableRegionAccessBumpsGeneration) {
  os::Cluster cl;
  pod::Pod pod(cl.add_node("n1"), vip(1), "p");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(10, 1));
  os::Process* p = pod.find_process(pid);

  p->region("a", 64);
  p->region("b", 64);
  u64 ga = p->region_gens().at("a");
  u64 gb = p->region_gens().at("b");
  EXPECT_NE(ga, gb);  // every touch gets a unique generation

  p->region("a", 64);  // re-touch: generation advances
  EXPECT_GT(p->region_gens().at("a"), ga);
  EXPECT_EQ(p->region_gens().at("b"), gb);  // untouched stays put
  EXPECT_GE(p->region_gen_counter(), 3u);
}

TEST(DirtyTracking, DeltaCapturesOnlyDirtyRegionsButFullManifest) {
  os::Cluster cl;
  pod::Pod pod(cl.add_node("n1"), vip(1), "p");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(10, 1));
  os::Process* p = pod.find_process(pid);
  p->region("clean", 4096)[0] = 1;
  p->region("dirty", 4096)[0] = 2;
  pod.suspend();

  std::vector<ProcessImage> full = Standalone::save_processes(pod);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].regions.size(), 2u);
  EXPECT_EQ(full[0].manifest.size(), 2u);

  pod.resume();
  p->region("dirty", 4096)[1] = 3;
  pod.suspend();

  DeltaBaseline base = DeltaBaseline::from_images(full);
  std::vector<ProcessImage> delta = Standalone::save_processes(pod, &base);
  ASSERT_EQ(delta.size(), 1u);
  ASSERT_EQ(delta[0].regions.size(), 1u);  // only the dirty one
  EXPECT_EQ(delta[0].regions.count("dirty"), 1u);
  // The manifest still lists every live region (restart needs it to pull
  // the clean ones from the base).
  EXPECT_EQ(delta[0].manifest.size(), 2u);
  EXPECT_EQ(delta[0].manifest.at("clean").size, 4096u);
}

TEST(DirtyTracking, NewProcessInDeltaIsSavedInFull) {
  os::Cluster cl;
  pod::Pod pod(cl.add_node("n1"), vip(1), "p");
  i32 pid1 = pod.spawn(std::make_unique<CounterProgram>(10, 1));
  pod.find_process(pid1)->region("r", 64);
  pod.suspend();
  std::vector<ProcessImage> full = Standalone::save_processes(pod);
  pod.resume();

  i32 pid2 = pod.spawn(std::make_unique<CounterProgram>(10, 1));
  pod.find_process(pid2)->region("r2", 64);
  pod.suspend();
  DeltaBaseline base = DeltaBaseline::from_images(full);
  std::vector<ProcessImage> delta = Standalone::save_processes(pod, &base);
  ASSERT_EQ(delta.size(), 2u);
  // The pre-existing, untouched process ships no region bytes; the new
  // process (absent from the baseline) ships everything.
  EXPECT_EQ(delta[0].regions.size(), 0u);
  EXPECT_EQ(delta[1].regions.size(), 1u);
}

/// Captures a delta chain from a live pod: full, then `n` deltas with a
/// mutation between each.  Returns the encoded images in order.
struct Chain {
  std::vector<PodImage> images;  // [0] full, then deltas
  PodImage fresh_full;           // full capture of the final state
};

Chain make_chain(int n_deltas) {
  os::Cluster cl;
  pod::Pod pod(cl.add_node("n1"), vip(1), "p");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(1000, 10));
  os::Process* p = pod.find_process(pid);
  p->region("a", 4096).assign(4096, 0x11);
  p->region("b", 4096).assign(4096, 0x22);
  p->region("c", 4096).assign(4096, 0x33);
  cl.run_for(100);
  pod.suspend();

  Chain out;
  PodImage full;
  full.header = Standalone::save_header(pod);
  full.processes = Standalone::save_processes(pod);
  out.images.push_back(full);

  std::vector<ProcessImage> prev = full.processes;
  const char* names[] = {"a", "b", "c"};
  for (int k = 0; k < n_deltas; ++k) {
    pod.resume();
    cl.run_for(50);  // program state advances too
    // Touch one region per delta (rotating), growing one of them.
    Bytes& r = pod.find_process(pid)->region(names[k % 3], 4096);
    r[k] = static_cast<u8>(0x40 + k);
    if (k == 1) pod.find_process(pid)->region("d", 128).assign(128, 0x55);
    pod.suspend();

    DeltaBaseline base = DeltaBaseline::from_images(prev);
    PodImage d;
    d.header = Standalone::save_header(pod);
    d.header.codec_flags |= kCodecDelta;
    d.header.delta_seq = static_cast<u32>(k + 1);
    d.header.base_uri = "san://chain/" + std::to_string(k);
    d.processes = Standalone::save_processes(pod, &base);
    prev = d.processes;
    out.images.push_back(d);
  }

  out.fresh_full.header = Standalone::save_header(pod);
  out.fresh_full.processes = Standalone::save_processes(pod);
  return out;
}

TEST(DeltaCompose, FullPlusDeltasEqualsFreshFull) {
  Chain ch = make_chain(4);
  PodImage composed = ch.images[0];
  for (std::size_t k = 1; k < ch.images.size(); ++k) {
    auto r = compose_delta(std::move(composed), ch.images[k]);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    composed = std::move(r.value());
  }
  EXPECT_FALSE(composed.header.is_delta());
  ASSERT_EQ(composed.processes.size(), ch.fresh_full.processes.size());
  for (std::size_t i = 0; i < composed.processes.size(); ++i) {
    const ProcessImage& a = composed.processes[i];
    const ProcessImage& b = ch.fresh_full.processes[i];
    EXPECT_EQ(a.vpid, b.vpid);
    EXPECT_EQ(a.program_state, b.program_state);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (const auto& [name, bytes] : b.regions) {
      ASSERT_EQ(a.regions.count(name), 1u) << name;
      EXPECT_EQ(a.regions.at(name), bytes) << name;
    }
  }
  // Round-trips the wire format too.
  auto back = decode_image(encode_image(composed));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().processes[0].regions.at("d"),
            Bytes(128, 0x55));
}

TEST(DeltaCompose, RejectsMismatchedInputs) {
  Chain ch = make_chain(1);
  // delta-on-delta base and full-as-delta are both refused.
  EXPECT_EQ(compose_delta(ch.images[1], ch.images[1]).err(), Err::INVALID);
  EXPECT_EQ(compose_delta(ch.images[0], ch.fresh_full).err(), Err::INVALID);
  // A delta referencing a region the base lacks is a chain corruption.
  PodImage bad_base = ch.images[0];
  bad_base.processes[0].regions.erase("b");
  PodImage delta = ch.images[1];
  if (delta.processes[0].regions.count("b") == 0) {
    auto r = compose_delta(std::move(bad_base), delta);
    EXPECT_EQ(r.err(), Err::PROTO);
  }
}

TEST(Codec, ZeroElisionRoundTripsAndShrinks) {
  PodImage img;
  img.header.pod_name = "z";
  ProcessImage p;
  p.vpid = 1;
  p.kind = "test.counter";
  p.regions["zeros"] = Bytes(1 << 20, 0);
  p.regions["data"] = Bytes(4096, 0xAB);
  img.processes.push_back(p);

  Bytes plain = encode_image(img);
  u64 saved_before =
      obs::metrics().counter("ckpt.codec.zero_saved_bytes").value;
  img.header.codec_flags = kCodecZeroElide;
  Bytes elided = encode_image(img);
  EXPECT_LT(elided.size(), plain.size() / 2);
  EXPECT_GE(obs::metrics().counter("ckpt.codec.zero_saved_bytes").value,
            saved_before + (1 << 20));

  auto back = decode_image(elided);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().processes[0].regions.at("zeros"), Bytes(1 << 20, 0));
  EXPECT_EQ(back.value().processes[0].regions.at("data"), Bytes(4096, 0xAB));
}

TEST(Codec, DedupRoundTripsAcrossProcesses) {
  PodImage img;
  img.header.pod_name = "d";
  for (i32 v : {1, 2, 3}) {
    ProcessImage p;
    p.vpid = v;
    p.kind = "test.counter";
    p.regions["shared"] = Bytes(256 * 1024, 0x5C);  // identical content
    p.regions["own"] = Bytes(1024, static_cast<u8>(v));
    img.processes.push_back(p);
  }

  Bytes plain = encode_image(img);
  img.header.codec_flags = kCodecDedup;
  Bytes deduped = encode_image(img);
  // Two of the three identical 256K regions collapse to references.
  EXPECT_LT(deduped.size(), plain.size() - 2 * 200 * 1024);

  auto back = decode_image(deduped);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  for (const ProcessImage& p : back.value().processes) {
    EXPECT_EQ(p.regions.at("shared"), Bytes(256 * 1024, 0x5C));
  }
  EXPECT_EQ(back.value().processes[2].regions.at("own"), Bytes(1024, 3));
}

TEST(Codec, V1ImageWithoutTrailerStillDecodes) {
  // Hand-build a header record the way format v1 wrote it (no codec
  // flags / delta seq / base uri trailer): old images must keep decoding.
  Encoder h;
  h.put_u32(0x5A415043);  // kImageMagic
  h.put_string("old-pod");
  h.put_u32(vip(9).v);
  h.put_i32(7);
  h.put_bool(true);
  h.put_u64(4242);
  h.put_i64(-17);
  RecordWriter w;
  w.write(RecordTag::IMAGE_HEADER, 1, h.take());
  w.write(RecordTag::IMAGE_END, 1, Bytes{});

  auto img = decode_image(w.take());
  ASSERT_TRUE(img.is_ok()) << img.status().to_string();
  EXPECT_EQ(img.value().header.pod_name, "old-pod");
  EXPECT_EQ(img.value().header.next_vpid, 7);
  EXPECT_EQ(img.value().header.codec_flags, 0u);
  EXPECT_EQ(img.value().header.delta_seq, 0u);
  EXPECT_FALSE(img.value().header.is_delta());
}

TEST(Codec, PeekHeaderReadsOnlyTheFirstRecord) {
  PodImage img;
  img.header.pod_name = "peek";
  img.header.codec_flags = kCodecDelta;
  img.header.delta_seq = 3;
  img.header.base_uri = "san://x/base";
  Bytes data = encode_image(img);
  auto h = peek_header(data);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(h.value().pod_name, "peek");
  EXPECT_EQ(h.value().delta_seq, 3u);
  EXPECT_EQ(h.value().base_uri, "san://x/base");
  EXPECT_TRUE(h.value().is_delta());
}

// ---- End-to-end through Agent/Manager --------------------------------------

struct Rig {
  os::Cluster cl;
  os::Node* mgr_node;
  std::vector<std::unique_ptr<core::Agent>> agents;
  std::unique_ptr<core::Manager> mgr;

  explicit Rig(int n) {
    mgr_node = &cl.add_node("mgr");
    for (int i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<core::Agent>(
          cl.add_node("n" + std::to_string(i + 1))));
    }
    mgr = std::make_unique<core::Manager>(*mgr_node);
  }

  core::Manager::CheckpointReport ckpt(
      std::vector<core::Manager::Target> targets,
      core::Manager::CkptOptions opts) {
    core::Manager::CheckpointReport out;
    bool done = false;
    mgr->checkpoint(std::move(targets), core::CkptMode::SNAPSHOT,
                    [&](auto r) {
                      out = std::move(r);
                      done = true;
                    },
                    opts);
    for (int i = 0; i < 60000 && !done; ++i) cl.run_for(sim::kMillisecond);
    return out;
  }

  core::Manager::RestartReport restart(
      std::vector<core::Manager::Target> targets) {
    core::Manager::RestartReport out;
    bool done = false;
    mgr->restart(std::move(targets), {}, [&](auto r) {
      out = std::move(r);
      done = true;
    });
    for (int i = 0; i < 60000 && !done; ++i) cl.run_for(sim::kMillisecond);
    return out;
  }
};

TEST(IncrementalE2E, DeltaChainRestartsOnDifferentNode) {
  Rig rig(2);
  pod::Pod& pod = rig.agents[0]->create_pod(vip(1), "job");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(8000, 100));
  // Large clean region: the deltas should never re-ship it.
  pod.find_process(pid)->region("ballast", 1 << 20).assign(1 << 20, 0xB1);
  rig.cl.run_for(20 * sim::kMillisecond);

  core::Manager::CkptOptions opts;
  opts.incremental = true;
  opts.chain_cap = 8;
  opts.codec_flags = kCodecZeroElide | kCodecDedup;

  auto target = [&](int agent, int k) {
    return core::Manager::Target{
        rig.agents[agent]->addr(), "job",
        "san://incr/job." + std::to_string(k)};
  };

  // Full, then two deltas, dirtying a region between each.
  u64 full_bytes = 0;
  for (int k = 0; k < 3; ++k) {
    pod.find_process(pid)->region("scratch", 64 << 10)[k] =
        static_cast<u8>(k + 1);
    rig.cl.run_for(10 * sim::kMillisecond);
    auto r = rig.ckpt({target(0, k)}, opts);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.agents.size(), 1u);
    EXPECT_EQ(r.agents[0].delta_seq, static_cast<u32>(k));
    if (k == 0) {
      full_bytes = r.agents[0].image_bytes;
    } else {
      // Only the 64K scratch region is dirty; the 1M ballast stays home.
      EXPECT_LT(r.agents[0].image_bytes, full_bytes / 4);
      EXPECT_GT(r.agents[0].logical_bytes, r.agents[0].image_bytes);
    }
  }

  u32 count_before =
      static_cast<CounterProgram&>(pod.find_process(pid)->program()).count();
  Bytes scratch_before = pod.find_process(pid)->regions().at("scratch");
  ASSERT_TRUE(rig.agents[0]->destroy_pod("job"));
  rig.cl.run_for(10 * sim::kMillisecond);

  // Restart from the *last delta* on the other agent: the agent must
  // fetch and compose the whole base chain.
  auto rr = rig.restart({{rig.agents[1]->addr(), "job", "san://incr/job.2"}});
  ASSERT_TRUE(rr.ok) << rr.error;
  pod::Pod* moved = rig.agents[1]->find_pod("job");
  ASSERT_NE(moved, nullptr);
  os::Process* p = moved->find_process(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(static_cast<CounterProgram&>(p->program()).count(), count_before);
  Bytes scratch_after = p->regions().at("scratch");
  EXPECT_EQ(scratch_after, scratch_before);
  EXPECT_EQ(scratch_after[0], 1);
  EXPECT_EQ(scratch_after[2], 3);
  EXPECT_GE(
      obs::metrics().counter("agent.restart.deltas_composed").value, 2u);

  EXPECT_EQ(p->regions().at("ballast"), Bytes(1 << 20, 0xB1));

  // The pod keeps running to completion after the composed restart.
  rig.cl.run_for(2 * sim::kSecond);
  EXPECT_EQ(p->state(), os::ProcState::EXITED);
  EXPECT_EQ(p->exit_code(), 0);
}

TEST(IncrementalE2E, ChainCapForcesPeriodicFull) {
  Rig rig(1);
  pod::Pod& pod = rig.agents[0]->create_pod(vip(1), "job");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(1000000, 1000));
  rig.cl.run_for(10 * sim::kMillisecond);

  core::Manager::CkptOptions opts;
  opts.incremental = true;
  opts.chain_cap = 2;

  std::vector<u32> seqs;
  for (int k = 0; k < 6; ++k) {
    pod.find_process(pid)->region("r", 4096)[0] = static_cast<u8>(k);
    rig.cl.run_for(5 * sim::kMillisecond);
    auto r = rig.ckpt({{rig.agents[0]->addr(), "job",
                        "san://cap/job." + std::to_string(k)}},
                      opts);
    ASSERT_TRUE(r.ok) << r.error;
    seqs.push_back(r.agents[0].delta_seq);
  }
  // cap=2: full, d1, d2, full, d1, d2.
  EXPECT_EQ(seqs, (std::vector<u32>{0, 1, 2, 0, 1, 2}));
}

TEST(IncrementalE2E, ReusingAChainUriForcesFull) {
  Rig rig(1);
  pod::Pod& pod = rig.agents[0]->create_pod(vip(1), "job");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(1000000, 1000));
  rig.cl.run_for(10 * sim::kMillisecond);

  core::Manager::CkptOptions opts;
  opts.incremental = true;
  opts.chain_cap = 8;

  auto ck = [&](const std::string& uri) {
    pod.find_process(pid)->region("r", 4096)[0] ^= 1;
    rig.cl.run_for(5 * sim::kMillisecond);
    auto r = rig.ckpt({{rig.agents[0]->addr(), "job", uri}}, opts);
    EXPECT_TRUE(r.ok) << r.error;
    return r.agents.empty() ? ~0u : r.agents[0].delta_seq;
  };
  EXPECT_EQ(ck("san://u/a"), 0u);  // full
  EXPECT_EQ(ck("san://u/b"), 1u);  // delta on a
  // Writing to "a" again would overwrite the live base of the chain, so
  // the agent must fall back to a full image.
  EXPECT_EQ(ck("san://u/a"), 0u);
  // ...and the chain restarts cleanly from the new full.
  EXPECT_EQ(ck("san://u/c"), 1u);
}

TEST(IncrementalE2E, MaterializedMigrationStaysByteExact) {
  // The non-streamed (materialize-then-send) migration path must keep
  // working now that streaming is the default.
  Rig rig(4);
  pod::Pod& sp = rig.agents[0]->create_pod(vip(1), "srv");
  sp.spawn(std::make_unique<EchoServer>(5000));
  pod::Pod& cp = rig.agents[1]->create_pod(vip(2), "cli");
  i32 cpid = cp.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 4 << 20));
  rig.cl.run_for(20 * sim::kMillisecond);  // mid-transfer

  core::Manager::MigrateOptions mo;
  mo.pipelined_stream = false;
  bool done = false;
  core::Manager::MigrateReport mr;
  rig.mgr->migrate(
      {
          {rig.agents[0]->addr(), rig.agents[2]->addr(), "srv", vip(1)},
          {rig.agents[1]->addr(), rig.agents[3]->addr(), "cli", vip(2)},
      },
      [&](core::Manager::MigrateReport r) {
        mr = std::move(r);
        done = true;
      },
      mo);
  for (int i = 0; i < 60000 && !done; ++i) rig.cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(mr.ok) << mr.error;

  pod::Pod* moved = rig.agents[3]->find_pod("cli");
  ASSERT_NE(moved, nullptr);
  for (int i = 0; i < 12000; ++i) {
    rig.cl.run_for(10 * sim::kMillisecond);
    os::Process* p = moved->find_process(cpid);
    if (p->state() == os::ProcState::EXITED) {
      EXPECT_EQ(p->exit_code(), 0);
      return;
    }
  }
  FAIL() << "client did not finish after materialized migration";
}

TEST(IncrementalE2E, PipelinedMigrationWithCodecStaysByteExact) {
  Rig rig(4);
  pod::Pod& sp = rig.agents[0]->create_pod(vip(1), "srv");
  sp.spawn(std::make_unique<EchoServer>(5000));
  pod::Pod& cp = rig.agents[1]->create_pod(vip(2), "cli");
  i32 cpid = cp.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 4 << 20));
  rig.cl.run_for(20 * sim::kMillisecond);

  core::Manager::MigrateOptions mo;
  mo.pipelined_stream = true;
  mo.codec_flags = kCodecZeroElide | kCodecDedup;
  bool done = false;
  core::Manager::MigrateReport mr;
  rig.mgr->migrate(
      {
          {rig.agents[0]->addr(), rig.agents[2]->addr(), "srv", vip(1)},
          {rig.agents[1]->addr(), rig.agents[3]->addr(), "cli", vip(2)},
      },
      [&](core::Manager::MigrateReport r) {
        mr = std::move(r);
        done = true;
      },
      mo);
  for (int i = 0; i < 60000 && !done; ++i) rig.cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(mr.ok) << mr.error;
  EXPECT_EQ(rig.agents[1]->find_pod("cli"), nullptr);

  pod::Pod* moved = rig.agents[3]->find_pod("cli");
  ASSERT_NE(moved, nullptr);
  for (int i = 0; i < 12000; ++i) {
    rig.cl.run_for(10 * sim::kMillisecond);
    os::Process* p = moved->find_process(cpid);
    if (p->state() == os::ProcState::EXITED) {
      EXPECT_EQ(p->exit_code(), 0);
      return;
    }
  }
  FAIL() << "client did not finish after pipelined migration";
}

}  // namespace
}  // namespace zapc::ckpt
