// Multi-process pods: spawn/wait/kill semantics and coordinated
// checkpoint-restart of pods hosting several processes (paper §3: a pod
// is a self-contained unit that can hold a process *group*; vpids stay
// constant across migration).
#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"
#include "pod/pod.h"
#include "tests/guest_programs.h"

namespace zapc {

using test::CounterProgram;

/// Parent that spawns `children` counters, waits for them, and exits
/// with the number that finished successfully.
class ParentProgram final : public os::Program {
 public:
  ParentProgram() = default;
  explicit ParentProgram(i32 children) : children_(children) {}
  const char* kind() const override { return "test.parent"; }

  os::StepResult step(os::Syscalls& sys) override {
    using os::StepResult;
    if (pc_ == 0) {
      for (i32 i = 0; i < children_; ++i) {
        CounterProgram child(200 + static_cast<u32>(i), 50);
        Encoder e;
        child.save(e);
        auto vpid = sys.spawn("test.counter", e.bytes());
        if (!vpid) return StepResult::exit(1);
        kids_.push_back(vpid.value());
      }
      pc_ = 1;
      return StepResult::yield();
    }
    // Reap children (non-blocking poll with sleep).
    i32 done = 0;
    for (i32 kid : kids_) {
      auto code = sys.wait_pid(kid);
      if (code.is_ok() && code.value() == 0) ++done;
    }
    if (done == static_cast<i32>(kids_.size())) {
      return StepResult::exit(done);
    }
    return StepResult::block(os::WaitSpec::sleep(sim::kMillisecond));
  }

  void save(Encoder& e) const override {
    e.put_i32(children_);
    e.put_u32(pc_);
    e.put_u32(static_cast<u32>(kids_.size()));
    for (i32 k : kids_) e.put_i32(k);
  }
  void load(Decoder& d) override {
    children_ = d.i32_().value_or(0);
    pc_ = d.u32_().value_or(0);
    u32 n = d.u32_().value_or(0);
    kids_.clear();
    for (u32 i = 0; i < n; ++i) kids_.push_back(d.i32_().value_or(0));
  }

  const std::vector<i32>& kids() const { return kids_; }

 private:
  i32 children_ = 0;
  u32 pc_ = 0;
  std::vector<i32> kids_;
};

namespace {

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

TEST(MultiProc, SpawnAndWait) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1", 2);
  pod::Pod pod(n, vip(1), "pod1");
  i32 ppid = pod.spawn(std::make_unique<ParentProgram>(3));
  cl.run_for(200 * sim::kMillisecond);

  os::Process* parent = pod.find_process(ppid);
  ASSERT_EQ(parent->state(), os::ProcState::EXITED);
  EXPECT_EQ(parent->exit_code(), 3);  // all three children reaped
  EXPECT_EQ(pod.process_count(), 4u);
  // Children got the next vpids in order.
  auto& kids = static_cast<ParentProgram&>(parent->program()).kids();
  EXPECT_EQ(kids, (std::vector<i32>{2, 3, 4}));
}

TEST(MultiProc, KillTerminatesAndClosesFds) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1");
  pod::Pod pod(n, vip(1), "pod1");
  i32 victim = pod.spawn(std::make_unique<CounterProgram>(1u << 30, 100));
  cl.run_for(5 * sim::kMillisecond);
  os::Process* p = pod.find_process(victim);
  ASSERT_NE(p->state(), os::ProcState::EXITED);

  ASSERT_TRUE(pod.kill(victim).is_ok());
  EXPECT_EQ(p->state(), os::ProcState::EXITED);
  EXPECT_EQ(p->exit_code(), 137);
  EXPECT_TRUE(p->fd_table().empty());
  // Scheduler keeps running fine after the kill.
  cl.run_for(5 * sim::kMillisecond);
  EXPECT_EQ(pod.kill(999).err(), Err::NO_ENT);
}

TEST(MultiProc, WaitOnRunningReturnsWouldBlock) {
  os::Cluster cl;
  os::Node& n = cl.add_node("n1");
  pod::Pod pod(n, vip(1), "pod1");

  class Checker final : public os::Program {
   public:
    const char* kind() const override { return "test.waiter"; }
    os::StepResult step(os::Syscalls& sys) override {
      if (pc_ == 0) {
        auto kid = sys.spawn("test.counter", [] {
          CounterProgram c(100000, 100);
          Encoder e;
          c.save(e);
          return e.take();
        }());
        kid_ = kid.value_or(-1);
        auto w = sys.wait_pid(kid_);
        // Child just spawned: must not be reported exited.
        result_ = w.err() == Err::WOULD_BLOCK ? 0 : 1;
        pc_ = 1;
      }
      return os::StepResult::exit(result_);
    }
    void save(Encoder&) const override {}
    void load(Decoder&) override {}

   private:
    u32 pc_ = 0;
    i32 kid_ = -1;
    i32 result_ = 9;
  };
  i32 pid = pod.spawn(std::make_unique<Checker>());
  cl.run_for(10 * sim::kMillisecond);
  EXPECT_EQ(pod.find_process(pid)->exit_code(), 0);
}

TEST(MultiProc, MultiProcessPodSurvivesMigration) {
  os::Cluster cl;
  os::Node* mgr_node = &cl.add_node("mgr");
  os::Node& n1 = cl.add_node("n1", 2);
  os::Node& n2 = cl.add_node("n2", 2);
  core::Agent a1(n1), a2(n2);
  core::Manager mgr(*mgr_node);

  pod::Pod& pod = a1.create_pod(vip(1), "family");
  i32 ppid = pod.spawn(std::make_unique<ParentProgram>(3));
  cl.run_for(3 * sim::kMillisecond);  // children spawned, mid-count
  ASSERT_EQ(pod.process_count(), 4u);
  ASSERT_NE(pod.find_process(ppid)->state(), os::ProcState::EXITED);

  bool done = false, ok = false;
  mgr.checkpoint({{a1.addr(), "family", "san://ckpt/family"}},
                 core::CkptMode::MIGRATE, [&](auto r) {
                   ok = r.ok;
                   done = true;
                 });
  while (!done) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(ok);
  EXPECT_EQ(a1.find_pod("family"), nullptr);

  done = false;
  mgr.restart({{a2.addr(), "family", "san://ckpt/family"}}, {},
              [&](auto r) {
                ok = r.ok;
                done = true;
              });
  while (!done) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(ok);

  pod::Pod* moved = a2.find_pod("family");
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->process_count(), 4u);  // whole group moved together

  cl.run_for(500 * sim::kMillisecond);
  os::Process* parent = moved->find_process(ppid);
  ASSERT_EQ(parent->state(), os::ProcState::EXITED);
  EXPECT_EQ(parent->exit_code(), 3);
  // vpids preserved across migration (paper §3).
  EXPECT_NE(moved->find_process(2), nullptr);
  EXPECT_NE(moved->find_process(4), nullptr);
}

}  // namespace
}  // namespace zapc

ZAPC_REGISTER_PROGRAM(parent_prog, zapc::ParentProgram)
