// TCP protocol tests: handshake, transfer, retransmission under loss,
// urgent data, flow control, connection teardown, dispatch-vector
// interposition (alternate receive queue).
#include <gtest/gtest.h>

#include <memory>

#include "net/stack.h"
#include "net/tcp.h"
#include "tests/helpers.h"

namespace zapc::net {
namespace {

using test::TestNet;
using test::pattern_bytes;

class TcpTest : public ::testing::Test {
 protected:
  TcpTest()
      : a_(net_.engine, IpAddr(10, 0, 0, 1), "A"),
        b_(net_.engine, IpAddr(10, 0, 0, 2), "B") {
    net_.add(a_);
    net_.add(b_);
  }

  /// Creates a listener on B at `port` and connects from A; returns
  /// (client on A, accepted child on B).
  std::pair<SockId, SockId> connect_pair(u16 port = 7000) {
    SockId listener = b_.sys_socket(Proto::TCP).value();
    EXPECT_TRUE(b_.sys_bind(listener, SockAddr{kAnyAddr, port}).is_ok());
    EXPECT_TRUE(b_.sys_listen(listener, 8).is_ok());

    SockId client = a_.sys_socket(Proto::TCP).value();
    Status st = a_.sys_connect(client, SockAddr{b_.vip(), port});
    EXPECT_EQ(st.err(), Err::IN_PROGRESS);

    // Pump until the handshake completes (retransmissions may be needed
    // when the test runs with packet loss).
    SockAddr peer;
    Result<SockId> child(Err::WOULD_BLOCK);
    for (int i = 0; i < 1000; ++i) {
      net_.step_for(10 * sim::kMillisecond);
      child = b_.sys_accept(listener, &peer);
      if (child.is_ok()) break;
    }
    EXPECT_TRUE(child.is_ok()) << child.status().to_string();
    if (child.is_ok()) {
      EXPECT_EQ(peer.ip, a_.vip());
    }
    listener_ = listener;
    return {client, child.value_or(kInvalidSock)};
  }

  /// Pumps `data` from (src_stack, src_sock) to (dst_stack, dst_sock),
  /// returning everything received until the transfer completes.
  Bytes transfer(Stack& src, SockId s, Stack& dst, SockId d,
                 const Bytes& data) {
    std::size_t sent = 0;
    Bytes received;
    for (int iter = 0; iter < 20000; ++iter) {
      if (sent < data.size()) {
        Bytes chunk(data.begin() + static_cast<long>(sent), data.end());
        auto r = src.sys_send(s, chunk, 0);
        if (r.is_ok()) sent += r.value();
      }
      net_.step_for(5 * sim::kMillisecond);
      while (true) {
        auto r = dst.sys_recv(d, 65536, 0);
        if (!r.is_ok() || r.value().eof) break;
        append_bytes(received, r.value().data);
      }
      if (sent == data.size() && received.size() == data.size()) break;
    }
    return received;
  }

  TestNet net_;
  Stack a_;
  Stack b_;
  SockId listener_ = kInvalidSock;
};

TEST_F(TcpTest, HandshakeEstablishesBothEnds) {
  auto [client, child] = connect_pair();
  ASSERT_NE(child, kInvalidSock);
  EXPECT_EQ(a_.find_tcp(client)->state(), TcpState::ESTABLISHED);
  EXPECT_EQ(b_.find_tcp(child)->state(), TcpState::ESTABLISHED);
  // Both ends agree on the 4-tuple.
  EXPECT_EQ(a_.sys_getpeername(client).value(),
            b_.sys_getsockname(child).value());
  EXPECT_EQ(b_.sys_getpeername(child).value(),
            a_.sys_getsockname(client).value());
}

TEST_F(TcpTest, SmallTransfer) {
  auto [client, child] = connect_pair();
  Bytes msg = to_bytes("hello, cluster");
  ASSERT_TRUE(a_.sys_send(client, msg, 0).is_ok());
  net_.step_for(10 * sim::kMillisecond);
  auto r = b_.sys_recv(child, 1024, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().data, msg);
}

TEST_F(TcpTest, BulkTransferPreservesBytes) {
  auto [client, child] = connect_pair();
  Bytes data = pattern_bytes(1 << 20);  // 1 MiB
  Bytes got = transfer(a_, client, b_, child, data);
  EXPECT_EQ(got.size(), data.size());
  EXPECT_EQ(got, data);
}

TEST_F(TcpTest, BulkTransferSurvivesPacketLoss) {
  net_.set_loss(0.05);
  auto [client, child] = connect_pair();
  net_.set_loss(0.10);
  Bytes data = pattern_bytes(256 * 1024, 3);
  Bytes got = transfer(a_, client, b_, child, data);
  EXPECT_EQ(got, data);
  EXPECT_GT(net_.packets_dropped(), 0u);
}

TEST_F(TcpTest, BidirectionalTransfer) {
  auto [client, child] = connect_pair();
  Bytes d1 = pattern_bytes(100 * 1024, 1);
  Bytes d2 = pattern_bytes(150 * 1024, 2);
  Bytes got1 = transfer(a_, client, b_, child, d1);
  Bytes got2 = transfer(b_, child, a_, client, d2);
  EXPECT_EQ(got1, d1);
  EXPECT_EQ(got2, d2);
}

TEST_F(TcpTest, ConnectRefusedWithoutListener) {
  SockId client = a_.sys_socket(Proto::TCP).value();
  EXPECT_EQ(a_.sys_connect(client, SockAddr{b_.vip(), 4444}).err(),
            Err::IN_PROGRESS);
  net_.step_for(50 * sim::kMillisecond);
  TcpSocket* sock = a_.find_tcp(client);
  EXPECT_EQ(sock->state(), TcpState::CLOSED);
  EXPECT_NE(sock->do_poll() & POLLERR, 0u);
  EXPECT_EQ(sock->take_error(), Err::CONN_REFUSED);
}

TEST_F(TcpTest, ConnectTimesOutToDeadAddress) {
  SockId client = a_.sys_socket(Proto::TCP).value();
  EXPECT_EQ(
      a_.sys_connect(client, SockAddr{IpAddr(10, 9, 9, 9), 1}).err(),
      Err::IN_PROGRESS);
  net_.step_for(120 * sim::kSecond);
  EXPECT_EQ(a_.find_tcp(client)->take_error(), Err::TIMED_OUT);
}

TEST_F(TcpTest, PeekDoesNotConsume) {
  auto [client, child] = connect_pair();
  Bytes msg = to_bytes("peekaboo");
  ASSERT_TRUE(a_.sys_send(client, msg, 0).is_ok());
  net_.step_for(10 * sim::kMillisecond);
  auto peeked = b_.sys_recv(child, 4, MSG_PEEK);
  ASSERT_TRUE(peeked.is_ok());
  EXPECT_EQ(to_string(peeked.value().data), "peek");
  auto full = b_.sys_recv(child, 1024, 0);
  EXPECT_EQ(full.value().data, msg);
}

TEST_F(TcpTest, UrgentDataOutOfBand) {
  auto [client, child] = connect_pair();
  ASSERT_TRUE(a_.sys_send(client, to_bytes("normal"), 0).is_ok());
  ASSERT_TRUE(a_.sys_send(client, Bytes{'!'}, MSG_OOB).is_ok());
  net_.step_for(10 * sim::kMillisecond);

  EXPECT_NE(b_.sys_poll(child) & POLLPRI, 0u);
  auto oob = b_.sys_recv(child, 1, MSG_OOB);
  ASSERT_TRUE(oob.is_ok());
  EXPECT_EQ(oob.value().data, Bytes{'!'});
  EXPECT_TRUE(oob.value().oob);
  // The normal stream does not contain the urgent byte.
  auto norm = b_.sys_recv(child, 1024, 0);
  EXPECT_EQ(to_string(norm.value().data), "normal");
  EXPECT_EQ(b_.sys_recv(child, 1024, 0).err(), Err::WOULD_BLOCK);
}

TEST_F(TcpTest, UrgentDataInlineWithOobinline) {
  auto [client, child] = connect_pair();
  ASSERT_TRUE(b_.sys_setsockopt(child, SockOpt::SO_OOBINLINE, 1).is_ok());
  ASSERT_TRUE(a_.sys_send(client, to_bytes("ab"), 0).is_ok());
  ASSERT_TRUE(a_.sys_send(client, Bytes{'c'}, MSG_OOB).is_ok());
  net_.step_for(10 * sim::kMillisecond);
  auto r = b_.sys_recv(child, 1024, 0);
  EXPECT_EQ(to_string(r.value().data), "abc");  // urgent byte stays inline
}

TEST_F(TcpTest, OrderlyShutdownDeliversEof) {
  auto [client, child] = connect_pair();
  ASSERT_TRUE(a_.sys_send(client, to_bytes("bye"), 0).is_ok());
  ASSERT_TRUE(a_.sys_shutdown(client, ShutdownHow::WR).is_ok());
  net_.step_for(10 * sim::kMillisecond);

  auto r1 = b_.sys_recv(child, 1024, 0);
  EXPECT_EQ(to_string(r1.value().data), "bye");
  auto r2 = b_.sys_recv(child, 1024, 0);
  ASSERT_TRUE(r2.is_ok());
  EXPECT_TRUE(r2.value().eof);

  // Half-duplex: B can still send to A.
  ASSERT_TRUE(b_.sys_send(child, to_bytes("reply"), 0).is_ok());
  net_.step_for(10 * sim::kMillisecond);
  EXPECT_EQ(to_string(a_.sys_recv(client, 1024, 0).value().data), "reply");

  // Writing after shutdown fails with PIPE.
  EXPECT_EQ(a_.sys_send(client, to_bytes("x"), 0).err(), Err::PIPE);
}

TEST_F(TcpTest, FullCloseHandshakeReapsSockets) {
  auto [client, child] = connect_pair();
  ASSERT_TRUE(a_.sys_close(client).is_ok());
  net_.step_for(10 * sim::kMillisecond);
  // B sees EOF, closes too.
  auto r = b_.sys_recv(child, 1024, 0);
  EXPECT_TRUE(r.is_ok() && r.value().eof);
  ASSERT_TRUE(b_.sys_close(child).is_ok());
  net_.step_for(500 * sim::kMillisecond);  // TIME_WAIT and reaping
  EXPECT_EQ(a_.find(client), nullptr);
  EXPECT_EQ(b_.find(child), nullptr);
}

TEST_F(TcpTest, ZeroWindowStallsAndRecovers) {
  auto [client, child] = connect_pair();
  ASSERT_TRUE(b_.sys_setsockopt(child, SockOpt::SO_RCVBUF, 2048).is_ok());
  Bytes data = pattern_bytes(64 * 1024, 9);

  // Push without reading: the sender must stall on the closed window.
  std::size_t sent = 0;
  for (int i = 0; i < 50 && sent < data.size(); ++i) {
    Bytes chunk(data.begin() + static_cast<long>(sent), data.end());
    auto r = a_.sys_send(client, chunk, 0);
    if (r.is_ok()) sent += r.value();
    net_.step_for(20 * sim::kMillisecond);
  }
  EXPECT_LT(b_.find_tcp(child)->recv_queue_len(), 4096u);

  // Now read everything; window updates + probes resume the flow.
  Bytes received;
  for (int iter = 0; iter < 20000 && received.size() < data.size(); ++iter) {
    if (sent < data.size()) {
      Bytes chunk(data.begin() + static_cast<long>(sent), data.end());
      auto r = a_.sys_send(client, chunk, 0);
      if (r.is_ok()) sent += r.value();
    }
    while (true) {
      auto r = b_.sys_recv(child, 1024, 0);
      if (!r.is_ok() || r.value().eof) break;
      append_bytes(received, r.value().data);
    }
    net_.step_for(20 * sim::kMillisecond);
  }
  EXPECT_EQ(received, data);
}

TEST_F(TcpTest, BindConflictAndReuse) {
  SockId s1 = a_.sys_socket(Proto::TCP).value();
  SockId s2 = a_.sys_socket(Proto::TCP).value();
  ASSERT_TRUE(a_.sys_bind(s1, SockAddr{kAnyAddr, 5555}).is_ok());
  EXPECT_EQ(a_.sys_bind(s2, SockAddr{kAnyAddr, 5555}).err(),
            Err::ADDR_IN_USE);
  ASSERT_TRUE(a_.sys_setsockopt(s2, SockOpt::SO_REUSEADDR, 1).is_ok());
  EXPECT_TRUE(a_.sys_bind(s2, SockAddr{kAnyAddr, 5555}).is_ok());
}

TEST_F(TcpTest, EphemeralPortsAreUnique) {
  SockId s1 = a_.sys_socket(Proto::TCP).value();
  SockId s2 = a_.sys_socket(Proto::TCP).value();
  // Connect allocates ephemeral ports.
  (void)connect_pair();
  (void)a_.sys_connect(s1, SockAddr{b_.vip(), 7000});
  (void)a_.sys_connect(s2, SockAddr{b_.vip(), 7000});
  EXPECT_NE(a_.sys_getsockname(s1).value().port,
            a_.sys_getsockname(s2).value().port);
}

TEST_F(TcpTest, BacklogLimitsPendingAccepts) {
  SockId listener = b_.sys_socket(Proto::TCP).value();
  ASSERT_TRUE(b_.sys_bind(listener, SockAddr{kAnyAddr, 7100}).is_ok());
  ASSERT_TRUE(b_.sys_listen(listener, 2).is_ok());

  std::vector<SockId> clients;
  for (int i = 0; i < 5; ++i) {
    SockId c = a_.sys_socket(Proto::TCP).value();
    (void)a_.sys_connect(c, SockAddr{b_.vip(), 7100});
    clients.push_back(c);
  }
  net_.step_for(50 * sim::kMillisecond);
  EXPECT_EQ(b_.find_tcp(listener)->accept_queue_len(), 2u);
}

TEST_F(TcpTest, AltQueueServedBeforeNetworkData) {
  auto [client, child] = connect_pair();

  // Restored data injected via the alternate queue...
  std::deque<RecvItem> items;
  items.push_back(RecvItem{to_bytes("restored-"), SockAddr{}, false});
  b_.find(child)->install_alt_queue(std::move(items));

  // ...followed by fresh data arriving from the network.
  ASSERT_TRUE(a_.sys_send(client, to_bytes("fresh"), 0).is_ok());
  net_.step_for(10 * sim::kMillisecond);

  EXPECT_NE(b_.sys_poll(child) & POLLIN, 0u);
  Bytes all;
  while (true) {
    auto r = b_.sys_recv(child, 4096, 0);
    if (!r.is_ok()) break;
    append_bytes(all, r.value().data);
  }
  EXPECT_EQ(to_string(all), "restored-fresh");
  // Once drained, the original dispatch vector is reinstalled.
  EXPECT_EQ(b_.find(child)->alt_queue(), nullptr);
}

TEST_F(TcpTest, AltQueuePreservesOobItem) {
  auto [client, child] = connect_pair();
  std::deque<RecvItem> items;
  items.push_back(RecvItem{to_bytes("data"), SockAddr{}, false});
  items.push_back(RecvItem{Bytes{'U'}, SockAddr{}, true});
  b_.find(child)->install_alt_queue(std::move(items));

  EXPECT_NE(b_.sys_poll(child) & POLLPRI, 0u);
  EXPECT_EQ(to_string(b_.sys_recv(child, 100, 0).value().data), "data");
  auto oob = b_.sys_recv(child, 1, MSG_OOB);
  ASSERT_TRUE(oob.is_ok());
  EXPECT_TRUE(oob.value().oob);
  EXPECT_EQ(oob.value().data, Bytes{'U'});
  EXPECT_EQ(b_.find(child)->alt_queue(), nullptr);
}

TEST_F(TcpTest, CloseWithAltQueueCleansUp) {
  auto [client, child] = connect_pair();
  std::deque<RecvItem> items;
  items.push_back(RecvItem{to_bytes("never read"), SockAddr{}, false});
  b_.find(child)->install_alt_queue(std::move(items));
  EXPECT_TRUE(b_.sys_close(child).is_ok());  // release via dispatch vector
  net_.step_for(500 * sim::kMillisecond);
  (void)a_.sys_recv(client, 10, 0);
  SUCCEED();  // no crash/leak; release interposition handled cleanup
}

TEST_F(TcpTest, PcbSequenceInvariant) {
  // Paper §5 invariant: recv₁ ≥ acked₂ on every connection.
  auto [client, child] = connect_pair();
  Bytes data = pattern_bytes(32 * 1024, 4);
  std::size_t sent = 0;
  for (int i = 0; i < 200; ++i) {
    if (sent < data.size()) {
      Bytes chunk(data.begin() + static_cast<long>(sent), data.end());
      auto r = a_.sys_send(client, chunk, 0);
      if (r.is_ok()) sent += r.value();
    }
    net_.step_for(sim::kMillisecond);
    TcpSocket* snd = a_.find_tcp(client);
    TcpSocket* rcv = b_.find_tcp(child);
    EXPECT_TRUE(seq_ge(rcv->pcb_recv(), snd->pcb_acked()))
        << "recv=" << rcv->pcb_recv() << " acked=" << snd->pcb_acked();
    EXPECT_TRUE(seq_ge(snd->pcb_sent(), snd->pcb_acked()));
  }
}

TEST_F(TcpTest, SendQueueHoldsUnackedData) {
  auto [client, child] = connect_pair();
  // Block B's ingress by dropping everything (simulates frozen peer).
  net_.set_loss(1.0);
  Bytes msg = to_bytes("stuck in the queue");
  ASSERT_TRUE(a_.sys_send(client, msg, 0).is_ok());
  net_.step_for(10 * sim::kMillisecond);
  TcpSocket* sock = a_.find_tcp(client);
  EXPECT_EQ(sock->send_queue_contents(), msg);
  EXPECT_EQ(sock->pcb_sent() - sock->pcb_acked(), msg.size());
}

}  // namespace
}  // namespace zapc::net
