// Robustness / fuzz-style property tests: randomized images always
// either decode exactly or fail cleanly (never crash, never half-parse),
// the TCP stack tolerates reordering jitter, and the SAN behaves like a
// store under random operation sequences.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "ckpt/image.h"
#include "core/agent.h"
#include "core/manager.h"
#include "net/stack.h"
#include "net/tcp.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "os/cluster.h"
#include "os/san.h"
#include "tests/guest_programs.h"
#include "tests/helpers.h"
#include "util/rng.h"

namespace zapc {
namespace {

using test::TestNet;
using test::pattern_bytes;

ckpt::PodImage random_image(Rng& rng) {
  ckpt::PodImage img;
  img.header.pod_name = "fuzz-" + std::to_string(rng.below(1000));
  img.header.vip = net::IpAddr(static_cast<u32>(rng.next_u32()));
  img.header.next_vpid = static_cast<i32>(rng.below(100)) + 1;
  img.header.ckpt_virtual_time = rng.next_u64() >> 20;
  img.header.time_delta = static_cast<i64>(rng.below(1 << 20)) - (1 << 19);

  u64 nsock = rng.below(4);
  for (u64 s = 0; s < nsock; ++s) {
    ckpt::SocketImage sock;
    sock.old_id = static_cast<u32>(rng.below(100) + 1);
    sock.proto = rng.chance(0.5) ? net::Proto::TCP : net::Proto::UDP;
    for (auto& p : sock.params) p = static_cast<i64>(rng.below(1 << 20));
    sock.local = net::SockAddr{img.header.vip,
                               static_cast<u16>(rng.below(65536))};
    sock.remote = net::SockAddr{net::IpAddr(rng.next_u32()),
                                static_cast<u16>(rng.below(65536))};
    sock.connected = rng.chance(0.6);
    sock.shut_wr = rng.chance(0.2);
    sock.pcb_sent = rng.next_u32();
    sock.pcb_acked = sock.pcb_sent - static_cast<u32>(rng.below(5000));
    sock.pcb_recv = rng.next_u32();
    u64 nitems = rng.below(3);
    for (u64 i = 0; i < nitems; ++i) {
      sock.recv_queue.push_back(ckpt::SavedRecvItem{
          pattern_bytes(rng.below(2000), static_cast<u8>(i)), sock.remote,
          rng.chance(0.1)});
    }
    sock.send_queue = pattern_bytes(rng.below(3000));
    img.sockets.push_back(std::move(sock));

    ckpt::NetMetaEntry e;
    e.sock = img.sockets.back().old_id;
    e.source = img.sockets.back().local;
    e.target = img.sockets.back().remote;
    e.state = static_cast<ckpt::ConnState>(rng.below(5));
    img.meta.entries.push_back(e);
  }
  img.meta.pod_vip = img.header.vip;

  u64 nproc = rng.below(3) + 1;
  for (u64 p = 0; p < nproc; ++p) {
    ckpt::ProcessImage proc;
    proc.vpid = static_cast<i32>(p) + 1;
    proc.kind = "fuzz.kind";
    proc.exited = rng.chance(0.2);
    proc.exit_code = static_cast<i32>(rng.below(256));
    proc.next_fd = static_cast<int>(rng.below(64)) + 3;
    proc.program_state = pattern_bytes(rng.below(500));
    u64 nfds = rng.below(4);
    for (u64 f = 0; f < nfds; ++f) {
      proc.fds[static_cast<int>(f) + 3] =
          static_cast<net::SockId>(rng.below(100) + 1);
    }
    u64 nreg = rng.below(3);
    for (u64 r = 0; r < nreg; ++r) {
      proc.regions["r" + std::to_string(r)] =
          pattern_bytes(rng.below(10000));
    }
    proc.timer_remaining[static_cast<u32>(rng.below(10))] =
        static_cast<i64>(rng.below(1 << 20));
    img.processes.push_back(std::move(proc));
  }
  if (rng.chance(0.3)) {
    img.has_gm_device = true;
    img.gm_state = pattern_bytes(rng.below(1000));
  }
  return img;
}

bool images_equal(const ckpt::PodImage& a, const ckpt::PodImage& b) {
  // Structural comparison through re-encoding (the format is
  // deterministic).
  return ckpt::encode_image(a) == ckpt::encode_image(b);
}

TEST(Robustness, RandomImagesRoundTripExactly) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    ckpt::PodImage img = random_image(rng);
    Bytes data = ckpt::encode_image(img);
    auto back = ckpt::decode_image(data);
    ASSERT_TRUE(back.is_ok()) << "trial " << trial << ": "
                              << back.status().to_string();
    EXPECT_TRUE(images_equal(img, back.value())) << "trial " << trial;
  }
}

TEST(Robustness, BitflippedImagesNeverCrashAndUsuallyReject) {
  Rng rng(777);
  int rejected = 0, trials = 0;
  for (int t = 0; t < 60; ++t) {
    ckpt::PodImage img = random_image(rng);
    Bytes data = ckpt::encode_image(img);
    if (data.size() < 8) continue;
    Bytes mutated = data;
    mutated[rng.below(mutated.size())] ^=
        static_cast<u8>(1u << rng.below(8));
    auto r = ckpt::decode_image(mutated);  // must not crash or UB
    ++trials;
    if (!r.is_ok()) ++rejected;
  }
  // Payload flips are always caught by the per-record CRC; only flips in
  // already-validated framing slack could slip through, and there is no
  // such slack — every byte is covered.
  EXPECT_EQ(rejected, trials);
}

TEST(Robustness, TruncatedImagesAlwaysReject) {
  Rng rng(31337);
  ckpt::PodImage img = random_image(rng);
  Bytes data = ckpt::encode_image(img);
  for (std::size_t cut = 1; cut < data.size();
       cut += std::max<std::size_t>(1, data.size() / 37)) {
    Bytes truncated(data.begin(), data.begin() + static_cast<long>(cut));
    auto r = ckpt::decode_image(truncated);
    EXPECT_FALSE(r.is_ok()) << "cut at " << cut;
  }
}

TEST(Robustness, RandomGarbageNeverCrashes) {
  Rng rng(999);
  for (int t = 0; t < 100; ++t) {
    Bytes garbage(rng.below(4000));
    for (auto& b : garbage) b = static_cast<u8>(rng.next_u32());
    auto r = ckpt::decode_image(garbage);
    EXPECT_FALSE(r.is_ok());
    auto m = ckpt::decode_meta(garbage);
    (void)m;  // any outcome is fine as long as it's defined behaviour
  }
}

TEST(Robustness, TcpSurvivesReorderingJitter) {
  // Jitter larger than the base latency reorders packets aggressively;
  // the out-of-order queue must reassemble the exact stream.
  TestNet net(20 * sim::kMicrosecond, 0.0, 5);
  // TestNet has fixed latency; emulate jitter by a lossy+delayed second
  // path: instead, use the Fabric directly via a cluster-less trick —
  // simpler: run the transfer with random extra delays injected by
  // resending from a shim. Here we use loss + retransmission as the
  // reordering source (retransmitted segments interleave with later
  // ones).
  net.set_loss(0.12);
  net::Stack a(net.engine, net::IpAddr(10, 0, 0, 1), "A");
  net::Stack b(net.engine, net::IpAddr(10, 0, 0, 2), "B");
  net.add(a);
  net.add(b);
  net::SockId lst = b.sys_socket(net::Proto::TCP).value();
  ASSERT_TRUE(b.sys_bind(lst, net::SockAddr{net::kAnyAddr, 7000}).is_ok());
  ASSERT_TRUE(b.sys_listen(lst, 4).is_ok());
  net::SockId cli = a.sys_socket(net::Proto::TCP).value();
  (void)a.sys_connect(cli, net::SockAddr{b.vip(), 7000});
  Result<net::SockId> srv(Err::WOULD_BLOCK);
  for (int i = 0; i < 3000 && !srv.is_ok(); ++i) {
    net.step_for(10 * sim::kMillisecond);
    srv = b.sys_accept(lst, nullptr);
  }
  ASSERT_TRUE(srv.is_ok());

  Bytes data = pattern_bytes(256 * 1024, 77);
  std::size_t sent = 0;
  Bytes got;
  for (int iter = 0; iter < 60000 && got.size() < data.size(); ++iter) {
    if (sent < data.size()) {
      Bytes chunk(data.begin() + static_cast<long>(sent), data.end());
      auto w = a.sys_send(cli, chunk, 0);
      if (w.is_ok()) sent += w.value();
    }
    net.step_for(5 * sim::kMillisecond);
    while (true) {
      auto r = b.sys_recv(srv.value(), 65536, 0);
      if (!r.is_ok() || r.value().eof) break;
      append_bytes(got, r.value().data);
    }
  }
  EXPECT_EQ(got, data);
  // Reassembly actually happened out of order at least once.
  EXPECT_GT(net.packets_dropped(), 0u);
}

// ---- Failure flight recorder ----------------------------------------------
//
// Every injected Manager↔Agent failure must leave a postmortem: a
// zapc.obs.postmortem.v1 dump naming the op and the phase it died in.

class PostmortemTest : public ::testing::Test {
 protected:
  PostmortemTest() {
    obs::flight().set_dir(::testing::TempDir() + "zapc_postmortems");
    dumps_before_ = obs::flight().dumps_written();
    mgr_node_ = &cl_.add_node("mgr");
    for (int i = 0; i < 2; ++i) {
      nodes_.push_back(&cl_.add_node("n" + std::to_string(i + 1)));
      agents_.push_back(std::make_unique<core::Agent>(
          *nodes_.back(), core::Agent::kDefaultPort, core::CostModel{},
          &trace_));
    }
    manager_ = std::make_unique<core::Manager>(*mgr_node_, &trace_);
  }

  void start_app() {
    pod::Pod& sp = agents_[0]->create_pod(net::IpAddr(10, 77, 0, 1),
                                          "server-pod");
    (void)sp.spawn(std::make_unique<test::EchoServer>(5000));
    pod::Pod& cp = agents_[1]->create_pod(net::IpAddr(10, 77, 0, 2),
                                          "client-pod");
    (void)cp.spawn(std::make_unique<test::EchoClient>(
        net::SockAddr{net::IpAddr(10, 77, 0, 1), 5000}, 4 << 20));
    cl_.run_for(20 * sim::kMillisecond);
  }

  std::size_t new_dumps() const {
    return obs::flight().dumps_written() - dumps_before_;
  }

  /// Parses the most recent postmortem and checks the required fields.
  obs::Json last_postmortem(const std::string& want_kind, u64 want_op) {
    EXPECT_TRUE(std::filesystem::exists(obs::flight().last_path()))
        << obs::flight().last_path();
    auto parsed = obs::json_parse(obs::flight().last_json());
    EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    if (!parsed.is_ok()) return obs::Json{};
    const obs::Json& j = parsed.value();
    EXPECT_EQ(j.find("schema")->str(), obs::kPostmortemSchemaVersion);
    if (!want_kind.empty()) {
      EXPECT_EQ(j.find("kind")->str(), want_kind);
    }
    EXPECT_EQ(j.find("op_id")->num_u64(), want_op);
    EXPECT_NE(want_op, 0u);
    EXPECT_FALSE(j.find("phase")->str().empty());
    EXPECT_FALSE(j.find("reason")->str().empty());
    return parsed.value();
  }

  os::Cluster cl_;
  core::Trace trace_;
  os::Node* mgr_node_ = nullptr;
  std::vector<os::Node*> nodes_;
  std::vector<std::unique_ptr<core::Agent>> agents_;
  std::unique_ptr<core::Manager> manager_;
  std::size_t dumps_before_ = 0;
};

TEST_F(PostmortemTest, FailedCheckpointDumpsCkptFail) {
  bool done = false;
  core::Manager::CheckpointReport cr;
  manager_->checkpoint(
      {{agents_[0]->addr(), "no-such-pod", "san://ckpt/x"}},
      core::CkptMode::SNAPSHOT,
      [&](core::Manager::CheckpointReport r) {
        cr = std::move(r);
        done = true;
      });
  for (int i = 0; i < 20000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_FALSE(cr.ok);

  ASSERT_GE(new_dumps(), 1u);
  obs::Json j = last_postmortem("ckpt_fail", cr.op_id);
  // The op died waiting for meta-data; the dump names that phase.
  EXPECT_EQ(j.find("phase")->str(), "mgr.ckpt.meta_wait");
  EXPECT_EQ(j.find("who")->str(), "manager");
}

TEST_F(PostmortemTest, AgentNodeDeathDumpsOnManagerAndSurvivor) {
  start_app();
  bool done = false;
  core::Manager::CheckpointReport cr;
  manager_->checkpoint(
      {
          {agents_[0]->addr(), "server-pod", "san://ckpt/server"},
          {agents_[1]->addr(), "client-pod", "san://ckpt/client"},
      },
      core::CkptMode::SNAPSHOT,
      [&](core::Manager::CheckpointReport r) {
        cr = std::move(r);
        done = true;
      });
  nodes_[1]->fail();
  for (int i = 0; i < 60000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_FALSE(cr.ok);
  cl_.run_for(100 * sim::kMillisecond);  // let the abort reach agent 0

  // Two sides died: the Manager (ckpt_fail) and the surviving agent,
  // which aborted on the Manager's ABORT (ckpt_abort).  Both postmortems
  // carry the same op id.
  ASSERT_GE(new_dumps(), 2u);
  obs::Json j = last_postmortem("ckpt_abort", cr.op_id);
  EXPECT_EQ(j.find("who")->str(), "agent@n1");
  // The agent died inside its checkpoint pipeline, phase says where.
  EXPECT_EQ(j.find("phase")->str().rfind("ckpt", 0), 0u);
}

TEST_F(PostmortemTest, CorruptImageRestartDumpsRestartFail) {
  cl_.san().write("ckpt/garbage", test::pattern_bytes(4096, 13));
  // A minimal meta table so the restart schedule builds and the garbage
  // actually reaches the agent before anything can go wrong.
  ckpt::NetMeta meta;
  meta.pod_vip = net::IpAddr::parse("10.9.9.9").value();
  bool done = false;
  core::Manager::RestartReport rr;
  manager_->restart(
      {{agents_[0]->addr(), "zombie-pod", "san://ckpt/garbage"}},
      {{"zombie-pod", meta}},
      [&](core::Manager::RestartReport r) {
        rr = std::move(r);
        done = true;
      });
  for (int i = 0; i < 20000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_FALSE(rr.ok);

  ASSERT_GE(new_dumps(), 1u);
  obs::Json j = last_postmortem("restart_fail", rr.op_id);
  EXPECT_EQ(j.find("who")->str(), "manager");
  EXPECT_EQ(j.find("phase")->str().rfind("mgr.restart", 0), 0u);
}

TEST(Robustness, SanRandomOpsBehaveLikeAMap) {
  Rng rng(2020);
  os::VirtualSAN san;
  std::map<std::string, Bytes> model;
  for (int op = 0; op < 2000; ++op) {
    std::string path = "p" + std::to_string(rng.below(30));
    switch (rng.below(4)) {
      case 0: {
        Bytes data = pattern_bytes(rng.below(100));
        san.write(path, data);
        model[path] = data;
        break;
      }
      case 1: {
        Bytes data = pattern_bytes(rng.below(50), 9);
        san.append(path, data);
        append_bytes(model[path], data);
        break;
      }
      case 2: {
        bool se = san.remove(path).is_ok();
        bool me = model.erase(path) > 0;
        ASSERT_EQ(se, me);
        break;
      }
      default: {
        auto r = san.read(path);
        auto it = model.find(path);
        ASSERT_EQ(r.is_ok(), it != model.end());
        if (r.is_ok()) {
          ASSERT_EQ(r.value(), it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(san.object_count(), model.size());
}

}  // namespace
}  // namespace zapc
