// Network-state checkpoint-restart unit tests (paper §5 mechanics), plus
// the Manager's restart scheduling (roles and overlap computation).
#include <gtest/gtest.h>

#include "core/netckpt.h"
#include "core/schedule.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "os/cluster.h"
#include "pod/pod.h"
#include "tests/helpers.h"

namespace zapc::core {
namespace {

using test::pattern_bytes;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

/// Two pods on two nodes with a TCP connection between them, plus helpers
/// to pump the network.
class NetCkptTest : public ::testing::Test {
 protected:
  NetCkptTest() {
    n1_ = &cl_.add_node("n1");
    n2_ = &cl_.add_node("n2");
    p1_ = std::make_unique<pod::Pod>(*n1_, vip(1), "p1");
    p2_ = std::make_unique<pod::Pod>(*n2_, vip(2), "p2");
  }

  /// Establishes a connection from p1 to a listener on p2.
  /// Returns {client sock on p1, accepted sock on p2, listener}.
  std::tuple<net::SockId, net::SockId, net::SockId> connect_pods(
      u16 port = 6000) {
    net::Stack& s2 = p2_->stack();
    net::SockId lst = s2.sys_socket(net::Proto::TCP).value();
    EXPECT_TRUE(s2.sys_bind(lst, net::SockAddr{net::kAnyAddr, port}).is_ok());
    EXPECT_TRUE(s2.sys_listen(lst, 8).is_ok());

    net::Stack& s1 = p1_->stack();
    net::SockId cli = s1.sys_socket(net::Proto::TCP).value();
    EXPECT_EQ(s1.sys_connect(cli, net::SockAddr{vip(2), port}).err(),
              Err::IN_PROGRESS);
    cl_.run_for(10 * sim::kMillisecond);
    auto child = s2.sys_accept(lst, nullptr);
    EXPECT_TRUE(child.is_ok());
    return {cli, child.value_or(net::kInvalidSock), lst};
  }

  os::Cluster cl_;
  os::Node* n1_;
  os::Node* n2_;
  std::unique_ptr<pod::Pod> p1_;
  std::unique_ptr<pod::Pod> p2_;
};

TEST_F(NetCkptTest, SaveIsNonDestructive) {
  auto [cli, srv, lst] = connect_pods();
  Bytes msg = to_bytes("data waiting in the receive queue");
  ASSERT_TRUE(p1_->stack().sys_send(cli, msg, 0).is_ok());
  cl_.run_for(10 * sim::kMillisecond);

  // Freeze and checkpoint p2's network state.
  p2_->suspend();
  p2_->filter().block_addr(vip(2));
  ckpt::NetMeta meta;
  std::vector<ckpt::SocketImage> socks;
  ASSERT_TRUE(NetCheckpoint::save(*p2_, meta, socks).is_ok());

  // The captured image holds the queued data...
  const ckpt::SocketImage* srv_img = nullptr;
  for (const auto& s : socks) {
    if (s.old_id == srv) srv_img = &s;
  }
  ASSERT_NE(srv_img, nullptr);
  ASSERT_EQ(srv_img->recv_queue.size(), 1u);
  EXPECT_EQ(srv_img->recv_queue[0].data, msg);

  // ...and the application still reads exactly the same bytes afterward
  // (the read-and-reinject trick; paper §5).
  p2_->filter().unblock_addr(vip(2));
  p2_->resume();
  auto r = p2_->stack().sys_recv(srv, 1024, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().data, msg);
}

TEST_F(NetCkptTest, SecondCheckpointCapturesAltQueue) {
  auto [cli, srv, lst] = connect_pods();
  ASSERT_TRUE(p1_->stack().sys_send(cli, to_bytes("round1"), 0).is_ok());
  cl_.run_for(10 * sim::kMillisecond);

  // First checkpoint drains + reinjects into the alternate queue.
  ckpt::NetMeta meta1;
  std::vector<ckpt::SocketImage> socks1;
  ASSERT_TRUE(NetCheckpoint::save(*p2_, meta1, socks1).is_ok());
  ASSERT_NE(p2_->stack().find(srv)->alt_queue(), nullptr);

  // Second checkpoint before the app reads: must still see the data
  // (paper §5: "the checkpoint procedure must save the state of the
  // alternate queue, if applicable").
  ckpt::NetMeta meta2;
  std::vector<ckpt::SocketImage> socks2;
  ASSERT_TRUE(NetCheckpoint::save(*p2_, meta2, socks2).is_ok());
  const ckpt::SocketImage* img = nullptr;
  for (const auto& s : socks2) {
    if (s.old_id == srv) img = &s;
  }
  ASSERT_NE(img, nullptr);
  ASSERT_FALSE(img->recv_queue.empty());
  EXPECT_EQ(to_string(img->recv_queue[0].data), "round1");
}

TEST_F(NetCkptTest, UrgentByteCaptured) {
  auto [cli, srv, lst] = connect_pods();
  ASSERT_TRUE(p1_->stack().sys_send(cli, to_bytes("normal"), 0).is_ok());
  ASSERT_TRUE(p1_->stack().sys_send(cli, Bytes{'U'}, net::MSG_OOB).is_ok());
  cl_.run_for(10 * sim::kMillisecond);
  ASSERT_TRUE(p2_->stack().find_tcp(srv)->has_urgent());

  ckpt::NetMeta meta;
  std::vector<ckpt::SocketImage> socks;
  ASSERT_TRUE(NetCheckpoint::save(*p2_, meta, socks).is_ok());

  const ckpt::SocketImage* img = nullptr;
  for (const auto& s : socks) {
    if (s.old_id == srv) img = &s;
  }
  ASSERT_NE(img, nullptr);
  bool has_oob = false;
  for (const auto& item : img->recv_queue) {
    if (item.oob) {
      has_oob = true;
      EXPECT_EQ(item.data, Bytes{'U'});
    }
  }
  EXPECT_TRUE(has_oob);
  // Still readable by the app afterwards (re-injected).
  EXPECT_TRUE(p2_->stack().find_tcp(srv)->has_urgent());
  auto oob = p2_->stack().sys_recv(srv, 1, net::MSG_OOB);
  ASSERT_TRUE(oob.is_ok());
  EXPECT_EQ(oob.value().data, Bytes{'U'});
}

TEST_F(NetCkptTest, NaivePeekMissesUrgentData) {
  // The Cruz critique (paper §2): peeking at the receive queue cannot see
  // urgent data; ZapC's method does.
  auto [cli, srv, lst] = connect_pods();
  ASSERT_TRUE(p1_->stack().sys_send(cli, to_bytes("ab"), 0).is_ok());
  ASSERT_TRUE(p1_->stack().sys_send(cli, Bytes{'U'}, net::MSG_OOB).is_ok());
  cl_.run_for(10 * sim::kMillisecond);

  auto peeked = p2_->stack().sys_recv(srv, 4096, net::MSG_PEEK);
  ASSERT_TRUE(peeked.is_ok());
  EXPECT_EQ(to_string(peeked.value().data), "ab");  // no 'U' visible
  EXPECT_TRUE(p2_->stack().find_tcp(srv)->has_urgent());
}

TEST_F(NetCkptTest, SendQueueCapturedNonDestructively) {
  auto [cli, srv, lst] = connect_pods();
  // Block the receiver so data accumulates unacknowledged.
  p2_->filter().block_addr(vip(2));
  Bytes msg = pattern_bytes(4096, 5);
  ASSERT_TRUE(p1_->stack().sys_send(cli, msg, 0).is_ok());
  cl_.run_for(10 * sim::kMillisecond);

  ckpt::NetMeta meta;
  std::vector<ckpt::SocketImage> socks;
  ASSERT_TRUE(NetCheckpoint::save(*p1_, meta, socks).is_ok());
  const ckpt::SocketImage* img = nullptr;
  for (const auto& s : socks) {
    if (s.old_id == cli) img = &s;
  }
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->send_queue, msg);
  EXPECT_EQ(img->pcb_sent - img->pcb_acked, msg.size());

  // Unblocking lets TCP deliver normally: capture had no side effects.
  p2_->filter().unblock_addr(vip(2));
  cl_.run_for(2 * sim::kSecond);
  auto r = p2_->stack().sys_recv(srv, 65536, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().data, msg);
}

TEST_F(NetCkptTest, MetaClassifiesStates) {
  auto [cli, srv, lst] = connect_pods();
  // Half-duplex: client shuts down its write side.
  ASSERT_TRUE(
      p1_->stack().sys_shutdown(cli, net::ShutdownHow::WR).is_ok());
  cl_.run_for(10 * sim::kMillisecond);

  ckpt::NetMeta meta;
  std::vector<ckpt::SocketImage> socks;
  ASSERT_TRUE(NetCheckpoint::save(*p1_, meta, socks).is_ok());
  ASSERT_EQ(meta.entries.size(), 1u);
  EXPECT_EQ(meta.entries[0].state, ckpt::ConnState::HALF_DUPLEX);

  ckpt::NetMeta meta2;
  std::vector<ckpt::SocketImage> socks2;
  ASSERT_TRUE(NetCheckpoint::save(*p2_, meta2, socks2).is_ok());
  // p2 has the listener and the (peer-closed) connection.
  ASSERT_EQ(meta2.entries.size(), 2u);
  bool saw_listener = false, saw_half = false;
  for (const auto& e : meta2.entries) {
    if (e.state == ckpt::ConnState::LISTENER) saw_listener = true;
    if (e.state == ckpt::ConnState::HALF_DUPLEX) saw_half = true;
  }
  EXPECT_TRUE(saw_listener);
  EXPECT_TRUE(saw_half);
}

TEST_F(NetCkptTest, UdpQueueAlwaysSaved) {
  net::Stack& s2 = p2_->stack();
  net::SockId rx = s2.sys_socket(net::Proto::UDP).value();
  ASSERT_TRUE(s2.sys_bind(rx, net::SockAddr{net::kAnyAddr, 9100}).is_ok());
  net::Stack& s1 = p1_->stack();
  net::SockId tx = s1.sys_socket(net::Proto::UDP).value();
  ASSERT_TRUE(
      s1.sys_sendto(tx, to_bytes("dgram-a"), 0, net::SockAddr{vip(2), 9100})
          .is_ok());
  ASSERT_TRUE(
      s1.sys_sendto(tx, to_bytes("dgram-b"), 0, net::SockAddr{vip(2), 9100})
          .is_ok());
  cl_.run_for(5 * sim::kMillisecond);

  ckpt::NetMeta meta;
  std::vector<ckpt::SocketImage> socks;
  ASSERT_TRUE(NetCheckpoint::save(*p2_, meta, socks).is_ok());
  const ckpt::SocketImage* img = nullptr;
  for (const auto& s : socks) {
    if (s.old_id == rx) img = &s;
  }
  ASSERT_NE(img, nullptr);
  ASSERT_EQ(img->recv_queue.size(), 2u);
  EXPECT_EQ(to_string(img->recv_queue[0].data), "dgram-a");
  EXPECT_EQ(to_string(img->recv_queue[1].data), "dgram-b");
  // Datagrams still readable afterwards with boundaries intact.
  EXPECT_EQ(to_string(s2.sys_recv(rx, 100, 0).value().data), "dgram-a");
  EXPECT_EQ(to_string(s2.sys_recv(rx, 100, 0).value().data), "dgram-b");
}

TEST_F(NetCkptTest, RestoreSocketParamsRoundTrip) {
  // Configure distinctive parameters, capture, restore onto a new socket
  // in a fresh pod, and verify via getsockopt.
  auto [cli, srv, lst] = connect_pods();
  net::Stack& s1 = p1_->stack();
  ASSERT_TRUE(s1.sys_setsockopt(cli, net::SockOpt::SO_RCVBUF, 12345).is_ok());
  ASSERT_TRUE(s1.sys_setsockopt(cli, net::SockOpt::TCP_NODELAY, 1).is_ok());
  ASSERT_TRUE(s1.sys_setsockopt(cli, net::SockOpt::O_NONBLOCK, 1).is_ok());

  ckpt::NetMeta meta;
  std::vector<ckpt::SocketImage> socks;
  ASSERT_TRUE(NetCheckpoint::save(*p1_, meta, socks).is_ok());
  const ckpt::SocketImage* img = nullptr;
  for (const auto& s : socks) {
    if (s.old_id == cli) img = &s;
  }
  ASSERT_NE(img, nullptr);

  os::Node& n3 = cl_.add_node("n3");
  pod::Pod p3(n3, vip(3), "p3");
  net::SockId fresh = p3.stack().sys_socket(net::Proto::TCP).value();
  // Not connected; restore_socket applies parameters and queues only.
  ckpt::SocketImage local = *img;
  local.connected = false;
  local.shut_wr = false;
  local.peer_closed = false;
  ASSERT_TRUE(
      NetCheckpoint::restore_socket(p3, fresh, local, 0, {}).is_ok());
  EXPECT_EQ(p3.stack().sys_getsockopt(fresh, net::SockOpt::SO_RCVBUF).value(),
            12345);
  EXPECT_EQ(
      p3.stack().sys_getsockopt(fresh, net::SockOpt::TCP_NODELAY).value(),
      1);
  EXPECT_EQ(
      p3.stack().sys_getsockopt(fresh, net::SockOpt::O_NONBLOCK).value(), 1);
}

// ---- Restart scheduling ---------------------------------------------------------

ckpt::NetMetaEntry conn_entry(net::SockId sock, net::SockAddr src,
                              net::SockAddr dst, u32 sent, u32 acked,
                              u32 recv) {
  ckpt::NetMetaEntry e;
  e.sock = sock;
  e.proto = net::Proto::TCP;
  e.source = src;
  e.target = dst;
  e.state = ckpt::ConnState::FULL_DUPLEX;
  e.pcb_sent = sent;
  e.pcb_acked = acked;
  e.pcb_recv = recv;
  return e;
}

TEST(Schedule, PairsRolesConsistently) {
  net::SockAddr a{vip(1), 40000}, b{vip(2), 6000};
  ckpt::NetMeta m1, m2;
  m1.pod_vip = vip(1);
  m2.pod_vip = vip(2);
  m1.entries.push_back(conn_entry(5, a, b, 100, 100, 200));
  // Listener on p2 covering the connection's source port.
  ckpt::NetMetaEntry lst;
  lst.sock = 1;
  lst.source = net::SockAddr{vip(2), 6000};
  lst.state = ckpt::ConnState::LISTENER;
  m2.entries.push_back(lst);
  m2.entries.push_back(conn_entry(7, b, a, 200, 200, 100));

  auto plan = build_restart_plan({m1, m2});
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  const auto& e1 = plan.value().pod_meta[vip(1)].entries[0];
  const auto& e2 = plan.value().pod_meta[vip(2)].entries[1];
  // p2's endpoint shares its port with the listener → must accept.
  EXPECT_EQ(e2.role, ckpt::PeerRole::ACCEPT);
  EXPECT_EQ(e1.role, ckpt::PeerRole::CONNECT);
}

TEST(Schedule, ComputesOverlapDiscard) {
  // Peer received up to 250 but our acked is only 200: the first 50
  // bytes of our send queue are duplicates (recv₁ ≥ acked₂ invariant).
  net::SockAddr a{vip(1), 40000}, b{vip(2), 6000};
  ckpt::NetMeta m1, m2;
  m1.pod_vip = vip(1);
  m2.pod_vip = vip(2);
  m1.entries.push_back(conn_entry(5, a, b, /*sent*/ 300, /*acked*/ 200,
                                  /*recv*/ 700));
  m2.entries.push_back(conn_entry(7, b, a, /*sent*/ 700, /*acked*/ 700,
                                  /*recv*/ 250));
  auto plan = build_restart_plan({m1, m2});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().pod_meta[vip(1)].entries[0].discard_send, 50u);
  EXPECT_EQ(plan.value().pod_meta[vip(2)].entries[0].discard_send, 0u);
}

TEST(Schedule, ExternalConnectionRejected) {
  ckpt::NetMeta m1;
  m1.pod_vip = vip(1);
  m1.entries.push_back(conn_entry(5, net::SockAddr{vip(1), 40000},
                                  net::SockAddr{net::IpAddr(8, 8, 8, 8), 53},
                                  0, 0, 0));
  EXPECT_EQ(build_restart_plan({m1}).err(), Err::NO_ENT);
}

TEST(Schedule, ConnectingEntriesNeedNoPeer) {
  ckpt::NetMeta m1;
  m1.pod_vip = vip(1);
  ckpt::NetMetaEntry e = conn_entry(5, net::SockAddr{vip(1), 40000},
                                    net::SockAddr{vip(9), 6000}, 0, 0, 0);
  e.state = ckpt::ConnState::CONNECTING;
  m1.entries.push_back(e);
  auto plan = build_restart_plan({m1});
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().pod_meta[vip(1)].entries[0].role,
            ckpt::PeerRole::CONNECT);
}

TEST(Schedule, ClosedEntriesNeedNoPeer) {
  ckpt::NetMeta m1;
  m1.pod_vip = vip(1);
  ckpt::NetMetaEntry e = conn_entry(5, net::SockAddr{vip(1), 40000},
                                    net::SockAddr{vip(9), 6000}, 0, 0, 0);
  e.state = ckpt::ConnState::CLOSED;
  m1.entries.push_back(e);
  EXPECT_TRUE(build_restart_plan({m1}).is_ok());
}

TEST(Schedule, ArbitraryRolesAreDeterministicAndOpposite) {
  net::SockAddr a{vip(1), 40000}, b{vip(2), 41000};
  ckpt::NetMeta m1, m2;
  m1.pod_vip = vip(1);
  m2.pod_vip = vip(2);
  m1.entries.push_back(conn_entry(5, a, b, 0, 0, 0));
  m2.entries.push_back(conn_entry(7, b, a, 0, 0, 0));
  auto plan1 = build_restart_plan({m1, m2});
  auto plan2 = build_restart_plan({m2, m1});  // order-independent
  ASSERT_TRUE(plan1.is_ok());
  ASSERT_TRUE(plan2.is_ok());
  auto r1a = plan1.value().pod_meta[vip(1)].entries[0].role;
  auto r1b = plan1.value().pod_meta[vip(2)].entries[0].role;
  EXPECT_NE(r1a, r1b);
  EXPECT_EQ(r1a, plan2.value().pod_meta[vip(1)].entries[0].role);
}

}  // namespace
}  // namespace zapc::core
