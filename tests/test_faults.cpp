// Failure-hardened coordination under deterministic fault injection:
// phase deadlines name the stalled peer, transient failures retry, the
// two-phase image commit never clobbers the last good image, aborted
// operations are transparent to the application (byte-exact resume), a
// failed coordinated restart tears down partially restored pods, and
// every op attempt — aborted ones included — leaves exactly one line in
// the Manager's op ledger (DESIGN.md §10).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/manager.h"
#include "fault/fault.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"

namespace zapc::core {
namespace {

using test::EchoClient;
using test::EchoServer;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

u64 counter_value(const std::string& name) {
  const auto snap = obs::metrics().snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Tight watchdogs so every injected hang turns into a prompt, named
/// abort instead of a stuck test.
Manager::Deadlines fast_deadlines() {
  Manager::Deadlines d;
  d.connect_us = 1 * sim::kSecond;
  d.meta_us = 2 * sim::kSecond;
  d.done_us = 2 * sim::kSecond;
  d.restart_us = 4 * sim::kSecond;
  d.agent_barrier_us = 2 * sim::kSecond;
  d.agent_stream_us = 2 * sim::kSecond;
  return d;
}

class FaultTest : public ::testing::Test {
 protected:
  static constexpr u32 kEchoBytes = 2 << 20;

  FaultTest() {
    fault::injector().clear();
    mgr_node_ = &cl_.add_node("mgr");
    for (int i = 0; i < 4; ++i) {
      nodes_.push_back(&cl_.add_node("n" + std::to_string(i + 1)));
      agents_.push_back(
          std::make_unique<Agent>(*nodes_.back(), Agent::kDefaultPort,
                                  CostModel{}, &trace_));
    }
    manager_ = std::make_unique<Manager>(*mgr_node_, &trace_);
    manager_->set_ledger(&ledger_);
  }

  ~FaultTest() override { fault::injector().clear(); }

  void start_app(u32 bytes = kEchoBytes) {
    pod::Pod& sp = agents_[0]->create_pod(vip(1), "server-pod");
    server_pid_ = sp.spawn(std::make_unique<EchoServer>(5000));
    pod::Pod& cp = agents_[1]->create_pod(vip(2), "client-pod");
    client_pid_ = cp.spawn(std::make_unique<EchoClient>(
        net::SockAddr{vip(1), 5000}, bytes));
    cl_.run_for(20 * sim::kMillisecond);
  }

  Manager::CheckpointReport checkpoint(Manager::CkptOptions opts = {}) {
    Manager::CheckpointReport out;
    bool done = false;
    manager_->checkpoint(
        {
            {agents_[0]->addr(), "server-pod", "san://ckpt/server"},
            {agents_[1]->addr(), "client-pod", "san://ckpt/client"},
        },
        CkptMode::SNAPSHOT,
        [&](Manager::CheckpointReport r) {
          out = std::move(r);
          done = true;
        },
        opts);
    for (int i = 0; i < 20000 && !done; ++i) {
      cl_.run_for(sim::kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }

  Manager::RestartReport restart(int dst_a, int dst_b,
                                 Manager::RestartOptions opts = {}) {
    Manager::RestartReport out;
    bool done = false;
    manager_->restart(
        {
            {agents_[dst_a]->addr(), "server-pod", "san://ckpt/server"},
            {agents_[dst_b]->addr(), "client-pod", "san://ckpt/client"},
        },
        {},
        [&](Manager::RestartReport r) {
          out = std::move(r);
          done = true;
        },
        opts);
    for (int i = 0; i < 20000 && !done; ++i) {
      cl_.run_for(sim::kMillisecond);
    }
    EXPECT_TRUE(done);
    return out;
  }

  i32 wait_client(int agent_idx, sim::Time budget = 120 * sim::kSecond) {
    pod::Pod* cp = agents_[agent_idx]->find_pod("client-pod");
    if (cp == nullptr) return -100;
    for (sim::Time t = 0; t < budget; t += 10 * sim::kMillisecond) {
      cl_.run_for(10 * sim::kMillisecond);
      os::Process* p = cp->find_process(client_pid_);
      if (p != nullptr && p->state() == os::ProcState::EXITED) {
        return p->exit_code();
      }
    }
    return -101;
  }

  /// Asserts the two-phase commit left no half-written image behind.
  void expect_no_temp_images() {
    for (const std::string& path : cl_.san().list("")) {
      EXPECT_FALSE(path.size() >= 4 &&
                   path.compare(path.size() - 4, 4, ".tmp") == 0)
          << "orphan temp image: " << path;
    }
  }

  void arm(fault::FaultSpec spec) { fault::injector().arm(spec); }

  /// DESIGN.md §10: every op attempt that opened a Manager root span —
  /// aborted or not — leaves exactly one line in the op ledger.
  void expect_ledger_line_per_op() {
    std::map<obs::OpId, int> lines;
    for (const auto& e : ledger_.entries()) ++lines[e.op];
    for (const auto& s : trace_.recorder().spans()) {
      if (s.kind != obs::SpanKind::SPAN ||
          (s.name != "mgr.ckpt" && s.name != "mgr.restart")) {
        continue;
      }
      EXPECT_EQ(lines[s.op], 1)
          << s.name << " op " << s.op << " lacks its ledger line";
    }
  }

  /// The most recent ledger line, for asserting on the just-run op.
  const obs::LedgerEntry& last_ledger() {
    EXPECT_FALSE(ledger_.entries().empty());
    return ledger_.entries().back();
  }

  os::Cluster cl_;
  Trace trace_;
  os::Node* mgr_node_;
  std::vector<os::Node*> nodes_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unique_ptr<Manager> manager_;
  obs::Ledger ledger_;
  i32 server_pid_ = 0;
  i32 client_pid_ = 0;
};

TEST_F(FaultTest, DroppedMetaReportExpiresDeadlineNamingStalledPeer) {
  start_app();
  fault::FaultSpec s;
  s.kind = fault::FaultKind::DROP_MSG;
  s.msg_type = static_cast<u8>(MsgType::META_REPORT);
  arm(s);

  const u64 expired_before = counter_value("mgr.phase.deadline_expired");
  const sim::Time t0 = cl_.now();
  Manager::CkptOptions opts;
  opts.deadlines = fast_deadlines();
  auto cr = checkpoint(opts);

  EXPECT_FALSE(cr.ok);
  EXPECT_EQ(cr.attempts, 1u);
  // The failure names the expired phase and the stalled pod.
  EXPECT_NE(cr.error.find("meta_wait"), std::string::npos) << cr.error;
  EXPECT_NE(cr.error.find("server-pod"), std::string::npos) << cr.error;
  // ... and it happened at the deadline, not after an unbounded hang.
  EXPECT_LT(cl_.now() - t0, 4 * sim::kSecond);
  EXPECT_GT(counter_value("mgr.phase.deadline_expired"), expired_before);

  // The aborted attempt still got its ledger line, with the abort
  // reason and no retry queued.
  ASSERT_EQ(ledger_.entries().size(), 1u);
  EXPECT_EQ(last_ledger().kind, "ckpt");
  EXPECT_EQ(last_ledger().outcome, "aborted");
  EXPECT_FALSE(last_ledger().will_retry);
  EXPECT_NE(last_ledger().error.find("meta_wait"), std::string::npos)
      << last_ledger().error;
  expect_ledger_line_per_op();

  // The abort is transparent: the app resumes and verifies every byte.
  fault::injector().clear();
  EXPECT_EQ(wait_client(1), 0);
  expect_no_temp_images();
}

TEST_F(FaultTest, DroppedContinueIsRetriedToSuccess) {
  start_app();
  fault::FaultSpec s;
  s.kind = fault::FaultKind::DROP_MSG;
  s.msg_type = static_cast<u8>(MsgType::CONTINUE);
  arm(s);

  const u64 retries_before = counter_value("mgr.ckpt.retries");
  Manager::CkptOptions opts;
  opts.deadlines = fast_deadlines();
  opts.retry.max_retries = 2;
  opts.retry.backoff_us = 100 * sim::kMillisecond;
  auto cr = checkpoint(opts);

  EXPECT_TRUE(cr.ok) << cr.error;
  EXPECT_EQ(cr.attempts, 2u);
  EXPECT_EQ(counter_value("mgr.ckpt.retries"), retries_before + 1);

  // Both attempts are in the ledger: the aborted first one flagged
  // will_retry, the successful second one a separate line (fresh op id).
  ASSERT_EQ(ledger_.entries().size(), 2u);
  EXPECT_EQ(ledger_.entries()[0].outcome, "aborted");
  EXPECT_TRUE(ledger_.entries()[0].will_retry);
  EXPECT_TRUE(ledger_.entries()[0].transient);
  EXPECT_EQ(ledger_.entries()[0].attempt, 1u);
  EXPECT_EQ(ledger_.entries()[1].outcome, "ok");
  EXPECT_EQ(ledger_.entries()[1].attempt, 2u);
  EXPECT_NE(ledger_.entries()[0].op, ledger_.entries()[1].op);
  expect_ledger_line_per_op();

  EXPECT_EQ(wait_client(1), 0);
  expect_no_temp_images();
}

TEST_F(FaultTest, StalledAgentChannelFailsWithinConfiguredDeadline) {
  start_app();
  // The agent "hangs": its META_REPORT is held far beyond the deadline.
  fault::FaultSpec s;
  s.kind = fault::FaultKind::STALL_CHANNEL;
  s.msg_type = static_cast<u8>(MsgType::META_REPORT);
  s.stall_us = 10 * sim::kSecond;
  arm(s);

  const sim::Time t0 = cl_.now();
  Manager::CkptOptions opts;
  opts.deadlines = fast_deadlines();  // meta deadline: 2s
  auto cr = checkpoint(opts);

  EXPECT_FALSE(cr.ok);
  EXPECT_NE(cr.error.find("deadline expired"), std::string::npos)
      << cr.error;
  EXPECT_NE(cr.error.find("meta_wait"), std::string::npos) << cr.error;
  EXPECT_NE(cr.error.find("-pod"), std::string::npos) << cr.error;
  EXPECT_LT(cl_.now() - t0, 4 * sim::kSecond);

  EXPECT_EQ(last_ledger().outcome, "aborted");
  expect_ledger_line_per_op();

  fault::injector().clear();
  cl_.run_for(12 * sim::kSecond);  // let the stalled frame drain
  EXPECT_EQ(wait_client(1), 0);
  expect_no_temp_images();
}

TEST_F(FaultTest, TransientStorageFailureIsRetriedToSuccess) {
  start_app();
  fault::FaultSpec s;
  s.kind = fault::FaultKind::SAN_WRITE_FAIL;
  s.san_prefix = "ckpt/";
  arm(s);

  Manager::CkptOptions opts;
  opts.deadlines = fast_deadlines();
  opts.retry.max_retries = 1;
  opts.retry.backoff_us = 100 * sim::kMillisecond;
  auto cr = checkpoint(opts);

  EXPECT_TRUE(cr.ok) << cr.error;
  EXPECT_EQ(cr.attempts, 2u);
  EXPECT_TRUE(cl_.san().exists("ckpt/server"));
  EXPECT_TRUE(cl_.san().exists("ckpt/client"));
  expect_ledger_line_per_op();
  EXPECT_EQ(wait_client(1), 0);
  expect_no_temp_images();
}

TEST_F(FaultTest, TornWriteNeverClobbersLastGoodImage) {
  start_app();
  auto base = checkpoint();  // clean baseline, committed
  ASSERT_TRUE(base.ok) << base.error;
  auto server_before = cl_.san().read("ckpt/server");
  ASSERT_TRUE(server_before.is_ok());

  // The SAN silently truncates the next image object (a torn write).
  fault::FaultSpec s;
  s.kind = fault::FaultKind::SAN_SHORT_WRITE;
  s.san_prefix = "ckpt/";
  s.short_bytes = 128;
  arm(s);

  Manager::CkptOptions opts;
  opts.deadlines = fast_deadlines();
  auto cr = checkpoint(opts);
  EXPECT_FALSE(cr.ok);
  EXPECT_EQ(last_ledger().outcome, "aborted");
  expect_ledger_line_per_op();
  fault::injector().clear();
  cl_.run_for(3 * sim::kSecond);

  // The staged temp was detected, the abort GC'd it, and the committed
  // image is byte-identical to the baseline.
  expect_no_temp_images();
  auto server_after = cl_.san().read("ckpt/server");
  ASSERT_TRUE(server_after.is_ok());
  EXPECT_EQ(server_before.value(), server_after.value());

  // ... and that last committed image is still restartable.
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  cl_.run_for(100 * sim::kMillisecond);
  auto rr = restart(0, 1);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_EQ(wait_client(1), 0);
}

TEST_F(FaultTest, AbortedDeltaDoesNotAdvanceTheChain) {
  start_app();
  Manager::CkptOptions incr;
  incr.incremental = true;
  auto base = checkpoint(incr);
  ASSERT_TRUE(base.ok) << base.error;

  // An incremental checkpoint aborts on a storage failure: the chain
  // state must stay at the baseline.
  fault::FaultSpec s;
  s.kind = fault::FaultKind::SAN_WRITE_FAIL;
  s.san_prefix = "ckpt/";
  arm(s);
  Manager::CkptOptions opts = incr;
  opts.deadlines = fast_deadlines();
  auto aborted = checkpoint(opts);
  EXPECT_FALSE(aborted.ok);
  fault::injector().clear();
  cl_.run_for(3 * sim::kSecond);

  // The next incremental checkpoint commits a delta over the *baseline*
  // and the whole chain still restarts the application byte-exactly.
  auto cr = checkpoint(incr);
  ASSERT_TRUE(cr.ok) << cr.error;
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  cl_.run_for(100 * sim::kMillisecond);
  auto rr = restart(0, 1);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_EQ(wait_client(1), 0);
  expect_no_temp_images();
}

TEST_F(FaultTest, FailedRestartTearsDownPartiallyRestoredPods) {
  start_app();
  auto cr = checkpoint();
  ASSERT_TRUE(cr.ok) << cr.error;
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  cl_.run_for(100 * sim::kMillisecond);

  // One RESTART_DONE never reaches the Manager: the deadline expires,
  // the Manager broadcasts the abort, and even the pods that restored
  // *successfully* are torn down (a coordinated restart is all-or-none).
  fault::FaultSpec s;
  s.kind = fault::FaultKind::DROP_MSG;
  s.msg_type = static_cast<u8>(MsgType::RESTART_DONE);
  arm(s);

  Manager::RestartOptions ropts;
  ropts.deadlines = fast_deadlines();
  auto rr = restart(2, 3, ropts);
  EXPECT_FALSE(rr.ok);
  EXPECT_NE(rr.error.find("deadline expired"), std::string::npos)
      << rr.error;
  // The aborted restart is a ledger line too, tagged with its kind.
  EXPECT_EQ(last_ledger().kind, "restart");
  EXPECT_EQ(last_ledger().outcome, "aborted");
  fault::injector().clear();
  cl_.run_for(sim::kSecond);
  EXPECT_EQ(agents_[2]->find_pod("server-pod"), nullptr);
  EXPECT_EQ(agents_[3]->find_pod("client-pod"), nullptr);

  // A clean retry of the same restart then works end-to-end.
  auto rr2 = restart(2, 3, ropts);
  ASSERT_TRUE(rr2.ok) << rr2.error;
  expect_ledger_line_per_op();
  EXPECT_EQ(wait_client(3), 0);
}

TEST_F(FaultTest, AbortedMigrationResumesTheSourcePods) {
  start_app();
  // The migration's checkpoint half aborts before the sync point: both
  // source pods must resume in place, untouched.
  fault::FaultSpec s;
  s.kind = fault::FaultKind::DROP_MSG;
  s.msg_type = static_cast<u8>(MsgType::META_REPORT);
  arm(s);

  Manager::MigrateOptions mopts;
  mopts.deadlines = fast_deadlines();
  bool done = false;
  Manager::MigrateReport mr;
  manager_->migrate(
      {
          {agents_[0]->addr(), agents_[2]->addr(), "server-pod", vip(1)},
          {agents_[1]->addr(), agents_[3]->addr(), "client-pod", vip(2)},
      },
      [&](Manager::MigrateReport r) {
        mr = std::move(r);
        done = true;
      },
      mopts);
  for (int i = 0; i < 20000 && !done; ++i) cl_.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(mr.ok);
  // A migration is a checkpoint + restart pair; its aborted checkpoint
  // half left a ledger line like any directly requested op.
  EXPECT_EQ(last_ledger().kind, "ckpt");
  EXPECT_EQ(last_ledger().outcome, "aborted");
  expect_ledger_line_per_op();

  fault::injector().clear();
  cl_.run_for(sim::kSecond);
  ASSERT_NE(agents_[0]->find_pod("server-pod"), nullptr);
  ASSERT_NE(agents_[1]->find_pod("client-pod"), nullptr);
  EXPECT_FALSE(agents_[0]->find_pod("server-pod")->suspended());
  EXPECT_EQ(wait_client(1), 0);
  expect_no_temp_images();
}

// ---- Crash-at-every-phase sweeps -------------------------------------------

class CkptCrashPhaseTest : public FaultTest,
                           public ::testing::WithParamInterface<const char*> {
};

TEST_P(CkptCrashPhaseTest, FailsWithinDeadlineAndSurvivorResumes) {
  start_app();
  fault::FaultSpec s;
  s.kind = fault::FaultKind::CRASH_AT_PHASE;
  s.node = "n1";  // the server-pod's agent dies at the given phase
  s.phase = GetParam();
  arm(s);

  const sim::Time t0 = cl_.now();
  Manager::CkptOptions opts;
  opts.deadlines = fast_deadlines();
  auto cr = checkpoint(opts);

  EXPECT_FALSE(cr.ok);
  EXPECT_NE(cr.error.find("server-pod"), std::string::npos) << cr.error;
  EXPECT_LT(cl_.now() - t0, 6 * sim::kSecond);
  EXPECT_TRUE(nodes_[0]->failed());

  // Whatever phase the agent died in, the aborted attempt left exactly
  // one ledger line recording the failure.
  EXPECT_EQ(last_ledger().outcome, "aborted");
  expect_ledger_line_per_op();

  // The surviving agent's pod was resumed by the abort, not left
  // suspended behind the barrier, and no half-written image remains.
  fault::injector().clear();
  cl_.run_for(3 * sim::kSecond);
  pod::Pod* cp = agents_[1]->find_pod("client-pod");
  ASSERT_NE(cp, nullptr);
  EXPECT_FALSE(cp->suspended());
  expect_no_temp_images();
}

INSTANTIATE_TEST_SUITE_P(AllCkptPhases, CkptCrashPhaseTest,
                         ::testing::Values("ckpt.begin", "ckpt.netckpt",
                                           "ckpt.standalone", "ckpt.deliver",
                                           "ckpt.barrier"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

class RestartCrashPhaseTest
    : public FaultTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(RestartCrashPhaseTest, FailsWithinDeadlineAndTearsDownPartials) {
  start_app();
  auto cr = checkpoint();
  ASSERT_TRUE(cr.ok) << cr.error;
  ASSERT_TRUE(agents_[0]->destroy_pod("server-pod").is_ok());
  ASSERT_TRUE(agents_[1]->destroy_pod("client-pod").is_ok());
  cl_.run_for(100 * sim::kMillisecond);

  fault::FaultSpec s;
  s.kind = fault::FaultKind::CRASH_AT_PHASE;
  s.node = "n3";  // the server-pod's destination agent dies
  s.phase = GetParam();
  arm(s);

  const sim::Time t0 = cl_.now();
  Manager::RestartOptions ropts;
  ropts.deadlines = fast_deadlines();
  auto rr = restart(2, 3, ropts);
  EXPECT_FALSE(rr.ok);
  EXPECT_LT(cl_.now() - t0, 8 * sim::kSecond);
  EXPECT_TRUE(nodes_[2]->failed());

  // The surviving destination tore its restored pod down again.
  fault::injector().clear();
  cl_.run_for(sim::kSecond);
  EXPECT_EQ(agents_[3]->find_pod("client-pod"), nullptr);

  // The images are untouched: restarting on healthy nodes still works,
  // and every attempt along the way (including the abort) is ledgered.
  auto rr2 = restart(0, 1, ropts);
  ASSERT_TRUE(rr2.ok) << rr2.error;
  expect_ledger_line_per_op();
  EXPECT_EQ(wait_client(1), 0);
}

INSTANTIATE_TEST_SUITE_P(AllRestartPhases, RestartCrashPhaseTest,
                         ::testing::Values("restart.begin",
                                           "restart.connectivity",
                                           "restart.netstate",
                                           "restart.standalone"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace zapc::core
