// Multiple pods per node in one coordinated operation (paper §3: "ZapC
// allows multiple pods to execute concurrently on the same node" — e.g.
// a dual-CPU node hosting two application endpoints in two pods — and
// §4's algorithm handles one Agent running several local checkpoints).
#include <gtest/gtest.h>

#include "apps/cpi.h"
#include "apps/launcher.h"
#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"

namespace zapc::core {
namespace {

TEST(Colocated, CoordinatedCheckpointOfTwoPodsPerNode) {
  os::Cluster cl;
  os::Node* mgr_node = &cl.add_node("mgr");
  // Two dual-CPU nodes hosting a 4-rank job: two pods per node.
  std::vector<std::unique_ptr<Agent>> agents;
  std::vector<Agent*> aptrs;
  for (int i = 0; i < 2; ++i) {
    agents.push_back(std::make_unique<Agent>(
        cl.add_node("n" + std::to_string(i + 1), /*ncpus=*/2)));
    aptrs.push_back(agents.back().get());
  }
  Manager mgr(*mgr_node);

  apps::JobHandle job = apps::launch_mpi_job(
      aptrs, "cpi", 4, [](i32 r) {
        apps::CpiProgram::Params p;
        p.rank = r;
        p.size = 4;
        p.intervals = 40'000'000;
        p.intervals_per_step = 100'000;
        p.cost_per_step = 2000;
        return std::make_unique<apps::CpiProgram>(p);
      });
  ASSERT_EQ(agents[0]->pod_count(), 2u);
  ASSERT_EQ(agents[1]->pod_count(), 2u);

  cl.run_for(100 * sim::kMillisecond);
  ASSERT_FALSE(job.finished());

  // One coordinated checkpoint: each Agent receives TWO commands (one
  // per local pod) over separate manager channels, runs both local
  // procedures concurrently, and the single barrier covers all four.
  auto targets = job.san_targets();
  bool done = false;
  Manager::CheckpointReport cr;
  mgr.checkpoint(targets, CkptMode::SNAPSHOT, [&](auto r) {
    cr = std::move(r);
    done = true;
  });
  for (int i = 0; i < 30000 && !done; ++i) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(cr.ok) << cr.error;
  EXPECT_EQ(cr.agents.size(), 4u);
  EXPECT_EQ(cr.metas.size(), 4u);

  // Crash everything; restart with a DIFFERENT packing: all four pods on
  // node 1 (the paper's N→M remapping with M=1).
  for (const auto& pn : job.pod_names) {
    for (Agent* a : aptrs) (void)a->destroy_pod(pn);
  }
  std::vector<Manager::Target> rt;
  for (std::size_t i = 0; i < job.pod_names.size(); ++i) {
    rt.push_back(Manager::Target{aptrs[0]->addr(), job.pod_names[i],
                                 "san://ckpt/" + job.pod_names[i]});
  }
  done = false;
  Manager::RestartReport rr;
  mgr.restart(rt, {}, [&](auto r) {
    rr = std::move(r);
    done = true;
  });
  for (int i = 0; i < 60000 && !done; ++i) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_EQ(agents[0]->pod_count(), 4u);  // N=2 nodes -> M=1 node

  // The 4-rank job finishes correctly squeezed onto one dual-CPU node.
  for (int i = 0; i < 60000; ++i) {
    cl.run_for(10 * sim::kMillisecond);
    if (job.finished()) break;
  }
  ASSERT_TRUE(job.finished());
  EXPECT_EQ(job.exit_code(), 0);
}

TEST(Colocated, SnapshotKeepsCoLocatedPodsIndependent) {
  // An agent checkpointing one of its pods must not disturb other pods
  // on the same node.
  os::Cluster cl;
  os::Node* mgr_node = &cl.add_node("mgr");
  Agent a1(cl.add_node("n1", 2));
  Agent a2(cl.add_node("n2", 2));
  Manager mgr(*mgr_node);

  std::vector<Agent*> aptrs{&a1, &a2};
  apps::JobHandle job = apps::launch_mpi_job(
      aptrs, "job-a", 2, [](i32 r) {
        apps::CpiProgram::Params p;
        p.rank = r;
        p.size = 2;
        p.intervals = 30'000'000;
        p.intervals_per_step = 100'000;
        p.cost_per_step = 2000;
        return std::make_unique<apps::CpiProgram>(p);
      });

  // Independent bystander pods co-located on the same nodes.
  pod::Pod& by1 = a1.create_pod(net::IpAddr(10, 99, 0, 1), "bystander1");
  pod::Pod& by2 = a2.create_pod(net::IpAddr(10, 99, 0, 2), "bystander2");
  i32 b1 = by1.spawn(std::make_unique<test::CounterProgram>(1u << 30, 100));
  i32 b2 = by2.spawn(std::make_unique<test::CounterProgram>(1u << 30, 100));

  cl.run_for(50 * sim::kMillisecond);
  auto count_of = [](pod::Pod& p, i32 pid) {
    return static_cast<test::CounterProgram&>(p.find_process(pid)->program())
        .count();
  };
  u32 c1 = count_of(by1, b1);
  u32 c2 = count_of(by2, b2);

  // Checkpoint only job-a; the bystanders keep running throughout.
  bool done = false;
  Manager::CheckpointReport cr;
  mgr.checkpoint(job.san_targets(), CkptMode::SNAPSHOT, [&](auto r) {
    cr = std::move(r);
    done = true;
  });
  for (int i = 0; i < 30000 && !done; ++i) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(cr.ok) << cr.error;
  EXPECT_FALSE(by1.suspended());
  EXPECT_FALSE(by2.suspended());
  EXPECT_GT(count_of(by1, b1), c1);  // made progress during the checkpoint
  EXPECT_GT(count_of(by2, b2), c2);
}

}  // namespace
}  // namespace zapc::core
