// Offline trace analyzer (tools/zapc-trace): document loading, per-op
// grouping, timeline rendering, and the protocol-invariant validator —
// including that a deliberately corrupted timeline FAILS validation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "tools/trace_analysis.h"

namespace zapc::tools {
namespace {

/// A well-formed coordinated checkpoint: Manager root + continue, one
/// agent with NETWORK_FIRST phases, resume parented under the continue,
/// and a matched pair of restored sockets.
obs::SpanRecorder good_checkpoint(obs::OpId op) {
  obs::SpanRecorder rec;
  obs::SpanId root = rec.begin_at(100, "mgr.ckpt", "manager", 0, op);
  obs::SpanId aroot = rec.begin_at(110, "ckpt", "agent@n1", root, op);
  obs::SpanId net =
      rec.begin_at(120, "ckpt.netckpt", "agent@n1", aroot, op);
  rec.end_at(140, net);
  obs::SpanId sa =
      rec.begin_at(140, "ckpt.standalone", "agent@n1", aroot, op);
  obs::SpanId cont = rec.event_at(150, "manager", "mgr.continue", root, op);
  rec.end_at(400, sa);
  rec.event_at(410, "agent@n1", "agent.resume pod=p0", cont, op);
  rec.end_at(420, aroot);
  rec.end_at(450, root);
  return rec;
}

TEST(TraceAnalysis, GroupsRecordsByOpAndDropsOplessOnes) {
  obs::SpanRecorder rec;
  rec.begin_at(1, "noise", "x");  // op-less
  rec.begin_at(2, "mgr.ckpt", "manager", 0, 7);
  rec.begin_at(3, "mgr.restart", "manager", 0, 9);
  auto ops = group_by_op(rec.spans());
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op, 7u);
  EXPECT_EQ(ops[1].op, 9u);
  EXPECT_EQ(ops[0].records.size(), 1u);
}

TEST(TraceAnalysis, GoodTimelineValidatesClean) {
  obs::SpanRecorder rec = good_checkpoint(3);
  auto bad = validate_ops(rec.spans());
  EXPECT_TRUE(bad.empty()) << bad.front();
}

TEST(TraceAnalysis, TimelineRenderShowsTree) {
  obs::SpanRecorder rec = good_checkpoint(3);
  auto ops = group_by_op(rec.spans());
  ASSERT_EQ(ops.size(), 1u);
  std::string out = render_op_timeline(ops[0]);
  EXPECT_NE(out.find("op 3"), std::string::npos);
  EXPECT_NE(out.find("mgr.continue"), std::string::npos);
  EXPECT_NE(out.find("agent.resume"), std::string::npos);
  // Child phases are indented deeper than the agent root.
  EXPECT_NE(out.find("  ckpt.netckpt"), std::string::npos);
}

TEST(TraceAnalysis, DoubleContinueIsAViolation) {
  obs::SpanRecorder rec = good_checkpoint(3);
  rec.event_at(160, "manager", "mgr.continue", 0, 3);  // corrupt: 2nd one
  auto bad = validate_ops(rec.spans());
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("mgr.continue"), std::string::npos);
}

TEST(TraceAnalysis, MissingContinueIsAViolation) {
  obs::SpanRecorder rec;
  rec.begin_at(100, "mgr.ckpt", "manager", 0, 4);
  auto bad = validate_ops(rec.spans());
  ASSERT_FALSE(bad.empty());
}

TEST(TraceAnalysis, ResumeBeforeContinueIsAViolation) {
  obs::SpanRecorder rec;
  obs::OpId op = 5;
  obs::SpanId root = rec.begin_at(100, "mgr.ckpt", "manager", 0, op);
  obs::SpanId cont =
      rec.event_at(300, "manager", "mgr.continue", root, op);
  rec.event_at(200, "agent@n1", "agent.resume pod=p0", cont, op);
  rec.end_at(400, root);
  auto bad = validate_ops(rec.spans());
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("before mgr.continue"), std::string::npos);
}

TEST(TraceAnalysis, UnparentedResumeIsAViolation) {
  obs::SpanRecorder rec;
  obs::OpId op = 5;
  obs::SpanId root = rec.begin_at(100, "mgr.ckpt", "manager", 0, op);
  rec.event_at(300, "manager", "mgr.continue", root, op);
  rec.event_at(400, "agent@n1", "agent.resume pod=p0", root, op);
  rec.end_at(500, root);
  auto bad = validate_ops(rec.spans());
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("not parented"), std::string::npos);
}

TEST(TraceAnalysis, NetworkLastOrderingFlaggedUnlessAllowed) {
  obs::SpanRecorder rec;
  obs::OpId op = 6;
  obs::SpanId root = rec.begin_at(100, "mgr.ckpt", "manager", 0, op);
  obs::SpanId aroot = rec.begin_at(110, "ckpt", "agent@n1", root, op);
  obs::SpanId sa =
      rec.begin_at(120, "ckpt.standalone", "agent@n1", aroot, op);
  rec.end_at(200, sa);
  obs::SpanId net =
      rec.begin_at(200, "ckpt.netckpt", "agent@n1", aroot, op);
  rec.end_at(220, net);
  rec.event_at(230, "manager", "mgr.continue", root, op);
  rec.end_at(240, aroot);
  rec.end_at(250, root);

  auto bad = validate_ops(rec.spans());
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("NETWORK_FIRST"), std::string::npos);

  ValidateOptions opts;
  opts.allow_network_last = true;
  EXPECT_TRUE(validate_ops(rec.spans(), opts).empty());
}

TEST(TraceAnalysis, OpenSpanIsAViolationUnlessAllowed) {
  obs::SpanRecorder rec = good_checkpoint(3);
  rec.begin_at(500, "ckpt.barrier", "agent@n1", 0, 3);  // never ended
  auto bad = validate_ops(rec.spans());
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("still open"), std::string::npos);

  // Postmortems snapshot mid-failure; their open spans are legitimate.
  ValidateOptions opts;
  opts.allow_open_spans = true;
  EXPECT_TRUE(validate_ops(rec.spans(), opts).empty());
}

TEST(TraceAnalysis, AbortWithoutPostmortemMarkerIsAViolation) {
  obs::SpanRecorder rec;
  obs::OpId op = 9;
  obs::SpanId root = rec.begin_at(100, "mgr.ckpt", "manager", 0, op);
  rec.event_at(200, "manager", "checkpoint ABORTED: storage failed", root,
               op);
  rec.end_at(210, root);
  auto bad = validate_ops(rec.spans());
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("op.fail"), std::string::npos);

  // The op.fail marker obs::dump_op_failure emits satisfies it.
  rec.event_at(205, "manager", "op.fail kind=ckpt_fail", 0, op);
  EXPECT_TRUE(validate_ops(rec.spans()).empty());
}

TEST(TraceAnalysis, RecvAckedInvariantAcrossRestoredPair) {
  auto make = [](u64 recv_a, u64 acked_b) {
    obs::SpanRecorder rec;
    obs::OpId op = 8;
    obs::SpanId root = rec.begin_at(10, "mgr.restart", "manager", 0, op);
    rec.event_at(20, "agent@n1",
                 "net.sock.restored local=10.0.0.1:5000 "
                 "remote=10.0.0.2:6000 recv=" + std::to_string(recv_a) +
                     " acked=40 discard=0",
                 root, op);
    rec.event_at(21, "agent@n2",
                 "net.sock.restored local=10.0.0.2:6000 "
                 "remote=10.0.0.1:5000 recv=60 acked=" +
                     std::to_string(acked_b) + " discard=0",
                 root, op);
    rec.end_at(30, root);
    return rec;
  };
  // recv₁(50) ≥ acked₂(50): consistent.
  EXPECT_TRUE(validate_ops(make(50, 50).spans()).empty());
  // recv₁(49) < acked₂(50): the peer believes data was delivered that
  // the restored socket never received — a real loss. Must flag.
  auto bad = validate_ops(make(49, 50).spans());
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().find("acked"), std::string::npos);
}

TEST(TraceAnalysis, LoadsEvidenceAndPostmortemDocsRejectsOthers) {
  std::string dir = ::testing::TempDir();
  obs::SpanRecorder rec = good_checkpoint(2);

  // zapc.obs.v1 evidence file.
  obs::MetricsRegistry reg;
  obs::Json ev = obs::evidence_json("unit", reg.snapshot(), &rec);
  std::string ev_path = dir + "trace_tool_ev.json";
  std::ofstream(ev_path) << ev.dump(2);
  auto doc = load_trace_doc(ev_path);
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().schema, obs::kSchemaVersion);
  EXPECT_EQ(doc.value().spans.size(), rec.spans().size());
  EXPECT_TRUE(validate_ops(doc.value().spans).empty());

  // Postmortem file.
  obs::Json pm = obs::Json::object();
  pm["schema"] = obs::kPostmortemSchemaVersion;
  pm["kind"] = "ckpt_fail";
  pm["op_id"] = u64{2};
  pm["phase"] = "mgr.ckpt.meta_wait";
  pm["spans"] = obs::spans_to_json(rec);
  std::string pm_path = dir + "trace_tool_pm.json";
  std::ofstream(pm_path) << pm.dump(2);
  auto pdoc = load_trace_doc(pm_path);
  ASSERT_TRUE(pdoc.is_ok()) << pdoc.status().to_string();
  EXPECT_NE(pdoc.value().name.find("ckpt_fail"), std::string::npos);
  EXPECT_EQ(pdoc.value().spans.size(), rec.spans().size());

  // Unknown schema and malformed JSON are rejected, not crashed on.
  std::string bad_path = dir + "trace_tool_bad.json";
  std::ofstream(bad_path) << R"({"schema":"who.knows.v9"})";
  EXPECT_FALSE(load_trace_doc(bad_path).is_ok());
  std::ofstream(bad_path) << "{not json";
  EXPECT_FALSE(load_trace_doc(bad_path).is_ok());
  EXPECT_FALSE(load_trace_doc(dir + "does_not_exist.json").is_ok());
}

}  // namespace
}  // namespace zapc::tools
