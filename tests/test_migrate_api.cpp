// Manager::migrate(): live migration as a single operation — coordinated
// MIGRATE checkpoint with direct streaming + redirect, then the
// coordinated restart on the destination agents.
#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/manager.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"

namespace zapc::core {
namespace {

using test::EchoClient;
using test::EchoServer;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

TEST(MigrateApi, OneCallMovesAWholeJob) {
  os::Cluster cl;
  os::Node* mgr_node = &cl.add_node("mgr");
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < 4; ++i) {
    agents.push_back(
        std::make_unique<Agent>(cl.add_node("n" + std::to_string(i + 1))));
  }
  Manager mgr(*mgr_node);

  pod::Pod& sp = agents[0]->create_pod(vip(1), "srv");
  sp.spawn(std::make_unique<EchoServer>(5000));
  pod::Pod& cp = agents[1]->create_pod(vip(2), "cli");
  i32 cpid = cp.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 6 << 20));
  cl.run_for(20 * sim::kMillisecond);  // mid-transfer

  bool done = false;
  Manager::MigrateReport mr;
  mgr.migrate(
      {
          {agents[0]->addr(), agents[2]->addr(), "srv", vip(1)},
          {agents[1]->addr(), agents[3]->addr(), "cli", vip(2)},
      },
      [&](Manager::MigrateReport r) {
        mr = std::move(r);
        done = true;
      });
  for (int i = 0; i < 60000 && !done; ++i) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(mr.ok) << mr.error;
  EXPECT_TRUE(mr.checkpoint.ok);
  EXPECT_TRUE(mr.restart.ok);
  EXPECT_GT(mr.total_us, 0u);

  // Source agents no longer host the pods; destinations do.
  EXPECT_EQ(agents[0]->find_pod("srv"), nullptr);
  EXPECT_EQ(agents[1]->find_pod("cli"), nullptr);
  ASSERT_NE(agents[2]->find_pod("srv"), nullptr);
  ASSERT_NE(agents[3]->find_pod("cli"), nullptr);

  // The echo stream completes byte-exact on the new nodes.
  pod::Pod* moved = agents[3]->find_pod("cli");
  for (int i = 0; i < 12000; ++i) {
    cl.run_for(10 * sim::kMillisecond);
    os::Process* p = moved->find_process(cpid);
    if (p->state() == os::ProcState::EXITED) {
      EXPECT_EQ(p->exit_code(), 0);
      return;
    }
  }
  FAIL() << "client did not finish after migration";
}

TEST(MigrateApi, FailedCheckpointReportsAndPreservesSource) {
  os::Cluster cl;
  os::Node* mgr_node = &cl.add_node("mgr");
  Agent a1(cl.add_node("n1"));
  Agent a2(cl.add_node("n2"));
  Manager mgr(*mgr_node);

  bool done = false;
  Manager::MigrateReport mr;
  mgr.migrate({{a1.addr(), a2.addr(), "no-such-pod", vip(1)}},
              [&](Manager::MigrateReport r) {
                mr = std::move(r);
                done = true;
              });
  for (int i = 0; i < 30000 && !done; ++i) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(mr.ok);
  EXPECT_FALSE(mr.checkpoint.ok);
  EXPECT_NE(mr.error.find("checkpoint:"), std::string::npos);
}

}  // namespace
}  // namespace zapc::core
