// Shared test utilities.
#pragma once

#include <map>

#include "net/packet.h"
#include "net/stack.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/types.h"

namespace zapc::test {

/// A minimal wire between stacks: routes packets by destination address
/// with fixed latency and optional random loss.  Lets protocol tests run
/// without nodes/pods.
class TestNet {
 public:
  explicit TestNet(sim::Time latency = 50 * sim::kMicrosecond,
                   double loss = 0.0, u64 seed = 7)
      : latency_(latency), loss_(loss), rng_(seed) {}

  void add(net::Stack& s) {
    stacks_[s.vip()] = &s;
    s.set_output([this](net::Packet p) { send(std::move(p)); });
  }

  void send(net::Packet p) {
    ++sent_;
    if (loss_ > 0 && rng_.chance(loss_)) {
      ++dropped_;
      return;
    }
    engine.schedule(latency_, [this, p = std::move(p)] {
      auto it = stacks_.find(p.dst.ip);
      if (it != stacks_.end()) it->second->deliver(p);
    });
  }

  /// Advances virtual time by `dt`, running all due events.
  void step_for(sim::Time dt) { engine.run_until(engine.now() + dt); }

  void set_loss(double p) { loss_ = p; }
  u64 packets_sent() const { return sent_; }
  u64 packets_dropped() const { return dropped_; }

  sim::Engine engine;

 private:
  sim::Time latency_;
  double loss_;
  Rng rng_;
  std::map<net::IpAddr, net::Stack*> stacks_;
  u64 sent_ = 0;
  u64 dropped_ = 0;
};

/// Deterministic payload of n bytes.
inline Bytes pattern_bytes(std::size_t n, u8 salt = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<u8>((i * 131 + salt) & 0xFF);
  }
  return b;
}

}  // namespace zapc::test
