// UDP and raw-IP socket tests, plus packet filter and fabric behaviour.
#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/filter.h"
#include "net/raw.h"
#include "net/stack.h"
#include "net/udp.h"
#include "tests/helpers.h"

namespace zapc::net {
namespace {

using test::TestNet;
using test::pattern_bytes;

class UdpTest : public ::testing::Test {
 protected:
  UdpTest()
      : a_(net_.engine, IpAddr(10, 0, 0, 1), "A"),
        b_(net_.engine, IpAddr(10, 0, 0, 2), "B") {
    net_.add(a_);
    net_.add(b_);
  }

  TestNet net_;
  Stack a_;
  Stack b_;
};

TEST_F(UdpTest, DatagramRoundTrip) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());
  SockId tx = a_.sys_socket(Proto::UDP).value();

  Bytes msg = to_bytes("datagram");
  ASSERT_TRUE(a_.sys_sendto(tx, msg, 0, SockAddr{b_.vip(), 9000}).is_ok());
  net_.step_for(sim::kMillisecond);

  auto r = b_.sys_recv(rx, 1024, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().data, msg);
  EXPECT_EQ(r.value().from.ip, a_.vip());
}

TEST_F(UdpTest, PreservesDatagramBoundaries) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());
  SockId tx = a_.sys_socket(Proto::UDP).value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        a_.sys_sendto(tx, pattern_bytes(100, static_cast<u8>(i)), 0,
                      SockAddr{b_.vip(), 9000})
            .is_ok());
  }
  net_.step_for(sim::kMillisecond);
  for (int i = 0; i < 3; ++i) {
    auto r = b_.sys_recv(rx, 1024, 0);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().data, pattern_bytes(100, static_cast<u8>(i)));
  }
  EXPECT_EQ(b_.sys_recv(rx, 1024, 0).err(), Err::WOULD_BLOCK);
}

TEST_F(UdpTest, TruncationDiscardsRest) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());
  SockId tx = a_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(a_.sys_sendto(tx, pattern_bytes(100), 0,
                            SockAddr{b_.vip(), 9000})
                  .is_ok());
  ASSERT_TRUE(
      a_.sys_sendto(tx, to_bytes("next"), 0, SockAddr{b_.vip(), 9000})
          .is_ok());
  net_.step_for(sim::kMillisecond);

  auto r = b_.sys_recv(rx, 10, 0);  // short read truncates
  EXPECT_EQ(r.value().data.size(), 10u);
  auto r2 = b_.sys_recv(rx, 1024, 0);  // next call returns the next dgram
  EXPECT_EQ(to_string(r2.value().data), "next");
}

TEST_F(UdpTest, PeekKeepsDatagramAndMarksPeeked) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());
  SockId tx = a_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(
      a_.sys_sendto(tx, to_bytes("peeked"), 0, SockAddr{b_.vip(), 9000})
          .is_ok());
  net_.step_for(sim::kMillisecond);

  UdpSocket* sock = b_.find_udp(rx);
  EXPECT_FALSE(sock->peeked());
  auto p = b_.sys_recv(rx, 1024, MSG_PEEK);
  EXPECT_EQ(to_string(p.value().data), "peeked");
  EXPECT_TRUE(sock->peeked());  // paper §5: peeked data must survive c/r
  auto r = b_.sys_recv(rx, 1024, 0);
  EXPECT_EQ(to_string(r.value().data), "peeked");
}

TEST_F(UdpTest, ConnectedSocketFiltersSources) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());
  ASSERT_TRUE(b_.sys_connect(rx, SockAddr{a_.vip(), 8000}).is_ok());

  // From the expected source/port: delivered.
  SockId tx1 = a_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(a_.sys_bind(tx1, SockAddr{kAnyAddr, 8000}).is_ok());
  ASSERT_TRUE(
      a_.sys_sendto(tx1, to_bytes("yes"), 0, SockAddr{b_.vip(), 9000})
          .is_ok());
  // From another port: filtered out.
  SockId tx2 = a_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(a_.sys_bind(tx2, SockAddr{kAnyAddr, 8001}).is_ok());
  ASSERT_TRUE(
      a_.sys_sendto(tx2, to_bytes("no"), 0, SockAddr{b_.vip(), 9000})
          .is_ok());
  net_.step_for(sim::kMillisecond);

  EXPECT_EQ(to_string(b_.sys_recv(rx, 100, 0).value().data), "yes");
  EXPECT_EQ(b_.sys_recv(rx, 100, 0).err(), Err::WOULD_BLOCK);
}

TEST_F(UdpTest, ConnectedSendWithoutAddress) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());
  SockId tx = a_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(a_.sys_connect(tx, SockAddr{b_.vip(), 9000}).is_ok());
  ASSERT_TRUE(a_.sys_send(tx, to_bytes("via connect"), 0).is_ok());
  net_.step_for(sim::kMillisecond);
  EXPECT_EQ(to_string(b_.sys_recv(rx, 100, 0).value().data), "via connect");
}

TEST_F(UdpTest, UnconnectedSendWithoutAddressFails) {
  SockId tx = a_.sys_socket(Proto::UDP).value();
  EXPECT_EQ(a_.sys_send(tx, to_bytes("x"), 0).err(), Err::NOT_CONNECTED);
}

TEST_F(UdpTest, OversizeDatagramRejected) {
  SockId tx = a_.sys_socket(Proto::UDP).value();
  EXPECT_EQ(a_.sys_sendto(tx, Bytes(70000, 0), 0, SockAddr{b_.vip(), 1})
                .err(),
            Err::MSG_SIZE);
}

TEST_F(UdpTest, RcvbufOverflowDropsDatagrams) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());
  ASSERT_TRUE(b_.sys_setsockopt(rx, SockOpt::SO_RCVBUF, 1000).is_ok());
  SockId tx = a_.sys_socket(Proto::UDP).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a_.sys_sendto(tx, pattern_bytes(400), 0,
                              SockAddr{b_.vip(), 9000})
                    .is_ok());
  }
  net_.step_for(sim::kMillisecond);
  EXPECT_EQ(b_.find_udp(rx)->queue_len(), 2u);  // 2 * 400 <= 1000 < 3 * 400
}

TEST_F(UdpTest, AltQueuePreservesDatagramBoundariesAndSources) {
  SockId rx = b_.sys_socket(Proto::UDP).value();
  ASSERT_TRUE(b_.sys_bind(rx, SockAddr{kAnyAddr, 9000}).is_ok());

  std::deque<RecvItem> items;
  items.push_back(RecvItem{to_bytes("one"), SockAddr{a_.vip(), 1111}, false});
  items.push_back(RecvItem{to_bytes("two"), SockAddr{a_.vip(), 2222}, false});
  b_.find(rx)->install_alt_queue(std::move(items));

  auto r1 = b_.sys_recv(rx, 1024, 0);
  EXPECT_EQ(to_string(r1.value().data), "one");
  EXPECT_EQ(r1.value().from.port, 1111);
  auto r2 = b_.sys_recv(rx, 1024, 0);
  EXPECT_EQ(to_string(r2.value().data), "two");
  EXPECT_EQ(r2.value().from.port, 2222);
  EXPECT_EQ(b_.find(rx)->alt_queue(), nullptr);
}

TEST_F(UdpTest, RawSocketRoundTrip) {
  SockId rx = b_.sys_socket(Proto::RAW).value();
  ASSERT_TRUE(b_.sys_bind_raw(rx, 89).is_ok());  // e.g. OSPF
  SockId tx = a_.sys_socket(Proto::RAW).value();
  ASSERT_TRUE(a_.sys_bind_raw(tx, 89).is_ok());
  ASSERT_TRUE(
      a_.sys_sendto(tx, to_bytes("raw payload"), 0, SockAddr{b_.vip(), 0})
          .is_ok());
  net_.step_for(sim::kMillisecond);
  auto r = b_.sys_recv(rx, 1024, 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(to_string(r.value().data), "raw payload");
}

TEST_F(UdpTest, RawSocketProtoFilter) {
  SockId rx = b_.sys_socket(Proto::RAW).value();
  ASSERT_TRUE(b_.sys_bind_raw(rx, 89).is_ok());
  SockId tx = a_.sys_socket(Proto::RAW).value();
  ASSERT_TRUE(a_.sys_bind_raw(tx, 47).is_ok());  // different protocol
  ASSERT_TRUE(a_.sys_sendto(tx, to_bytes("gre"), 0, SockAddr{b_.vip(), 0})
                  .is_ok());
  net_.step_for(sim::kMillisecond);
  EXPECT_EQ(b_.sys_recv(rx, 1024, 0).err(), Err::WOULD_BLOCK);
}

TEST(PacketFilter, BlocksBothDirections) {
  PacketFilter f;
  IpAddr pod(10, 77, 0, 1);
  Packet from_pod;
  from_pod.src = SockAddr{pod, 1};
  from_pod.dst = SockAddr{IpAddr(10, 77, 0, 2), 2};
  Packet to_pod;
  to_pod.src = SockAddr{IpAddr(10, 77, 0, 2), 2};
  to_pod.dst = SockAddr{pod, 1};

  EXPECT_TRUE(f.pass(from_pod, Hook::EGRESS));
  f.block_addr(pod);
  EXPECT_FALSE(f.pass(from_pod, Hook::EGRESS));
  EXPECT_FALSE(f.pass(to_pod, Hook::INGRESS));
  EXPECT_EQ(f.dropped_egress(), 1u);
  EXPECT_EQ(f.dropped_ingress(), 1u);
  f.unblock_addr(pod);
  EXPECT_TRUE(f.pass(from_pod, Hook::EGRESS));
  EXPECT_TRUE(f.pass(to_pod, Hook::INGRESS));
}

TEST(Fabric, DeliversWithLatency) {
  sim::Engine e;
  Fabric fab(e, FabricConfig{.latency = 100, .jitter = 0, .loss_prob = 0});
  IpAddr n1(192, 168, 1, 1), n2(192, 168, 1, 2);
  fab.attach(n1, [](const WirePacket&) {});
  sim::Time arrival = 0;
  fab.attach(n2, [&](const WirePacket&) { arrival = e.now(); });

  WirePacket wp;
  wp.src_node = n1;
  wp.dst_node = n2;
  wp.inner.payload = Bytes(100, 1);
  fab.send(wp);
  e.run();
  EXPECT_GE(arrival, 100u);
  EXPECT_EQ(fab.stats().packets_delivered, 1u);
}

TEST(Fabric, DetachedDestinationDrops) {
  sim::Engine e;
  Fabric fab(e, FabricConfig{});
  IpAddr n1(192, 168, 1, 1), n2(192, 168, 1, 2);
  fab.attach(n1, [](const WirePacket&) {});
  WirePacket wp;
  wp.src_node = n1;
  wp.dst_node = n2;
  fab.send(wp);
  e.run();
  EXPECT_EQ(fab.stats().packets_dropped_noroute, 1u);
}

TEST(Fabric, LossRateApproximatelyRespected) {
  sim::Engine e;
  Fabric fab(e, FabricConfig{.latency = 1,
                             .jitter = 0,
                             .loss_prob = 0.3,
                             .bandwidth_bps = 0,
                             .seed = 11});
  IpAddr n1(192, 168, 1, 1), n2(192, 168, 1, 2);
  int delivered = 0;
  fab.attach(n1, [](const WirePacket&) {});
  fab.attach(n2, [&](const WirePacket&) { ++delivered; });
  for (int i = 0; i < 1000; ++i) {
    WirePacket wp;
    wp.src_node = n1;
    wp.dst_node = n2;
    fab.send(wp);
  }
  e.run();
  EXPECT_GT(delivered, 600);
  EXPECT_LT(delivered, 800);
}

TEST(Fabric, BandwidthSerializesBackToBack) {
  sim::Engine e;
  // 1 Mbps: a 1040-byte frame (1000B payload + headers) takes ~8.3 ms.
  Fabric fab(e, FabricConfig{.latency = 0,
                             .jitter = 0,
                             .loss_prob = 0,
                             .bandwidth_bps = 1'000'000});
  IpAddr n1(192, 168, 1, 1), n2(192, 168, 1, 2);
  std::vector<sim::Time> arrivals;
  fab.attach(n1, [](const WirePacket&) {});
  fab.attach(n2, [&](const WirePacket&) { arrivals.push_back(e.now()); });
  for (int i = 0; i < 3; ++i) {
    WirePacket wp;
    wp.src_node = n1;
    wp.dst_node = n2;
    wp.inner.payload = Bytes(1000, 0);
    fab.send(wp);
  }
  e.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each successive packet waits for the previous transmission.
  EXPECT_GT(arrivals[1], arrivals[0]);
  EXPECT_GT(arrivals[2], arrivals[1]);
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]),
              static_cast<double>(arrivals[0]), 1000.0);
}

}  // namespace
}  // namespace zapc::net
