// Small guest programs used by OS/pod/checkpoint tests.
#pragma once

#include "net/addr.h"
#include "os/program.h"
#include "os/san.h"
#include "util/types.h"

namespace zapc::test {

/// Counts to a target, spending `step_cost` virtual CPU time per tick.
class CounterProgram final : public os::Program {
 public:
  CounterProgram() = default;
  CounterProgram(u32 target, sim::Time step_cost)
      : target_(target), step_cost_(step_cost) {}

  const char* kind() const override { return "test.counter"; }

  os::StepResult step(os::Syscalls& sys) override {
    (void)sys;
    if (count_ >= target_) return os::StepResult::exit(0);
    ++count_;
    return os::StepResult::yield(step_cost_);
  }

  void save(Encoder& e) const override {
    e.put_u32(target_);
    e.put_u32(count_);
    e.put_u64(step_cost_);
  }
  void load(Decoder& d) override {
    target_ = d.u32_().value_or(0);
    count_ = d.u32_().value_or(0);
    step_cost_ = d.u64_().value_or(1);
  }

  u32 count() const { return count_; }

 private:
  u32 target_ = 0;
  sim::Time step_cost_ = 1;
  u32 count_ = 0;
};

/// TCP echo server: accepts one connection and echoes until EOF.
class EchoServer final : public os::Program {
 public:
  EchoServer() = default;
  explicit EchoServer(u16 port) : port_(port) {}

  const char* kind() const override { return "test.echo_server"; }

  os::StepResult step(os::Syscalls& sys) override {
    using os::StepResult;
    switch (pc_) {
      case 0: {  // create/bind/listen
        sys.region("workspace", 4 << 20);  // typical app address space
        auto fd = sys.socket(net::Proto::TCP);
        if (!fd) return StepResult::exit(1);
        lfd_ = fd.value();
        if (!sys.bind(lfd_, net::SockAddr{net::kAnyAddr, port_})) {
          return StepResult::exit(1);
        }
        if (!sys.listen(lfd_, 4)) return StepResult::exit(1);
        pc_ = 1;
        return StepResult::yield();
      }
      case 1: {  // accept
        auto c = sys.accept(lfd_, nullptr);
        if (!c) {
          if (c.err() == Err::WOULD_BLOCK) {
            return StepResult::block(os::WaitSpec::on_fd(lfd_));
          }
          return StepResult::exit(1);
        }
        cfd_ = c.value();
        pc_ = 2;
        return StepResult::yield();
      }
      case 2: {  // echo loop
        auto r = sys.recv(cfd_, 4096, 0);
        if (!r) {
          if (r.err() == Err::WOULD_BLOCK) {
            return StepResult::block(os::WaitSpec::on_fd(cfd_));
          }
          return StepResult::exit(1);
        }
        if (r.value().eof) {
          (void)sys.close(cfd_);
          (void)sys.close(lfd_);
          return StepResult::exit(0);
        }
        echoed_ += static_cast<u32>(r.value().data.size());
        pending_ = std::move(r.value().data);
        pc_ = 3;
        return StepResult::yield();
      }
      case 3: {  // flush pending echo
        if (pending_.empty()) {
          pc_ = 2;
          return StepResult::yield();
        }
        auto w = sys.send(cfd_, pending_, 0);
        if (!w) {
          if (w.err() == Err::WOULD_BLOCK) {
            return StepResult::block(os::WaitSpec::on_fd(cfd_));
          }
          return StepResult::exit(1);
        }
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<long>(w.value()));
        return StepResult::yield();
      }
      default:
        return StepResult::exit(2);
    }
  }

  void save(Encoder& e) const override {
    e.put_u16(port_);
    e.put_u32(pc_);
    e.put_i32(lfd_);
    e.put_i32(cfd_);
    e.put_u32(echoed_);
    e.put_bytes(pending_);
  }
  void load(Decoder& d) override {
    port_ = d.u16_().value_or(0);
    pc_ = d.u32_().value_or(0);
    lfd_ = d.i32_().value_or(-1);
    cfd_ = d.i32_().value_or(-1);
    echoed_ = d.u32_().value_or(0);
    pending_ = d.bytes_().value_or({});
  }

  u32 echoed() const { return echoed_; }

 private:
  u16 port_ = 0;
  u32 pc_ = 0;
  i32 lfd_ = -1;
  i32 cfd_ = -1;
  u32 echoed_ = 0;
  Bytes pending_;
};

/// TCP echo client: connects, sends `total` patterned bytes, reads them
/// back, verifies, exits 0 on success.
class EchoClient final : public os::Program {
 public:
  EchoClient() = default;
  EchoClient(net::SockAddr server, u32 total)
      : server_(server), total_(total) {}

  const char* kind() const override { return "test.echo_client"; }

  static u8 byte_at(u32 i) { return static_cast<u8>((i * 131 + 17) & 0xFF); }

  os::StepResult step(os::Syscalls& sys) override {
    using os::StepResult;
    switch (pc_) {
      case 0: {  // connect
        sys.region("workspace", 4 << 20);  // typical app address space
        auto fd = sys.socket(net::Proto::TCP);
        if (!fd) return StepResult::exit(1);
        fd_ = fd.value();
        Status st = sys.connect(fd_, server_);
        if (!st.is_ok() && st.err() != Err::IN_PROGRESS) {
          return StepResult::exit(1);
        }
        pc_ = 1;
        return StepResult::yield();
      }
      case 1: {  // wait for establishment
        u32 ev = sys.poll(fd_);
        if ((ev & net::POLLERR) != 0) return StepResult::exit(1);
        if ((ev & net::POLLOUT) == 0) {
          return StepResult::block(os::WaitSpec::on_fd(fd_));
        }
        pc_ = 2;
        return StepResult::yield();
      }
      case 2: {  // send + receive until done
        if (sent_ < total_) {
          u32 n = std::min<u32>(total_ - sent_, 2048);
          Bytes chunk(n);
          for (u32 i = 0; i < n; ++i) chunk[i] = byte_at(sent_ + i);
          auto w = sys.send(fd_, chunk, 0);
          if (w.is_ok()) sent_ += static_cast<u32>(w.value());
        }
        auto r = sys.recv(fd_, 4096, 0);
        if (r.is_ok() && !r.value().eof) {
          for (u8 b : r.value().data) {
            if (b != byte_at(rcvd_)) return StepResult::exit(3);
            ++rcvd_;
          }
        }
        if (rcvd_ == total_) {
          (void)sys.close(fd_);
          return StepResult::exit(0);
        }
        if (r.err() == Err::WOULD_BLOCK && sent_ == total_) {
          return StepResult::block(os::WaitSpec::on_fd(fd_));
        }
        return StepResult::yield(5);
      }
      default:
        return StepResult::exit(2);
    }
  }

  void save(Encoder& e) const override {
    e.put_u32(server_.ip.v);
    e.put_u16(server_.port);
    e.put_u32(total_);
    e.put_u32(pc_);
    e.put_i32(fd_);
    e.put_u32(sent_);
    e.put_u32(rcvd_);
  }
  void load(Decoder& d) override {
    server_.ip.v = d.u32_().value_or(0);
    server_.port = d.u16_().value_or(0);
    total_ = d.u32_().value_or(0);
    pc_ = d.u32_().value_or(0);
    fd_ = d.i32_().value_or(-1);
    sent_ = d.u32_().value_or(0);
    rcvd_ = d.u32_().value_or(0);
  }

  u32 received() const { return rcvd_; }

 private:
  net::SockAddr server_;
  u32 total_ = 0;
  u32 pc_ = 0;
  i32 fd_ = -1;
  u32 sent_ = 0;
  u32 rcvd_ = 0;
};

/// Writes a timestamped note to the SAN, sleeps, and records the observed
/// (virtualized) elapsed time in a memory region.
class TimeLogger final : public os::Program {
 public:
  const char* kind() const override { return "test.time_logger"; }

  os::StepResult step(os::Syscalls& sys) override {
    using os::StepResult;
    Bytes& reg = sys.region("log", 64);
    switch (pc_) {
      case 0: {
        start_ = sys.time();
        pc_ = 1;
        return StepResult::block(os::WaitSpec::sleep(1000));
      }
      case 1: {
        sim::Time elapsed = sys.time() - start_;
        Encoder e;
        e.put_u64(start_);
        e.put_u64(elapsed);
        std::copy(e.bytes().begin(), e.bytes().end(), reg.begin());
        sys.san().write("timelog", e.bytes());
        return StepResult::exit(0);
      }
      default:
        return StepResult::exit(2);
    }
  }

  void save(Encoder& e) const override {
    e.put_u32(pc_);
    e.put_u64(start_);
  }
  void load(Decoder& d) override {
    pc_ = d.u32_().value_or(0);
    start_ = d.u64_().value_or(0);
  }

 private:
  u32 pc_ = 0;
  sim::Time start_ = 0;
};

}  // namespace zapc::test
