// Critical-path downtime attribution and the op ledger (DESIGN.md §10):
// the backward walk over synthetic span trees (barrier jump across the
// continue edge, plain standalone-gated descent, restart descent,
// open-span clipping for crashed agents, manager-only fallback), the
// exact-sum property (segments partition the downtime), JSON round-trips
// for attributions and ledger entries, torn-tail ledger loading, and the
// end-to-end acceptance scenario: a checkpoint with an injected slow
// node must attribute the plurality of the downtime to the slow pod's
// costed phase.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/manager.h"
#include "fault/fault.h"
#include "obs/critpath.h"
#include "obs/json.h"
#include "obs/ledger.h"
#include "os/cluster.h"
#include "tests/guest_programs.h"

namespace zapc::obs {
namespace {

/// Segments must tile [start, end] with no gaps or overlaps — the
/// property that makes "sums to the downtime" hold exactly.
void expect_contiguous(const OpAttribution& a) {
  ASSERT_FALSE(a.segments.empty());
  EXPECT_EQ(a.segments.front().start, a.start);
  EXPECT_EQ(a.segments.back().end, a.end);
  for (std::size_t i = 1; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].start, a.segments[i - 1].end)
        << "gap/overlap before segment " << i << " (" << a.segments[i].phase
        << ")";
  }
  Time sum = 0;
  for (const CritSegment& s : a.segments) sum += s.duration();
  EXPECT_EQ(sum, a.downtime_us);
}

const CritSegment* find_phase(const OpAttribution& a,
                              const std::string& phase) {
  for (const CritSegment& s : a.segments) {
    if (s.phase == phase) return &s;
  }
  return nullptr;
}

// ---- Backward walk over synthetic trees -------------------------------------

/// The barrier-jump shape: the gating agent finished its standalone
/// checkpoint early and sat parked at the continue barrier, so the path
/// must cross the continue edge onto the meta-data side — the slow
/// netckpt of the *other* agent is the real cost.
TEST(CritPath, CkptBarrierJumpCrossesContinueEdgeToMetaSide) {
  SpanRecorder rec;
  const OpId op = 7;
  SpanId root = rec.begin_at(1000, "mgr.ckpt", "manager", 0, op);
  SpanId mw = rec.begin_at(1005, "mgr.ckpt.meta_wait", "manager", root, op);
  rec.end_at(1355, mw);
  rec.event_at(1360, "manager", "mgr.continue", root, op);

  // Agent A (pod "a"): slow network checkpoint, last META_REPORT in.
  SpanId sa = rec.begin_at(1020, "ckpt", "agent@n1", root, op);
  rec.event_at(1020, "agent@n1", "1: suspend pod a, block network", sa, op);
  SpanId s = rec.begin_at(1020, "ckpt.suspend", "agent@n1", sa, op);
  rec.end_at(1060, s);
  s = rec.begin_at(1060, "ckpt.netckpt", "agent@n1", sa, op);
  rec.end_at(1340, s);
  rec.event_at(1340, "agent@n1", "2a: meta-data reported for a", sa, op);
  s = rec.begin_at(1340, "ckpt.standalone", "agent@n1", sa, op);
  rec.end_at(1370, s);
  s = rec.begin_at(1370, "ckpt.barrier", "agent@n1", sa, op);
  rec.end_at(1380, s);
  rec.end_at(1380, sa);
  rec.event_at(1350, "manager", "2: meta-data received from a", mw, op);

  // Agent B (pod "b"): done quickly, then parked at the barrier; its
  // DONE is nevertheless the last to arrive (gating pod).
  SpanId sb = rec.begin_at(1020, "ckpt", "agent@n2", root, op);
  rec.event_at(1020, "agent@n2", "1: suspend pod b, block network", sb, op);
  s = rec.begin_at(1020, "ckpt.suspend", "agent@n2", sb, op);
  rec.end_at(1050, s);
  s = rec.begin_at(1050, "ckpt.netckpt", "agent@n2", sb, op);
  rec.end_at(1100, s);
  rec.event_at(1100, "agent@n2", "2a: meta-data reported for b", sb, op);
  rec.event_at(1110, "manager", "2: meta-data received from b", mw, op);
  s = rec.begin_at(1100, "ckpt.standalone", "agent@n2", sb, op);
  rec.end_at(1250, s);
  SpanId barrier = rec.begin_at(1250, "ckpt.barrier", "agent@n2", sb, op);
  rec.event_at(1365, "agent@n2", "3a: continue received for b", barrier, op);
  rec.end_at(1430, barrier);
  rec.end_at(1450, sb);

  rec.event_at(1390, "manager", "4: 'done' received from a", root, op);
  rec.event_at(1460, "manager", "4: 'done' received from b", root, op);
  rec.end_at(1470, root);

  auto res = attribute_op(rec.spans(), op);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const OpAttribution& a = res.value();
  EXPECT_EQ(a.kind, "ckpt");
  EXPECT_EQ(a.downtime_us, 470u);
  expect_contiguous(a);

  // The path crossed the barrier: continue and meta edges are on it,
  // and the costliest slice is agent A's netckpt, not B's barrier wait.
  ASSERT_NE(find_phase(a, "edge:continue"), nullptr);
  ASSERT_NE(find_phase(a, "edge:meta"), nullptr);
  ASSERT_NE(find_phase(a, "edge:cmd"), nullptr);
  EXPECT_EQ(a.critical_pod, "a");
  EXPECT_EQ(a.critical_phase, "ckpt.netckpt");
  EXPECT_EQ(a.critical_phase_us, 280u);

  const CritSegment* net = find_phase(a, "ckpt.netckpt");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->pod, "a");
  EXPECT_FALSE(net->edge);
  EXPECT_NE(net->span, 0u);

  // B's post-continue commit slice is on the path; its barrier *wait*
  // (1250..1365) is not charged to it.
  const CritSegment* commit = find_phase(a, "ckpt.barrier");
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->pod, "b");
  EXPECT_EQ(commit->start, 1365u);
  EXPECT_EQ(commit->end, 1430u);

  // Done-side slack: the gate (b) has none; a could have been 70us
  // later without extending the op.
  ASSERT_EQ(a.slack.size(), 2u);
  for (const PodSlack& ps : a.slack) {
    EXPECT_EQ(ps.slack_us, ps.pod == "b" ? 0u : 70u) << ps.pod;
  }
  EXPECT_EQ(a.pod_critical_us("a"), 320u);
  EXPECT_EQ(a.pod_critical_us("b"), 85u);
}

/// No jump: the gating agent's standalone work outlasted the continue,
/// so the whole path stays on that agent and ends at the command edge.
TEST(CritPath, CkptStandaloneGatedStaysOnAgent) {
  SpanRecorder rec;
  const OpId op = 8;
  SpanId root = rec.begin_at(1000, "mgr.ckpt", "manager", 0, op);
  SpanId sb = rec.begin_at(1010, "ckpt", "agent@n1", root, op);
  rec.event_at(1010, "agent@n1", "1: suspend pod b, block network", sb, op);
  SpanId s = rec.begin_at(1010, "ckpt.suspend", "agent@n1", sb, op);
  rec.end_at(1040, s);
  s = rec.begin_at(1040, "ckpt.netckpt", "agent@n1", sb, op);
  rec.end_at(1090, s);
  s = rec.begin_at(1090, "ckpt.standalone", "agent@n1", sb, op);
  rec.end_at(1250, s);
  // Continue had already arrived when the barrier span opened: no wait.
  s = rec.begin_at(1250, "ckpt.barrier", "agent@n1", sb, op);
  rec.end_at(1260, s);
  rec.end_at(1280, sb);
  rec.event_at(1290, "manager", "4: 'done' received from b", root, op);
  rec.end_at(1300, root);

  auto res = attribute_op(rec.spans(), op);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const OpAttribution& a = res.value();
  EXPECT_EQ(a.downtime_us, 300u);
  expect_contiguous(a);
  EXPECT_EQ(a.critical_pod, "b");
  EXPECT_EQ(a.critical_phase, "ckpt.standalone");
  EXPECT_EQ(a.critical_phase_us, 160u);
  EXPECT_EQ(find_phase(a, "edge:continue"), nullptr);
  ASSERT_NE(find_phase(a, "edge:cmd"), nullptr);
  ASSERT_NE(find_phase(a, "edge:done"), nullptr);
}

/// Restart ops descend the destination agent's sequential phases; there
/// is no continue barrier to jump.
TEST(CritPath, RestartDescendsDestinationPhases) {
  SpanRecorder rec;
  const OpId op = 9;
  SpanId root = rec.begin_at(2000, "mgr.restart", "manager", 0, op);
  SpanId sp = rec.begin_at(2010, "restart", "agent@n3", root, op);
  rec.event_at(2010, "agent@n3", "1: pod p created for restart", sp, op);
  SpanId s = rec.begin_at(2010, "restart.connectivity", "agent@n3", sp, op);
  rec.end_at(2100, s);
  s = rec.begin_at(2100, "restart.netstate", "agent@n3", sp, op);
  rec.end_at(2200, s);
  s = rec.begin_at(2200, "restart.standalone", "agent@n3", sp, op);
  rec.end_at(2340, s);
  rec.end_at(2350, sp);
  rec.event_at(2370, "manager", "2: 'done' received from p", root, op);
  rec.end_at(2400, root);

  auto res = attribute_op(rec.spans(), op);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const OpAttribution& a = res.value();
  EXPECT_EQ(a.kind, "restart");
  EXPECT_EQ(a.downtime_us, 400u);
  expect_contiguous(a);
  EXPECT_EQ(a.critical_pod, "p");
  EXPECT_EQ(a.critical_phase, "restart.standalone");
  EXPECT_EQ(a.critical_phase_us, 140u);
  const CritSegment* conn = find_phase(a, "restart.connectivity");
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->duration(), 90u);
}

/// A crashed agent leaves its spans open (postmortem shape): they are
/// clipped at the op's last stamp and the walk still sums exactly.
TEST(CritPath, OpenSpansAreClippedAtOpEnd) {
  SpanRecorder rec;
  const OpId op = 10;
  SpanId root = rec.begin_at(3000, "mgr.ckpt", "manager", 0, op);  // open
  SpanId sa = rec.begin_at(3010, "ckpt", "agent@n1", root, op);    // open
  rec.event_at(3010, "agent@n1", "1: suspend pod a, block network", sa, op);
  SpanId s = rec.begin_at(3010, "ckpt.suspend", "agent@n1", sa, op);
  rec.end_at(3050, s);
  rec.begin_at(3050, "ckpt.netckpt", "agent@n1", sa, op);  // open: crash
  rec.event_at(3200, "manager", "op.fail kind=ckpt", root, op);

  auto res = attribute_op(rec.spans(), op);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const OpAttribution& a = res.value();
  EXPECT_EQ(a.end, 3200u);
  EXPECT_EQ(a.downtime_us, 200u);
  expect_contiguous(a);
  const CritSegment* net = find_phase(a, "ckpt.netckpt");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->end, 3200u);  // clipped to the op window
  EXPECT_EQ(a.critical_phase, "ckpt.netckpt");
}

/// An op with no agent spans (connect failure before any agent traced)
/// attributes everything to the Manager root.
TEST(CritPath, ManagerOnlyOpFallsBackToRoot) {
  SpanRecorder rec;
  const OpId op = 11;
  SpanId root = rec.begin_at(100, "mgr.ckpt", "manager", 0, op);
  SpanId mw = rec.begin_at(110, "mgr.ckpt.meta_wait", "manager", root, op);
  rec.end_at(390, mw);
  rec.end_at(400, root);

  auto res = attribute_op(rec.spans(), op);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const OpAttribution& a = res.value();
  EXPECT_EQ(a.downtime_us, 300u);
  ASSERT_EQ(a.segments.size(), 1u);
  EXPECT_EQ(a.segments[0].phase, "mgr.ckpt");
  EXPECT_EQ(a.segments[0].who, "manager");
  expect_contiguous(a);
}

TEST(CritPath, RejectsEmptyAndRootlessRecordSets) {
  EXPECT_FALSE(attribute_op(std::vector<const SpanRecord*>{}).is_ok());

  SpanRecorder rec;
  rec.event_at(10, "manager", "stray event", 0, 5);
  EXPECT_FALSE(attribute_op(rec.spans(), 5).is_ok());
}

TEST(CritPath, AttributionJsonRoundTrips) {
  SpanRecorder rec;
  const OpId op = 12;
  SpanId root = rec.begin_at(1000, "mgr.ckpt", "manager", 0, op);
  SpanId sa = rec.begin_at(1010, "ckpt", "agent@n1", root, op);
  rec.event_at(1010, "agent@n1", "1: suspend pod a, block network", sa, op);
  SpanId s = rec.begin_at(1010, "ckpt.standalone", "agent@n1", sa, op);
  rec.end_at(1200, s);
  rec.end_at(1210, sa);
  rec.event_at(1220, "manager", "4: 'done' received from a", root, op);
  rec.end_at(1230, root);

  auto res = attribute_op(rec.spans(), op);
  ASSERT_TRUE(res.is_ok());
  const OpAttribution& a = res.value();

  auto back = attribution_from_json(attribution_to_json(a));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const OpAttribution& b = back.value();
  EXPECT_EQ(b.op, a.op);
  EXPECT_EQ(b.kind, a.kind);
  EXPECT_EQ(b.downtime_us, a.downtime_us);
  EXPECT_EQ(b.critical_pod, a.critical_pod);
  EXPECT_EQ(b.critical_phase, a.critical_phase);
  EXPECT_EQ(b.critical_phase_us, a.critical_phase_us);
  ASSERT_EQ(b.segments.size(), a.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(b.segments[i].start, a.segments[i].start);
    EXPECT_EQ(b.segments[i].end, a.segments[i].end);
    EXPECT_EQ(b.segments[i].pod, a.segments[i].pod);
    EXPECT_EQ(b.segments[i].phase, a.segments[i].phase);
    EXPECT_EQ(b.segments[i].edge, a.segments[i].edge);
  }
  ASSERT_EQ(b.slack.size(), a.slack.size());
  expect_contiguous(b);
}

// ---- Ledger -----------------------------------------------------------------

TEST(Ledger, EntryJsonRoundTripsAllFields) {
  LedgerEntry e;
  e.op = 33;
  e.kind = "ckpt";
  e.outcome = "aborted";
  e.error = "deadline expired in meta_wait (server-pod)";
  e.transient = true;
  e.will_retry = true;
  e.attempt = 2;
  e.start_us = 5000;
  e.end_us = 9000;
  e.downtime_us = 4000;
  e.pods = 3;
  e.phase_us["suspend"] = 120;
  e.phase_us["standalone"] = 2500;
  e.image_bytes = 1 << 20;
  e.network_bytes = 4096;
  e.logical_bytes = 2 << 20;
  e.straggler_pod = "bt-3";
  e.straggler_phase = "ckpt.standalone";
  e.straggler_lag_us = 700;

  Json j = ledger_entry_to_json(e);
  EXPECT_EQ(j.find("schema")->str(), kLedgerSchemaVersion);
  auto back = ledger_entry_from_json(j);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const LedgerEntry& b = back.value();
  EXPECT_EQ(b.op, 33u);
  EXPECT_EQ(b.kind, "ckpt");
  EXPECT_EQ(b.outcome, "aborted");
  EXPECT_EQ(b.error, e.error);
  EXPECT_TRUE(b.transient);
  EXPECT_TRUE(b.will_retry);
  EXPECT_EQ(b.attempt, 2u);
  EXPECT_EQ(b.downtime_us, 4000u);
  EXPECT_EQ(b.pods, 3u);
  ASSERT_EQ(b.phase_us.size(), 2u);
  EXPECT_EQ(b.phase_us.at("standalone"), 2500u);
  EXPECT_EQ(b.image_bytes, u64{1} << 20);
  EXPECT_EQ(b.logical_bytes, u64{2} << 20);
  EXPECT_EQ(b.straggler_pod, "bt-3");
  EXPECT_EQ(b.straggler_lag_us, 700u);
  EXPECT_FALSE(b.has_attrib);
}

TEST(Ledger, RejectsWrongSchemaTag) {
  Json j = Json::object();
  j["schema"] = "zapc.obs.health.v1";
  j["op"] = 1;
  EXPECT_FALSE(ledger_entry_from_json(j).is_ok());
}

TEST(Ledger, PersistentAppendLoadsBackAndSkipsTornTail) {
  const std::string path = ::testing::TempDir() + "critpath_ledger.jsonl";
  std::remove(path.c_str());
  {
    Ledger led(path);
    ASSERT_TRUE(led.persistent());
    for (u64 i = 1; i <= 3; ++i) {
      LedgerEntry e;
      e.op = i;
      e.kind = "ckpt";
      e.outcome = i == 2 ? "aborted" : "ok";
      e.downtime_us = 100 * i;
      ASSERT_TRUE(led.append(e).is_ok());
    }
  }
  auto loaded = Ledger::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().entries.size(), 3u);
  EXPECT_EQ(loaded.value().skipped_torn, 0);
  EXPECT_EQ(loaded.value().entries[1].outcome, "aborted");
  EXPECT_EQ(loaded.value().entries[2].downtime_us, 300u);

  // A crash mid-append tears only the final line: it is skipped and
  // counted, the rest load fine.
  std::ofstream(path, std::ios::app) << "{\"schema\": \"zapc.obs.led";
  auto torn = Ledger::load(path);
  ASSERT_TRUE(torn.is_ok()) << torn.status().to_string();
  EXPECT_EQ(torn.value().entries.size(), 3u);
  EXPECT_EQ(torn.value().skipped_torn, 1);

  // A malformed line anywhere *else* means the file is not a ledger.
  std::ofstream(path, std::ios::app) << "\n{\"schema\": \"zapc.obs.ledger."
                                        "v1\", \"op\": 4, \"kind\": \"ckpt\","
                                        " \"outcome\": \"ok\"}\n";
  EXPECT_FALSE(Ledger::load(path).is_ok());
}

TEST(Ledger, WriteFileDumpsInMemoryEntries) {
  const std::string path = ::testing::TempDir() + "critpath_ledger_dump.jsonl";
  Ledger led;  // in-memory
  EXPECT_FALSE(led.persistent());
  LedgerEntry e;
  e.op = 5;
  e.kind = "restart";
  e.outcome = "ok";
  ASSERT_TRUE(led.append(e).is_ok());
  ASSERT_TRUE(led.write_file(path).is_ok());
  auto loaded = Ledger::load(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded.value().entries.size(), 1u);
  EXPECT_EQ(loaded.value().entries[0].kind, "restart");
}

// ---- Acceptance: slow node dominates the attributed critical path -----------

net::IpAddr vip(u8 i) { return net::IpAddr(10, 79, 0, i); }

/// Four agents, one pod each; node n2 runs at 3x cost.  The attribution
/// must (a) sum its segments to the downtime within 1%, and (b) hand the
/// plurality of the downtime to the slow node's pod, in a costed
/// checkpoint phase — the same scenario zapc-top --check stages.
TEST(CritPathAcceptance, SlowNodePodHoldsPluralityOfDowntime) {
  fault::injector().clear();
  os::Cluster cl;
  core::Trace trace;
  os::Node& mgr_node = cl.add_node("mgr");
  std::vector<std::unique_ptr<core::Agent>> agents;
  std::vector<core::Manager::Target> targets;
  for (int i = 0; i < 4; ++i) {
    os::Node& n = cl.add_node("n" + std::to_string(i + 1));
    agents.push_back(std::make_unique<core::Agent>(
        n, core::Agent::kDefaultPort, core::CostModel{}, &trace));
    std::string pod = "p" + std::to_string(i + 1);
    pod::Pod& p = agents.back()->create_pod(vip(static_cast<u8>(i + 1)), pod);
    p.spawn(std::make_unique<test::EchoServer>(5000));
    targets.push_back({agents.back()->addr(), pod, "san://ckpt/" + pod});
  }
  core::Manager manager(mgr_node, &trace);
  obs::Ledger ledger;
  manager.set_ledger(&ledger);
  cl.run_for(50 * sim::kMillisecond);

  fault::FaultSpec slow;
  slow.kind = fault::FaultKind::SLOW_NODE;
  slow.node = "n2";
  slow.multiplier = 3.0;
  fault::injector().arm(slow);

  core::Manager::CheckpointReport report;
  bool done = false;
  core::Manager::CkptOptions opts;
  opts.heartbeat_us = 5 * sim::kMillisecond;
  manager.checkpoint(targets, core::CkptMode::SNAPSHOT,
                     [&](core::Manager::CheckpointReport r) {
                       report = std::move(r);
                       done = true;
                     },
                     opts);
  for (int i = 0; i < 20000 && !done; ++i) cl.run_for(sim::kMillisecond);
  fault::injector().clear();
  ASSERT_TRUE(done);
  ASSERT_TRUE(report.ok) << report.error;

  auto res = attribute_op(trace.recorder().spans(), report.op_id);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  const OpAttribution& a = res.value();
  ASSERT_GT(a.downtime_us, 0u);

  // (a) Exact accounting: within 1% (by construction, exactly).
  Time sum = 0;
  for (const CritSegment& s : a.segments) sum += s.duration();
  const Time diff =
      sum > a.downtime_us ? sum - a.downtime_us : a.downtime_us - sum;
  EXPECT_LE(diff * 100, a.downtime_us)
      << "segments sum to " << sum << "us, downtime " << a.downtime_us;

  // (b) The slow node's pod gates the op and holds the plurality.
  EXPECT_EQ(a.critical_pod, "p2");
  const Time p2 = a.pod_critical_us("p2");
  for (const char* other : {"p1", "p3", "p4"}) {
    EXPECT_GT(p2, a.pod_critical_us(other)) << other;
  }
  // Its costed phase (not an edge, not coordination) is the headline.
  EXPECT_EQ(a.critical_phase.rfind("ckpt.", 0), 0u) << a.critical_phase;
  EXPECT_GT(a.critical_phase_us, 0u);
  // The gate has no done-side slack; everyone else has some.
  for (const PodSlack& ps : a.slack) {
    if (ps.pod == "p2") {
      EXPECT_EQ(ps.slack_us, 0u);
    } else {
      EXPECT_GT(ps.slack_us, 0u) << ps.pod;
    }
  }

  // The Manager's ledger captured the op with the same attribution.
  ASSERT_EQ(ledger.entries().size(), 1u);
  const LedgerEntry& le = ledger.entries().back();
  EXPECT_EQ(le.op, report.op_id);
  EXPECT_EQ(le.outcome, "ok");
  EXPECT_EQ(le.pods, 4u);
  ASSERT_TRUE(le.has_attrib);
  EXPECT_EQ(le.attrib.critical_pod, "p2");
  EXPECT_FALSE(le.phase_us.empty());
}

}  // namespace
}  // namespace zapc::obs
