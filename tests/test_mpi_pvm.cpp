// Mini-MPI and mini-PVM middleware tests: mesh setup, point-to-point,
// collectives, task farm, and serialization.
#include <gtest/gtest.h>

#include "apps/mpi_app.h"
#include "mpi/comm.h"
#include "os/cluster.h"
#include "pod/pod.h"
#include "pvm/pvm.h"

namespace zapc::mpi {
namespace {

/// Generic guest program driving a scripted MPI scenario; the script is a
/// function advanced by the step loop until it reports completion.
class MpiScriptProgram final : public os::Program {
 public:
  // Returns true when finished; *code is the exit code.
  using Script =
      std::function<bool(os::Syscalls&, MpiComm&, u32* phase, i32* code)>;

  MpiScriptProgram() = default;
  MpiScriptProgram(MpiConfig cfg, Script script)
      : comm_(std::move(cfg)), script_(std::move(script)) {}

  const char* kind() const override { return "test.mpi_script"; }

  os::StepResult step(os::Syscalls& sys) override {
    if (!comm_.initialized()) {
      if (!comm_.try_init(sys)) return apps::wait_comm(comm_);
      return os::StepResult::yield();
    }
    i32 code = 0;
    if (script_(sys, comm_, &phase_, &code)) {
      return os::StepResult::exit(code);
    }
    if (comm_.failed()) return os::StepResult::exit(90);
    return apps::wait_comm(comm_);
  }

  // Not checkpointable (scripts are test lambdas); tests that checkpoint
  // use the real apps instead.
  void save(Encoder&) const override {}
  void load(Decoder&) override {}

  MpiComm& comm() { return comm_; }

 private:
  MpiComm comm_;
  Script script_;
  u32 phase_ = 0;
};

struct MpiWorld {
  os::Cluster cl;
  std::vector<std::unique_ptr<pod::Pod>> pods;
  std::vector<i32> vpids;

  explicit MpiWorld(i32 n) {
    for (i32 i = 0; i < n; ++i) {
      os::Node& node = cl.add_node("n" + std::to_string(i));
      pods.push_back(std::make_unique<pod::Pod>(
          node, apps::job_vips(n)[static_cast<std::size_t>(i)],
          "pod" + std::to_string(i)));
    }
  }

  void spawn_script(i32 rank, i32 size, MpiScriptProgram::Script s) {
    vpids.push_back(pods[static_cast<std::size_t>(rank)]->spawn(
        std::make_unique<MpiScriptProgram>(apps::job_config(rank, size),
                                           std::move(s))));
  }

  /// Runs until all scripts exit; returns worst exit code (-1 = timeout).
  i32 run(sim::Time budget = 60 * sim::kSecond) {
    for (sim::Time t = 0; t < budget; t += 10 * sim::kMillisecond) {
      cl.run_for(10 * sim::kMillisecond);
      bool all = true;
      i32 worst = 0;
      for (std::size_t i = 0; i < pods.size(); ++i) {
        os::Process* p = pods[i]->find_process(vpids[i]);
        if (p == nullptr || p->state() != os::ProcState::EXITED) {
          all = false;
          break;
        }
        worst = std::max(worst, p->exit_code());
      }
      if (all) return worst;
    }
    return -1;
  }
};

TEST(Mpi, MeshInitCompletes) {
  MpiWorld w(4);
  for (i32 r = 0; r < 4; ++r) {
    w.spawn_script(r, 4, [](os::Syscalls&, MpiComm&, u32*, i32*) {
      return true;  // exit right after init
    });
  }
  EXPECT_EQ(w.run(), 0);
}

TEST(Mpi, PointToPointRoundTrip) {
  MpiWorld w(2);
  w.spawn_script(0, 2, [](os::Syscalls& sys, MpiComm& c, u32* ph, i32* code) {
    if (*ph == 0) {
      c.post_send(sys, 1, 7, to_bytes("ping"));
      *ph = 1;
    }
    auto m = c.try_recv(sys, 1, 8);
    if (!m) return false;
    *code = (to_string(*m) == "pong") ? 0 : 1;
    return true;
  });
  w.spawn_script(1, 2, [](os::Syscalls& sys, MpiComm& c, u32* ph, i32* code) {
    auto m = c.try_recv(sys, 0, 7);
    if (!m) return false;
    *code = (to_string(*m) == "ping") ? 0 : 1;
    c.post_send(sys, 0, 8, to_bytes("pong"));
    (void)ph;
    return true;
  });
  EXPECT_EQ(w.run(), 0);
}

TEST(Mpi, TagsDoNotCrossTalk) {
  MpiWorld w(2);
  w.spawn_script(0, 2, [](os::Syscalls& sys, MpiComm& c, u32* ph, i32*) {
    if (*ph == 0) {
      c.post_send(sys, 1, 5, to_bytes("five"));
      c.post_send(sys, 1, 6, to_bytes("six"));
      *ph = 1;
    }
    return true;
  });
  w.spawn_script(1, 2, [](os::Syscalls& sys, MpiComm& c, u32*, i32* code) {
    // Receive tag 6 first even though tag 5 was sent first.
    auto m6 = c.try_recv(sys, 0, 6);
    if (!m6) return false;
    auto m5 = c.try_recv(sys, 0, 5);
    if (!m5) return false;
    *code = (to_string(*m6) == "six" && to_string(*m5) == "five") ? 0 : 1;
    return true;
  });
  EXPECT_EQ(w.run(), 0);
}

TEST(Mpi, BarrierSynchronizesAllRanks) {
  MpiWorld w(4);
  for (i32 r = 0; r < 4; ++r) {
    w.spawn_script(r, 4, [](os::Syscalls& sys, MpiComm& c, u32* ph, i32*) {
      // Three consecutive barriers.
      while (*ph < 3) {
        if (!c.try_barrier(sys)) return false;
        ++*ph;
      }
      return true;
    });
  }
  EXPECT_EQ(w.run(), 0);
}

TEST(Mpi, AllreduceSumsContributions) {
  MpiWorld w(4);
  for (i32 r = 0; r < 4; ++r) {
    w.spawn_script(r, 4,
                   [r](os::Syscalls& sys, MpiComm& c, u32*, i32* code) {
                     std::vector<double> out;
                     if (!c.try_allreduce_sum(sys, {double(r + 1), 10.0},
                                              &out)) {
                       return false;
                     }
                     // 1+2+3+4 = 10; 10*4 = 40.
                     *code = (out.size() == 2 && out[0] == 10.0 &&
                              out[1] == 40.0)
                                 ? 0
                                 : 1;
                     return true;
                   });
  }
  EXPECT_EQ(w.run(), 0);
}

TEST(Mpi, BcastDeliversToAll) {
  MpiWorld w(3);
  for (i32 r = 0; r < 3; ++r) {
    w.spawn_script(r, 3, [r](os::Syscalls& sys, MpiComm& c, u32*, i32* code) {
      Bytes data = r == 1 ? to_bytes("hello world") : Bytes{};
      if (!c.try_bcast(sys, 1, &data)) return false;
      *code = (to_string(data) == "hello world") ? 0 : 1;
      return true;
    });
  }
  EXPECT_EQ(w.run(), 0);
}

TEST(Mpi, GatherCollectsAtRoot) {
  MpiWorld w(3);
  for (i32 r = 0; r < 3; ++r) {
    w.spawn_script(r, 3,
                   [r](os::Syscalls& sys, MpiComm& c, u32* ph, i32* code) {
      if (*ph == 0) {
        std::vector<Bytes> parts;
        if (!c.try_gather(sys, 0, to_bytes("rank" + std::to_string(r)),
                          &parts)) {
          return false;
        }
        if (r == 0) {
          *code = (parts.size() == 3 && to_string(parts[0]) == "rank0" &&
                   to_string(parts[1]) == "rank1" &&
                   to_string(parts[2]) == "rank2")
                      ? 0
                      : 1;
        }
        *ph = 1;
      }
      // Finalize with a barrier so no rank exits (closing its sockets)
      // while the root is still collecting.
      return c.try_barrier(sys);
    });
  }
  EXPECT_EQ(w.run(), 0);
}

TEST(Mpi, LargeMessagesCross) {
  MpiWorld w(2);
  w.spawn_script(0, 2, [](os::Syscalls& sys, MpiComm& c, u32* ph, i32*) {
    if (*ph == 0) {
      Bytes big(2 << 20);
      for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<u8>(i * 7);
      }
      c.post_send(sys, 1, 3, big);
      *ph = 1;
    }
    c.progress(sys);
    return c.wait_fds().empty() ? true : *ph == 2;  // run until peer exits
  });
  w.spawn_script(1, 2, [](os::Syscalls& sys, MpiComm& c, u32*, i32* code) {
    auto m = c.try_recv(sys, 0, 3);
    if (!m) return false;
    bool ok = m->size() == (2u << 20);
    for (std::size_t i = 0; ok && i < m->size(); ++i) {
      if ((*m)[i] != static_cast<u8>(i * 7)) ok = false;
    }
    *code = ok ? 0 : 1;
    return true;
  });
  // Rank 0's script never "finishes" by itself; just check rank 1.
  w.cl.run_for(30 * sim::kSecond);
  os::Process* p1 = w.pods[1]->find_process(w.vpids[1]);
  ASSERT_EQ(p1->state(), os::ProcState::EXITED);
  EXPECT_EQ(p1->exit_code(), 0);
}

TEST(Mpi, PackUnpackDoubles) {
  std::vector<double> v{1.5, -2.25, 0, 1e300};
  EXPECT_EQ(MpiComm::unpack_doubles(MpiComm::pack_doubles(v)), v);
}

TEST(Mpi, MsgIoSerializationRoundTrip) {
  MsgIo io(7);
  io.send(42, to_bytes("queued"));
  Encoder e;
  io.save(e);
  MsgIo io2;
  Decoder d(e.bytes());
  io2.load(d);
  EXPECT_EQ(io2.fd(), 7);
  EXPECT_FALSE(io2.flushed());  // queued bytes survived
}

// ---- PVM -----------------------------------------------------------------------

class PvmEchoMaster final : public os::Program {
 public:
  PvmEchoMaster() = default;
  PvmEchoMaster(u16 port, i32 workers, u32 tasks)
      : pvm_(port, workers), tasks_(tasks) {}
  const char* kind() const override { return "test.pvm_master"; }

  os::StepResult step(os::Syscalls& sys) override {
    using os::StepResult;
    switch (pc_) {
      case 0:
        if (!pvm_.try_init(sys)) {
          os::WaitSpec w;
          w.fds = pvm_.wait_fds();
          w.sleep_for = 10 * sim::kMillisecond;
          return StepResult::block(std::move(w));
        }
        for (u32 i = 0; i < tasks_; ++i) {
          pvm_.submit(pvm::Task{i, to_bytes("task" + std::to_string(i))});
        }
        pc_ = 1;
        return StepResult::yield();
      case 1: {
        pvm_.progress(sys);
        while (auto r = pvm_.pop_result()) {
          if (to_string(r->payload) ==
              "done:task" + std::to_string(r->id)) {
            ++good_;
          }
        }
        if (good_ < tasks_) {
          if (pvm_.failed()) return StepResult::exit(2);
          os::WaitSpec w;
          w.fds = pvm_.wait_fds();
          w.sleep_for = 10 * sim::kMillisecond;
          return StepResult::block(std::move(w));
        }
        return StepResult::exit(0);
      }
      default:
        return StepResult::exit(9);
    }
  }
  void save(Encoder&) const override {}
  void load(Decoder&) override {}

 private:
  pvm::PvmMaster pvm_;
  u32 tasks_ = 0;
  u32 pc_ = 0;
  u32 good_ = 0;
};

class PvmEchoWorker final : public os::Program {
 public:
  PvmEchoWorker() = default;
  explicit PvmEchoWorker(net::SockAddr master) : pvm_(master) {}
  const char* kind() const override { return "test.pvm_worker"; }

  os::StepResult step(os::Syscalls& sys) override {
    using os::StepResult;
    if (!pvm_.try_init(sys)) {
      os::WaitSpec w;
      w.fds = pvm_.wait_fds();
      w.sleep_for = 10 * sim::kMillisecond;
      return StepResult::block(std::move(w));
    }
    if (pvm_.master_gone()) return StepResult::exit(0);
    auto t = pvm_.try_get_task(sys);
    if (!t) {
      os::WaitSpec w;
      w.fds = pvm_.wait_fds();
      w.sleep_for = 10 * sim::kMillisecond;
      return StepResult::block(std::move(w));
    }
    pvm_.post_result(
        sys, pvm::TaskResult{t->id,
                             to_bytes("done:" + to_string(t->payload))});
    return StepResult::yield(100);
  }
  void save(Encoder&) const override {}
  void load(Decoder&) override {}

 private:
  pvm::PvmWorker pvm_;
};

TEST(Pvm, TaskFarmProcessesAllTasks) {
  os::Cluster cl;
  os::Node& n0 = cl.add_node("n0");
  pod::Pod master_pod(n0, net::IpAddr(10, 77, 2, 1), "master");
  i32 mpid = master_pod.spawn(std::make_unique<PvmEchoMaster>(5600, 3, 40));

  std::vector<std::unique_ptr<pod::Pod>> worker_pods;
  for (int i = 0; i < 3; ++i) {
    os::Node& n = cl.add_node("w" + std::to_string(i));
    worker_pods.push_back(std::make_unique<pod::Pod>(
        n, net::IpAddr(10, 77, 2, static_cast<u8>(i + 2)),
        "worker" + std::to_string(i)));
    worker_pods.back()->spawn(std::make_unique<PvmEchoWorker>(
        net::SockAddr{net::IpAddr(10, 77, 2, 1), 5600}));
  }
  cl.run_for(30 * sim::kSecond);
  os::Process* mp = master_pod.find_process(mpid);
  ASSERT_EQ(mp->state(), os::ProcState::EXITED);
  EXPECT_EQ(mp->exit_code(), 0);
}

}  // namespace
}  // namespace zapc::mpi
