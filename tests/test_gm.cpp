// Kernel-bypass (GM-style) messaging extension (paper §5): device-level
// reliability, state extract/reinstate, the virtualized guest interface,
// and full coordinated migration of a GM application.
#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/manager.h"
#include "gm/device.h"
#include "os/cluster.h"
#include "pod/pod.h"

namespace zapc {

net::IpAddr gm_vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

/// Guest that ping-pongs `rounds` messages with a peer over the GM
/// device (spin-polling like a real OS-bypass application).
class GmPingPong final : public os::Program {
 public:
  GmPingPong() = default;
  GmPingPong(int port, net::SockAddr peer, u32 rounds, bool initiator)
      : port_(port), peer_(peer), rounds_(rounds), initiator_(initiator) {}

  const char* kind() const override { return "test.gm_pingpong"; }

  os::StepResult step(os::Syscalls& sys) override {
    using os::StepResult;
    if (pc_ == 0) {
      if (!sys.gm_open(port_).is_ok()) return StepResult::exit(1);
      if (initiator_) {
        Encoder e;
        e.put_u32(0);
        (void)sys.gm_send(port_, peer_, e.take());
        if (rounds_ <= 2) return StepResult::exit(0);
        expect_ = 1;
      }
      pc_ = 1;
      return StepResult::yield();
    }
    auto m = sys.gm_recv(port_, nullptr);
    if (m.is_ok()) {
      Decoder d(m.value());
      u32 n = d.u32_().value_or(0);
      if (n != expect_) return StepResult::exit(3);  // lost or reordered
      if (n + 1 >= rounds_) return StepResult::exit(0);
      Encoder e;
      e.put_u32(n + 1);
      (void)sys.gm_send(port_, peer_, e.take());
      // The device keeps retransmitting our last message even after we
      // exit, so the peer always gets it.
      if (n + 2 >= rounds_) return StepResult::exit(0);
      expect_ = n + 2;  // we consume every other number
      return StepResult::yield(5);
    }
    // Spin-poll with a small sleep (GM applications busy-wait).
    return os::StepResult::block(os::WaitSpec::sleep(200));
  }

  void save(Encoder& e) const override {
    e.put_i32(port_);
    e.put_u32(peer_.ip.v);
    e.put_u16(peer_.port);
    e.put_u32(rounds_);
    e.put_bool(initiator_);
    e.put_u32(pc_);
    e.put_u32(expect_);
  }
  void load(Decoder& d) override {
    port_ = d.i32_().value_or(0);
    peer_.ip.v = d.u32_().value_or(0);
    peer_.port = d.u16_().value_or(0);
    rounds_ = d.u32_().value_or(0);
    initiator_ = d.bool_().value_or(false);
    pc_ = d.u32_().value_or(0);
    expect_ = d.u32_().value_or(0);
  }

 private:
  int port_ = 0;
  net::SockAddr peer_;
  u32 rounds_ = 0;
  bool initiator_ = false;
  u32 pc_ = 0;
  u32 expect_ = 0;
};

namespace {

using gm::GmDevice;

TEST(Gm, DeviceRoundTrip) {
  os::Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  pod::Pod p1(n1, gm_vip(1), "p1");
  pod::Pod p2(n2, gm_vip(2), "p2");

  ASSERT_TRUE(p1.gm_device().open_port(2).is_ok());
  ASSERT_TRUE(p2.gm_device().open_port(3).is_ok());
  ASSERT_TRUE(p1.gm_device()
                  .send(2, net::SockAddr{gm_vip(2), 3}, to_bytes("bypass"))
                  .is_ok());
  cl.run_for(5 * sim::kMillisecond);

  auto m = p2.gm_device().recv(3);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(to_string(m->data), "bypass");
  EXPECT_EQ(m->from, (net::SockAddr{gm_vip(1), 2}));
  // The ACK drained the sender's retransmit queue.
  EXPECT_TRUE(p1.gm_device().sends_drained(2));
  // Stack never saw the traffic (true kernel bypass).
  EXPECT_EQ(p1.stack().socket_count(), 0u);
  EXPECT_EQ(p2.stack().socket_count(), 0u);
}

TEST(Gm, PortValidation) {
  os::Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  pod::Pod p1(n1, gm_vip(1), "p1");
  GmDevice& dev = p1.gm_device();
  EXPECT_EQ(dev.open_port(-1).err(), Err::INVALID);
  EXPECT_EQ(dev.open_port(99).err(), Err::INVALID);
  ASSERT_TRUE(dev.open_port(1).is_ok());
  EXPECT_EQ(dev.open_port(1).err(), Err::ADDR_IN_USE);
  EXPECT_EQ(dev.send(5, net::SockAddr{gm_vip(2), 1}, {}).err(), Err::BAD_FD);
  EXPECT_EQ(dev.send(1, net::SockAddr{gm_vip(2), 1},
                     Bytes(GmDevice::kMaxMessage + 1, 0))
                .err(),
            Err::MSG_SIZE);
  ASSERT_TRUE(dev.close_port(1).is_ok());
  EXPECT_EQ(dev.close_port(1).err(), Err::BAD_FD);
}

TEST(Gm, ReliableUnderLoss) {
  os::Cluster cl(net::FabricConfig{.latency = 50,
                                   .jitter = 0,
                                   .loss_prob = 0.15,
                                   .bandwidth_bps = 1'000'000'000,
                                   .seed = 99});
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  pod::Pod p1(n1, gm_vip(1), "p1");
  pod::Pod p2(n2, gm_vip(2), "p2");
  ASSERT_TRUE(p1.gm_device().open_port(1).is_ok());
  ASSERT_TRUE(p2.gm_device().open_port(1).is_ok());

  for (u32 i = 0; i < 40; ++i) {
    Encoder e;
    e.put_u32(i);
    ASSERT_TRUE(p1.gm_device()
                    .send(1, net::SockAddr{gm_vip(2), 1}, e.take())
                    .is_ok());
  }
  cl.run_for(5 * sim::kSecond);  // retransmissions repair the loss

  for (u32 i = 0; i < 40; ++i) {
    auto m = p2.gm_device().recv(1);
    ASSERT_TRUE(m.has_value()) << "message " << i;
    Decoder d(m->data);
    EXPECT_EQ(d.u32_().value(), i);  // strict order preserved
  }
  EXPECT_GT(p1.gm_device().retransmissions(), 0u);
  EXPECT_TRUE(p1.gm_device().sends_drained(1));
}

TEST(Gm, ExtractReinstateRoundTrip) {
  os::Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  pod::Pod p1(n1, gm_vip(1), "p1");
  pod::Pod p2(n2, gm_vip(2), "p2");
  ASSERT_TRUE(p1.gm_device().open_port(1).is_ok());
  ASSERT_TRUE(p2.gm_device().open_port(1).is_ok());

  // Receive one message (queued, unread) and strand one unacked send.
  ASSERT_TRUE(p2.gm_device()
                  .send(1, net::SockAddr{gm_vip(1), 1}, to_bytes("queued"))
                  .is_ok());
  cl.run_for(5 * sim::kMillisecond);
  p1.filter().block_addr(gm_vip(1));
  ASSERT_TRUE(p1.gm_device()
                  .send(1, net::SockAddr{gm_vip(2), 1}, to_bytes("stuck"))
                  .is_ok());
  cl.run_for(5 * sim::kMillisecond);
  ASSERT_EQ(p1.gm_device().unacked_total(), 1u);

  Bytes state = p1.gm_device().extract_state();

  // Reinstate on a brand-new device in a fresh pod at the same vip.
  p1.filter().unblock_addr(gm_vip(1));
  os::Node& n3 = cl.add_node("n3");
  {
    // Destroy the original so the vip can move.
    pod::Pod moved(n3, gm_vip(3), "tmp");  // placeholder scope
  }
  pod::Pod fresh(n3, gm_vip(4), "fresh");
  ASSERT_TRUE(fresh.gm_device().reinstate(state).is_ok());
  auto m = fresh.gm_device().recv(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(to_string(m->data), "queued");  // recv queue carried over
  EXPECT_EQ(fresh.gm_device().unacked_total(), 1u);  // still retransmitting
}

TEST(Gm, PingPongAcrossPods) {
  os::Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  pod::Pod p1(n1, gm_vip(1), "p1");
  pod::Pod p2(n2, gm_vip(2), "p2");
  i32 a = p1.spawn(std::make_unique<GmPingPong>(
      1, net::SockAddr{gm_vip(2), 1}, 100, true));
  i32 b = p2.spawn(std::make_unique<GmPingPong>(
      1, net::SockAddr{gm_vip(1), 1}, 100, false));
  cl.run_for(5 * sim::kSecond);
  EXPECT_EQ(p1.find_process(a)->exit_code(), 0);
  EXPECT_EQ(p2.find_process(b)->exit_code(), 0);
  EXPECT_EQ(p1.find_process(a)->state(), os::ProcState::EXITED);
  EXPECT_EQ(p2.find_process(b)->state(), os::ProcState::EXITED);
}

TEST(Gm, ApplicationSurvivesMigration) {
  os::Cluster cl;
  os::Node* mgr_node = &cl.add_node("mgr");
  std::vector<std::unique_ptr<core::Agent>> agents;
  for (int i = 0; i < 4; ++i) {
    agents.push_back(
        std::make_unique<core::Agent>(cl.add_node("n" + std::to_string(i))));
  }
  core::Manager mgr(*mgr_node);

  pod::Pod& p1 = agents[0]->create_pod(gm_vip(1), "gm-a");
  pod::Pod& p2 = agents[1]->create_pod(gm_vip(2), "gm-b");
  i32 a = p1.spawn(std::make_unique<GmPingPong>(
      1, net::SockAddr{gm_vip(2), 1}, 4000, true));
  i32 b = p2.spawn(std::make_unique<GmPingPong>(
      1, net::SockAddr{gm_vip(1), 1}, 4000, false));

  cl.run_for(100 * sim::kMillisecond);  // mid-conversation
  ASSERT_NE(p1.find_process(a)->state(), os::ProcState::EXITED);

  bool done = false, ok = false;
  mgr.checkpoint(
      {
          {agents[0]->addr(), "gm-a", "san://ckpt/a"},
          {agents[1]->addr(), "gm-b", "san://ckpt/b"},
      },
      core::CkptMode::MIGRATE, [&](auto r) {
        ok = r.ok;
        done = true;
      });
  while (!done) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(ok);

  done = false;
  mgr.restart(
      {
          {agents[2]->addr(), "gm-a", "san://ckpt/a"},
          {agents[3]->addr(), "gm-b", "san://ckpt/b"},
      },
      {}, [&](auto r) {
        ok = r.ok;
        done = true;
      });
  while (!done) cl.run_for(sim::kMillisecond);
  ASSERT_TRUE(ok);

  cl.run_for(30 * sim::kSecond);
  pod::Pod* ma = agents[2]->find_pod("gm-a");
  pod::Pod* mb = agents[3]->find_pod("gm-b");
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  // The strict-sequence ping-pong finished with no number lost,
  // duplicated or reordered across the migration.
  EXPECT_EQ(ma->find_process(a)->state(), os::ProcState::EXITED);
  EXPECT_EQ(ma->find_process(a)->exit_code(), 0);
  EXPECT_EQ(mb->find_process(b)->exit_code(), 0);
}

}  // namespace
}  // namespace zapc

ZAPC_REGISTER_PROGRAM(gm_pingpong, zapc::GmPingPong)
