// OS + pod integration tests: scheduling, blocking, signals, namespaces,
// cross-node guest traffic, time virtualization, SAN.
#include <gtest/gtest.h>

#include <memory>

#include "os/cluster.h"
#include "pod/pod.h"
#include "tests/guest_programs.h"

namespace zapc {
namespace {

using os::Cluster;
using os::ProcState;
using pod::Pod;
using test::CounterProgram;
using test::EchoClient;
using test::EchoServer;
using test::TimeLogger;

net::IpAddr vip(u8 i) { return net::IpAddr(10, 77, 0, i); }

TEST(OsPod, CounterRunsToCompletion) {
  Cluster cl;
  os::Node& n = cl.add_node("n1");
  Pod pod(n, vip(1), "pod1");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(100, 10));
  cl.run_for(10 * sim::kMillisecond);
  os::Process* p = pod.find_process(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->state(), ProcState::EXITED);
  EXPECT_EQ(p->exit_code(), 0);
  EXPECT_EQ(static_cast<CounterProgram&>(p->program()).count(), 100u);
}

TEST(OsPod, VpidsStartAtOneAndIncrease) {
  Cluster cl;
  os::Node& n = cl.add_node("n1");
  Pod pod(n, vip(1), "pod1");
  EXPECT_EQ(pod.spawn(std::make_unique<CounterProgram>(1, 1)), 1);
  EXPECT_EQ(pod.spawn(std::make_unique<CounterProgram>(1, 1)), 2);
  EXPECT_EQ(pod.spawn(std::make_unique<CounterProgram>(1, 1)), 3);
}

TEST(OsPod, UniprocessorSerializesCpuTime) {
  Cluster cl;
  os::Node& n = cl.add_node("n1", /*ncpus=*/1);
  Pod pod(n, vip(1), "pod1");
  // Two CPU-bound processes, 100 steps x 100us each = 10ms per process.
  pod.spawn(std::make_unique<CounterProgram>(100, 100));
  pod.spawn(std::make_unique<CounterProgram>(100, 100));
  cl.run_for(19 * sim::kMillisecond);
  // With one CPU, 20ms of work cannot finish in 19ms.
  EXPECT_FALSE(pod.all_exited());
  cl.run_for(2 * sim::kMillisecond);
  EXPECT_TRUE(pod.all_exited());
}

TEST(OsPod, DualProcessorRunsInParallel) {
  Cluster cl;
  os::Node& n = cl.add_node("n1", /*ncpus=*/2);
  Pod pod(n, vip(1), "pod1");
  pod.spawn(std::make_unique<CounterProgram>(100, 100));
  pod.spawn(std::make_unique<CounterProgram>(100, 100));
  cl.run_for(11 * sim::kMillisecond);
  // With two CPUs, both 10ms processes finish in ~10ms.
  EXPECT_TRUE(pod.all_exited());
}

TEST(OsPod, EchoAcrossNodes) {
  Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  Pod server_pod(n1, vip(1), "server");
  Pod client_pod(n2, vip(2), "client");

  i32 spid = server_pod.spawn(std::make_unique<EchoServer>(5000));
  i32 cpid = client_pod.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 100000));

  cl.run_for(5 * sim::kSecond);
  os::Process* sp = server_pod.find_process(spid);
  os::Process* cp = client_pod.find_process(cpid);
  ASSERT_EQ(cp->state(), ProcState::EXITED);
  EXPECT_EQ(cp->exit_code(), 0);  // all bytes verified
  EXPECT_EQ(sp->state(), ProcState::EXITED);
  EXPECT_EQ(static_cast<EchoServer&>(sp->program()).echoed(), 100000u);
}

TEST(OsPod, EchoBetweenPodsOnSameNode) {
  Cluster cl;
  os::Node& n1 = cl.add_node("n1", 2);
  Pod server_pod(n1, vip(1), "server");
  Pod client_pod(n1, vip(2), "client");
  server_pod.spawn(std::make_unique<EchoServer>(5000));
  i32 cpid = client_pod.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 10000));
  cl.run_for(5 * sim::kSecond);
  EXPECT_EQ(client_pod.find_process(cpid)->exit_code(), 0);
}

TEST(OsPod, SuspendFreezesExecutionResumeContinues) {
  Cluster cl;
  os::Node& n = cl.add_node("n1");
  Pod pod(n, vip(1), "pod1");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(1000, 100));

  cl.run_for(10 * sim::kMillisecond);  // ~100 steps in
  pod.suspend();
  os::Process* p = pod.find_process(pid);
  u32 at_suspend = static_cast<CounterProgram&>(p->program()).count();
  EXPECT_GT(at_suspend, 0u);
  EXPECT_LT(at_suspend, 1000u);

  cl.run_for(50 * sim::kMillisecond);  // frozen: no progress
  EXPECT_EQ(static_cast<CounterProgram&>(p->program()).count(), at_suspend);
  EXPECT_EQ(p->state(), ProcState::STOPPED);

  pod.resume();
  cl.run_for(200 * sim::kMillisecond);
  EXPECT_EQ(p->state(), ProcState::EXITED);
  EXPECT_EQ(static_cast<CounterProgram&>(p->program()).count(), 1000u);
}

TEST(OsPod, SuspendedPodNetworkCanBeBlocked) {
  Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  Pod server_pod(n1, vip(1), "server");
  Pod client_pod(n2, vip(2), "client");
  server_pod.spawn(std::make_unique<EchoServer>(5000));
  i32 cpid = client_pod.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 8 << 20));

  cl.run_for(5 * sim::kMillisecond);  // mid-transfer
  // Freeze the server pod the way an Agent would.
  server_pod.suspend();
  server_pod.filter().block_addr(vip(1));

  cl.run_for(200 * sim::kMillisecond);
  u64 dropped = server_pod.filter().dropped_ingress() +
                server_pod.filter().dropped_egress();
  EXPECT_GT(dropped, 0u);  // client retransmissions were dropped
  EXPECT_NE(client_pod.find_process(cpid)->state(), ProcState::EXITED);

  // Unfreeze: TCP retransmission repairs everything transparently.
  server_pod.filter().unblock_addr(vip(1));
  server_pod.resume();
  cl.run_for(60 * sim::kSecond);
  EXPECT_EQ(client_pod.find_process(cpid)->state(), ProcState::EXITED);
  EXPECT_EQ(client_pod.find_process(cpid)->exit_code(), 0);
}

TEST(OsPod, SleepBlocksForRequestedTime) {
  Cluster cl;
  os::Node& n = cl.add_node("n1");
  Pod pod(n, vip(1), "pod1");
  i32 pid = pod.spawn(std::make_unique<TimeLogger>());
  cl.run_for(10 * sim::kMillisecond);
  os::Process* p = pod.find_process(pid);
  ASSERT_EQ(p->state(), ProcState::EXITED);

  auto log = cl.san().read("timelog");
  ASSERT_TRUE(log.is_ok());
  Decoder d(log.value());
  (void)d.u64_();  // start
  u64 elapsed = d.u64_().value();
  EXPECT_GE(elapsed, 1000u);
  EXPECT_LT(elapsed, 5000u);
}

TEST(OsPod, TimeVirtualizationBiasesClock) {
  Cluster cl;
  os::Node& n = cl.add_node("n1");
  Pod pod(n, vip(1), "pod1");
  cl.run_for(1000);
  pod.set_time_virtualization(true);
  pod.add_time_delta(-500);
  EXPECT_EQ(pod.virtual_now(), 500u);
  pod.set_time_virtualization(false);
  EXPECT_EQ(pod.virtual_now(), 1000u);
}

TEST(OsPod, MemoryRegionsAccounted) {
  Cluster cl;
  os::Node& n = cl.add_node("n1");
  Pod pod(n, vip(1), "pod1");
  i32 pid = pod.spawn(std::make_unique<CounterProgram>(1, 1));
  os::Process* p = pod.find_process(pid);
  p->region("heap", 1 << 20);
  p->region("stack", 4096);
  EXPECT_EQ(p->memory_bytes(), (1u << 20) + 4096u);
  EXPECT_EQ(pod.memory_bytes(), (1u << 20) + 4096u);
}

TEST(OsPod, PodDestructionUnroutesVip) {
  Cluster cl;
  os::Node& n = cl.add_node("n1");
  {
    Pod pod(n, vip(1), "pod1");
    EXPECT_TRUE(cl.locations().resolve(vip(1)).has_value());
  }
  EXPECT_FALSE(cl.locations().resolve(vip(1)).has_value());
}

TEST(OsPod, NodeFailureStopsDelivery) {
  Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  Pod server_pod(n1, vip(1), "server");
  Pod client_pod(n2, vip(2), "client");
  server_pod.spawn(std::make_unique<EchoServer>(5000));
  i32 cpid = client_pod.spawn(
      std::make_unique<EchoClient>(net::SockAddr{vip(1), 5000}, 16 << 20));
  cl.run_for(5 * sim::kMillisecond);
  n1.fail();
  cl.run_for(2 * sim::kSecond);
  EXPECT_NE(client_pod.find_process(cpid)->state(), ProcState::EXITED);
}

TEST(OsPod, SanSnapshotCopiesSubtree) {
  Cluster cl;
  cl.san().write("pods/p1/a", Bytes{1, 2, 3});
  cl.san().write("pods/p1/b", Bytes{4});
  cl.san().write("pods/p2/c", Bytes{5});
  std::size_t n = cl.san().snapshot("pods/p1/", "snap/p1/");
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(cl.san().read("snap/p1/a").value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(cl.san().read("snap/p1/b").value(), (Bytes{4}));
  EXPECT_FALSE(cl.san().exists("snap/p1/c"));
}

TEST(OsPod, RegistryCreatesKnownPrograms) {
  auto& reg = os::ProgramRegistry::instance();
  EXPECT_TRUE(reg.known("test.counter"));
  auto p = reg.create("test.counter");
  ASSERT_TRUE(p.is_ok());
  EXPECT_STREQ(p.value()->kind(), "test.counter");
  EXPECT_EQ(reg.create("no.such.program").err(), Err::NO_ENT);
}

}  // namespace
}  // namespace zapc

// Program registrations (must be at namespace scope).
ZAPC_REGISTER_PROGRAM(counter, zapc::test::CounterProgram)
ZAPC_REGISTER_PROGRAM(echo_server, zapc::test::EchoServer)
ZAPC_REGISTER_PROGRAM(echo_client, zapc::test::EchoClient)
ZAPC_REGISTER_PROGRAM(time_logger, zapc::test::TimeLogger)
