// Parameterized property sweeps (TEST_P): invariants that must hold
// across protocol parameters, cluster sizes, loss rates, and payload
// shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "core/netckpt.h"
#include "core/schedule.h"
#include "net/stack.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "os/cluster.h"
#include "pod/pod.h"
#include "tests/guest_programs.h"
#include "tests/helpers.h"
#include "util/rng.h"

namespace zapc {
namespace {

using test::EchoClient;
using test::EchoServer;
using test::TestNet;
using test::pattern_bytes;

// ---- TCP integrity across loss rates and payload sizes --------------------

class TcpLossSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(TcpLossSweep, TransferIsByteExact) {
  auto [loss, bytes] = GetParam();
  TestNet net(50 * sim::kMicrosecond, loss, /*seed=*/13);
  net::Stack a(net.engine, net::IpAddr(10, 0, 0, 1), "A");
  net::Stack b(net.engine, net::IpAddr(10, 0, 0, 2), "B");
  net.add(a);
  net.add(b);

  net::SockId lst = b.sys_socket(net::Proto::TCP).value();
  ASSERT_TRUE(b.sys_bind(lst, net::SockAddr{net::kAnyAddr, 7000}).is_ok());
  ASSERT_TRUE(b.sys_listen(lst, 4).is_ok());
  net::SockId cli = a.sys_socket(net::Proto::TCP).value();
  (void)a.sys_connect(cli, net::SockAddr{b.vip(), 7000});
  Result<net::SockId> srv(Err::WOULD_BLOCK);
  for (int i = 0; i < 2000 && !srv.is_ok(); ++i) {
    net.step_for(10 * sim::kMillisecond);
    srv = b.sys_accept(lst, nullptr);
  }
  ASSERT_TRUE(srv.is_ok());

  Bytes data = pattern_bytes(bytes, static_cast<u8>(bytes & 0xFF));
  std::size_t sent = 0;
  Bytes got;
  for (int iter = 0; iter < 60000 && got.size() < bytes; ++iter) {
    if (sent < bytes) {
      Bytes chunk(data.begin() + static_cast<long>(sent), data.end());
      auto w = a.sys_send(cli, chunk, 0);
      if (w.is_ok()) sent += w.value();
    }
    net.step_for(5 * sim::kMillisecond);
    while (true) {
      auto r = b.sys_recv(srv.value(), 65536, 0);
      if (!r.is_ok() || r.value().eof) break;
      append_bytes(got, r.value().data);
    }
  }
  EXPECT_EQ(got, data);
}

INSTANTIATE_TEST_SUITE_P(
    LossAndSize, TcpLossSweep,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.08),
                       ::testing::Values(std::size_t{1024},
                                         std::size_t{64 * 1024},
                                         std::size_t{512 * 1024})));

// ---- PCB invariant under random traffic ------------------------------------

class PcbInvariantSweep : public ::testing::TestWithParam<u64> {};

TEST_P(PcbInvariantSweep, RecvNeverBelowPeerAcked) {
  // Paper §5 invariant: recv₁ ≥ acked₂ at every instant, for arbitrary
  // interleavings of sends, reads and delays.
  Rng rng(GetParam());
  TestNet net(50 * sim::kMicrosecond, 0.03, GetParam());
  net::Stack a(net.engine, net::IpAddr(10, 0, 0, 1), "A");
  net::Stack b(net.engine, net::IpAddr(10, 0, 0, 2), "B");
  net.add(a);
  net.add(b);
  net::SockId lst = b.sys_socket(net::Proto::TCP).value();
  ASSERT_TRUE(b.sys_bind(lst, net::SockAddr{net::kAnyAddr, 7000}).is_ok());
  ASSERT_TRUE(b.sys_listen(lst, 4).is_ok());
  net::SockId cli = a.sys_socket(net::Proto::TCP).value();
  (void)a.sys_connect(cli, net::SockAddr{b.vip(), 7000});
  Result<net::SockId> srv(Err::WOULD_BLOCK);
  for (int i = 0; i < 2000 && !srv.is_ok(); ++i) {
    net.step_for(10 * sim::kMillisecond);
    srv = b.sys_accept(lst, nullptr);
  }
  ASSERT_TRUE(srv.is_ok());

  for (int round = 0; round < 300; ++round) {
    switch (rng.below(4)) {
      case 0: {  // a -> b
        (void)a.sys_send(cli, pattern_bytes(rng.below(4000) + 1), 0);
        break;
      }
      case 1: {  // b -> a
        (void)b.sys_send(srv.value(), pattern_bytes(rng.below(4000) + 1),
                         0);
        break;
      }
      case 2:
        (void)b.sys_recv(srv.value(), rng.below(8000) + 1, 0);
        break;
      default:
        (void)a.sys_recv(cli, rng.below(8000) + 1, 0);
        break;
    }
    net.step_for(rng.below(3) * sim::kMillisecond);

    net::TcpSocket* sa = a.find_tcp(cli);
    net::TcpSocket* sb = b.find_tcp(srv.value());
    ASSERT_TRUE(net::seq_ge(sb->pcb_recv(), sa->pcb_acked()))
        << "round " << round;
    ASSERT_TRUE(net::seq_ge(sa->pcb_recv(), sb->pcb_acked()))
        << "round " << round;
    ASSERT_TRUE(net::seq_ge(sa->pcb_sent(), sa->pcb_acked()));
    ASSERT_TRUE(net::seq_ge(sb->pcb_sent(), sb->pcb_acked()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcbInvariantSweep,
                         ::testing::Values(11u, 23u, 47u, 91u));

// ---- Checkpoint non-destructiveness across queue shapes ---------------------

struct QueueShape {
  std::size_t message_bytes;
  int messages;
  bool with_urgent;
};

class NetCkptSweep : public ::testing::TestWithParam<QueueShape> {};

TEST_P(NetCkptSweep, SaveThenReadBackIsIdentical) {
  const QueueShape shape = GetParam();
  os::Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  pod::Pod p1(n1, net::IpAddr(10, 77, 0, 1), "p1");
  pod::Pod p2(n2, net::IpAddr(10, 77, 0, 2), "p2");

  net::Stack& s2 = p2.stack();
  net::SockId lst = s2.sys_socket(net::Proto::TCP).value();
  ASSERT_TRUE(s2.sys_bind(lst, net::SockAddr{net::kAnyAddr, 6000}).is_ok());
  ASSERT_TRUE(s2.sys_listen(lst, 8).is_ok());
  net::Stack& s1 = p1.stack();
  net::SockId cli = s1.sys_socket(net::Proto::TCP).value();
  (void)s1.sys_connect(cli, net::SockAddr{net::IpAddr(10, 77, 0, 2), 6000});
  cl.run_for(10 * sim::kMillisecond);
  auto srv = s2.sys_accept(lst, nullptr);
  ASSERT_TRUE(srv.is_ok());

  Bytes expected;
  for (int m = 0; m < shape.messages; ++m) {
    Bytes msg = pattern_bytes(shape.message_bytes, static_cast<u8>(m));
    ASSERT_TRUE(s1.sys_send(cli, msg, 0).is_ok());
    append_bytes(expected, msg);
    cl.run_for(5 * sim::kMillisecond);
  }
  if (shape.with_urgent) {
    ASSERT_TRUE(s1.sys_send(cli, Bytes{'!'}, net::MSG_OOB).is_ok());
    cl.run_for(5 * sim::kMillisecond);
  }

  // Checkpoint twice in a row (the second must see the alternate queue).
  for (int round = 0; round < 2; ++round) {
    ckpt::NetMeta meta;
    std::vector<ckpt::SocketImage> socks;
    ASSERT_TRUE(core::NetCheckpoint::save(p2, meta, socks).is_ok());
    std::size_t saved = 0;
    for (const auto& s : socks) {
      if (s.old_id != srv.value()) continue;
      for (const auto& item : s.recv_queue) {
        if (!item.oob) saved += item.data.size();
      }
    }
    EXPECT_EQ(saved, expected.size()) << "round " << round;
  }

  // The application still reads exactly the original stream.
  Bytes got;
  while (got.size() < expected.size()) {
    auto r = s2.sys_recv(srv.value(), 65536, 0);
    ASSERT_TRUE(r.is_ok());
    append_bytes(got, r.value().data);
  }
  EXPECT_EQ(got, expected);
  if (shape.with_urgent) {
    auto oob = s2.sys_recv(srv.value(), 1, net::MSG_OOB);
    ASSERT_TRUE(oob.is_ok());
    EXPECT_EQ(oob.value().data, Bytes{'!'});
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetCkptSweep,
    ::testing::Values(QueueShape{64, 1, false}, QueueShape{64, 1, true},
                      QueueShape{1500, 8, false},
                      QueueShape{1500, 8, true},
                      QueueShape{32 * 1024, 4, false},
                      QueueShape{100, 0, true}));

// ---- Echo application across cluster sizes ----------------------------------

class EchoScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(EchoScaleSweep, ManyPairsComplete) {
  const int pairs = GetParam();
  os::Cluster cl;
  std::vector<std::unique_ptr<pod::Pod>> pods;
  std::vector<std::pair<pod::Pod*, i32>> clients;
  for (int i = 0; i < pairs; ++i) {
    os::Node& ns = cl.add_node("s" + std::to_string(i));
    os::Node& nc = cl.add_node("c" + std::to_string(i));
    auto vip_s = net::IpAddr(10, 80, static_cast<u8>(i), 1);
    auto vip_c = net::IpAddr(10, 80, static_cast<u8>(i), 2);
    pods.push_back(std::make_unique<pod::Pod>(ns, vip_s, "s"));
    pods.back()->spawn(std::make_unique<EchoServer>(5000));
    pods.push_back(std::make_unique<pod::Pod>(nc, vip_c, "c"));
    i32 pid = pods.back()->spawn(std::make_unique<EchoClient>(
        net::SockAddr{vip_s, 5000}, 200000));
    clients.emplace_back(pods.back().get(), pid);
  }
  cl.run_for(30 * sim::kSecond);
  for (auto& [pod, pid] : clients) {
    os::Process* p = pod->find_process(pid);
    ASSERT_EQ(p->state(), os::ProcState::EXITED);
    EXPECT_EQ(p->exit_code(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, EchoScaleSweep, ::testing::Values(1, 3, 6));

// ---- Restart-plan properties over random topologies --------------------------

class ScheduleSweep : public ::testing::TestWithParam<u64> {};

TEST_P(ScheduleSweep, RolesAlwaysOppositeAndDiscardsMatchOverlap) {
  Rng rng(GetParam());
  const int pods = static_cast<int>(rng.below(6)) + 2;
  std::vector<ckpt::NetMeta> metas(static_cast<std::size_t>(pods));
  for (int i = 0; i < pods; ++i) {
    metas[static_cast<std::size_t>(i)].pod_vip =
        net::IpAddr(10, 77, 0, static_cast<u8>(i + 1));
  }
  // Random connections with consistent endpoint PCBs.
  u32 sock_id = 100;
  int conns = static_cast<int>(rng.below(10)) + 1;
  for (int c = 0; c < conns; ++c) {
    int x = static_cast<int>(rng.below(static_cast<u64>(pods)));
    int y = static_cast<int>(rng.below(static_cast<u64>(pods)));
    if (x == y) continue;
    net::SockAddr ax{metas[static_cast<std::size_t>(x)].pod_vip,
                     static_cast<u16>(30000 + c * 2)};
    net::SockAddr ay{metas[static_cast<std::size_t>(y)].pod_vip,
                     static_cast<u16>(30001 + c * 2)};
    u32 base_x = rng.next_u32(), base_y = rng.next_u32();
    u32 sent_x = base_x + static_cast<u32>(rng.below(10000));
    u32 acked_x = base_x + static_cast<u32>(rng.below(5000));
    // Peer received at least what x saw acked (the invariant).
    u32 recv_y = acked_x + static_cast<u32>(rng.below(3000));

    ckpt::NetMetaEntry ex;
    ex.sock = sock_id++;
    ex.source = ax;
    ex.target = ay;
    ex.state = ckpt::ConnState::FULL_DUPLEX;
    ex.pcb_sent = sent_x;
    ex.pcb_acked = acked_x;
    ex.pcb_recv = base_y;
    ckpt::NetMetaEntry ey;
    ey.sock = sock_id++;
    ey.source = ay;
    ey.target = ax;
    ey.state = ckpt::ConnState::FULL_DUPLEX;
    ey.pcb_sent = base_y;
    ey.pcb_acked = base_y;
    ey.pcb_recv = recv_y;
    metas[static_cast<std::size_t>(x)].entries.push_back(ex);
    metas[static_cast<std::size_t>(y)].entries.push_back(ey);
  }

  auto plan = core::build_restart_plan(metas);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  // Check: paired roles are opposite and discards equal the overlap.
  for (auto& [vip, meta] : plan.value().pod_meta) {
    for (auto& e : meta.entries) {
      if (e.state != ckpt::ConnState::FULL_DUPLEX) continue;
      const ckpt::NetMetaEntry* peer = nullptr;
      for (auto& [vip2, meta2] : plan.value().pod_meta) {
        for (auto& f : meta2.entries) {
          if (f.source == e.target && f.target == e.source) peer = &f;
        }
      }
      ASSERT_NE(peer, nullptr);
      EXPECT_NE(e.role, peer->role);
      EXPECT_EQ(e.discard_send, peer->pcb_recv - e.pcb_acked);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ---- UDP datagram boundaries across sizes -------------------------------------

class UdpSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UdpSizeSweep, BoundariesSurviveTransferAndCheckpoint) {
  const std::size_t size = GetParam();
  os::Cluster cl;
  os::Node& n1 = cl.add_node("n1");
  os::Node& n2 = cl.add_node("n2");
  pod::Pod p1(n1, net::IpAddr(10, 77, 0, 1), "p1");
  pod::Pod p2(n2, net::IpAddr(10, 77, 0, 2), "p2");

  net::SockId rx = p2.stack().sys_socket(net::Proto::UDP).value();
  ASSERT_TRUE(
      p2.stack().sys_bind(rx, net::SockAddr{net::kAnyAddr, 9000}).is_ok());
  ASSERT_TRUE(
      p2.stack().sys_setsockopt(rx, net::SockOpt::SO_RCVBUF, 1 << 20).is_ok());
  net::SockId tx = p1.stack().sys_socket(net::Proto::UDP).value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(p1.stack()
                    .sys_sendto(tx, pattern_bytes(size, static_cast<u8>(i)),
                                0, net::SockAddr{p2.vip(), 9000})
                    .is_ok());
  }
  cl.run_for(20 * sim::kMillisecond);

  ckpt::NetMeta meta;
  std::vector<ckpt::SocketImage> socks;
  ASSERT_TRUE(core::NetCheckpoint::save(p2, meta, socks).is_ok());

  for (int i = 0; i < 5; ++i) {
    auto r = p2.stack().sys_recv(rx, 1 << 20, 0);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().data, pattern_bytes(size, static_cast<u8>(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UdpSizeSweep,
                         ::testing::Values(std::size_t{1},
                                           std::size_t{512},
                                           std::size_t{1472},
                                           std::size_t{16000},
                                           std::size_t{65507}));

}  // namespace
}  // namespace zapc
