#!/bin/bash
# Regenerates the full evidence set: every test, then every benchmark.
cd "$(dirname "$0")"
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do $b; done 2>&1 | tee bench_output.txt
