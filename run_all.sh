#!/bin/bash
# Regenerates the full evidence set: every test, then every benchmark.
# Fails fast and propagates the first non-zero exit code, so CI (and
# humans) can trust a zero exit to mean "everything ran and passed".
set -euo pipefail
cd "$(dirname "$0")"

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
ctest_rc=${PIPESTATUS[0]}
if [ "$ctest_rc" -ne 0 ]; then
  echo "ctest failed with exit code $ctest_rc" >&2
  exit "$ctest_rc"
fi

run_benches() {
  local b rc
  for b in build/bench/*; do
    [ -x "$b" ] || continue
    echo "== $b =="
    "$b" || { rc=$?; echo "FAILED ($rc): $b" >&2; return "$rc"; }
  done
}
run_benches 2>&1 | tee bench_output.txt
bench_rc=${PIPESTATUS[0]}
if [ "$bench_rc" -ne 0 ]; then
  exit "$bench_rc"
fi

# Offline protocol validation of the freshly written evidence.  The
# canonical timeline is checked strictly; the ablation sweep includes a
# deliberate NETWORK_LAST configuration, so the ordering check is
# relaxed for everything else.
./build/tools/zapc-trace --validate bench_results/fig2_timeline.json
for f in bench_results/*.json; do
  [ "$f" = bench_results/fig2_timeline.json ] && continue
  ./build/tools/zapc-trace --validate --allow-network-last "$f"
done

# Introspection-plane acceptance (DESIGN.md §9): with an injected slow
# node, the live health snapshot must name that node's pod as the
# straggler with nonzero lag vs. the cluster median.
./build/tools/zapc-top --snapshot --check > /dev/null

# Downtime-attribution acceptance (DESIGN.md §10): every op in the
# fresh evidence must attribute cleanly, with critical-path segments
# summing to the measured downtime within 1%.
./build/tools/zapc-report --check bench_results > /dev/null

# Deterministic fault-injection soak (DESIGN.md §8.4): 200 seeded
# schedules, each asserting the failure-model invariants end-to-end.
./build/tools/zapc-soak --seeds 200

echo "All tests, benches, soak, and trace validation passed; JSON evidence under bench_results/."
