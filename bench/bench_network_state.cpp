// §6.2 in-text series — the network-state portion of checkpoint/restart.
//
// Paper claims to reproduce in shape:
//  * network-state checkpoint < 10 ms — only 3-10% of the total
//    checkpoint time (which justifies checkpointing network state FIRST
//    and overlapping the standalone checkpoint with the Manager barrier);
//  * network-state restore 10-200 ms;
//  * network-state data is a few KB (CPI: 216 bytes - 2 KB) while images
//    are MBs: "application data largely dominates the total checkpoint
//    data size".
#include "bench/bench_common.h"

namespace zapc::bench {
namespace {

void run() {
  JsonEvidence ev("network_state");
  print_header(
      "Network-state checkpoint/restart (paper Sec. 6.2 text)",
      "workload      nodes  net-ckpt(ms)  ckpt(ms)  net%    "
      "net-restore(ms)  netdata(KB)");
  for (const Workload& w : paper_workloads()) {
    for (int n : w.sizes) {
      CkptSweep s = sweep_checkpoints(w, n, 5);
      RestartMeasure m = measure_restart(w, n);
      double pct = s.avg_total_ms > 0
                       ? s.avg_net_ms / s.avg_total_ms * 100.0
                       : 0;
      std::printf("%-12s %6d %13.2f %9.1f %6.2f %16.1f %12.2f\n",
                  w.name.c_str(), n, s.avg_net_ms, s.avg_total_ms, pct,
                  m.connectivity_ms + m.net_restore_ms, s.avg_net_kb);
      obs::Json row = obs::Json::object();
      row["workload"] = w.name;
      row["nodes"] = n;
      row["net_ckpt_ms"] = s.avg_net_ms;
      row["ckpt_ms"] = s.avg_total_ms;
      row["net_pct"] = pct;
      row["net_restore_ms"] = m.connectivity_ms + m.net_restore_ms;
      row["netdata_kb"] = s.avg_net_kb;
      ev.add_row(std::move(row));
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: net-ckpt well under 10 ms and a small fraction\n"
      "of the total; net-restore larger (connection re-establishment) but\n"
      "well under the standalone restore; netdata in KBs.\n");
  ev.write();
}

}  // namespace
}  // namespace zapc::bench

int main() { zapc::bench::run(); }
