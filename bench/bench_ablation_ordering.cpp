// Ablation — checkpoint phase ordering (paper §4).
//
// ZapC "checkpoints the network state before the other pod state to
// enable more concurrent checkpoint operation by overlapping the
// standalone pod checkpoint time with the time it takes for the Manager
// to receive the meta-data from all participating Agents."
//
// The effect is clearest with heterogeneous pods: with NETWORK_FIRST the
// meta-data barrier clears early (network state is tiny), so each pod
// resumes as soon as ITS OWN standalone checkpoint finishes.  With
// NETWORK_LAST the barrier sits behind the *slowest* pod's standalone
// copy, so even small pods stay frozen until the big one finishes.
#include "bench/bench_common.h"

namespace zapc::bench {
namespace {

struct Measure {
  double manager_ms = 0;     // manager-observed total
  double avg_pod_ms = 0;     // mean per-pod frozen time
  double min_pod_ms = 0;     // fastest pod's frozen time
};

Measure measure(core::CkptOrdering ordering) {
  Testbed tb(4);
  for (core::Agent* a : tb.agents) a->set_ordering(ordering);
  // One heavyweight rank (256 MB) among three light ones (8 MB).
  apps::JobHandle job = apps::launch_mpi_job(
      tb.agents, "skew", 4, [&](i32 r) {
        apps::CpiProgram::Params p;
        p.rank = r;
        p.size = 4;
        p.intervals = 64'000'000;
        p.cost_per_step = 2500;
        p.workspace_bytes = r == 0 ? (96ull << 20) : (8ull << 20);
        return std::make_unique<apps::CpiProgram>(p);
      });
  tb.cl.run_for(200 * sim::kMillisecond);

  Measure m;
  auto r = tb.checkpoint_sync(job.san_targets());
  if (!r.ok) return m;
  m.manager_ms = static_cast<double>(r.total_us) / 1000.0;
  double min_pod = 1e18;
  for (const auto& a : r.agents) {
    m.avg_pod_ms += static_cast<double>(a.total_us) / 1000.0;
    min_pod = std::min(min_pod, static_cast<double>(a.total_us) / 1000.0);
  }
  m.avg_pod_ms /= static_cast<double>(r.agents.size());
  m.min_pod_ms = min_pod;
  return m;
}

void run() {
  print_header(
      "Ablation: network-state checkpoint first vs last "
      "(1x256MB + 3x8MB pods)",
      "ordering        manager(ms)   avg-pod-frozen(ms)   "
      "min-pod-frozen(ms)");
  JsonEvidence ev("ablation_ordering");
  Measure first = measure(core::CkptOrdering::NETWORK_FIRST);
  Measure last = measure(core::CkptOrdering::NETWORK_LAST);
  std::printf("network-first %12.1f %20.1f %20.1f\n", first.manager_ms,
              first.avg_pod_ms, first.min_pod_ms);
  std::printf("network-last  %12.1f %20.1f %20.1f\n", last.manager_ms,
              last.avg_pod_ms, last.min_pod_ms);
  auto add = [&](const char* mode, const Measure& m) {
    obs::Json row = obs::Json::object();
    row["ordering"] = mode;
    row["manager_ms"] = m.manager_ms;
    row["avg_pod_frozen_ms"] = m.avg_pod_ms;
    row["min_pod_frozen_ms"] = m.min_pod_ms;
    ev.add_row(std::move(row));
  };
  add("network_first", first);
  add("network_last", last);
  std::printf(
      "\nPaper shape check: with network-first, light pods unfreeze as\n"
      "soon as their own standalone checkpoint ends (min-pod-frozen well\n"
      "below the manager total); with network-last every pod is held\n"
      "hostage by the 256MB pod's copy time.\n");
  ev.write();
}

}  // namespace
}  // namespace zapc::bench

int main() { zapc::bench::run(); }
